// Package deletion implements the rule-discarding optimization of
// Section 5 of the paper: argument projections, their composition and
// summaries (Algorithm 5.1), and the sufficient deletion tests of
// Lemma 5.1 (single unit rule) and Lemma 5.3 (a set of unit rules), driven
// to a fixpoint together with definedness/reachability cleanup
// (Algorithm 5.2, Examples 7 and 8).
//
// # Representation
//
// The paper defines an argument projection (p^a, p1^a1) as a graph over
// the 'n' arguments of the two predicates with an edge where the same
// variable occurs in both positions, and the summary of a composite as the
// projection with an edge wherever a path exists. We represent a summary
// as the full connectivity partition over source-and-target argument
// nodes, including same-side classes. Keeping same-side connectivity makes
// pairwise composition exact (bipartite edge sets alone lose paths that
// zigzag through discarded middles), so Algorithm 5.1's closure computes
// precisely the summaries of all composites.
//
// # Soundness of the test
//
// Lemma 5.1 compares summaries to the unit rule's projection for
// *identity*. We use the (weaker, still sound, strictly more effective)
// containment form: a composite summary may have additional connections;
// what matters is that every equality the unit rule's propagation relies
// on is forced in every derivation context, i.e. the composite summary
// refines the unit projection. The proof sketch of Lemma 5.1 goes through
// verbatim: the derivation subtree rooted at the occurrence's fact is
// re-rooted under the unit rule, and the summary containment guarantees
// the reproduced query fact carries the same constants.
package deletion

import (
	"fmt"
	"sort"
	"strings"

	"existdlog/internal/ast"
)

// Summary is the connectivity partition of a composite argument projection
// from the n-arguments of a source predicate to those of a target
// predicate. Nodes 0..SrcN-1 are source arguments, SrcN..SrcN+TgtN-1 are
// target arguments; Class assigns each node its equivalence class id in
// canonical (first-occurrence) order.
type Summary struct {
	SrcKey string
	TgtKey string
	SrcN   int
	TgtN   int
	Class  []int
}

// nArgs returns the terms at needed positions of a: for an unprojected
// adorned atom these are the 'n'-position arguments; for a projected or
// unadorned atom, all arguments.
func nArgs(a ast.Atom) []ast.Term {
	if a.Adornment == "" || len(a.Args) != len(a.Adornment) {
		return a.Args
	}
	var out []ast.Term
	for i, t := range a.Args {
		if a.Adornment[i] == 'n' {
			out = append(out, t)
		}
	}
	return out
}

// NArity returns the number of needed argument positions of a.
func NArity(a ast.Atom) int { return len(nArgs(a)) }

// canonicalize rewrites class ids into first-occurrence order so equal
// partitions have equal representations.
func canonicalize(class []int) {
	remap := make(map[int]int)
	next := 0
	for i, c := range class {
		m, ok := remap[c]
		if !ok {
			m = next
			next++
			remap[c] = m
		}
		class[i] = m
	}
}

// NewProjection builds the argument projection between the head of a rule
// and one of its body literals: nodes are the needed arguments of both;
// two nodes share a class iff they hold the same variable. Constants and
// anonymous variables connect nothing.
func NewProjection(head, occ ast.Atom) Summary {
	hs, os := nArgs(head), nArgs(occ)
	s := Summary{
		SrcKey: head.Key(), TgtKey: occ.Key(),
		SrcN: len(hs), TgtN: len(os),
		Class: make([]int, len(hs)+len(os)),
	}
	byVar := make(map[string]int)
	next := 0
	classFor := func(t ast.Term) int {
		if t.Kind == ast.Variable && !t.IsAnon() {
			if c, ok := byVar[t.Name]; ok {
				return c
			}
			byVar[t.Name] = next
			next++
			return byVar[t.Name]
		}
		c := next
		next++
		return c
	}
	for i, t := range hs {
		s.Class[i] = classFor(t)
	}
	for j, t := range os {
		s.Class[len(hs)+j] = classFor(t)
	}
	canonicalize(s.Class)
	return s
}

// Identity returns the identity summary over a predicate: source argument
// i connected to target argument i. It corresponds to the trivial unit
// rule p^a(t) :- p^a(t) that Example 7 appeals to.
func Identity(key string, n int) Summary {
	s := Summary{SrcKey: key, TgtKey: key, SrcN: n, TgtN: n, Class: make([]int, 2*n)}
	for i := 0; i < n; i++ {
		s.Class[i] = i
		s.Class[n+i] = i
	}
	return s
}

// Compose glues s1 (A→B) with s2 (B→C) on the shared middle predicate and
// returns the summary (A→C): connectivity of the glued graph restricted to
// A and C nodes. It panics if the middles disagree; callers match keys.
func Compose(s1, s2 Summary) Summary {
	if s1.TgtKey != s2.SrcKey || s1.TgtN != s2.SrcN {
		panic(fmt.Sprintf("deletion: cannot compose %s→%s with %s→%s",
			s1.SrcKey, s1.TgtKey, s2.SrcKey, s2.TgtKey))
	}
	// Node layout in the glued graph: A (0..a-1), B (a..a+b-1),
	// C (a+b..a+b+c-1).
	a, b, c := s1.SrcN, s1.TgtN, s2.TgtN
	parent := make([]int, a+b+c)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(x, y int) {
		rx, ry := find(x), find(y)
		if rx != ry {
			parent[rx] = ry
		}
	}
	// s1's equivalences over A⊎B; s2's over B⊎C (s2's own layout is
	// B:0..b-1, C:b..b+c-1, so shift by a).
	link(s1.Class, func(x, y int) { union(x, y) })
	link(s2.Class, func(x, y int) { union(x+a, y+a) })

	out := Summary{SrcKey: s1.SrcKey, TgtKey: s2.TgtKey, SrcN: a, TgtN: c,
		Class: make([]int, a+c)}
	for i := 0; i < a; i++ {
		out.Class[i] = find(i)
	}
	for j := 0; j < c; j++ {
		out.Class[a+j] = find(a + b + j)
	}
	canonicalize(out.Class)
	return out
}

// link invokes union(x,y) for consecutive members of each class.
func link(class []int, union func(x, y int)) {
	last := make(map[int]int)
	for i, cl := range class {
		if j, ok := last[cl]; ok {
			union(j, i)
		}
		last[cl] = i
	}
}

// Key returns a canonical string for set membership.
func (s Summary) Key() string {
	var sb strings.Builder
	sb.WriteString(s.SrcKey)
	sb.WriteByte('>')
	sb.WriteString(s.TgtKey)
	sb.WriteByte('|')
	for _, c := range s.Class {
		fmt.Fprintf(&sb, "%d.", c)
	}
	return sb.String()
}

// Refines reports whether s forces every equality that u forces: same
// endpoints, and every pair of nodes sharing a class in u shares a class
// in s. This is the containment form of Lemma 5.1's "identical" test (see
// the package comment).
func (s Summary) Refines(u Summary) bool {
	if s.SrcKey != u.SrcKey || s.TgtKey != u.TgtKey ||
		s.SrcN != u.SrcN || s.TgtN != u.TgtN {
		return false
	}
	rep := make(map[int]int) // u class -> s class
	for i, uc := range u.Class {
		sc := s.Class[i]
		if prev, ok := rep[uc]; ok {
			if prev != sc {
				return false
			}
		} else {
			rep[uc] = sc
		}
	}
	return true
}

// Equal reports canonical equality.
func (s Summary) Equal(u Summary) bool { return s.Key() == u.Key() }

// String renders the summary's cross connections for diagnostics, e.g.
// "a@nd→a@nn{1-1}".
func (s Summary) String() string {
	var edges []string
	for i := 0; i < s.SrcN; i++ {
		for j := 0; j < s.TgtN; j++ {
			if s.Class[i] == s.Class[s.SrcN+j] {
				edges = append(edges, fmt.Sprintf("%d-%d", i+1, j+1))
			}
		}
	}
	sort.Strings(edges)
	return fmt.Sprintf("%s→%s{%s}", s.SrcKey, s.TgtKey, strings.Join(edges, ","))
}

// CloseSummaries is Algorithm 5.1: the closure of a set of argument
// projections under composition. The result maps "srcKey>tgtKey" pairs to
// their summaries.
func CloseSummaries(base []Summary) map[string][]Summary {
	seen := make(map[string]bool)
	byKey := make(map[string][]Summary)
	bySrc := make(map[string][]Summary)
	var queue []Summary
	add := func(s Summary) {
		k := s.Key()
		if seen[k] {
			return
		}
		seen[k] = true
		pair := s.SrcKey + ">" + s.TgtKey
		byKey[pair] = append(byKey[pair], s)
		bySrc[s.SrcKey] = append(bySrc[s.SrcKey], s)
		queue = append(queue, s)
	}
	for _, s := range base {
		add(s)
	}
	for len(queue) > 0 {
		s := queue[0]
		queue = queue[1:]
		// Compose s with everything starting at s.TgtKey, and everything
		// ending at s.SrcKey with s.
		for _, t := range append([]Summary(nil), bySrc[s.TgtKey]...) {
			if t.SrcN == s.TgtN {
				add(Compose(s, t))
			}
		}
		for pair, list := range byKey {
			if !strings.HasSuffix(pair, ">"+s.SrcKey) {
				continue
			}
			for _, t := range append([]Summary(nil), list...) {
				if t.TgtN == s.SrcN {
					add(Compose(t, s))
				}
			}
		}
	}
	return byKey
}

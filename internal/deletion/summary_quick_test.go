package deletion

import (
	"testing"
	"testing/quick"
)

// mkSummary builds a summary over fixed arities from a random class
// assignment.
func mkSummary(src, tgt string, srcN, tgtN int, classes []uint8) Summary {
	s := Summary{SrcKey: src, TgtKey: tgt, SrcN: srcN, TgtN: tgtN,
		Class: make([]int, srcN+tgtN)}
	for i := range s.Class {
		c := 0
		if len(classes) > 0 {
			c = int(classes[i%len(classes)]) % (srcN + tgtN)
		}
		s.Class[i] = c
	}
	canonicalize(s.Class)
	return s
}

// Property: composition of summaries is associative. This is the exactness
// property the partition representation buys (bipartite edge sets are NOT
// associative under composition; see the package comment).
func TestComposeAssociativityProperty(t *testing.T) {
	f := func(c1, c2, c3 [6]uint8) bool {
		a := mkSummary("a", "b", 3, 3, c1[:])
		b := mkSummary("b", "c", 3, 3, c2[:])
		c := mkSummary("c", "d", 3, 3, c3[:])
		left := Compose(Compose(a, b), c)
		right := Compose(a, Compose(b, c))
		return left.Equal(right)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: the identity is a two-sided unit for composition.
func TestComposeIdentityProperty(t *testing.T) {
	f := func(cls [6]uint8) bool {
		s := mkSummary("a", "b", 3, 3, cls[:])
		idA := Identity("a", 3)
		idB := Identity("b", 3)
		return Compose(idA, s).Equal(s) && Compose(s, idB).Equal(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Refines is a partial order (reflexive, transitive,
// antisymmetric up to canonical equality).
func TestRefinesPartialOrderProperty(t *testing.T) {
	f := func(c1, c2, c3 [4]uint8) bool {
		a := mkSummary("p", "q", 2, 2, c1[:])
		b := mkSummary("p", "q", 2, 2, c2[:])
		c := mkSummary("p", "q", 2, 2, c3[:])
		if !a.Refines(a) {
			return false
		}
		if a.Refines(b) && b.Refines(c) && !a.Refines(c) {
			return false
		}
		if a.Refines(b) && b.Refines(a) && !a.Equal(b) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: composition is monotone in both arguments with respect to
// Refines — the fact the deletion test's soundness rests on (a context
// forcing more equalities can only force more in the composite).
func TestComposeMonotoneProperty(t *testing.T) {
	merge := func(s Summary, i, j int) Summary {
		out := Summary{SrcKey: s.SrcKey, TgtKey: s.TgtKey, SrcN: s.SrcN, TgtN: s.TgtN,
			Class: append([]int(nil), s.Class...)}
		ci, cj := out.Class[i%len(out.Class)], out.Class[j%len(out.Class)]
		for k, c := range out.Class {
			if c == cj {
				out.Class[k] = ci
			}
		}
		canonicalize(out.Class)
		return out
	}
	f := func(c1, c2 [6]uint8, i, j uint8) bool {
		a := mkSummary("a", "b", 3, 3, c1[:])
		b := mkSummary("b", "c", 3, 3, c2[:])
		// a' refines a by construction (one extra merge).
		a2 := merge(a, int(i), int(j))
		if !a2.Refines(a) {
			return false
		}
		return Compose(a2, b).Refines(Compose(a, b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Error(err)
	}
}

// Property: CloseSummaries is idempotent — closing a closed set adds
// nothing.
func TestCloseSummariesIdempotentProperty(t *testing.T) {
	f := func(c1, c2 [4]uint8) bool {
		base := []Summary{
			mkSummary("p", "p", 2, 2, c1[:]),
			mkSummary("p", "p", 2, 2, c2[:]),
		}
		first := CloseSummaries(base)
		var flat []Summary
		for _, list := range first {
			flat = append(flat, list...)
		}
		second := CloseSummaries(flat)
		count := func(m map[string][]Summary) int {
			n := 0
			for _, l := range m {
				n += len(l)
			}
			return n
		}
		return count(first) == count(second)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

package deletion

import (
	"fmt"

	"existdlog/internal/ast"
)

// This file implements rule subsumption, the generalization Section 6 of
// the paper poses as an open question: "the problem is to devise
// techniques to detect subsumption of a rule by other rules ... the
// generalization to the case where a rule is subsumed by a set of
// (arbitrary) rules is an interesting open question." Two sound cases are
// provided:
//
//   - clause subsumption (same head): rule r2 is deleted when another rule
//     r1 with the same head predicate maps homomorphically into it — every
//     ground instance of r2 is then an instance of r1, so the deletion
//     even preserves uniform equivalence;
//
//   - query-projection subsumption: r2's head feeds the query only through
//     composite projections; if a rule r1 defining the query predicate
//     maps homomorphically into r2's body, and every composite summary
//     from the query to occurrences of r2's head predicate forces exactly
//     the argument correspondences r1's head uses, then any answer that
//     ever flows through an r2-derived fact is produced by r1 directly
//     from the same subderivations. This is what deletes Example 9's
//     fourth rule WITHOUT the Example 11 rewrite.
//
// The homomorphism search is plain backtracking; rule bodies are small.

// findHom searches for a substitution σ over the variables of src such
// that every atom of src.Body maps (under σ) onto some atom of dst.Body.
// Constants must match exactly. It reports each complete σ to yield until
// yield returns false.
func findHom(src, dst ast.Rule, yield func(ast.Subst) bool) {
	var rec func(i int, s ast.Subst) bool
	rec = func(i int, s ast.Subst) bool {
		if i == len(src.Body) {
			return yield(s)
		}
		a := src.Body[i]
		for _, b := range dst.Body {
			if b.Pred != a.Pred || b.Adornment != a.Adornment || len(b.Args) != len(a.Args) {
				continue
			}
			next := make(ast.Subst, len(s)+len(a.Args))
			for k, v := range s {
				next[k] = v
			}
			ok := true
			for j := range a.Args {
				at := a.Args[j]
				bt := b.Args[j]
				if at.Kind == ast.Constant {
					if at != bt {
						ok = false
						break
					}
					continue
				}
				if cur, bound := next[at.Name]; bound {
					if cur != bt {
						ok = false
						break
					}
				} else {
					next[at.Name] = bt
				}
			}
			if ok && !rec(i+1, next) {
				return false
			}
		}
		return true
	}
	rec(0, ast.Subst{})
}

// ClauseSubsumed reports whether rule ri is subsumed by another rule of p
// with the same head predicate: a homomorphism σ with head(rj)σ =
// head(ri) and body(rj)σ ⊆ body(ri). Deleting a clause-subsumed rule
// preserves uniform equivalence. The subsuming rule's index is returned.
func ClauseSubsumed(p *ast.Program, ri int) (int, bool) {
	r2 := p.Rules[ri]
	for rj, r1 := range p.Rules {
		if rj == ri || r1.Head.Key() != r2.Head.Key() || len(r1.Body) > len(r2.Body) {
			continue
		}
		// Rename the subsuming rule apart: the homomorphism's domain must
		// be disjoint from r2's variables, or applying it can chase cycles
		// (X→Y, Y→X arises when an atom maps onto its own swap).
		r1r := ast.RenameApart(r1, "$h")
		found := false
		findHom(r1r, r2, func(s ast.Subst) bool {
			if s.ApplyAtom(r1r.Head).Equal(r2.Head) {
				found = true
				return false
			}
			return true
		})
		if found {
			return rj, true
		}
	}
	return -1, false
}

// QueryProjectionSubsumed reports whether rule ri is subsumed, for the
// query, by a rule defining the query predicate: a homomorphism from that
// rule's body into ri's body whose induced head correspondence is forced
// by every composite summary from the query to occurrences of ri's head
// predicate (Lemma 5.1's machinery with the unit rule replaced by an
// arbitrary rule). sums must come from occSummaries of p.
func QueryProjectionSubsumed(p *ast.Program, ri int, sums map[string][]Summary) (string, bool) {
	r2 := p.Rules[ri]
	headKey := r2.Head.Key()
	queryKey := p.Query.Key()

	// Collect the composite summaries reaching occurrences of headKey, and
	// — when ri defines the query predicate itself — the identity (the
	// fact is then an answer directly).
	var contexts []Summary
	for rj, r := range p.Rules {
		for lj, b := range r.Body {
			if b.Key() != headKey {
				continue
			}
			if rj == ri {
				// A recursive use inside the deleted rule itself vanishes
				// with the rule.
				continue
			}
			contexts = append(contexts, sums[fmt.Sprintf("%d:%d", rj, lj)]...)
		}
	}
	if headKey == queryKey {
		contexts = append(contexts, Identity(queryKey, NArity(p.Query)))
	}
	if len(contexts) == 0 {
		return "", false // unreachable; cleanup's job
	}

	for rj, r1 := range p.Rules {
		if rj == ri || r1.Head.Key() != queryKey || len(r1.Body) > len(r2.Body) {
			continue
		}
		r1r := ast.RenameApart(r1, "$h") // see ClauseSubsumed: avoid cyclic σ
		var reason string
		found := false
		findHom(r1r, r2, func(s ast.Subst) bool {
			pi, ok := inducedProjection(p.Query, s.ApplyAtom(r1r.Head), r2.Head, headKey)
			if !ok {
				return true // try another homomorphism
			}
			for _, cs := range contexts {
				if !cs.Refines(pi) {
					return true
				}
			}
			reason = fmt.Sprintf("query-projection subsumption by rule %d (%s)", rj+1, r1)
			found = true
			return false
		})
		if found {
			return reason, true
		}
	}
	return "", false
}

// inducedProjection builds the summary the subsuming rule's propagation
// relies on: query n-arg k corresponds to r2-head n-arg m when the mapped
// query-head term at k equals the term at m. Every query n-arg must be a
// variable occurring in the subsumed head's needed arguments (a constant
// or an unmatched variable would not be reproduced).
func inducedProjection(query, mappedHead, subsumedHead ast.Atom, headKey string) (Summary, bool) {
	qArgs := nArgs(mappedHead)
	hArgs := nArgs(subsumedHead)
	pi := Summary{
		SrcKey: query.Key(), TgtKey: headKey,
		SrcN: len(qArgs), TgtN: len(hArgs),
		Class: make([]int, len(qArgs)+len(hArgs)),
	}
	byTerm := map[ast.Term]int{}
	next := 0
	classFor := func(t ast.Term, fresh bool) int {
		if t.Kind == ast.Variable && !t.IsAnon() && !fresh {
			if c, ok := byTerm[t]; ok {
				return c
			}
			byTerm[t] = next
			next++
			return byTerm[t]
		}
		c := next
		next++
		return c
	}
	for m, t := range hArgs {
		pi.Class[len(qArgs)+m] = classFor(t, false)
	}
	for k, t := range qArgs {
		if t.Kind != ast.Variable || t.IsAnon() {
			return Summary{}, false
		}
		c, ok := byTerm[t]
		if !ok {
			return Summary{}, false // not transported through the subsumed head
		}
		pi.Class[k] = c
	}
	canonicalize(pi.Class)
	return pi, true
}

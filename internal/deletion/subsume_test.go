package deletion

import (
	"strings"
	"testing"
	"time"

	"existdlog/internal/uniform"
)

func TestClauseSubsumption(t *testing.T) {
	p := mustParse(t, `
a(X,Y) :- p(X,Y).
a(X,Y) :- p(X,Y), q(Y,Z).
a(X,X) :- p(X,X).
?- a(X,Y).
`)
	// Rule 2 is subsumed by rule 1 (extra literal), rule 3 by rule 1
	// (instance head — but the head must map exactly: a(X,X) maps from
	// a(X,Y) with σ={X→X, Y→X} and p(X,Y)σ=p(X,X) ⊆ body ✓).
	if rj, ok := ClauseSubsumed(p, 1); !ok || rj != 0 {
		t.Errorf("rule 2 should be clause-subsumed by rule 1: %v %v", rj, ok)
	}
	if rj, ok := ClauseSubsumed(p, 2); !ok || rj != 0 {
		t.Errorf("rule 3 should be clause-subsumed by rule 1: %v %v", rj, ok)
	}
	if _, ok := ClauseSubsumed(p, 0); ok {
		t.Error("rule 1 is not subsumed")
	}
}

func TestClauseSubsumptionRespectsConstants(t *testing.T) {
	p := mustParse(t, `
a(X) :- p(X,1).
a(X) :- p(X,2).
?- a(X).
`)
	if _, ok := ClauseSubsumed(p, 0); ok {
		t.Error("distinct constants must not subsume")
	}
	if _, ok := ClauseSubsumed(p, 1); ok {
		t.Error("distinct constants must not subsume")
	}
	p2 := mustParse(t, `
a(X) :- p(X,Y).
a(X) :- p(X,2).
?- a(X).
`)
	if rj, ok := ClauseSubsumed(p2, 1); !ok || rj != 0 {
		t.Error("the general rule subsumes the constant instance")
	}
}

// Example 9 of the paper, WITHOUT the Example 11 rewrite: the fourth rule
// is deleted by query-projection subsumption — "the additional literals in
// the deleted rule cover the additional literals in the 'unit' rule"
// (Section 6's open-question direction, implemented).
func TestQueryProjectionSubsumptionExample9(t *testing.T) {
	p := mustParse(t, `
p@nd(X) :- t@nn(X,Y), g3(Y,Z,U).
p@nd(X) :- s@nnn(X,Z,U), g1(Z,U,Y).
s@nnn(X,Z,U) :- t@nn(X,W), g2(W,Z,U).
s@nnn(X,Z,U) :- t@nn(X,V), g3(V,Z,U), g4(U,W).
t@nn(X,Y) :- b(X,Y).
?- p@nd(X).
`)
	sums := occSummaries(p)
	reason, ok := QueryProjectionSubsumed(p, 3, sums)
	if !ok {
		t.Fatal("Example 9's fourth rule should be query-projection subsumed")
	}
	if !strings.Contains(reason, "rule 1") {
		t.Errorf("reason = %s", reason)
	}
	// The structurally similar third rule uses g2, which rule 1 does not
	// cover: no subsumption.
	if _, ok := QueryProjectionSubsumed(p, 2, sums); ok {
		t.Error("the g2 rule must not be subsumed")
	}
	// Full driver with subsumption deletes it and stays query-equivalent.
	out, dels, err := DeleteRules(p, Options{Mode: Lemma53, Subsumption: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out.Rules {
		for _, b := range r.Body {
			if b.Pred == "g4" {
				t.Fatalf("rule with g4 survived:\n%s\n%s", out, FormatDeletions(dels))
			}
		}
	}
	checkQueryEquivalent(t, p, out,
		map[string]int{"b": 2, "g1": 3, "g2": 3, "g3": 3, "g4": 2}, 9)
}

func TestQueryProjectionSubsumptionBlockedWhenArgEscapes(t *testing.T) {
	// As Example 9, but s's second argument feeds the query too (g1 joins
	// it into the answer position): the summary no longer matches the
	// induced projection and the deletion must be blocked... here the
	// query needs Z, transported differently, so the context summary
	// includes an edge the projection cannot supply.
	p := mustParse(t, `
p@nd(X) :- t@nn(X,Y), g3(Y,Z,U).
p@nd(Z) :- s@nnn(X,Z,U), g1(Z,U,Y).
s@nnn(X,Z,U) :- t@nn(X,V), g3(V,Z,U), g4(U,W).
t@nn(X,Y) :- b(X,Y).
?- p@nd(X).
`)
	sums := occSummaries(p)
	if _, ok := QueryProjectionSubsumed(p, 2, sums); ok {
		t.Error("subsumption must be blocked when the answer comes from a different column")
	}
}

func TestLiteralDeletion(t *testing.T) {
	p := mustParse(t, `
a(X,Y) :- p(X,Y), p(X,Z).
?- a(X,Y).
`)
	ok, err := uniform.LiteralRedundant(p, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("p(X,Z) is implied by p(X,Y)")
	}
	ok, err = uniform.LiteralRedundant(p, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("p(X,Y) binds the head; not removable")
	}
	out, dels, err := DeleteRules(p, Options{
		Mode:        Lemma53,
		LiteralTest: uniform.LiteralRedundant,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 1 || len(out.Rules[0].Body) != 1 {
		t.Fatalf("literal not removed:\n%s\n%s", out, FormatDeletions(dels))
	}
	checkQueryEquivalent(t, p, out, map[string]int{"p": 2}, 12)
}

func TestLiteralDeletionKeepsNeededJoins(t *testing.T) {
	p := mustParse(t, `
a(X) :- p(X,Y), q(Y).
?- a(X).
`)
	for li := 0; li < 2; li++ {
		ok, err := uniform.LiteralRedundant(p, 0, li)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("literal %d is load-bearing", li)
		}
	}
}

// The subsumption and literal tests must stay sound on random programs.
func TestSubsumptionSoundnessFuzz(t *testing.T) {
	srcs := []string{
		`a(X,Y) :- p(X,Y).
a(X,Y) :- p(X,Y), p(Y,Z).
a(X,Y) :- p(X,Z), a(Z,Y).
?- a(X,_).`,
		`q@nd(X) :- t(X,Y), g(Y,Z).
q@nd(X) :- s@nn(X,Z), h(Z,Y).
s@nn(X,Z) :- t(X,V), g(V,Z), g(Z,W).
?- q@nd(X).`,
		`a(X) :- p(X,Y), p(X,Y2), p(Y,Y2).
a(X) :- p(X,X).
?- a(X).`,
	}
	bases := map[string]int{"p": 2, "t": 2, "g": 2, "h": 2}
	for i, src := range srcs {
		p := mustParse(t, src)
		out, _, err := DeleteRules(p, Options{
			Mode:        Lemma53,
			UniformTest: sagiv,
			LiteralTest: uniform.LiteralRedundant,
			Subsumption: true,
		})
		if err != nil {
			t.Fatalf("src %d: %v", i, err)
		}
		checkQueryEquivalent(t, p, out, bases, int64(100+i))
	}
}

// Regression: an atom mapping onto its own argument swap used to build a
// cyclic substitution (X→Y, Y→X) and livelock the homomorphism search.
func TestClauseSubsumptionSwapCycle(t *testing.T) {
	p := mustParse(t, `
d2(X,Y) :- d2(Y,X).
d2(X,Y) :- e(X,Y).
d1(X,Y) :- d2(Y,X), e(X,X).
?- d1(X,Y).
`)
	done := make(chan struct{})
	go func() {
		for ri := range p.Rules {
			ClauseSubsumed(p, ri)
			QueryProjectionSubsumed(p, ri, occSummaries(p))
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("homomorphism search hung")
	}
	out, _, err := DeleteRules(p, Options{Mode: Lemma53, Subsumption: true, UniformTest: sagiv})
	if err != nil {
		t.Fatal(err)
	}
	checkQueryEquivalent(t, p, out, map[string]int{"e": 2}, 77)
}

package deletion

import (
	"testing"

	"existdlog/internal/ast"
	"existdlog/internal/parser"
)

func TestNewProjectionBasic(t *testing.T) {
	// Rule 1 of Example 5 (projected): a@nd(X) :- a@nn(X,Z), p(Z,Y).
	head := ast.Atom{Pred: "a", Adornment: "nd", Args: []ast.Term{ast.V("X")}}
	occ := ast.NewAdorned("a", "nn", ast.V("X"), ast.V("Z"))
	s := NewProjection(head, occ)
	if s.SrcN != 1 || s.TgtN != 2 {
		t.Fatalf("arities: %+v", s)
	}
	if s.String() != "a@nd→a@nn{1-1}" {
		t.Errorf("projection = %s", s)
	}
}

func TestNewProjectionIgnoresDroppedArgs(t *testing.T) {
	// Unprojected adorned atoms: only 'n' positions are nodes. Example 7's
	// observation: "we ignore the edge between the second arguments".
	head := ast.NewAdorned("p", "nd", ast.V("X"), ast.V("Y"))
	occ := ast.NewAdorned("p", "nn", ast.V("X"), ast.V("Y"))
	s := NewProjection(head, occ)
	if s.SrcN != 1 {
		t.Fatalf("head n-arity = %d", s.SrcN)
	}
	if s.String() != "p@nd→p@nn{1-1}" {
		t.Errorf("projection = %s", s)
	}
}

func TestNewProjectionConstantsAndAnon(t *testing.T) {
	head := ast.NewAtom("q", ast.C("1"), ast.V("X"))
	occ := ast.NewAtom("r", ast.C("1"), ast.V("_"), ast.V("X"))
	s := NewProjection(head, occ)
	// Only the X-X edge: constants and anonymous variables connect
	// nothing.
	if s.String() != "q→r{2-3}" {
		t.Errorf("projection = %s", s)
	}
}

func TestIdentityAndRefines(t *testing.T) {
	id := Identity("a@nn", 2)
	if id.String() != "a@nn→a@nn{1-1,2-2}" {
		t.Errorf("identity = %s", id)
	}
	if !id.Refines(id) {
		t.Error("identity must refine itself")
	}
	// A summary with extra connections still refines one with fewer.
	merged := Summary{SrcKey: "a@nn", TgtKey: "a@nn", SrcN: 2, TgtN: 2,
		Class: []int{0, 0, 0, 0}}
	if !merged.Refines(id) {
		t.Error("total merge should refine the identity")
	}
	if id.Refines(merged) {
		t.Error("identity must not refine the total merge")
	}
}

func TestComposeChain(t *testing.T) {
	// (q→r {1-1}) ∘ (r→s {1-2}) = q→s {1-2}.
	s1 := NewProjection(
		ast.NewAtom("q", ast.V("X")),
		ast.NewAtom("r", ast.V("X"), ast.V("Z")))
	s2 := NewProjection(
		ast.NewAtom("r", ast.V("A"), ast.V("B")),
		ast.NewAtom("s", ast.V("B"), ast.V("A")))
	c := Compose(s1, s2)
	if c.String() != "q→s{1-2}" {
		t.Errorf("compose = %s", c)
	}
}

func TestComposeZigzagThroughMiddleIsExact(t *testing.T) {
	// Same-side connectivity must survive summarization: r's two args are
	// linked in s2 through its own source; dropping that link would lose
	// the q-s edge when composing further.
	//   s1: q(X) → r(X,W)        edges {1-1}
	//   s2: r(A,A) → s(A)        A repeated: middle args merged
	s1 := NewProjection(
		ast.NewAtom("q", ast.V("X")),
		ast.NewAtom("r", ast.V("X"), ast.V("W")))
	s2 := NewProjection(
		ast.NewAtom("r", ast.V("A"), ast.V("A")),
		ast.NewAtom("s", ast.V("A")))
	c := Compose(s1, s2)
	if c.String() != "q→s{1-1}" {
		t.Errorf("compose = %s", c)
	}
	// Now the reverse order of information flow: the middle's merge comes
	// from the FIRST projection; composition must carry it.
	s3 := NewProjection(
		ast.NewAtom("q", ast.V("X")),
		ast.NewAtom("r", ast.V("X"), ast.V("X"))) // q arg hits both r args
	s4 := NewProjection(
		ast.NewAtom("r", ast.V("A"), ast.V("B")),
		ast.NewAtom("s", ast.V("B")))
	c2 := Compose(s3, s4)
	if c2.String() != "q→s{1-1}" {
		t.Errorf("compose2 = %s", c2)
	}
}

func TestCloseSummariesTerminates(t *testing.T) {
	// A cyclic projection graph with a flip: closure contains both the
	// identity-like and the swapped summary, and terminates.
	flip := NewProjection(
		ast.NewAdorned("p", "nn", ast.V("X"), ast.V("Y")),
		ast.NewAdorned("p", "nn", ast.V("Y"), ast.V("X")))
	s2 := CloseSummaries([]Summary{flip})
	got := s2["p@nn>p@nn"]
	if len(got) != 2 {
		t.Fatalf("closure size = %d: %v", len(got), got)
	}
}

func TestNArity(t *testing.T) {
	cases := []struct {
		src  string
		want int
	}{
		{"p(X,Y)", 2},
		{"p@nd(X,Y)", 1},  // unprojected: count n's
		{"p@nnd(X,Y)", 2}, // projected: args already reduced
		{"b2", 0},
	}
	for _, c := range cases {
		prog, err := parser.ParseProgram("x(X) :- e(X,Y).\n?- " + c.src + ".")
		if err != nil {
			t.Fatalf("%s: %v", c.src, err)
		}
		if got := NArity(prog.Query); got != c.want {
			t.Errorf("NArity(%s) = %d, want %d", c.src, got, c.want)
		}
	}
}

package deletion

import (
	"fmt"
	"sort"
	"strings"

	"existdlog/internal/ast"
)

// Mode selects the summary-based deletion test.
type Mode int

const (
	// Lemma51 requires one fixed unit rule whose projection every
	// composite summary to the occurrence refines.
	Lemma51 Mode = iota
	// Lemma53 lets each composite summary pick its own element of the
	// closure S2 of unit-rule projections (Algorithm 5.1), which deletes
	// strictly more (Example 10).
	Lemma53
)

// Deletion records one discarded rule and why.
type Deletion struct {
	Rule   string
	Reason string
	// Test names the check that justified the deletion — "summary"
	// (Lemma 5.1/5.3), "uniform-equivalence" (Sagiv), "subsumption",
	// "literal-deletion", or "cleanup" (unproductive/unreachable rules) —
	// so optimization EXPLAIN reports can attribute each discarded rule.
	Test string
}

// occSummaries computes, for every body literal occurrence in the program
// (base and derived alike — Lemma 5.1's p.n^c may be any literal, and base
// occurrences are what let Example 6 shed its exit rule via the unit rule
// a@nd(X) :- p(X,Y)), the set of summaries of all composite argument
// projections from the query predicate to that occurrence (Section 5).
// The map is keyed by "ruleIndex:literalIndex".
func occSummaries(p *ast.Program) map[string][]Summary {
	queryKey := p.Query.Key()
	queryN := NArity(p.Query)

	// Reach(K): summaries of composites from the query to (occurrences of)
	// predicate K, grown to a fixpoint; identity seeds the query.
	reach := map[string]map[string]Summary{}
	addReach := func(s Summary) bool {
		m, ok := reach[s.TgtKey]
		if !ok {
			m = map[string]Summary{}
			reach[s.TgtKey] = m
		}
		k := s.Key()
		if _, dup := m[k]; dup {
			return false
		}
		m[k] = s
		return true
	}
	addReach(Identity(queryKey, queryN))

	// Base projections per rule and derived occurrence.
	type occ struct {
		rule, lit int
		proj      Summary
	}
	var occs []occ
	for ri, r := range p.Rules {
		for li, b := range r.Body {
			occs = append(occs, occ{ri, li, NewProjection(r.Head, b)})
		}
	}

	for changed := true; changed; {
		changed = false
		for _, o := range occs {
			srcKey := p.Rules[o.rule].Head.Key()
			for _, s := range snapshot(reach[srcKey]) {
				if s.TgtN != o.proj.SrcN {
					continue
				}
				if addReach(Compose(s, o.proj)) {
					changed = true
				}
			}
		}
	}

	out := map[string][]Summary{}
	for _, o := range occs {
		srcKey := p.Rules[o.rule].Head.Key()
		var sums []Summary
		seen := map[string]bool{}
		for _, s := range snapshot(reach[srcKey]) {
			if s.TgtN != o.proj.SrcN {
				continue
			}
			c := Compose(s, o.proj)
			if !seen[c.Key()] {
				seen[c.Key()] = true
				sums = append(sums, c)
			}
		}
		out[fmt.Sprintf("%d:%d", o.rule, o.lit)] = sums
	}
	return out
}

func snapshot(m map[string]Summary) []Summary {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Summary, 0, len(m))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}

// unitProjections collects the argument projections of the program's unit
// rules (single-literal bodies over derived or base predicates), excluding
// the rule indices in skip, plus the identity projection of the query
// predicate (the trivial unit rule of Example 7).
//
// A unit rule containing a constant is skipped: the constant is a
// selection the projection graph does not record, so reproduction through
// the rule is not guaranteed for an arbitrary derivation context.
// (Repeated variables are safe — the summary partition keeps same-side
// equalities, and Refines demands the context force them.)
func unitProjections(p *ast.Program, skip map[int]bool) []Summary {
	out := []Summary{Identity(p.Query.Key(), NArity(p.Query))}
	for ri, r := range p.Rules {
		if skip[ri] || !r.IsUnit() || hasConstant(r) {
			continue
		}
		out = append(out, NewProjection(r.Head, r.Body[0]))
	}
	return out
}

func hasConstant(r ast.Rule) bool {
	for _, t := range r.Head.Args {
		if t.Kind == ast.Constant {
			return true
		}
	}
	for _, b := range r.Body {
		for _, t := range b.Args {
			if t.Kind == ast.Constant {
				return true
			}
		}
	}
	return false
}

// SummaryDeletable reports whether rule ri can be deleted by the
// summary-based test: the rule contains a derived occurrence p.n such that
// every summary of every composite projection from the query to p.n
// refines a unit-rule projection (one fixed projection under Lemma51; any
// element of the closure S2 under Lemma53). Unit rules involving ri itself
// are excluded from S2 — the reproduction argument must survive the
// deletion. The occurrence justifying the deletion is returned for
// reporting.
func SummaryDeletable(p *ast.Program, ri int, mode Mode, sums map[string][]Summary) (string, bool) {
	r := p.Rules[ri]
	units := unitProjections(p, map[int]bool{ri: true})
	queryKey := p.Query.Key()
	// Lemma 5.1 compares against the projection of a single unit rule of
	// the program (or the trivial identity); Lemma 5.3 admits any summary
	// in the closure S2 of the unit projections (Algorithm 5.1), i.e.
	// reproduction through a chain of unit rules.
	var byPair map[string][]Summary
	if mode == Lemma51 {
		byPair = make(map[string][]Summary)
		for _, u := range units {
			pair := u.SrcKey + ">" + u.TgtKey
			byPair[pair] = append(byPair[pair], u)
		}
	} else {
		byPair = CloseSummaries(units)
	}
	for li, b := range r.Body {
		composites := sums[fmt.Sprintf("%d:%d", ri, li)]
		if len(composites) == 0 {
			continue // unreachable occurrences are the cleanup's job
		}
		candidates := byPair[queryKey+">"+b.Key()]
		if len(candidates) == 0 {
			continue
		}
		switch mode {
		case Lemma51:
			for _, u := range candidates {
				all := true
				for _, c := range composites {
					if !c.Refines(u) {
						all = false
						break
					}
				}
				if all {
					return fmt.Sprintf("Lemma 5.1 via unit projection %s on occurrence %s", u, b), true
				}
			}
		case Lemma53:
			all := true
			for _, c := range composites {
				found := false
				for _, u := range candidates {
					if c.Refines(u) {
						found = true
						break
					}
				}
				if !found {
					all = false
					break
				}
			}
			if all {
				return fmt.Sprintf("Lemma 5.3 via summary closure on occurrence %s", b), true
			}
		}
	}
	return "", false
}

// Cleanup removes rules that cannot contribute to the query: rules whose
// body mentions an unproductive derived predicate (one with no rule
// bottoming out in base relations — this covers both "no defining rules"
// and "recursion with no exit rule", the cascade of Example 8), and rules
// defining predicates unreachable from the query (Examples 7 and 8). It
// iterates to a fixpoint and reports the deletions.
//
// Cleanup preserves query equivalence (empty derived predicates on input);
// unlike the other tests it is not sound for uniform equivalence, where
// derived predicates may be seeded.
func Cleanup(p *ast.Program) (*ast.Program, []Deletion) {
	out := p.Clone()
	var dels []Deletion
	for {
		before := len(out.Rules)

		// Productivity: base predicates are productive; a derived
		// predicate is productive if some rule for it has an all-productive
		// body.
		productive := map[string]bool{}
		for changed := true; changed; {
			changed = false
			for _, r := range out.Rules {
				if productive[r.Head.Key()] {
					continue
				}
				ok := true
				for _, b := range r.Body {
					if !b.Negated && out.Derived[b.Key()] && !productive[b.Key()] {
						ok = false
						break
					}
				}
				if ok {
					productive[r.Head.Key()] = true
					changed = true
				}
			}
		}
		kept := out.Rules[:0:0]
		for _, r := range out.Rules {
			dead := ""
			for _, b := range r.Body {
				// A negated literal over an empty predicate is simply true;
				// it never kills its rule.
				if !b.Negated && out.Derived[b.Key()] && !productive[b.Key()] {
					dead = b.Key()
					break
				}
			}
			if dead != "" {
				dels = append(dels, Deletion{Rule: r.String(), Test: "cleanup",
					Reason: fmt.Sprintf("body uses %s, which is derived but unproductive (empty)", dead)})
				continue
			}
			kept = append(kept, r)
		}
		out.Rules = kept

		// Drop rules for predicates unreachable from the query.
		reach := map[string]bool{out.Query.Key(): true}
		for changed := true; changed; {
			changed = false
			for _, r := range out.Rules {
				if !reach[r.Head.Key()] {
					continue
				}
				for _, b := range r.Body {
					if !reach[b.Key()] {
						reach[b.Key()] = true
						changed = true
					}
				}
			}
		}
		kept = out.Rules[:0:0]
		for _, r := range out.Rules {
			if !reach[r.Head.Key()] {
				dels = append(dels, Deletion{Rule: r.String(), Test: "cleanup",
					Reason: fmt.Sprintf("%s is unreachable from the query", r.Head.Key())})
				continue
			}
			kept = append(kept, r)
		}
		out.Rules = kept

		if len(out.Rules) == before {
			return out, dels
		}
	}
}

// Options configures the deletion driver.
type Options struct {
	Mode Mode
	// UniformTest, if non-nil, is invoked for rules the summary test
	// cannot delete; it should report whether the program without rule ri
	// still uniformly derives the rule (Sagiv's test, provided by the
	// uniform package; injected to avoid an import cycle).
	UniformTest func(p *ast.Program, ri int) (bool, error)
	// LiteralTest, if non-nil, deletes individual body literals that are
	// redundant under uniform equivalence (uniform.LiteralRedundant).
	LiteralTest func(p *ast.Program, ri, li int) (bool, error)
	// Subsumption enables clause subsumption and query-projection
	// subsumption (the Section 6 open-question generalization; deletes
	// Example 9's redundant rule without the Example 11 rewrite).
	Subsumption bool
}

// DeleteRules is Algorithm 5.2 extended with cleanup: it repeatedly (1)
// removes rules justified by the summary test, (2) removes rules justified
// by the uniform-equivalence test, and (3) cleans up undefined/unreachable
// predicates, until a fixpoint. The query predicate's last defining rules
// can themselves be deleted when justified (Example 8 derives an empty
// answer).
func DeleteRules(p *ast.Program, opt Options) (*ast.Program, []Deletion, error) {
	cur := p.Clone()
	var dels []Deletion
	// The summary, subsumption and uniform-equivalence tests are defined
	// for positive programs; with negation only the (stratification-aware)
	// cleanup applies.
	if cur.HasNegation() {
		cleaned, cdels := Cleanup(cur)
		return cleaned, cdels, nil
	}
	for {
		changed := false

		// Summary-based deletions, one at a time (simultaneous deletion is
		// unsound: two rules can justify each other). Rules defining
		// auxiliary predicates are tried before rules defining the query
		// predicate — the order the paper's worked examples follow, which
		// trims auxiliary recursions (Examples 7, 8, 10) rather than
		// rewriting the query's own exit rules.
		sums := occSummaries(cur)
		for pass := 0; pass < 2; pass++ {
			for ri := 0; ri < len(cur.Rules); ri++ {
				isQueryRule := cur.Rules[ri].Head.Key() == cur.Query.Key()
				if (pass == 0) == isQueryRule {
					continue
				}
				reason, ok := SummaryDeletable(cur, ri, opt.Mode, sums)
				if !ok {
					continue
				}
				dels = append(dels, Deletion{Rule: cur.Rules[ri].String(), Test: "summary", Reason: reason})
				cur.Rules = append(cur.Rules[:ri:ri], cur.Rules[ri+1:]...)
				changed = true
				sums = occSummaries(cur)
				ri--
			}
		}

		if opt.Subsumption {
			sums = occSummaries(cur)
			for ri := 0; ri < len(cur.Rules); ri++ {
				if rj, ok := ClauseSubsumed(cur, ri); ok {
					dels = append(dels, Deletion{Rule: cur.Rules[ri].String(), Test: "subsumption",
						Reason: fmt.Sprintf("clause subsumption by rule %d (%s)", rj+1, cur.Rules[rj])})
					cur.Rules = append(cur.Rules[:ri:ri], cur.Rules[ri+1:]...)
					changed = true
					sums = occSummaries(cur)
					ri--
					continue
				}
				if reason, ok := QueryProjectionSubsumed(cur, ri, sums); ok {
					dels = append(dels, Deletion{Rule: cur.Rules[ri].String(), Test: "subsumption", Reason: reason})
					cur.Rules = append(cur.Rules[:ri:ri], cur.Rules[ri+1:]...)
					changed = true
					sums = occSummaries(cur)
					ri--
				}
			}
		}

		if opt.UniformTest != nil {
			for ri := 0; ri < len(cur.Rules); ri++ {
				ok, err := opt.UniformTest(cur, ri)
				if err != nil {
					return nil, nil, err
				}
				if !ok {
					continue
				}
				dels = append(dels, Deletion{Rule: cur.Rules[ri].String(), Test: "uniform-equivalence",
					Reason: "uniform equivalence (Sagiv): the remaining rules derive this rule's head from its frozen body"})
				cur.Rules = append(cur.Rules[:ri:ri], cur.Rules[ri+1:]...)
				changed = true
				ri--
			}
		}

		if opt.LiteralTest != nil {
			for ri := 0; ri < len(cur.Rules); ri++ {
				for li := 0; li < len(cur.Rules[ri].Body); li++ {
					ok, err := opt.LiteralTest(cur, ri, li)
					if err != nil {
						return nil, nil, err
					}
					if !ok {
						continue
					}
					old := cur.Rules[ri].String()
					cur.Rules[ri].Body = append(cur.Rules[ri].Body[:li:li], cur.Rules[ri].Body[li+1:]...)
					dels = append(dels, Deletion{Rule: old, Test: "literal-deletion",
						Reason: fmt.Sprintf("literal %d redundant under uniform equivalence; rule weakened to %s",
							li+1, cur.Rules[ri])})
					changed = true
					li--
				}
			}
		}

		cleaned, cdels := Cleanup(cur)
		if len(cdels) > 0 {
			changed = true
			dels = append(dels, cdels...)
			cur = cleaned
		}
		if !changed {
			return cur, dels, nil
		}
	}
}

// FormatDeletions renders a deletion report.
func FormatDeletions(dels []Deletion) string {
	var sb strings.Builder
	for _, d := range dels {
		fmt.Fprintf(&sb, "deleted %s\n  reason: %s\n", d.Rule, d.Reason)
	}
	return sb.String()
}

package deletion

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"existdlog/internal/ast"
	"existdlog/internal/engine"
	"existdlog/internal/parser"
	"existdlog/internal/uniform"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// checkQueryEquivalent evaluates both programs over randomized EDBs for
// the given base relations (name -> arity) and compares the query answers.
func checkQueryEquivalent(t *testing.T, p1, p2 *ast.Program, bases map[string]int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 12; trial++ {
		db := engine.NewDatabase()
		n := 2 + rng.Intn(5)
		for name, arity := range bases {
			facts := 1 + rng.Intn(8)
			for i := 0; i < facts; i++ {
				row := make([]string, arity)
				for j := range row {
					row[j] = fmt.Sprint(rng.Intn(n))
				}
				db.Add(name, row...)
			}
		}
		r1, err := engine.Eval(p1, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := engine.Eval(p2, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		a1, a2 := r1.Answers(p1.Query), r2.Answers(p2.Query)
		if fmt.Sprint(a1) != fmt.Sprint(a2) {
			t.Fatalf("trial %d: answers differ\nbefore: %v\nafter:  %v\nprogram after:\n%s",
				trial, a1, a2, p2)
		}
	}
}

func sagiv(p *ast.Program, ri int) (bool, error) { return uniform.RuleRedundant(p, ri) }

// Example 3a / Example 4 of the paper: the recursive rule of the projected
// transitive closure is redundant; deleting it is justified by uniform
// equivalence, and also by the summary test with the trivial unit rule.
func TestDeleteExample4(t *testing.T) {
	p := mustParse(t, `
a@nd(X) :- p(X,Z), a@nd(Z).
a@nd(X) :- p(X,Z).
?- a@nd(X).
`)
	// Uniform-equivalence justification (Example 4's derivation).
	ok, err := uniform.RuleRedundant(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Example 4: rule 1 should be uniformly redundant")
	}
	// Full driver.
	out, dels, err := DeleteRules(p, Options{Mode: Lemma53, UniformTest: sagiv})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 1 || out.Rules[0].String() != "a@nd(X) :- p(X,Z)." {
		t.Fatalf("optimized program:\n%s\ndeletions:\n%s", out, FormatDeletions(dels))
	}
	checkQueryEquivalent(t, p, out, map[string]int{"p": 2}, 4)
}

// Example 3a's caveat: with a different base predicate in the exit rule,
// the recursive rule must NOT be deleted.
func TestDeleteExample3aCaveat(t *testing.T) {
	p := mustParse(t, `
a@nd(X) :- p(X,Z), a@nd(Z).
a@nd(X) :- p1(X,Z).
?- a@nd(X).
`)
	out, _, err := DeleteRules(p, Options{Mode: Lemma53, UniformTest: sagiv})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 2 {
		t.Fatalf("no rule should be deletable:\n%s", out)
	}
}

// Example 5 of the paper: no rule of the two-version left-linear program
// is redundant under plain uniform equivalence.
func TestExample5UniformEquivalenceIsStuck(t *testing.T) {
	p := mustParse(t, `
a@nd(X) :- a@nn(X,Z), p(Z,Y).
a@nd(X) :- p(X,Y).
a@nn(X,Y) :- a@nn(X,Z), p(Z,Y).
a@nn(X,Y) :- p(X,Y).
?- a@nd(X).
`)
	for ri := range p.Rules {
		ok, err := uniform.RuleRedundant(p, ri)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("rule %d (%s) should not be uniformly redundant", ri+1, p.Rules[ri])
		}
	}
}

// Example 6 of the paper: under uniform query equivalence — realized here
// by the summary tests over the program extended with the covering unit
// rule a@nd(X) :- a@nn(X,Y) — the program collapses to the single rule
// a@nd(X) :- p(X,Y).
func TestDeleteExample6(t *testing.T) {
	p := mustParse(t, `
a@nd(X) :- a@nn(X,Z), p(Z,Y).
a@nd(X) :- p(X,Y).
a@nn(X,Y) :- a@nn(X,Z), p(Z,Y).
a@nn(X,Y) :- p(X,Y).
a@nd(U1) :- a@nn(U1,U2).
?- a@nd(X).
`)
	out, dels, err := DeleteRules(p, Options{Mode: Lemma53, UniformTest: sagiv})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 1 || out.Rules[0].String() != "a@nd(X) :- p(X,Y)." {
		t.Fatalf("Example 6 should collapse to one rule, got:\n%s\ndeletions:\n%s",
			out, FormatDeletions(dels))
	}
	checkQueryEquivalent(t, p, out, map[string]int{"p": 2}, 6)
}

// Example 7 of the paper (reconstructed; see EXPERIMENTS.md): the summary
// test with the unit rule p@nd(X) :- p@nn(X,Y) and the trivial unit rule
// discards the two rules defining the auxiliary binary predicate, and the
// cleanup cascades, leaving the three-rule program of the paper. The
// remaining unit rule is NOT deletable by the procedure — the paper's
// closing remark on this example.
func TestDeleteExample7(t *testing.T) {
	p := mustParse(t, `
p@nd(X) :- p@nn(X,Y).
p@nd(X) :- p1@nn(X,Z), b4(Z).
p@nd(X) :- b1(X,Y).
p@nn(X,Y) :- p1@nn(X,Z), b4(Z), b1(Z,Y).
p@nn(X,Y) :- b5(X,Y).
p1@nn(X,Z) :- p@nn(X,U), b2(U,W,Z).
p1@nn(X,Z) :- p@nd(X), b3(U,W,Z).
?- p@nd(X).
`)
	out, dels, err := DeleteRules(p, Options{Mode: Lemma51, UniformTest: nil})
	if err != nil {
		t.Fatal(err)
	}
	want := `p@nd(X) :- p@nn(X,Y).
p@nd(X) :- b1(X,Y).
p@nn(X,Y) :- b5(X,Y).
?- p@nd(X).
`
	if out.String() != want {
		t.Fatalf("Example 7 result:\n%s\nwant:\n%s\ndeletions:\n%s",
			out, want, FormatDeletions(dels))
	}
	checkQueryEquivalent(t, p, out,
		map[string]int{"b1": 2, "b2": 3, "b3": 3, "b4": 1, "b5": 2}, 7)
}

// Example 8 of the paper (reconstructed): deleting the exit-providing rule
// by Lemma 5.1 leaves the auxiliary recursion without an exit; the
// productivity cleanup cascades until no rule defines the query — the
// answer set is detected empty at compile time.
func TestDeleteExample8EmptyAnswer(t *testing.T) {
	p := mustParse(t, `
p@nd(X) :- p@nn(X,Y).
p@nn(X,Y) :- p1@nnn(X,Z,U), g1(Z,U,Y).
p@nn(X,Y) :- p1@nnn(X,Z,U), g1(U,Z,Y).
p1@nnn(X,Z,U) :- p1@nnn(X,V,W), g2(V,W,Z,U).
p1@nnn(X,Z,U) :- p@nn(X,Y), g2(Y,Y,Z,U).
?- p@nd(X).
`)
	out, dels, err := DeleteRules(p, Options{Mode: Lemma51, UniformTest: nil})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 0 {
		t.Fatalf("Example 8 should empty the program:\n%s\ndeletions:\n%s",
			out, FormatDeletions(dels))
	}
	checkQueryEquivalent(t, p, out, map[string]int{"g1": 3, "g2": 4}, 8)
}

// Example 10 of the paper: the symmetric unit-rule pairs. Lemma 5.3
// deletes the cyclic rule; Lemma 5.1 cannot (no single unit projection
// covers both composite summaries).
func TestDeleteExample10(t *testing.T) {
	src := `
p@nd(X,Y) :- p@nn(X,Y).
p@nd(X,Y) :- p@nn(Y,X).
p@nn(X,Y) :- q@nn(X,Y).
p@nn(X,Y) :- q@nn(Y,X).
q@nn(X,Y) :- p@nn(X,Y).
p@nn(X,Y) :- b(X,Y).
?- p@nd(X,_).
`
	p := mustParse(t, src)
	sums := occSummaries(p)
	if _, ok := SummaryDeletable(p, 4, Lemma51, sums); ok {
		t.Error("Lemma 5.1 should NOT delete the q@nn rule")
	}
	if reason, ok := SummaryDeletable(p, 4, Lemma53, sums); !ok {
		t.Error("Lemma 5.3 should delete the q@nn rule")
	} else if !strings.Contains(reason, "5.3") {
		t.Errorf("reason = %s", reason)
	}
	out, _, err := DeleteRules(p, Options{Mode: Lemma53, UniformTest: nil})
	if err != nil {
		t.Fatal(err)
	}
	// The q@nn cycle must be gone.
	for _, r := range out.Rules {
		if r.Head.Pred == "q" {
			t.Errorf("q rule survived: %s", r)
		}
		for _, b := range r.Body {
			if b.Pred == "q" {
				t.Errorf("q occurrence survived: %s", r)
			}
		}
	}
	checkQueryEquivalent(t, p, out, map[string]int{"b": 2}, 10)
}

// Examples 9 and 11 of the paper: the original program's redundant rule is
// invisible to the summary test (no unit rule relates the predicates); the
// rewriting with an auxiliary predicate exposes it to Lemma 5.1.
func TestDeleteExample9And11(t *testing.T) {
	orig := mustParse(t, `
p@nd(X) :- t@nn(X,Y), g3(Y,Z,U).
p@nd(X) :- s@nnn(X,Z,U), g1(Z,U,Y).
s@nnn(X,Z,U) :- t@nn(X,W), g2(W,Z,U).
s@nnn(X,Z,U) :- t@nn(X,V), g3(V,Z,U), g4(U,W).
t@nn(X,Y) :- b(X,Y).
?- p@nd(X).
`)
	// Example 9: our technique does not recognize the redundancy.
	out9, _, err := DeleteRules(orig, Options{Mode: Lemma53, UniformTest: sagiv})
	if err != nil {
		t.Fatal(err)
	}
	if len(out9.Rules) != len(orig.Rules) {
		t.Fatalf("Example 9: no deletion expected, got:\n%s", out9)
	}
	// Example 11: after the (guessed) rewrite through q@nnnn, Lemma 5.1
	// deletes the rewritten rule, and the result matches the original.
	rewritten := mustParse(t, `
p@nd(X) :- q@nnnn(X,Y,Z,U).
q@nnnn(X,Y,Z,U) :- t@nn(X,Y), g3(Y,Z,U).
p@nd(X) :- s@nnn(X,Z,U), g1(Z,U,Y).
s@nnn(X,Z,U) :- t@nn(X,W), g2(W,Z,U).
s@nnn(X,Z,U) :- q@nnnn(X,V,Z,U), g4(U,W).
t@nn(X,Y) :- b(X,Y).
?- p@nd(X).
`)
	sums := occSummaries(rewritten)
	if _, ok := SummaryDeletable(rewritten, 4, Lemma51, sums); !ok {
		t.Error("Example 11: Lemma 5.1 should delete the rewritten rule")
	}
	out11, dels, err := DeleteRules(rewritten, Options{Mode: Lemma51, UniformTest: nil})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range out11.Rules {
		if len(r.Body) == 2 && r.Body[1].Pred == "g4" {
			t.Errorf("rewritten rule survived:\n%s\ndeletions:\n%s", out11, FormatDeletions(dels))
		}
	}
	bases := map[string]int{"b": 2, "g1": 3, "g2": 3, "g3": 3, "g4": 2}
	checkQueryEquivalent(t, rewritten, out11, bases, 11)
	// And the rewritten program agrees with the original.
	checkQueryEquivalent(t, orig, out11, bases, 911)
}

// The driver must never delete a rule whose absence changes answers: fuzz
// the full pipeline against random chain-shaped programs.
func TestDeleteRulesSoundnessFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	preds := []string{"x@nn", "y@nn", "z@nn"}
	for trial := 0; trial < 30; trial++ {
		var sb strings.Builder
		count := 2 + rng.Intn(5)
		for i := 0; i < count; i++ {
			h := preds[rng.Intn(len(preds))]
			b1 := preds[rng.Intn(len(preds))]
			switch rng.Intn(3) {
			case 0:
				fmt.Fprintf(&sb, "%s(X,Y) :- e(X,Y).\n", h)
			case 1:
				fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Z), e(Z,Y).\n", h, b1)
			case 2:
				fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Y).\n", h, b1)
			}
		}
		// Ensure the query predicate exists.
		sb.WriteString("x@nn(X,Y) :- e(X,Y).\n?- x@nn(X,Y).\n")
		p, err := parser.ParseProgram(sb.String())
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, sb.String())
		}
		out, _, err := DeleteRules(p, Options{Mode: Lemma53, UniformTest: sagiv})
		if err != nil {
			t.Fatal(err)
		}
		checkQueryEquivalent(t, p, out, map[string]int{"e": 2}, int64(trial))
	}
}

// Regression: a unit rule with a constant is a selection; using it as a
// reproduction target would delete rules unsoundly (the recursive rule
// here is NOT redundant for the query a@nn(5,Y)-via-query(Y)).
func TestUnitRuleWithConstantIsNotAJustification(t *testing.T) {
	p := mustParse(t, `
query@n(Y) :- a@nn(5,Y).
a@nn(X,Y) :- p(X,Z), a@nn(Z,Y).
a@nn(X,Y) :- p(X,Y).
?- query@n(Y).
`)
	out, dels, err := DeleteRules(p, Options{Mode: Lemma53, UniformTest: sagiv})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rules) != 3 {
		t.Fatalf("no rule is deletable here; got\n%s\n%s", out, FormatDeletions(dels))
	}
	checkQueryEquivalent(t, p, out, map[string]int{"p": 2}, 55)
}

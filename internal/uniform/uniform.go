// Package uniform implements the equivalence machinery of Sections 3.3-5
// of the paper:
//
//   - Sagiv's decidable test for uniform equivalence / containment of
//     Datalog programs (freeze a rule's body into fresh constants, run the
//     other program on the frozen facts — derived predicates included, as
//     uniform equivalence places no restriction on the input instance —
//     and check whether the frozen head is derived), used for rule
//     deletion as in Example 4;
//
//   - optimistic derivations and the Theorem 5.2 sufficient condition for
//     uniform *query* equivalence. The paper leaves the grounding domain
//     of optimistic derivations unspecified; a literal reading over the
//     whole active domain makes the optimistic answer blow up to near-
//     everything and the test vacuous, so OptimisticDeletionSafe
//     implements the documented variant in which a derivation step must
//     ground the head through the matched known fact (plus program
//     constants). See DESIGN.md ("Substitutions"). The variant reproduces
//     Example 6; the summary tests of the deletion package remain the
//     primary, exactly-specified machinery.
package uniform

import (
	"fmt"

	"existdlog/internal/ast"
	"existdlog/internal/engine"
)

// evalOpts bounds the fixpoint runs used by the tests; frozen databases
// are tiny, so generous limits never bite in practice but keep adversarial
// inputs from hanging the compiler.
var evalOpts = engine.Options{MaxIterations: 100000, MaxFacts: 2_000_000}

// freezeBody loads the frozen body of rule r into a fresh database and
// returns it with the frozen head. Rules with negated literals are
// rejected: freezing would turn the negation into a positive fact, and the
// uniform-equivalence theory here is for positive programs.
func freezeBody(r ast.Rule) (*engine.Database, ast.Atom, error) {
	db := engine.NewDatabase()
	for _, b := range r.Body {
		if b.Negated {
			return nil, ast.Atom{}, fmt.Errorf("uniform: rule %s has negation; the uniform-equivalence tests are defined for positive programs", r)
		}
	}
	frozen, _ := ast.Freeze(r, "$f")
	for _, b := range frozen.Body {
		if err := db.AddAtom(b); err != nil {
			return nil, ast.Atom{}, err
		}
	}
	return db, frozen.Head, nil
}

// Derives reports whether program p, run on the frozen body of rule r
// (derived predicates seeded as given), derives r's frozen head. This is
// the core of Sagiv's uniform containment test.
func Derives(p *ast.Program, r ast.Rule) (bool, error) {
	if p.HasNegation() {
		return false, fmt.Errorf("uniform: program has negation; the uniform-equivalence tests are defined for positive programs")
	}
	db, head, err := freezeBody(r)
	if err != nil {
		return false, err
	}
	res, err := engine.Eval(p, db, evalOpts)
	if err != nil {
		return false, err
	}
	return containsAtom(res.DB, head), nil
}

func containsAtom(db *engine.Database, a ast.Atom) bool {
	rel, ok := db.Lookup(a.Key())
	if !ok || rel.Arity() != a.Arity() {
		return false
	}
	t := make(engine.Tuple, a.Arity())
	for i, arg := range a.Args {
		id, ok := db.Syms.Lookup(arg.Name)
		if !ok {
			return false
		}
		t[i] = id
	}
	return rel.Contains(t)
}

// Contained reports whether p1 is uniformly contained in p2: for every
// database instance (derived predicates included), lfp(p1) ⊆ lfp(p2).
// By Sagiv's theorem it suffices that p2 derives every rule of p1 from its
// frozen body.
func Contained(p1, p2 *ast.Program) (bool, error) {
	for _, r := range p1.Rules {
		ok, err := Derives(p2, r)
		if err != nil {
			return false, err
		}
		if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Equivalent reports uniform equivalence: containment in both directions.
func Equivalent(p1, p2 *ast.Program) (bool, error) {
	ok, err := Contained(p1, p2)
	if err != nil || !ok {
		return ok, err
	}
	return Contained(p2, p1)
}

// RuleRedundant reports whether rule ri may be deleted from p while
// preserving uniform equivalence: the program without the rule must derive
// the rule's frozen head from its frozen body (Example 4 of the paper).
func RuleRedundant(p *ast.Program, ri int) (bool, error) {
	if ri < 0 || ri >= len(p.Rules) {
		return false, fmt.Errorf("uniform: rule index %d out of range", ri)
	}
	rest := p.Clone()
	rest.Rules = append(rest.Rules[:ri:ri], rest.Rules[ri+1:]...)
	return Derives(rest, p.Rules[ri])
}

// LiteralRedundant reports whether literal li of rule ri may be deleted
// while preserving uniform equivalence (Theorem 3.4 concerns deleting
// literals as well as rules; Sagiv's test decides the uniform case).
// Removing a literal only weakens the rule, so the relaxed program always
// contains the original; equivalence needs the converse: the original
// program must derive the weakened rule — freeze the remaining body and
// check the head. Removing the last literal is rejected (it would turn the
// rule into an unrestricted fact generator).
func LiteralRedundant(p *ast.Program, ri, li int) (bool, error) {
	if ri < 0 || ri >= len(p.Rules) {
		return false, fmt.Errorf("uniform: rule index %d out of range", ri)
	}
	r := p.Rules[ri]
	if li < 0 || li >= len(r.Body) {
		return false, fmt.Errorf("uniform: literal index %d out of range", li)
	}
	if len(r.Body) == 1 {
		return false, nil
	}
	weak := r.Clone()
	weak.Body = append(weak.Body[:li:li], weak.Body[li+1:]...)
	// The weakened rule must stay range-restricted.
	bound := map[string]bool{}
	for _, b := range weak.Body {
		for _, t := range b.Args {
			if t.Kind == ast.Variable {
				bound[t.Name] = true
			}
		}
	}
	for _, t := range weak.Head.Args {
		if t.Kind == ast.Variable && !t.IsAnon() && !bound[t.Name] {
			return false, nil
		}
	}
	return Derives(p, weak)
}

// OptimisticAnswer computes the optimistic answer of Theorem 5.2 for the
// query predicate over the given database, under the grounded variant: a
// rule fires optimistically when one body literal matches a known fact and
// the substitution this induces (constants in the rule included) grounds
// the head; the remaining body literals are assumed. The returned database
// holds all optimistically known facts.
func OptimisticAnswer(p *ast.Program, edb *engine.Database) (*engine.Database, error) {
	// Work symbolically over atoms; the databases involved are tiny
	// (frozen rule bodies).
	known := make(map[string]ast.Atom)
	var queue []ast.Atom
	add := func(a ast.Atom) {
		k := a.String()
		if _, ok := known[k]; !ok {
			known[k] = a
			queue = append(queue, a)
		}
	}
	for _, key := range edb.Keys() {
		rel, _ := edb.Lookup(key)
		pred, adn := splitKey(key)
		for _, t := range rel.Tuples() {
			args := make([]ast.Term, len(t))
			for i, id := range t {
				args[i] = ast.C(edb.Syms.Name(id))
			}
			add(ast.Atom{Pred: pred, Adornment: ast.Adornment(adn), Args: args})
		}
	}
	const maxKnown = 200000
	for len(queue) > 0 {
		f := queue[0]
		queue = queue[1:]
		for ri, r := range p.Rules {
			rr := ast.RenameApart(r, fmt.Sprintf("$o%d", ri))
			for _, b := range rr.Body {
				s, ok := ast.MatchGround(b, f, nil)
				if !ok {
					continue
				}
				head := s.ApplyAtom(rr.Head)
				if head.IsGround() {
					add(head)
				}
			}
		}
		if len(known) > maxKnown {
			return nil, fmt.Errorf("uniform: optimistic derivation exceeded %d facts", maxKnown)
		}
	}
	out := engine.NewDatabase()
	for _, a := range known {
		if err := out.AddAtom(a); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func splitKey(key string) (pred, adn string) {
	for i := 0; i < len(key); i++ {
		if key[i] == '@' {
			return key[:i], key[i+1:]
		}
	}
	return key, ""
}

// OptimisticDeletionSafe is the Theorem 5.2 sufficient test (grounded
// variant) for deleting rule ri while preserving uniform query
// equivalence: with EDB1 the frozen body of the rule, the optimistic
// answer of the full program for the query predicate must be contained in
// the (non-optimistic) answer of the program without the rule.
func OptimisticDeletionSafe(p *ast.Program, ri int) (bool, error) {
	if ri < 0 || ri >= len(p.Rules) {
		return false, fmt.Errorf("uniform: rule index %d out of range", ri)
	}
	db, _, err := freezeBody(p.Rules[ri])
	if err != nil {
		return false, err
	}
	opt, err := OptimisticAnswer(p, db)
	if err != nil {
		return false, err
	}
	rest := p.Clone()
	rest.Rules = append(rest.Rules[:ri:ri], rest.Rules[ri+1:]...)
	res, err := engine.Eval(rest, db, evalOpts)
	if err != nil {
		return false, err
	}
	qk := p.Query.Key()
	optRel, ok := opt.Lookup(qk)
	if !ok {
		return true, nil
	}
	for _, t := range optRel.Tuples() {
		row := make([]ast.Term, len(t))
		for i, id := range t {
			row[i] = ast.C(opt.Syms.Name(id))
		}
		if !containsAtom(res.DB, ast.Atom{Pred: p.Query.Pred, Adornment: p.Query.Adornment, Args: row}) {
			return false, nil
		}
	}
	return true, nil
}

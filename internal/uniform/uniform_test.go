package uniform

import (
	"fmt"
	"math/rand"
	"testing"

	"existdlog/internal/ast"
	"existdlog/internal/engine"
	"existdlog/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Example 4 of the paper: the recursive rule of the projected transitive
// closure is uniformly redundant.
func TestRuleRedundantExample4(t *testing.T) {
	p := mustParse(t, `
a@nd(X) :- p(X,Z), a@nd(Z).
a@nd(X) :- p(X,Z).
?- a@nd(X).
`)
	ok, err := RuleRedundant(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("recursive rule should be uniformly redundant")
	}
	ok, err = RuleRedundant(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("exit rule must not be redundant")
	}
}

// Left- and right-linear transitive closure compute the same query on
// every ordinary (empty-IDB) database, yet they are NOT uniformly
// equivalent: with a seeded `a` fact their fixpoints differ. This is the
// gap between uniform and query equivalence that motivates Section 4 of
// the paper.
func TestLinearTCNotUniformlyEquivalent(t *testing.T) {
	left := mustParse(t, `
a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	right := mustParse(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	ok, err := Equivalent(left, right)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("left- and right-linear TC must not be uniformly equivalent")
	}
	// Each is uniformly equivalent to itself extended by a subsumed rule.
	ext := left.Clone()
	ext.Rules = append(ext.Rules, mustParse(t, `
a(X,Y) :- p(X,Y), p(Y,Y).
?- a(X,Y).
`).Rules[0])
	ok, err = Equivalent(left, ext)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("adding a subsumed rule must preserve uniform equivalence")
	}
}

func TestNotEquivalent(t *testing.T) {
	tc := mustParse(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	onlyBase := mustParse(t, `
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	ok, err := Equivalent(tc, onlyBase)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("TC is not uniformly equivalent to its exit rule")
	}
	// But containment holds one way.
	ok, err = Contained(onlyBase, tc)
	if err != nil || !ok {
		t.Errorf("exit-only program should be contained in TC: ok=%v err=%v", ok, err)
	}
}

// Uniform containment must imply query containment on arbitrary EDBs
// (spot-checked by evaluation).
func TestContainmentImpliesQueryContainment(t *testing.T) {
	p1 := mustParse(t, `
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	p2 := mustParse(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	ok, err := Contained(p1, p2)
	if err != nil || !ok {
		t.Fatalf("containment expected: %v %v", ok, err)
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		db := engine.NewDatabase()
		for i := 0; i < 10; i++ {
			db.Add("p", fmt.Sprint(rng.Intn(6)), fmt.Sprint(rng.Intn(6)))
		}
		r1, err := engine.Eval(p1, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := engine.Eval(p2, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range r1.Answers(p1.Query) {
			found := false
			for _, row2 := range r2.Answers(p2.Query) {
				if fmt.Sprint(row) == fmt.Sprint(row2) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("answer %v of p1 missing from p2", row)
			}
		}
	}
}

// Example 5: uniform equivalence cannot delete any rule of the two-version
// program (also covered in the deletion package; this exercises the raw
// test).
func TestExample5NoRedundantRules(t *testing.T) {
	p := mustParse(t, `
a@nd(X) :- a@nn(X,Z), p(Z,Y).
a@nd(X) :- p(X,Y).
a@nn(X,Y) :- a@nn(X,Z), p(Z,Y).
a@nn(X,Y) :- p(X,Y).
?- a@nd(X).
`)
	for ri := range p.Rules {
		ok, err := RuleRedundant(p, ri)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("rule %d unexpectedly redundant", ri+1)
		}
	}
}

// Example 6 under the grounded optimistic test (Theorem 5.2 variant): the
// recursive a@nn rule and the a@nn exit rule are deletable.
func TestOptimisticDeletionExample6(t *testing.T) {
	p := mustParse(t, `
a@nd(X) :- a@nn(X,Z), p(Z,Y).
a@nd(X) :- p(X,Y).
a@nn(X,Y) :- a@nn(X,Z), p(Z,Y).
a@nn(X,Y) :- p(X,Y).
?- a@nd(X).
`)
	ok, err := OptimisticDeletionSafe(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("Theorem 5.2 variant should allow deleting the recursive a@nn rule")
	}
	// Deleting the a@nd exit rule must be blocked: a@nd(x) would be lost.
	ok, err = OptimisticDeletionSafe(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("deleting the a@nd exit rule must be blocked")
	}
}

func TestOptimisticAnswerGrounding(t *testing.T) {
	// Heads that cannot be grounded through the matched fact are not
	// derived optimistically.
	p := mustParse(t, `
q(X,Y) :- h(X), s(Y).
h(X) :- e(X).
?- q(X,Y).
`)
	db := engine.NewDatabase()
	db.Add("e", "1")
	opt, err := OptimisticAnswer(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if opt.Count("q") != 0 {
		t.Errorf("q should not be optimistically derivable: %v", opt.Facts("q"))
	}
	if opt.Count("h") != 1 {
		t.Errorf("h should be optimistically derived: %v", opt.Facts("h"))
	}
}

func TestRuleRedundantIndexErrors(t *testing.T) {
	p := mustParse(t, `a(X) :- p(X).
?- a(X).`)
	if _, err := RuleRedundant(p, -1); err == nil {
		t.Error("negative index should error")
	}
	if _, err := RuleRedundant(p, 5); err == nil {
		t.Error("out-of-range index should error")
	}
}

// Freezing must treat adorned predicates as distinct relations: a@nn facts
// must not leak into a@nd.
func TestFreezeRespectsAdornment(t *testing.T) {
	p := mustParse(t, `
a@nd(X) :- a@nn(X,Y).
a@nn(X,Y) :- p(X,Y).
?- a@nd(X).
`)
	ok, err := Derives(p, ast.NewRule(
		ast.Atom{Pred: "a", Adornment: "nd", Args: []ast.Term{ast.V("X")}},
		ast.NewAdorned("a", "nn", ast.V("X"), ast.V("Y")),
	))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("the unit rule itself should be derivable")
	}
	ok, err = Derives(p, ast.NewRule(
		ast.Atom{Pred: "a", Adornment: "nd", Args: []ast.Term{ast.V("X")}},
		ast.NewAtom("p0", ast.V("X"), ast.V("Y")),
	))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("a@nd must not be derivable from an unrelated base relation")
	}
}

// The uniform-equivalence machinery refuses programs with negation (the
// freeze argument is only valid for positive programs).
func TestUniformRejectsNegation(t *testing.T) {
	p := mustParse(t, `
a(X) :- b(X), not c(X).
c(X) :- d(X).
?- a(X).
`)
	if _, err := RuleRedundant(p, 0); err == nil {
		t.Error("negation must be rejected")
	}
	if _, err := Equivalent(p, p); err == nil {
		t.Error("negation must be rejected in Equivalent")
	}
	if _, err := LiteralRedundant(p, 0, 0); err == nil {
		t.Error("negation must be rejected in LiteralRedundant")
	}
}

func TestContainedFalse(t *testing.T) {
	tc := mustParse(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	other := mustParse(t, `
a(X,Y) :- q(X,Y).
?- a(X,Y).
`)
	ok, err := Contained(tc, other)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("TC over p is not contained in copy-of-q")
	}
}

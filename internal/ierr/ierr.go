// Package ierr converts panics crossing an API boundary into errors. The
// engine, parser, and facade entry points defer Rescue so that a bug (or an
// injected failpoint panic) inside the library surfaces to callers as a
// *InternalError carrying the panic value and the stack at the panic site,
// never as a crashed process. Internal invariant violations are still
// raised with panic — Rescue is the boundary that turns them into values.
package ierr

import (
	"errors"
	"fmt"
	"runtime/debug"
)

// InternalError wraps a recovered panic. It satisfies error, and Unwrap
// exposes the panic value when it was itself an error, so errors.Is/As see
// through to typed causes (e.g. engine.ErrArityMismatch).
type InternalError struct {
	// Recovered is the value the panic was raised with.
	Recovered any
	// Stack is the formatted goroutine stack captured at recovery time,
	// which — because deferred functions run before the stack unwinds —
	// includes the frames of the panic site.
	Stack []byte
}

// New wraps a recovered panic value. Call it from inside a deferred
// function, after recover, so the captured stack still holds the panic
// frames.
func New(recovered any) *InternalError {
	return &InternalError{Recovered: recovered, Stack: debug.Stack()}
}

// Error renders the panic value; the stack is kept structured rather than
// flattened into the message so logs can choose how much to print.
func (e *InternalError) Error() string {
	return fmt.Sprintf("internal error: %v", e.Recovered)
}

// Unwrap exposes the panic value when it was an error.
func (e *InternalError) Unwrap() error {
	if err, ok := e.Recovered.(error); ok {
		return err
	}
	return nil
}

// Rescue recovers a panic and stores it in *errp as an *InternalError.
// Use as the first deferred call of an exported entry point:
//
//	func Eval(...) (res *Result, err error) {
//		defer ierr.Rescue(&err)
//		...
//	}
//
// A panic that already carries an *InternalError (e.g. re-raised from a
// lower boundary) is stored as-is, keeping the innermost stack.
func Rescue(errp *error) {
	if r := recover(); r != nil {
		if err, ok := r.(error); ok {
			var ie *InternalError
			if errors.As(err, &ie) {
				*errp = err
				return
			}
		}
		*errp = New(r)
	}
}

package tracespan

import "sync/atomic"

// Recorder is the flight recorder: a fixed-size lock-free ring of the
// most recently completed request traces. Writers claim a slot with one
// atomic increment and publish with one atomic pointer store — no
// locks, no allocation beyond the trace itself (which the Builder
// already built), and readers (/debug/requests, the loadgen exemplar
// resolver) snapshot without blocking writers.
//
// A nil *Recorder is the disabled state: Begin returns a nil *Builder
// and the whole span path degenerates to nil-receiver no-ops.
type Recorder struct {
	slots []atomic.Pointer[Request]
	next  atomic.Uint64
}

// NewRecorder returns a recorder keeping the last size completed
// requests (minimum 16, rounded up to a power of two so slot claiming
// is a mask, not a modulo).
func NewRecorder(size int) *Recorder {
	if size < 16 {
		size = 16
	}
	n := 16
	for n < size {
		n <<= 1
	}
	return &Recorder{slots: make([]atomic.Pointer[Request], n)}
}

// Cap returns the ring capacity (0 on nil).
func (r *Recorder) Cap() int {
	if r == nil {
		return 0
	}
	return len(r.slots)
}

// put publishes a completed trace, evicting the oldest entry once full.
func (r *Recorder) put(req *Request) {
	if r == nil || req == nil {
		return
	}
	i := r.next.Add(1) - 1
	r.slots[i&uint64(len(r.slots)-1)].Store(req)
}

// Snapshot returns up to limit completed traces, newest first
// (limit <= 0 means the whole ring). Entries are immutable once
// published; the slice is freshly allocated and safe to retain.
func (r *Recorder) Snapshot(limit int) []*Request {
	if r == nil {
		return nil
	}
	n := len(r.slots)
	if limit <= 0 || limit > n {
		limit = n
	}
	out := make([]*Request, 0, limit)
	head := r.next.Load()
	for i := 0; i < n && len(out) < limit; i++ {
		// Walk backwards from the most recently claimed slot.
		idx := (head - 1 - uint64(i)) & uint64(n-1)
		if head < uint64(n) && uint64(i) >= head {
			break // ring not yet full: older slots were never written
		}
		if req := r.slots[idx].Load(); req != nil {
			out = append(out, req)
		}
	}
	return out
}

// Find returns the recorded trace with the given trace id, or nil. When
// a trace id appears more than once (client retries share a trace id
// across attempts), the newest entry wins.
func (r *Recorder) Find(traceID string) *Request {
	for _, req := range r.Snapshot(0) {
		if req.TraceID == traceID {
			return req
		}
	}
	return nil
}

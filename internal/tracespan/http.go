package tracespan

import (
	"encoding/json"
	"fmt"
	"html"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ServeHTTP renders the flight recorder at /debug/requests in the
// spirit of x/net/trace: an HTML table of recent requests with
// expandable span trees, or raw JSON with ?json=1. Filters:
//
//	?verb=query          only this verb
//	?status=503          only this HTTP status
//	?min=50ms            only requests at least this slow
//	?trace=<32 hex>      only this trace id
//	?limit=100           at most this many (default 64)
//	?json=1              JSON instead of HTML
func (r *Recorder) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	if r == nil {
		http.Error(w, "flight recorder disabled", http.StatusNotFound)
		return
	}
	q := req.URL.Query()
	limit := 64
	if s := q.Get("limit"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			limit = n
		}
	}
	var minDur time.Duration
	if s := q.Get("min"); s != "" {
		if d, err := time.ParseDuration(s); err == nil {
			minDur = d
		}
	}
	verb := q.Get("verb")
	traceID := q.Get("trace")
	status := 0
	if s := q.Get("status"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			status = n
		}
	}

	var out []*Request
	for _, t := range r.Snapshot(0) {
		if verb != "" && t.Verb != verb {
			continue
		}
		if status != 0 && t.Status != status {
			continue
		}
		if t.Duration < minDur {
			continue
		}
		if traceID != "" && t.TraceID != traceID {
			continue
		}
		out = append(out, t)
		if len(out) >= limit {
			break
		}
	}

	if q.Get("json") != "" {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Capacity int        `json:"capacity"`
			Count    int        `json:"count"`
			Requests []*Request `json:"requests"`
		}{r.Cap(), len(out), out})
		return
	}

	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	fmt.Fprintf(w, `<!DOCTYPE html><html><head><title>/debug/requests</title><style>
body{font-family:monospace;margin:1em}
table{border-collapse:collapse}
td,th{padding:2px 8px;text-align:left;border-bottom:1px solid #ddd}
tr.bad td{background:#fee}
details{margin:0}
.bar{display:inline-block;height:9px;background:#69c}
.lane{display:inline-block;width:260px;background:#f2f2f2;position:relative}
.attr{color:#888}
</style></head><body>
<h2>existdlog flight recorder</h2>
<p>%d of %d ring slots shown · filters: <code>?verb= &status= &min=50ms &trace= &limit= &json=1</code></p>
<table><tr><th>start</th><th>request</th><th>verb</th><th>detail</th><th>status</th><th>outcome</th><th>duration</th><th>trace</th><th>spans</th></tr>
`, len(out), r.Cap())
	for _, t := range out {
		cls := ""
		if t.Status >= 400 {
			cls = ` class="bad"`
		}
		fmt.Fprintf(w, `<tr%s><td>%s</td><td>%s</td><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td><a href="?trace=%s">%s…</a></td><td>%s</td></tr>
`,
			cls,
			t.Start.Format("15:04:05.000"),
			html.EscapeString(t.ID),
			html.EscapeString(t.Verb),
			html.EscapeString(truncate(t.Detail, 48)),
			t.Status,
			html.EscapeString(t.Outcome),
			t.Duration.Round(time.Microsecond),
			t.TraceID, t.TraceID[:8],
			spanTreeHTML(t))
	}
	fmt.Fprint(w, "</table></body></html>\n")
}

// spanTreeHTML renders one request's spans as an expandable list with
// proportional offset bars.
func spanTreeHTML(t *Request) string {
	if len(t.Spans) == 0 {
		return "—"
	}
	total := t.Duration
	if total <= 0 {
		total = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<details><summary>%d spans (%.0f%% staged)</summary><table>", len(t.Spans), 100*t.StageCoverage())
	// Children directly under their parent, depth-first in index order.
	children := map[int][]int{}
	for i := range t.Spans {
		children[t.Spans[i].Parent] = append(children[t.Spans[i].Parent], i)
	}
	for _, ids := range children {
		sort.Ints(ids)
	}
	var walk func(parent, depth int)
	walk = func(parent, depth int) {
		for _, i := range children[parent] {
			sp := &t.Spans[i]
			left := 260 * float64(sp.Start) / float64(total)
			width := 260 * float64(sp.End-sp.Start) / float64(total)
			if width < 1 {
				width = 1
			}
			var attrs strings.Builder
			for _, a := range sp.Attrs {
				fmt.Fprintf(&attrs, " %s=%s", html.EscapeString(a.Key), html.EscapeString(a.Value))
			}
			fmt.Fprintf(&b,
				`<tr><td style="padding-left:%dpx">%s</td><td>%s</td><td><span class="lane"><span class="bar" style="margin-left:%.0fpx;width:%.0fpx"></span></span></td><td class="attr">%s</td></tr>`,
				8+depth*14, html.EscapeString(sp.Name),
				(sp.End - sp.Start).Round(time.Microsecond),
				left, width, attrs.String())
			walk(i, depth+1)
		}
	}
	walk(RootSpan, 0)
	b.WriteString("</table></details>")
	return b.String()
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

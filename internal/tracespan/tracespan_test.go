package tracespan

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestTraceparentRoundTrip(t *testing.T) {
	tid := NewTraceID()
	sid := NewSpanID()
	h := Traceparent(tid, sid)
	if len(h) != 55 {
		t.Fatalf("traceparent %q has length %d, want 55", h, len(h))
	}
	gotT, gotS, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent rejected %q", h)
	}
	if gotT != tid || gotS != sid {
		t.Errorf("round trip: got (%s,%s), want (%s,%s)", gotT, gotS, tid, sid)
	}
}

func TestTraceparentRejects(t *testing.T) {
	tid, sid := NewTraceID(), NewSpanID()
	bad := []string{
		"",
		"00",
		"00-" + tid.String() + "-" + sid.String(),                    // missing flags
		"00-" + tid.String() + "-" + sid.String() + "01",             // missing last dash
		"00-" + strings.Repeat("0", 32) + "-" + sid.String() + "-01", // zero trace id
		"00-" + tid.String() + "-0000000000000000-01",                // zero span id
		"ff-" + tid.String() + "-" + sid.String() + "-01",            // forbidden version
		"00-" + strings.Repeat("zz", 16) + "-" + sid.String() + "-01",
	}
	for _, h := range bad {
		if _, _, ok := ParseTraceparent(h); ok {
			t.Errorf("ParseTraceparent accepted %q", h)
		}
	}
	// Unknown-but-well-formed versions are accepted (forward compat),
	// including ones with trailing future fields.
	if _, _, ok := ParseTraceparent("01-" + tid.String() + "-" + sid.String() + "-01-extra"); !ok {
		t.Error("ParseTraceparent rejected a forward-compatible future version")
	}
}

func TestRingWrapNewestFirst(t *testing.T) {
	rec := NewRecorder(16)
	if rec.Cap() != 16 {
		t.Fatalf("Cap() = %d, want 16", rec.Cap())
	}
	for i := 0; i < 40; i++ {
		tb := rec.Begin(NewTraceID(), SpanID{}, fmt.Sprintf("q%d", i), "query", "")
		tb.Finish(200, "ok")
	}
	snap := rec.Snapshot(0)
	if len(snap) != 16 {
		t.Fatalf("Snapshot after wrap has %d entries, want 16", len(snap))
	}
	for i, req := range snap {
		want := fmt.Sprintf("q%d", 39-i)
		if req.ID != want {
			t.Errorf("Snapshot[%d] = %s, want %s (newest first)", i, req.ID, want)
		}
	}
	if got := rec.Snapshot(3); len(got) != 3 || got[0].ID != "q39" {
		t.Errorf("Snapshot(3) = %d entries starting %s, want 3 starting q39", len(got), got[0].ID)
	}
}

func TestRingPartialFill(t *testing.T) {
	rec := NewRecorder(16)
	for i := 0; i < 5; i++ {
		rec.Begin(NewTraceID(), SpanID{}, fmt.Sprintf("q%d", i), "query", "").Finish(200, "ok")
	}
	snap := rec.Snapshot(0)
	if len(snap) != 5 {
		t.Fatalf("Snapshot of part-filled ring has %d entries, want 5", len(snap))
	}
	if snap[0].ID != "q4" || snap[4].ID != "q0" {
		t.Errorf("order = %s..%s, want q4..q0", snap[0].ID, snap[4].ID)
	}
}

func TestFindNewestWins(t *testing.T) {
	rec := NewRecorder(16)
	tid := NewTraceID()
	rec.Begin(tid, SpanID{}, "m1", "update", "").Finish(503, "error")
	rec.Begin(tid, SpanID{}, "m2", "update", "").Finish(200, "ok")
	got := rec.Find(tid.String())
	if got == nil || got.ID != "m2" {
		t.Fatalf("Find returned %+v, want the newest entry m2", got)
	}
	if rec.Find("feedfacefeedfacefeedfacefeedface") != nil {
		t.Error("Find returned an entry for an unknown trace id")
	}
}

func TestBuilderSpans(t *testing.T) {
	rec := NewRecorder(16)
	tid := NewTraceID()
	parent := NewSpanID()
	tb := rec.Begin(tid, parent, "q1", "query", "")
	tb.SetDetail("a(X,Y)")
	s1 := tb.Start("decode")
	tb.End(s1)
	s2 := tb.Start("eval")
	c1 := tb.StartChild("pass 1", s2)
	tb.Attr(c1, "facts", "6")
	tb.End(c1)
	// s2 left open: Finish must seal it at the final offset.
	req := tb.Finish(200, "ok")
	if req == nil {
		t.Fatal("Finish returned nil on a live builder")
	}
	if req.TraceID != tid.String() || req.ParentSpan != parent.String() {
		t.Errorf("ids: trace %s parent %s, want %s/%s", req.TraceID, req.ParentSpan, tid, parent)
	}
	if req.Detail != "a(X,Y)" || req.Verb != "query" || req.Outcome != "ok" {
		t.Errorf("req = %+v", req)
	}
	if len(req.Spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(req.Spans))
	}
	if req.Spans[2].Parent != s2 || req.Spans[2].Name != "pass 1" {
		t.Errorf("child span = %+v, want parent %d", req.Spans[2], s2)
	}
	if req.Spans[1].End != req.Duration {
		t.Errorf("open span sealed at %v, want the request duration %v", req.Spans[1].End, req.Duration)
	}
	if len(req.Spans[2].Attrs) != 1 || req.Spans[2].Attrs[0].Key != "facts" {
		t.Errorf("attrs = %+v", req.Spans[2].Attrs)
	}
	if err := req.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
	if got := rec.Find(tid.String()); got != req {
		t.Error("Finish did not publish the request to the recorder")
	}
}

func TestBuilderSpanCap(t *testing.T) {
	rec := NewRecorder(16)
	tb := rec.Begin(NewTraceID(), SpanID{}, "q1", "query", "")
	for i := 0; i < maxSpans+20; i++ {
		tb.End(tb.Start("s"))
	}
	req := tb.Finish(200, "ok")
	if len(req.Spans) != maxSpans {
		t.Fatalf("got %d spans, want the cap %d", len(req.Spans), maxSpans)
	}
	last := req.Spans[len(req.Spans)-1]
	if len(last.Attrs) == 0 || last.Attrs[len(last.Attrs)-1].Key != "truncated" {
		t.Errorf("last span is not marked truncated: %+v", last)
	}
	if err := req.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

// TestChildTruncationKeepsStages: a pass-heavy evaluation grafting
// hundreds of child spans must not crowd out the later top-level stage
// spans — otherwise the stage sum stops covering the request's latency
// and the BENCH exemplar coverage check breaks on recursive queries.
func TestChildTruncationKeepsStages(t *testing.T) {
	rec := NewRecorder(16)
	tb := rec.Begin(NewTraceID(), SpanID{}, "q1", "query", "tc(X,Y)")
	tb.End(tb.Start("decode"))
	eval := tb.Start("eval")
	for i := 0; i < 500; i++ {
		tb.End(tb.StartChild("pass", eval))
	}
	tb.End(eval)
	resp := tb.Start("respond")
	if resp == RootSpan {
		t.Fatal("top-level respond span was dropped by child truncation")
	}
	tb.End(resp)
	req := tb.Finish(200, "ok")
	if len(req.Spans) >= maxSpans {
		t.Fatalf("got %d spans, want headroom below the cap %d", len(req.Spans), maxSpans)
	}
	var tops []string
	for _, sp := range req.Spans {
		if sp.Parent == RootSpan {
			tops = append(tops, sp.Name)
		}
	}
	if got := strings.Join(tops, ","); got != "decode,eval,respond" {
		t.Errorf("top-level stages = %s, want decode,eval,respond", got)
	}
	last := req.Spans[len(req.Spans)-1]
	found := false
	for _, a := range last.Attrs {
		if a.Key == "truncated" {
			found = true
		}
	}
	if !found {
		t.Errorf("truncation not recorded on the last span: %+v", last)
	}
	if err := req.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	base := func() *Request {
		return &Request{
			TraceID:  NewTraceID().String(),
			Verb:     "query",
			Duration: 10 * time.Millisecond,
			Spans: []Span{
				{Name: "a", Parent: RootSpan, Start: 0, End: 4 * time.Millisecond},
				{Name: "b", Parent: 0, Start: time.Millisecond, End: 2 * time.Millisecond},
			},
		}
	}
	if err := base().Validate(); err != nil {
		t.Fatalf("valid request rejected: %v", err)
	}
	for name, mutate := range map[string]func(*Request){
		"bad trace id":     func(r *Request) { r.TraceID = "xyz" },
		"zero trace id":    func(r *Request) { r.TraceID = strings.Repeat("0", 32) },
		"no verb":          func(r *Request) { r.Verb = "" },
		"unnamed span":     func(r *Request) { r.Spans[0].Name = "" },
		"negative start":   func(r *Request) { r.Spans[0].Start = -1 },
		"end before start": func(r *Request) { r.Spans[1].End = 0 },
		"end past request": func(r *Request) { r.Spans[1].End = time.Second },
		"forward parent":   func(r *Request) { r.Spans[0].Parent = 1 },
		"self parent":      func(r *Request) { r.Spans[1].Parent = 1 },
	} {
		r := base()
		mutate(r)
		if err := r.Validate(); err == nil {
			t.Errorf("%s: Validate accepted the corrupt request", name)
		}
	}
}

// TestSpanPathDisabledZeroAllocs pins the disabled hot path: with no
// recorder configured, the whole per-request span choreography must not
// allocate at all — this is what keeps tracing always-on in the config
// without taxing the measured serve path.
func TestSpanPathDisabledZeroAllocs(t *testing.T) {
	var rec *Recorder
	allocs := testing.AllocsPerRun(200, func() {
		tb := rec.Begin(TraceID{}, SpanID{}, "q1", "query", "")
		tb.SetDetail("a(X,Y)")
		s := tb.Start("decode")
		tb.End(s)
		e := tb.Start("eval")
		c := tb.StartChild("pass 1", e)
		tb.Attr(c, "facts", "6")
		tb.End(c)
		tb.Add("grafted", e, 0, 0)
		_ = tb.Offset()
		_ = tb.OffsetOf(time.Time{})
		_ = tb.TraceID()
		tb.End(e)
		if tb.Finish(200, "ok") != nil {
			t.Fatal("nil builder finished a request")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled span path allocates %.1f/op, want 0", allocs)
	}
}

func TestDebugRequestsHandler(t *testing.T) {
	rec := NewRecorder(16)
	for i := 0; i < 3; i++ {
		tb := rec.Begin(NewTraceID(), SpanID{}, fmt.Sprintf("q%d", i), "query", "a(X,Y)")
		tb.End(tb.Start("eval"))
		tb.Finish(200, "ok")
	}
	tb := rec.Begin(NewTraceID(), SpanID{}, "m1", "update", "2 facts")
	tb.Finish(503, "rejected:degraded")

	get := func(path string) *httptest.ResponseRecorder {
		w := httptest.NewRecorder()
		rec.ServeHTTP(w, httptest.NewRequest("GET", path, nil))
		return w
	}

	var out struct {
		Capacity int        `json:"capacity"`
		Count    int        `json:"count"`
		Requests []*Request `json:"requests"`
	}
	w := get("/debug/requests?json=1")
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	if err := json.Unmarshal(w.Body.Bytes(), &out); err != nil {
		t.Fatalf("json: %v\n%s", err, w.Body.String())
	}
	if out.Capacity != 16 || len(out.Requests) != 4 {
		t.Fatalf("capacity %d, %d requests; want 16 and 4", out.Capacity, len(out.Requests))
	}
	if out.Requests[0].ID != "m1" {
		t.Errorf("first entry %s, want the newest m1", out.Requests[0].ID)
	}

	w = get("/debug/requests?json=1&verb=update")
	out.Requests = nil
	json.Unmarshal(w.Body.Bytes(), &out)
	if len(out.Requests) != 1 || out.Requests[0].Verb != "update" {
		t.Errorf("verb filter returned %d entries", len(out.Requests))
	}

	w = get("/debug/requests?json=1&status=503")
	out.Requests = nil
	json.Unmarshal(w.Body.Bytes(), &out)
	if len(out.Requests) != 1 || out.Requests[0].Status != 503 {
		t.Errorf("status filter returned %d entries", len(out.Requests))
	}

	w = get("/debug/requests?json=1&min=1h")
	out.Requests = nil
	json.Unmarshal(w.Body.Bytes(), &out)
	if len(out.Requests) != 0 {
		t.Errorf("min-duration filter returned %d entries, want 0", len(out.Requests))
	}

	if w := get("/debug/requests"); !strings.Contains(w.Body.String(), "m1") ||
		!strings.Contains(w.Header().Get("Content-Type"), "text/html") {
		t.Error("HTML view is missing entries or the content type")
	}

	var disabled *Recorder
	w = httptest.NewRecorder()
	disabled.ServeHTTP(w, httptest.NewRequest("GET", "/debug/requests", nil))
	if w.Code != 404 {
		t.Errorf("disabled recorder served %d, want 404", w.Code)
	}
}

// Package tracespan is the end-to-end request tracer behind `existdlog
// serve` and `existdlog loadgen`: a hand-rolled, allocation-lean span
// model threaded through the whole request lifecycle — client send,
// W3C traceparent propagation, admission queue wait, compiled-program
// cache lookup, per-pass evaluation, and (for mutations) the store's
// queue/coalesce/maintain/WAL-append/fsync/install/ack pipeline.
//
// Completed request traces land in a fixed-size lock-free ring buffer
// (the flight recorder, ring.go) served at /debug/requests (http.go) in
// the spirit of x/net/trace. Sampling is head rate 1.0 — every request
// is traced when a recorder is configured — and the entire span hot
// path is nil-receiver no-ops when it is not: a server without a
// recorder performs zero tracing allocations (pinned by
// TestSpanPathDisabledZeroAllocs), which is what lets tracing stay
// always-on in the config without taxing the measured serve path.
//
// Clocking: spans are offsets from the request's start on the real
// monotonic clock (time.Now), deliberately independent of the server's
// injectable metrics clock — tracing must not perturb the
// byte-deterministic golden /metrics scrape, and span math must never
// see a stepped fake.
package tracespan

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"time"
)

// TraceID identifies one logical request end to end: the client
// generates it once per call and every retry attempt, every server-side
// span tree, every WAL record, and every histogram exemplar it touches
// carries the same id.
type TraceID [16]byte

// SpanID identifies one attempt/span within a trace: a retrying client
// reuses the TraceID but generates a fresh SpanID per attempt, which is
// how the flight recorder distinguishes attempts without ever
// duplicating an entry.
type SpanID [8]byte

// IsZero reports an unset id.
func (t TraceID) IsZero() bool { return t == TraceID{} }

// IsZero reports an unset id.
func (s SpanID) IsZero() bool { return s == SpanID{} }

// String renders the id as 32 lowercase hex digits (the W3C form).
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random trace id. The zero id (no entropy
// available) is the documented "untraced" sentinel.
func NewTraceID() TraceID {
	var t TraceID
	if _, err := rand.Read(t[:]); err != nil {
		return TraceID{}
	}
	return t
}

// NewSpanID returns a random span id.
func NewSpanID() SpanID {
	var s SpanID
	if _, err := rand.Read(s[:]); err != nil {
		return SpanID{}
	}
	return s
}

// ParseTraceID parses 32 hex digits.
func ParseTraceID(s string) (TraceID, bool) {
	var t TraceID
	if len(s) != 32 {
		return t, false
	}
	if _, err := hex.Decode(t[:], []byte(s)); err != nil {
		return TraceID{}, false
	}
	return t, !t.IsZero()
}

// Traceparent renders the W3C trace-context header for a sampled
// request: version 00, 16-byte trace id, 8-byte parent span id, flags
// 01 (sampled — head sampling rate is always 1.0 here).
func Traceparent(t TraceID, s SpanID) string {
	return "00-" + t.String() + "-" + s.String() + "-01"
}

// ParseTraceparent decodes a W3C traceparent header. Unknown versions
// are accepted as long as the field shape matches (per the spec's
// forward-compatibility rule); a zero trace or span id is invalid.
func ParseTraceparent(h string) (TraceID, SpanID, bool) {
	// 00-{32 hex}-{16 hex}-{2 hex}
	if len(h) < 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return TraceID{}, SpanID{}, false
	}
	if h[0] == 'f' && h[1] == 'f' {
		return TraceID{}, SpanID{}, false // version 0xff is forbidden
	}
	t, ok := ParseTraceID(h[3:35])
	if !ok {
		return TraceID{}, SpanID{}, false
	}
	var s SpanID
	if _, err := hex.Decode(s[:], []byte(h[36:52])); err != nil || s.IsZero() {
		return TraceID{}, SpanID{}, false
	}
	return t, s, true
}

// ctxKey carries a caller-chosen TraceID through a context: the loadgen
// harness pins deterministic per-request ids this way so BENCH exemplar
// references are reproducible for a given (scenario, seed).
type ctxKey struct{}

// ContextWithTrace returns a context carrying an explicit trace id for
// the next client call.
func ContextWithTrace(ctx context.Context, t TraceID) context.Context {
	return context.WithValue(ctx, ctxKey{}, t)
}

// TraceFromContext extracts a trace id planted by ContextWithTrace.
func TraceFromContext(ctx context.Context) (TraceID, bool) {
	t, ok := ctx.Value(ctxKey{}).(TraceID)
	return t, ok && !t.IsZero()
}

// Attr is one key/value annotation on a span (cache hit/miss, pass fact
// counts, WAL record counts, ...). Values are pre-rendered strings so a
// recorded trace is immutable and trivially serializable.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span is one timed stage of a request, as an offset range from the
// request's start. Parent is the index of the enclosing span in the
// request's Spans slice, or RootSpan for a top-level stage — top-level
// stages are disjoint and together cover (nearly) the whole request,
// which is what lets the slow-query log and the BENCH exemplar checks
// attribute a request's latency stage by stage.
type Span struct {
	Name   string        `json:"name"`
	Parent int           `json:"parent"`
	Start  time.Duration `json:"start_ns"`
	End    time.Duration `json:"end_ns"`
	Attrs  []Attr        `json:"attrs,omitempty"`
}

// RootSpan is the Parent value of a top-level stage span (the request
// itself is the implicit root).
const RootSpan = -1

// Request is one completed request's span tree — the flight recorder's
// unit of storage and the JSON shape /debug/requests serves.
type Request struct {
	// TraceID is the request's 32-hex trace id; ParentSpan is the
	// client's attempt span id from the incoming traceparent ("" when
	// the server originated the trace), and SpanID is this server-side
	// root span's own id.
	TraceID    string `json:"trace_id"`
	SpanID     string `json:"span_id"`
	ParentSpan string `json:"parent_span_id,omitempty"`
	// ID is the server's request id (q17, m4) — the same id the request
	// log, error bodies, and engine cancellation causes carry.
	ID string `json:"request"`
	// Verb is the endpoint class: "query", "update", "retract", or a
	// client-side verb like "client.query".
	Verb string `json:"verb"`
	// Detail is the goal (queries) or fact count (mutations).
	Detail  string `json:"detail,omitempty"`
	Status  int    `json:"status"`
	Outcome string `json:"outcome"`
	// Start is the wall-clock arrival; Duration the request's total
	// wall time; Spans the stage breakdown, in creation order.
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Spans    []Span        `json:"spans"`
}

// maxSpans bounds one request's span count: a deeply recursive query
// can run hundreds of passes, and the recorder must stay fixed-cost.
// Spans past the cap are dropped and counted in a "truncated" attr on
// the last kept span.
const maxSpans = 96

// childSpanCap is where child spans stop being recorded, leaving
// headroom below maxSpans for later top-level stages: a pass-heavy
// evaluation must never crowd out the respond/store stage spans, or the
// stage sum would stop covering the request's latency.
const childSpanCap = maxSpans - 8

// StageSum sums the durations of the top-level stage spans — the
// quantity the BENCH exemplar check compares against Duration (they
// must agree within a few percent, or a stage went unaccounted).
func (r *Request) StageSum() time.Duration {
	var sum time.Duration
	for i := range r.Spans {
		if r.Spans[i].Parent == RootSpan {
			sum += r.Spans[i].End - r.Spans[i].Start
		}
	}
	return sum
}

// StageCoverage is StageSum over Duration (0 for an instant request).
func (r *Request) StageCoverage() float64 {
	if r.Duration <= 0 {
		return 0
	}
	return float64(r.StageSum()) / float64(r.Duration)
}

// Validate checks a recorded trace's structural invariants — the schema
// the CI smoke and `loadgen -check` assert on embedded span trees: a
// well-formed trace id, monotone span ranges inside the request
// duration, and parent indices that point backwards to real spans.
func (r *Request) Validate() error {
	if _, ok := ParseTraceID(r.TraceID); !ok {
		return fmt.Errorf("tracespan: bad trace id %q", r.TraceID)
	}
	if r.Verb == "" {
		return fmt.Errorf("tracespan: trace %s has no verb", r.TraceID)
	}
	if r.Duration < 0 {
		return fmt.Errorf("tracespan: trace %s has negative duration", r.TraceID)
	}
	// Span ends may overshoot Duration by a scheduling sliver (the
	// finish timestamp is taken after the last End); allow 10%+1ms.
	limit := r.Duration + r.Duration/10 + time.Millisecond
	for i := range r.Spans {
		sp := &r.Spans[i]
		if sp.Name == "" {
			return fmt.Errorf("tracespan: trace %s span %d has no name", r.TraceID, i)
		}
		if sp.Start < 0 || sp.End < sp.Start {
			return fmt.Errorf("tracespan: trace %s span %q range [%v,%v] is not monotone",
				r.TraceID, sp.Name, sp.Start, sp.End)
		}
		if sp.End > limit {
			return fmt.Errorf("tracespan: trace %s span %q ends at %v, past the request's %v",
				r.TraceID, sp.Name, sp.End, r.Duration)
		}
		if sp.Parent != RootSpan && (sp.Parent < 0 || sp.Parent >= i) {
			return fmt.Errorf("tracespan: trace %s span %q parent %d does not point at an earlier span",
				r.TraceID, sp.Name, sp.Parent)
		}
	}
	return nil
}

// Builder accumulates one in-flight request's spans. A Builder is owned
// by the request's goroutine — no locking — and a nil *Builder is the
// disabled path: every method is a nil-receiver no-op, so call sites
// need no recorder checks and the disabled hot path costs one branch.
type Builder struct {
	rec   *Recorder
	req   Request
	start time.Time
	drops int
}

// Begin opens a trace for one request. A nil Recorder returns a nil
// Builder (the zero-cost disabled path). parent is the client's span id
// from traceparent (zero when the server originates the trace).
func (r *Recorder) Begin(trace TraceID, parent SpanID, id, verb, detail string) *Builder {
	if r == nil {
		return nil
	}
	b := &Builder{rec: r, start: time.Now()}
	b.req = Request{
		TraceID: trace.String(),
		SpanID:  NewSpanID().String(),
		ID:      id,
		Verb:    verb,
		Detail:  detail,
		Start:   b.start,
		Spans:   make([]Span, 0, 12),
	}
	if !parent.IsZero() {
		b.req.ParentSpan = parent.String()
	}
	return b
}

// TraceID returns the trace id ("" on the nil builder).
func (b *Builder) TraceID() string {
	if b == nil {
		return ""
	}
	return b.req.TraceID
}

// SetDetail replaces the request's detail once known (the goal is only
// parsed after the trace opens).
func (b *Builder) SetDetail(d string) {
	if b == nil {
		return
	}
	b.req.Detail = d
}

// since returns the offset of now from the request start.
func (b *Builder) since() time.Duration { return time.Since(b.start) }

// push appends a span, enforcing the cap (the lower childSpanCap for
// non-root spans). Returns the span's index or RootSpan when dropped.
func (b *Builder) push(sp Span) int {
	limit := maxSpans
	if sp.Parent != RootSpan {
		limit = childSpanCap
	}
	if len(b.req.Spans) >= limit {
		b.drops++
		return RootSpan
	}
	b.req.Spans = append(b.req.Spans, sp)
	return len(b.req.Spans) - 1
}

// Start opens a top-level stage span and returns its index.
func (b *Builder) Start(name string) int {
	if b == nil {
		return RootSpan
	}
	return b.push(Span{Name: name, Parent: RootSpan, Start: b.since(), End: -1})
}

// StartChild opens a span under parent (an index returned by an earlier
// Start/StartChild/Add) and returns its index.
func (b *Builder) StartChild(name string, parent int) int {
	if b == nil {
		return RootSpan
	}
	return b.push(Span{Name: name, Parent: parent, Start: b.since(), End: -1})
}

// End closes the span at index i (no-op for RootSpan or out-of-range,
// so dropped spans and the nil builder compose silently).
func (b *Builder) End(i int) {
	if b == nil || i < 0 || i >= len(b.req.Spans) {
		return
	}
	if b.req.Spans[i].End < 0 {
		b.req.Spans[i].End = b.since()
	}
}

// Add records a fully-formed span with explicit offsets — the path for
// stages measured elsewhere (engine pass times, the store applier's
// batch timings) that are grafted into this request's tree.
func (b *Builder) Add(name string, parent int, start, end time.Duration) int {
	if b == nil {
		return RootSpan
	}
	if start < 0 {
		start = 0
	}
	if end < start {
		end = start
	}
	return b.push(Span{Name: name, Parent: parent, Start: start, End: end})
}

// SpanStart returns span i's start offset (0 for RootSpan/nil): callers
// grafting external timings use it to anchor child offsets.
func (b *Builder) SpanStart(i int) time.Duration {
	if b == nil || i < 0 || i >= len(b.req.Spans) {
		return 0
	}
	return b.req.Spans[i].Start
}

// Attr annotates span i (no-op on nil/RootSpan).
func (b *Builder) Attr(i int, key, value string) {
	if b == nil || i < 0 || i >= len(b.req.Spans) {
		return
	}
	b.req.Spans[i].Attrs = append(b.req.Spans[i].Attrs, Attr{Key: key, Value: value})
}

// Offset returns the current offset from the request start (0 on nil):
// the anchor for grafting externally-measured sub-stages.
func (b *Builder) Offset() time.Duration {
	if b == nil {
		return 0
	}
	return b.since()
}

// OffsetOf converts an absolute timestamp (from the same monotonic
// clock domain, i.e. time.Now) to an offset in this request.
func (b *Builder) OffsetOf(t time.Time) time.Duration {
	if b == nil || t.IsZero() {
		return 0
	}
	return t.Sub(b.start)
}

// Finish seals the trace — closing any still-open spans at the final
// offset — and publishes it to the recorder. It returns the completed
// Request so the caller can feed the slow-query log and histogram
// exemplars, or nil on the nil builder. A Builder must not be used
// after Finish.
func (b *Builder) Finish(status int, outcome string) *Request {
	if b == nil {
		return nil
	}
	d := b.since()
	b.req.Duration = d
	b.req.Status = status
	b.req.Outcome = outcome
	for i := range b.req.Spans {
		if b.req.Spans[i].End < 0 {
			b.req.Spans[i].End = d
		}
	}
	if b.drops > 0 && len(b.req.Spans) > 0 {
		last := len(b.req.Spans) - 1
		b.req.Spans[last].Attrs = append(b.req.Spans[last].Attrs,
			Attr{Key: "truncated", Value: fmt.Sprintf("%d spans dropped", b.drops)})
	}
	req := &b.req
	b.rec.put(req)
	return req
}

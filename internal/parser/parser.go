package parser

import (
	"fmt"
	"strconv"

	"existdlog/internal/ast"
	"existdlog/internal/ierr"
)

// Result is the outcome of parsing a source text: the program (rules plus
// optional query goal) and any ground facts, which form the extensional
// database and are kept out of the Program per the paper's convention.
type Result struct {
	Program *ast.Program
	Facts   []ast.Atom
}

type parser struct {
	lex   *lexer
	tok   token
	anonN int
}

// Parse parses a Datalog source text. It returns an error with line:column
// position on malformed input. The resulting program has its Derived set
// computed from rule heads; facts for predicates that also have rules are
// rejected (the IDB must contain no facts).
//
// Parse never panics: malformed input yields an ordinary error, and any
// internal bug is recovered at this boundary into a stack-carrying
// *ierr.InternalError. The audited panic paths in this package are only
// MustParseProgram (whose contract is to panic, for literal sources in
// tests and examples) — every parsing and lexing error path returns.
func Parse(src string) (res *Result, err error) {
	defer ierr.Rescue(&err)
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	res = &Result{Program: ast.NewProgram(ast.Atom{})}
	for p.tok.kind != tokEOF {
		if p.tok.kind == tokQuery {
			if err := p.advance(); err != nil {
				return nil, err
			}
			goal, err := p.atom()
			if err != nil {
				return nil, err
			}
			if err := p.expect(tokDot); err != nil {
				return nil, err
			}
			if res.Program.Query.Pred != "" {
				return nil, fmt.Errorf("multiple query goals (second at %d:%d)", p.tok.line, p.tok.col)
			}
			if goal.Negated {
				return nil, fmt.Errorf("negated query goal %s", goal)
			}
			res.Program.Query = goal
			continue
		}
		head, err := p.atom()
		if err != nil {
			return nil, err
		}
		switch p.tok.kind {
		case tokDot:
			if err := p.advance(); err != nil {
				return nil, err
			}
			if !head.IsGround() {
				return nil, fmt.Errorf("fact %s is not ground", head)
			}
			if head.Negated {
				return nil, fmt.Errorf("negated fact %s", head)
			}
			res.Facts = append(res.Facts, head)
		case tokImplies:
			if err := p.advance(); err != nil {
				return nil, err
			}
			var body []ast.Atom
			for {
				b, err := p.atom()
				if err != nil {
					return nil, err
				}
				body = append(body, b)
				if p.tok.kind == tokComma {
					if err := p.advance(); err != nil {
						return nil, err
					}
					continue
				}
				break
			}
			if err := p.expect(tokDot); err != nil {
				return nil, err
			}
			res.Program.Rules = append(res.Program.Rules, ast.NewRule(head, body...))
			res.Program.Derived[head.Key()] = true
		default:
			return nil, fmt.Errorf("%d:%d: expected '.' or ':-' after %s, found %s",
				p.tok.line, p.tok.col, head, p.tok.kind)
		}
	}
	for _, f := range res.Facts {
		if res.Program.Derived[f.Key()] {
			return nil, fmt.Errorf("fact %s for derived predicate %s: the IDB must contain no facts", f, f.Key())
		}
	}
	if err := res.Program.Validate(); err != nil {
		return nil, err
	}
	return res, nil
}

// ParseProgram is a convenience wrapper for sources without facts.
func ParseProgram(src string) (*ast.Program, error) {
	res, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(res.Facts) > 0 {
		return nil, fmt.Errorf("unexpected fact %s in program-only source", res.Facts[0])
	}
	return res.Program, nil
}

// MustParseProgram panics on error; for tests and examples with literal
// sources.
func MustParseProgram(src string) *ast.Program {
	p, err := ParseProgram(src)
	if err != nil {
		panic(err)
	}
	return p
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) expect(k tokenKind) error {
	if p.tok.kind != k {
		return fmt.Errorf("%d:%d: expected %s, found %s %q", p.tok.line, p.tok.col, k, p.tok.kind, p.tok.text)
	}
	return p.advance()
}

func (p *parser) atom() (ast.Atom, error) {
	if p.tok.kind != tokLIdent {
		return ast.Atom{}, fmt.Errorf("%d:%d: expected predicate name, found %s %q",
			p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
	}
	a := ast.Atom{Pred: p.tok.text}
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	// "not" followed by another identifier is a negated literal;
	// "not(...)" remains an ordinary predicate named not.
	if a.Pred == "not" && p.tok.kind == tokLIdent {
		a.Pred = p.tok.text
		a.Negated = true
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
	}
	if p.tok.kind == tokAt {
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
		if p.tok.kind != tokLIdent {
			return ast.Atom{}, fmt.Errorf("%d:%d: expected adornment after '@'", p.tok.line, p.tok.col)
		}
		a.Adornment = ast.Adornment(p.tok.text)
		if !a.Adornment.Valid() {
			return ast.Atom{}, fmt.Errorf("%d:%d: invalid adornment %q", p.tok.line, p.tok.col, p.tok.text)
		}
		if err := p.advance(); err != nil {
			return ast.Atom{}, err
		}
	}
	if p.tok.kind != tokLParen {
		return a, nil // arity-0 (boolean) atom
	}
	if err := p.advance(); err != nil {
		return ast.Atom{}, err
	}
	for {
		t, err := p.term()
		if err != nil {
			return ast.Atom{}, err
		}
		a.Args = append(a.Args, t)
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return ast.Atom{}, err
			}
			continue
		}
		break
	}
	if err := p.expect(tokRParen); err != nil {
		return ast.Atom{}, err
	}
	return a, nil
}

func (p *parser) term() (ast.Term, error) {
	switch p.tok.kind {
	case tokUIdent:
		name := p.tok.text
		if name == "_" {
			// Each bare underscore is a distinct anonymous variable.
			p.anonN++
			name = "_G" + strconv.Itoa(p.anonN)
		}
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.V(name), nil
	case tokLIdent, tokInt, tokQuoted:
		name := p.tok.text
		if err := p.advance(); err != nil {
			return ast.Term{}, err
		}
		return ast.C(name), nil
	}
	return ast.Term{}, fmt.Errorf("%d:%d: expected term, found %s %q",
		p.tok.line, p.tok.col, p.tok.kind, p.tok.text)
}

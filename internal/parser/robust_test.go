package parser

import (
	"strings"
	"testing"
)

// TestMalformedInputsErrorNotPanic is the parser robustness audit as a
// table: every class of malformed input must come back as an ordinary
// error — positioned where possible — and never as a panic. The cases
// cover lexer edges (unterminated quotes, stray punctuation, NUL and other
// control bytes, truncated operators), grammar edges (missing dots,
// unbalanced parens, empty argument lists, dangling commas), and semantic
// checks (non-ground facts, negated facts/queries, duplicate queries, IDB
// facts, bad adornments, unsafe rules).
func TestMalformedInputsErrorNotPanic(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string // substring of the error message ("" = any error)
	}{
		{"lone colon", ":", "expected ':-'"},
		{"lone question mark", "?", "expected '?-'"},
		{"colon at eof", "p(X) :", "expected ':-'"},
		{"unterminated quote", "p('abc", "unterminated quoted"},
		{"unexpected character", "p(X) & q(X).", "unexpected character"},
		{"nul byte", "p(\x00).", "unexpected character"},
		{"control bytes", "p(\x01\x02).", "unexpected character"},
		{"missing dot", "p(X) :- q(X)", "expected"},
		{"unbalanced paren", "p(X.", "expected"},
		{"empty args", "p().", "expected term"},
		{"dangling comma in args", "p(X,).", "expected term"},
		{"dangling comma in body", "p(X) :- q(X), .", "expected predicate name"},
		{"rule without body", "p(X) :- .", "expected predicate name"},
		{"upper-case predicate", "P(x).", "expected predicate name"},
		{"fact not ground", "p(X).", "not ground"},
		{"negated fact", "not p(a).", "negated fact"},
		{"negated query", "?- not p(X).", "negated query"},
		{"two queries", "?- p(X). ?- q(X).", "multiple query goals"},
		{"fact for derived predicate", "p(X) :- q(X). p(a). q(a).", "IDB must contain no facts"},
		{"invalid adornment", "p@xz(X) :- q(X).", "invalid adornment"},
		{"adornment missing", "p@(X) :- q(X).", "expected adornment"},
		{"adornment on number", "p@7(X) :- q(X).", "expected adornment"},
		{"unsafe head variable", "p(X,Y) :- q(X).", ""},
		{"query only token", "?-", "expected predicate name"},
		{"dot only", ".", "expected predicate name"},
		{"comma only", ",", "expected predicate name"},
		{"deep nesting garbage", strings.Repeat("p(", 500) + "x" + strings.Repeat(")", 500) + ".", "expected"},
		{"very long unterminated", "p('" + strings.Repeat("a", 1<<16), "unterminated"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("Parse panicked on %q: %v", tc.src, r)
				}
			}()
			res, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse(%q) succeeded (%v), want error", tc.src, res)
			}
			if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Parse(%q) error %q, want substring %q", tc.src, err, tc.want)
			}
		})
	}
}

// TestParsePositionsInErrors pins that syntax errors carry line:column.
func TestParsePositionsInErrors(t *testing.T) {
	_, err := Parse("p(a).\nq(b) :- r(b,\n")
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "3:1") {
		t.Fatalf("error %q lacks 3:1 position", err)
	}
}

// Package parser implements the textual Datalog format used throughout the
// repository.
//
// Grammar (EBNF):
//
//	program   = { clause } ;
//	clause    = rule | fact | query ;
//	rule      = atom ":-" atom { "," atom } "." ;
//	fact      = atom "." ;                      (ground; collected separately)
//	query     = "?-" atom "." ;
//	atom      = predicate [ "(" term { "," term } ")" ] ;
//	predicate = lident [ "@" adornment ] ;
//	term      = uident | "_" | lident | integer | quoted ;
//	adornment = { "n" | "d" | "b" | "f" } ;
//
// Identifiers beginning with an upper-case letter (or "_") are variables;
// lower-case identifiers, integers, and single-quoted strings are
// constants. "%" starts a comment that runs to end of line. The "@nd"
// suffix is the machine-readable form of the paper's superscript
// adornments (p^nd is written p@nd).
package parser

import (
	"fmt"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokLIdent
	tokUIdent // variable (upper-case or underscore initial)
	tokInt
	tokQuoted
	tokLParen
	tokRParen
	tokComma
	tokDot
	tokImplies // :-
	tokQuery   // ?-
	tokAt
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokLIdent:
		return "identifier"
	case tokUIdent:
		return "variable"
	case tokInt:
		return "integer"
	case tokQuoted:
		return "quoted constant"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokDot:
		return "'.'"
	case tokImplies:
		return "':-'"
	case tokQuery:
		return "'?-'"
	case tokAt:
		return "'@'"
	}
	return "unknown token"
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

type lexer struct {
	src  []rune
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: []rune(src), line: 1, col: 1}
}

func (l *lexer) errorf(line, col int, format string, args ...any) error {
	return fmt.Errorf("%d:%d: %s", line, col, fmt.Sprintf(format, args...))
}

func (l *lexer) peek() rune {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() rune {
	r := l.src[l.pos]
	l.pos++
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		r := l.peek()
		switch {
		case unicode.IsSpace(r):
			l.advance()
		case r == '%':
			for l.pos < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentRune(r rune) bool {
	return unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' || r == '\''
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: line, col: col}, nil
	}
	r := l.peek()
	switch {
	case r == '(':
		l.advance()
		return token{tokLParen, "(", line, col}, nil
	case r == ')':
		l.advance()
		return token{tokRParen, ")", line, col}, nil
	case r == ',':
		l.advance()
		return token{tokComma, ",", line, col}, nil
	case r == '.':
		l.advance()
		return token{tokDot, ".", line, col}, nil
	case r == '@':
		l.advance()
		return token{tokAt, "@", line, col}, nil
	case r == ':':
		l.advance()
		if l.peek() != '-' {
			return token{}, l.errorf(line, col, "expected ':-', found ':%c'", l.peek())
		}
		l.advance()
		return token{tokImplies, ":-", line, col}, nil
	case r == '?':
		l.advance()
		if l.peek() != '-' {
			return token{}, l.errorf(line, col, "expected '?-', found '?%c'", l.peek())
		}
		l.advance()
		return token{tokQuery, "?-", line, col}, nil
	case r == '\'':
		l.advance()
		var text []rune
		for l.pos < len(l.src) && l.peek() != '\'' {
			text = append(text, l.advance())
		}
		if l.pos >= len(l.src) {
			return token{}, l.errorf(line, col, "unterminated quoted constant")
		}
		l.advance() // closing quote
		return token{tokQuoted, string(text), line, col}, nil
	case unicode.IsDigit(r):
		var text []rune
		for l.pos < len(l.src) && unicode.IsDigit(l.peek()) {
			text = append(text, l.advance())
		}
		return token{tokInt, string(text), line, col}, nil
	case unicode.IsLetter(r) || r == '_':
		var text []rune
		for l.pos < len(l.src) && isIdentRune(l.peek()) && l.peek() != '\'' {
			text = append(text, l.advance())
		}
		kind := tokLIdent
		if unicode.IsUpper(rune(text[0])) || text[0] == '_' {
			kind = tokUIdent
		}
		return token{kind, string(text), line, col}, nil
	}
	return token{}, l.errorf(line, col, "unexpected character %q", r)
}

package parser

import (
	"strings"
	"testing"

	"existdlog/internal/ast"
)

func TestParseExample1(t *testing.T) {
	// Example 1 of the paper (original program).
	src := `
% Example 1: original program
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`
	res, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p := res.Program
	if len(p.Rules) != 3 {
		t.Fatalf("got %d rules", len(p.Rules))
	}
	if p.Query.String() != "query(X)" {
		t.Errorf("query = %s", p.Query)
	}
	if !p.IsDerived("a") || !p.IsDerived("query") || p.IsDerived("p") {
		t.Errorf("derived = %v", p.Derived)
	}
	if got := p.Rules[1].String(); got != "a(X,Y) :- p(X,Z), a(Z,Y)." {
		t.Errorf("rule 2 = %q", got)
	}
}

func TestParseAdornments(t *testing.T) {
	p, err := ParseProgram(`
a@nd(X) :- p(X,Z), a@nd(Z).
a@nd(X) :- p(X,Z).
?- a@nd(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Head.Key() != "a@nd" {
		t.Errorf("head key = %q", p.Rules[0].Head.Key())
	}
	if p.Rules[0].Body[1].Adornment != "nd" {
		t.Errorf("body adornment = %q", p.Rules[0].Body[1].Adornment)
	}
}

func TestParseFacts(t *testing.T) {
	res, err := Parse(`
p(X) :- e(X,Y).
e(1,2).
e(2,3).
e('node a','node b').
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Facts) != 3 {
		t.Fatalf("got %d facts", len(res.Facts))
	}
	if res.Facts[2].Args[0] != ast.C("node a") {
		t.Errorf("quoted constant = %v", res.Facts[2].Args[0])
	}
}

func TestParseAnonymousVariablesAreDistinct(t *testing.T) {
	p, err := ParseProgram(`p(X) :- e(X,_), f(_).`)
	if err != nil {
		t.Fatal(err)
	}
	a := p.Rules[0].Body[0].Args[1]
	b := p.Rules[0].Body[1].Args[0]
	if a == b {
		t.Errorf("anonymous variables must be distinct, both %v", a)
	}
	if !a.IsAnon() || !b.IsAnon() {
		t.Error("underscore should parse as anonymous variable")
	}
}

func TestParseBooleanAtom(t *testing.T) {
	p, err := ParseProgram(`
b2 :- q3(Z,V), q4(V).
p(X) :- q1(X,Y), b2.
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Rules[0].Head.Arity() != 0 {
		t.Errorf("boolean head arity = %d", p.Rules[0].Head.Arity())
	}
	if p.Rules[1].Body[1].Key() != "b2" {
		t.Errorf("boolean body key = %q", p.Rules[1].Body[1].Key())
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`p(X) :- e(X,Y)`, "expected"},                     // missing dot
		{`p(X).`, "not ground"},                            // non-ground fact
		{`p(X) :- e(X). p(1,2).`, "IDB must contain no"},   // fact for derived
		{`p(X) :- e(X,Y). ?- p(X). ?- p(Y).`, "multiple"},  // two queries
		{`p@xy(X) :- e(X,Y).`, "adornment"},                // bad adornment
		{`p(X) :- e(X,Y), .`, "expected predicate"},        // dangling comma
		{`P(X) :- e(X,Y).`, "expected predicate"},          // uppercase predicate
		{`p(X) :- e(X,'oops.`, "unterminated"},             // open quote
		{`p(X,Y) :- e(X,Z).`, "head variable Y not bound"}, // unsafe rule
		{`p(X) :- e(X,Y). p(X,Y) :- e(X,Y).`, "arities"},   // arity clash
		{`p(X) : e(X,Y).`, "expected ':-'"},                // bad implies
	}
	for _, c := range cases {
		_, err := Parse(c.src)
		if err == nil {
			t.Errorf("%q: expected error containing %q, got nil", c.src, c.want)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%q: error %q does not contain %q", c.src, err, c.want)
		}
	}
}

func TestParseComments(t *testing.T) {
	p, err := ParseProgram(`
% leading comment
p(X) :- e(X,Y). % trailing comment
% only a comment line
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 {
		t.Errorf("got %d rules", len(p.Rules))
	}
}

func TestRoundTrip(t *testing.T) {
	src := `a@nd(X) :- p(X,Z), a@nd(Z).
a@nd(X) :- p(X,Z).
b2 :- q3(U,V), q4(V).
?- a@nd(X).
`
	p, err := ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	printed := p.String()
	p2, err := ParseProgram(printed)
	if err != nil {
		t.Fatalf("reparse of %q: %v", printed, err)
	}
	if p2.String() != printed {
		t.Errorf("round trip changed program:\n%s\nvs\n%s", printed, p2.String())
	}
}

func TestParseIntegersAndPositions(t *testing.T) {
	res, err := Parse("e(1,22).\ne(307,4).\n")
	if err != nil {
		t.Fatal(err)
	}
	if res.Facts[0].Args[1] != ast.C("22") {
		t.Errorf("integer constant = %v", res.Facts[0].Args[1])
	}
	_, err = Parse("e(1,2).\n  e(3,!).\n")
	if err == nil || !strings.Contains(err.Error(), "2:") {
		t.Errorf("expected line-2 position in error, got %v", err)
	}
}

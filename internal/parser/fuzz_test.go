package parser

import (
	"strings"
	"testing"
)

// FuzzParse asserts the parser never panics and that accepted programs
// survive a print/re-parse round trip. Run the stored corpus in normal
// test mode; extend with `go test -fuzz FuzzParse ./internal/parser`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"query(X) :- a(X,Y).\na(X,Y) :- p(X,Z), a(Z,Y).\n?- query(X).",
		"p(1,2). p(2,3).",
		"a@nd(X) :- p(X,Y).\n?- a@nd(X).",
		"b2 :- q3(U,V), q4(V).",
		"x(X) :- y(X), not z(X).\n?- x(X).",
		"% comment\np('quo ted',3).",
		"?- q(_,_).",
		"p(X) :- q(X,",
		":- p(X).",
		"p@@(X) :- q(X).",
		"not(X) :- q(X).",
		"p(X) :- not not q(X).",
		strings.Repeat("p(X) :- q(X).\n", 50),
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		res, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := res.Program.String()
		res2, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted program does not re-parse: %v\nprogram:\n%s", err, printed)
		}
		if res2.Program.String() != printed {
			t.Fatalf("print/re-parse not stable:\n%s\nvs\n%s", printed, res2.Program.String())
		}
	})
}

package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// Projection describes one predicate's arity reduction under projection
// pushing (Lemma 3.2): the existential positions deleted and the arities
// before and after.
type Projection struct {
	// Predicate is the adorned key, e.g. "a@nd".
	Predicate string `json:"predicate"`
	// Before and After are the arities around the rewrite.
	Before int `json:"before"`
	After  int `json:"after"`
	// Dropped lists the deleted argument positions, 1-based.
	Dropped []int `json:"dropped"`
}

// Deletion records one rule discarded by the deletion driver, the check
// that justified it, and the human-readable reason.
type Deletion struct {
	Rule string `json:"rule"`
	// Test names the justifying check: "summary" (Lemma 5.1/5.3),
	// "uniform-equivalence" (Sagiv), "subsumption", "literal-deletion", or
	// "cleanup" (unproductive/unreachable predicates).
	Test   string `json:"test"`
	Reason string `json:"reason"`
}

// Stage is one phase of the optimization pipeline as the EXPLAIN report
// records it. Detail fields are populated per stage kind; the rest stay
// empty.
type Stage struct {
	// Name is the phase name ("adorn", "split-components", ...).
	Name string `json:"name"`
	// RulesBefore and RulesAfter count the program's rules around the
	// stage.
	RulesBefore int `json:"rulesBefore"`
	RulesAfter  int `json:"rulesAfter"`
	// Notes are free-form phase remarks (mirrors OptimizeResult.Steps).
	Notes []string `json:"notes,omitempty"`
	// Adornments lists the adorned predicate versions chosen (adorn).
	Adornments []string `json:"adornments,omitempty"`
	// Booleans lists the boolean predicates split off (split-components).
	Booleans []string `json:"booleans,omitempty"`
	// Projections lists the arity reductions (push-projections).
	Projections []Projection `json:"projections,omitempty"`
	// Deletions lists the rules discarded (delete-rules).
	Deletions []Deletion `json:"deletions,omitempty"`
	// Program is the program text after the stage.
	Program string `json:"program"`
}

// Explain is the stage-by-stage optimization report of Optimize.
type Explain struct {
	// Input is the program text the pipeline started from.
	Input string `json:"input"`
	// Stages are the enabled phases, in pipeline order.
	Stages []Stage `json:"stages"`
	// EmptyAnswer is set when the optimizer proved the answer empty at
	// compile time.
	EmptyAnswer bool `json:"emptyAnswer,omitempty"`
}

// JSON renders the report as deterministic machine-readable JSON.
func (e *Explain) JSON() ([]byte, error) { return json.MarshalIndent(e, "", "  ") }

// Format renders the report for the CLI: per stage, the detail lines and
// the rule-count movement; program texts are elided except the final one.
func (e *Explain) Format(w io.Writer) {
	fmt.Fprintf(w, "== explain: optimization pipeline ==\n")
	for i := range e.Stages {
		s := &e.Stages[i]
		fmt.Fprintf(w, "stage %d: %s (%d rules -> %d rules)\n",
			i+1, s.Name, s.RulesBefore, s.RulesAfter)
		for _, n := range s.Notes {
			fmt.Fprintf(w, "  %s\n", n)
		}
		if len(s.Adornments) > 0 {
			fmt.Fprintf(w, "  adornments chosen: %s\n", strings.Join(s.Adornments, ", "))
		}
		for _, b := range s.Booleans {
			fmt.Fprintf(w, "  boolean component split off: %s\n", b)
		}
		for _, p := range s.Projections {
			pos := make([]string, len(p.Dropped))
			for j, d := range p.Dropped {
				pos[j] = fmt.Sprint(d)
			}
			fmt.Fprintf(w, "  projection: %s arity %d -> %d (dropped position %s)\n",
				p.Predicate, p.Before, p.After, strings.Join(pos, ","))
		}
		for _, d := range s.Deletions {
			fmt.Fprintf(w, "  deleted [%s]: %s\n      %s\n", d.Test, d.Rule, d.Reason)
		}
	}
	if e.EmptyAnswer {
		fmt.Fprintf(w, "answer proved empty at compile time\n")
	}
	if n := len(e.Stages); n > 0 {
		fmt.Fprintf(w, "== optimized program ==\n")
		fmt.Fprint(w, e.Stages[n-1].Program)
	}
}

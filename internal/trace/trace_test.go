package trace

import (
	"bytes"
	"strings"
	"testing"
)

func TestMergeDrainsAndZeroes(t *testing.T) {
	c := NewCollector([]string{"r1.", "r2."})
	s := c.NewShard()
	s.Firings[0], s.Probes[0] = 3, 7
	s.Firings[1], s.Probes[1] = 1, 2
	c.Merge(s)
	c.Merge(s) // drained shard: second merge must not double count
	m := c.Metrics()
	if m.Rules[0].Firings != 3 || m.Rules[0].JoinProbes != 7 ||
		m.Rules[1].Firings != 1 || m.Rules[1].JoinProbes != 2 {
		t.Fatalf("merged counters wrong: %+v", m.Rules)
	}
	if s.Firings[0] != 0 || s.Probes[0] != 0 {
		t.Fatal("Merge must zero the shard")
	}
}

func TestMergeNilShardIsNoop(t *testing.T) {
	c := NewCollector([]string{"r."})
	c.Merge(nil)
	if got := c.Metrics().Rules[0].Firings; got != 0 {
		t.Fatalf("nil merge changed counters: %d", got)
	}
}

func TestTotalsAndRetired(t *testing.T) {
	c := NewCollector([]string{"a.", "b."})
	c.Emit(0)
	c.Emit(0)
	c.Fact(0)
	c.Duplicate(0)
	c.Emit(1)
	c.Fact(1)
	c.Pass(PassStats{Pass: 1, Facts: 2})
	c.Cut(1, 1)
	m := c.Metrics()
	emitted, facts, dup, probes := m.Totals()
	if emitted != 3 || facts != 2 || dup != 1 || probes != 0 {
		t.Fatalf("Totals = %d %d %d %d", emitted, facts, dup, probes)
	}
	if m.Retired() != 1 {
		t.Fatalf("Retired = %d", m.Retired())
	}
	// A cut at a recorded pass lands in that pass's Cuts list too.
	if len(m.Passes) != 1 || len(m.Passes[0].Cuts) != 1 || m.Passes[0].Cuts[0] != 1 {
		t.Fatalf("pass cuts wrong: %+v", m.Passes)
	}
}

func TestCutAtUnrecordedPassOnlySetsCutPass(t *testing.T) {
	c := NewCollector([]string{"a."})
	c.Pass(PassStats{Pass: 1})
	c.Cut(0, 2) // no pass record for pass 2 yet
	m := c.Metrics()
	if m.Rules[0].CutPass != 2 {
		t.Fatalf("CutPass = %d", m.Rules[0].CutPass)
	}
	if len(m.Passes[0].Cuts) != 0 {
		t.Fatalf("cut leaked into pass 1: %+v", m.Passes[0])
	}
}

func TestMetricsJSONDeterministic(t *testing.T) {
	build := func() []byte {
		c := NewCollector([]string{"a(X) :- b(X)."})
		c.Emit(0)
		c.Fact(0)
		c.Pass(PassStats{Pass: 1, Facts: 1,
			Deltas: []DeltaSize{{Predicate: "b", Size: 2}}})
		b, err := c.Metrics().JSON()
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(build(), build()) {
		t.Fatal("Metrics.JSON is not deterministic")
	}
}

func TestMetricsFormatTables(t *testing.T) {
	c := NewCollector([]string{"a(X) :- b(X)."})
	c.Emit(0)
	c.Fact(0)
	c.Cut(0, 1)
	c.Pass(PassStats{Pass: 1, Stratum: 0, Versions: 1, Facts: 1})
	var sb strings.Builder
	c.Metrics().Format(&sb)
	out := sb.String()
	for _, want := range []string{"per-rule metrics", "per-pass metrics", "a(X) :- b(X).", "p1"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainJSONAndFormat(t *testing.T) {
	e := &Explain{
		Input: "q(X) :- a(X,Y).\n?- q(X).\n",
		Stages: []Stage{{
			Name: "push-projections", RulesBefore: 2, RulesAfter: 2,
			Projections: []Projection{{Predicate: "a@nd", Before: 2, After: 1, Dropped: []int{2}}},
			Program:     "q(X) :- a@nd(X).\n?- q(X).\n",
		}, {
			Name: "delete-rules", RulesBefore: 2, RulesAfter: 1,
			Deletions: []Deletion{{Rule: "a@nd(X) :- p(X,Z), a@nd(Z).", Test: "subsumption", Reason: "subsumed"}},
			Program:   "q(X) :- a@nd(X).\n?- q(X).\n",
		}},
	}
	var sb strings.Builder
	e.Format(&sb)
	out := sb.String()
	for _, want := range []string{
		"stage 1: push-projections",
		"projection: a@nd arity 2 -> 1 (dropped position 2)",
		"deleted [subsumption]",
		"== optimized program ==",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Explain.Format missing %q:\n%s", want, out)
		}
	}
	b1, err := e.JSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := e.JSON()
	if !bytes.Equal(b1, b2) {
		t.Fatal("Explain.JSON is not deterministic")
	}
}

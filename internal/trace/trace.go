// Package trace is the observability subsystem shared by the engine and
// the optimizer: per-rule/per-pass evaluation metrics (this file) and the
// stage-by-stage optimization EXPLAIN report (explain.go).
//
// The metrics side mirrors the engine's pass-barrier architecture. Rule
// versions evaluate concurrently under the Parallel strategy, so the
// counters they bump mid-pass (join probes, firings) accumulate in
// lock-free per-worker Shards; Shards are drained into the Collector only
// at pass barriers, on the coordinating goroutine — the same place the
// engine merges derivation buffers. Merge-side counters (emitted tuples,
// new facts, duplicates, cut events) are only ever touched on the
// coordinating goroutine, so they need no shards. The result: tracing a
// Parallel run yields bit-identical metrics to tracing a SemiNaive run,
// for the same reason the answers are bit-identical.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// RuleStats are the per-rule evaluation counters. They partition the
// engine's aggregate Stats: summed over rules, Emitted equals
// Stats.Derivations, Facts equals Stats.FactsDerived, Duplicates equals
// Stats.DuplicateHits, and JoinProbes equals Stats.JoinProbes — on
// complete and on partial (aborted) runs alike.
type RuleStats struct {
	// Rule is the index in the evaluated program's rule list.
	Rule int `json:"rule"`
	// Text is the rule's source form.
	Text string `json:"text,omitempty"`
	// Firings counts rule-version evaluations: one per (pass, delta
	// occurrence) the rule took part in.
	Firings int64 `json:"firings"`
	// Emitted counts head tuples produced, duplicates included.
	Emitted int64 `json:"emitted"`
	// Facts counts distinct new facts this rule contributed.
	Facts int64 `json:"facts"`
	// Duplicates counts emitted tuples rejected by duplicate elimination.
	Duplicates int64 `json:"duplicates"`
	// JoinProbes counts index probes performed evaluating this rule.
	JoinProbes int64 `json:"joinProbes"`
	// CutPass is the pass at whose barrier the boolean cut retired this
	// rule (0 = never retired).
	CutPass int `json:"cutPass,omitempty"`
}

// DeltaSize records the size of one predicate's delta at a pass start.
type DeltaSize struct {
	Predicate string `json:"predicate"`
	Size      int    `json:"size"`
}

// VersionOrder records the join order the runtime planner chose for one
// rule version at one pass barrier, with the live cardinalities that
// justified it. Only present when both tracing and join reordering are
// on.
type VersionOrder struct {
	// Rule is the index in the evaluated program's rule list.
	Rule int `json:"rule"`
	// Occ is the delta occurrence this version reads (-1 for the
	// naive/startup version).
	Occ int `json:"occ"`
	// Literals are the body literals in chosen evaluation order: the
	// relation key, prefixed "~" for the delta occurrence and "not " for
	// negated literals.
	Literals []string `json:"literals"`
	// Sizes[i] is the live cardinality the planner saw for Literals[i]
	// (the delta size for the delta literal, 1 for builtins).
	Sizes []int `json:"sizes"`
	// Bound[i] counts Literals[i]'s argument positions bound at probe
	// time — the bound-column index signature its probes use.
	Bound []int `json:"bound"`
	// Skipped marks a version the planner proved empty at the barrier (a
	// positive body relation or delta with zero live tuples): it was
	// never evaluated this pass.
	Skipped bool `json:"skipped,omitempty"`
}

// PassStats describe one fixpoint pass.
type PassStats struct {
	// Pass is the 1-based pass number (the engine's Stats.Iterations value
	// while the pass ran).
	Pass int `json:"pass"`
	// Stratum is the stratum the pass evaluated.
	Stratum int `json:"stratum"`
	// Versions is the number of rule versions the pass fanned out.
	Versions int `json:"versions"`
	// Facts is the number of distinct new facts the pass added.
	Facts int `json:"facts"`
	// Deltas are the delta relation sizes at the start of the pass, sorted
	// by predicate (empty for startup and naive passes).
	Deltas []DeltaSize `json:"deltas,omitempty"`
	// Cuts lists the rules the boolean cut retired at this pass's barrier.
	Cuts []int `json:"cuts,omitempty"`
	// Orders are the join orders the runtime planner chose for this
	// pass's versions (empty unless both tracing and reordering are on).
	Orders []VersionOrder `json:"orders,omitempty"`
}

// Metrics is a full evaluation trace: per-rule counters plus the pass
// timeline. It is deterministic for every strategy; Parallel reproduces
// SemiNaive's Metrics exactly.
type Metrics struct {
	Rules  []RuleStats `json:"rules"`
	Passes []PassStats `json:"passes"`
}

// Totals sums the per-rule counters (emitted, facts, duplicates, probes).
// These must equal the engine's aggregate Stats on every run, partial runs
// included.
func (m *Metrics) Totals() (emitted, facts, duplicates, probes int64) {
	for i := range m.Rules {
		r := &m.Rules[i]
		emitted += r.Emitted
		facts += r.Facts
		duplicates += r.Duplicates
		probes += r.JoinProbes
	}
	return
}

// TotalFirings sums the per-rule firing counters — the companion to
// Totals for the one counter Stats does not aggregate (the obs registry
// drains it into its lifetime firing counter).
func (m *Metrics) TotalFirings() int64 {
	var n int64
	for i := range m.Rules {
		n += m.Rules[i].Firings
	}
	return n
}

// Retired counts rules with a recorded cut event.
func (m *Metrics) Retired() int {
	n := 0
	for i := range m.Rules {
		if m.Rules[i].CutPass > 0 {
			n++
		}
	}
	return n
}

// JSON renders the metrics as deterministic machine-readable JSON.
func (m *Metrics) JSON() ([]byte, error) { return json.MarshalIndent(m, "", "  ") }

// Format renders the metrics as the CLI's per-rule and per-pass tables.
func (m *Metrics) Format(w io.Writer) {
	fmt.Fprintf(w, "%%%% per-rule metrics\n")
	fmt.Fprintf(w, "%-4s %8s %8s %8s %8s %8s %4s  %s\n",
		"rule", "firings", "emitted", "facts", "dup", "probes", "cut", "text")
	for i := range m.Rules {
		r := &m.Rules[i]
		cut := "-"
		if r.CutPass > 0 {
			cut = fmt.Sprintf("p%d", r.CutPass)
		}
		fmt.Fprintf(w, "%-4d %8d %8d %8d %8d %8d %4s  %s\n",
			r.Rule+1, r.Firings, r.Emitted, r.Facts, r.Duplicates, r.JoinProbes, cut, r.Text)
	}
	fmt.Fprintf(w, "%%%% per-pass metrics\n")
	fmt.Fprintf(w, "%-4s %7s %8s %8s  %s\n", "pass", "stratum", "versions", "facts", "deltas")
	for i := range m.Passes {
		p := &m.Passes[i]
		var parts []string
		for _, d := range p.Deltas {
			parts = append(parts, fmt.Sprintf("%s=%d", d.Predicate, d.Size))
		}
		line := strings.Join(parts, " ")
		if len(p.Cuts) > 0 {
			var cuts []string
			for _, c := range p.Cuts {
				cuts = append(cuts, fmt.Sprint(c+1))
			}
			if line != "" {
				line += " "
			}
			line += "cut rules " + strings.Join(cuts, ",")
		}
		fmt.Fprintf(w, "%-4d %7d %8d %8d  %s\n", p.Pass, p.Stratum, p.Versions, p.Facts, line)
		for _, o := range p.Orders {
			fmt.Fprintf(w, "     %s\n", o.String())
		}
	}
}

// String renders one chosen order as the CLI's plan line, e.g.
// "plan r2#0: ~a/2=3 > e/2=512(1b)" — each literal with the live
// cardinality that justified its place and, when nonzero, the number of
// bound argument positions its probes use. A version the planner proved
// empty at the barrier ends in "skipped (empty join)".
func (o *VersionOrder) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan r%d#%d:", o.Rule+1, o.Occ)
	for i, lit := range o.Literals {
		if i > 0 {
			sb.WriteString(" >")
		}
		fmt.Fprintf(&sb, " %s=%d", lit, o.Sizes[i])
		if o.Bound[i] > 0 {
			fmt.Fprintf(&sb, "(%db)", o.Bound[i])
		}
	}
	if o.Skipped {
		sb.WriteString(" skipped (empty join)")
	}
	return sb.String()
}

// Collector accumulates one evaluation's Metrics. The merge-side methods
// (Emit, Fact, Duplicate, Cut, Pass) must only be called on the
// coordinating goroutine; mid-pass counters go through Shards.
type Collector struct {
	m Metrics
}

// NewCollector returns a collector for a program whose rules render as
// texts (one entry per rule, in program order).
func NewCollector(texts []string) *Collector {
	c := &Collector{}
	c.m.Rules = make([]RuleStats, len(texts))
	for i, text := range texts {
		c.m.Rules[i] = RuleStats{Rule: i, Text: text}
	}
	return c
}

// Shard holds the mid-pass counters of one worker goroutine. A Shard is
// owned by exactly one goroutine between barriers; Merge drains it on the
// coordinator.
type Shard struct {
	Firings []int64 // per-rule version evaluations
	Probes  []int64 // per-rule join probes
}

// NewShard returns a zeroed shard sized for the collector's program.
func (c *Collector) NewShard() *Shard {
	n := len(c.m.Rules)
	return &Shard{Firings: make([]int64, n), Probes: make([]int64, n)}
}

// Merge drains s into the collector: counters are added and s is zeroed,
// so a long-lived shard can be merged at every barrier without double
// counting. Must be called on the coordinating goroutine, with s's owner
// stopped (a pass barrier). A nil shard is a no-op.
func (c *Collector) Merge(s *Shard) {
	if s == nil {
		return
	}
	for i := range s.Firings {
		c.m.Rules[i].Firings += s.Firings[i]
		c.m.Rules[i].JoinProbes += s.Probes[i]
		s.Firings[i], s.Probes[i] = 0, 0
	}
}

// Emit records a head tuple produced by rule (duplicates included).
func (c *Collector) Emit(rule int) { c.m.Rules[rule].Emitted++ }

// Fact records a distinct new fact contributed by rule.
func (c *Collector) Fact(rule int) { c.m.Rules[rule].Facts++ }

// Duplicate records an emitted tuple of rule rejected as a duplicate.
func (c *Collector) Duplicate(rule int) { c.m.Rules[rule].Duplicates++ }

// Cut records the boolean cut retiring rule at the barrier after pass.
func (c *Collector) Cut(rule, pass int) {
	c.m.Rules[rule].CutPass = pass
	if n := len(c.m.Passes); n > 0 && c.m.Passes[n-1].Pass == pass {
		c.m.Passes[n-1].Cuts = append(c.m.Passes[n-1].Cuts, rule)
	}
}

// Pass appends a finished pass record. Aborted passes are recorded too,
// with whatever they added before the abort, so the timeline of a partial
// result stays consistent with its Stats.
func (c *Collector) Pass(p PassStats) { c.m.Passes = append(c.m.Passes, p) }

// Metrics returns the accumulated metrics. The collector must not be used
// afterwards (the returned value aliases its state).
func (c *Collector) Metrics() *Metrics { return &c.m }

package ast

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestTermString(t *testing.T) {
	if got := V("X").String(); got != "X" {
		t.Errorf("V(X).String() = %q", got)
	}
	if got := C("alice").String(); got != "alice" {
		t.Errorf("C(alice).String() = %q", got)
	}
	if got := (Term{}).String(); got != "_" {
		t.Errorf("zero Term String() = %q", got)
	}
}

func TestTermIsAnon(t *testing.T) {
	cases := []struct {
		t    Term
		want bool
	}{
		{V("_"), true},
		{V("_G1"), true},
		{V("X"), false},
		{C("_"), false},
		{Term{}, true},
	}
	for _, c := range cases {
		if got := c.t.IsAnon(); got != c.want {
			t.Errorf("IsAnon(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestAdornmentValid(t *testing.T) {
	valid := []Adornment{"", "n", "d", "nnd", "bf", "bbff"}
	for _, a := range valid {
		if !a.Valid() {
			t.Errorf("%q should be valid", a)
		}
	}
	invalid := []Adornment{"nb", "x", "ndx", "fn"}
	for _, a := range invalid {
		if a.Valid() {
			t.Errorf("%q should be invalid", a)
		}
	}
}

func TestAdornmentCountN(t *testing.T) {
	if got := Adornment("nnd").CountN(); got != 2 {
		t.Errorf("CountN(nnd) = %d", got)
	}
	if got := Adornment("bfb").CountN(); got != 2 {
		t.Errorf("CountN(bfb) = %d", got)
	}
	if got := Adornment("ddd").CountN(); got != 0 {
		t.Errorf("CountN(ddd) = %d", got)
	}
}

func TestAdornmentCovers(t *testing.T) {
	cases := []struct {
		a1, a Adornment
		want  bool
	}{
		{"nn", "nd", true},   // d of a may be n in a1
		{"nd", "nn", false},  // n of a must be n in a1
		{"nn", "nn", true},   // identity
		{"dd", "dd", true},   // all don't-care
		{"nd", "dd", true},   // hmm: a=dd has no n's
		{"n", "nd", false},   // length mismatch
		{"nnd", "ndd", true}, // positionwise
	}
	for _, c := range cases {
		if got := c.a1.Covers(c.a); got != c.want {
			t.Errorf("Covers(%q, %q) = %v, want %v", c.a1, c.a, got, c.want)
		}
	}
}

func TestAtomKeyAndString(t *testing.T) {
	a := NewAdorned("a", "nd", V("X"), V("Y"))
	if a.Key() != "a@nd" {
		t.Errorf("Key = %q", a.Key())
	}
	if a.String() != "a@nd(X,Y)" {
		t.Errorf("String = %q", a.String())
	}
	b := NewAtom("b2")
	if b.Key() != "b2" || b.String() != "b2" {
		t.Errorf("boolean atom: key=%q str=%q", b.Key(), b.String())
	}
}

func TestRuleStringAndVariables(t *testing.T) {
	r := NewRule(NewAtom("p", V("X")), NewAtom("e", V("X"), V("Z")), NewAtom("p", V("Z")))
	want := "p(X) :- e(X,Z), p(Z)."
	if r.String() != want {
		t.Errorf("String = %q, want %q", r.String(), want)
	}
	vars := r.Variables()
	if len(vars) != 2 || vars[0] != "X" || vars[1] != "Z" {
		t.Errorf("Variables = %v", vars)
	}
}

func TestProgramDerivedAndValidate(t *testing.T) {
	p := NewProgram(
		NewAtom("p", V("X")),
		NewRule(NewAtom("p", V("X")), NewAtom("e", V("X"), V("Z")), NewAtom("p", V("Z"))),
		NewRule(NewAtom("p", V("X")), NewAtom("e", V("X"), V("Y"))),
	)
	if !p.IsDerived("p") || p.IsDerived("e") {
		t.Errorf("Derived = %v", p.Derived)
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := p.RulesFor("p"); len(got) != 2 {
		t.Errorf("RulesFor(p) = %v", got)
	}
	base := p.BaseKeys()
	if len(base) != 1 || base[0] != "e" {
		t.Errorf("BaseKeys = %v", base)
	}
}

func TestValidateRejectsUnboundHeadVar(t *testing.T) {
	p := NewProgram(Atom{}, NewRule(NewAtom("p", V("X"), V("Y")), NewAtom("e", V("X"), V("Z"))))
	err := p.Validate()
	if err == nil || !strings.Contains(err.Error(), "head variable Y") {
		t.Errorf("expected unbound-head error, got %v", err)
	}
}

func TestValidateAllowsAnonHeadVar(t *testing.T) {
	// Connected-component rewrites produce heads with anonymous variables.
	p := NewProgram(Atom{}, NewRule(NewAtom("p", V("X"), V("_")), NewAtom("e", V("X"), V("Z"))))
	if err := p.Validate(); err != nil {
		t.Errorf("anonymous head variable should validate: %v", err)
	}
}

func TestValidateRejectsArityMismatch(t *testing.T) {
	p := NewProgram(Atom{},
		NewRule(NewAtom("p", V("X")), NewAtom("e", V("X"), V("Z"))),
		NewRule(NewAtom("p", V("X"), V("Y")), NewAtom("e", V("X"), V("Y"))),
	)
	if err := p.Validate(); err == nil {
		t.Error("expected arity mismatch error")
	}
}

func TestValidateAdornmentFit(t *testing.T) {
	// Post-projection: adornment longer than args, n-count must match.
	ok := NewProgram(Atom{},
		NewRule(NewAdorned("a", "nd", V("X")), NewAtom("e", V("X"), V("Y"))),
	)
	if err := ok.Validate(); err != nil {
		t.Errorf("projected adornment should validate: %v", err)
	}
	bad := NewProgram(Atom{},
		NewRule(NewAdorned("a", "nd", V("X"), V("Y"), V("Z")),
			NewAtom("e", V("X"), V("Y"), V("Z"))),
	)
	if err := bad.Validate(); err == nil {
		t.Error("expected adornment-fit error")
	}
}

func TestCloneIndependence(t *testing.T) {
	p := NewProgram(
		NewAtom("p", V("X")),
		NewRule(NewAtom("p", V("X")), NewAtom("e", V("X"), V("Y"))),
	)
	q := p.Clone()
	q.Rules[0].Body[0].Args[0] = C("mutated")
	q.Derived["extra"] = true
	if p.Rules[0].Body[0].Args[0] != V("X") {
		t.Error("Clone shares rule storage")
	}
	if p.Derived["extra"] {
		t.Error("Clone shares Derived map")
	}
}

func TestProgramString(t *testing.T) {
	p := NewProgram(
		NewAdorned("a", "nd", V("X")),
		NewRule(NewAdorned("a", "nd", V("X")), NewAtom("p", V("X"), V("Y"))),
	)
	want := "a@nd(X) :- p(X,Y).\n?- a@nd(X).\n"
	if got := p.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

// Property: Covers is reflexive and transitive over random n/d strings.
func TestCoversPreorderProperty(t *testing.T) {
	mk := func(bits uint8) Adornment {
		out := make([]byte, 4)
		for i := range out {
			if bits&(1<<uint(i)) != 0 {
				out[i] = 'n'
			} else {
				out[i] = 'd'
			}
		}
		return Adornment(out)
	}
	f := func(x, y, z uint8) bool {
		a, b, c := mk(x), mk(y), mk(z)
		if !a.Covers(a) {
			return false
		}
		if a.Covers(b) && b.Covers(c) && !a.Covers(c) {
			return false
		}
		// Covers(a1, a) should hold exactly when n-positions of a are a
		// subset of n-positions of a1.
		want := true
		for i := range b {
			if b[i] == 'n' && a[i] != 'n' {
				want = false
			}
		}
		return a.Covers(b) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestPredicateKeysAndHasNegation(t *testing.T) {
	p := NewProgram(
		NewAdorned("q", "n", V("X")),
		NewRule(NewAdorned("q", "n", V("X")), NewAtom("e", V("X"), V("Y"))),
		NewRule(NewAtom("s", V("X")), NewAtom("e", V("X"), V("Y")),
			Atom{Pred: "t", Args: []Term{V("X")}, Negated: true}),
	)
	keys := p.PredicateKeys()
	want := []string{"e", "q@n", "s", "t"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("keys[%d] = %s, want %s", i, keys[i], want[i])
		}
	}
	if !p.HasNegation() {
		t.Error("HasNegation should hold")
	}
	p2 := NewProgram(Atom{}, NewRule(NewAtom("a", V("X")), NewAtom("e", V("X"))))
	if p2.HasNegation() {
		t.Error("positive program misreported")
	}
}

func TestRuleEqualAndIsUnit(t *testing.T) {
	r1 := NewRule(NewAtom("a", V("X")), NewAtom("e", V("X"), V("Y")))
	r2 := NewRule(NewAtom("a", V("X")), NewAtom("e", V("X"), V("Y")))
	r3 := NewRule(NewAtom("a", V("X")), NewAtom("e", V("X"), V("Z")))
	r4 := NewRule(NewAtom("a", V("X")), NewAtom("e", V("X"), V("Y")), NewAtom("f", V("Y")))
	if !r1.Equal(r2) || r1.Equal(r3) || r1.Equal(r4) {
		t.Error("rule equality broken")
	}
	if !r1.IsUnit() || r4.IsUnit() {
		t.Error("IsUnit broken")
	}
	// Negation distinguishes atoms.
	neg := r1.Clone()
	neg.Body[0].Negated = true
	if r1.Equal(neg) {
		t.Error("negation must distinguish rules")
	}
	if neg.Body[0].String() != "not e(X,Y)" {
		t.Errorf("negated String = %q", neg.Body[0].String())
	}
}

func TestFormatSubst(t *testing.T) {
	s := Subst{"X": C("1"), "A": V("B")}
	if got := FormatSubst(s); got != "{A=B, X=1}" {
		t.Errorf("FormatSubst = %q", got)
	}
	if got := FormatSubst(nil); got != "{}" {
		t.Errorf("FormatSubst(nil) = %q", got)
	}
}

func TestAtomArity(t *testing.T) {
	if NewAtom("p", V("X"), C("1")).Arity() != 2 || NewAtom("b").Arity() != 0 {
		t.Error("Arity broken")
	}
}

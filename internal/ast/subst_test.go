package ast

import (
	"testing"
	"testing/quick"
)

func TestUnifyBasics(t *testing.T) {
	a := NewAtom("p", V("X"), C("1"))
	b := NewAtom("p", C("2"), V("Y"))
	s, ok := Unify(a, b, nil)
	if !ok {
		t.Fatal("expected unification to succeed")
	}
	if s.Apply(V("X")) != C("2") || s.Apply(V("Y")) != C("1") {
		t.Errorf("bad substitution: %s", FormatSubst(s))
	}
}

func TestUnifyFailures(t *testing.T) {
	if _, ok := Unify(NewAtom("p", C("1")), NewAtom("p", C("2")), nil); ok {
		t.Error("distinct constants should not unify")
	}
	if _, ok := Unify(NewAtom("p", V("X")), NewAtom("q", V("X")), nil); ok {
		t.Error("distinct predicates should not unify")
	}
	if _, ok := Unify(NewAdorned("p", "nd", V("X"), V("Y")), NewAtom("p", V("X"), V("Y")), nil); ok {
		t.Error("distinct adornments should not unify")
	}
	if _, ok := Unify(NewAtom("p", V("X")), NewAtom("p", V("X"), V("Y")), nil); ok {
		t.Error("distinct arities should not unify")
	}
}

func TestUnifyVariableChains(t *testing.T) {
	// p(X,X) with p(Y,3): X=Y then Y=3.
	a := NewAtom("p", V("X"), V("X"))
	b := NewAtom("p", V("Y"), C("3"))
	s, ok := Unify(a, b, nil)
	if !ok {
		t.Fatal("expected success")
	}
	resolve := func(t Term) Term {
		for t.Kind == Variable {
			r, ok := s[t.Name]
			if !ok {
				return t
			}
			t = r
		}
		return t
	}
	if resolve(V("X")) != C("3") || resolve(V("Y")) != C("3") {
		t.Errorf("bad chains: %s", FormatSubst(s))
	}
}

func TestUnifyRepeatedConflict(t *testing.T) {
	a := NewAtom("p", V("X"), V("X"))
	b := NewAtom("p", C("1"), C("2"))
	if _, ok := Unify(a, b, nil); ok {
		t.Error("p(X,X) should not unify with p(1,2)")
	}
}

func TestMatchGround(t *testing.T) {
	pat := NewAtom("e", V("X"), V("Y"), V("X"))
	fact := NewAtom("e", C("a"), C("b"), C("a"))
	s, ok := MatchGround(pat, fact, nil)
	if !ok || s.Apply(V("X")) != C("a") || s.Apply(V("Y")) != C("b") {
		t.Errorf("MatchGround failed: ok=%v s=%s", ok, FormatSubst(s))
	}
	bad := NewAtom("e", C("a"), C("b"), C("c"))
	if _, ok := MatchGround(pat, bad, nil); ok {
		t.Error("repeated variable should force equality")
	}
}

func TestFreeze(t *testing.T) {
	r := NewRule(NewAtom("a", V("X"), V("Y")), NewAtom("a", V("X"), V("Z")), NewAtom("p", V("Z"), V("Y")))
	fr, s := Freeze(r, "$c")
	if !fr.Head.IsGround() {
		t.Errorf("frozen head not ground: %s", fr.Head)
	}
	for _, b := range fr.Body {
		if !b.IsGround() {
			t.Errorf("frozen body literal not ground: %s", b)
		}
	}
	// Distinct variables map to distinct constants.
	seen := make(map[Term]string)
	for v, c := range s {
		if prev, ok := seen[c]; ok {
			t.Errorf("variables %s and %s share frozen constant %s", prev, v, c)
		}
		seen[c] = v
	}
	// Shared variables stay shared: X in head and first body literal.
	if fr.Head.Args[0] != fr.Body[0].Args[0] {
		t.Error("shared variable X frozen inconsistently")
	}
	if fr.Body[0].Args[1] != fr.Body[1].Args[0] {
		t.Error("shared variable Z frozen inconsistently")
	}
}

func TestRenameApart(t *testing.T) {
	r := NewRule(NewAtom("p", V("X")), NewAtom("e", V("X"), V("Z")))
	rn := RenameApart(r, "#1")
	if rn.Head.Args[0] != V("X#1") || rn.Body[0].Args[1] != V("Z#1") {
		t.Errorf("RenameApart produced %s", rn)
	}
	if r.Head.Args[0] != V("X") {
		t.Error("RenameApart mutated the input")
	}
}

// Property: for random variable/constant argument vectors, a successful
// Unify yields a substitution under which both atoms become identical.
func TestUnifyProperty(t *testing.T) {
	names := []string{"X", "Y", "Z"}
	consts := []string{"1", "2"}
	mk := func(sel []byte) Atom {
		args := make([]Term, len(sel))
		for i, s := range sel {
			if s%2 == 0 {
				args[i] = V(names[int(s/2)%len(names)])
			} else {
				args[i] = C(consts[int(s/2)%len(consts)])
			}
		}
		return NewAtom("p", args...)
	}
	full := func(s Subst, a Atom) Atom {
		resolve := func(t Term) Term {
			for t.Kind == Variable {
				r, ok := s[t.Name]
				if !ok {
					return t
				}
				t = r
			}
			return t
		}
		out := a.Clone()
		for i := range out.Args {
			out.Args[i] = resolve(out.Args[i])
		}
		return out
	}
	prop := func(sa, sb [4]byte) bool {
		a, b := mk(sa[:]), mk(sb[:])
		s, ok := Unify(a, b, nil)
		if !ok {
			return true // failure is allowed; soundness is what we check
		}
		return full(s, a).Equal(full(s, b))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

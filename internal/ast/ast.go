// Package ast defines the abstract syntax of Datalog programs as used by
// the existential-query optimizer: terms, atoms, rules, queries, and
// adornments.
//
// The representation follows the paper's conventions (Ramakrishnan, Beeri,
// Krishnamurthy, "Optimizing Existential Datalog Queries", PODS 1988,
// Section 1.1): a rule is
//
//	p0(X̄0) :- p1(X̄1), ..., pn(X̄n)
//
// where each argument is a variable or a constant. Adorned predicates p^a
// (Section 2) are modeled by the Atom.Adornment field; an adorned predicate
// is a distinct predicate from its unadorned base and from other adorned
// versions of the same base, so predicate identity is the pair
// (Pred, Adornment), rendered as "p@nd".
package ast

import (
	"fmt"
	"sort"
	"strings"
)

// TermKind discriminates variables from constants.
type TermKind uint8

const (
	// Variable is a logic variable (upper-case initial, or "_").
	Variable TermKind = iota
	// Constant is an uninterpreted constant (lower-case initial or numeral).
	Constant
)

// Term is a variable or a constant appearing as a predicate argument.
// The zero value is the anonymous variable "_".
type Term struct {
	Kind TermKind
	Name string
}

// V returns a variable term with the given name.
func V(name string) Term { return Term{Kind: Variable, Name: name} }

// C returns a constant term with the given name.
func C(name string) Term { return Term{Kind: Constant, Name: name} }

// IsAnon reports whether t is the anonymous variable "_" (or an
// auto-generated anonymous variable "_Gn" produced by the parser).
func (t Term) IsAnon() bool {
	return t.Kind == Variable && (t.Name == "" || t.Name == "_" || strings.HasPrefix(t.Name, "_"))
}

// String renders the term in source syntax.
func (t Term) String() string {
	if t.Kind == Variable && t.Name == "" {
		return "_"
	}
	return t.Name
}

// Adornment is a string over the alphabet {'n','d'} (needed / don't-care,
// Section 2 of the paper) or {'b','f'} (bound / free, used by the magic-sets
// rewriting, which the paper treats as orthogonal). The empty adornment
// denotes an unadorned predicate.
type Adornment string

// CountN returns the number of 'n' (or 'b') positions in a.
func (a Adornment) CountN() int {
	n := 0
	for _, c := range a {
		if c == 'n' || c == 'b' {
			n++
		}
	}
	return n
}

// Valid reports whether a is empty or wholly over one of the two adornment
// alphabets.
func (a Adornment) Valid() bool {
	nd, bf := true, true
	for _, c := range a {
		switch c {
		case 'n', 'd':
			bf = false
		case 'b', 'f':
			nd = false
		default:
			return false
		}
	}
	return nd || bf
}

// Covers reports whether adornment a1 covers a, per Section 5 of the paper:
// both have the same length and each 'n' in a corresponds to an 'n' in a1.
// (Don't-care positions of a may be 'n' in a1.) Intuitively every tuple of
// p^a1 yields, by projection, a tuple of p^a.
func (a1 Adornment) Covers(a Adornment) bool {
	if len(a1) != len(a) {
		return false
	}
	for i := range a {
		if a[i] == 'n' && a1[i] != 'n' {
			return false
		}
	}
	return true
}

// Atom is a predicate occurrence: a (possibly adorned) predicate name
// applied to argument terms. Arity-0 atoms model the boolean predicates
// introduced by the connected-component rewrite (Section 3.1). Negated
// marks a negative body literal ("not p(X)"); the paper's Section 6 names
// negation as a generalization direction, and the engine evaluates it
// under stratified semantics.
type Atom struct {
	Pred      string
	Adornment Adornment
	Args      []Term
	Negated   bool
}

// NewAtom builds an unadorned atom.
func NewAtom(pred string, args ...Term) Atom {
	return Atom{Pred: pred, Args: args}
}

// NewAdorned builds an adorned atom p^a(args...).
func NewAdorned(pred string, a Adornment, args ...Term) Atom {
	return Atom{Pred: pred, Adornment: a, Args: args}
}

// Key returns the predicate identity "pred" or "pred@adornment". Two atoms
// with the same Key refer to the same relation.
func (a Atom) Key() string {
	if a.Adornment == "" {
		return a.Pred
	}
	return a.Pred + "@" + string(a.Adornment)
}

// Arity returns the number of arguments.
func (a Atom) Arity() int { return len(a.Args) }

// IsGround reports whether the atom contains no variables.
func (a Atom) IsGround() bool {
	for _, t := range a.Args {
		if t.Kind == Variable {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the atom.
func (a Atom) Clone() Atom {
	args := make([]Term, len(a.Args))
	copy(args, a.Args)
	return Atom{Pred: a.Pred, Adornment: a.Adornment, Args: args, Negated: a.Negated}
}

// Equal reports structural equality.
func (a Atom) Equal(b Atom) bool {
	if a.Pred != b.Pred || a.Adornment != b.Adornment || a.Negated != b.Negated ||
		len(a.Args) != len(b.Args) {
		return false
	}
	for i := range a.Args {
		if a.Args[i] != b.Args[i] {
			return false
		}
	}
	return true
}

// String renders the atom in source syntax, e.g. "a@nd(X,Y)", "b2", or
// "not p(X)".
func (a Atom) String() string {
	var sb strings.Builder
	if a.Negated {
		sb.WriteString("not ")
	}
	sb.WriteString(a.Pred)
	if a.Adornment != "" {
		sb.WriteByte('@')
		sb.WriteString(string(a.Adornment))
	}
	if len(a.Args) > 0 {
		sb.WriteByte('(')
		for i, t := range a.Args {
			if i > 0 {
				sb.WriteByte(',')
			}
			sb.WriteString(t.String())
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// Rule is a Horn rule Head :- Body. An empty body denotes a fact (ground
// facts belong in the EDB, but unit facts are permitted for the frozen
// databases used by the uniform-equivalence tests).
type Rule struct {
	Head Atom
	Body []Atom
}

// NewRule builds a rule.
func NewRule(head Atom, body ...Atom) Rule {
	return Rule{Head: head, Body: body}
}

// Clone returns a deep copy of the rule.
func (r Rule) Clone() Rule {
	body := make([]Atom, len(r.Body))
	for i := range r.Body {
		body[i] = r.Body[i].Clone()
	}
	return Rule{Head: r.Head.Clone(), Body: body}
}

// Equal reports structural equality of rules.
func (r Rule) Equal(s Rule) bool {
	if !r.Head.Equal(s.Head) || len(r.Body) != len(s.Body) {
		return false
	}
	for i := range r.Body {
		if !r.Body[i].Equal(s.Body[i]) {
			return false
		}
	}
	return true
}

// IsUnit reports whether r is a unit rule in the paper's Section 5 sense:
// the body is a single literal. (The paper composes unit rules whose head
// and body literal are derived predicates; callers impose any further
// conditions they need.)
func (r Rule) IsUnit() bool { return len(r.Body) == 1 }

// Variables returns the set of variable names occurring in the rule, in
// first-occurrence order (head first, then body left to right).
func (r Rule) Variables() []string {
	seen := make(map[string]bool)
	var out []string
	add := func(a Atom) {
		for _, t := range a.Args {
			if t.Kind == Variable && !t.IsAnon() && !seen[t.Name] {
				seen[t.Name] = true
				out = append(out, t.Name)
			}
		}
	}
	add(r.Head)
	for _, b := range r.Body {
		add(b)
	}
	return out
}

// String renders the rule in source syntax.
func (r Rule) String() string {
	if len(r.Body) == 0 {
		return r.Head.String() + "."
	}
	parts := make([]string, len(r.Body))
	for i, b := range r.Body {
		parts[i] = b.String()
	}
	return r.Head.String() + " :- " + strings.Join(parts, ", ") + "."
}

// Program is an intensional database (a set of rules) together with the
// query goal. Facts are not part of the Program; they live in the engine's
// Database (the extensional database), matching the paper's convention that
// the IDB contains no facts.
type Program struct {
	Rules []Rule
	// Query is the goal atom, e.g. a@nd(X) or query(X). Constants in the
	// query act as selections on the answer.
	Query Atom
	// Derived records the predicate keys that are intensional. It is
	// initialized from the rule heads and preserved across transformations
	// so that a derived predicate whose rules have all been deleted is
	// still recognized as derived (and hence empty), not mistaken for a
	// base relation. Keys of adorned predicates are included as they are
	// introduced.
	Derived map[string]bool
}

// NewProgram builds a program from rules and a query and computes the
// initial Derived set from the rule heads.
func NewProgram(query Atom, rules ...Rule) *Program {
	p := &Program{Rules: rules, Query: query, Derived: make(map[string]bool)}
	for _, r := range rules {
		p.Derived[r.Head.Key()] = true
	}
	return p
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	q := &Program{
		Rules:   make([]Rule, len(p.Rules)),
		Query:   p.Query.Clone(),
		Derived: make(map[string]bool, len(p.Derived)),
	}
	for i := range p.Rules {
		q.Rules[i] = p.Rules[i].Clone()
	}
	for k, v := range p.Derived {
		q.Derived[k] = v
	}
	return q
}

// IsDerived reports whether the predicate key names an intensional
// predicate of this program.
func (p *Program) IsDerived(key string) bool { return p.Derived[key] }

// HasNegation reports whether any rule body contains a negated literal.
// Several optimizations (the uniform-equivalence tests, summaries, magic
// sets) are defined for positive programs only and are skipped when this
// holds.
func (p *Program) HasNegation() bool {
	for _, r := range p.Rules {
		for _, b := range r.Body {
			if b.Negated {
				return true
			}
		}
	}
	return false
}

// RulesFor returns the indices of the rules whose head predicate key is k.
func (p *Program) RulesFor(k string) []int {
	var out []int
	for i, r := range p.Rules {
		if r.Head.Key() == k {
			out = append(out, i)
		}
	}
	return out
}

// PredicateKeys returns all predicate keys mentioned by the program
// (heads, bodies, and the query), sorted.
func (p *Program) PredicateKeys() []string {
	set := make(map[string]bool)
	set[p.Query.Key()] = true
	for _, r := range p.Rules {
		set[r.Head.Key()] = true
		for _, b := range r.Body {
			set[b.Key()] = true
		}
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// BaseKeys returns the predicate keys used in bodies that are not derived
// (i.e. the EDB schema the program expects), sorted.
func (p *Program) BaseKeys() []string {
	set := make(map[string]bool)
	for _, r := range p.Rules {
		for _, b := range r.Body {
			if !p.Derived[b.Key()] {
				set[b.Key()] = true
			}
		}
	}
	if !p.Derived[p.Query.Key()] {
		set[p.Query.Key()] = true
	}
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// String renders the program: rules in order, then the query goal as
// "?- goal.".
func (p *Program) String() string {
	var sb strings.Builder
	for _, r := range p.Rules {
		sb.WriteString(r.String())
		sb.WriteByte('\n')
	}
	if p.Query.Pred != "" {
		sb.WriteString("?- ")
		sb.WriteString(p.Query.String())
		sb.WriteString(".\n")
	}
	return sb.String()
}

// Validate checks structural well-formedness:
//   - every adornment is valid and matches its atom's arity,
//   - predicate keys are used with a consistent arity throughout,
//   - rules are range-restricted (every head variable occurs in the body),
//     except that anonymous head variables are permitted (they arise from
//     the connected-component rewrite of Section 3.1, where an existential
//     head argument loses its binding component; the engine fills them with
//     the reserved constant).
func (p *Program) Validate() error {
	arity := make(map[string]int)
	check := func(a Atom, where string) error {
		if a.Pred == "" {
			return fmt.Errorf("%s: empty predicate name", where)
		}
		if !a.Adornment.Valid() {
			return fmt.Errorf("%s: invalid adornment %q on %s", where, a.Adornment, a.Pred)
		}
		if a.Adornment != "" && len(a.Adornment) != len(a.Args) {
			// After projection pushing the adornment is longer than the
			// argument list: length must equal the n-count instead.
			if a.Adornment.CountN() != len(a.Args) {
				return fmt.Errorf("%s: adornment %q does not fit arity %d of %s",
					where, a.Adornment, len(a.Args), a.Pred)
			}
		}
		if prev, ok := arity[a.Key()]; ok && prev != len(a.Args) {
			return fmt.Errorf("%s: predicate %s used with arities %d and %d",
				where, a.Key(), prev, len(a.Args))
		}
		arity[a.Key()] = len(a.Args)
		return nil
	}
	for i, r := range p.Rules {
		where := fmt.Sprintf("rule %d (%s)", i+1, r)
		if err := check(r.Head, where); err != nil {
			return err
		}
		if r.Head.Negated {
			return fmt.Errorf("%s: negated head", where)
		}
		bodyVars := make(map[string]bool)
		for _, b := range r.Body {
			if err := check(b, where); err != nil {
				return err
			}
			if b.Negated {
				continue
			}
			for _, t := range b.Args {
				if t.Kind == Variable {
					bodyVars[t.Name] = true
				}
			}
		}
		// Safety: head variables and negated-literal variables must be
		// bound by positive body literals.
		for _, t := range r.Head.Args {
			if t.Kind == Variable && !t.IsAnon() && !bodyVars[t.Name] {
				return fmt.Errorf("%s: head variable %s not bound in body", where, t.Name)
			}
		}
		for _, b := range r.Body {
			if !b.Negated {
				continue
			}
			for _, t := range b.Args {
				if t.Kind == Variable && !t.IsAnon() && !bodyVars[t.Name] {
					return fmt.Errorf("%s: variable %s of negated literal %s not bound by a positive literal",
						where, t.Name, b)
				}
			}
		}
	}
	if p.Query.Pred != "" {
		if err := check(p.Query, "query"); err != nil {
			return err
		}
	}
	return nil
}

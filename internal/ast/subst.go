package ast

import (
	"fmt"
	"sort"
	"strconv"
)

// Subst is a substitution: a finite mapping from variable names to terms.
type Subst map[string]Term

// Apply returns t with the substitution applied, chasing variable-to-
// variable chains (Unify can produce X→A, A→B bindings; there are no
// cycles because Unify only ever binds unbound resolved variables).
func (s Subst) Apply(t Term) Term {
	for t.Kind == Variable {
		r, ok := s[t.Name]
		if !ok || r == t {
			return t
		}
		t = r
	}
	return t
}

// ApplyAtom returns a copy of a with the substitution applied to every
// argument.
func (s Subst) ApplyAtom(a Atom) Atom {
	out := a.Clone()
	for i, t := range out.Args {
		out.Args[i] = s.Apply(t)
	}
	return out
}

// ApplyRule returns a copy of r with the substitution applied throughout.
func (s Subst) ApplyRule(r Rule) Rule {
	out := r.Clone()
	out.Head = s.ApplyAtom(out.Head)
	for i := range out.Body {
		out.Body[i] = s.ApplyAtom(out.Body[i])
	}
	return out
}

// Unify attempts to unify atom a with atom b, extending the given
// substitution. It returns the extended substitution and true on success.
// Since Datalog has no function symbols, unification is plain
// variable/constant matching with union-find-free chasing.
func Unify(a, b Atom, base Subst) (Subst, bool) {
	if a.Pred != b.Pred || a.Adornment != b.Adornment || len(a.Args) != len(b.Args) {
		return nil, false
	}
	s := make(Subst, len(base)+len(a.Args))
	for k, v := range base {
		s[k] = v
	}
	var resolve func(t Term) Term
	resolve = func(t Term) Term {
		for t.Kind == Variable {
			r, ok := s[t.Name]
			if !ok {
				return t
			}
			t = r
		}
		return t
	}
	for i := range a.Args {
		x, y := resolve(a.Args[i]), resolve(b.Args[i])
		switch {
		case x == y:
		case x.Kind == Variable:
			s[x.Name] = y
		case y.Kind == Variable:
			s[y.Name] = x
		default: // two distinct constants
			return nil, false
		}
	}
	return s, true
}

// MatchGround matches a (possibly non-ground) atom against a ground atom,
// extending base. Unlike Unify it requires fact to be ground and never
// binds variables of fact.
func MatchGround(pattern, fact Atom, base Subst) (Subst, bool) {
	if pattern.Pred != fact.Pred || pattern.Adornment != fact.Adornment ||
		len(pattern.Args) != len(fact.Args) {
		return nil, false
	}
	s := make(Subst, len(base)+len(pattern.Args))
	for k, v := range base {
		s[k] = v
	}
	for i := range pattern.Args {
		pt := s.Apply(pattern.Args[i])
		ft := fact.Args[i]
		if ft.Kind != Constant {
			return nil, false
		}
		switch pt.Kind {
		case Constant:
			if pt != ft {
				return nil, false
			}
		case Variable:
			if pt.IsAnon() && pt.Name == "_" {
				continue // anonymous matches anything, binds nothing
			}
			s[pt.Name] = ft
		}
	}
	return s, true
}

// RenameApart returns a copy of r in which every variable has been renamed
// with the given suffix, guaranteeing disjointness from any rule that does
// not use the same suffix.
func RenameApart(r Rule, suffix string) Rule {
	s := make(Subst)
	for _, v := range r.Variables() {
		s[v] = V(v + suffix)
	}
	return s.ApplyRule(r)
}

// Freeze returns a ground instance of the rule in which every variable is
// replaced by a distinct fresh constant, as used by the uniform-equivalence
// tests of Sections 3.3-5 ("consider a ground instance of the rule" with
// frozen constants). The prefix distinguishes freezings from program
// constants; the returned substitution maps each variable to its frozen
// constant.
func Freeze(r Rule, prefix string) (Rule, Subst) {
	s := make(Subst)
	n := 0
	fresh := func() Term {
		n++
		return C(prefix + strconv.Itoa(n))
	}
	assign := func(a Atom) {
		for _, t := range a.Args {
			if t.Kind == Variable {
				if _, ok := s[t.Name]; !ok {
					s[t.Name] = fresh()
				}
			}
		}
	}
	// Freeze body variables first, then any remaining head variables
	// (anonymous head variables of component-split rules).
	for _, b := range r.Body {
		assign(b)
	}
	assign(r.Head)
	return s.ApplyRule(r), s
}

// FormatSubst renders a substitution deterministically for error messages
// and tests.
func FormatSubst(s Subst) string {
	if len(s) == 0 {
		return "{}"
	}
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%s", k, s[k])
	}
	return out + "}"
}

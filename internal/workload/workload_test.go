package workload

import (
	"fmt"
	"testing"

	"existdlog/internal/engine"
)

func TestChain(t *testing.T) {
	db := engine.NewDatabase()
	Chain(db, "e", 10)
	if db.Count("e") != 10 {
		t.Errorf("chain edges = %d", db.Count("e"))
	}
	facts := db.Facts("e")
	if facts[0][0] != "0" || facts[0][1] != "1" {
		t.Errorf("first edge = %v", facts[0])
	}
}

func TestCycle(t *testing.T) {
	db := engine.NewDatabase()
	Cycle(db, "e", 7)
	if db.Count("e") != 7 {
		t.Errorf("cycle edges = %d", db.Count("e"))
	}
	// In-degree and out-degree 1 for every node.
	out := map[string]int{}
	in := map[string]int{}
	for _, f := range db.Facts("e") {
		out[f[0]]++
		in[f[1]]++
	}
	for n, d := range out {
		if d != 1 || in[n] != 1 {
			t.Errorf("node %s: out=%d in=%d", n, d, in[n])
		}
	}
}

func TestChainForestDisjoint(t *testing.T) {
	db := engine.NewDatabase()
	ChainForest(db, "e", 3, 5)
	if db.Count("e") != 15 {
		t.Errorf("edges = %d", db.Count("e"))
	}
	for _, f := range db.Facts("e") {
		if f[0][:2] != f[1][:2] {
			t.Errorf("edge crosses chains: %v", f)
		}
	}
	if ForestNode(2, 3) != "c2x3" {
		t.Errorf("ForestNode = %s", ForestNode(2, 3))
	}
}

func TestBinaryTree(t *testing.T) {
	db := engine.NewDatabase()
	BinaryTree(db, "e", 4) // 15 nodes, 14 edges
	if db.Count("e") != 14 {
		t.Errorf("tree edges = %d", db.Count("e"))
	}
	in := map[string]int{}
	for _, f := range db.Facts("e") {
		in[f[1]]++
	}
	for n, d := range in {
		if d != 1 {
			t.Errorf("node %s has in-degree %d", n, d)
		}
	}
	if in["0"] != 0 {
		t.Error("root should have no parent")
	}
}

func TestGrid(t *testing.T) {
	db := engine.NewDatabase()
	Grid(db, "e", 4)
	// 2*n*(n-1) edges.
	if db.Count("e") != 24 {
		t.Errorf("grid edges = %d", db.Count("e"))
	}
}

func TestRandomDigraphDeterministic(t *testing.T) {
	a := engine.NewDatabase()
	b := engine.NewDatabase()
	RandomDigraph(a, "e", 20, 50, 42)
	RandomDigraph(b, "e", 20, 50, 42)
	if fmt.Sprint(a.Facts("e")) != fmt.Sprint(b.Facts("e")) {
		t.Error("same seed must give the same graph")
	}
	c := engine.NewDatabase()
	RandomDigraph(c, "e", 20, 50, 43)
	if fmt.Sprint(a.Facts("e")) == fmt.Sprint(c.Facts("e")) {
		t.Error("different seeds should differ")
	}
}

func TestLayeredDAGIsLayered(t *testing.T) {
	db := engine.NewDatabase()
	LayeredDAG(db, "e", 4, 5, 2, 1)
	for _, f := range db.Facts("e") {
		var l1, n1, l2, n2 int
		if _, err := fmt.Sscanf(f[0], "l%dn%d", &l1, &n1); err != nil {
			t.Fatalf("bad node %s", f[0])
		}
		if _, err := fmt.Sscanf(f[1], "l%dn%d", &l2, &n2); err != nil {
			t.Fatalf("bad node %s", f[1])
		}
		if l2 != l1+1 {
			t.Errorf("edge %v skips layers", f)
		}
	}
	if LayerNode(2, 3) != "l2n3" {
		t.Errorf("LayerNode = %s", LayerNode(2, 3))
	}
}

func TestSameGenTowers(t *testing.T) {
	db := engine.NewDatabase()
	SameGenTowers(db, "up", "dn", "flat", 3, 2)
	if db.Count("up") != 6 || db.Count("dn") != 6 || db.Count("flat") != 8 {
		t.Errorf("counts: up=%d dn=%d flat=%d", db.Count("up"), db.Count("dn"), db.Count("flat"))
	}
	if TowerNode(1, 'a', 2) != "t1a2" {
		t.Errorf("TowerNode = %s", TowerNode(1, 'a', 2))
	}
}

func TestRelationArity(t *testing.T) {
	db := engine.NewDatabase()
	Relation(db, "r", 3, 10, 25, 9)
	if got := db.Count("r"); got == 0 || got > 25 {
		t.Errorf("relation rows = %d", got)
	}
	for _, f := range db.Facts("r") {
		if len(f) != 3 {
			t.Errorf("row arity = %d", len(f))
		}
	}
}

package workload

import (
	"bytes"
	"math"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestPoissonInterarrivalStats checks the seeded Poisson process against
// its theory: for rate λ the interarrival gaps are Exp(λ) with mean 1/λ
// and variance 1/λ², and the count over T concentrates around λT. The
// generator is seeded, so these are exact regression checks with
// statistical tolerances, not flaky samples — no wall clock anywhere.
func TestPoissonInterarrivalStats(t *testing.T) {
	cases := []struct {
		name string
		rate float64
		dur  time.Duration
		seed int64
	}{
		{"rate100", 100, 200 * time.Second, 1},
		{"rate1000", 1000, 50 * time.Second, 2},
		{"rate7", 7, 2000 * time.Second, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			offsets := Arrivals(rng, []Period{{Rate: tc.rate, Duration: tc.dur}})

			expected := tc.rate * tc.dur.Seconds()
			n := float64(len(offsets))
			// Count: within 4 standard deviations (σ = sqrt(λT)).
			if sigma := math.Sqrt(expected); math.Abs(n-expected) > 4*sigma {
				t.Fatalf("arrival count %v outside %v ± 4*%v", n, expected, sigma)
			}

			// Interarrival mean and variance vs 1/λ and 1/λ².
			var gaps []float64
			prev := 0.0
			for _, off := range offsets {
				s := off.Seconds()
				gaps = append(gaps, s-prev)
				prev = s
			}
			mean := 0.0
			for _, g := range gaps {
				mean += g
			}
			mean /= n
			variance := 0.0
			for _, g := range gaps {
				variance += (g - mean) * (g - mean)
			}
			variance /= n - 1
			wantMean := 1 / tc.rate
			if math.Abs(mean-wantMean)/wantMean > 0.05 {
				t.Errorf("interarrival mean %.6g, want %.6g within 5%%", mean, wantMean)
			}
			wantVar := 1 / (tc.rate * tc.rate)
			if math.Abs(variance-wantVar)/wantVar > 0.10 {
				t.Errorf("interarrival variance %.6g, want %.6g within 10%%", variance, wantVar)
			}

			// Offsets are strictly within the period and non-decreasing.
			for i, off := range offsets {
				if off < 0 || off >= tc.dur {
					t.Fatalf("offset %d = %v outside [0, %v)", i, off, tc.dur)
				}
				if i > 0 && off < offsets[i-1] {
					t.Fatalf("offsets not sorted at %d: %v < %v", i, off, offsets[i-1])
				}
			}
		})
	}
}

// TestMultiPeriodBoundaries checks that rate switching lands exactly on
// period boundaries: a silent middle period admits no arrivals, each
// period's arrivals stay inside it, and each period's count matches its
// own rate (the burst period is visibly denser).
func TestMultiPeriodBoundaries(t *testing.T) {
	periods := []Period{
		{Rate: 100, Duration: 10 * time.Second},
		{Rate: 0, Duration: 5 * time.Second},
		{Rate: 400, Duration: 10 * time.Second},
	}
	rng := rand.New(rand.NewSource(7))
	offsets := Arrivals(rng, periods)

	var n1, n2, n3 int
	for _, off := range offsets {
		switch {
		case off < 10*time.Second:
			n1++
		case off < 15*time.Second:
			n2++
		case off < 25*time.Second:
			n3++
		default:
			t.Fatalf("offset %v beyond the last period", off)
		}
	}
	if n2 != 0 {
		t.Errorf("silent period admitted %d arrivals", n2)
	}
	// Per-period counts within 4σ of their own rate×duration.
	if want, sigma := 1000.0, math.Sqrt(1000.0); math.Abs(float64(n1)-want) > 4*sigma {
		t.Errorf("period 1 count %d, want %v ± 4σ", n1, want)
	}
	if want, sigma := 4000.0, math.Sqrt(4000.0); math.Abs(float64(n3)-want) > 4*sigma {
		t.Errorf("period 3 count %d, want %v ± 4σ", n3, want)
	}
}

// TestScheduleDeterminism: identical seed ⇒ byte-identical schedule,
// for every committed scenario; a different seed moves the digest.
func TestScheduleDeterminism(t *testing.T) {
	for name, sc := range Scenarios {
		t.Run(name, func(t *testing.T) {
			a := sc.Generate(42, 3*time.Second, 0)
			b := sc.Generate(42, 3*time.Second, 0)
			if !reflect.DeepEqual(a, b) {
				t.Fatal("same seed generated different traces")
			}
			var bufA, bufB bytes.Buffer
			if err := WriteTrace(&bufA, a); err != nil {
				t.Fatal(err)
			}
			if err := WriteTrace(&bufB, b); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(bufA.Bytes(), bufB.Bytes()) {
				t.Fatal("same seed serialized to different bytes")
			}
			if a.Digest() != b.Digest() {
				t.Fatal("same seed produced different digests")
			}
			c := sc.Generate(43, 3*time.Second, 0)
			if len(c.Requests) == len(a.Requests) && reflect.DeepEqual(a.Requests, c.Requests) {
				t.Fatal("different seeds generated identical schedules")
			}
			if a.Digest() == c.Digest() {
				t.Fatal("different seeds share a digest")
			}
		})
	}
}

// TestGenerateClasses checks the cohort draw: every request carries the
// payload its class requires, mutation slots alternate update/retract
// with matching facts, and the mixed scenario's mutation fraction tracks
// its ratio.
func TestGenerateClasses(t *testing.T) {
	sc := Scenarios["mixed"]
	tr := sc.Generate(1, 30*time.Second, 50)
	counts := map[Class]int{}
	var lastMutation Class
	for i, r := range tr.Requests {
		counts[r.Class]++
		switch r.Class {
		case ClassPoint, ClassBoolean, ClassRecursive:
			if r.Goal == "" || len(r.Facts) != 0 {
				t.Fatalf("request %d (%s): goal %q facts %v", i, r.Class, r.Goal, r.Facts)
			}
			if !strings.HasPrefix(r.Goal, "tc(") {
				t.Fatalf("request %d: goal %q is not a tc goal", i, r.Goal)
			}
		case ClassUpdate, ClassRetract:
			if r.Goal != "" || len(r.Facts) != 1 {
				t.Fatalf("request %d (%s): goal %q facts %v", i, r.Class, r.Goal, r.Facts)
			}
			if lastMutation == r.Class {
				t.Fatalf("request %d: two consecutive %s mutation slots (want alternation)", i, r.Class)
			}
			lastMutation = r.Class
		default:
			t.Fatalf("request %d: unknown class %q", i, r.Class)
		}
	}
	total := len(tr.Requests)
	mutations := counts[ClassUpdate] + counts[ClassRetract]
	frac := float64(mutations) / float64(total)
	if math.Abs(frac-sc.Mix.MutationRatio) > 0.05 {
		t.Errorf("mutation fraction %.3f, want ~%.2f", frac, sc.Mix.MutationRatio)
	}
	if counts[ClassPoint] == 0 || counts[ClassRecursive] == 0 || counts[ClassBoolean] == 0 {
		t.Errorf("a read cohort is empty: %v", counts)
	}
}

// TestEffectivePeriods checks -duration cycling/truncation and the
// -rate override.
func TestEffectivePeriods(t *testing.T) {
	sc := Scenarios["mixed"] // native: 4s + 2s + 4s
	got := sc.EffectivePeriods(13*time.Second, 0)
	var total time.Duration
	for _, p := range got {
		total += p.Duration
	}
	if total != 13*time.Second {
		t.Fatalf("effective periods span %v, want 13s", total)
	}
	// 4+2+4 cycles into 4,2,4,3(truncated from 4).
	if len(got) != 4 || got[3].Duration != 3*time.Second {
		t.Fatalf("unexpected cycling: %+v", got)
	}
	if got[1].Rate != 80 {
		t.Fatalf("burst period lost its rate: %+v", got[1])
	}
	flat := sc.EffectivePeriods(6*time.Second, 25)
	for _, p := range flat {
		if p.Rate != 25 {
			t.Fatalf("rate override not applied: %+v", flat)
		}
	}
}

// TestScenarioProgram sanity-checks the served program: rules, goal,
// and one chain edge per node.
func TestScenarioProgram(t *testing.T) {
	sc := Scenarios["steady"]
	prog := sc.Program()
	for _, want := range []string{
		"tc(X,Y) :- e(X,Y).",
		"tc(X,Y) :- e(X,Z), tc(Z,Y).",
		"?- tc(X,Y).",
		"e(0,1).",
	} {
		if !strings.Contains(prog, want) {
			t.Errorf("program missing %q", want)
		}
	}
	if got := strings.Count(prog, "\ne("); got != sc.Nodes {
		t.Errorf("program has %d edge facts, want %d", got, sc.Nodes)
	}
}

// TestTraceIDFor: trace ids are a pure function of (schedule digest,
// request index) — deterministic across regenerations, distinct across
// indices and seeds, and never the zero id (which W3C forbids). This is
// what lets a replayed schedule resolve the same BENCH exemplars.
func TestTraceIDFor(t *testing.T) {
	sc := Scenarios["mixed"]
	a := sc.Generate(7, 2*time.Second, 0)
	b := sc.Generate(7, 2*time.Second, 0)
	c := sc.Generate(8, 2*time.Second, 0)

	seen := map[[16]byte]int{}
	for i := range a.Requests {
		id := a.TraceIDFor(i)
		if id == ([16]byte{}) {
			t.Fatalf("request %d got the all-zero trace id", i)
		}
		if id != b.TraceIDFor(i) {
			t.Fatalf("request %d: regenerated schedule produced a different trace id", i)
		}
		if prev, dup := seen[id]; dup {
			t.Fatalf("requests %d and %d share trace id %x", prev, i, id)
		}
		seen[id] = i
	}
	if len(c.Requests) > 0 && a.TraceIDFor(0) == c.TraceIDFor(0) {
		t.Error("different seeds produced the same trace id for index 0")
	}
}

// Package workload provides deterministic (seeded) extensional-database
// generators for the experiment suite: chains, cycles, trees, grids,
// random digraphs, layered DAGs, forests, and same-generation towers —
// the synthetic relations the Bancilhon–Ramakrishnan performance study
// (which the paper cites for its performance claims) evaluates recursive
// query strategies on.
package workload

import (
	"fmt"
	"math/rand"

	"existdlog/internal/engine"
)

// Chain adds a path 0 → 1 → ... → n labeled rel.
func Chain(db *engine.Database, rel string, n int) {
	for i := 0; i < n; i++ {
		db.Add(rel, node(i), node(i+1))
	}
}

// Cycle adds a directed cycle over n nodes.
func Cycle(db *engine.Database, rel string, n int) {
	for i := 0; i < n; i++ {
		db.Add(rel, node(i), node((i+1)%n))
	}
}

// ChainForest adds `chains` disjoint paths of length n each; nodes are
// named c<k>x<i>.
func ChainForest(db *engine.Database, rel string, chains, n int) {
	for c := 0; c < chains; c++ {
		for i := 0; i < n; i++ {
			db.Add(rel, forestNode(c, i), forestNode(c, i+1))
		}
	}
}

// ForestNode names node i of chain c in a ChainForest.
func ForestNode(c, i int) string { return forestNode(c, i) }

// BinaryTree adds parent→child edges of a complete binary tree with the
// given number of levels (level 0 is the root, node 0).
func BinaryTree(db *engine.Database, rel string, levels int) {
	total := 1<<uint(levels) - 1
	for i := 0; 2*i+2 < total+1; i++ {
		if 2*i+1 < total {
			db.Add(rel, node(i), node(2*i+1))
		}
		if 2*i+2 < total {
			db.Add(rel, node(i), node(2*i+2))
		}
	}
}

// Grid adds right- and down-edges of an n×n grid; node (r,c) is named
// g<r>_<c>.
func Grid(db *engine.Database, rel string, n int) {
	name := func(r, c int) string { return fmt.Sprintf("g%d_%d", r, c) }
	for r := 0; r < n; r++ {
		for c := 0; c < n; c++ {
			if c+1 < n {
				db.Add(rel, name(r, c), name(r, c+1))
			}
			if r+1 < n {
				db.Add(rel, name(r, c), name(r+1, c))
			}
		}
	}
}

// RandomDigraph adds m random edges over n nodes (self-loops and
// duplicates possible; duplicates collapse in the relation).
func RandomDigraph(db *engine.Database, rel string, n, m int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < m; i++ {
		db.Add(rel, node(rng.Intn(n)), node(rng.Intn(n)))
	}
}

// LayeredDAG adds edges between consecutive layers of the given width:
// every node gets deg random successors in the next layer. Acyclic by
// construction, which the counting rewrite requires.
func LayeredDAG(db *engine.Database, rel string, layers, width, deg int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	name := func(l, i int) string { return fmt.Sprintf("l%dn%d", l, i) }
	for l := 0; l < layers-1; l++ {
		for i := 0; i < width; i++ {
			for d := 0; d < deg; d++ {
				db.Add(rel, name(l, i), name(l+1, rng.Intn(width)))
			}
		}
	}
}

// LayerNode names node i of layer l in a LayeredDAG.
func LayerNode(l, i int) string { return fmt.Sprintf("l%dn%d", l, i) }

// SameGenTowers adds `towers` disjoint same-generation towers of the
// given depth: up edges climb the a-side, dn edges descend the b-side,
// and flat edges cross at every level. Node names are t<k>a<i> / t<k>b<i>.
func SameGenTowers(db *engine.Database, up, dn, flat string, depth, towers int) {
	for t := 0; t < towers; t++ {
		for i := 0; i < depth; i++ {
			db.Add(up, towerNode(t, 'a', i), towerNode(t, 'a', i+1))
			db.Add(dn, towerNode(t, 'b', i+1), towerNode(t, 'b', i))
			db.Add(flat, towerNode(t, 'a', i), towerNode(t, 'b', i))
		}
		db.Add(flat, towerNode(t, 'a', depth), towerNode(t, 'b', depth))
	}
}

// TowerNode names a node of a SameGenTowers database: side is 'a' or 'b'.
func TowerNode(t int, side byte, i int) string { return towerNode(t, side, i) }

// Relation populates an arbitrary relation with m random rows of the
// given arity over an n-value column domain.
func Relation(db *engine.Database, rel string, arity, n, m int, seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < m; i++ {
		row := make([]string, arity)
		for j := range row {
			row[j] = node(rng.Intn(n))
		}
		db.Add(rel, row...)
	}
}

func node(i int) string                     { return fmt.Sprint(i) }
func forestNode(c, i int) string            { return fmt.Sprintf("c%dx%d", c, i) }
func towerNode(t int, s byte, i int) string { return fmt.Sprintf("t%d%c%d", t, s, i) }

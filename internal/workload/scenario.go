// Loadgen scenarios: named, committed workload shapes over the same
// transitive-closure program the rest of the suite studies. Each
// scenario pins an EDB (a chain from the package's generators), an
// arrival process, a cohort mix, and a default SLO; Generate turns one
// into a deterministic Trace.
package workload

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"

	"existdlog/internal/engine"
)

// Scenario is one committed workload shape.
type Scenario struct {
	Name        string
	Description string
	// Nodes is the chain length of the served EDB (edge relation "e",
	// nodes named 0..Nodes by the Chain generator).
	Nodes int
	// Periods is the native arrival process; -duration cycles and
	// truncates it, -rate overrides every period's rate.
	Periods []Period
	Mix     Mix
	// SLO is the scenario's default objective spec, e.g.
	// "p99=50ms,errors=0" (advisory unless -slo is given explicitly).
	SLO string
}

// Scenarios are the committed workload shapes, keyed by name.
var Scenarios = map[string]Scenario{
	"steady": {
		Name:        "steady",
		Description: "steady point-query traffic: 50 rps, 90% bound-first-argument goals",
		Nodes:       200,
		Periods:     []Period{{Rate: 50, Duration: 10 * time.Second}},
		Mix:         Mix{Point: 0.9, Recursive: 0.05, Boolean: 0.05},
		SLO:         "p99=50ms,errors=0",
	},
	"recursive": {
		Name:        "recursive",
		Description: "recursive-heavy traffic: full tc(X,Y) fixpoints dominate",
		Nodes:       300,
		Periods:     []Period{{Rate: 10, Duration: 10 * time.Second}},
		Mix:         Mix{Point: 0.2, Recursive: 0.7, Boolean: 0.1},
		SLO:         "p99=2s,errors=0",
	},
	"overload": {
		Name: "overload",
		Description: "sustained 3x-saturation point-query overload: the admission " +
			"controller must keep goodput flat and reject the rest with 429/503",
		Nodes: 200,
		// PR 6's BENCH baselines put the optimized point-query path at
		// ~26rps on one core; 78rps ≈ 3× saturation. Every request asks
		// a bound-first-argument goal so rejected work is comparable to
		// served work.
		Periods: []Period{{Rate: 78, Duration: 10 * time.Second}},
		Mix:     Mix{Point: 1.0},
		// Goodput must hold near saturation while p99 of *served*
		// requests stays bounded by the queue timeout (rejected
		// requests are excluded from latency).
		SLO: "p99=1500ms,goodput=20",
	},
	"mixed": {
		Name:        "mixed",
		Description: "mixed read/write with a mid-run rate burst and 20% mutations",
		Nodes:       200,
		Periods: []Period{
			{Rate: 40, Duration: 4 * time.Second},
			{Rate: 80, Duration: 2 * time.Second},
			{Rate: 40, Duration: 4 * time.Second},
		},
		Mix: Mix{Point: 0.6, Recursive: 0.1, Boolean: 0.1, MutationRatio: 0.2},
		SLO: "p99=500ms,errors=0",
	},
}

// ScenarioNames lists the committed scenarios, sorted.
func ScenarioNames() []string {
	names := make([]string, 0, len(Scenarios))
	for n := range Scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Program renders the scenario's served program: the transitive closure
// of a chain EDB drawn from the package's Chain generator. Serve this
// (existdlog loadgen -emit-program > s.dl; existdlog serve s.dl) and
// point the loadgen at it.
func (sc Scenario) Program() string {
	db := engine.NewDatabase()
	Chain(db, "e", sc.Nodes)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%% loadgen scenario %q: transitive closure over a %d-node chain.\n", sc.Name, sc.Nodes)
	sb.WriteString("tc(X,Y) :- e(X,Y).\n")
	sb.WriteString("tc(X,Y) :- e(X,Z), tc(Z,Y).\n")
	sb.WriteString("?- tc(X,Y).\n")
	for _, row := range db.Facts("e") {
		fmt.Fprintf(&sb, "e(%s,%s).\n", row[0], row[1])
	}
	return sb.String()
}

// EffectivePeriods is the arrival process a run actually uses: the
// native periods when total <= 0, otherwise the native sequence cycled
// and truncated to exactly total. A rate > 0 overrides every period.
func (sc Scenario) EffectivePeriods(total time.Duration, rate float64) []Period {
	src := sc.Periods
	var out []Period
	if total <= 0 {
		out = append(out, src...)
	} else {
		var acc time.Duration
		for i := 0; acc < total; i++ {
			p := src[i%len(src)]
			if acc+p.Duration > total {
				p.Duration = total - acc
			}
			out = append(out, p)
			acc += p.Duration
		}
	}
	if rate > 0 {
		for i := range out {
			out[i].Rate = rate
		}
	}
	return out
}

// Generate materializes the scenario into a deterministic Trace: one
// seeded rng drives the arrival process and then, per arrival in offset
// order, the class draw and the payload draw — so identical
// (scenario, seed, duration, rate) inputs yield byte-identical traces.
func (sc Scenario) Generate(seed int64, duration time.Duration, rate float64) *Trace {
	periods := sc.EffectivePeriods(duration, rate)
	rng := rand.New(rand.NewSource(seed))
	offsets := Arrivals(rng, periods)
	reqs := make([]Request, 0, len(offsets))
	readTotal := sc.Mix.Point + sc.Mix.Recursive + sc.Mix.Boolean
	mutations := 0
	for _, off := range offsets {
		r := Request{Offset: off}
		if sc.Mix.MutationRatio > 0 && rng.Float64() < sc.Mix.MutationRatio {
			// Mutation slots alternate: update k hangs a fresh source
			// u<k> off the chain head (the incremental maintenance pass
			// derives its whole closure), retract k removes it again
			// (the DRed pass deletes it), so the store stays bounded.
			k := mutations / 2
			if mutations%2 == 0 {
				r.Class = ClassUpdate
			} else {
				r.Class = ClassRetract
			}
			r.Facts = []string{fmt.Sprintf("e(u%d,0)", k)}
			mutations++
		} else {
			u := rng.Float64() * readTotal
			switch {
			case u < sc.Mix.Point:
				r.Class = ClassPoint
				r.Goal = fmt.Sprintf("tc(%d,X)", rng.Intn(sc.Nodes))
			case u < sc.Mix.Point+sc.Mix.Recursive:
				r.Class = ClassRecursive
				r.Goal = "tc(X,Y)"
			default:
				r.Class = ClassBoolean
				r.Goal = fmt.Sprintf("tc(%d,%d)", rng.Intn(sc.Nodes), rng.Intn(sc.Nodes))
			}
		}
		reqs = append(reqs, r)
	}
	return &Trace{
		Schema:   TraceSchema,
		Scenario: sc.Name,
		Seed:     seed,
		Periods:  periods,
		Requests: reqs,
	}
}

// Traffic generation for the loadgen verb: seeded open-loop arrival
// processes (Poisson within each rate period), cohort request mixes over
// the scenario's goal classes, deterministic mutation slots, and a
// record/replay trace format.
//
// Everything here is pure with respect to time: a Trace is a function of
// (scenario, seed, periods) alone — no wall clock, no global state — so
// two generations with the same inputs are byte-identical, which is what
// lets the loadgen harness itself be tested deterministically. The
// runner that *executes* a trace (cmd/existdlog/loadgen.go) is the only
// place a clock appears, and it takes one through the Clock interface.
package workload

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"math/rand"
	"time"
)

// Class names a request cohort in a generated workload. Query classes
// carry a goal; mutation classes carry facts for /update or /retract.
type Class string

const (
	// ClassPoint is a bound-first-argument query (tc(k,X)): the
	// magic-sets ∘ projection story's target shape.
	ClassPoint Class = "point"
	// ClassRecursive is a fully free recursive query (tc(X,Y)): a full
	// fixpoint per request.
	ClassRecursive Class = "recursive"
	// ClassBoolean is a fully bound query (tc(i,j)): the boolean-cut
	// shape, answerable with an early cut.
	ClassBoolean Class = "boolean"
	// ClassUpdate posts new base facts to /update.
	ClassUpdate Class = "update"
	// ClassRetract removes base facts via /retract.
	ClassRetract Class = "retract"
)

// Classes lists every class in report order.
var Classes = []Class{ClassPoint, ClassRecursive, ClassBoolean, ClassUpdate, ClassRetract}

// Mutation reports whether the class drives a write endpoint.
func (c Class) Mutation() bool { return c == ClassUpdate || c == ClassRetract }

// Request is one scheduled arrival: send at Offset from the run start,
// regardless of how earlier requests are faring — the loop is open, the
// schedule is the load.
type Request struct {
	Offset time.Duration `json:"offset_ns"`
	Class  Class         `json:"class"`
	// Goal is the query atom for the query classes, e.g. "tc(17,X)".
	Goal string `json:"goal,omitempty"`
	// Facts are the ground facts for the mutation classes.
	Facts []string `json:"facts,omitempty"`
}

// Period is one segment of a (possibly multi-period) arrival process:
// requests arrive as a Poisson process with the given rate for the given
// duration. Rate switching lands exactly on period boundaries — an
// interarrival gap that would cross a boundary is discarded, and the
// next period's process starts fresh at the boundary.
type Period struct {
	Rate     float64       `json:"rate_rps"`
	Duration time.Duration `json:"duration_ns"`
}

// Arrivals generates the offsets of a seeded multi-period Poisson
// process: within each period, interarrival gaps are Exp(rate); the gap
// that crosses the period's end is dropped and the clock jumps to the
// boundary. A zero or negative rate yields a silent period.
func Arrivals(rng *rand.Rand, periods []Period) []time.Duration {
	var out []time.Duration
	var elapsed time.Duration
	for _, p := range periods {
		end := elapsed + p.Duration
		if p.Rate > 0 {
			t := elapsed
			for {
				gap := time.Duration(rng.ExpFloat64() / p.Rate * float64(time.Second))
				t += gap
				if t >= end {
					break
				}
				out = append(out, t)
			}
		}
		elapsed = end
	}
	return out
}

// Mix weighs the request cohorts. The three query weights are relative
// among reads; MutationRatio is the absolute fraction of all requests
// that are writes (alternating update/retract slots).
type Mix struct {
	Point         float64 `json:"point"`
	Recursive     float64 `json:"recursive"`
	Boolean       float64 `json:"boolean"`
	MutationRatio float64 `json:"mutation_ratio"`
}

// TraceSchema versions the record/replay file format.
const TraceSchema = "existdlog-trace/v1"

// Trace is a fully materialized workload: the exact request sequence a
// run will issue. Recorded traces replay bit-identically — the runner
// consumes Requests as-is, so (class, goal, mutation payloads, send
// offsets) survive a record/replay round trip unchanged.
type Trace struct {
	Schema   string    `json:"schema"`
	Scenario string    `json:"scenario"`
	Seed     int64     `json:"seed"`
	Periods  []Period  `json:"periods"`
	Requests []Request `json:"requests"`
}

// Duration is the schedule's total span: the sum of the period lengths.
func (t *Trace) Duration() time.Duration {
	var d time.Duration
	for _, p := range t.Periods {
		d += p.Duration
	}
	return d
}

// Digest fingerprints the schedule — every request's offset, class,
// goal, and mutation payload feed an FNV-64a hash — so two reports can
// assert schedule identity without embedding thousands of offsets.
func (t *Trace) Digest() string {
	h := fnv.New64a()
	var buf [8]byte
	for _, r := range t.Requests {
		binary.LittleEndian.PutUint64(buf[:], uint64(r.Offset))
		h.Write(buf[:])
		io.WriteString(h, string(r.Class))
		io.WriteString(h, "\x00")
		io.WriteString(h, r.Goal)
		for _, f := range r.Facts {
			io.WriteString(h, "\x00")
			io.WriteString(h, f)
		}
		io.WriteString(h, "\x01")
	}
	return fmt.Sprintf("fnv64a:%016x", h.Sum64())
}

// TraceIDFor derives the deterministic trace id the runner pins on
// request i: an FNV-128a hash over the schedule digest and the index.
// Being a pure function of (trace, i), a replayed schedule carries the
// same trace ids, so flight-recorder lookups and report exemplars stay
// comparable across runs of the same workload.
func (t *Trace) TraceIDFor(i int) [16]byte {
	h := fnv.New128a()
	io.WriteString(h, t.Digest())
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(i))
	h.Write(buf[:])
	var id [16]byte
	h.Sum(id[:0])
	// An all-zero trace id is "absent" in W3C traceparent terms; FNV of
	// non-empty input never produces one, but keep the invariant explicit.
	if id == ([16]byte{}) {
		id[15] = 1
	}
	return id
}

// WriteTrace records a trace as indented JSON (the -record format).
func WriteTrace(w io.Writer, t *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace loads a recorded trace, rejecting unknown fields and
// foreign schemas so a replay never silently drops part of a workload.
func ReadTrace(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if t.Schema != TraceSchema {
		return nil, fmt.Errorf("workload: trace schema %q, want %q", t.Schema, TraceSchema)
	}
	return &t, nil
}

// Clock abstracts the runner's view of time so the loadgen harness can
// be driven by tests. Generation never touches it — only execution does.
type Clock interface {
	Now() time.Time
	Sleep(d time.Duration)
}

// RealClock is the wall clock.
type RealClock struct{}

func (RealClock) Now() time.Time        { return time.Now() }
func (RealClock) Sleep(d time.Duration) { time.Sleep(d) }

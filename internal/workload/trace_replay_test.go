package workload

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestTraceRecordReplayRoundTrip records a generated workload to a file
// and replays it: the replayed request sequence — class, goal, mutation
// payloads, send offsets — must be identical to what was generated, and
// the schedule digest must survive the trip.
func TestTraceRecordReplayRoundTrip(t *testing.T) {
	for name, sc := range Scenarios {
		t.Run(name, func(t *testing.T) {
			orig := sc.Generate(99, 5*time.Second, 0)
			path := filepath.Join(t.TempDir(), "trace.json")
			f, err := os.Create(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := WriteTrace(f, orig); err != nil {
				t.Fatal(err)
			}
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}

			g, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			replayed, err := ReadTrace(g)
			g.Close()
			if err != nil {
				t.Fatal(err)
			}

			if !reflect.DeepEqual(orig, replayed) {
				t.Fatal("replayed trace differs from the recorded one")
			}
			for i := range orig.Requests {
				a, b := orig.Requests[i], replayed.Requests[i]
				if a.Class != b.Class || a.Goal != b.Goal || a.Offset != b.Offset || !reflect.DeepEqual(a.Facts, b.Facts) {
					t.Fatalf("request %d changed in replay: %+v vs %+v", i, a, b)
				}
			}
			if orig.Digest() != replayed.Digest() {
				t.Fatal("digest changed across record/replay")
			}
		})
	}
}

// TestReadTraceRejects checks the replay path refuses foreign schemas
// and unknown fields instead of silently dropping workload.
func TestReadTraceRejects(t *testing.T) {
	if _, err := ReadTrace(strings.NewReader(`{"schema":"someone-elses/v9","requests":[]}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := ReadTrace(strings.NewReader(`{"schema":"` + TraceSchema + `","bogus_field":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
	var buf bytes.Buffer
	if err := WriteTrace(&buf, Scenarios["steady"].Generate(1, time.Second, 0)); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadTrace(&buf); err != nil {
		t.Errorf("valid trace rejected: %v", err)
	}
}

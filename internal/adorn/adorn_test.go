package adorn

import (
	"strings"
	"testing"

	"existdlog/internal/ast"
	"existdlog/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGoalAdornment(t *testing.T) {
	cases := []struct {
		goal ast.Atom
		want ast.Adornment
	}{
		{ast.NewAtom("a", ast.V("X"), ast.V("_")), "nd"},
		{ast.NewAtom("a", ast.V("X"), ast.V("Y")), "nn"},
		{ast.NewAtom("a", ast.C("5"), ast.V("_")), "nd"},
		{ast.NewAdorned("a", "dn", ast.V("X"), ast.V("Y")), "dn"},
		{ast.NewAtom("b"), ""},
	}
	for _, c := range cases {
		if got := GoalAdornment(c.goal); got != c.want {
			t.Errorf("GoalAdornment(%s) = %q, want %q", c.goal, got, c.want)
		}
	}
}

// Example 1 of the paper: the adorned program marks the second argument of
// a existential.
func TestAdornExample1(t *testing.T) {
	p := mustParse(t, `
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`)
	ad, err := Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	got := ad.String()
	want := `query@n(X) :- a@nd(X,Y).
a@nd(X,Y) :- p(X,Z), a@nd(Z,Y).
a@nd(X,Y) :- p(X,Y).
?- query@n(X).
`
	if got != want {
		t.Errorf("adorned program:\n%s\nwant:\n%s", got, want)
	}
}

// Example 5 of the paper: the left-linear program needs two adorned
// versions, a@nd and a@nn.
func TestAdornExample5TwoVersions(t *testing.T) {
	p := mustParse(t, `
a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,_).
`)
	ad, err := Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ad.Derived["a@nd"] || !ad.Derived["a@nn"] {
		t.Fatalf("expected a@nd and a@nn, derived=%v\n%s", ad.Derived, ad)
	}
	if len(ad.Rules) != 4 {
		t.Errorf("expected 4 adorned rules, got %d:\n%s", len(ad.Rules), ad)
	}
	// The a@nd rules: recursive one uses a@nn (Z is joined with p), and
	// exit rule drops nothing yet.
	found := false
	for _, r := range ad.Rules {
		if r.Head.Key() == "a@nd" && len(r.Body) == 2 && r.Body[0].Key() == "a@nn" {
			found = true
		}
	}
	if !found {
		t.Errorf("missing a@nd :- a@nn(...), p(...):\n%s", ad)
	}
}

// Example 2 of the paper: adornments across a wide rule; base literals are
// anonymized rather than renamed.
func TestAdornExample2(t *testing.T) {
	p := mustParse(t, `
p(X,U) :- q1(X,Y), q2(Y,Z), q3(U,V), q4(V), q5(W).
q4(X) :- q6(X).
?- p(X,_).
`)
	ad, err := Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	var pr *ast.Rule
	for i := range ad.Rules {
		if ad.Rules[i].Head.Pred == "p" {
			pr = &ad.Rules[i]
		}
	}
	if pr == nil {
		t.Fatalf("no adorned rule for p:\n%s", ad)
	}
	if pr.Head.Adornment != "nd" {
		t.Errorf("head adornment = %q", pr.Head.Adornment)
	}
	// q2's second argument (Z) is existential: anonymized.
	if got := pr.Body[1].Args[1]; !got.IsAnon() {
		t.Errorf("q2 second arg should be anonymized, got %v", got)
	}
	// q3's first argument is U, which appears in the head's d position:
	// it must keep its name (the head still references it).
	if got := pr.Body[2].Args[0]; got != ast.V("U") {
		t.Errorf("q3 first arg = %v, want U", got)
	}
	// q5's argument is existential and absent from the head: anonymized.
	if got := pr.Body[4].Args[0]; !got.IsAnon() {
		t.Errorf("q5 arg should be anonymized, got %v", got)
	}
	// q4 is derived and its argument is needed (joined with q3).
	if got := pr.Body[3].Key(); got != "q4@n" {
		t.Errorf("q4 occurrence key = %q", got)
	}
	if !ad.Derived["q4@n"] {
		t.Error("q4@n should be in the derived set")
	}
}

func TestAdornDropsUnreachableRules(t *testing.T) {
	p := mustParse(t, `
a(X,Y) :- p(X,Y).
junk(X) :- p(X,Y).
?- a(X,_).
`)
	ad, err := Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ad.Rules {
		if r.Head.Pred == "junk" {
			t.Errorf("unreachable rule kept: %s", r)
		}
	}
}

func TestAdornRepeatedVariableIsNeeded(t *testing.T) {
	// A variable occurring twice in one literal is not existential.
	p := mustParse(t, `
a(X) :- p(X,Y), q(Y,Y).
?- a(X).
`)
	ad, err := Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	r := ad.Rules[0]
	if r.Body[1].Args[0] != ast.V("Y") || r.Body[1].Args[1] != ast.V("Y") {
		t.Errorf("repeated variable must not be anonymized: %s", r)
	}
}

func TestAdornConstantsAreNeeded(t *testing.T) {
	p := mustParse(t, `
a(X) :- p(X,1).
a(X) :- a(X).
?- a(_).
`)
	ad, err := Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	// Goal is all-d; recursion keeps adornment d.
	if !ad.Derived["a@d"] {
		t.Errorf("expected a@d, got %v", ad.Derived)
	}
	for _, r := range ad.Rules {
		for _, b := range r.Body {
			if b.Pred == "p" && b.Args[1] != ast.C("1") {
				t.Errorf("constant argument rewritten: %s", r)
			}
		}
	}
}

func TestAdornBooleanPredicates(t *testing.T) {
	p := mustParse(t, `
flag :- p(X,Y).
a(X) :- q(X), flag.
?- a(X).
`)
	ad, err := Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ad.Derived["flag"] {
		t.Errorf("boolean predicate should remain derived: %v", ad.Derived)
	}
	n := 0
	for _, r := range ad.Rules {
		if r.Head.Key() == "flag" {
			n++
		}
	}
	if n != 1 {
		t.Errorf("flag rules = %d", n)
	}
}

func TestAdornQueryOverBaseRelation(t *testing.T) {
	p := mustParse(t, `
a(X) :- p(X,Y).
?- p(X,_).
`)
	ad, err := Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	if ad.Query.Key() != "p" {
		t.Errorf("query key = %s", ad.Query.Key())
	}
}

func TestAdornNoQuery(t *testing.T) {
	p := mustParse(t, `a(X) :- p(X,Y).`)
	if _, err := Adorn(p); err == nil || !strings.Contains(err.Error(), "no query") {
		t.Errorf("expected no-query error, got %v", err)
	}
}

func TestAdornHeadDVariableInBodyKeepsName(t *testing.T) {
	// Y is existential in the head AND appears once in the body: the body
	// occurrence is adorned d but the variable is kept so the head stays
	// bound until projections are pushed.
	p := mustParse(t, `
a(X,Y) :- p(X,Y).
?- a(X,_).
`)
	ad, err := Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	r := ad.Rules[0]
	if r.Body[0].Args[1] != ast.V("Y") {
		t.Errorf("body Y renamed: %s", r)
	}
	if err := ad.Validate(); err != nil {
		t.Errorf("adorned program invalid: %v", err)
	}
}

// Package adorn implements the existential adornment algorithm of
// Section 2 of the paper.
//
// An adornment is a string over {'n','d'}: 'n' marks an argument whose
// values are needed, 'd' an existential (don't-care) argument, for which
// only the existence of some value matters. Detecting existential
// arguments exactly is undecidable (Lemma 2.1); the algorithm here is the
// paper's sufficient syntactic test (Lemma 2.2): a body argument is
// adorned 'd' iff it holds a variable that occurs nowhere else in the
// rule, except possibly in existential arguments of the head.
//
// Starting from the query goal's adornment, the algorithm generates
// adorned versions of the derived predicates reachable from it; a
// predicate may acquire several adorned versions (Example 5 of the paper
// has both a@nn and a@nd), each a distinct predicate. Base (EDB) literals
// are not renamed — their stored relations keep their schema — but their
// existential argument variables are replaced by anonymous variables,
// matching the paper's "_" presentation in Example 2.
package adorn

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"existdlog/internal/ast"
)

// GoalAdornment derives the top-level adornment from a query goal:
// constants and named variables are needed ('n'), anonymous variables are
// existential ('d'). A goal that is already adorned keeps its adornment.
func GoalAdornment(goal ast.Atom) ast.Adornment {
	if goal.Adornment != "" {
		return goal.Adornment
	}
	var sb strings.Builder
	for _, t := range goal.Args {
		if t.Kind == ast.Variable && t.IsAnon() {
			sb.WriteByte('d')
		} else {
			sb.WriteByte('n')
		}
	}
	return ast.Adornment(sb.String())
}

// Adorn produces the adorned program P^{e,ad} for p. The query goal's
// predicate seeds the worklist; every rule whose head predicate acquires
// an adorned version is copied with its head and derived body literals
// adorned. The result's Derived set holds the adorned keys (plus any
// derived predicates unreachable from the query, which are dropped along
// with their rules, as they cannot contribute answers).
func Adorn(p *ast.Program) (*ast.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Query.Pred == "" {
		return nil, fmt.Errorf("adorn: program has no query goal")
	}
	// A program whose rules already carry adornments (hand-written in the
	// paper's notation, or a re-run of the pipeline) is passed through
	// unchanged.
	for _, r := range p.Rules {
		if r.Head.Adornment != "" {
			return p.Clone(), nil
		}
	}
	goalAd := GoalAdornment(p.Query)
	for _, c := range goalAd {
		if c != 'n' && c != 'd' {
			return nil, fmt.Errorf("adorn: goal adornment %q is not over {n,d}", goalAd)
		}
	}

	out := &ast.Program{Derived: make(map[string]bool)}
	if !p.IsDerived(p.Query.Key()) && !p.IsDerived(p.Query.Pred) {
		// Query over a base relation: nothing to adorn.
		out.Rules = cloneRules(p.Rules)
		for k := range p.Derived {
			out.Derived[k] = true
		}
		out.Query = p.Query.Clone()
		return out, nil
	}

	type job struct {
		pred string
		ad   ast.Adornment
	}
	anonN := 0
	fresh := func() ast.Term {
		anonN++
		return ast.V("_A" + strconv.Itoa(anonN))
	}
	marked := map[string]bool{}
	var worklist []job
	push := func(pred string, ad ast.Adornment) {
		key := pred + "@" + string(ad)
		if ad == "" {
			key = pred
		}
		if !marked[key] {
			marked[key] = true
			worklist = append(worklist, job{pred, ad})
			out.Derived[key] = true
		}
	}
	push(p.Query.Pred, goalAd)

	for len(worklist) > 0 {
		j := worklist[0]
		worklist = worklist[1:]
		for _, r := range p.Rules {
			if r.Head.Pred != j.pred || r.Head.Adornment != "" {
				continue
			}
			if len(j.ad) != r.Head.Arity() {
				return nil, fmt.Errorf("adorn: adornment %q does not fit %s/%d",
					j.ad, r.Head.Pred, r.Head.Arity())
			}
			ar := adornRule(r, j.ad, p, fresh)
			out.Rules = append(out.Rules, ar)
			for _, b := range ar.Body {
				if b.Adornment != "" || (p.IsDerived(b.Pred) && b.Arity() == 0) {
					push(b.Pred, b.Adornment)
				}
			}
		}
	}
	out.Query = p.Query.Clone()
	out.Query.Adornment = goalAd
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("adorn: internal error: %w", err)
	}
	return out, nil
}

// adornRule copies r, adorning the head with headAd and every body literal
// per the sufficient test: an argument is 'd' iff it is a variable whose
// only occurrences outside this position are in existential ('d')
// positions of the head. Derived body literals are renamed to their
// adorned versions; base literals stay unadorned with their existential
// variables anonymized.
func adornRule(r ast.Rule, headAd ast.Adornment, p *ast.Program, fresh func() ast.Term) ast.Rule {
	// Occurrence counts: body occurrences, and head occurrences split by
	// the head position's adornment.
	bodyOcc := map[string]int{}
	headNOcc := map[string]int{}
	headOcc := map[string]int{}
	for _, b := range r.Body {
		for _, t := range b.Args {
			if t.Kind == ast.Variable {
				bodyOcc[t.Name]++
			}
		}
	}
	for i, t := range r.Head.Args {
		if t.Kind == ast.Variable {
			headOcc[t.Name]++
			if headAd[i] == 'n' {
				headNOcc[t.Name]++
			}
		}
	}
	existential := func(t ast.Term) bool {
		if t.Kind != ast.Variable {
			return false
		}
		return bodyOcc[t.Name] == 1 && headNOcc[t.Name] == 0
	}

	out := r.Clone()
	out.Head.Adornment = headAd
	for bi := range out.Body {
		b := &out.Body[bi]
		if b.Arity() == 0 {
			continue // boolean literal: nothing to adorn
		}
		var sb strings.Builder
		for _, t := range b.Args {
			if existential(t) {
				sb.WriteByte('d')
			} else {
				sb.WriteByte('n')
			}
		}
		ad := ast.Adornment(sb.String())
		if p.IsDerived(b.Pred) {
			b.Adornment = ad
		} else {
			// Base literal: keep the stored schema; anonymize existential
			// variables for readability (the paper's "_"). Variables that
			// also occur in the head (necessarily in a 'd' position, or
			// they would not be existential) must keep their name until
			// projection pushing drops the head position.
			for ai, t := range b.Args {
				if ad[ai] == 'd' && t.Kind == ast.Variable && !t.IsAnon() && headOcc[t.Name] == 0 {
					b.Args[ai] = fresh()
				}
			}
		}
	}
	return out
}

func cloneRules(rs []ast.Rule) []ast.Rule {
	out := make([]ast.Rule, len(rs))
	for i := range rs {
		out[i] = rs[i].Clone()
	}
	return out
}

// AdornedKeys lists the adorned derived predicate versions appearing in p
// (head, body, or query), sorted — the "adornments chosen" line of the
// optimizer's EXPLAIN report.
func AdornedKeys(p *ast.Program) []string {
	seen := map[string]bool{}
	note := func(a ast.Atom) {
		if a.Adornment != "" && p.Derived[a.Key()] {
			seen[a.Key()] = true
		}
	}
	for _, r := range p.Rules {
		note(r.Head)
		for _, b := range r.Body {
			note(b)
		}
	}
	note(p.Query)
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

package adorn

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"existdlog/internal/ast"
	"existdlog/internal/engine"
	"existdlog/internal/parser"
)

// Lemma 2.2 states the adornment algorithm marks an argument 'd' only if
// it is existential per the Section 2 DEFINITION: adding the split rule
//
//	p'(X̄,Y') :- p(X̄,Y).
//
// (Y' ranging freely) and replacing the occurrence by p' preserves query
// equivalence. The definition's free Y' is modeled over the active domain
// with an auxiliary dom relation, and query equivalence is spot-checked
// over randomized databases. This is the semantic counterpart of the
// syntactic tests elsewhere in this package.
func TestLemma22SemanticSoundness(t *testing.T) {
	programs := []string{
		`query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).`,
		`query(X) :- a(X,Y), c(W).
a(X,Y) :- p(X,Y).
?- query(X).`,
		`query(X) :- a(X,Y), b(X,Z).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
b(X,Z) :- p(X,Z).
?- query(X).`,
	}
	rng := rand.New(rand.NewSource(22))
	for pi, src := range programs {
		orig, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		ad, err := Adorn(orig)
		if err != nil {
			t.Fatal(err)
		}
		// Collect every d-marked body position of the adorned program.
		type site struct{ rule, lit, pos int }
		var sites []site
		for ri, r := range ad.Rules {
			for li, b := range r.Body {
				for k := range b.Args {
					if isDPosition(ad, r, b, k) {
						sites = append(sites, site{ri, li, k})
					}
				}
			}
		}
		if len(sites) == 0 {
			t.Fatalf("program %d: expected d-marked positions", pi)
		}
		for _, s := range sites {
			transformed := splitOccurrence(ad, s.rule, s.lit, s.pos)
			for trial := 0; trial < 5; trial++ {
				db := engine.NewDatabase()
				n := 3 + rng.Intn(4)
				for i := 0; i < 2*n; i++ {
					db.Add("p", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
				}
				db.Add("c", "w")
				// dom = active domain (models the definition's free Y').
				for _, id := range db.ActiveDomain() {
					db.Add("dom", db.Syms.Name(id))
				}
				r1, err := engine.Eval(ad, db, engine.Options{})
				if err != nil {
					t.Fatal(err)
				}
				r2, err := engine.Eval(transformed, db, engine.Options{})
				if err != nil {
					t.Fatalf("site %+v: %v\n%s", s, err, transformed)
				}
				a1 := r1.Answers(ad.Query)
				a2 := r2.Answers(transformed.Query)
				if fmt.Sprint(a1) != fmt.Sprint(a2) {
					t.Fatalf("program %d site %+v trial %d: Lemma 2.2 violated\nbefore: %v\nafter:  %v\ntransformed:\n%s",
						pi, s, trial, a1, a2, transformed)
				}
			}
		}
	}
}

// isDPosition reports whether argument k of body literal b is existential
// per the adornment: derived literals carry it in their adornment; base
// literals show it as an anonymized (or otherwise head-d-only) variable.
func isDPosition(p *ast.Program, r ast.Rule, b ast.Atom, k int) bool {
	if b.Adornment != "" && len(b.Adornment) == len(b.Args) {
		return b.Adornment[k] == 'd'
	}
	t := b.Args[k]
	return t.Kind == ast.Variable && t.IsAnon()
}

// splitOccurrence applies the Section 2 definition at one body position:
// a fresh predicate p_prime defined by p_prime(...,Y') :- p(...,Y),
// dom(Y'), the occurrence replaced, and head occurrences of Y renamed to
// Y'.
func splitOccurrence(p *ast.Program, ri, li, k int) *ast.Program {
	out := p.Clone()
	r := &out.Rules[ri]
	occ := r.Body[li].Clone()
	prime := occ.Pred + "_prime"
	yName := ""
	if t := occ.Args[k]; t.Kind == ast.Variable {
		yName = t.Name
	}

	// Defining rule: p_prime carries the occurrence's shape with Y
	// replaced by a domain-ranging Y'.
	defHeadArgs := make([]ast.Term, len(occ.Args))
	defBodyArgs := make([]ast.Term, len(occ.Args))
	for i := range occ.Args {
		v := ast.V(fmt.Sprintf("A%d", i))
		defHeadArgs[i] = v
		defBodyArgs[i] = v
	}
	defHeadArgs[k] = ast.V("Yprime")
	defBodyArgs[k] = ast.V("Yorig")
	defRule := ast.NewRule(
		ast.Atom{Pred: prime, Adornment: occ.Adornment, Args: defHeadArgs},
		ast.Atom{Pred: occ.Pred, Adornment: occ.Adornment, Args: defBodyArgs},
		ast.NewAtom("dom", ast.V("Yprime")),
	)

	// Replace the occurrence and rename head uses of Y.
	newOcc := occ.Clone()
	newOcc.Pred = prime
	newOcc.Args[k] = ast.V("YPRIME_SITE")
	r.Body[li] = newOcc
	if yName != "" {
		for i, t := range r.Head.Args {
			if t.Kind == ast.Variable && t.Name == yName {
				r.Head.Args[i] = ast.V("YPRIME_SITE")
			}
		}
	}
	out.Rules = append(out.Rules, defRule)
	out.Derived[defRule.Head.Key()] = true
	return out
}

// The algorithm must also never mark a genuinely needed position: a
// sanity case where marking would change answers, and the adornment
// correctly says 'n'.
func TestLemma22NeededPositionsStayNeeded(t *testing.T) {
	p := parser.MustParseProgram(`
query(X) :- a(X,Y), b(Y).
a(X,Y) :- p(X,Y).
b(Y) :- p(Y,Z).
?- query(X).
`)
	ad, err := Adorn(p)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range ad.Rules {
		if r.Head.Key() != ad.Query.Key() {
			continue
		}
		if !strings.Contains(r.Body[0].Key(), "a@nn") {
			t.Errorf("Y is joined with b and must be needed: %s", r)
		}
	}
}

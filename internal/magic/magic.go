// Package magic implements the selection-pushing rewritings the paper
// treats as orthogonal to projection pushing (Sections 1.2 and 6): the
// (generalized) magic-sets transformation with left-to-right sideways
// information passing, and the counting rewrite for the canonical linear
// recursion. The E9 experiment composes them with the existential
// optimizations to demonstrate the orthogonality claim.
package magic

import (
	"fmt"
	"strings"

	"existdlog/internal/ast"
)

// magicName builds the magic predicate name for an adorned predicate.
func magicName(pred string, a ast.Adornment) string {
	return "m_" + pred + "_" + string(a)
}

// bfGoal computes the bound/free adornment of the query goal: constants
// are bound, variables free.
func bfGoal(goal ast.Atom) ast.Adornment {
	var sb strings.Builder
	for _, t := range goal.Args {
		if t.Kind == ast.Constant {
			sb.WriteByte('b')
		} else {
			sb.WriteByte('f')
		}
	}
	return ast.Adornment(sb.String())
}

// Rewrite performs the generalized magic-sets transformation of p for its
// query goal, with left-to-right sideways information passing. Derived
// predicates are specialized by bound/free adornments; each rule is
// guarded by the magic set of its head; magic rules seed the computation
// from the query's constants (the seed is an empty-bodied rule, which the
// engine evaluates once at startup).
//
// The input may already carry existential (n/d) adornments from the
// projection pipeline — those are part of the predicate identity and pass
// through untouched; the magic adornment is tracked in the rewritten
// predicate names.
func Rewrite(p *ast.Program) (*ast.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("magic: negation is not supported by this rewriting")
	}
	if p.Query.Pred == "" {
		return nil, fmt.Errorf("magic: program has no query goal")
	}
	goalAd := bfGoal(p.Query)

	out := &ast.Program{Derived: make(map[string]bool)}

	// name returns the specialized predicate for a derived atom under a
	// b/f adornment (keeping any existential adornment in the name).
	name := func(a ast.Atom, bf ast.Adornment) string {
		base := a.Pred
		if a.Adornment != "" {
			base += "_" + string(a.Adornment)
		}
		return base + "_" + string(bf)
	}

	type job struct {
		key string // original predicate key
		bf  ast.Adornment
	}
	marked := map[string]bool{}
	var worklist []job
	push := func(key string, bf ast.Adornment) {
		k := key + "#" + string(bf)
		if !marked[k] {
			marked[k] = true
			worklist = append(worklist, job{key, bf})
		}
	}
	push(p.Query.Key(), goalAd)

	// Magic seed: m_q^a(bound constants).
	var seedArgs []ast.Term
	for i, t := range p.Query.Args {
		if goalAd[i] == 'b' {
			seedArgs = append(seedArgs, t)
		}
	}
	qAtomName := name(p.Query, goalAd)
	seed := ast.NewRule(ast.NewAtom(magicName(qAtomName, goalAd), seedArgs...))
	out.Rules = append(out.Rules, seed)
	out.Derived[seed.Head.Key()] = true

	for len(worklist) > 0 {
		j := worklist[0]
		worklist = worklist[1:]
		for _, r := range p.Rules {
			if r.Head.Key() != j.key {
				continue
			}
			nr, magicRules, calls := rewriteRule(p, r, j.bf, name)
			out.Rules = append(out.Rules, nr)
			out.Rules = append(out.Rules, magicRules...)
			out.Derived[nr.Head.Key()] = true
			for _, mr := range magicRules {
				out.Derived[mr.Head.Key()] = true
			}
			for _, c := range calls {
				push(c.key, c.bf)
			}
		}
	}

	goal := p.Query.Clone()
	goal.Pred = qAtomName
	goal.Adornment = ""
	out.Query = goal
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("magic: rewrite produced invalid program: %w", err)
	}
	return out, nil
}

type call struct {
	key string
	bf  ast.Adornment
}

// rewriteRule produces the guarded rule and the magic rules for one
// adorned rule instance.
func rewriteRule(p *ast.Program, r ast.Rule, headBF ast.Adornment,
	name func(ast.Atom, ast.Adornment) string) (ast.Rule, []ast.Rule, []call) {

	bound := map[string]bool{}
	var boundHeadArgs []ast.Term
	for i, t := range r.Head.Args {
		if headBF[i] == 'b' {
			if t.Kind == ast.Variable {
				bound[t.Name] = true
			}
			boundHeadArgs = append(boundHeadArgs, t)
		}
	}
	headName := name(r.Head, headBF)
	magicHead := ast.NewAtom(magicName(headName, headBF), boundHeadArgs...)

	newHead := ast.Atom{Pred: headName, Args: cloneTerms(r.Head.Args)}
	nr := ast.Rule{Head: newHead, Body: []ast.Atom{magicHead.Clone()}}
	var magicRules []ast.Rule
	var calls []call

	for _, b := range r.Body {
		if !p.Derived[b.Key()] {
			nr.Body = append(nr.Body, b.Clone())
			for _, t := range b.Args {
				if t.Kind == ast.Variable {
					bound[t.Name] = true
				}
			}
			continue
		}
		// Compute the b/f adornment of this call under the current
		// bindings.
		var bf strings.Builder
		var boundArgs []ast.Term
		for _, t := range b.Args {
			if t.Kind == ast.Constant || (t.Kind == ast.Variable && bound[t.Name]) {
				bf.WriteByte('b')
				boundArgs = append(boundArgs, t)
			} else {
				bf.WriteByte('f')
			}
		}
		callBF := ast.Adornment(bf.String())
		callName := name(b, callBF)
		// Magic rule: m_call(bound args) :- <guard and body so far>.
		mr := ast.Rule{
			Head: ast.NewAtom(magicName(callName, callBF), boundArgs...),
			Body: cloneAtoms(nr.Body),
		}
		magicRules = append(magicRules, mr)
		calls = append(calls, call{b.Key(), callBF})
		// Rewritten call in the body.
		nb := ast.Atom{Pred: callName, Args: cloneTerms(b.Args)}
		nr.Body = append(nr.Body, nb)
		for _, t := range b.Args {
			if t.Kind == ast.Variable {
				bound[t.Name] = true
			}
		}
	}
	return nr, magicRules, calls
}

func cloneTerms(ts []ast.Term) []ast.Term {
	out := make([]ast.Term, len(ts))
	copy(out, ts)
	return out
}

func cloneAtoms(as []ast.Atom) []ast.Atom {
	out := make([]ast.Atom, len(as))
	for i := range as {
		out[i] = as[i].Clone()
	}
	return out
}

package magic

import (
	"fmt"

	"existdlog/internal/ast"
)

// CountingRewrite implements the counting method for the canonical linear
// recursion with a bound first argument — the same-generation shape
//
//	sg(X,Y) :- up(X,U), sg(U,V), dn(V,Y).
//	sg(X,Y) :- flat(X,Y).
//	?- sg(c, Y).
//
// and its degenerate transitive-closure shape without the dn literal. The
// rewrite replaces the binary recursion by level-indexed unary phases
// using the engine's succ builtin:
//
//	m(0, c).                                  % reach up, counting levels
//	m(J, U) :- m(I, X), up(X, U), succ(I, J).
//	s(I, V) :- m(I, X), flat(X, V).           % cross over
//	s(I, Y) :- s(J, V), dn(V, Y), succ(I, J). % come back down, counting
//	ans(Y)  :- s(0, Y).
//
// Counting is sound only on acyclic up-graphs (the indices diverge on
// cycles — the well-known limitation); the engine's MaxFacts guard
// protects runaway evaluations.
func CountingRewrite(p *ast.Program) (*ast.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("magic: negation is not supported by this rewriting")
	}
	q := p.Query
	if q.Arity() != 2 || q.Args[0].Kind != ast.Constant || q.Args[1].Kind != ast.Variable {
		return nil, fmt.Errorf("magic: counting needs a query of the form sg(c, Y)")
	}
	rules := p.RulesFor(q.Key())
	if len(rules) != 2 {
		return nil, fmt.Errorf("magic: counting needs exactly one recursive and one exit rule")
	}
	var rec, exit *ast.Rule
	for _, ri := range rules {
		r := &p.Rules[ri]
		recursive := false
		for _, b := range r.Body {
			if b.Key() == q.Key() {
				recursive = true
			}
		}
		if recursive {
			rec = r
		} else {
			exit = r
		}
	}
	if rec == nil || exit == nil {
		return nil, fmt.Errorf("magic: counting needs one recursive and one exit rule")
	}
	// Exit shape: sg(X,Y) :- flat(X,Y).
	if len(exit.Body) != 1 || exit.Body[0].Arity() != 2 ||
		exit.Body[0].Args[0] != exit.Head.Args[0] || exit.Body[0].Args[1] != exit.Head.Args[1] {
		return nil, fmt.Errorf("magic: counting needs an exit rule sg(X,Y) :- flat(X,Y)")
	}
	flat := exit.Body[0].Key()
	// Recursive shape: sg(X,Y) :- up(X,U), sg(U,V)[, dn(V,Y)] — or the TC
	// shape sg(X,Y) :- up(X,U), sg(U,Y).
	if len(rec.Body) < 2 || len(rec.Body) > 3 {
		return nil, fmt.Errorf("magic: unsupported recursive rule %s", rec)
	}
	up, sg := rec.Body[0], rec.Body[1]
	if sg.Key() != q.Key() || up.Arity() != 2 ||
		up.Args[0] != rec.Head.Args[0] || sg.Args[0] != up.Args[1] {
		return nil, fmt.Errorf("magic: unsupported recursive rule %s", rec)
	}
	hasDn := len(rec.Body) == 3
	var dnKey string
	if hasDn {
		dn := rec.Body[2]
		if dn.Arity() != 2 || dn.Args[0] != sg.Args[1] || dn.Args[1] != rec.Head.Args[1] {
			return nil, fmt.Errorf("magic: unsupported recursive rule %s", rec)
		}
		dnKey = dn.Key()
	} else if sg.Args[1] != rec.Head.Args[1] {
		return nil, fmt.Errorf("magic: unsupported recursive rule %s", rec)
	}

	c := q.Args[0]
	var out []ast.Rule
	out = append(out,
		ast.NewRule(ast.NewAtom("cnt_m", ast.C("0"), c)),
		ast.NewRule(ast.NewAtom("cnt_m", ast.V("J"), ast.V("U")),
			ast.NewAtom("cnt_m", ast.V("I"), ast.V("X")),
			ast.NewAtom(up.Key(), ast.V("X"), ast.V("U")),
			ast.NewAtom("succ", ast.V("I"), ast.V("J"))),
		ast.NewRule(ast.NewAtom("cnt_s", ast.V("I"), ast.V("V")),
			ast.NewAtom("cnt_m", ast.V("I"), ast.V("X")),
			ast.NewAtom(flat, ast.V("X"), ast.V("V"))),
	)
	if hasDn {
		out = append(out,
			ast.NewRule(ast.NewAtom("cnt_s", ast.V("I"), ast.V("Y")),
				ast.NewAtom("cnt_s", ast.V("J"), ast.V("V")),
				ast.NewAtom(dnKey, ast.V("V"), ast.V("Y")),
				ast.NewAtom("succ", ast.V("I"), ast.V("J"))),
			ast.NewRule(ast.NewAtom("cnt_ans", ast.V("Y")),
				ast.NewAtom("cnt_s", ast.C("0"), ast.V("Y"))),
		)
	} else {
		// TC shape: any level's crossover is an answer.
		out = append(out,
			ast.NewRule(ast.NewAtom("cnt_ans", ast.V("Y")),
				ast.NewAtom("cnt_s", ast.V("I"), ast.V("Y"))),
		)
	}
	np := ast.NewProgram(ast.NewAtom("cnt_ans", ast.V("Y")), out...)
	if err := np.Validate(); err != nil {
		return nil, fmt.Errorf("magic: counting rewrite invalid: %w", err)
	}
	return np, nil
}

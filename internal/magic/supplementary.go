package magic

import (
	"fmt"
	"sort"
	"strings"

	"existdlog/internal/ast"
)

// RewriteSupplementary performs the supplementary magic-sets
// transformation: like Rewrite, but each rule's partial joins are
// materialized once in supplementary predicates instead of being recomputed
// by every magic rule. For rules with several derived calls (e.g. the
// non-linear same-generation program) this avoids re-joining the common
// prefix per call.
//
// Structure per rule p^a(t̄) :- l1, ..., ln:
//
//	sup_0 ≡ m_p^a(bound(t̄))
//	before the k-th derived call li:
//	    m_li(bound(li))    :- sup_{k-1}(V_{k-1}), <base literals since>.
//	    sup_k(V_k)         :- sup_{k-1}(V_{k-1}), <base literals since>, li'.
//	finally:
//	    p^a(t̄)             :- sup_last(V), <trailing base literals>.
//
// where V_k keeps exactly the variables still needed downstream.
func RewriteSupplementary(p *ast.Program) (*ast.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("magic: negation is not supported by this rewriting")
	}
	if p.Query.Pred == "" {
		return nil, fmt.Errorf("magic: program has no query goal")
	}
	goalAd := bfGoal(p.Query)

	out := &ast.Program{Derived: make(map[string]bool)}
	name := func(a ast.Atom, bf ast.Adornment) string {
		base := a.Pred
		if a.Adornment != "" {
			base += "_" + string(a.Adornment)
		}
		return base + "_" + string(bf)
	}

	type job struct {
		key string
		bf  ast.Adornment
	}
	marked := map[string]bool{}
	var worklist []job
	push := func(key string, bf ast.Adornment) {
		k := key + "#" + string(bf)
		if !marked[k] {
			marked[k] = true
			worklist = append(worklist, job{key, bf})
		}
	}
	push(p.Query.Key(), goalAd)

	var seedArgs []ast.Term
	for i, t := range p.Query.Args {
		if goalAd[i] == 'b' {
			seedArgs = append(seedArgs, t)
		}
	}
	qAtomName := name(p.Query, goalAd)
	seed := ast.NewRule(ast.NewAtom(magicName(qAtomName, goalAd), seedArgs...))
	out.Rules = append(out.Rules, seed)
	out.Derived[seed.Head.Key()] = true

	addRule := func(r ast.Rule) {
		out.Rules = append(out.Rules, r)
		out.Derived[r.Head.Key()] = true
	}

	ruleSeq := 0
	for len(worklist) > 0 {
		j := worklist[0]
		worklist = worklist[1:]
		for _, r := range p.Rules {
			if r.Head.Key() != j.key {
				continue
			}
			ruleSeq++
			calls := rewriteRuleSupplementary(p, r, j.bf, ruleSeq, name, addRule)
			for _, c := range calls {
				push(c.key, c.bf)
			}
		}
	}

	goal := p.Query.Clone()
	goal.Pred = qAtomName
	goal.Adornment = ""
	out.Query = goal
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("magic: supplementary rewrite produced invalid program: %w", err)
	}
	return out, nil
}

func rewriteRuleSupplementary(p *ast.Program, r ast.Rule, headBF ast.Adornment,
	ruleSeq int, name func(ast.Atom, ast.Adornment) string,
	addRule func(ast.Rule)) []call {

	headName := name(r.Head, headBF)
	bound := map[string]bool{}
	var boundHeadArgs []ast.Term
	for i, t := range r.Head.Args {
		if headBF[i] == 'b' {
			if t.Kind == ast.Variable {
				bound[t.Name] = true
			}
			boundHeadArgs = append(boundHeadArgs, t)
		}
	}

	// varsNeededAfter[i] = variables used by literals i..n-1 or the head.
	neededAfter := make([]map[string]bool, len(r.Body)+1)
	neededAfter[len(r.Body)] = map[string]bool{}
	for _, t := range r.Head.Args {
		if t.Kind == ast.Variable && !t.IsAnon() {
			neededAfter[len(r.Body)][t.Name] = true
		}
	}
	for i := len(r.Body) - 1; i >= 0; i-- {
		m := map[string]bool{}
		for v := range neededAfter[i+1] {
			m[v] = true
		}
		for _, t := range r.Body[i].Args {
			if t.Kind == ast.Variable && !t.IsAnon() {
				m[t.Name] = true
			}
		}
		neededAfter[i] = m
	}

	guard := ast.NewAtom(magicName(headName, headBF), append([]ast.Term(nil), boundHeadArgs...)...)
	var pending []ast.Atom // base literals since the last supplementary
	var calls []call
	supN := 0

	for i, b := range r.Body {
		if !p.Derived[b.Key()] {
			pending = append(pending, b.Clone())
			for _, t := range b.Args {
				if t.Kind == ast.Variable {
					bound[t.Name] = true
				}
			}
			continue
		}
		var bf strings.Builder
		var boundArgs []ast.Term
		for _, t := range b.Args {
			if t.Kind == ast.Constant || (t.Kind == ast.Variable && bound[t.Name]) {
				bf.WriteByte('b')
				boundArgs = append(boundArgs, t)
			} else {
				bf.WriteByte('f')
			}
		}
		callBF := ast.Adornment(bf.String())
		callName := name(b, callBF)
		// Magic rule for the call, from the current guard.
		addRule(ast.Rule{
			Head: ast.NewAtom(magicName(callName, callBF), boundArgs...),
			Body: append([]ast.Atom{guard.Clone()}, cloneAtoms(pending)...),
		})
		calls = append(calls, call{b.Key(), callBF})
		// Supplementary predicate carrying the variables still needed.
		rewritten := ast.Atom{Pred: callName, Args: cloneTerms(b.Args)}
		for _, t := range b.Args {
			if t.Kind == ast.Variable {
				bound[t.Name] = true
			}
		}
		supN++
		supVars := supVariables(guard, pending, rewritten, bound, neededAfter[i+1])
		sup := ast.NewAtom(fmt.Sprintf("sup_%s_%d_%d", headName, ruleSeq, supN), supVars...)
		addRule(ast.Rule{
			Head: sup,
			Body: append(append([]ast.Atom{guard.Clone()}, cloneAtoms(pending)...), rewritten),
		})
		guard = sup
		pending = nil
	}

	addRule(ast.Rule{
		Head: ast.Atom{Pred: headName, Args: cloneTerms(r.Head.Args)},
		Body: append([]ast.Atom{guard.Clone()}, cloneAtoms(pending)...),
	})
	return calls
}

// supVariables selects, in deterministic order, the variables bound by the
// prefix (guard + pending + the rewritten call) that are needed later.
func supVariables(guard ast.Atom, pending []ast.Atom, callAtom ast.Atom,
	bound map[string]bool, needed map[string]bool) []ast.Term {
	avail := map[string]bool{}
	collect := func(a ast.Atom) {
		for _, t := range a.Args {
			if t.Kind == ast.Variable && !t.IsAnon() {
				avail[t.Name] = true
			}
		}
	}
	collect(guard)
	for _, a := range pending {
		collect(a)
	}
	collect(callAtom)
	var names []string
	for v := range avail {
		if needed[v] && bound[v] {
			names = append(names, v)
		}
	}
	sort.Strings(names)
	out := make([]ast.Term, len(names))
	for i, v := range names {
		out[i] = ast.V(v)
	}
	return out
}

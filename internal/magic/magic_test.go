package magic

import (
	"fmt"
	"math/rand"
	"testing"

	"existdlog/internal/ast"
	"existdlog/internal/engine"
	"existdlog/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func chainDB(n int) *engine.Database {
	db := engine.NewDatabase()
	for i := 0; i < n; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	return db
}

const boundTC = `
a(X,Y) :- e(X,Z), a(Z,Y).
a(X,Y) :- e(X,Y).
?- a(5, Y).
`

func TestMagicRewriteBoundTC(t *testing.T) {
	p := mustParse(t, boundTC)
	mp, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	db := chainDB(40)
	orig, err := engine.Eval(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	magic, err := engine.Eval(mp, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	wa := orig.Answers(p.Query)
	ga := magic.Answers(mp.Query)
	// Compare the free column.
	if len(wa) != len(ga) {
		t.Fatalf("answers differ: %d vs %d\n%s", len(wa), len(ga), mp)
	}
	for i := range wa {
		if wa[i][1] != ga[i][1] {
			t.Errorf("row %d: %v vs %v", i, wa[i], ga[i])
		}
	}
	// The point of magic sets: do not compute the whole closure.
	if magic.Stats.FactsDerived >= orig.Stats.FactsDerived {
		t.Errorf("magic should derive fewer facts: %d vs %d",
			magic.Stats.FactsDerived, orig.Stats.FactsDerived)
	}
}

func TestMagicRewriteRandomGraphs(t *testing.T) {
	p := mustParse(t, boundTC)
	mp, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 15; trial++ {
		db := engine.NewDatabase()
		n := 4 + rng.Intn(8)
		for i := 0; i < 3*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		orig, err := engine.Eval(p, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		magic, err := engine.Eval(mp, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		a1 := orig.Answers(p.Query)
		a2 := magic.Answers(mp.Query)
		if fmt.Sprint(project(a1, 1)) != fmt.Sprint(project(a2, 1)) {
			t.Fatalf("trial %d: %v vs %v", trial, a1, a2)
		}
	}
}

func project(rows [][]string, col int) []string {
	out := make([]string, len(rows))
	for i, r := range rows {
		out[i] = r[col]
	}
	return out
}

// Same-generation with a bound source: the classic magic-sets showcase.
func TestMagicSameGeneration(t *testing.T) {
	p := mustParse(t, `
sg(X,Y) :- up(X,U), sg(U,V), dn(V,Y).
sg(X,Y) :- flat(X,Y).
?- sg(t0a0, Y).
`)
	mp, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	db := sgDB(6, 8)
	orig, err := engine.Eval(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	magic, err := engine.Eval(mp, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(project(orig.Answers(p.Query), 1)) !=
		fmt.Sprint(project(magic.Answers(mp.Query), 1)) {
		t.Fatalf("answers differ:\n%v\n%v", orig.Answers(p.Query), magic.Answers(mp.Query))
	}
	if magic.Stats.FactsDerived >= orig.Stats.FactsDerived {
		t.Errorf("magic should derive fewer facts: %d vs %d",
			magic.Stats.FactsDerived, orig.Stats.FactsDerived)
	}
}

// sgDB builds disjoint same-generation towers: in tower t, a-nodes go up,
// b-nodes come down, and flat edges connect levels. The bound query lands
// in tower 0, so magic sets should ignore the other towers entirely.
func sgDB(depth, towers int) *engine.Database {
	db := engine.NewDatabase()
	for t := 0; t < towers; t++ {
		for i := 0; i < depth; i++ {
			db.Add("up", fmt.Sprintf("t%da%d", t, i), fmt.Sprintf("t%da%d", t, i+1))
			db.Add("dn", fmt.Sprintf("t%db%d", t, i+1), fmt.Sprintf("t%db%d", t, i))
			db.Add("flat", fmt.Sprintf("t%da%d", t, i), fmt.Sprintf("t%db%d", t, i))
		}
		db.Add("flat", fmt.Sprintf("t%da%d", t, depth), fmt.Sprintf("t%db%d", t, depth))
	}
	return db
}

func TestCountingSameGeneration(t *testing.T) {
	p := mustParse(t, `
sg(X,Y) :- up(X,U), sg(U,V), dn(V,Y).
sg(X,Y) :- flat(X,Y).
?- sg(t0a0, Y).
`)
	cp, err := CountingRewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	db := sgDB(6, 1)
	orig, err := engine.Eval(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cnt, err := engine.Eval(cp, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := project(orig.Answers(p.Query), 1)
	got := project(cnt.Answers(cp.Query), 0)
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("counting answers differ: %v vs %v\n%s", want, got, cp)
	}
}

func TestCountingTCShape(t *testing.T) {
	p := mustParse(t, `
a(X,Y) :- e(X,Z), a(Z,Y).
a(X,Y) :- e(X,Y).
?- a(0, Y).
`)
	cp, err := CountingRewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	db := chainDB(12)
	orig, _ := engine.Eval(p, db, engine.Options{})
	cnt, err := engine.Eval(cp, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := project(orig.Answers(p.Query), 1)
	got := project(cnt.Answers(cp.Query), 0)
	if fmt.Sprint(want) != fmt.Sprint(got) {
		t.Fatalf("counting TC answers differ: %v vs %v", want, got)
	}
}

func TestCountingRejectsUnsupportedShapes(t *testing.T) {
	bad := []string{
		`a(X,Y) :- e(X,Y).
?- a(0, Y).`, // no recursion
		`a(X,Y) :- a(X,Z), e(Z,Y).
a(X,Y) :- e(X,Y).
?- a(0, Y).`, // left-linear
		`a(X,Y) :- e(X,Z), a(Z,Y).
a(X,Y) :- e(X,Y).
?- a(X, Y).`, // unbound query
	}
	for _, src := range bad {
		if _, err := CountingRewrite(mustParse(t, src)); err == nil {
			t.Errorf("%q should be rejected", src)
		}
	}
}

func TestMagicAllFreeQuery(t *testing.T) {
	// With no bound arguments magic degenerates gracefully (boolean seed).
	p := mustParse(t, `
a(X,Y) :- e(X,Z), a(Z,Y).
a(X,Y) :- e(X,Y).
?- a(X, Y).
`)
	mp, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	db := chainDB(8)
	orig, _ := engine.Eval(p, db, engine.Options{})
	magic, err := engine.Eval(mp, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if orig.AnswerCount(p.Query) != magic.AnswerCount(mp.Query) {
		t.Errorf("all-free magic changed the answer: %d vs %d",
			orig.AnswerCount(p.Query), magic.AnswerCount(mp.Query))
	}
}

// Composition with existential adornments: magic applies to an already
// projected program (the paper's orthogonality claim).
func TestMagicComposesWithProjectedProgram(t *testing.T) {
	p := mustParse(t, `
a@nd(X) :- e(X,Z), a@nd(Z).
a@nd(X) :- e(X,Z).
?- a@nd(c0x5).
`)
	mp, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	// A forest of disjoint chains: the bound query touches one of them.
	db := engine.NewDatabase()
	for c := 0; c < 10; c++ {
		for i := 0; i < 60; i++ {
			db.Add("e", fmt.Sprintf("c%dx%d", c, i), fmt.Sprintf("c%dx%d", c, i+1))
		}
	}
	orig, _ := engine.Eval(p, db, engine.Options{})
	magic, err := engine.Eval(mp, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if orig.AnswerCount(p.Query) != magic.AnswerCount(mp.Query) {
		t.Fatalf("composed answers differ: %d vs %d",
			orig.AnswerCount(p.Query), magic.AnswerCount(mp.Query))
	}
	if magic.Stats.FactsDerived >= orig.Stats.FactsDerived {
		t.Errorf("magic on projected program should restrict computation: %d vs %d",
			magic.Stats.FactsDerived, orig.Stats.FactsDerived)
	}
	if got := magic.Answers(mp.Query); len(got) != 1 {
		t.Errorf("bound existential query should have one answer, got %v", got)
	}
}

func TestMagicErrorsWithoutQuery(t *testing.T) {
	p := ast.NewProgram(ast.Atom{}, ast.NewRule(
		ast.NewAtom("a", ast.V("X")), ast.NewAtom("e", ast.V("X"))))
	if _, err := Rewrite(p); err == nil {
		t.Error("missing query should error")
	}
}

// Supplementary magic must agree with plain magic on answers; its payoff
// is on rules with several derived calls (the non-linear same-generation
// program), where the shared prefix is materialized once.
func TestSupplementaryMagicNonLinearSG(t *testing.T) {
	src := `
sg(X,Y) :- up(X,U), sg(U,V), flat(V,W), sg(W,Z), dn(Z,Y).
sg(X,Y) :- flat(X,Y).
?- sg(t0a0, Y).
`
	p := mustParse(t, src)
	plain, err := Rewrite(p)
	if err != nil {
		t.Fatal(err)
	}
	supp, err := RewriteSupplementary(p)
	if err != nil {
		t.Fatal(err)
	}
	db := sgDB(5, 4)
	orig, err := engine.Eval(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := engine.Eval(plain, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rs, err := engine.Eval(supp, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := project(orig.Answers(p.Query), 1)
	if got := project(rp.Answers(plain.Query), 1); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("plain magic answers differ: %v vs %v", got, want)
	}
	if got := project(rs.Answers(supp.Query), 1); fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("supplementary answers differ: %v vs %v\n%s", got, want, supp)
	}
	// The prefix join up(X,U) ⋈ sg(U,V) ⋈ flat(V,W) is computed once for
	// both the second magic rule and the final join: fewer join probes.
	if rs.Stats.JoinProbes >= rp.Stats.JoinProbes {
		t.Logf("plain: %+v", rp.Stats)
		t.Logf("supp:  %+v", rs.Stats)
		t.Errorf("supplementary should probe less: %d vs %d",
			rs.Stats.JoinProbes, rp.Stats.JoinProbes)
	}
}

func TestSupplementaryMagicLinearAgrees(t *testing.T) {
	p := mustParse(t, boundTC)
	supp, err := RewriteSupplementary(p)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 10; trial++ {
		db := engine.NewDatabase()
		n := 4 + rng.Intn(8)
		for i := 0; i < 3*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		orig, err := engine.Eval(p, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		rs, err := engine.Eval(supp, db, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fmt.Sprint(project(orig.Answers(p.Query), 1)) !=
			fmt.Sprint(project(rs.Answers(supp.Query), 1)) {
			t.Fatalf("trial %d answers differ\n%s", trial, supp)
		}
	}
}

package engine

import (
	"encoding/csv"
	"fmt"
	"io"
)

// LoadCSV reads comma-separated rows into relation rel; every row becomes
// one tuple (fields are constants). All rows must have the same width,
// which fixes the relation's arity. It returns the number of distinct
// tuples added.
func (db *Database) LoadCSV(rel string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	added := 0
	arity := -1
	if existing, ok := db.Lookup(rel); ok {
		arity = existing.Arity()
	}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, fmt.Errorf("engine: csv %s: %w", rel, err)
		}
		line++
		if arity == -1 {
			arity = len(rec)
		}
		if len(rec) != arity {
			return added, fmt.Errorf("engine: csv %s row %d: %d fields, want %d",
				rel, line, len(rec), arity)
		}
		if db.Add(rel, rec...) {
			added++
		}
	}
}

// WriteCSV writes relation rel as comma-separated rows in sorted order.
func (db *Database) WriteCSV(rel string, w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, row := range db.Facts(rel) {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("engine: csv %s: %w", rel, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// Snapshot serialization: a whole database as one self-describing text
// stream, used by the durable query service to checkpoint its store.
// The format is CSV records throughout — constants may contain commas,
// quotes, and newlines, and csv quoting already round-trips all of them:
//
//	existdlog-db,1                 header: magic, format version
//	rel,<key>,<arity>,<rows>       one per relation, keys sorted
//	<c1>,...,<cn>                  the rows, sorted (Facts order)
//	end,<total-rows>               trailer, row count as a checksum
//
// Relations are written even when empty (arity is part of the database's
// shape: a restored server must reject the same mismatches the original
// did). Sorted keys and rows make the encoding deterministic, so equal
// databases serialize byte-identically.

const snapshotMagic = "existdlog-db"

// WriteSnapshot serializes the database to w.
func (db *Database) WriteSnapshot(w io.Writer) error {
	cw := csv.NewWriter(w)
	total := 0
	if err := cw.Write([]string{snapshotMagic, "1"}); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	for _, key := range db.Keys() {
		rel, _ := db.Lookup(key)
		head := []string{"rel", key, fmt.Sprint(rel.Arity()), fmt.Sprint(rel.Len())}
		if err := cw.Write(head); err != nil {
			return fmt.Errorf("engine: snapshot %s: %w", key, err)
		}
		if rel.Arity() == 0 {
			// A boolean relation's single possible row is the empty tuple,
			// which csv cannot encode as a record; the header's row count
			// (0 or 1) carries the presence bit instead.
			total += rel.Len()
			continue
		}
		for _, row := range db.Facts(key) {
			if err := cw.Write(row); err != nil {
				return fmt.Errorf("engine: snapshot %s: %w", key, err)
			}
			total++
		}
	}
	if err := cw.Write([]string{"end", fmt.Sprint(total)}); err != nil {
		return fmt.Errorf("engine: snapshot: %w", err)
	}
	cw.Flush()
	return cw.Error()
}

// ReadSnapshot deserializes a database written by WriteSnapshot. A
// malformed or truncated stream (no trailer, wrong row counts) is an
// error: snapshot readers must be able to tell a torn file from a
// complete one.
func ReadSnapshot(r io.Reader) (*Database, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	db := NewDatabase()
	rec, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("engine: snapshot header: %w", err)
	}
	if len(rec) != 2 || rec[0] != snapshotMagic || rec[1] != "1" {
		return nil, fmt.Errorf("engine: snapshot header %q: not an existdlog-db v1 snapshot", rec)
	}
	total := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return nil, fmt.Errorf("engine: snapshot truncated: no end trailer")
		}
		if err != nil {
			return nil, fmt.Errorf("engine: snapshot: %w", err)
		}
		switch rec[0] {
		case "end":
			if len(rec) != 2 || rec[1] != fmt.Sprint(total) {
				return nil, fmt.Errorf("engine: snapshot trailer %q: want %d rows", rec, total)
			}
			return db, nil
		case "rel":
			if len(rec) != 4 {
				return nil, fmt.Errorf("engine: snapshot relation header %q", rec)
			}
			key := rec[1]
			var arity, rows int
			if _, err := fmt.Sscan(rec[2], &arity); err != nil || arity < 0 {
				return nil, fmt.Errorf("engine: snapshot %s: bad arity %q", key, rec[2])
			}
			if _, err := fmt.Sscan(rec[3], &rows); err != nil || rows < 0 {
				return nil, fmt.Errorf("engine: snapshot %s: bad row count %q", key, rec[3])
			}
			if err := db.CheckArity(key, arity); err != nil {
				return nil, fmt.Errorf("engine: snapshot: %w", err)
			}
			db.Relation(key, arity)
			if arity == 0 {
				if rows > 1 {
					return nil, fmt.Errorf("engine: snapshot %s: boolean relation with %d rows", key, rows)
				}
				if rows == 1 {
					db.Add(key)
				}
				total += rows
				continue
			}
			for i := 0; i < rows; i++ {
				row, err := cr.Read()
				if err != nil {
					return nil, fmt.Errorf("engine: snapshot %s row %d: %w", key, i+1, err)
				}
				if len(row) != arity {
					return nil, fmt.Errorf("engine: snapshot %s row %d: %d fields, want %d", key, i+1, len(row), arity)
				}
				db.Add(key, row...)
				total++
			}
		default:
			return nil, fmt.Errorf("engine: snapshot: unexpected record %q", rec)
		}
	}
}

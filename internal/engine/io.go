package engine

import (
	"encoding/csv"
	"fmt"
	"io"
)

// LoadCSV reads comma-separated rows into relation rel; every row becomes
// one tuple (fields are constants). All rows must have the same width,
// which fixes the relation's arity. It returns the number of distinct
// tuples added.
func (db *Database) LoadCSV(rel string, r io.Reader) (int, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1 // validated manually for a better message
	added := 0
	arity := -1
	if existing, ok := db.Lookup(rel); ok {
		arity = existing.Arity()
	}
	line := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			return added, nil
		}
		if err != nil {
			return added, fmt.Errorf("engine: csv %s: %w", rel, err)
		}
		line++
		if arity == -1 {
			arity = len(rec)
		}
		if len(rec) != arity {
			return added, fmt.Errorf("engine: csv %s row %d: %d fields, want %d",
				rel, line, len(rec), arity)
		}
		if db.Add(rel, rec...) {
			added++
		}
	}
}

// WriteCSV writes relation rel as comma-separated rows in sorted order.
func (db *Database) WriteCSV(rel string, w io.Writer) error {
	cw := csv.NewWriter(w)
	for _, row := range db.Facts(rel) {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("engine: csv %s: %w", rel, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

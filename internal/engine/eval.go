package engine

import (
	"errors"
	"fmt"
	"strconv"

	"existdlog/internal/ast"
)

// Strategy selects the fixpoint evaluation algorithm.
type Strategy int

const (
	// SemiNaive is differential evaluation: each iteration joins the
	// previous iteration's new facts (the delta) against the full
	// relations, one rule version per derived body occurrence.
	SemiNaive Strategy = iota
	// Naive re-evaluates every rule against the full relations each
	// iteration. Kept for cross-checking the semi-naive implementation.
	Naive
)

// Options configures an evaluation.
type Options struct {
	Strategy Strategy
	// BooleanCut enables the runtime optimization of Section 3.1: a rule
	// defining a boolean (arity-0) predicate is removed from the fixpoint
	// once the predicate holds, and rules that fed only retired rules are
	// retired in cascade ("if q4 does not appear anywhere else in the
	// program, the rule defining it can also be discarded after B2 is
	// shown true"). With the cut enabled, non-query derived relations may
	// legitimately be under-computed; query answers are unaffected.
	BooleanCut bool
	// MaxIterations bounds the fixpoint (default 1<<20).
	MaxIterations int
	// MaxFacts bounds the number of derived facts (0 = unlimited); the
	// guard matters for programs using the arithmetic builtins.
	MaxFacts int
	// TrackProvenance records one justification per derived fact so that
	// derivation trees (Section 1.1 of the paper) can be reconstructed.
	TrackProvenance bool
	// ReorderJoins evaluates each rule's body in a greedy bound-first
	// order (starting from the delta literal in semi-naive versions)
	// instead of the textual order. Answers are unaffected; join probe
	// counts usually drop on badly ordered rules.
	ReorderJoins bool
}

// ErrFactLimit is returned when MaxFacts is exceeded.
var ErrFactLimit = errors.New("engine: derived fact limit exceeded")

// ErrIterationLimit is returned when MaxIterations is exceeded.
var ErrIterationLimit = errors.New("engine: iteration limit exceeded")

// Stats are the evaluation counters reported by the benchmarks. The paper
// argues arity reduction cuts both the facts produced and the duplicate
// elimination cost, so both are counted explicitly.
type Stats struct {
	Iterations    int   // fixpoint passes
	FactsDerived  int   // distinct new facts added to derived relations
	Derivations   int64 // head tuples produced, including duplicates
	DuplicateHits int64 // derivations rejected by duplicate elimination
	JoinProbes    int64 // index probes performed during joins
	RulesRetired  int   // rules removed at runtime by the boolean cut
}

// FactRef identifies a fact for provenance.
type FactRef struct {
	Key string
	Row Tuple
}

// Justification records how a fact was first derived: the rule index in the
// evaluated program and the body facts used.
type Justification struct {
	Rule int
	Body []FactRef
}

// Result is the outcome of an evaluation.
type Result struct {
	// DB extends the input EDB with the derived relations. The input
	// database is never mutated.
	DB    *Database
	Stats Stats
	prov  map[string]map[string]Justification
}

// builtinKind enumerates the arithmetic/comparison builtins available to
// rewritten programs (the counting rewrite needs succ). A predicate name is
// treated as a builtin only if it is neither derived nor present in the
// EDB.
type builtinKind int

const (
	notBuiltin  builtinKind = iota
	builtinSucc             // succ(X,Y): Y = X+1, X must be bound
	builtinLt               // lt(X,Y): numeric <, both bound
	builtinNeq              // neq(X,Y): distinct constants, both bound
)

type argRef struct {
	isConst bool
	constID int32
	slot    int
}

type literalPlan struct {
	key     string
	args    []argRef
	derived bool
	negated bool
	builtin builtinKind
	// occ is this literal's index among the rule's positive derived
	// occurrences (negated literals always read the finished relation of a
	// lower stratum, never a delta).
	occ int
}

type rulePlan struct {
	idx     int // index in the program's rule list
	headKey string
	head    []argRef
	body    []literalPlan
	// nDeltas counts the body literals that can act as the delta in a
	// semi-naive version: positive derived literals always, and positive
	// base literals for incremental updates (their deltas are only
	// populated by Update, so ordinary runs skip those versions).
	nDeltas  int
	slots    int
	boolHead bool
	stratum  int
	// orders caches the greedy join order per delta occurrence (-1 for
	// the naive/startup version); nil entries mean textual order.
	orders map[int][]int
}

type evaluator struct {
	opt     Options
	out     *Database
	plans   []*rulePlan
	active  []bool
	derived map[string]bool
	arity   map[string]int
	deltas  map[string]*Relation
	next    map[string]*Relation
	stats   Stats
	prov    map[string]map[string]Justification
	// scratch per join
	slotVals  []int32
	slotBound []bool
	bodyFacts []FactRef
	colsBuf   [][]int
	valsBuf   []Tuple
	newlyBuf  [][]int
	baseFacts int
	queryKey  string
	maxStrat  int
}

// Eval evaluates program p bottom-up over the extensional database edb and
// returns the derived database and statistics. The input database is not
// mutated. Facts present in edb for derived predicates are honored as
// seeds, which is what the uniform-equivalence tests of Sections 3.3-5
// require ("Input = an instance of the DB", IDB predicates included).
func Eval(p *ast.Program, edb *Database, opt Options) (*Result, error) {
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 1 << 20
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := &evaluator{
		opt:      opt,
		out:      edb.Clone(),
		derived:  p.Derived,
		arity:    make(map[string]int),
		deltas:   make(map[string]*Relation),
		next:     make(map[string]*Relation),
		queryKey: p.Query.Key(),
	}
	ev.baseFacts = ev.out.TotalFacts()
	if opt.TrackProvenance {
		ev.prov = make(map[string]map[string]Justification)
	}
	if err := ev.compile(p); err != nil {
		return nil, err
	}
	var err error
	if opt.Strategy == Naive {
		err = ev.runNaive()
	} else {
		err = ev.runSemiNaive()
	}
	if err != nil {
		return nil, err
	}
	return &Result{DB: ev.out, Stats: ev.stats, prov: ev.prov}, nil
}

func builtinFor(name string, arity int) builtinKind {
	switch {
	case name == "succ" && arity == 2:
		return builtinSucc
	case name == "lt" && arity == 2:
		return builtinLt
	case name == "neq" && arity == 2:
		return builtinNeq
	}
	return notBuiltin
}

func (ev *evaluator) compile(p *ast.Program) error {
	// Record arities of every predicate and materialize derived relations
	// so that empty derived predicates exist in the output.
	note := func(a ast.Atom) {
		if _, ok := ev.arity[a.Key()]; !ok {
			ev.arity[a.Key()] = a.Arity()
		}
	}
	for _, r := range p.Rules {
		note(r.Head)
		for _, b := range r.Body {
			note(b)
		}
	}
	note(p.Query)
	for key := range ev.derived {
		if n, ok := ev.arity[key]; ok {
			ev.out.Relation(key, n)
		}
	}

	for i, r := range p.Rules {
		plan := &rulePlan{idx: i, headKey: r.Head.Key(), boolHead: r.Head.Arity() == 0}
		slots := make(map[string]int)
		slotOf := func(name string) int {
			if s, ok := slots[name]; ok {
				return s
			}
			s := len(slots)
			slots[name] = s
			return s
		}
		refFor := func(t ast.Term) argRef {
			if t.Kind == ast.Constant {
				return argRef{isConst: true, constID: ev.out.Syms.Intern(t.Name)}
			}
			return argRef{slot: slotOf(t.Name)}
		}
		// Positive literals first (they bind the variables), negated
		// literals moved to the end (safety guarantees their variables are
		// bound by then); relative order within each group is preserved.
		var negatedLits []literalPlan
		for _, b := range r.Body {
			lp := literalPlan{key: b.Key(), occ: -1, negated: b.Negated}
			lp.derived = ev.derived[b.Key()]
			if !lp.derived && !ev.out.Has(b.Key()) {
				lp.builtin = builtinFor(b.Pred, b.Arity())
			}
			if b.Negated && lp.builtin != notBuiltin {
				return fmt.Errorf("rule %d: negated builtin %s", i+1, b)
			}
			for _, t := range b.Args {
				lp.args = append(lp.args, refFor(t))
			}
			if b.Negated {
				negatedLits = append(negatedLits, lp)
				continue
			}
			if lp.builtin == notBuiltin {
				lp.occ = plan.nDeltas
				plan.nDeltas++
			}
			plan.body = append(plan.body, lp)
		}
		plan.body = append(plan.body, negatedLits...)
		// Head: variables must already have slots (range restriction),
		// except anonymous head variables, which evaluate to the reserved
		// constant.
		for _, t := range r.Head.Args {
			if t.Kind == ast.Variable {
				if _, ok := slots[t.Name]; !ok {
					if !t.IsAnon() {
						return fmt.Errorf("rule %d: unbound head variable %s", i+1, t.Name)
					}
					plan.head = append(plan.head, argRef{isConst: true, constID: AnonID})
					continue
				}
			}
			plan.head = append(plan.head, refFor(t))
		}
		plan.slots = len(slots)
		ev.plans = append(ev.plans, plan)
	}
	ev.active = make([]bool, len(ev.plans))
	for i := range ev.active {
		ev.active[i] = true
	}
	// Stratify for negation-as-failure; positive programs land in one
	// stratum.
	strata, err := Stratify(p)
	if err != nil {
		return err
	}
	for _, plan := range ev.plans {
		plan.stratum = strata[plan.headKey]
		if plan.stratum > ev.maxStrat {
			ev.maxStrat = plan.stratum
		}
	}
	return nil
}

// relationFor resolves the relation a literal reads during a given rule
// version: deltaOcc selects which derived occurrence reads the delta
// (-1 for none, i.e. naive or startup passes).
func (ev *evaluator) relationFor(lp *literalPlan, deltaOcc int) *Relation {
	if lp.occ >= 0 && lp.occ == deltaOcc {
		if d, ok := ev.deltas[lp.key]; ok {
			return d
		}
	}
	r, ok := ev.out.Lookup(lp.key)
	if !ok {
		// Base predicate with no facts: empty relation of the right arity.
		return ev.out.Relation(lp.key, len(lp.args))
	}
	return r
}

// joinOrder computes (and caches) the literal evaluation order for a rule
// version: the delta literal first, then greedily the literal with the
// most bound arguments among those whose builtin binding requirements are
// satisfiable, preferring base relations and the textual order on ties.
func (ev *evaluator) joinOrder(plan *rulePlan, deltaOcc int) []int {
	if !ev.opt.ReorderJoins {
		return nil
	}
	if plan.orders == nil {
		plan.orders = make(map[int][]int)
	}
	if ord, ok := plan.orders[deltaOcc]; ok {
		return ord
	}
	boundSlot := make([]bool, plan.slots)
	used := make([]bool, len(plan.body))
	order := make([]int, 0, len(plan.body))
	take := func(li int) {
		used[li] = true
		order = append(order, li)
		for _, a := range plan.body[li].args {
			if !a.isConst {
				boundSlot[a.slot] = true
			}
		}
	}
	// Semi-naive versions start from the delta literal.
	if deltaOcc >= 0 {
		for li, lp := range plan.body {
			if lp.derived && lp.occ == deltaOcc {
				take(li)
				break
			}
		}
	}
	ready := func(lp *literalPlan) bool {
		if lp.negated {
			return false // negated literals run last (fallback order)
		}
		boundOf := func(i int) bool {
			a := lp.args[i]
			return a.isConst || boundSlot[a.slot]
		}
		switch lp.builtin {
		case builtinSucc:
			return boundOf(0) || boundOf(1)
		case builtinLt, builtinNeq:
			return boundOf(0) && boundOf(1)
		}
		return true
	}
	relSize := func(lp *literalPlan) int {
		if lp.builtin != notBuiltin {
			return 1
		}
		if rel, ok := ev.out.Lookup(lp.key); ok {
			return rel.Len()
		}
		return 0
	}
	for len(order) < len(plan.body) {
		best, bestBound, bestSize := -1, -1, 0
		for li := range plan.body {
			if used[li] {
				continue
			}
			lp := &plan.body[li]
			if !ready(lp) {
				continue
			}
			boundArgs := 0
			for _, a := range lp.args {
				if a.isConst || boundSlot[a.slot] {
					boundArgs++
				}
			}
			size := relSize(lp)
			// More bound arguments first; among ties, the smaller relation
			// (selectivity proxy, measured at first evaluation); then the
			// textual order.
			if boundArgs > bestBound || (boundArgs == bestBound && size < bestSize) {
				best, bestBound, bestSize = li, boundArgs, size
			}
		}
		if best < 0 {
			// Only unready builtins remain: fall back to textual order
			// (the runtime will report the binding error if it is real).
			for li := range plan.body {
				if !used[li] {
					take(li)
				}
			}
			break
		}
		take(best)
	}
	plan.orders[deltaOcc] = order
	return order
}

// evalRule joins the body of plan (with the deltaOcc-th derived occurrence
// reading the delta) and feeds the head tuples to emit.
func (ev *evaluator) evalRule(plan *rulePlan, deltaOcc int, emit func(Tuple, []FactRef) error) error {
	if cap(ev.slotVals) < plan.slots {
		ev.slotVals = make([]int32, plan.slots)
		ev.slotBound = make([]bool, plan.slots)
	}
	vals := ev.slotVals[:plan.slots]
	bound := ev.slotBound[:plan.slots]
	for i := range bound {
		bound[i] = false
	}
	if ev.opt.TrackProvenance {
		if cap(ev.bodyFacts) < len(plan.body) {
			ev.bodyFacts = make([]FactRef, len(plan.body))
		}
	}
	// Per-depth scratch for the bound-column probe and the newly bound
	// slots, reused across all tuples of a literal.
	for len(ev.colsBuf) < len(plan.body) {
		ev.colsBuf = append(ev.colsBuf, make([]int, 0, 8))
		ev.valsBuf = append(ev.valsBuf, make(Tuple, 0, 8))
		ev.newlyBuf = append(ev.newlyBuf, make([]int, 0, 8))
	}
	order := ev.joinOrder(plan, deltaOcc)
	var rec func(step int) error
	rec = func(step int) error {
		li := step
		if order != nil && step < len(order) {
			li = order[step]
		}
		if step == len(plan.body) {
			head := make(Tuple, len(plan.head))
			for i, a := range plan.head {
				if a.isConst {
					head[i] = a.constID
				} else {
					head[i] = vals[a.slot]
				}
			}
			var just []FactRef
			if ev.opt.TrackProvenance {
				just = append(just, ev.bodyFacts[:len(plan.body)]...)
			}
			return emit(head, just)
		}
		lp := &plan.body[li]
		if lp.builtin != notBuiltin {
			return ev.evalBuiltin(plan, lp, step, vals, bound, rec)
		}
		rel := ev.relationFor(lp, deltaOcc)
		cols := ev.colsBuf[step][:0]
		cvals := ev.valsBuf[step][:0]
		for i, a := range lp.args {
			if a.isConst {
				cols = append(cols, i)
				cvals = append(cvals, a.constID)
			} else if bound[a.slot] {
				cols = append(cols, i)
				cvals = append(cvals, vals[a.slot])
			}
		}
		ev.colsBuf[step], ev.valsBuf[step] = cols, cvals
		if lp.negated {
			// Negation as failure against the finished lower-stratum
			// relation. Safety has bound every named variable; remaining
			// unbound positions are anonymous wildcards.
			ev.stats.JoinProbes++
			if len(rel.Match(cols, cvals)) == 0 {
				if ev.opt.TrackProvenance {
					ev.bodyFacts[li] = FactRef{}
				}
				return rec(step + 1)
			}
			return nil
		}
		ev.stats.JoinProbes++
		for _, ti := range rel.Match(cols, cvals) {
			t := rel.Tuple(ti)
			newly := ev.newlyBuf[step][:0]
			ok := true
			for i, a := range lp.args {
				if a.isConst {
					continue
				}
				if bound[a.slot] {
					if vals[a.slot] != t[i] {
						ok = false
						break
					}
				} else {
					vals[a.slot] = t[i]
					bound[a.slot] = true
					newly = append(newly, a.slot)
				}
			}
			ev.newlyBuf[step] = newly
			if ok {
				if ev.opt.TrackProvenance {
					ev.bodyFacts[li] = FactRef{Key: lp.key, Row: t}
				}
				if err := rec(step + 1); err != nil {
					return err
				}
			}
			for _, s := range newly {
				bound[s] = false
			}
		}
		return nil
	}
	return rec(0)
}

func (ev *evaluator) evalBuiltin(plan *rulePlan, lp *literalPlan, step int, vals []int32, bound []bool, rec func(int) error) error {
	get := func(a argRef) (int32, bool) {
		if a.isConst {
			return a.constID, true
		}
		if bound[a.slot] {
			return vals[a.slot], true
		}
		return 0, false
	}
	num := func(id int32) (int, bool) {
		n, err := strconv.Atoi(ev.out.Syms.Name(id))
		return n, err == nil
	}
	x, xok := get(lp.args[0])
	y, yok := get(lp.args[1])
	switch lp.builtin {
	case builtinSucc:
		// succ(I,J) over the naturals: J = I+1. Either side may be bound;
		// the counting rewrite uses both directions (climbing binds I,
		// descending binds J).
		switch {
		case xok:
			n, ok := num(x)
			if !ok {
				return nil // non-numeric constant: no successor
			}
			ny := ev.out.Syms.Intern(strconv.Itoa(n + 1))
			if yok {
				if y == ny {
					return rec(step + 1)
				}
				return nil
			}
			a := lp.args[1]
			vals[a.slot], bound[a.slot] = ny, true
			err := rec(step + 1)
			bound[a.slot] = false
			return err
		case yok:
			n, ok := num(y)
			if !ok || n < 1 {
				return nil
			}
			nx := ev.out.Syms.Intern(strconv.Itoa(n - 1))
			a := lp.args[0]
			vals[a.slot], bound[a.slot] = nx, true
			err := rec(step + 1)
			bound[a.slot] = false
			return err
		default:
			return fmt.Errorf("rule %d: succ/2 requires at least one argument bound", plan.idx+1)
		}
	case builtinLt:
		if !xok || !yok {
			return fmt.Errorf("rule %d: lt/2 requires both arguments bound", plan.idx+1)
		}
		nx, ok1 := num(x)
		ny, ok2 := num(y)
		if ok1 && ok2 && nx < ny {
			return rec(step + 1)
		}
		return nil
	case builtinNeq:
		if !xok || !yok {
			return fmt.Errorf("rule %d: neq/2 requires both arguments bound", plan.idx+1)
		}
		if x != y {
			return rec(step + 1)
		}
		return nil
	}
	return fmt.Errorf("rule %d: unknown builtin", plan.idx+1)
}

// insertDerived adds a head tuple to the full relation (and the "next"
// delta for semi-naive), maintaining counters, limits, and provenance.
func (ev *evaluator) insertDerived(plan *rulePlan, head Tuple, just []FactRef, collectNext bool) error {
	ev.stats.Derivations++
	rel := ev.out.Relation(plan.headKey, len(head))
	if !rel.Insert(head) {
		ev.stats.DuplicateHits++
		return nil
	}
	ev.stats.FactsDerived++
	if collectNext {
		nx, ok := ev.next[plan.headKey]
		if !ok {
			nx = NewRelation(len(head))
			ev.next[plan.headKey] = nx
		}
		nx.Insert(head)
	}
	if ev.opt.TrackProvenance {
		m, ok := ev.prov[plan.headKey]
		if !ok {
			m = make(map[string]Justification)
			ev.prov[plan.headKey] = m
		}
		kept := just[:0]
		for _, f := range just {
			if f.Key != "" {
				kept = append(kept, f)
			}
		}
		m[tupleKey(head)] = Justification{Rule: plan.idx, Body: kept}
	}
	if ev.opt.MaxFacts > 0 && ev.stats.FactsDerived > ev.opt.MaxFacts {
		return ErrFactLimit
	}
	return nil
}

func (ev *evaluator) runNaive() error {
	for level := 0; level <= ev.maxStrat; level++ {
		if err := ev.runNaiveStratum(level); err != nil {
			return err
		}
	}
	return nil
}

func (ev *evaluator) runNaiveStratum(level int) error {
	for {
		ev.stats.Iterations++
		if ev.stats.Iterations > ev.opt.MaxIterations {
			return ErrIterationLimit
		}
		before := ev.stats.FactsDerived
		for pi, plan := range ev.plans {
			if !ev.active[pi] || plan.stratum != level {
				continue
			}
			err := ev.evalRule(plan, -1, func(t Tuple, just []FactRef) error {
				return ev.insertDerived(plan, t, just, false)
			})
			if err != nil {
				return err
			}
		}
		ev.applyCut()
		if ev.stats.FactsDerived == before {
			return nil
		}
	}
}

func (ev *evaluator) runSemiNaive() error {
	for level := 0; level <= ev.maxStrat; level++ {
		if err := ev.runSemiNaiveStratum(level); err != nil {
			return err
		}
	}
	return nil
}

func (ev *evaluator) runSemiNaiveStratum(level int) error {
	// Startup pass: evaluate this stratum's rules against the full
	// relations (which contain lower strata and any derived-predicate
	// seeds); everything currently in this stratum's relations becomes the
	// first delta.
	ev.stats.Iterations++
	stratumKeys := map[string]bool{}
	for pi, plan := range ev.plans {
		if plan.stratum != level {
			continue
		}
		stratumKeys[plan.headKey] = true
		if !ev.active[pi] {
			continue
		}
		err := ev.evalRule(plan, -1, func(t Tuple, just []FactRef) error {
			return ev.insertDerived(plan, t, just, false)
		})
		if err != nil {
			return err
		}
	}
	ev.deltas = make(map[string]*Relation)
	for key := range stratumKeys {
		if rel, ok := ev.out.Lookup(key); ok && rel.Len() > 0 {
			ev.deltas[key] = rel.Clone()
		}
	}
	ev.applyCut()

	for len(ev.deltas) > 0 {
		ev.stats.Iterations++
		if ev.stats.Iterations > ev.opt.MaxIterations {
			return ErrIterationLimit
		}
		ev.next = make(map[string]*Relation)
		for pi, plan := range ev.plans {
			if !ev.active[pi] || plan.stratum != level || plan.nDeltas == 0 {
				continue
			}
			for occ := 0; occ < plan.nDeltas; occ++ {
				// Skip versions whose delta occurrence has an empty delta.
				target := ""
				for _, lp := range plan.body {
					if lp.occ == occ {
						target = lp.key
						break
					}
				}
				if _, ok := ev.deltas[target]; !ok {
					continue
				}
				err := ev.evalRule(plan, occ, func(t Tuple, just []FactRef) error {
					return ev.insertDerived(plan, t, just, true)
				})
				if err != nil {
					return err
				}
			}
		}
		ev.deltas = ev.next
		ev.applyCut()
	}
	return nil
}

// applyCut retires boolean rules whose head already holds and cascades to
// rules that now feed nothing (Section 3.1).
func (ev *evaluator) applyCut() {
	if !ev.opt.BooleanCut {
		return
	}
	changed := false
	for pi, plan := range ev.plans {
		if ev.active[pi] && plan.boolHead && ev.out.Count(plan.headKey) > 0 {
			ev.active[pi] = false
			ev.stats.RulesRetired++
			changed = true
		}
	}
	if !changed {
		return
	}
	// Cascade: a predicate is needed only if it is reachable from the
	// query through the bodies of still-active rules (a recursive rule
	// must not keep its own head alive). Rules whose head is no longer
	// needed retire, which can unneed further predicates.
	for {
		needed := map[string]bool{ev.queryKey: true}
		for grew := true; grew; {
			grew = false
			for pi, plan := range ev.plans {
				if !ev.active[pi] || !needed[plan.headKey] {
					continue
				}
				for _, lp := range plan.body {
					if !needed[lp.key] {
						needed[lp.key] = true
						grew = true
					}
				}
			}
		}
		retired := false
		for pi, plan := range ev.plans {
			if ev.active[pi] && !needed[plan.headKey] {
				ev.active[pi] = false
				ev.stats.RulesRetired++
				retired = true
			}
		}
		if !retired {
			return
		}
	}
}

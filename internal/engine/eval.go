package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"existdlog/internal/ast"
	"existdlog/internal/failpoint"
	"existdlog/internal/ierr"
	"existdlog/internal/trace"
)

// Strategy selects the fixpoint evaluation algorithm.
type Strategy int

const (
	// SemiNaive is differential evaluation: each iteration joins the
	// previous iteration's new facts (the delta) against the full
	// relations, one rule version per derived body occurrence. Rule
	// versions read the relation state frozen at the start of the pass and
	// their derivations are merged at the end of the pass, in rule order.
	SemiNaive Strategy = iota
	// Naive re-evaluates every rule against the full relations each
	// iteration. Kept for cross-checking the semi-naive implementation.
	Naive
	// Parallel is SemiNaive with the rule versions of each pass fanned out
	// over a worker pool. Workers join against the pass's frozen relation
	// state and emit into private buffers; the buffers are merged at the
	// pass barrier in a fixed (rule, occurrence, emission) order, so
	// answers, relation insertion order, and Stats are identical to
	// SemiNaive on every input — only wall-clock time differs.
	Parallel
)

// Options configures an evaluation.
type Options struct {
	Strategy Strategy
	// BooleanCut enables the runtime optimization of Section 3.1: a rule
	// defining a boolean (arity-0) predicate is removed from the fixpoint
	// once the predicate holds, and rules that fed only retired rules are
	// retired in cascade ("if q4 does not appear anywhere else in the
	// program, the rule defining it can also be discarded after B2 is
	// shown true"). With the cut enabled, non-query derived relations may
	// legitimately be under-computed; query answers are unaffected. Cut
	// decisions are taken only at pass barriers, never mid-pass, so they
	// are identical under sequential and parallel evaluation.
	BooleanCut bool
	// MaxIterations bounds the fixpoint (default 1<<20).
	MaxIterations int
	// MaxFacts bounds the number of derived facts (0 = unlimited); the
	// guard matters for programs using the arithmetic builtins. The limit
	// is exact: the insert that would exceed it is rejected, so
	// Stats.FactsDerived never overshoots MaxFacts.
	MaxFacts int
	// TrackProvenance records one justification per derived fact so that
	// derivation trees (Section 1.1 of the paper) can be reconstructed.
	TrackProvenance bool
	// ReorderJoins evaluates each rule's body in a greedy bound-first
	// order (starting from the delta literal in semi-naive versions)
	// instead of the textual order. The order is replanned at every pass
	// barrier from the live relation and delta cardinalities, bound slots
	// are propagated through the chosen prefix to precompute each probe's
	// bound-column index signature, and versions whose body provably joins
	// empty (a positive relation or delta with zero live tuples) are
	// skipped before the fan-out. Answers are unaffected; join probe
	// counts usually drop on badly ordered rules.
	ReorderJoins bool
	// Workers caps the goroutine pool used by the Parallel strategy
	// (0 means runtime.GOMAXPROCS(0)). Other strategies ignore it, and
	// results never depend on it.
	Workers int
	// Trace collects per-rule and per-pass evaluation metrics into
	// Result.Trace: firings, emitted tuples, duplicates, join probes,
	// delta sizes, and boolean-cut events. Mid-pass counters accumulate in
	// lock-free per-worker shards merged only at pass barriers, so the
	// metrics are deterministic and Parallel reproduces SemiNaive's
	// exactly. Disabled (the default), the evaluation hot path performs no
	// extra allocations — only nil checks.
	Trace bool
	// PassTimes additionally records, in Result.PassTimes, the wall-clock
	// offset (from evaluation start, real monotonic clock) at which each
	// pass barrier completed — one entry per pass, aligned with
	// Trace.Passes when Trace is also set. Request tracing uses this to
	// graft per-pass spans into a request's span tree. Off (the default),
	// the pass barrier performs no clock reads.
	PassTimes bool
}

// ErrFactLimit is returned when MaxFacts is exceeded.
var ErrFactLimit = errors.New("engine: derived fact limit exceeded")

// ErrIterationLimit is returned when MaxIterations is exceeded.
var ErrIterationLimit = errors.New("engine: iteration limit exceeded")

// ErrCanceled is returned (wrapped around the context cause) when the
// evaluation context is canceled mid-fixpoint.
var ErrCanceled = errors.New("engine: evaluation canceled")

// ErrDeadline is returned (wrapped around the context cause) when the
// evaluation context's deadline expires mid-fixpoint.
var ErrDeadline = errors.New("engine: evaluation deadline exceeded")

// Failpoint names compiled into the engine (active only under the
// failpoint build tag; see internal/failpoint). The catalog is documented
// in DESIGN.md §7.
const (
	// FPPass fires at every pass barrier, before the pass fans out.
	FPPass = "engine/pass"
	// FPMerge fires at the merge barrier, before buffered emissions land.
	FPMerge = "engine/merge"
	// FPInsert fires on every derived-fact insert during a merge.
	FPInsert = "engine/insert"
	// FPSpawn fires before each parallel worker goroutine is spawned.
	FPSpawn = "engine/spawn"
	// FPWorker fires inside rule-version evaluation, on the worker
	// goroutine under the Parallel strategy — the place to inject worker
	// panics and mid-pass delays.
	FPWorker = "engine/worker"
)

// ctxCheckInterval is how many units of mid-pass work (join probes and
// merge inserts) may elapse between cancellation checks. Small enough that
// aborts land well within the documented 100ms bound on real workloads,
// large enough that the per-probe cost is one predictable branch.
const ctxCheckInterval = 1024

// Stats are the evaluation counters reported by the benchmarks. The paper
// argues arity reduction cuts both the facts produced and the duplicate
// elimination cost, so both are counted explicitly. The counters are
// deterministic for every strategy, and Parallel reproduces SemiNaive's
// counters exactly.
type Stats struct {
	Iterations    int   // fixpoint passes
	FactsDerived  int   // distinct new facts added to derived relations
	Derivations   int64 // head tuples produced, including duplicates
	DuplicateHits int64 // derivations rejected by duplicate elimination
	JoinProbes    int64 // index probes performed during joins
	RulesRetired  int   // rules removed at runtime by the boolean cut
}

// FactRef identifies a fact for provenance.
type FactRef struct {
	Key string
	Row Tuple
}

// Justification records how a fact was first derived: the rule index in the
// evaluated program and the body facts used.
type Justification struct {
	Rule int
	Body []FactRef
}

// Result is the outcome of an evaluation.
type Result struct {
	// DB extends the input EDB with the derived relations. The input
	// database is never mutated.
	DB    *Database
	Stats Stats
	// Partial reports that the evaluation stopped before reaching the
	// fixpoint — canceled, past a deadline, over a limit, or aborted by an
	// injected fault. Every fact in DB is still soundly derived (the
	// partial database is a subset of the full fixpoint for cut-free runs),
	// and Stats exactly describe DB, but answers may be missing.
	Partial bool
	// Incomplete names why a Partial result stopped early: "canceled",
	// "deadline exceeded", "fact limit exceeded", "iteration limit
	// exceeded", or the abort error's message.
	Incomplete string
	// Trace holds the per-rule/per-pass metrics of a run with
	// Options.Trace set (nil otherwise). On partial runs the per-rule
	// counters still partition Stats exactly.
	Trace *trace.Metrics
	// PassTimes, under Options.PassTimes, holds the wall-clock offset
	// from evaluation start at which each pass barrier completed
	// (monotonically increasing; pass i ran in the interval
	// [PassTimes[i-1], PassTimes[i]], with PassTimes[-1] taken as 0).
	PassTimes []time.Duration
	prov      map[string]*provSet
}

// builtinKind enumerates the arithmetic/comparison builtins available to
// rewritten programs (the counting rewrite needs succ). A predicate name is
// treated as a builtin only if it is neither derived nor present in the
// EDB.
type builtinKind int

const (
	notBuiltin  builtinKind = iota
	builtinSucc             // succ(X,Y): Y = X+1, X must be bound
	builtinLt               // lt(X,Y): numeric <, both bound
	builtinNeq              // neq(X,Y): distinct constants, both bound
)

type argRef struct {
	isConst bool
	constID int32
	slot    int
}

type literalPlan struct {
	key     string
	args    []argRef
	derived bool
	negated bool
	builtin builtinKind
	// occ is this literal's index among the rule's positive derived
	// occurrences (negated literals always read the finished relation of a
	// lower stratum, never a delta).
	occ int
}

type rulePlan struct {
	idx     int // index in the program's rule list
	headKey string
	head    []argRef
	body    []literalPlan
	// nDeltas counts the body literals that can act as the delta in a
	// semi-naive version: positive derived literals always, and positive
	// base literals for incremental updates (their deltas are only
	// populated by Update, so ordinary runs skip those versions).
	nDeltas  int
	slots    int
	boolHead bool
	stratum  int
	// vplans caches the greedy join plan per delta occurrence (-1 for
	// the naive/startup version) for one pass epoch; planEpoch records
	// which. The evaluator bumps its epoch at every pass barrier, so
	// stale entries are recomputed from live cardinalities, and the cache
	// is filled before a pass fans out, so workers only read it.
	vplans    map[int]*versionPlan
	planEpoch uint64
}

// versionPlan is one rule version's join plan for one pass epoch,
// computed at the pass barrier from live relation and delta sizes.
type versionPlan struct {
	// order[k] is the body literal evaluated at step k.
	order []int
	// boundCols[k] lists the argument positions of order[k] that are
	// bound (a constant, or a slot bound by an earlier step) when the
	// literal is probed — the bound-column index signature its Match
	// calls will use.
	boundCols [][]int
	// sizes[k] is the live cardinality the planner saw for order[k]: the
	// delta size for the delta literal, the full relation size otherwise,
	// 1 for builtins.
	sizes []int
	// empty marks a version that provably derives nothing this pass:
	// some positive non-builtin literal reads a relation (or delta) with
	// zero live tuples. Negated literals never count — negation over an
	// empty relation succeeds.
	empty bool
}

// version identifies one semi-naive rule version: a rule plan and the body
// occurrence reading the delta (-1 for naive/startup versions). A pass is a
// list of versions; the list order is the merge order.
type version struct {
	pi  int
	occ int
}

// emitBuf buffers one rule version's head derivations awaiting the merge
// barrier, as one flat head-width-strided []int32 (head i occupies
// heads[i*w:(i+1)*w]) — a version emitting thousands of heads costs a few
// amortized slice growths, not an allocation per derivation. n counts
// emissions explicitly because zero-arity heads contribute no int32s.
// justs is populated (parallel to emissions) only under TrackProvenance.
type emitBuf struct {
	heads []int32
	w     int
	n     int
	justs [][]FactRef
}

type evaluator struct {
	opt Options
	// ctx bounds the evaluation; done caches ctx.Done() and is nil for
	// non-cancelable contexts, reducing every cancellation check to one
	// nil comparison on the hot path.
	ctx     context.Context
	done    <-chan struct{}
	out     *Database
	plans   []*rulePlan
	active  []bool
	derived map[string]bool
	arity   map[string]int
	deltas  map[string]*Relation
	next    map[string]*Relation
	stats   Stats
	prov    map[string]*provSet
	// run is the runner used by the sequential evaluation paths (naive
	// passes, Update, Retract); parallel passes build one runner per
	// worker instead.
	run       runner
	baseFacts int
	queryKey  string
	maxStrat  int
	// planEpoch distinguishes pass barriers for the join planner: it is
	// bumped at the start of every pass, invalidating each rulePlan's
	// cached versionPlans so orders are recomputed from live sizes.
	planEpoch uint64
	// passOrders accumulates the planner's per-version order records for
	// the pass being traced; tracedPass (and updatePass) attach them to
	// the pass record and reset the slice.
	passOrders []trace.VersionOrder
	// tc collects the per-rule/per-pass metrics of Options.Trace; nil when
	// tracing is disabled, which reduces every instrumentation site to one
	// nil comparison.
	tc *trace.Collector
	// passClock anchors Options.PassTimes offsets; zero when disabled,
	// reducing every barrier to one IsZero check. passTimes accumulates
	// the per-barrier completion offsets.
	passClock time.Time
	passTimes []time.Duration
}

// runner is the per-goroutine evaluation state: the join recursion's
// scratch buffers plus the counters it bumps. Sequential paths share the
// evaluator's embedded runner; a Parallel pass gives every worker a private
// one so rule versions can evaluate concurrently against the frozen
// relations without sharing any mutable state.
type runner struct {
	ev        *evaluator
	stats     *Stats
	slotVals  []int32
	slotBound []bool
	bodyFacts []FactRef
	colsBuf   [][]int
	valsBuf   []Tuple
	newlyBuf  [][]int
	// headBuf is the emission-site scratch tuple: every emit callback
	// either copies it (arena insert, buffered append) or reads it before
	// returning, so one buffer serves every emission of a rule version.
	headBuf Tuple
	// shard holds this goroutine's per-rule trace counters (firings, join
	// probes); nil when tracing is disabled. It is drained into the
	// collector only at pass barriers, on the coordinating goroutine.
	shard *trace.Shard
	// budget counts down mid-pass work units to the next cancellation
	// check (see ctxCheckInterval).
	budget int
}

// tick is the mid-pass cancellation point: called once per join probe and
// per merge insert, it checks the context every ctxCheckInterval units so
// an abort lands with bounded latency even inside one enormous pass.
func (r *runner) tick() error {
	if r.ev.done == nil {
		return nil
	}
	r.budget--
	if r.budget > 0 {
		return nil
	}
	r.budget = ctxCheckInterval
	return r.ev.checkCtx()
}

// checkCtx is the pass-barrier cancellation point. It returns nil while
// the context is live and ErrCanceled/ErrDeadline wrapped around the
// context cause once it is not.
func (ev *evaluator) checkCtx() error {
	if ev.done == nil {
		return nil
	}
	select {
	case <-ev.done:
		return ev.ctxErr()
	default:
		return nil
	}
}

func (ev *evaluator) ctxErr() error {
	err := ev.ctx.Err()
	if err == nil {
		return nil
	}
	sentinel := ErrCanceled
	if errors.Is(err, context.DeadlineExceeded) {
		sentinel = ErrDeadline
	}
	if cause := context.Cause(ev.ctx); cause != nil {
		return fmt.Errorf("%w: %w", sentinel, cause)
	}
	return fmt.Errorf("%w: %w", sentinel, err)
}

// incompleteReason renders an abort error as Result.Incomplete.
func incompleteReason(err error) string {
	switch {
	case errors.Is(err, ErrCanceled):
		return "canceled"
	case errors.Is(err, ErrDeadline):
		return "deadline exceeded"
	case errors.Is(err, ErrFactLimit):
		return "fact limit exceeded"
	case errors.Is(err, ErrIterationLimit):
		return "iteration limit exceeded"
	}
	return err.Error()
}

// finish packages the evaluator's state as a Result. Runtime aborts return
// the partial database — everything soundly derived up to the abort, with
// Stats exactly describing it — alongside the error, so callers can use
// the prefix (graceful degradation) or discard it.
func (ev *evaluator) finish(evalErr error) (*Result, error) {
	res := &Result{DB: ev.out, Stats: ev.stats, prov: ev.prov, PassTimes: ev.passTimes}
	if ev.tc != nil {
		// Final drain of the sequential runner's shard (Update/Retract
		// loops and naive tails that did not end on a traced barrier).
		ev.tc.Merge(ev.run.shard)
		res.Trace = ev.tc.Metrics()
	}
	if evalErr != nil {
		res.Partial = true
		res.Incomplete = incompleteReason(evalErr)
	}
	return res, evalErr
}

// initTrace arms metrics collection when Options.Trace is set: one
// collector for the run plus the sequential runner's counter shard.
// Everything tracing allocates happens here and at pass barriers; with
// Trace off ev.tc stays nil and every instrumentation site is a single
// nil comparison.
func (ev *evaluator) initTrace(p *ast.Program) {
	if !ev.opt.Trace {
		return
	}
	texts := make([]string, len(p.Rules))
	for i := range p.Rules {
		texts[i] = p.Rules[i].String()
	}
	ev.tc = trace.NewCollector(texts)
	ev.run.shard = ev.tc.NewShard()
}

// deltaSizes snapshots the current delta relation sizes, sorted by
// predicate, for a pass record.
func (ev *evaluator) deltaSizes() []trace.DeltaSize {
	if len(ev.deltas) == 0 {
		return nil
	}
	keys := make([]string, 0, len(ev.deltas))
	for k := range ev.deltas {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]trace.DeltaSize, len(keys))
	for i, k := range keys {
		out[i] = trace.DeltaSize{Predicate: k, Size: ev.deltas[k].Len()}
	}
	return out
}

// tracedPass is runPass plus the pass-barrier metrics work: the delta
// snapshot is taken before the fan-out, the pass record lands after the
// merge (aborted passes included, with whatever they added before the
// abort), and the sequential runner's shard is drained — the
// merge-at-barrier invariant that keeps Parallel metrics bit-identical to
// SemiNaive's.
func (ev *evaluator) tracedPass(vs []version, collectNext bool, stratum int) error {
	if ev.tc == nil {
		err := ev.runPass(vs, collectNext)
		ev.markPass()
		return err
	}
	deltas := ev.deltaSizes()
	before := ev.stats.FactsDerived
	err := ev.runPass(vs, collectNext)
	ev.tc.Merge(ev.run.shard)
	ev.tc.Pass(trace.PassStats{
		Pass: ev.stats.Iterations, Stratum: stratum, Versions: len(vs),
		Facts: ev.stats.FactsDerived - before, Deltas: deltas,
		Orders: ev.takeOrders(),
	})
	ev.markPass()
	return err
}

// recordOrder converts one version's join plan into the trace record
// attached to the enclosing pass: the literals in chosen order, the live
// cardinalities that justified the choice, and each step's bound-argument
// count. No-op unless tracing is on.
func (ev *evaluator) recordOrder(plan *rulePlan, occ int, vp *versionPlan) {
	if ev.tc == nil || vp == nil {
		return
	}
	vo := trace.VersionOrder{
		Rule: plan.idx, Occ: occ, Skipped: vp.empty,
		Literals: make([]string, len(vp.order)),
		Sizes:    append([]int(nil), vp.sizes...),
		Bound:    make([]int, len(vp.order)),
	}
	for k, li := range vp.order {
		lp := &plan.body[li]
		name := lp.key
		switch {
		case lp.negated:
			name = "not " + name
		case lp.builtin == notBuiltin && lp.occ >= 0 && lp.occ == occ:
			name = "~" + name // the delta occurrence
		}
		vo.Literals[k] = name
		vo.Bound[k] = len(vp.boundCols[k])
	}
	ev.passOrders = append(ev.passOrders, vo)
}

// takeOrders hands the accumulated order records to the pass being
// closed and resets the accumulator.
func (ev *evaluator) takeOrders() []trace.VersionOrder {
	o := ev.passOrders
	ev.passOrders = nil
	return o
}

// markPass records the wall-clock offset of a completed pass barrier
// under Options.PassTimes (one IsZero branch when disabled).
func (ev *evaluator) markPass() {
	if ev.passClock.IsZero() {
		return
	}
	ev.passTimes = append(ev.passTimes, time.Since(ev.passClock))
}

// Eval evaluates program p bottom-up over the extensional database edb and
// returns the derived database and statistics. The input database is not
// mutated. Facts present in edb for derived predicates are honored as
// seeds, which is what the uniform-equivalence tests of Sections 3.3-5
// require ("Input = an instance of the DB", IDB predicates included).
// Eval cannot be interrupted; use EvalContext to bound a query.
func Eval(p *ast.Program, edb *Database, opt Options) (*Result, error) {
	return EvalContext(context.Background(), p, edb, opt)
}

// EvalContext is Eval under a context: cancellation and deadline are
// checked at every pass barrier and every ctxCheckInterval units of
// mid-pass work, so an aborted query returns within a bounded latency with
// ErrCanceled or ErrDeadline (wrapped around the context cause) and a
// partial Result — the soundly derived prefix of the fixpoint, with
// Result.Partial set and Stats exactly describing the partial database.
// Limit aborts (ErrFactLimit, ErrIterationLimit) return partial results
// the same way. Internal panics are recovered into a *ierr.InternalError
// instead of crossing the API boundary.
func EvalContext(ctx context.Context, p *ast.Program, edb *Database, opt Options) (res *Result, err error) {
	defer ierr.Rescue(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 1 << 20
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := &evaluator{
		opt:      opt,
		ctx:      ctx,
		done:     ctx.Done(),
		out:      edb.Clone(),
		derived:  p.Derived,
		arity:    make(map[string]int),
		deltas:   make(map[string]*Relation),
		next:     make(map[string]*Relation),
		queryKey: p.Query.Key(),
	}
	ev.run = runner{ev: ev, stats: &ev.stats}
	ev.baseFacts = ev.out.TotalFacts()
	if opt.PassTimes {
		ev.passClock = time.Now()
	}
	if opt.TrackProvenance {
		ev.prov = make(map[string]*provSet)
	}
	ev.initTrace(p)
	if err := ev.compile(p); err != nil {
		return nil, err
	}
	var evalErr error
	if opt.Strategy == Naive {
		evalErr = ev.runNaive()
	} else {
		evalErr = ev.runSemiNaive()
	}
	return ev.finish(evalErr)
}

func builtinFor(name string, arity int) builtinKind {
	switch {
	case name == "succ" && arity == 2:
		return builtinSucc
	case name == "lt" && arity == 2:
		return builtinLt
	case name == "neq" && arity == 2:
		return builtinNeq
	}
	return notBuiltin
}

func (ev *evaluator) compile(p *ast.Program) error {
	// Record arities of every predicate and materialize derived relations
	// so that empty derived predicates exist in the output. Conflicts —
	// between two uses in the program, or between a use and the database —
	// are rejected here with the typed arity error rather than discovered
	// as a panic mid-evaluation.
	note := func(a ast.Atom) error {
		if n, ok := ev.arity[a.Key()]; ok {
			if n != a.Arity() {
				return fmt.Errorf("atom %s: %w", a, &ArityMismatchError{Key: a.Key(), Want: a.Arity(), Have: n})
			}
			return nil
		}
		if err := ev.out.CheckArity(a.Key(), a.Arity()); err != nil {
			return fmt.Errorf("atom %s: %w", a, err)
		}
		ev.arity[a.Key()] = a.Arity()
		return nil
	}
	for _, r := range p.Rules {
		if err := note(r.Head); err != nil {
			return err
		}
		for _, b := range r.Body {
			if err := note(b); err != nil {
				return err
			}
		}
	}
	if p.Query.Pred != "" {
		if err := note(p.Query); err != nil {
			return err
		}
	}
	for key := range ev.derived {
		if n, ok := ev.arity[key]; ok {
			ev.out.Relation(key, n)
		}
	}

	for i, r := range p.Rules {
		plan := &rulePlan{idx: i, headKey: r.Head.Key(), boolHead: r.Head.Arity() == 0}
		slots := make(map[string]int)
		slotOf := func(name string) int {
			if s, ok := slots[name]; ok {
				return s
			}
			s := len(slots)
			slots[name] = s
			return s
		}
		refFor := func(t ast.Term) argRef {
			if t.Kind == ast.Constant {
				return argRef{isConst: true, constID: ev.out.Syms.Intern(t.Name)}
			}
			return argRef{slot: slotOf(t.Name)}
		}
		// Positive literals first (they bind the variables), negated
		// literals moved to the end (safety guarantees their variables are
		// bound by then); relative order within each group is preserved.
		var negatedLits []literalPlan
		for _, b := range r.Body {
			lp := literalPlan{key: b.Key(), occ: -1, negated: b.Negated}
			lp.derived = ev.derived[b.Key()]
			if !lp.derived && !ev.out.Has(b.Key()) {
				lp.builtin = builtinFor(b.Pred, b.Arity())
			}
			if b.Negated && lp.builtin != notBuiltin {
				return fmt.Errorf("rule %d: negated builtin %s", i+1, b)
			}
			for _, t := range b.Args {
				lp.args = append(lp.args, refFor(t))
			}
			if b.Negated {
				negatedLits = append(negatedLits, lp)
				continue
			}
			if lp.builtin == notBuiltin {
				lp.occ = plan.nDeltas
				plan.nDeltas++
			}
			plan.body = append(plan.body, lp)
		}
		plan.body = append(plan.body, negatedLits...)
		// Head: variables must already have slots (range restriction),
		// except anonymous head variables, which evaluate to the reserved
		// constant.
		for _, t := range r.Head.Args {
			if t.Kind == ast.Variable {
				if _, ok := slots[t.Name]; !ok {
					if !t.IsAnon() {
						return fmt.Errorf("rule %d: unbound head variable %s", i+1, t.Name)
					}
					plan.head = append(plan.head, argRef{isConst: true, constID: AnonID})
					continue
				}
			}
			plan.head = append(plan.head, refFor(t))
		}
		plan.slots = len(slots)
		ev.plans = append(ev.plans, plan)
	}
	// Materialize every non-builtin body relation up front. Relation
	// lookup during a pass is then read-only, which the Parallel strategy
	// relies on: workers share the database and must not race to create
	// missing base relations. Existing relations are left untouched.
	for _, plan := range ev.plans {
		for i := range plan.body {
			lp := &plan.body[i]
			if lp.builtin == notBuiltin && !ev.out.Has(lp.key) {
				ev.out.Relation(lp.key, len(lp.args))
			}
		}
	}
	ev.active = make([]bool, len(ev.plans))
	for i := range ev.active {
		ev.active[i] = true
	}
	// Stratify for negation-as-failure; positive programs land in one
	// stratum.
	strata, err := Stratify(p)
	if err != nil {
		return err
	}
	for _, plan := range ev.plans {
		plan.stratum = strata[plan.headKey]
		if plan.stratum > ev.maxStrat {
			ev.maxStrat = plan.stratum
		}
	}
	return nil
}

// relationFor resolves the relation a literal reads during a given rule
// version: deltaOcc selects which derived occurrence reads the delta
// (-1 for none, i.e. naive or startup passes).
func (ev *evaluator) relationFor(lp *literalPlan, deltaOcc int) *Relation {
	if lp.occ >= 0 && lp.occ == deltaOcc {
		if d, ok := ev.deltas[lp.key]; ok {
			return d
		}
	}
	r, ok := ev.out.Lookup(lp.key)
	if !ok {
		// Base predicate with no facts: a shared immutable empty relation
		// of the right arity. (Unreachable after compile's materialization
		// pass; kept as a safety net for direct callers.) The fallback must
		// NOT create the relation in ev.out: relationFor runs on Parallel
		// worker goroutines, and workers never write the shared database.
		return emptyRelation(len(lp.args))
	}
	return r
}

// emptyRels caches the shared immutable empty relations handed out by
// relationFor's fallback, one per arity. They are only ever read (Match
// may lazily build an empty index, which Relation guards internally), so
// sharing them across evaluations and goroutines is safe.
var (
	emptyRelMu sync.Mutex
	emptyRels  = map[int]*Relation{}
)

func emptyRelation(arity int) *Relation {
	emptyRelMu.Lock()
	defer emptyRelMu.Unlock()
	r, ok := emptyRels[arity]
	if !ok {
		r = &Relation{arity: arity}
		emptyRels[arity] = r
	}
	return r
}

// planVersion returns (computing and caching if needed) the join plan for
// a rule version at the current pass epoch, or nil when reordering is
// off. Plans for a pass are computed at its barrier, on the coordinating
// goroutine, before any fan-out: workers only ever read the cache, and a
// plan's live sizes are stable for the whole pass (inserts happen only at
// merge barriers).
func (ev *evaluator) planVersion(plan *rulePlan, deltaOcc int) *versionPlan {
	if !ev.opt.ReorderJoins {
		return nil
	}
	if plan.planEpoch != ev.planEpoch {
		plan.planEpoch = ev.planEpoch
		clear(plan.vplans)
	}
	if vp, ok := plan.vplans[deltaOcc]; ok {
		return vp
	}
	vp := ev.computePlan(plan, deltaOcc)
	if plan.vplans == nil {
		plan.vplans = make(map[int]*versionPlan)
	}
	plan.vplans[deltaOcc] = vp
	return vp
}

// computePlan runs the greedy ordering for one rule version against the
// live relation state: the delta literal first (sized by the delta), then
// repeatedly the ready literal with the most bound arguments — preferring
// base relations over derived ones (their sizes are stable across
// passes), then the smaller live relation, then the textual order. Bound
// slots propagate through the chosen prefix, so each step also records
// the argument positions bound at probe time — its index signature — and
// the version is marked empty when any positive non-builtin literal reads
// a relation (or delta) with zero live tuples: its join provably derives
// nothing this pass.
func (ev *evaluator) computePlan(plan *rulePlan, deltaOcc int) *versionPlan {
	n := len(plan.body)
	vp := &versionPlan{
		order:     make([]int, 0, n),
		boundCols: make([][]int, 0, n),
		sizes:     make([]int, 0, n),
	}
	boundSlot := make([]bool, plan.slots)
	used := make([]bool, n)
	liveSize := func(lp *literalPlan) int {
		if lp.builtin != notBuiltin {
			return 1
		}
		if lp.occ >= 0 && lp.occ == deltaOcc {
			if d, ok := ev.deltas[lp.key]; ok {
				return d.Len()
			}
			return 0
		}
		if rel, ok := ev.out.Lookup(lp.key); ok {
			return rel.Len()
		}
		return 0
	}
	take := func(li, size int) {
		lp := &plan.body[li]
		used[li] = true
		var cols []int
		for i, a := range lp.args {
			if a.isConst || boundSlot[a.slot] {
				cols = append(cols, i)
			}
		}
		vp.order = append(vp.order, li)
		vp.boundCols = append(vp.boundCols, cols)
		vp.sizes = append(vp.sizes, size)
		if lp.builtin == notBuiltin && !lp.negated && size == 0 {
			vp.empty = true
		}
		if lp.negated {
			return // negation binds nothing at runtime
		}
		for _, a := range lp.args {
			if !a.isConst {
				boundSlot[a.slot] = true
			}
		}
	}
	// Semi-naive versions start from the literal reading the delta
	// (derived occurrences in ordinary runs; base occurrences under
	// incremental Update).
	if deltaOcc >= 0 {
		for li := range plan.body {
			lp := &plan.body[li]
			if lp.occ == deltaOcc {
				take(li, liveSize(lp))
				break
			}
		}
	}
	ready := func(lp *literalPlan) bool {
		if lp.negated {
			return false // negated literals run last (fallback order)
		}
		boundOf := func(i int) bool {
			a := lp.args[i]
			return a.isConst || boundSlot[a.slot]
		}
		switch lp.builtin {
		case builtinSucc:
			return boundOf(0) || boundOf(1)
		case builtinLt, builtinNeq:
			return boundOf(0) && boundOf(1)
		}
		return true
	}
	for len(vp.order) < n {
		best, bestBound, bestBase, bestSize := -1, -1, false, 0
		for li := range plan.body {
			if used[li] {
				continue
			}
			lp := &plan.body[li]
			if !ready(lp) {
				continue
			}
			boundArgs := 0
			for _, a := range lp.args {
				if a.isConst || boundSlot[a.slot] {
					boundArgs++
				}
			}
			isBase := lp.builtin == notBuiltin && !lp.derived
			size := liveSize(lp)
			// More bound arguments first; then base over derived; then the
			// smaller live relation; the ascending scan with strict
			// improvement keeps the textual order on full ties.
			better := boundArgs > bestBound
			if !better && boundArgs == bestBound {
				switch {
				case isBase != bestBase:
					better = isBase
				case size < bestSize:
					better = true
				}
			}
			if better {
				best, bestBound, bestBase, bestSize = li, boundArgs, isBase, size
			}
		}
		if best >= 0 {
			take(best, liveSize(&plan.body[best]))
			continue
		}
		// Nothing is ready: only negated literals and builtins whose
		// binding requirements are unmet remain. Force exactly one — the
		// textually first non-negated literal if any, else the textually
		// first negated one — and rerun the selection, so a builtin forced
		// here can still make a later builtin ready and negated literals
		// stay at the tail. If the forced builtin's arguments are genuinely
		// never bound, the runtime reports the binding error, and reports
		// it deterministically because this order is.
		forced := -1
		for li := range plan.body {
			if used[li] {
				continue
			}
			if !plan.body[li].negated {
				forced = li
				break
			}
			if forced < 0 {
				forced = li
			}
		}
		take(forced, liveSize(&plan.body[forced]))
	}
	return vp
}

// evalRule joins the body of plan (with the deltaOcc-th derived occurrence
// reading the delta) and feeds the head tuples to emit. It reads relations
// but never writes them; the only counter it touches is the runner's
// JoinProbes.
func (r *runner) evalRule(plan *rulePlan, deltaOcc int, emit func(Tuple, []FactRef) error) error {
	ev := r.ev
	if r.shard != nil {
		r.shard.Firings[plan.idx]++
	}
	if cap(r.slotVals) < plan.slots {
		r.slotVals = make([]int32, plan.slots)
		r.slotBound = make([]bool, plan.slots)
	}
	vals := r.slotVals[:plan.slots]
	bound := r.slotBound[:plan.slots]
	for i := range bound {
		bound[i] = false
	}
	if ev.opt.TrackProvenance {
		if cap(r.bodyFacts) < len(plan.body) {
			r.bodyFacts = make([]FactRef, len(plan.body))
		}
	}
	// Per-depth scratch for the bound-column probe and the newly bound
	// slots, reused across all tuples of a literal.
	for len(r.colsBuf) < len(plan.body) {
		r.colsBuf = append(r.colsBuf, make([]int, 0, 8))
		r.valsBuf = append(r.valsBuf, make(Tuple, 0, 8))
		r.newlyBuf = append(r.newlyBuf, make([]int, 0, 8))
	}
	vp := ev.planVersion(plan, deltaOcc)
	var rec func(step int) error
	rec = func(step int) error {
		li := step
		if vp != nil && step < len(vp.order) {
			li = vp.order[step]
		}
		if step == len(plan.body) {
			// Emission site: also a cancellation point, so rules whose last
			// literal scans a huge relation (many emissions per probe)
			// still abort promptly.
			if err := r.tick(); err != nil {
				return err
			}
			if cap(r.headBuf) < len(plan.head) {
				r.headBuf = make(Tuple, len(plan.head))
			}
			head := r.headBuf[:len(plan.head)]
			for i, a := range plan.head {
				if a.isConst {
					head[i] = a.constID
				} else {
					head[i] = vals[a.slot]
				}
			}
			var just []FactRef
			if ev.opt.TrackProvenance {
				just = append(just, r.bodyFacts[:len(plan.body)]...)
			}
			return emit(head, just)
		}
		lp := &plan.body[li]
		if lp.builtin != notBuiltin {
			return r.evalBuiltin(plan, lp, step, vals, bound, rec)
		}
		rel := ev.relationFor(lp, deltaOcc)
		var cols []int
		var cvals Tuple
		if vp != nil {
			// The planner precomputed this step's bound argument positions
			// (they depend only on the order, which binds the same slots the
			// runtime does); only the probe values vary per invocation.
			cols = vp.boundCols[step]
			cvals = r.valsBuf[step][:0]
			for _, i := range cols {
				if a := lp.args[i]; a.isConst {
					cvals = append(cvals, a.constID)
				} else {
					cvals = append(cvals, vals[a.slot])
				}
			}
			r.valsBuf[step] = cvals
		} else {
			cols = r.colsBuf[step][:0]
			cvals = r.valsBuf[step][:0]
			for i, a := range lp.args {
				if a.isConst {
					cols = append(cols, i)
					cvals = append(cvals, a.constID)
				} else if bound[a.slot] {
					cols = append(cols, i)
					cvals = append(cvals, vals[a.slot])
				}
			}
			r.colsBuf[step], r.valsBuf[step] = cols, cvals
		}
		if lp.negated {
			// Negation as failure against the finished lower-stratum
			// relation. Safety has bound every named variable; remaining
			// unbound positions are anonymous wildcards.
			r.stats.JoinProbes++
			if r.shard != nil {
				r.shard.Probes[plan.idx]++
			}
			if err := r.tick(); err != nil {
				return err
			}
			matched := rel.Len() > 0
			if len(cols) > 0 {
				matched = len(rel.Match(cols, cvals)) > 0
			}
			if !matched {
				if ev.opt.TrackProvenance {
					r.bodyFacts[li] = FactRef{}
				}
				return rec(step + 1)
			}
			return nil
		}
		r.stats.JoinProbes++
		if r.shard != nil {
			r.shard.Probes[plan.idx]++
		}
		if err := r.tick(); err != nil {
			return err
		}
		// An unconstrained literal scans the arena directly instead of
		// asking Match to materialize an all-rows identity slice.
		var bucket []int32
		count := rel.Len()
		if len(cols) > 0 {
			bucket = rel.Match(cols, cvals)
			count = len(bucket)
		}
		for bi := 0; bi < count; bi++ {
			ti := bi
			if bucket != nil {
				ti = int(bucket[bi])
			}
			t := rel.Tuple(ti)
			newly := r.newlyBuf[step][:0]
			ok := true
			for i, a := range lp.args {
				if a.isConst {
					continue
				}
				if bound[a.slot] {
					if vals[a.slot] != t[i] {
						ok = false
						break
					}
				} else {
					vals[a.slot] = t[i]
					bound[a.slot] = true
					newly = append(newly, a.slot)
				}
			}
			r.newlyBuf[step] = newly
			if ok {
				if ev.opt.TrackProvenance {
					r.bodyFacts[li] = FactRef{Key: lp.key, Row: t}
				}
				if err := rec(step + 1); err != nil {
					return err
				}
			}
			for _, s := range newly {
				bound[s] = false
			}
		}
		return nil
	}
	return rec(0)
}

func (r *runner) evalBuiltin(plan *rulePlan, lp *literalPlan, step int, vals []int32, bound []bool, rec func(int) error) error {
	syms := r.ev.out.Syms
	get := func(a argRef) (int32, bool) {
		if a.isConst {
			return a.constID, true
		}
		if bound[a.slot] {
			return vals[a.slot], true
		}
		return 0, false
	}
	num := func(id int32) (int, bool) {
		n, err := strconv.Atoi(syms.Name(id))
		return n, err == nil
	}
	x, xok := get(lp.args[0])
	y, yok := get(lp.args[1])
	switch lp.builtin {
	case builtinSucc:
		// succ(I,J) over the naturals: J = I+1. Either side may be bound;
		// the counting rewrite uses both directions (climbing binds I,
		// descending binds J).
		switch {
		case xok:
			n, ok := num(x)
			if !ok {
				return nil // non-numeric constant: no successor
			}
			ny := syms.Intern(strconv.Itoa(n + 1))
			if yok {
				if y == ny {
					return rec(step + 1)
				}
				return nil
			}
			a := lp.args[1]
			vals[a.slot], bound[a.slot] = ny, true
			err := rec(step + 1)
			bound[a.slot] = false
			return err
		case yok:
			n, ok := num(y)
			if !ok || n < 1 {
				return nil
			}
			nx := syms.Intern(strconv.Itoa(n - 1))
			a := lp.args[0]
			vals[a.slot], bound[a.slot] = nx, true
			err := rec(step + 1)
			bound[a.slot] = false
			return err
		default:
			return fmt.Errorf("rule %d: succ/2 requires at least one argument bound", plan.idx+1)
		}
	case builtinLt:
		if !xok || !yok {
			return fmt.Errorf("rule %d: lt/2 requires both arguments bound", plan.idx+1)
		}
		nx, ok1 := num(x)
		ny, ok2 := num(y)
		if ok1 && ok2 && nx < ny {
			return rec(step + 1)
		}
		return nil
	case builtinNeq:
		if !xok || !yok {
			return fmt.Errorf("rule %d: neq/2 requires both arguments bound", plan.idx+1)
		}
		if x != y {
			return rec(step + 1)
		}
		return nil
	}
	return fmt.Errorf("rule %d: unknown builtin", plan.idx+1)
}

// evalVersion runs one rule version to completion, buffering every head
// derivation instead of inserting it. The buffer is merged later, on the
// coordinating goroutine, in version order.
func (r *runner) evalVersion(plan *rulePlan, occ int) (emitBuf, error) {
	buf := emitBuf{w: len(plan.head)}
	track := r.ev.opt.TrackProvenance
	err := r.evalRule(plan, occ, func(t Tuple, just []FactRef) error {
		buf.heads = append(buf.heads, t...)
		buf.n++
		if track {
			buf.justs = append(buf.justs, just)
		}
		return nil
	})
	if err != nil {
		return emitBuf{}, err
	}
	return buf, nil
}

// runVersion is evalVersion behind the engine's fault bulkhead: a panic
// during rule-version evaluation (a bug, or an injected FPWorker panic on
// a parallel worker) is recovered into a stack-carrying *ierr.InternalError
// instead of killing the goroutine, so the pass fails like any other
// errored version — surfaced once, workers drained, partial result kept.
func (r *runner) runVersion(plan *rulePlan, occ int) (buf emitBuf, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			buf, err = emitBuf{}, ierr.New(rec)
		}
	}()
	if err := failpoint.Inject(FPWorker); err != nil {
		return emitBuf{}, err
	}
	return r.evalVersion(plan, occ)
}

// insertDerived adds a head tuple to the full relation (and the "next"
// delta for semi-naive), maintaining counters, limits, and provenance.
func (ev *evaluator) insertDerived(plan *rulePlan, head Tuple, just []FactRef, collectNext bool) error {
	ev.stats.Derivations++
	// The per-rule counter moves in lockstep with the aggregate, BEFORE
	// the abort points below, so partial runs keep the partition invariant
	// (sum of per-rule Emitted == Stats.Derivations).
	if ev.tc != nil {
		ev.tc.Emit(plan.idx)
	}
	// Merge-side cancellation point (the merge of a huge pass can itself
	// take a while) and fault-injection site. Aborting mid-merge is sound:
	// the facts already inserted are valid consequences, and Stats count
	// exactly them.
	if err := ev.run.tick(); err != nil {
		return err
	}
	if err := failpoint.Inject(FPInsert); err != nil {
		return err
	}
	rel := ev.out.Relation(plan.headKey, len(head))
	// MaxFacts is exact: the insert that would exceed the limit is
	// rejected before it lands, so FactsDerived never overshoots — the
	// merge loop stops mid-buffer on the first over-limit fact. Duplicate
	// derivations past the limit are still counted, not errors.
	if ev.opt.MaxFacts > 0 && ev.stats.FactsDerived >= ev.opt.MaxFacts && !rel.Contains(head) {
		return ErrFactLimit
	}
	if !rel.Insert(head) {
		ev.stats.DuplicateHits++
		if ev.tc != nil {
			ev.tc.Duplicate(plan.idx)
		}
		return nil
	}
	ev.stats.FactsDerived++
	if ev.tc != nil {
		ev.tc.Fact(plan.idx)
	}
	if collectNext {
		nx, ok := ev.next[plan.headKey]
		if !ok {
			nx = NewRelation(len(head))
			ev.next[plan.headKey] = nx
		}
		nx.Insert(head)
	}
	if ev.opt.TrackProvenance {
		m, ok := ev.prov[plan.headKey]
		if !ok {
			m = newProvSet()
			ev.prov[plan.headKey] = m
		}
		kept := just[:0]
		for _, f := range just {
			if f.Key != "" {
				kept = append(kept, f)
			}
		}
		m.put(head, Justification{Rule: plan.idx, Body: kept})
	}
	return nil
}

// workers returns the size of the Parallel strategy's worker pool.
func (ev *evaluator) workers() int {
	if ev.opt.Workers > 0 {
		return ev.opt.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// runPass evaluates the given rule versions against the pass's frozen
// relation state, buffering every derivation, then merges the buffers in
// (rule, occurrence, emission) order on the calling goroutine. Relations
// mutate only during the merge, so sequential and parallel execution read
// identical states and produce bit-identical results, insertion orders,
// and Stats; the worker pool only changes wall-clock time. collectNext
// routes genuinely new facts into the next delta.
func (ev *evaluator) runPass(versions []version, collectNext bool) error {
	if len(versions) == 0 {
		return nil
	}
	// Pass barrier: cancellation is always checked here, and the FPPass
	// failpoint can abort a build under test before the pass fans out.
	if err := ev.checkCtx(); err != nil {
		return err
	}
	if err := failpoint.Inject(FPPass); err != nil {
		return err
	}
	// Plan barrier: bump the epoch and recompute every version's join plan
	// from the live relation and delta cardinalities, up front on this
	// goroutine — workers then only read the cache, and the plan is the
	// same one sequential evaluation would compute (sizes are stable in a
	// pass). Versions whose plan proves the join empty are dropped here,
	// before the fan-out, so sequential and parallel runs skip
	// identically; for the rest, the index buckets their probes will use
	// are prewarmed while no worker is running.
	ev.planEpoch++
	if ev.opt.ReorderJoins {
		kept := make([]version, 0, len(versions))
		for _, v := range versions {
			plan := ev.plans[v.pi]
			vp := ev.planVersion(plan, v.occ)
			ev.recordOrder(plan, v.occ, vp)
			if vp.empty {
				continue
			}
			kept = append(kept, v)
			for k, li := range vp.order {
				lp := &plan.body[li]
				if lp.builtin == notBuiltin && len(vp.boundCols[k]) > 0 {
					ev.relationFor(lp, v.occ).EnsureIndex(vp.boundCols[k])
				}
			}
		}
		versions = kept
	}
	bufs := make([]emitBuf, len(versions))
	errs := make([]error, len(versions))
	workers := 1
	if ev.opt.Strategy == Parallel {
		workers = ev.workers()
		if workers > len(versions) {
			workers = len(versions)
		}
	}
	if workers <= 1 {
		r := &ev.run
		for vi, v := range versions {
			bufs[vi], errs[vi] = r.runVersion(ev.plans[v.pi], v.occ)
			if errs[vi] != nil {
				break // the pass fails; later versions are moot
			}
		}
	} else {
		var cursor atomic.Int64
		var wg sync.WaitGroup
		// failed flips on the first errored version; the other workers
		// finish their current version and drain, rather than burning CPU
		// on a pass whose result is already an error. In fault-free runs
		// it never flips, so the fan-out behaves exactly as before.
		var failed atomic.Bool
		local := make([]Stats, workers)
		// Per-worker trace shards, merged below at the barrier alongside
		// the aggregate counters — lock-free while the pass runs.
		var shards []*trace.Shard
		if ev.tc != nil {
			shards = make([]*trace.Shard, workers)
			for w := range shards {
				shards[w] = ev.tc.NewShard()
			}
		}
		spawnErr := error(nil)
		spawned := 0
		for w := 0; w < workers; w++ {
			if err := failpoint.Inject(FPSpawn); err != nil {
				spawnErr = err
				break
			}
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				r := runner{ev: ev, stats: &local[w]}
				if shards != nil {
					r.shard = shards[w]
				}
				for {
					if failed.Load() || ev.checkCtx() != nil {
						return
					}
					vi := int(cursor.Add(1)) - 1
					if vi >= len(versions) {
						return
					}
					v := versions[vi]
					bufs[vi], errs[vi] = r.runVersion(ev.plans[v.pi], v.occ)
					if errs[vi] != nil {
						failed.Store(true)
						return
					}
				}
			}(w)
			spawned++
		}
		wg.Wait()
		// Probe counts are additive, so the sum over workers equals the
		// sequential total regardless of how versions were distributed —
		// and the same holds per rule, so the trace shards merge here too
		// (on aborted passes as well, keeping partial-run metrics in step
		// with partial-run Stats).
		for w := 0; w < spawned; w++ {
			ev.stats.JoinProbes += local[w].JoinProbes
			if shards != nil {
				ev.tc.Merge(shards[w])
			}
		}
		if spawnErr != nil {
			return spawnErr
		}
	}
	// Merge barrier: versions in order, emissions in the order their
	// version produced them. The first errored version aborts the
	// evaluation (same error sequential execution would surface; under
	// faults, the first failure in version order, surfaced exactly once).
	if err := failpoint.Inject(FPMerge); err != nil {
		return err
	}
	for vi, v := range versions {
		if errs[vi] != nil {
			return errs[vi]
		}
		plan := ev.plans[v.pi]
		buf := &bufs[vi]
		var just []FactRef
		for i := 0; i < buf.n; i++ {
			head := Tuple(buf.heads[i*buf.w : (i+1)*buf.w])
			if buf.justs != nil {
				just = buf.justs[i]
			}
			if err := ev.insertDerived(plan, head, just, collectNext); err != nil {
				return err
			}
		}
	}
	// A cancellation that arrived while workers were finishing is reported
	// at the latest here, keeping abort latency within one pass tail.
	return ev.checkCtx()
}

func (ev *evaluator) runNaive() error {
	for level := 0; level <= ev.maxStrat; level++ {
		if err := ev.runNaiveStratum(level); err != nil {
			return err
		}
	}
	return nil
}

func (ev *evaluator) runNaiveStratum(level int) error {
	for {
		// Naive passes have no runPass barrier, so the iteration head is
		// their cancellation point (mid-pass ticks cover the rest) and
		// their FPPass site.
		if err := ev.checkCtx(); err != nil {
			return err
		}
		if err := failpoint.Inject(FPPass); err != nil {
			return err
		}
		ev.stats.Iterations++
		if ev.stats.Iterations > ev.opt.MaxIterations {
			return ErrIterationLimit
		}
		// Naive iterations replan too, but lazily (inserts land mid-pass
		// here, so there is no frozen state to plan against up front) and
		// without empty-version skipping — naive exists as an answer-set
		// cross-check, not a bit-identical one.
		ev.planEpoch++
		before := ev.stats.FactsDerived
		versions := 0
		var evalErr error
		for pi, plan := range ev.plans {
			if !ev.active[pi] || plan.stratum != level {
				continue
			}
			versions++
			evalErr = ev.run.evalRule(plan, -1, func(t Tuple, just []FactRef) error {
				return ev.insertDerived(plan, t, just, false)
			})
			if evalErr != nil {
				break
			}
		}
		// Naive iterations are their own barriers: drain the shard and
		// record the pass (aborted iterations included) before the cut.
		if ev.tc != nil {
			ev.tc.Merge(ev.run.shard)
			ev.tc.Pass(trace.PassStats{
				Pass: ev.stats.Iterations, Stratum: level, Versions: versions,
				Facts: ev.stats.FactsDerived - before,
			})
		}
		ev.markPass()
		if evalErr != nil {
			return evalErr
		}
		ev.applyCut()
		if ev.stats.FactsDerived == before {
			return nil
		}
	}
}

func (ev *evaluator) runSemiNaive() error {
	for level := 0; level <= ev.maxStrat; level++ {
		if err := ev.runSemiNaiveStratum(level); err != nil {
			return err
		}
	}
	return nil
}

// deltaKey returns the relation key of plan's occ-th delta occurrence.
func deltaKey(plan *rulePlan, occ int) string {
	for i := range plan.body {
		if plan.body[i].occ == occ {
			return plan.body[i].key
		}
	}
	return ""
}

// runSemiNaiveStratum runs the SemiNaive/Parallel fixpoint for one
// stratum. Every pass (the startup pass and each delta iteration) is a
// barrier: rule versions read the relation state frozen at the start of
// the pass, their emissions merge at the end, and boolean-cut retirement
// is decided only between passes — which is what makes the parallel
// fan-out race-free and bit-identical to sequential execution.
func (ev *evaluator) runSemiNaiveStratum(level int) error {
	// Startup pass: evaluate this stratum's rules against the full
	// relations (which contain lower strata and any derived-predicate
	// seeds); everything then in this stratum's relations becomes the
	// first delta.
	ev.stats.Iterations++
	stratumKeys := map[string]bool{}
	var startup []version
	for pi, plan := range ev.plans {
		if plan.stratum != level {
			continue
		}
		stratumKeys[plan.headKey] = true
		if !ev.active[pi] {
			continue
		}
		startup = append(startup, version{pi: pi, occ: -1})
	}
	if err := ev.tracedPass(startup, false, level); err != nil {
		return err
	}
	ev.deltas = make(map[string]*Relation)
	for key := range stratumKeys {
		if rel, ok := ev.out.Lookup(key); ok && rel.Len() > 0 {
			ev.deltas[key] = rel.Clone()
		}
	}
	ev.applyCut()

	for len(ev.deltas) > 0 {
		ev.stats.Iterations++
		if ev.stats.Iterations > ev.opt.MaxIterations {
			return ErrIterationLimit
		}
		ev.next = make(map[string]*Relation)
		var vs []version
		for pi, plan := range ev.plans {
			if !ev.active[pi] || plan.stratum != level || plan.nDeltas == 0 {
				continue
			}
			for occ := 0; occ < plan.nDeltas; occ++ {
				// Skip versions whose delta occurrence has an empty delta.
				if _, ok := ev.deltas[deltaKey(plan, occ)]; !ok {
					continue
				}
				vs = append(vs, version{pi: pi, occ: occ})
			}
		}
		if err := ev.tracedPass(vs, true, level); err != nil {
			return err
		}
		ev.deltas = ev.next
		ev.applyCut()
	}
	return nil
}

// applyCut retires boolean rules whose head already holds and cascades to
// rules that now feed nothing (Section 3.1). It is only ever called at
// pass barriers, so retirement decisions are identical under sequential
// and parallel evaluation.
func (ev *evaluator) applyCut() {
	if !ev.opt.BooleanCut {
		return
	}
	changed := false
	for pi, plan := range ev.plans {
		if ev.active[pi] && plan.boolHead && ev.out.Count(plan.headKey) > 0 {
			ev.active[pi] = false
			ev.stats.RulesRetired++
			if ev.tc != nil {
				ev.tc.Cut(pi, ev.stats.Iterations)
			}
			changed = true
		}
	}
	if !changed {
		return
	}
	// Cascade: a predicate is needed only if it is reachable from the
	// query through the bodies of still-active rules (a recursive rule
	// must not keep its own head alive). Rules whose head is no longer
	// needed retire, which can unneed further predicates.
	for {
		needed := map[string]bool{ev.queryKey: true}
		for grew := true; grew; {
			grew = false
			for pi, plan := range ev.plans {
				if !ev.active[pi] || !needed[plan.headKey] {
					continue
				}
				for _, lp := range plan.body {
					if !needed[lp.key] {
						needed[lp.key] = true
						grew = true
					}
				}
			}
		}
		retired := false
		for pi, plan := range ev.plans {
			if ev.active[pi] && !needed[plan.headKey] {
				ev.active[pi] = false
				ev.stats.RulesRetired++
				if ev.tc != nil {
					ev.tc.Cut(pi, ev.stats.Iterations)
				}
				retired = true
			}
		}
		if !retired {
			return
		}
	}
}

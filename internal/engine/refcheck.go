package engine

import (
	"fmt"
	"sort"
	"sync"
)

// refcheck.go retains the seed commit's map-of-strings tuple storage as a
// differential oracle for the columnar arena in relation.go. When tests
// set refCheckEnabled, every Relation mirrors its inserts into a
// refRelation and cross-checks newness, row order, membership, and index
// probes operation by operation — a mismatch panics with both answers,
// which the API-boundary rescue surfaces as an internal error. The oracle
// is deliberately the old implementation, string keys and per-tuple
// copies included: it cannot share a bug with the fingerprint path.

// refRelation is the seed's Relation storage: rows as individual []int32
// copies plus a byte-string-keyed membership map.
type refRelation struct {
	mu     sync.Mutex
	arity  int
	tuples []Tuple
	set    map[string]struct{}
}

// refKey is the seed's tupleKey: the tuple's little-endian bytes as a
// string.
func refKey(t Tuple) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

func newRefRelation(arity int) *refRelation {
	return &refRelation{arity: arity, set: make(map[string]struct{})}
}

func (rr *refRelation) clone() *refRelation {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	c := newRefRelation(rr.arity)
	c.tuples = append([]Tuple(nil), rr.tuples...)
	for k := range rr.set {
		c.set[k] = struct{}{}
	}
	return c
}

// verifyInsert replays the insert on the oracle and checks that the
// columnar path agreed on newness, assigned the same row id, and stored
// the same values at it.
func (rr *refRelation) verifyInsert(r *Relation, t Tuple, isNew bool) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	k := refKey(t)
	_, dup := rr.set[k]
	if isNew == dup {
		panic(fmt.Sprintf("refcheck: Insert(%v) newness=%v, reference says %v", t, isNew, !dup))
	}
	if !dup {
		cp := make(Tuple, len(t))
		copy(cp, t)
		rr.set[k] = struct{}{}
		rr.tuples = append(rr.tuples, cp)
	}
	if r.Len() != len(rr.tuples) {
		panic(fmt.Sprintf("refcheck: after Insert(%v) arena has %d rows, reference %d", t, r.Len(), len(rr.tuples)))
	}
	if isNew {
		row := r.Tuple(r.Len() - 1)
		want := rr.tuples[len(rr.tuples)-1]
		if !tupleEq(row, want) {
			panic(fmt.Sprintf("refcheck: Insert(%v) stored arena row %v, reference row %v", t, row, want))
		}
	}
}

func (rr *refRelation) verifyContains(t Tuple, got bool) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	if _, want := rr.set[refKey(t)]; got != want {
		panic(fmt.Sprintf("refcheck: Contains(%v)=%v, reference says %v", t, got, want))
	}
}

// verifyMatch brute-force scans the oracle's rows for the probe's
// projection and compares the resulting row-id set (row ids are shared
// between the two representations because insertion order is identical).
func (rr *refRelation) verifyMatch(cols []int, vals []int32, got []int32) {
	rr.mu.Lock()
	defer rr.mu.Unlock()
	var want []int32
	for i, t := range rr.tuples {
		ok := true
		for j, c := range cols {
			if t[c] != vals[j] {
				ok = false
				break
			}
		}
		if ok {
			want = append(want, int32(i))
		}
	}
	g := append([]int32(nil), got...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	if len(g) != len(want) {
		panic(fmt.Sprintf("refcheck: Match(%v,%v) returned %d rows %v, reference %d rows %v", cols, vals, len(g), g, len(want), want))
	}
	for i := range g {
		if g[i] != want[i] {
			panic(fmt.Sprintf("refcheck: Match(%v,%v) returned rows %v, reference %v", cols, vals, g, want))
		}
	}
}

// tupleEq reports elementwise equality.
func tupleEq(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

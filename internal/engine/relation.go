package engine

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Tuple is a row of interned constant ids.
type Tuple []int32

// ---------------------------------------------------------------------------
// Tuple fingerprints
//
// Set membership and index probes key on 64-bit fingerprints instead of the
// seed's string-encoded byte copies: hashing a tuple is a handful of integer
// multiplies with zero allocations, and equal-fingerprint collisions are
// resolved by comparing the candidate row in the arena (the fingerprint
// selects, the arena verifies), so distinct tuples that happen to collide
// are still kept exactly apart.

// fpSeed is the fold's initial state (the FNV-64 offset basis, an arbitrary
// non-zero constant).
const fpSeed uint64 = 0xcbf29ce484222325

// fpMask narrows every fingerprint before use. It is ^0 in production; the
// adversarial collision tests shrink it (down to 0: every tuple collides)
// to prove that membership, indexes, and DRed retraction survive arbitrary
// fingerprint collisions. Only tests may write it, and only while no
// evaluation is running — relations hash consistently for their lifetime.
var fpMask uint64 = ^uint64(0)

// fpMix folds one column value into the running fingerprint. The odd
// multiplier and shift diffuse every input bit across the word; position
// sensitivity comes from the fold itself (the state is multiplied between
// columns, so swapped values hash differently).
func fpMix(h uint64, v int32) uint64 {
	h ^= uint64(uint32(v))
	h *= 0x9E3779B97F4A7C15
	h ^= h >> 29
	return h
}

// fingerprint hashes a whole tuple (or a probe's projected values, which
// must fold in the same column order as projFingerprint).
func fingerprint(t Tuple) uint64 {
	h := fpSeed
	for _, v := range t {
		h = fpMix(h, v)
	}
	return h & fpMask
}

// projFingerprint hashes the projection of t onto cols (in cols order).
func projFingerprint(t Tuple, cols []int) uint64 {
	h := fpSeed
	for _, c := range cols {
		h = fpMix(h, t[c])
	}
	return h & fpMask
}

// ---------------------------------------------------------------------------
// Relation

// refCheckEnabled (tests only) makes every subsequently created Relation
// mirror its operations into a refRelation — the seed's map-of-strings
// storage, kept as a differential oracle (see refcheck.go) — and assert
// agreement on every insert, membership test, and index probe. Written only
// between evaluations on the test goroutine.
var refCheckEnabled bool

// Relation is a set of tuples of fixed arity with hash indexes built on
// demand per bound-column signature. Insertion order is preserved, which
// keeps evaluation deterministic.
//
// Storage is columnar: all rows live in one flat arity-strided []int32
// arena (row i is data[i*arity:(i+1)*arity]), membership is an
// open-addressing table of (fingerprint, row id) slots probed linearly and
// verified against the arena, and indexes bucket row ids per distinct
// projection, keyed by projection fingerprint. Insert, Contains, and an
// indexed Match therefore allocate nothing per tuple — the arena and the
// tables grow amortized.
//
// Clone is copy-on-write: both sides share the arena and the membership
// table until one of them inserts, which first snapshots private copies
// (two memcpys, no rehashing). The shared flag is atomic only because
// concurrent readers may Clone the same frozen relation; mutation remains
// single-goroutine, at evaluation merge barriers.
//
// The lazily built indexes can be created during a pass while Parallel
// workers probe the relation concurrently, so mu guards the index map. A
// published index is immutable until the next Insert (which happens only
// after all workers have stopped).
type Relation struct {
	arity int
	data  []int32 // arity-strided arena; row i = data[i*arity:(i+1)*arity]
	n     int     // rows (tracked apart from len(data) for arity 0)
	table []slot  // open-addressing membership set; nil until first insert
	// shared marks the arena and table as referenced by a Clone sibling:
	// the next insert copies before writing.
	shared  atomic.Bool
	mu      sync.RWMutex // guards indexes
	indexes map[uint64]*index
	ref     *refRelation // differential oracle; nil unless refCheckEnabled
}

// slot is one membership-table entry: the tuple's fingerprint and its row
// id in the arena. row < 0 marks an empty slot.
type slot struct {
	fp  uint64
	row int32
}

// index maps projection fingerprints to buckets of row ids. Each bucket
// holds every row with one distinct projection value; distinct projections
// whose fingerprints collide occupy separate buckets (linear probing walks
// past the mismatch, verified against the arena via the bucket's first
// row).
type index struct {
	cols    []int // ascending
	slots   []idxSlot
	buckets [][]int32
	fps     []uint64 // per-bucket fingerprint, for rehashing on growth
}

// idxSlot points a projection fingerprint at its bucket. b < 0 is empty.
type idxSlot struct {
	fp uint64
	b  int32
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	r := &Relation{arity: arity}
	if refCheckEnabled {
		r.ref = newRefRelation(arity)
	}
	return r
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return r.n }

// Tuple returns the i-th tuple as a view into the arena. The caller must
// not mutate it.
func (r *Relation) Tuple(i int) Tuple {
	off := i * r.arity
	return r.data[off : off+r.arity : off+r.arity]
}

// Tuples returns the stored tuples in insertion order, as views into the
// arena. The caller must not mutate them. Hot paths iterate with
// Len/Tuple instead: this materializes a fresh slice of headers.
func (r *Relation) Tuples() []Tuple {
	out := make([]Tuple, r.n)
	for i := range out {
		out[i] = r.Tuple(i)
	}
	return out
}

// rowEq reports whether arena row row equals t.
func (r *Relation) rowEq(row int32, t Tuple) bool {
	off := int(row) * r.arity
	for i, v := range t {
		if r.data[off+i] != v {
			return false
		}
	}
	return true
}

// findRow returns the row id of t (with fingerprint fp) or -1. Collisions
// — equal fingerprints for distinct tuples — fail the rowEq verification
// and the probe walks on.
func (r *Relation) findRow(fp uint64, t Tuple) int32 {
	if r.table == nil {
		return -1
	}
	mask := uint64(len(r.table) - 1)
	for i := fp & mask; ; i = (i + 1) & mask {
		s := r.table[i]
		if s.row < 0 {
			return -1
		}
		if s.fp == fp && r.rowEq(s.row, t) {
			return s.row
		}
	}
}

// place writes (fp, row) into the first free slot of the probe chain.
func place(table []slot, fp uint64, row int32) {
	mask := uint64(len(table) - 1)
	i := fp & mask
	for table[i].row >= 0 {
		i = (i + 1) & mask
	}
	table[i] = slot{fp: fp, row: row}
}

func newSlotTable(size int) []slot {
	t := make([]slot, size)
	for i := range t {
		t[i].row = -1
	}
	return t
}

// grow rebuilds the membership table at the given power-of-two size from
// the stored fingerprints (no tuple is rehashed).
func (r *Relation) grow(size int) {
	nt := newSlotTable(size)
	for _, s := range r.table {
		if s.row >= 0 {
			place(nt, s.fp, s.row)
		}
	}
	r.table = nt
}

// materialize snapshots private copies of the shared arena and membership
// table — the copy half of copy-on-write, run by whichever Clone sibling
// inserts first. Two memcpys; nothing is rehashed because row ids and
// fingerprints are position-independent.
func (r *Relation) materialize() {
	nd := make([]int32, len(r.data), len(r.data)+max(64, len(r.data)/2))
	copy(nd, r.data)
	r.data = nd
	if r.table != nil {
		nt := make([]slot, len(r.table))
		copy(nt, r.table)
		r.table = nt
	}
	r.shared.Store(false)
}

// Contains reports membership.
func (r *Relation) Contains(t Tuple) bool {
	ok := r.contains(t)
	if r.ref != nil {
		r.ref.verifyContains(t, ok)
	}
	return ok
}

func (r *Relation) contains(t Tuple) bool {
	if r.arity == 0 {
		return r.n == 1
	}
	return r.findRow(fingerprint(t), t) >= 0
}

// Insert adds t (copied into the arena) and reports whether it was new.
func (r *Relation) Insert(t Tuple) bool {
	isNew := r.insert(t)
	if r.ref != nil {
		r.ref.verifyInsert(r, t, isNew)
	}
	return isNew
}

func (r *Relation) insert(t Tuple) bool {
	if r.arity == 0 {
		if r.n == 1 {
			return false
		}
		if r.shared.Load() {
			r.materialize()
		}
		r.n = 1
		return true
	}
	fp := fingerprint(t)
	if r.findRow(fp, t) >= 0 {
		return false
	}
	if r.shared.Load() {
		r.materialize()
	}
	// Grow at ~3/4 load, before placing, so probe chains stay short.
	switch {
	case r.table == nil:
		r.table = newSlotTable(16)
	case (r.n+1)*4 > len(r.table)*3:
		r.grow(len(r.table) * 2)
	}
	row := int32(r.n)
	r.data = append(r.data, t...)
	r.n++
	place(r.table, fp, row)
	r.mu.Lock()
	for _, ix := range r.indexes {
		ix.add(r, row)
	}
	r.mu.Unlock()
	return true
}

// colMask returns the bitmask signature of a bound-column set.
func colMask(cols []int) uint64 {
	var m uint64
	for _, c := range cols {
		m |= 1 << uint(c)
	}
	return m
}

// add routes one arena row into its projection bucket, creating the bucket
// (and growing the slot table) as needed.
func (ix *index) add(r *Relation, row int32) {
	t := r.Tuple(int(row))
	fp := projFingerprint(t, ix.cols)
	if (len(ix.buckets)+1)*4 > len(ix.slots)*3 {
		ix.growSlots(r)
	}
	mask := uint64(len(ix.slots) - 1)
	for i := fp & mask; ; i = (i + 1) & mask {
		s := ix.slots[i]
		if s.b < 0 {
			b := int32(len(ix.buckets))
			ix.buckets = append(ix.buckets, []int32{row})
			ix.fps = append(ix.fps, fp)
			ix.slots[i] = idxSlot{fp: fp, b: b}
			return
		}
		if s.fp == fp && projEq(r, ix.buckets[s.b][0], t, ix.cols) {
			ix.buckets[s.b] = append(ix.buckets[s.b], row)
			return
		}
	}
}

// projEq reports whether arena row rep's projection onto cols equals the
// projection of t (a full-width tuple).
func projEq(r *Relation, rep int32, t Tuple, cols []int) bool {
	off := int(rep) * r.arity
	for _, c := range cols {
		if r.data[off+c] != t[c] {
			return false
		}
	}
	return true
}

// growSlots rebuilds the slot table at double size from the per-bucket
// fingerprints.
func (ix *index) growSlots(r *Relation) {
	size := 16
	if len(ix.slots) > 0 {
		size = len(ix.slots) * 2
	}
	ns := make([]idxSlot, size)
	for i := range ns {
		ns[i].b = -1
	}
	mask := uint64(size - 1)
	for b, fp := range ix.fps {
		i := fp & mask
		for ns[i].b >= 0 {
			i = (i + 1) & mask
		}
		ns[i] = idxSlot{fp: fp, b: int32(b)}
	}
	ix.slots = ns
}

// probe returns the bucket of row ids whose projection equals svals
// (parallel to ix.cols), or nil. The returned slice is shared — callers
// must not mutate it.
func (ix *index) probe(r *Relation, svals Tuple) []int32 {
	if len(ix.slots) == 0 {
		return nil
	}
	fp := fingerprint(svals)
	mask := uint64(len(ix.slots) - 1)
	for i := fp & mask; ; i = (i + 1) & mask {
		s := ix.slots[i]
		if s.b < 0 {
			return nil
		}
		if s.fp == fp {
			rep := ix.buckets[s.b][0]
			off := int(rep) * r.arity
			eq := true
			for j, c := range ix.cols {
				if r.data[off+c] != svals[j] {
					eq = false
					break
				}
			}
			if eq {
				return ix.buckets[s.b]
			}
		}
	}
}

// Match returns the row ids of tuples whose projection onto cols equals
// vals (parallel slices; cols need not be sorted). With empty cols it
// returns all row ids. The returned slice is a shared index bucket —
// callers must not mutate or retain it across an Insert.
func (r *Relation) Match(cols []int, vals []int32) []int32 {
	got := r.match(cols, vals)
	if r.ref != nil {
		r.ref.verifyMatch(cols, vals, got)
	}
	return got
}

func (r *Relation) match(cols []int, vals []int32) []int32 {
	if len(cols) == 0 {
		out := make([]int32, r.n)
		for i := range out {
			out[i] = int32(i)
		}
		return out
	}
	// Fast path: the engine's join always probes with ascending columns.
	ascending := true
	for i := 1; i < len(cols); i++ {
		if cols[i] <= cols[i-1] {
			ascending = false
			break
		}
	}
	scols, svals := cols, Tuple(vals)
	if !ascending {
		type cv struct {
			c int
			v int32
		}
		cvs := make([]cv, len(cols))
		for i := range cols {
			cvs[i] = cv{cols[i], vals[i]}
		}
		sort.Slice(cvs, func(i, j int) bool { return cvs[i].c < cvs[j].c })
		sc := make([]int, len(cvs))
		sv := make(Tuple, len(cvs))
		for i, x := range cvs {
			sc[i] = x.c
			sv[i] = x.v
		}
		scols, svals = sc, sv
	}
	return r.indexFor(scols).probe(r, svals)
}

// indexFor returns (building if absent) the index for the given ascending
// bound-column set.
func (r *Relation) indexFor(scols []int) *index {
	mask := colMask(scols)
	r.mu.RLock()
	ix, ok := r.indexes[mask]
	r.mu.RUnlock()
	if !ok {
		// Double-checked: another worker may have built this index while we
		// waited for the write lock. Building under the lock reads the
		// arena, which is frozen for the duration of a pass.
		r.mu.Lock()
		if ix, ok = r.indexes[mask]; !ok {
			ix = &index{cols: append([]int(nil), scols...)}
			for i := 0; i < r.n; i++ {
				ix.add(r, int32(i))
			}
			if r.indexes == nil {
				r.indexes = make(map[uint64]*index)
			}
			r.indexes[mask] = ix
		}
		r.mu.Unlock()
	}
	return ix
}

// EnsureIndex builds (if absent) the bound-column index for cols, which
// must be ascending. The join planner calls it at pass barriers for the
// index signatures the pass's probes will use, so Parallel workers find
// every bucket already built instead of contending on the lazy
// double-checked build mid-pass. Empty cols is a no-op (unconstrained
// scans read the arena directly).
func (r *Relation) EnsureIndex(cols []int) {
	if len(cols) == 0 {
		return
	}
	r.indexFor(cols)
}

// Clone returns a copy-on-write snapshot: O(1), sharing the arena and
// membership table with the receiver until either side inserts (indexes
// are not shared; they rebuild on demand). Cloning a frozen relation is
// safe concurrently with readers; mutation stays single-goroutine.
func (r *Relation) Clone() *Relation {
	r.shared.Store(true)
	c := &Relation{arity: r.arity, data: r.data, n: r.n, table: r.table}
	c.shared.Store(true)
	if r.ref != nil {
		c.ref = r.ref.clone()
	}
	return c
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

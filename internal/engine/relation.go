package engine

import (
	"sort"
	"sync"
)

// Tuple is a row of interned constant ids.
type Tuple []int32

// tupleKey encodes a tuple as a compact string for set membership and
// index keys.
func tupleKey(t Tuple) string {
	b := make([]byte, 0, len(t)*4)
	for _, v := range t {
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// projKey encodes the projection of t onto cols (cols ascending).
func projKey(t Tuple, cols []int) string {
	b := make([]byte, 0, len(cols)*4)
	for _, c := range cols {
		v := t[c]
		b = append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
	}
	return string(b)
}

// Relation is a set of tuples of fixed arity with hash indexes built on
// demand per bound-column signature. Insertion order is preserved, which
// keeps evaluation deterministic.
//
// Tuples and the membership set only mutate at evaluation merge barriers,
// on a single goroutine; the lazily built indexes, however, can be created
// during a pass while Parallel workers probe the relation concurrently, so
// mu guards the index map. A published index is immutable until the next
// Insert (which happens only after all workers have stopped).
type Relation struct {
	arity   int
	tuples  []Tuple
	set     map[string]struct{}
	mu      sync.RWMutex // guards indexes
	indexes map[uint64]*index
}

type index struct {
	cols    []int // ascending
	buckets map[string][]int
}

// NewRelation returns an empty relation of the given arity.
func NewRelation(arity int) *Relation {
	return &Relation{
		arity: arity,
		set:   make(map[string]struct{}),
	}
}

// Arity returns the relation's arity.
func (r *Relation) Arity() int { return r.arity }

// Len returns the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Tuples returns the stored tuples in insertion order. The caller must not
// mutate them.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Contains reports membership.
func (r *Relation) Contains(t Tuple) bool {
	_, ok := r.set[tupleKey(t)]
	return ok
}

// Insert adds t (copied) and reports whether it was new.
func (r *Relation) Insert(t Tuple) bool {
	k := tupleKey(t)
	if _, ok := r.set[k]; ok {
		return false
	}
	cp := make(Tuple, len(t))
	copy(cp, t)
	r.set[k] = struct{}{}
	idx := len(r.tuples)
	r.tuples = append(r.tuples, cp)
	r.mu.Lock()
	for _, ix := range r.indexes {
		pk := projKey(cp, ix.cols)
		ix.buckets[pk] = append(ix.buckets[pk], idx)
	}
	r.mu.Unlock()
	return true
}

// colMask returns the bitmask signature of a bound-column set.
func colMask(cols []int) uint64 {
	var m uint64
	for _, c := range cols {
		m |= 1 << uint(c)
	}
	return m
}

// Match returns the indices of tuples whose projection onto cols equals
// vals (parallel slices; cols need not be sorted). With empty cols it
// returns all tuple indices.
func (r *Relation) Match(cols []int, vals []int32) []int {
	if len(cols) == 0 {
		out := make([]int, len(r.tuples))
		for i := range out {
			out[i] = i
		}
		return out
	}
	// Fast path: the engine's join always probes with ascending columns.
	ascending := true
	for i := 1; i < len(cols); i++ {
		if cols[i] <= cols[i-1] {
			ascending = false
			break
		}
	}
	scols, svals := cols, Tuple(vals)
	if !ascending {
		type cv struct {
			c int
			v int32
		}
		cvs := make([]cv, len(cols))
		for i := range cols {
			cvs[i] = cv{cols[i], vals[i]}
		}
		sort.Slice(cvs, func(i, j int) bool { return cvs[i].c < cvs[j].c })
		sc := make([]int, len(cvs))
		sv := make(Tuple, len(cvs))
		for i, x := range cvs {
			sc[i] = x.c
			sv[i] = x.v
		}
		scols, svals = sc, sv
	}
	mask := colMask(scols)
	r.mu.RLock()
	ix, ok := r.indexes[mask]
	r.mu.RUnlock()
	if !ok {
		// Double-checked: another worker may have built this index while we
		// waited for the write lock. Building under the lock reads tuples,
		// which are frozen for the duration of a pass.
		r.mu.Lock()
		if ix, ok = r.indexes[mask]; !ok {
			ix = &index{cols: append([]int(nil), scols...), buckets: make(map[string][]int)}
			for i, t := range r.tuples {
				pk := projKey(t, ix.cols)
				ix.buckets[pk] = append(ix.buckets[pk], i)
			}
			if r.indexes == nil {
				r.indexes = make(map[uint64]*index)
			}
			r.indexes[mask] = ix
		}
		r.mu.Unlock()
	}
	return ix.buckets[tupleKey(svals)]
}

// Tuple returns the i-th tuple.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Clone returns a deep copy (indexes are not copied; they rebuild on
// demand).
func (r *Relation) Clone() *Relation {
	c := NewRelation(r.arity)
	for _, t := range r.tuples {
		c.Insert(t)
	}
	return c
}

// Package engine is the bottom-up evaluation substrate: interned constants,
// indexed tuple relations, and naive / semi-naive fixpoint evaluation of
// Datalog programs, including the runtime boolean-cut optimization of
// Section 3.1 of the paper (a rule defining a boolean predicate is retired
// from the fixpoint computation once the predicate becomes true).
package engine

import "sync"

// AnonID is the interned id of the reserved constant "_" used to fill
// anonymous head arguments produced by the connected-component rewrite
// (the argument position is existential, so any witness value is
// admissible; it is dropped entirely once projections are pushed).
const AnonID int32 = 0

// Symbols interns constant names to dense int32 ids. Id 0 is reserved for
// the anonymous constant "_". The interner is safe for concurrent use: the
// Parallel evaluation strategy lets workers intern numerals through the
// succ builtin while others decode names. Which worker wins a concurrent
// Intern race only affects the private numeric ids, never any observable
// output — every comparison and answer decodes ids back to names.
type Symbols struct {
	mu    sync.RWMutex
	names []string
	ids   map[string]int32
	// shared marks names/ids as referenced by a Clone sibling; the next
	// Intern that would mutate them copies first. A shared map is never
	// written, so clones may read it concurrently under their own locks.
	shared bool
}

// NewSymbols returns a fresh interner with "_" pre-interned as id 0.
func NewSymbols() *Symbols {
	s := &Symbols{ids: make(map[string]int32)}
	s.Intern("_")
	return s
}

// Intern returns the id for name, assigning a new one if needed.
func (s *Symbols) Intern(name string) int32 {
	s.mu.RLock()
	id, ok := s.ids[name]
	s.mu.RUnlock()
	if ok {
		return id
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if id, ok := s.ids[name]; ok {
		return id
	}
	if s.shared {
		ids := make(map[string]int32, len(s.ids)+1)
		for k, v := range s.ids {
			ids[k] = v
		}
		s.ids = ids
		s.names = append(make([]string, 0, len(s.names)+8), s.names...)
		s.shared = false
	}
	id = int32(len(s.names))
	s.names = append(s.names, name)
	s.ids[name] = id
	return id
}

// Lookup returns the id for name without interning.
func (s *Symbols) Lookup(name string) (int32, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	id, ok := s.ids[name]
	return id, ok
}

// Name returns the constant name for id.
func (s *Symbols) Name(id int32) string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.names[id]
}

// Len returns the number of interned constants.
func (s *Symbols) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}

// Clone returns an independent copy of the interner, copy-on-write: both
// sides share names/ids until one interns a new constant, which copies
// its view first. Clone is O(1) instead of O(#constants).
func (s *Symbols) Clone() *Symbols {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.shared = true
	return &Symbols{names: s.names, ids: s.ids, shared: true}
}

// Package engine is the bottom-up evaluation substrate: interned constants,
// indexed tuple relations, and naive / semi-naive fixpoint evaluation of
// Datalog programs, including the runtime boolean-cut optimization of
// Section 3.1 of the paper (a rule defining a boolean predicate is retired
// from the fixpoint computation once the predicate becomes true).
package engine

// AnonID is the interned id of the reserved constant "_" used to fill
// anonymous head arguments produced by the connected-component rewrite
// (the argument position is existential, so any witness value is
// admissible; it is dropped entirely once projections are pushed).
const AnonID int32 = 0

// Symbols interns constant names to dense int32 ids. Id 0 is reserved for
// the anonymous constant "_".
type Symbols struct {
	names []string
	ids   map[string]int32
}

// NewSymbols returns a fresh interner with "_" pre-interned as id 0.
func NewSymbols() *Symbols {
	s := &Symbols{ids: make(map[string]int32)}
	s.Intern("_")
	return s
}

// Intern returns the id for name, assigning a new one if needed.
func (s *Symbols) Intern(name string) int32 {
	if id, ok := s.ids[name]; ok {
		return id
	}
	id := int32(len(s.names))
	s.names = append(s.names, name)
	s.ids[name] = id
	return id
}

// Lookup returns the id for name without interning.
func (s *Symbols) Lookup(name string) (int32, bool) {
	id, ok := s.ids[name]
	return id, ok
}

// Name returns the constant name for id.
func (s *Symbols) Name(id int32) string { return s.names[id] }

// Len returns the number of interned constants.
func (s *Symbols) Len() int { return len(s.names) }

// Clone returns an independent copy of the interner.
func (s *Symbols) Clone() *Symbols {
	c := &Symbols{
		names: append([]string(nil), s.names...),
		ids:   make(map[string]int32, len(s.ids)),
	}
	for k, v := range s.ids {
		c.ids[k] = v
	}
	return c
}

package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// Incremental maintenance must match recomputation from scratch, on
// random edge streams over the transitive-closure program.
func TestUpdateMatchesRecomputation(t *testing.T) {
	p := mustParse(t, tcSrc)
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(5)
		base := NewDatabase()
		for i := 0; i < n; i++ {
			base.Add("p", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		res, err := Eval(p, base, Options{})
		if err != nil {
			t.Fatal(err)
		}
		// Stream three batches of additions.
		full := base.Clone()
		for batch := 0; batch < 3; batch++ {
			added := NewDatabase()
			for i := 0; i < 1+rng.Intn(4); i++ {
				x, y := fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n))
				added.Add("p", x, y)
				full.Add("p", x, y)
			}
			res, err = Update(p, res, added, Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := Eval(p, full, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(res.DB.Facts("a")) != fmt.Sprint(want.DB.Facts("a")) {
				t.Fatalf("trial %d batch %d: incremental diverged\ninc:  %v\nfull: %v",
					trial, batch, res.DB.Facts("a"), want.DB.Facts("a"))
			}
		}
	}
}

// The point of Update: work proportional to the change, not the database.
func TestUpdateIsIncremental(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := NewDatabase()
	for i := 0; i < 300; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fullDerivs := res.Stats.Derivations
	added := NewDatabase()
	added.Add("p", "301", "302") // a disconnected edge
	upd, err := Update(p, res, added, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Stats.Derivations > 10 {
		t.Errorf("disconnected addition should do O(1) work, did %d derivations (full run: %d)",
			upd.Stats.Derivations, fullDerivs)
	}
	if upd.DB.Count("a") != res.DB.Count("a")+1 {
		t.Errorf("a count = %d, want %d", upd.DB.Count("a"), res.DB.Count("a")+1)
	}
}

func TestUpdateDuplicateAdditionIsNoop(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(5)
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	added := NewDatabase()
	added.Add("p", "0", "1") // already present
	upd, err := Update(p, res, added, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if upd.Stats.Derivations != 0 || upd.DB.Count("a") != res.DB.Count("a") {
		t.Errorf("duplicate addition did work: %+v", upd.Stats)
	}
}

func TestUpdateRejectsDerivedAndNegation(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(3)
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := NewDatabase()
	bad.Add("a", "9", "9")
	if _, err := Update(p, res, bad, Options{}); err == nil {
		t.Error("derived additions must be rejected")
	}
	neg := mustParse(t, `
only(X) :- n(X), not a(X,X).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- only(X).
`)
	nres, err := Eval(neg, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	add := NewDatabase()
	add.Add("p", "7", "8")
	if _, err := Update(neg, nres, add, Options{}); err == nil {
		t.Error("negation must be rejected")
	}
}

// Provenance continuity: facts derived before and after the update both
// have derivation trees.
func TestUpdateProvenanceContinuity(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(3)
	res, err := Eval(p, db, Options{TrackProvenance: true})
	if err != nil {
		t.Fatal(err)
	}
	added := NewDatabase()
	added.Add("p", "3", "4")
	upd, err := Update(p, res, added, Options{TrackProvenance: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range [][]string{{"0", "3"}, {"0", "4"}} {
		if _, ok := upd.Derivation("a", row); !ok {
			t.Errorf("no derivation for a(%v) after update", row)
		}
	}
}

// DRed retraction must match recomputation on random edge streams, with
// interleaved additions.
func TestRetractMatchesRecomputation(t *testing.T) {
	p := mustParse(t, tcSrc)
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 10; trial++ {
		n := 4 + rng.Intn(5)
		full := NewDatabase()
		var edges [][2]string
		for i := 0; i < 2*n; i++ {
			x, y := fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n))
			if full.Add("p", x, y) {
				edges = append(edges, [2]string{x, y})
			}
		}
		res, err := Eval(p, full, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for batch := 0; batch < 4 && len(edges) > 0; batch++ {
			if rng.Intn(2) == 0 && len(edges) > 1 {
				// Remove a random known edge.
				i := rng.Intn(len(edges))
				e := edges[i]
				edges = append(edges[:i], edges[i+1:]...)
				removed := NewDatabase()
				removed.Add("p", e[0], e[1])
				res, err = Retract(p, res, removed, Options{})
				if err != nil {
					t.Fatal(err)
				}
			} else {
				x, y := fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n))
				added := NewDatabase()
				added.Add("p", x, y)
				dup := false
				for _, e := range edges {
					if e[0] == x && e[1] == y {
						dup = true
					}
				}
				if !dup {
					edges = append(edges, [2]string{x, y})
				}
				res, err = Update(p, res, added, Options{})
				if err != nil {
					t.Fatal(err)
				}
			}
			want := NewDatabase()
			for _, e := range edges {
				want.Add("p", e[0], e[1])
			}
			ref, err := Eval(p, want, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if fmt.Sprint(res.DB.Facts("a")) != fmt.Sprint(ref.DB.Facts("a")) {
				t.Fatalf("trial %d batch %d: diverged\ninc:  %v\nfull: %v",
					trial, batch, res.DB.Facts("a"), ref.DB.Facts("a"))
			}
			if fmt.Sprint(res.DB.Facts("p")) != fmt.Sprint(ref.DB.Facts("p")) {
				t.Fatalf("trial %d batch %d: base relation diverged", trial, batch)
			}
		}
	}
}

// Retracting one edge of a diamond keeps the closure facts that survive
// via the other path (re-derivation).
func TestRetractRederivesAlternatives(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := NewDatabase()
	db.Add("p", "0", "1")
	db.Add("p", "0", "2")
	db.Add("p", "1", "3")
	db.Add("p", "2", "3")
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	removed := NewDatabase()
	removed.Add("p", "1", "3")
	upd, err := Retract(p, res, removed, Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"0,1": true, "0,2": true, "0,3": true, "2,3": true}
	got := map[string]bool{}
	for _, row := range upd.DB.Facts("a") {
		got[row[0]+","+row[1]] = true
	}
	if len(got) != len(want) {
		t.Fatalf("a = %v", upd.DB.Facts("a"))
	}
	for k := range want {
		if !got[k] {
			t.Errorf("missing %s (0,3 must survive via 0->2->3)", k)
		}
	}
}

func TestRetractRejectsDerivedAndMissing(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(4)
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	bad := NewDatabase()
	bad.Add("a", "0", "1")
	if _, err := Retract(p, res, bad, Options{}); err == nil {
		t.Error("derived retractions must be rejected")
	}
	// Removing an absent fact is a no-op.
	absent := NewDatabase()
	absent.Add("p", "77", "78")
	upd, err := Retract(p, res, absent, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if upd.DB.Count("a") != res.DB.Count("a") {
		t.Error("absent retraction changed the closure")
	}
}

// Provenance stays well-founded across a retraction.
func TestRetractProvenance(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := NewDatabase()
	db.Add("p", "0", "1")
	db.Add("p", "0", "2")
	db.Add("p", "1", "3")
	db.Add("p", "2", "3")
	res, err := Eval(p, db, Options{TrackProvenance: true})
	if err != nil {
		t.Fatal(err)
	}
	removed := NewDatabase()
	removed.Add("p", "1", "3")
	upd, err := Retract(p, res, removed, Options{TrackProvenance: true})
	if err != nil {
		t.Fatal(err)
	}
	tree, ok := upd.Derivation("a", []string{"0", "3"})
	if !ok {
		t.Fatal("a(0,3) lost its derivation")
	}
	var leaves []string
	var walk func(n *Tree)
	walk = func(n *Tree) {
		if len(n.Children) == 0 {
			leaves = append(leaves, fmt.Sprint(upd.RowStrings(n.Fact.Row)))
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)
	for _, l := range leaves {
		if l == "[1 3]" {
			t.Errorf("justification cites the removed edge: %v", leaves)
		}
	}
}

package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"existdlog/internal/parser"
)

// orderedFacts decodes a relation's tuples to constant names in insertion
// order (DB.Facts sorts; here the order itself is under test — the
// Parallel strategy promises to reproduce SemiNaive's insertion order
// exactly, which is what keeps downstream output byte-identical).
func orderedFacts(res *Result, key string) [][]string {
	rel, ok := res.DB.Lookup(key)
	if !ok {
		return nil
	}
	out := make([][]string, 0, rel.Len())
	for _, t := range rel.Tuples() {
		out = append(out, res.RowStrings(t))
	}
	return out
}

// TestStrategiesAgree is the differential harness of ISSUE 1: hundreds of
// random programs (positive-recursive and stratified-negated), random
// databases, every Strategy × BooleanCut × ReorderJoins combination, with
// random Parallel worker counts. Invariants checked:
//
//   - query answers always equal the no-cut naive reference (the cut may
//     under-compute non-query predicates but never the query);
//   - without the cut, every strategy derives exactly the reference
//     fixpoint, relation by relation, with equal FactsDerived;
//   - Parallel is bit-identical to SemiNaive under the same toggles: full
//     Stats, per-relation insertion order, and the complete per-rule /
//     per-pass trace metrics (runs evaluate with Trace set), not just set
//     equality.
//
// Run under -race in CI this also exercises the concurrent index builds
// and symbol interning.
func TestStrategiesAgree(t *testing.T) {
	defer checkNoLeakedGoroutines(t)()
	rng := rand.New(rand.NewSource(424242))
	trials := 220
	for trial := 0; trial < trials; trial++ {
		var src string
		if trial%2 == 0 {
			src = randomProgram(rng)
		} else {
			src = randomStratifiedProgram(rng)
		}
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		db := NewDatabase()
		n := 3 + rng.Intn(5)
		for i := 0; i < 2*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			db.Add("f", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}

		ref, err := Eval(p, db, Options{Strategy: Naive})
		if err != nil {
			t.Fatalf("trial %d reference: %v\n%s", trial, err, src)
		}
		refAnswers := fmt.Sprint(ref.Answers(p.Query))

		for _, cut := range []bool{false, true} {
			for _, reorder := range []bool{false, true} {
				// SemiNaive result per toggle pair, kept to compare the
				// Parallel run against bit-for-bit.
				var sn *Result
				for _, strat := range []Strategy{Naive, SemiNaive, Parallel} {
					opt := Options{Strategy: strat, BooleanCut: cut, ReorderJoins: reorder, Trace: true}
					if strat == Parallel {
						opt.Workers = 1 + rng.Intn(8)
					}
					res, err := Eval(p, db, opt)
					if err != nil {
						t.Fatalf("trial %d strat=%d cut=%v reorder=%v: %v\n%s",
							trial, strat, cut, reorder, err, src)
					}
					if got := fmt.Sprint(res.Answers(p.Query)); got != refAnswers {
						t.Fatalf("trial %d strat=%d cut=%v reorder=%v: answers diverge\ngot: %s\nref: %s\n%s",
							trial, strat, cut, reorder, got, refAnswers, src)
					}
					if !cut {
						// Without retirement every strategy computes the full
						// fixpoint: same relations, same number of new facts.
						if res.Stats.FactsDerived != ref.Stats.FactsDerived {
							t.Fatalf("trial %d strat=%d reorder=%v: FactsDerived %d, reference %d\n%s",
								trial, strat, reorder, res.Stats.FactsDerived, ref.Stats.FactsDerived, src)
						}
						for key := range p.Derived {
							if fmt.Sprint(res.DB.Facts(key)) != fmt.Sprint(ref.DB.Facts(key)) {
								t.Fatalf("trial %d strat=%d reorder=%v: %s diverges from reference\n%s",
									trial, strat, reorder, key, src)
							}
						}
					}
					switch strat {
					case SemiNaive:
						sn = res
					case Parallel:
						if res.Stats != sn.Stats {
							t.Fatalf("trial %d cut=%v reorder=%v: parallel stats diverge\nsemi-naive: %+v\nparallel:   %+v\n%s",
								trial, cut, reorder, sn.Stats, res.Stats, src)
						}
						if !reflect.DeepEqual(res.Trace, sn.Trace) {
							t.Fatalf("trial %d cut=%v reorder=%v: parallel per-rule metrics diverge\nsemi-naive: %+v\nparallel:   %+v\n%s",
								trial, cut, reorder, sn.Trace, res.Trace, src)
						}
						for key := range p.Derived {
							a, b := orderedFacts(sn, key), orderedFacts(res, key)
							if fmt.Sprint(a) != fmt.Sprint(b) {
								t.Fatalf("trial %d cut=%v reorder=%v: %s insertion order diverges\nsemi-naive: %v\nparallel:   %v\n%s",
									trial, cut, reorder, key, a, b, src)
							}
						}
					}
				}

				// ISSUE 8 satellite 3: re-run SemiNaive and Parallel with the
				// map-of-strings reference storage mirrored into every
				// relation (refcheck.go verifies newness, order, membership,
				// and probes operation by operation and panics on the first
				// divergence), then assert the mirror-on results are
				// bit-identical to the mirror-off ones — answers, Stats,
				// Trace, and per-relation insertion order. Every 4th trial:
				// the mirror's brute-force Match verification is quadratic.
				if trial%4 == 0 {
					func() {
						refCheckEnabled = true
						defer func() { refCheckEnabled = false }()
						for _, strat := range []Strategy{SemiNaive, Parallel} {
							opt := Options{Strategy: strat, BooleanCut: cut, ReorderJoins: reorder, Trace: true}
							if strat == Parallel {
								opt.Workers = 4
							}
							res, err := Eval(p, db, opt)
							if err != nil {
								t.Fatalf("trial %d refcheck strat=%d cut=%v reorder=%v: %v\n%s",
									trial, strat, cut, reorder, err, src)
							}
							if got := fmt.Sprint(res.Answers(p.Query)); got != refAnswers {
								t.Fatalf("trial %d refcheck strat=%d: answers diverge\ngot: %s\nref: %s\n%s",
									trial, strat, got, refAnswers, src)
							}
							if res.Stats != sn.Stats {
								t.Fatalf("trial %d refcheck strat=%d: stats diverge\nmirror: %+v\nplain:  %+v\n%s",
									trial, strat, res.Stats, sn.Stats, src)
							}
							if !reflect.DeepEqual(res.Trace, sn.Trace) {
								t.Fatalf("trial %d refcheck strat=%d: trace diverges\n%s", trial, strat, src)
							}
							for key := range p.Derived {
								a, b := orderedFacts(sn, key), orderedFacts(res, key)
								if fmt.Sprint(a) != fmt.Sprint(b) {
									t.Fatalf("trial %d refcheck strat=%d: %s insertion order diverges\nplain:  %v\nmirror: %v\n%s",
										trial, strat, key, a, b, src)
								}
							}
						}
					}()
				}
			}
		}
	}
}

// TestFactLimitExactAcrossStrategies pins down MaxFacts/ErrFactLimit
// behavior directly (previously only enforced, never tested): a limit
// equal to the fixpoint size succeeds with FactsDerived exactly at the
// limit, any smaller limit fails with ErrFactLimit — identically for
// Naive, SemiNaive, and Parallel. The parallel merge must reject the
// overshooting insert, not error after the fact.
func TestFactLimitExactAcrossStrategies(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(10)
	full, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	limit := full.Stats.FactsDerived // 55: closure of a 10-edge chain
	if limit != 55 {
		t.Fatalf("fixpoint size = %d, want 55", limit)
	}
	for _, strat := range []Strategy{Naive, SemiNaive, Parallel} {
		opt := Options{Strategy: strat, MaxFacts: limit}
		if strat == Parallel {
			opt.Workers = 4
		}
		res, err := Eval(p, db, opt)
		if err != nil {
			t.Fatalf("strat=%d: limit == fixpoint must succeed: %v", strat, err)
		}
		if res.Stats.FactsDerived != limit {
			t.Errorf("strat=%d: FactsDerived = %d, want exactly %d", strat, res.Stats.FactsDerived, limit)
		}
		for _, mf := range []int{limit - 1, 10, 1} {
			opt.MaxFacts = mf
			if _, err := Eval(p, db, opt); err != ErrFactLimit {
				t.Errorf("strat=%d MaxFacts=%d: err = %v, want ErrFactLimit", strat, mf, err)
			}
		}
	}
}

package engine

import (
	"testing"

	"existdlog/internal/leakcheck"
)

// checkNoLeakedGoroutines adapts the shared leak detector to this
// package's historical helper name. Use as
//
//	defer checkNoLeakedGoroutines(t)()
func checkNoLeakedGoroutines(t *testing.T) func() {
	t.Helper()
	return leakcheck.Check(t)
}

package engine

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// checkNoLeakedGoroutines fails the test if the goroutine count has not
// returned to (at most) the baseline captured when the helper was called.
// Use as
//
//	defer checkNoLeakedGoroutines(t)()
//
// around code that spawns workers: the returned func polls with a grace
// period — workers are expected to drain promptly but asynchronously after
// a cancellation or injected fault — and on timeout dumps all goroutine
// stacks so the leaked worker is identifiable.
func checkNoLeakedGoroutines(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		var buf bytes.Buffer
		_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
		t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s", n, base, buf.String())
	}
}

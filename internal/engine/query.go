package engine

import (
	"sort"

	"existdlog/internal/ast"
)

// Answers returns the rows of the query predicate that match the goal atom
// q: constants in q act as selections, repeated variables as equality
// constraints. Rows are decoded to constant names and sorted. Positions
// holding anonymous variables are retained (callers drop them if desired);
// the engine computes whole tuples of the (already projected) query
// predicate.
func (res *Result) Answers(q ast.Atom) [][]string {
	rel, ok := res.DB.Lookup(q.Key())
	if !ok {
		return nil
	}
	if rel.Arity() != len(q.Args) {
		return nil
	}
	firstSlot := make(map[string]int)
	var out [][]string
	for ti := 0; ti < rel.Len(); ti++ {
		t := rel.Tuple(ti)
		ok := true
		for k := range firstSlot {
			delete(firstSlot, k)
		}
		for i, a := range q.Args {
			switch a.Kind {
			case ast.Constant:
				id, found := res.DB.Syms.Lookup(a.Name)
				if !found || t[i] != id {
					ok = false
				}
			case ast.Variable:
				if a.IsAnon() {
					continue
				}
				if j, seen := firstSlot[a.Name]; seen {
					if t[j] != t[i] {
						ok = false
					}
				} else {
					firstSlot[a.Name] = i
				}
			}
			if !ok {
				break
			}
		}
		if !ok {
			continue
		}
		row := make([]string, len(t))
		for i, id := range t {
			row[i] = res.DB.Syms.Name(id)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// AnswerCount returns the number of matching rows for the goal atom.
func (res *Result) AnswerCount(q ast.Atom) int { return len(res.Answers(q)) }

// Tree is a derivation tree (Section 1.1 of the paper): the root fact, the
// rule that produced it (-1 for base facts), and the subtrees for the body
// facts of that rule application.
type Tree struct {
	Fact     FactRef
	Rule     int
	Children []*Tree
}

// Size returns the number of nodes in the tree.
func (t *Tree) Size() int {
	n := 1
	for _, c := range t.Children {
		n += c.Size()
	}
	return n
}

// Height returns the height of the tree (a base fact has height 1).
func (t *Tree) Height() int {
	h := 0
	for _, c := range t.Children {
		if ch := c.Height(); ch > h {
			h = ch
		}
	}
	return h + 1
}

// Derivation reconstructs the derivation tree of a derived fact recorded
// during an evaluation run with TrackProvenance. It returns false if the
// fact is unknown. Base facts yield single-node trees with Rule = -1.
// The justification recorded for each fact is its first derivation, whose
// body facts necessarily existed earlier, so the reconstruction always
// terminates.
func (res *Result) Derivation(key string, row []string) (*Tree, bool) {
	t := make(Tuple, len(row))
	for i, name := range row {
		id, ok := res.DB.Syms.Lookup(name)
		if !ok {
			return nil, false
		}
		t[i] = id
	}
	rel, ok := res.DB.Lookup(key)
	if !ok || !rel.Contains(t) {
		return nil, false
	}
	return res.buildTree(FactRef{Key: key, Row: t}), true
}

// RowStrings decodes a tuple of interned ids to constant names using the
// result's interner (for rendering derivation trees).
func (res *Result) RowStrings(row Tuple) []string {
	out := make([]string, len(row))
	for i, id := range row {
		out[i] = res.DB.Syms.Name(id)
	}
	return out
}

func (res *Result) buildTree(f FactRef) *Tree {
	if res.prov != nil {
		if m, ok := res.prov[f.Key]; ok {
			if j, ok := m.get(f.Row); ok {
				node := &Tree{Fact: f, Rule: j.Rule}
				for _, b := range j.Body {
					node.Children = append(node.Children, res.buildTree(b))
				}
				return node
			}
		}
	}
	return &Tree{Fact: f, Rule: -1}
}

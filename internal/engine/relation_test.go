package engine

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestRelationInsertDedup(t *testing.T) {
	r := NewRelation(2)
	if !r.Insert(Tuple{1, 2}) {
		t.Error("first insert should be new")
	}
	if r.Insert(Tuple{1, 2}) {
		t.Error("duplicate insert should report false")
	}
	if r.Len() != 1 {
		t.Errorf("len = %d", r.Len())
	}
	if !r.Contains(Tuple{1, 2}) || r.Contains(Tuple{2, 1}) {
		t.Error("membership broken")
	}
}

func TestRelationInsertCopies(t *testing.T) {
	r := NewRelation(2)
	row := Tuple{1, 2}
	r.Insert(row)
	row[0] = 99
	if !r.Contains(Tuple{1, 2}) {
		t.Error("Insert must copy the tuple")
	}
}

func TestRelationMatchUnbound(t *testing.T) {
	r := NewRelation(1)
	r.Insert(Tuple{1})
	r.Insert(Tuple{2})
	if got := r.Match(nil, nil); len(got) != 2 {
		t.Errorf("unbound match = %v", got)
	}
}

func TestRelationZeroArity(t *testing.T) {
	r := NewRelation(0)
	if !r.Insert(Tuple{}) {
		t.Error("empty tuple insert")
	}
	if r.Insert(Tuple{}) {
		t.Error("empty tuple is unique")
	}
	if len(r.Match(nil, nil)) != 1 {
		t.Error("zero-arity match")
	}
}

func TestRelationIndexMaintainedAcrossInserts(t *testing.T) {
	r := NewRelation(2)
	r.Insert(Tuple{1, 10})
	// Build the index on column 0.
	if got := r.Match([]int{0}, []int32{1}); len(got) != 1 {
		t.Fatalf("match = %v", got)
	}
	// Insert after the index exists: it must be maintained.
	r.Insert(Tuple{1, 20})
	if got := r.Match([]int{0}, []int32{1}); len(got) != 2 {
		t.Errorf("stale index: %v", got)
	}
}

func TestRelationMatchColumnOrderIrrelevant(t *testing.T) {
	r := NewRelation(3)
	r.Insert(Tuple{1, 2, 3})
	r.Insert(Tuple{1, 5, 3})
	a := r.Match([]int{0, 2}, []int32{1, 3})
	b := r.Match([]int{2, 0}, []int32{3, 1})
	if len(a) != 2 || len(b) != 2 {
		t.Errorf("matches: %v vs %v", a, b)
	}
}

// Property: Match(cols, vals) returns exactly the indices of tuples whose
// projection matches — checked against a brute-force scan over random
// relations and probes.
func TestRelationMatchProperty(t *testing.T) {
	type probe struct {
		Rows [][3]uint8
		Cols [2]uint8
		Vals [2]uint8
	}
	f := func(p probe) bool {
		r := NewRelation(3)
		for _, row := range p.Rows {
			r.Insert(Tuple{int32(row[0] % 5), int32(row[1] % 5), int32(row[2] % 5)})
		}
		cols := []int{int(p.Cols[0] % 3), int(p.Cols[1] % 3)}
		vals := []int32{int32(p.Vals[0] % 5), int32(p.Vals[1] % 5)}
		if cols[0] == cols[1] {
			cols = cols[:1]
			vals = vals[:1]
		}
		var got []int
		for _, ti := range r.Match(cols, vals) {
			got = append(got, int(ti))
		}
		sort.Ints(got)
		var want []int
		for i, tpl := range r.Tuples() {
			ok := true
			for j, c := range cols {
				if tpl[c] != vals[j] {
					ok = false
				}
			}
			if ok {
				want = append(want, i)
			}
		}
		return reflect.DeepEqual(got, want) || (len(got) == 0 && len(want) == 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: insertion order is preserved and dedup never loses a distinct
// tuple.
func TestRelationSetSemanticsProperty(t *testing.T) {
	f := func(rows [][2]uint8) bool {
		r := NewRelation(2)
		seen := map[[2]uint8]bool{}
		var order [][2]uint8
		for _, row := range rows {
			isNew := r.Insert(Tuple{int32(row[0]), int32(row[1])})
			if isNew != !seen[row] {
				return false
			}
			if !seen[row] {
				seen[row] = true
				order = append(order, row)
			}
		}
		if r.Len() != len(order) {
			return false
		}
		for i, tpl := range r.Tuples() {
			if tpl[0] != int32(order[i][0]) || tpl[1] != int32(order[i][1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSymbolsInternStable(t *testing.T) {
	s := NewSymbols()
	if s.Intern("_") != AnonID {
		t.Error("anon must be id 0")
	}
	a := s.Intern("alice")
	if s.Intern("alice") != a {
		t.Error("intern must be stable")
	}
	if s.Name(a) != "alice" {
		t.Errorf("Name = %q", s.Name(a))
	}
	if _, ok := s.Lookup("bob"); ok {
		t.Error("bob not interned yet")
	}
	c := s.Clone()
	c.Intern("bob")
	if _, ok := s.Lookup("bob"); ok {
		t.Error("clone must not share state")
	}
}

func TestDatabaseCloneIndependence(t *testing.T) {
	db := NewDatabase()
	db.Add("e", "1", "2")
	c := db.Clone()
	c.Add("e", "3", "4")
	c.Add("f", "x")
	if db.Count("e") != 1 || db.Has("f") {
		t.Error("clone mutated the original")
	}
}

func TestDatabaseArityPanic(t *testing.T) {
	db := NewDatabase()
	db.Add("e", "1", "2")
	defer func() {
		if recover() == nil {
			t.Error("arity mismatch should panic")
		}
	}()
	db.Relation("e", 3)
}

func TestDatabaseFactsSorted(t *testing.T) {
	db := NewDatabase()
	db.Add("e", "b", "1")
	db.Add("e", "a", "2")
	db.Add("e", "a", "1")
	facts := db.Facts("e")
	for i := 1; i < len(facts); i++ {
		if facts[i-1][0] > facts[i][0] ||
			(facts[i-1][0] == facts[i][0] && facts[i-1][1] > facts[i][1]) {
			t.Errorf("facts not sorted: %v", facts)
		}
	}
}

func TestActiveDomain(t *testing.T) {
	db := NewDatabase()
	db.Add("e", "1", "2")
	db.Add("f", "2")
	dom := db.ActiveDomain()
	if len(dom) != 2 {
		t.Errorf("domain = %v", dom)
	}
}

// Randomized stress: interleaved inserts and probes across many index
// signatures stay consistent.
func TestRelationIndexStress(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	r := NewRelation(3)
	var mirror []Tuple
	for step := 0; step < 2000; step++ {
		if rng.Intn(3) > 0 {
			tpl := Tuple{int32(rng.Intn(8)), int32(rng.Intn(8)), int32(rng.Intn(8))}
			if r.Insert(tpl) {
				mirror = append(mirror, append(Tuple(nil), tpl...))
			}
			continue
		}
		nCols := 1 + rng.Intn(3)
		cols := rng.Perm(3)[:nCols]
		vals := make([]int32, nCols)
		for i := range vals {
			vals[i] = int32(rng.Intn(8))
		}
		got := len(r.Match(cols, vals))
		want := 0
		for _, tpl := range mirror {
			ok := true
			for i, c := range cols {
				if tpl[c] != vals[i] {
					ok = false
				}
			}
			if ok {
				want++
			}
		}
		if got != want {
			t.Fatalf("step %d: match(%v,%v) = %d, want %d", step, cols, vals, got, want)
		}
	}
}

package engine

import (
	"fmt"
	"math/rand"
	"testing"

	"existdlog/internal/ast"
	"existdlog/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func chainDB(n int) *Database {
	db := NewDatabase()
	for i := 0; i < n; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	return db
}

const tcSrc = `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`

func TestTransitiveClosureChain(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(10)
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Chain 0->1->...->10 has 11*10/2 = 55 closure pairs.
	if got := res.DB.Count("a"); got != 55 {
		t.Errorf("closure size = %d, want 55", got)
	}
	// Input database untouched.
	if db.Has("a") {
		t.Error("Eval mutated the input database")
	}
	// Spot-check an answer.
	ans := res.Answers(ast.NewAtom("a", ast.C("0"), ast.V("Y")))
	if len(ans) != 10 {
		t.Errorf("answers from 0: %d, want 10", len(ans))
	}
}

func TestNaiveMatchesSemiNaive(t *testing.T) {
	p := mustParse(t, tcSrc)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 25; trial++ {
		db := NewDatabase()
		n := 3 + rng.Intn(10)
		edges := 1 + rng.Intn(3*n)
		for i := 0; i < edges; i++ {
			db.Add("p", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		sn, err := Eval(p, db, Options{Strategy: SemiNaive})
		if err != nil {
			t.Fatal(err)
		}
		nv, err := Eval(p, db, Options{Strategy: Naive})
		if err != nil {
			t.Fatal(err)
		}
		a, b := sn.DB.Facts("a"), nv.DB.Facts("a")
		if len(a) != len(b) {
			t.Fatalf("trial %d: semi-naive %d facts, naive %d", trial, len(a), len(b))
		}
		for i := range a {
			if fmt.Sprint(a[i]) != fmt.Sprint(b[i]) {
				t.Fatalf("trial %d: fact %d differs: %v vs %v", trial, i, a[i], b[i])
			}
		}
	}
}

func TestSemiNaiveFewerDerivations(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(40)
	sn, _ := Eval(p, db, Options{Strategy: SemiNaive})
	nv, _ := Eval(p, db, Options{Strategy: Naive})
	if sn.Stats.Derivations >= nv.Stats.Derivations {
		t.Errorf("semi-naive should derive fewer tuples: %d vs %d",
			sn.Stats.Derivations, nv.Stats.Derivations)
	}
	if sn.Stats.FactsDerived != nv.Stats.FactsDerived {
		t.Errorf("fact counts differ: %d vs %d", sn.Stats.FactsDerived, nv.Stats.FactsDerived)
	}
}

func TestSelfJoinAndConstants(t *testing.T) {
	p := mustParse(t, `
sib(X,Y) :- par(Z,X), par(Z,Y), neq(X,Y).
?- sib(X,Y).
`)
	db := NewDatabase()
	db.Add("par", "p1", "c1")
	db.Add("par", "p1", "c2")
	db.Add("par", "p2", "c3")
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	facts := res.DB.Facts("sib")
	if len(facts) != 2 {
		t.Fatalf("sib = %v", facts)
	}
}

func TestRepeatedVariableInLiteral(t *testing.T) {
	p := mustParse(t, `
loop(X) :- e(X,X).
?- loop(X).
`)
	db := NewDatabase()
	db.Add("e", "a", "a")
	db.Add("e", "a", "b")
	db.Add("e", "c", "c")
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DB.Count("loop"); got != 2 {
		t.Errorf("loop count = %d, want 2", got)
	}
}

func TestConstantInRule(t *testing.T) {
	p := mustParse(t, `
r(Y) :- e(1, Y).
?- r(Y).
`)
	db := NewDatabase()
	db.Add("e", "1", "a")
	db.Add("e", "2", "b")
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DB.Facts("r"); len(got) != 1 || got[0][0] != "a" {
		t.Errorf("r = %v", got)
	}
}

func TestBooleanCutRetiresRules(t *testing.T) {
	// Example 2 shape: once b2 holds, its rule (and the rule for the
	// predicate only it uses) retire.
	src := `
p(X) :- q1(X,Y), b2.
b2 :- q3(U,V), q4(V).
q4(X) :- q6(X).
?- p(X).
`
	p := mustParse(t, src)
	db := NewDatabase()
	for i := 0; i < 20; i++ {
		db.Add("q1", fmt.Sprint(i), fmt.Sprint(i+1))
		db.Add("q3", fmt.Sprint(i), fmt.Sprint(i))
		db.Add("q6", fmt.Sprint(i))
	}
	on, err := Eval(p, db, Options{BooleanCut: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Eval(p, db, Options{BooleanCut: false})
	if err != nil {
		t.Fatal(err)
	}
	if on.Stats.RulesRetired == 0 {
		t.Error("expected rules to retire with BooleanCut")
	}
	if got, want := on.DB.Count("p"), off.DB.Count("p"); got != want {
		t.Errorf("query answers differ under cut: %d vs %d", got, want)
	}
	if on.DB.Count("b2") != 1 {
		t.Errorf("b2 = %d", on.DB.Count("b2"))
	}
}

func TestBooleanCutFalseBooleanStaysFalse(t *testing.T) {
	p := mustParse(t, `
p(X) :- q1(X,Y), b2.
b2 :- q3(U,V).
?- p(X).
`)
	db := NewDatabase()
	db.Add("q1", "a", "b")
	res, err := Eval(p, db, Options{BooleanCut: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Count("p") != 0 || res.DB.Count("b2") != 0 {
		t.Errorf("p=%d b2=%d, want 0/0", res.DB.Count("p"), res.DB.Count("b2"))
	}
}

func TestDerivedSeedsHonored(t *testing.T) {
	// Uniform-equivalence inputs place facts in derived predicates.
	p := mustParse(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	db := NewDatabase()
	db.Add("p", "x", "z")
	db.Add("a", "z", "w") // seed for the derived predicate
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DB.Relation("a", 2).Contains(Tuple{
		res.DB.Syms.ids["x"], res.DB.Syms.ids["w"]}) {
		t.Errorf("a should contain (x,w) via the seed; facts: %v", res.DB.Facts("a"))
	}
}

func TestAnonymousHeadVariable(t *testing.T) {
	// Heads with anonymous variables (component-split output) evaluate to
	// the reserved constant.
	p := mustParse(t, `
p(X,_) :- q1(X,Y).
?- p(X,Y).
`)
	db := NewDatabase()
	db.Add("q1", "a", "b")
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	facts := res.DB.Facts("p")
	if len(facts) != 1 || facts[0][1] != "_" {
		t.Errorf("p = %v", facts)
	}
}

func TestSuccBuiltinCounting(t *testing.T) {
	p := mustParse(t, `
dist(Y, J) :- dist(X, I), e(X,Y), succ(I,J).
dist(Y, 1) :- e(0, Y).
?- dist(X,I).
`)
	db := NewDatabase()
	for i := 0; i < 5; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	facts := res.DB.Facts("dist")
	if len(facts) != 5 {
		t.Fatalf("dist = %v", facts)
	}
	if facts[4][0] != "5" || facts[4][1] != "5" {
		t.Errorf("dist[4] = %v", facts[4])
	}
}

func TestFactLimit(t *testing.T) {
	// succ over a cyclic graph diverges; the guard must trip.
	p := mustParse(t, `
dist(Y, J) :- dist(X, I), e(X,Y), succ(I,J).
dist(Y, 1) :- e(0, Y).
?- dist(X,I).
`)
	db := NewDatabase()
	db.Add("e", "0", "1")
	db.Add("e", "1", "0")
	_, err := Eval(p, db, Options{MaxFacts: 100})
	if err != ErrFactLimit {
		t.Errorf("err = %v, want ErrFactLimit", err)
	}
}

func TestIterationLimit(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(50)
	_, err := Eval(p, db, Options{MaxIterations: 3})
	if err != ErrIterationLimit {
		t.Errorf("err = %v, want ErrIterationLimit", err)
	}
}

func TestProvenanceTree(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(4)
	res, err := Eval(p, db, Options{TrackProvenance: true})
	if err != nil {
		t.Fatal(err)
	}
	tree, ok := res.Derivation("a", []string{"0", "4"})
	if !ok {
		t.Fatal("no derivation for a(0,4)")
	}
	if tree.Rule < 0 {
		t.Error("derived fact should cite a rule")
	}
	if tree.Height() < 2 {
		t.Errorf("tree height = %d", tree.Height())
	}
	// Leaves must be base facts.
	var walk func(n *Tree)
	var leaves int
	walk = func(n *Tree) {
		if len(n.Children) == 0 {
			leaves++
			if n.Rule != -1 {
				t.Errorf("leaf %v cites rule %d", n.Fact, n.Rule)
			}
			if n.Fact.Key != "p" {
				t.Errorf("leaf %v is not a base fact", n.Fact)
			}
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(tree)
	if leaves != 4 {
		t.Errorf("a(0,4) over a chain needs 4 base edges, got %d leaves", leaves)
	}
}

func TestEmptyProgramAndEmptyEDB(t *testing.T) {
	p := mustParse(t, tcSrc)
	res, err := Eval(p, NewDatabase(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Count("a") != 0 {
		t.Error("empty EDB should yield empty closure")
	}
	if !res.DB.Has("a") {
		t.Error("derived relation should exist even when empty")
	}
}

func TestCyclicGraphClosure(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := NewDatabase()
	n := 7
	for i := 0; i < n; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint((i+1)%n))
	}
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DB.Count("a"); got != n*n {
		t.Errorf("cycle closure = %d, want %d", got, n*n)
	}
}

func TestStatsDuplicates(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := NewDatabase()
	// Diamond: duplicates guaranteed (two paths 0->3).
	db.Add("p", "0", "1")
	db.Add("p", "0", "2")
	db.Add("p", "1", "3")
	db.Add("p", "2", "3")
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DuplicateHits == 0 {
		t.Error("diamond should produce duplicate derivations")
	}
	if res.Stats.Derivations != int64(res.Stats.FactsDerived)+res.Stats.DuplicateHits {
		t.Errorf("derivations %d != facts %d + dups %d",
			res.Stats.Derivations, res.Stats.FactsDerived, res.Stats.DuplicateHits)
	}
}

package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"existdlog/internal/ast"
	"existdlog/internal/parser"
)

// randomProgram builds a random Datalog program over a small vocabulary:
// unary/binary derived predicates, recursion, self-joins, booleans.
func randomProgram(rng *rand.Rand) string {
	derived := []string{"d1", "d2", "d3"}
	base := []string{"e", "f"}
	var sb strings.Builder
	n := 2 + rng.Intn(5)
	for i := 0; i < n; i++ {
		h := derived[rng.Intn(len(derived))]
		switch rng.Intn(6) {
		case 0:
			fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Y).\n", h, base[rng.Intn(2)])
		case 1:
			fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Z), %s(Z,Y).\n",
				h, base[rng.Intn(2)], derived[rng.Intn(3)])
		case 2:
			fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Z), %s(Z,Y).\n",
				h, derived[rng.Intn(3)], base[rng.Intn(2)])
		case 3:
			fmt.Fprintf(&sb, "%s(X,X) :- %s(X,Y), %s(Y,X).\n",
				h, base[rng.Intn(2)], base[rng.Intn(2)])
		case 4:
			fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Y), %s(Y,Y).\n",
				h, derived[rng.Intn(3)], base[rng.Intn(2)])
		case 5:
			fmt.Fprintf(&sb, "%s(X,Y) :- %s(Y,X).\n", h, derived[rng.Intn(3)])
		}
	}
	// Guarantee every derived predicate has at least one grounding rule so
	// programs are not trivially empty.
	for _, d := range derived {
		fmt.Fprintf(&sb, "%s(X,Y) :- e(X,Y).\n", d)
	}
	sb.WriteString("?- d1(X,Y).\n")
	return sb.String()
}

// randomStratifiedProgram extends randomProgram with two strata of
// negation (s1 negates the d-layer, top may negate s1) and an optional
// boolean guard, so the differential tests cover stratified negation and
// the boolean cut, not just positive recursion. The layering is fixed —
// d* < s1 < top — so every generated program is stratifiable.
func randomStratifiedProgram(rng *rand.Rand) string {
	base := randomProgram(rng)
	var sb strings.Builder
	sb.WriteString(strings.Replace(base, "?- d1(X,Y).\n", "", 1))
	switch rng.Intn(3) {
	case 0:
		sb.WriteString("s1(X) :- d1(X,Y), not d2(Y,X).\n")
	case 1:
		sb.WriteString("s1(X) :- d1(X,Y), not d3(X,X).\n")
	case 2:
		sb.WriteString("s1(X) :- e(X,Y), not d1(X,Y).\n")
	}
	if rng.Intn(2) == 0 {
		sb.WriteString("s1(X) :- d2(X,X).\n")
	}
	if rng.Intn(2) == 0 {
		sb.WriteString("flag :- d2(U,V).\ntop(X) :- d3(X,Y), flag.\n")
	}
	if rng.Intn(2) == 0 {
		sb.WriteString("top(X) :- d1(X,Y), not s1(Y).\n")
	}
	sb.WriteString("top(X) :- s1(X).\n?- top(X).\n")
	return sb.String()
}

// Naive and semi-naive evaluation must agree on every derived relation of
// random programs over random databases.
func TestNaiveSemiNaiveAgreeOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 40; trial++ {
		src := randomProgram(rng)
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		db := NewDatabase()
		n := 3 + rng.Intn(5)
		for i := 0; i < 2*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			db.Add("f", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		sn, err := Eval(p, db, Options{Strategy: SemiNaive})
		if err != nil {
			t.Fatalf("trial %d semi-naive: %v\n%s", trial, err, src)
		}
		nv, err := Eval(p, db, Options{Strategy: Naive})
		if err != nil {
			t.Fatalf("trial %d naive: %v\n%s", trial, err, src)
		}
		for _, pred := range []string{"d1", "d2", "d3"} {
			a, b := sn.DB.Facts(pred), nv.DB.Facts(pred)
			if fmt.Sprint(a) != fmt.Sprint(b) {
				t.Fatalf("trial %d: %s differs\nsemi-naive: %v\nnaive:      %v\nprogram:\n%s",
					trial, pred, a, b, src)
			}
		}
	}
}

// The boolean cut must never change query answers, on random programs
// extended with boolean guards.
func TestBooleanCutPreservesAnswersOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(2718))
	for trial := 0; trial < 30; trial++ {
		base := randomProgram(rng)
		src := strings.Replace(base, "?- d1(X,Y).\n", "", 1) +
			"top(X) :- d1(X,Y), flag.\nflag :- d2(U,V), marker(W).\n?- top(X).\n"
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		db := NewDatabase()
		n := 3 + rng.Intn(4)
		for i := 0; i < 2*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			db.Add("f", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		if rng.Intn(2) == 0 {
			db.Add("marker", "m") // sometimes the boolean can never hold
		}
		on, err := Eval(p, db, Options{BooleanCut: true})
		if err != nil {
			t.Fatal(err)
		}
		off, err := Eval(p, db, Options{BooleanCut: false})
		if err != nil {
			t.Fatal(err)
		}
		a, b := on.Answers(p.Query), off.Answers(p.Query)
		if fmt.Sprint(a) != fmt.Sprint(b) {
			t.Fatalf("trial %d: cut changed answers\nwith:    %v\nwithout: %v\nprogram:\n%s",
				trial, a, b, src)
		}
	}
}

// Provenance trees must be well-founded and grounded in the database for
// every derived fact of random runs.
func TestProvenanceWellFoundedOnRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(1618))
	for trial := 0; trial < 15; trial++ {
		src := randomProgram(rng)
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		db := NewDatabase()
		n := 3 + rng.Intn(3)
		for i := 0; i < 2*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			db.Add("f", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		res, err := Eval(p, db, Options{TrackProvenance: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, row := range res.DB.Facts("d1") {
			tree, ok := res.Derivation("d1", row)
			if !ok {
				t.Fatalf("trial %d: no derivation for d1(%v)", trial, row)
			}
			var check func(n *Tree) bool
			check = func(n *Tree) bool {
				rel, ok := res.DB.Lookup(n.Fact.Key)
				if !ok || !rel.Contains(n.Fact.Row) {
					return false
				}
				if len(n.Children) == 0 && n.Rule != -1 {
					return false
				}
				for _, c := range n.Children {
					if !check(c) {
						return false
					}
				}
				return true
			}
			if !check(tree) {
				t.Fatalf("trial %d: ill-founded tree for d1(%v)", trial, row)
			}
		}
	}
}

// Join reordering must never change results — random programs, random
// databases, both strategies.
func TestReorderJoinsPreservesResults(t *testing.T) {
	rng := rand.New(rand.NewSource(555))
	for trial := 0; trial < 30; trial++ {
		src := randomProgram(rng)
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		db := NewDatabase()
		n := 3 + rng.Intn(5)
		for i := 0; i < 2*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			db.Add("f", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		plain, err := Eval(p, db, Options{})
		if err != nil {
			t.Fatal(err)
		}
		reord, err := Eval(p, db, Options{ReorderJoins: true})
		if err != nil {
			t.Fatal(err)
		}
		for _, pred := range []string{"d1", "d2", "d3"} {
			if fmt.Sprint(plain.DB.Facts(pred)) != fmt.Sprint(reord.DB.Facts(pred)) {
				t.Fatalf("trial %d: reordering changed %s\n%s", trial, pred, src)
			}
		}
	}
}

// A badly ordered rule: the textual order joins a cross product first;
// reordering starts from the selective literal.
func TestReorderJoinsReducesProbes(t *testing.T) {
	p, err := parser.ParseProgram(`
ans(X,W) :- big(Y,Z), sel(X,Y), big(Z,W).
?- ans(X,W).
`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := 0; i < 60; i++ {
		db.Add("big", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	db.Add("sel", "s", "3")
	plain, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	reord, err := Eval(p, db, Options{ReorderJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(plain.DB.Facts("ans")) != fmt.Sprint(reord.DB.Facts("ans")) {
		t.Fatal("answers changed")
	}
	if reord.Stats.JoinProbes >= plain.Stats.JoinProbes {
		t.Errorf("reordering should reduce probes: %d vs %d",
			reord.Stats.JoinProbes, plain.Stats.JoinProbes)
	}
}

// Reordering must respect builtin binding requirements.
func TestReorderJoinsBuiltinsStayLegal(t *testing.T) {
	p, err := parser.ParseProgram(`
dist(Y,J) :- succ(I,J), dist(X,I), e(X,Y).
dist(Y,1) :- e(0,Y).
?- dist(X,I).
`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := 0; i < 5; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	// Textual order would hit succ with both arguments free in the
	// startup pass; reordering must postpone it.
	res, err := Eval(p, db, Options{ReorderJoins: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DB.Count("dist") != 5 {
		t.Errorf("dist = %v", res.DB.Facts("dist"))
	}

	// Negation + builtin mixes: the planner defers negated literals to
	// the tail and keeps builtin binding requirements, with answers
	// identical to the textual order under every strategy.
	mixes := []string{`
path(X,Y) :- e(X,Y).
path(X,Z) :- path(X,Y), e(Y,Z), not blocked(Y,Z), lt(X,Z).
?- path(X,Z).
`, `
r(Y,J) :- dist(X,I), succ(I,J), e(X,Y), not blocked(X,Y).
dist(Y,1) :- e(0,Y).
?- r(Y,J).
`}
	mdb := NewDatabase()
	for i := 0; i < 6; i++ {
		mdb.Add("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	mdb.Add("blocked", "2", "3")
	for _, src := range mixes {
		mp, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Eval(mp, mdb, Options{})
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		want := fmt.Sprint(plain.Answers(mp.Query))
		for _, strat := range []Strategy{SemiNaive, Parallel} {
			for run := 0; run < 2; run++ { // replanning must be deterministic
				res, err := Eval(mp, mdb, Options{ReorderJoins: true, Strategy: strat, Workers: 4})
				if err != nil {
					t.Fatalf("strat=%d: %v\n%s", strat, err, src)
				}
				if got := fmt.Sprint(res.Answers(mp.Query)); got != want {
					t.Fatalf("strat=%d run=%d: answers diverge\ngot:  %s\nwant: %s\n%s", strat, run, got, want, src)
				}
			}
		}
	}

	// The forced fallback: a body of nothing but unready builtins and a
	// negated literal has no legal starting point. The planner forces the
	// textually first builtin (whose bindings then make the next one
	// ready), so the inevitable unbound-builtin error is deterministic —
	// same error, every run, every strategy, planner on or off.
	bad, err := parser.ParseProgram(`
q(A,C) :- succ(A,B), succ(B,C), not blocked(A,C).
?- q(A,C).
`)
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, reorder := range []bool{false, true} {
		for _, strat := range []Strategy{SemiNaive, Parallel} {
			_, err := Eval(bad, mdb, Options{ReorderJoins: reorder, Strategy: strat, Workers: 4})
			if err == nil {
				t.Fatalf("reorder=%v strat=%d: unbound succ must error", reorder, strat)
			}
			msgs = append(msgs, err.Error())
		}
	}
	for _, m := range msgs[1:] {
		if m != msgs[0] {
			t.Fatalf("unbound-builtin error not deterministic: %q vs %q", msgs[0], m)
		}
	}
}

// arityConsistent reports whether every predicate key is used with one
// arity across rules, query, and facts. Program-internal consistency is
// already enforced by Validate; facts can still clash with the program (or
// each other), which Database.Relation treats as an upstream programming
// error and panics on — the fuzzer must filter those inputs out.
func arityConsistent(p *ast.Program, facts []ast.Atom) bool {
	arity := map[string]int{}
	check := func(a ast.Atom) bool {
		if n, ok := arity[a.Key()]; ok {
			return n == a.Arity()
		}
		arity[a.Key()] = a.Arity()
		return true
	}
	for _, r := range p.Rules {
		if !check(r.Head) {
			return false
		}
		for _, b := range r.Body {
			if !check(b) {
				return false
			}
		}
	}
	if p.Query.Pred != "" && !check(p.Query) {
		return false
	}
	for _, f := range facts {
		if !check(f) {
			return false
		}
	}
	return true
}

// FuzzEval feeds arbitrary program sources to all three evaluation
// strategies and cross-checks them: SemiNaive and Parallel must agree
// bit-for-bit (success/error, error text, full Stats, relation insertion
// order), and Naive must agree on the fixpoint whenever it completes
// within the same limits. The checked-in corpus under testdata/fuzz seeds
// the fuzzer with the paper-shaped programs from cmd/existdlog/testdata.
func FuzzEval(f *testing.F) {
	f.Add("a(X,Y) :- p(X,Y).\na(X,Y) :- p(X,Z), a(Z,Y).\np(1,2). p(2,3).\n?- a(1,X).\n")
	f.Add("act(X) :- task(X), not done(X).\ntask(t1). task(t2). done(t2).\n?- act(X).\n")
	f.Add("d(Y,J) :- succ(I,J), d(X,I), e(X,Y).\nd(Y,1) :- e(0,Y).\ne(0,1). e(1,2).\n?- d(X,I).\n")
	f.Fuzz(func(t *testing.T, src string) {
		if len(src) > 4096 {
			t.Skip("oversized input")
		}
		parsed, err := parser.Parse(src)
		if err != nil {
			t.Skip("unparsable")
		}
		p := parsed.Program
		if len(p.Rules) > 24 {
			t.Skip("oversized program")
		}
		if _, err := Stratify(p); err != nil {
			t.Skip("unstratifiable")
		}
		if !arityConsistent(p, parsed.Facts) {
			t.Skip("inconsistent arities")
		}
		db := NewDatabase()
		if err := db.AddAtoms(parsed.Facts); err != nil {
			t.Skip("bad facts")
		}
		for _, reorder := range []bool{false, true} {
			opt := Options{MaxIterations: 300, MaxFacts: 5000, ReorderJoins: reorder}
			snOpt, parOpt := opt, opt
			snOpt.Strategy = SemiNaive
			parOpt.Strategy = Parallel
			parOpt.Workers = 4
			sn, snErr := Eval(p, db, snOpt)
			par, parErr := Eval(p, db, parOpt)
			if (snErr == nil) != (parErr == nil) {
				t.Fatalf("reorder=%v: semi-naive err %v, parallel err %v\n%s", reorder, snErr, parErr, src)
			}
			if snErr != nil {
				if snErr.Error() != parErr.Error() {
					t.Fatalf("reorder=%v: error text diverges: %q vs %q\n%s", reorder, snErr, parErr, src)
				}
				continue
			}
			if sn.Stats != par.Stats {
				t.Fatalf("reorder=%v: stats diverge\nsemi-naive: %+v\nparallel:   %+v\n%s",
					reorder, sn.Stats, par.Stats, src)
			}
			for key := range p.Derived {
				a, b := orderedFacts(sn, key), orderedFacts(par, key)
				if fmt.Sprint(a) != fmt.Sprint(b) {
					t.Fatalf("reorder=%v: %s insertion order diverges\nsemi-naive: %v\nparallel:   %v\n%s",
						reorder, key, a, b, src)
				}
			}
			if p.Query.Pred != "" {
				if fmt.Sprint(sn.Answers(p.Query)) != fmt.Sprint(par.Answers(p.Query)) {
					t.Fatalf("reorder=%v: answers diverge\n%s", reorder, src)
				}
			}
			// ISSUE 8 satellite 3: one more SemiNaive run with the
			// map-of-strings reference storage mirrored into every relation
			// (refcheck.go panics on the first per-operation divergence;
			// ierr.Rescue would surface it as an error and fail the
			// (snErr==nil) comparison below). The mirror must not perturb
			// results: Stats and insertion order stay bit-identical.
			func() {
				refCheckEnabled = true
				defer func() { refCheckEnabled = false }()
				chk, chkErr := Eval(p, db, snOpt)
				if chkErr != nil {
					t.Fatalf("reorder=%v: refcheck run failed: %v\n%s", reorder, chkErr, src)
				}
				if chk.Stats != sn.Stats {
					t.Fatalf("reorder=%v: refcheck stats diverge\nmirror: %+v\nplain:  %+v\n%s",
						reorder, chk.Stats, sn.Stats, src)
				}
				for key := range p.Derived {
					if fmt.Sprint(orderedFacts(sn, key)) != fmt.Sprint(orderedFacts(chk, key)) {
						t.Fatalf("reorder=%v: refcheck %s insertion order diverges\n%s", reorder, key, src)
					}
				}
			}()
			nvOpt := opt
			nvOpt.Strategy = Naive
			nv, nvErr := Eval(p, db, nvOpt)
			if nvErr != nil {
				continue // e.g. naive hits the iteration budget differently
			}
			for key := range p.Derived {
				if fmt.Sprint(sn.DB.Facts(key)) != fmt.Sprint(nv.DB.Facts(key)) {
					t.Fatalf("reorder=%v: %s fixpoint diverges from naive\n%s", reorder, key, src)
				}
			}
		}
	})
}

package engine

import (
	"context"
	"fmt"

	"existdlog/internal/ast"
	"existdlog/internal/ierr"
	"existdlog/internal/trace"
)

// Update extends a previous evaluation result with newly added base facts
// and brings the derived relations up to date incrementally: the
// semi-naive delta loop is seeded with just the additions, so unaffected
// parts of the fixpoint are never re-derived (view maintenance for
// monotone programs).
//
// Restrictions: added may only contain facts for base (non-derived)
// predicates, and the program must be positive — fact insertion under
// negation can retract derived facts, which requires deletion propagation
// (DRed) that this engine does not implement; Update returns an error in
// both cases, and callers should fall back to a full Eval.
//
// prev must come from an Eval (or Update) of the same program with the
// same options; provenance continuity is preserved when TrackProvenance
// was set there.
func Update(p *ast.Program, prev *Result, added *Database, opt Options) (*Result, error) {
	return UpdateContext(context.Background(), p, prev, added, opt)
}

// UpdateContext is Update under a context, with the same cancellation
// points and partial-result semantics as EvalContext: an abort returns the
// soundly maintained prefix with Result.Partial set.
func UpdateContext(ctx context.Context, p *ast.Program, prev *Result, added *Database, opt Options) (res *Result, err error) {
	defer ierr.Rescue(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 1 << 20
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("engine: incremental update under negation is not supported (re-evaluate)")
	}
	for _, key := range added.Keys() {
		if p.Derived[key] {
			return nil, fmt.Errorf("engine: Update cannot add facts for derived predicate %s", key)
		}
	}

	ev := &evaluator{
		opt:      opt,
		ctx:      ctx,
		done:     ctx.Done(),
		out:      prev.DB.Clone(),
		derived:  p.Derived,
		arity:    make(map[string]int),
		deltas:   make(map[string]*Relation),
		next:     make(map[string]*Relation),
		queryKey: p.Query.Key(),
	}
	ev.run = runner{ev: ev, stats: &ev.stats}
	if opt.TrackProvenance {
		ev.prov = make(map[string]*provSet)
		for k, m := range prev.prov {
			ev.prov[k] = m.clone()
		}
	}
	ev.initTrace(p)
	if err := ev.compile(p); err != nil {
		return nil, err
	}

	// Merge the additions, keeping only genuinely new tuples as deltas.
	for _, key := range added.Keys() {
		rel, _ := added.Lookup(key)
		for _, row := range added.Facts(key) {
			t := make(Tuple, len(row))
			for i, name := range row {
				t[i] = ev.out.Syms.Intern(name)
			}
			if ev.out.Relation(key, rel.Arity()).Insert(t) {
				d, ok := ev.deltas[key]
				if !ok {
					d = NewRelation(rel.Arity())
					ev.deltas[key] = d
				}
				d.Insert(t)
			}
		}
	}
	if len(ev.deltas) == 0 {
		return ev.finish(nil)
	}

	// Delta loop only — no startup pass: everything derivable without the
	// additions is already in prev.
	for len(ev.deltas) > 0 {
		if err := ev.checkCtx(); err != nil {
			return ev.finish(err)
		}
		ev.stats.Iterations++
		if ev.stats.Iterations > ev.opt.MaxIterations {
			return ev.finish(ErrIterationLimit)
		}
		ev.next = make(map[string]*Relation)
		if err := ev.updatePass(); err != nil {
			return ev.finish(err)
		}
		ev.deltas = ev.next
		ev.applyCut()
	}
	return ev.finish(nil)
}

// updatePass runs one incremental delta pass sequentially, recording a
// pass metrics entry when tracing (aborted passes included — the partial
// metrics must keep partitioning the partial Stats).
func (ev *evaluator) updatePass() error {
	deltas := ev.deltaSizes()
	before := ev.stats.FactsDerived
	// Incremental passes are sequential, but they replan per pass like
	// the fixpoint barriers do: live sizes (the base relation's delta
	// among them) drive the order, and provably empty versions are
	// skipped.
	ev.planEpoch++
	versions := 0
	var evalErr error
outer:
	for pi, plan := range ev.plans {
		if !ev.active[pi] || plan.nDeltas == 0 {
			continue
		}
		for occ := 0; occ < plan.nDeltas; occ++ {
			if _, ok := ev.deltas[deltaKey(plan, occ)]; !ok {
				continue
			}
			versions++
			if vp := ev.planVersion(plan, occ); vp != nil {
				ev.recordOrder(plan, occ, vp)
				if vp.empty {
					continue
				}
			}
			evalErr = ev.run.evalRule(plan, occ, func(t Tuple, just []FactRef) error {
				return ev.insertDerived(plan, t, just, true)
			})
			if evalErr != nil {
				break outer
			}
		}
	}
	if ev.tc != nil {
		ev.tc.Merge(ev.run.shard)
		ev.tc.Pass(trace.PassStats{
			Pass: ev.stats.Iterations, Stratum: 0, Versions: versions,
			Facts: ev.stats.FactsDerived - before, Deltas: deltas,
			Orders: ev.takeOrders(),
		})
	}
	return evalErr
}

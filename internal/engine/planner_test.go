package engine

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"testing"

	"existdlog/internal/parser"
	"existdlog/internal/trace"
)

// versionOrders collects every trace.VersionOrder recorded for one rule
// version across all passes, in pass order.
func versionOrders(res *Result, rule, occ int) []trace.VersionOrder {
	var out []trace.VersionOrder
	if res.Trace == nil {
		return out
	}
	for _, p := range res.Trace.Passes {
		for _, o := range p.Orders {
			if o.Rule == rule && o.Occ == occ {
				out = append(out, o)
			}
		}
	}
	return out
}

// TestReorderTieBreakPrefersBase pins the documented tie order of the
// greedy planner: bound-argument count first, then base relations over
// derived ones, then the smaller live relation, then the textual order.
// The old heuristic skipped the base-over-derived step and jumped
// straight to size, so the derived d (2 live rows) beat the base
// relation (9 rows) on a bound-count tie. Here both candidates have
// exactly one bound argument after the delta literal, so the planner
// must pick base despite its larger size.
func TestReorderTieBreakPrefersBase(t *testing.T) {
	p := mustParse(t, `
g(X,Y) :- e(X,Y).
g(X,Y) :- g(X,Z), e(Z,Y).
d(X,Y) :- seed(X,Y).
q(A,B,C) :- g(A,B), base(A,C), d(A,E).
?- q(A,B,C).
`)
	db := NewDatabase()
	for i := 0; i < 5; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	for i := 0; i < 9; i++ {
		db.Add("base", fmt.Sprint(i%5), fmt.Sprint(100+i))
	}
	db.Add("seed", "0", "s0")
	db.Add("seed", "1", "s1")
	res, err := Eval(p, db, Options{ReorderJoins: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	// Rule 3 is q; occurrence 0 is the Δg version. In every pass where it
	// was planned with both g-delta facts and the tie candidates live,
	// base (9 rows, base relation) must precede d (2 rows, derived).
	orders := versionOrders(res, 3, 0)
	if len(orders) == 0 {
		t.Fatal("no order records for the Δg version of q")
	}
	checked := 0
	for _, o := range orders {
		if len(o.Literals) != 3 || o.Literals[0] != "~g" {
			t.Fatalf("Δg version order = %v, want ~g first", o.Literals)
		}
		if o.Sizes[0] == 0 {
			continue // empty delta: skipped version, tie not exercised
		}
		if o.Literals[1] != "base" || o.Literals[2] != "d" {
			t.Fatalf("tie broken wrong: order %v sizes %v — base must beat derived d on a bound-count tie",
				o.Literals, o.Sizes)
		}
		if o.Sizes[1] != 9 || o.Sizes[2] != 2 {
			t.Fatalf("recorded sizes %v, want base=9 d=2", o.Sizes)
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no pass exercised the tie (delta always empty?)")
	}
}

// TestRelationForFallbackDoesNotMutate exercises relationFor's safety
// net directly: a literal whose relation exists in neither the database
// nor the deltas must get a shared immutable empty relation of the right
// arity — and must NOT create the relation in the shared database, which
// Parallel workers read concurrently.
func TestRelationForFallbackDoesNotMutate(t *testing.T) {
	db := NewDatabase()
	db.Add("real", "a")
	ev := &evaluator{out: db, deltas: map[string]*Relation{}}
	lp := &literalPlan{key: "ghost", occ: -1, args: []argRef{{slot: 0}, {slot: 1}, {slot: 2}}}
	r := ev.relationFor(lp, -1)
	if r == nil {
		t.Fatal("fallback returned nil")
	}
	if r.Len() != 0 || r.Arity() != 3 {
		t.Fatalf("fallback relation: len=%d arity=%d, want empty arity 3", r.Len(), r.Arity())
	}
	if db.Has("ghost") {
		t.Fatal("fallback created the missing relation in the shared database")
	}
	if again := ev.relationFor(lp, -1); again != r {
		t.Error("fallback relation is not shared across calls")
	}
	// Distinct arities get distinct (still shared, still empty) relations.
	lp2 := &literalPlan{key: "ghost2", occ: -1, args: []argRef{{slot: 0}}}
	if r2 := ev.relationFor(lp2, -1); r2 == r || r2.Arity() != 1 {
		t.Errorf("arity-1 fallback: got arity %d, same pointer as arity-3: %v", r2.Arity(), r2 == r)
	}
}

// TestPlannerOrdersFlipAcrossPasses is the live-replanning proof: the
// Δg version of q ties h (static, 12 rows) against h2 (a growing
// closure) on bound arguments, so the greedy order follows whichever is
// smaller THIS pass — h2 first while |h2| < 12, h first once the
// closure outgrows it. The test requires both orders to appear across
// passes of one evaluation, and the Parallel strategy to reproduce the
// SemiNaive run bit-identically (answers, insertion order, Stats, full
// trace) while replanning at every barrier.
func TestPlannerOrdersFlipAcrossPasses(t *testing.T) {
	p := mustParse(t, `
g(X,Y) :- e(X,Y).
g(X,Y) :- g(X,Z), e(Z,Y).
h(X,Y) :- f(X,Y).
h2(X,Y) :- f2(X,Y).
h2(X,Z) :- h2(X,Y), f2(Y,Z).
q(B,D,E) :- g(B,C), h(C,D), h2(C,E).
?- q(B,D,E).
`)
	db := NewDatabase()
	for i := 0; i < 12; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i+1)) // long chain: Δg lives ~12 passes
		db.Add("f", fmt.Sprint(i), fmt.Sprint(200+i))
	}
	for i := 0; i < 8; i++ {
		db.Add("f2", fmt.Sprint(i), fmt.Sprint(i+1)) // closure grows 8,15,21,... past |h|=12
	}
	opts := Options{ReorderJoins: true, Trace: true}
	sn, err := Eval(p, db, opts)
	if err != nil {
		t.Fatal(err)
	}
	// q is rule 5; occurrence 0 is Δg. Collect the distinct (h, h2)
	// relative orders chosen across non-skipped passes.
	seen := map[string]bool{}
	for _, o := range versionOrders(sn, 5, 0) {
		if o.Skipped || o.Sizes[0] == 0 {
			continue
		}
		seen[fmt.Sprint(o.Literals)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("planner never changed the Δg order across passes: %v", seen)
	}

	// Bit-identical Parallel run under live replanning.
	popts := opts
	popts.Strategy = Parallel
	popts.Workers = 4
	par, err := Eval(p, db, popts)
	if err != nil {
		t.Fatal(err)
	}
	if par.Stats != sn.Stats {
		t.Fatalf("parallel stats diverge under replanning\nsemi-naive: %+v\nparallel:   %+v", sn.Stats, par.Stats)
	}
	if !reflect.DeepEqual(par.Trace, sn.Trace) {
		t.Fatal("parallel trace (incl. per-pass orders) diverges from semi-naive")
	}
	for key := range p.Derived {
		if fmt.Sprint(orderedFacts(sn, key)) != fmt.Sprint(orderedFacts(par, key)) {
			t.Fatalf("%s insertion order diverges between strategies", key)
		}
	}

	// Planner-off answers are identical after the canonical Answers sort.
	off, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(sn.Answers(p.Query)) != fmt.Sprint(off.Answers(p.Query)) {
		t.Fatal("planner changed the answers")
	}
}

// TestPlannerEmptyJoinSkip: a rule version whose join provably derives
// nothing this pass (some positive literal reads an empty relation) is
// skipped before any probe. The never-satisfiable rule must contribute
// zero probes with the planner on, a skipped order record in the trace,
// and unchanged answers.
func TestPlannerEmptyJoinSkip(t *testing.T) {
	p := mustParse(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
dead(X,Y) :- a(X,Y), nothing(X).
?- a(X,Y).
`)
	db := chainDB(6)
	on, err := Eval(p, db, Options{ReorderJoins: true, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	off, err := Eval(p, db, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(on.Answers(p.Query)) != fmt.Sprint(off.Answers(p.Query)) {
		t.Fatal("empty-join skip changed the answers")
	}
	if on.DB.Count("dead") != 0 || off.DB.Count("dead") != 0 {
		t.Fatal("dead must be empty either way")
	}
	// The dead rule (index 2) must have recorded skipped plans and spent
	// zero probes; nothing() is empty in every pass.
	var skips int
	for _, o := range append(versionOrders(on, 2, -1), versionOrders(on, 2, 0)...) {
		if !o.Skipped {
			t.Fatalf("dead-rule order not marked skipped: %+v", o)
		}
		skips++
	}
	if skips == 0 {
		t.Fatal("no skip records for the dead rule")
	}
	if on.Trace != nil {
		if pr := on.Trace.Rules[2].JoinProbes; pr != 0 {
			t.Errorf("dead rule spent %d probes despite empty-join skip", pr)
		}
	}
	if on.Stats.JoinProbes >= off.Stats.JoinProbes {
		t.Errorf("planner probes %d, textual probes %d — skip should save work",
			on.Stats.JoinProbes, off.Stats.JoinProbes)
	}
}

// TestPlannerProbesMonotone evaluates every committed example program
// with the planner off and on and requires planner-on join probes to
// never exceed planner-off — the planner's whole claim is that live
// cardinalities only ever shave work. Answers must agree exactly.
func TestPlannerProbesMonotone(t *testing.T) {
	var files []string
	for _, dir := range []string{
		filepath.Join("..", "..", "cmd", "existdlog", "testdata"),
		filepath.Join("..", "..", "testdata", "corpus"),
	} {
		fs, err := filepath.Glob(filepath.Join(dir, "*.dl"))
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, fs...)
	}
	if len(files) == 0 {
		t.Skip("no committed .dl programs found")
	}
	sort.Strings(files)
	for _, file := range files {
		src, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		res, err := parser.Parse(string(src))
		if err != nil {
			continue // non-program fixtures
		}
		db := NewDatabase()
		if err := db.AddAtoms(res.Facts); err != nil {
			continue
		}
		p := res.Program
		off, err := Eval(p, db, Options{})
		if err != nil {
			continue // programs that error do so under any order
		}
		on, err := Eval(p, db, Options{ReorderJoins: true})
		if err != nil {
			t.Fatalf("%s: planner-on errored where planner-off succeeded: %v", file, err)
		}
		if on.Stats.JoinProbes > off.Stats.JoinProbes {
			t.Errorf("%s: planner-on probes %d > planner-off %d",
				file, on.Stats.JoinProbes, off.Stats.JoinProbes)
		}
		for key := range p.Derived {
			if fmt.Sprint(on.DB.Facts(key)) != fmt.Sprint(off.DB.Facts(key)) {
				t.Errorf("%s: planner changed %s", file, key)
			}
		}
	}
}

// TestPlanPreviewReportsStartupOrders covers the EXPLAIN entry point:
// PlanPreview returns one startup-pass order per rule, annotated with
// the live EDB cardinalities, without running the fixpoint.
func TestPlanPreviewReportsStartupOrders(t *testing.T) {
	p := mustParse(t, `
ans(X,W) :- big(Y,Z), sel(X,Y), big(Z,W).
?- ans(X,W).
`)
	db := NewDatabase()
	for i := 0; i < 60; i++ {
		db.Add("big", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	db.Add("sel", "s", "3")
	orders, err := PlanPreview(p, db)
	if err != nil {
		t.Fatal(err)
	}
	if len(orders) != 1 {
		t.Fatalf("got %d orders, want 1", len(orders))
	}
	o := orders[0]
	if o.Literals[0] != "sel" {
		t.Fatalf("startup order %v (sizes %v): the 1-row sel must come first", o.Literals, o.Sizes)
	}
	if o.Sizes[0] != 1 {
		t.Errorf("sel size annotated %d, want 1", o.Sizes[0])
	}
	// The two big probes run with a bound join column each.
	if o.Bound[1] == 0 || o.Bound[2] == 0 {
		t.Errorf("bound-column counts %v, want both big probes indexed", o.Bound)
	}
}

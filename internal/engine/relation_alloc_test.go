package engine

import "testing"

// Pinned allocation counts for the arena storage (ISSUE 8 satellite 2):
// the whole point of the columnar rewrite is that the per-tuple costs —
// string-encoded keys, per-row []int32 copies, per-probe map lookups —
// are gone, so these pins fail if any of them creeps back.
//
// The pins hold only when callers reuse argument buffers (the engine's
// hot paths do: headBuf, colsBuf, valsBuf); a composite-literal argument
// in the measured closure would charge the test its own allocation.

// TestRelationSteadyStateAllocs pins duplicate Insert, Contains, and an
// indexed Match at ZERO allocations per operation.
func TestRelationSteadyStateAllocs(t *testing.T) {
	r := NewRelation(3)
	buf := make(Tuple, 3)
	for i := 0; i < 1024; i++ {
		buf[0], buf[1], buf[2] = int32(i), int32(i%8), int32(i/8)
		r.Insert(buf)
	}
	cols := []int{1}
	vals := []int32{3}
	r.Match(cols, vals) // build the index outside the measurement
	dup := Tuple{500, 500 % 8, 500 / 8}
	allocs := testing.AllocsPerRun(200, func() {
		if r.Insert(dup) {
			t.Fatal("dup insert reported new")
		}
		if !r.Contains(dup) {
			t.Fatal("membership lost")
		}
		if len(r.Match(cols, vals)) == 0 {
			t.Fatal("index probe lost rows")
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Insert+Contains+Match = %.0f allocs/op, want 0", allocs)
	}
}

// TestRelationFreshInsertAllocs pins 1000 fresh inserts (with one live
// index being maintained) to the amortized-growth budget: arena, table,
// and bucket doublings plus a handful of per-bucket headers — measured at
// ~98 total, pinned at 150. A regression to per-tuple allocation would
// cost ≥1000 and fail loudly.
func TestRelationFreshInsertAllocs(t *testing.T) {
	cols := []int{1}
	vals := []int32{3}
	buf := make(Tuple, 3)
	allocs := testing.AllocsPerRun(20, func() {
		r := NewRelation(3)
		r.Match(cols, vals) // index exists from the start: every insert maintains it
		for i := 0; i < 1000; i++ {
			buf[0], buf[1], buf[2] = int32(i), int32(i%8), int32(i/8)
			if !r.Insert(buf) {
				t.Fatal("fresh insert reported duplicate")
			}
		}
	})
	const limit = 150
	if allocs > limit {
		t.Errorf("1000 fresh inserts = %.0f allocs, limit %d (per-tuple allocation crept back?)", allocs, limit)
	}
}

// TestRelationCloneAllocs pins the copy-on-write Clone at one allocation
// (the Relation header) regardless of size — the seed's Clone re-inserted
// every tuple.
func TestRelationCloneAllocs(t *testing.T) {
	r := NewRelation(3)
	buf := make(Tuple, 3)
	for i := 0; i < 4096; i++ {
		buf[0], buf[1], buf[2] = int32(i), int32(i%64), int32(i/64)
		r.Insert(buf)
	}
	allocs := testing.AllocsPerRun(100, func() {
		c := r.Clone()
		if c.Len() != r.Len() {
			t.Fatal("clone lost rows")
		}
	})
	if allocs > 1 {
		t.Errorf("Clone = %.0f allocs/op, want ≤1 (O(1) copy-on-write)", allocs)
	}
}

//go:build failpoint

package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"existdlog/internal/failpoint"
)

// TestTracePartialConsistencyUnderFaults is the ISSUE 3 failpoint
// satellite: kill an evaluation mid-pass at each engine fault site, with
// tracing on, and check that the partial run's per-rule counters still
// partition its partial Stats exactly — the merge-at-barrier bookkeeping
// must not drift when a pass is aborted between an emit and its barrier.
func TestTracePartialConsistencyUnderFaults(t *testing.T) {
	p := mustParse(t, faultProgram)
	db := faultDB(60)
	sitesFor := map[Strategy][]string{
		Naive:     {FPPass, FPInsert},
		SemiNaive: {FPPass, FPMerge, FPInsert, FPWorker},
		Parallel:  {FPPass, FPMerge, FPInsert, FPSpawn, FPWorker},
	}
	for _, s := range allStrategies {
		for _, site := range sitesFor[s.opt.Strategy] {
			for _, after := range []int{1, 2, 5, 17} {
				name := fmt.Sprintf("%s/%s/after=%d", s.name, strings.TrimPrefix(site, "engine/"), after)
				t.Run(name, func(t *testing.T) {
					defer checkNoLeakedGoroutines(t)()
					defer failpoint.Reset()
					boom := fmt.Errorf("boom at %s", site)
					failpoint.EnableError(site, boom, after)
					opt := s.opt
					opt.Trace = true
					res, err := EvalContext(context.Background(), p, db, opt)
					if failpoint.Hits(site) < int64(after) {
						t.Skipf("site %s hit %d times, fires at %d — completed first",
							site, failpoint.Hits(site), after)
					}
					if !errors.Is(err, boom) {
						t.Fatalf("err = %v, want injected %v", err, boom)
					}
					if res == nil || !res.Partial {
						t.Fatalf("want partial result, got %+v", res)
					}
					assertTracePartition(t, res, name, faultProgram)
				})
			}
		}
	}
}

// TestTracePartialOnDeadline checks the same partition invariant when the
// abort comes from the context instead of an injected error: a delay at
// the insert site slows the merge down until the deadline expires
// mid-pass, so the partial Stats and per-rule counters must agree at
// whatever emission the tick noticed the expiry.
func TestTracePartialOnDeadline(t *testing.T) {
	defer checkNoLeakedGoroutines(t)()
	p := mustParse(t, faultProgram)
	db := faultDB(120) // full closure: 7260 facts — unreachable under the delay
	for _, s := range allStrategies {
		t.Run(s.name, func(t *testing.T) {
			defer failpoint.Reset()
			failpoint.EnableDelay(FPInsert, 2*time.Millisecond, 40)
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
			defer cancel()
			opt := s.opt
			opt.Trace = true
			res, err := EvalContext(ctx, p, db, opt)
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("err = %v, want ErrDeadline", err)
			}
			if res == nil || !res.Partial {
				t.Fatalf("want partial result, got %+v", res)
			}
			assertTracePartition(t, res, s.name, faultProgram)
		})
	}
}

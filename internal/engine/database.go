package engine

import (
	"errors"
	"fmt"
	"sort"

	"existdlog/internal/ast"
)

// ErrArityMismatch is the sentinel matched (via errors.Is) by every arity
// mismatch the database reports, whether returned directly from AddAtom or
// carried out of an internal invariant violation by an InternalError.
var ErrArityMismatch = errors.New("engine: relation arity mismatch")

// ArityMismatchError reports a relation addressed with the wrong arity: Key
// already exists with arity Have, but a tuple or lookup of arity Want was
// applied to it. errors.Is(err, ErrArityMismatch) matches it.
type ArityMismatchError struct {
	Key  string
	Want int // the arity requested
	Have int // the arity the existing relation has
}

func (e *ArityMismatchError) Error() string {
	return fmt.Sprintf("engine: relation %s: arity %d requested, have %d", e.Key, e.Want, e.Have)
}

func (e *ArityMismatchError) Is(target error) bool { return target == ErrArityMismatch }

// Database is a set of named relations sharing one constant interner. It
// serves both as the extensional database and as the output of an
// evaluation (which adds the derived relations).
type Database struct {
	Syms *Symbols
	rels map[string]*Relation
}

// NewDatabase returns an empty database with a fresh interner.
func NewDatabase() *Database {
	return &Database{Syms: NewSymbols(), rels: make(map[string]*Relation)}
}

// Relation returns the relation for key, creating an empty one of the
// given arity if absent. A mismatch with an existing relation is a
// programming error upstream, raised as a typed *ArityMismatchError panic;
// the API boundaries (Eval, Parse, …) recover it into a returned error
// that still matches errors.Is(err, ErrArityMismatch). Input-validating
// paths (AddAtom, LoadCSV) check arities before insertion and return the
// error directly instead.
func (db *Database) Relation(key string, arity int) *Relation {
	if r, ok := db.rels[key]; ok {
		if r.Arity() != arity {
			panic(&ArityMismatchError{Key: key, Want: arity, Have: r.Arity()})
		}
		return r
	}
	r := NewRelation(arity)
	db.rels[key] = r
	return r
}

// Has reports whether a relation named key exists.
func (db *Database) Has(key string) bool {
	_, ok := db.rels[key]
	return ok
}

// Lookup returns the relation for key if present.
func (db *Database) Lookup(key string) (*Relation, bool) {
	r, ok := db.rels[key]
	return r, ok
}

// Keys returns the relation names, sorted.
func (db *Database) Keys() []string {
	out := make([]string, 0, len(db.rels))
	for k := range db.rels {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Add interns the constant names and inserts the tuple into relation key.
// It reports whether the tuple was new.
func (db *Database) Add(key string, consts ...string) bool {
	t := make(Tuple, len(consts))
	for i, c := range consts {
		t[i] = db.Syms.Intern(c)
	}
	return db.Relation(key, len(consts)).Insert(t)
}

// CheckArity returns a typed *ArityMismatchError when relation key exists
// with a different arity, nil otherwise. Input paths call it before
// inserting so malformed data surfaces as an error, not a panic.
func (db *Database) CheckArity(key string, arity int) error {
	if r, ok := db.rels[key]; ok && r.Arity() != arity {
		return &ArityMismatchError{Key: key, Want: arity, Have: r.Arity()}
	}
	return nil
}

// AddAtom inserts a ground atom as a fact. Facts whose predicate already
// exists with a different arity are rejected with an error matching
// ErrArityMismatch.
func (db *Database) AddAtom(a ast.Atom) error {
	consts := make([]string, len(a.Args))
	for i, t := range a.Args {
		if t.Kind != ast.Constant {
			return fmt.Errorf("fact %s is not ground", a)
		}
		consts[i] = t.Name
	}
	if err := db.CheckArity(a.Key(), len(consts)); err != nil {
		return fmt.Errorf("fact %s: %w", a, err)
	}
	db.Add(a.Key(), consts...)
	return nil
}

// AddAtoms inserts ground atoms, stopping at the first error.
func (db *Database) AddAtoms(facts []ast.Atom) error {
	for _, f := range facts {
		if err := db.AddAtom(f); err != nil {
			return err
		}
	}
	return nil
}

// Facts returns relation key's tuples decoded to constant names, sorted
// lexicographically, for stable output in tests and reports.
func (db *Database) Facts(key string) [][]string {
	r, ok := db.rels[key]
	if !ok {
		return nil
	}
	out := make([][]string, 0, r.Len())
	for ti := 0; ti < r.Len(); ti++ {
		t := r.Tuple(ti)
		row := make([]string, len(t))
		for i, id := range t {
			row[i] = db.Syms.Name(id)
		}
		out = append(out, row)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
	return out
}

// Count returns the number of tuples in relation key (0 if absent).
func (db *Database) Count(key string) int {
	if r, ok := db.rels[key]; ok {
		return r.Len()
	}
	return 0
}

// TotalFacts returns the number of tuples across all relations.
func (db *Database) TotalFacts() int {
	n := 0
	for _, r := range db.rels {
		n += r.Len()
	}
	return n
}

// Clone returns an isolated copy: relations and the interner are cloned
// copy-on-write, so the copy is O(#relations) and either side can mutate
// without the other observing it.
func (db *Database) Clone() *Database {
	c := &Database{Syms: db.Syms.Clone(), rels: make(map[string]*Relation, len(db.rels))}
	for k, r := range db.rels {
		c.rels[k] = r.Clone()
	}
	return c
}

// ActiveDomain returns the set of constant ids appearing in any tuple of
// any relation, sorted.
func (db *Database) ActiveDomain() []int32 {
	seen := make(map[int32]bool)
	for _, r := range db.rels {
		for ti := 0; ti < r.Len(); ti++ {
			for _, id := range r.Tuple(ti) {
				seen[id] = true
			}
		}
	}
	out := make([]int32, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Replace swaps in a new relation for key (used by incremental
// retraction, which rebuilds relations without the deleted tuples).
func (db *Database) Replace(key string, rel *Relation) {
	db.rels[key] = rel
}

// RemoveFacts deletes the given rows from relation key and returns how
// many were actually present. Like incremental retraction, it rebuilds
// the relation without the deleted tuples (relations have no in-place
// delete: indexes and insertion order are append-only), so callers
// should batch removals rather than loop over single rows. Rows naming
// unknown constants or absent tuples are ignored.
func (db *Database) RemoveFacts(key string, rows [][]string) int {
	rel, ok := db.rels[key]
	if !ok {
		return 0
	}
	dead := NewRelation(rel.Arity())
	for _, row := range rows {
		if len(row) != rel.Arity() {
			continue
		}
		t := make(Tuple, len(row))
		miss := false
		for i, name := range row {
			id, ok := db.Syms.Lookup(name)
			if !ok {
				miss = true
				break
			}
			t[i] = id
		}
		if miss || !rel.Contains(t) {
			continue
		}
		dead.Insert(t)
	}
	if dead.Len() == 0 {
		return 0
	}
	fresh := NewRelation(rel.Arity())
	for ti := 0; ti < rel.Len(); ti++ {
		t := rel.Tuple(ti)
		if !dead.Contains(t) {
			fresh.Insert(t)
		}
	}
	db.rels[key] = fresh
	return dead.Len()
}

package engine

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"existdlog/internal/parser"
)

// divergentProgram counts forever through the succ builtin: the fixpoint
// is infinite, so only cancellation (or a limit) can end the evaluation.
const divergentProgram = `
count(X) :- zero(X).
count(Y) :- count(X), succ(X,Y).
?- count(X).
`

func divergentDB() *Database {
	db := NewDatabase()
	db.Add("zero", "0")
	return db
}

// widePassProgram derives a cube of a base relation: all the work lands in
// very few passes, so aborting it promptly exercises the mid-pass
// cancellation ticks rather than the pass barrier.
const widePassProgram = `
q(X,Y,Z) :- n(X), n(Y), n(Z).
?- q(X,Y,Z).
`

func widePassDB(n int) *Database {
	db := NewDatabase()
	for i := 0; i < n; i++ {
		db.Add("n", fmt.Sprint(i))
	}
	return db
}

var allStrategies = []struct {
	name string
	opt  Options
}{
	{"naive", Options{Strategy: Naive}},
	{"seminaive", Options{Strategy: SemiNaive}},
	{"parallel", Options{Strategy: Parallel, Workers: 4}},
}

// TestCancelBoundedLatency is the tentpole's latency bound: cancel a
// divergent query mid-flight and the evaluator must return within 100ms,
// with ErrCanceled wrapping the cause and a non-nil partial Result, under
// every strategy, leaking no goroutines.
func TestCancelBoundedLatency(t *testing.T) {
	p, err := parser.ParseProgram(divergentProgram)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range allStrategies {
		t.Run(s.name, func(t *testing.T) {
			defer checkNoLeakedGoroutines(t)()
			cause := errors.New("operator hit stop")
			ctx, cancel := context.WithCancelCause(context.Background())
			type outcome struct {
				res *Result
				err error
			}
			ch := make(chan outcome, 1)
			go func() {
				res, err := EvalContext(ctx, p, divergentDB(), s.opt)
				ch <- outcome{res, err}
			}()
			time.Sleep(30 * time.Millisecond) // let the fixpoint spin up
			cancel(cause)
			start := time.Now()
			var got outcome
			select {
			case got = <-ch:
			case <-time.After(2 * time.Second):
				t.Fatal("evaluation did not return after cancel")
			}
			if lat := time.Since(start); lat > 100*time.Millisecond {
				t.Fatalf("abort latency %v exceeds 100ms bound", lat)
			}
			if !errors.Is(got.err, ErrCanceled) {
				t.Fatalf("err = %v, want ErrCanceled", got.err)
			}
			if !errors.Is(got.err, cause) {
				t.Fatalf("err = %v does not wrap the cancellation cause", got.err)
			}
			if got.res == nil || !got.res.Partial || got.res.Incomplete != "canceled" {
				t.Fatalf("want partial result with reason, got %+v", got.res)
			}
		})
	}
}

// TestCancelMidPass aborts a single enormous pass (a cube join), which
// only the mid-pass tick can interrupt. The deadline fires while the pass
// is running; the evaluation must still return promptly.
func TestCancelMidPass(t *testing.T) {
	p, err := parser.ParseProgram(widePassProgram)
	if err != nil {
		t.Fatal(err)
	}
	db := widePassDB(200) // 8M derivations in ~one pass
	for _, s := range allStrategies {
		t.Run(s.name, func(t *testing.T) {
			defer checkNoLeakedGoroutines(t)()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
			defer cancel()
			start := time.Now()
			res, err := EvalContext(ctx, p, db, s.opt)
			elapsed := time.Since(start)
			if err == nil {
				t.Skip("machine evaluated the cube inside the deadline")
			}
			if !errors.Is(err, ErrDeadline) {
				t.Fatalf("err = %v, want ErrDeadline", err)
			}
			if elapsed > 500*time.Millisecond {
				t.Fatalf("mid-pass abort took %v", elapsed)
			}
			if res == nil || !res.Partial || res.Incomplete != "deadline exceeded" {
				t.Fatalf("want partial result with deadline reason, got %+v", res)
			}
		})
	}
}

// TestPartialResultIsSoundSubset pins the graceful-degradation contract on
// a finite workload: whatever an aborted evaluation returns is a subset of
// the true fixpoint, and Stats exactly describe the partial database.
func TestPartialResultIsSoundSubset(t *testing.T) {
	src := `
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), e(Y,Z).
?- t(X,Y).
`
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := 0; i < 160; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	full, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fullRel, _ := full.DB.Lookup("t")
	base := db.TotalFacts()

	for _, s := range allStrategies {
		for _, timeout := range []time.Duration{time.Nanosecond, 500 * time.Microsecond, 5 * time.Millisecond} {
			t.Run(fmt.Sprintf("%s/%v", s.name, timeout), func(t *testing.T) {
				ctx, cancel := context.WithTimeout(context.Background(), timeout)
				defer cancel()
				res, err := EvalContext(ctx, p, db, s.opt)
				if err == nil {
					return // finished inside the deadline; nothing partial to check
				}
				if !errors.Is(err, ErrDeadline) {
					t.Fatalf("err = %v, want ErrDeadline", err)
				}
				if res == nil || !res.Partial {
					t.Fatalf("want partial result, got %+v", res)
				}
				rel, ok := res.DB.Lookup("t")
				if ok {
					for _, tuple := range rel.Tuples() {
						row := res.RowStrings(tuple)
						want := make(Tuple, len(row))
						sound := true
						for i, name := range row {
							id, ok := full.DB.Syms.Lookup(name)
							if !ok {
								sound = false
								break
							}
							want[i] = id
						}
						if !sound || !fullRel.Contains(want) {
							t.Fatalf("partial fact t%v is not in the true fixpoint", row)
						}
					}
				}
				if got := res.DB.TotalFacts() - base; got != res.Stats.FactsDerived {
					t.Fatalf("Stats.FactsDerived = %d but partial DB holds %d derived facts",
						res.Stats.FactsDerived, got)
				}
			})
		}
	}
}

// TestPreCanceledContext: a context canceled before the call returns
// immediately with the partial (here: empty) result and no work done.
func TestPreCanceledContext(t *testing.T) {
	p, err := parser.ParseProgram(divergentProgram)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := EvalContext(ctx, p, divergentDB(), Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want partial result, got %+v", res)
	}
	if res.Stats.FactsDerived != 0 {
		t.Fatalf("pre-canceled evaluation derived %d facts", res.Stats.FactsDerived)
	}
}

// TestNilContextMeansBackground: nil is accepted and cannot cancel.
func TestNilContextMeansBackground(t *testing.T) {
	p, err := parser.ParseProgram(`p(X) :- e(X,X). ?- p(X).`)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	db.Add("e", "a", "a")
	res, err := EvalContext(nil, p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Partial || res.Incomplete != "" {
		t.Fatalf("complete run flagged partial: %+v", res)
	}
	if res.Stats.FactsDerived != 1 {
		t.Fatalf("FactsDerived = %d, want 1", res.Stats.FactsDerived)
	}
}

// TestLimitsReturnPartialResults: limit aborts carry the same partial
// contract as cancellation — non-nil Result, Partial set, reason named —
// while the sentinel identity (err == ErrFactLimit) stays intact for
// existing callers.
func TestLimitsReturnPartialResults(t *testing.T) {
	p, err := parser.ParseProgram(divergentProgram)
	if err != nil {
		t.Fatal(err)
	}
	res, err := EvalContext(context.Background(), p, divergentDB(), Options{MaxFacts: 10})
	if err != ErrFactLimit {
		t.Fatalf("err = %v, want ErrFactLimit (identical sentinel)", err)
	}
	if res == nil || !res.Partial || res.Incomplete != "fact limit exceeded" {
		t.Fatalf("want partial result, got %+v", res)
	}
	if res.Stats.FactsDerived != 10 {
		t.Fatalf("FactsDerived = %d, want exactly 10", res.Stats.FactsDerived)
	}

	res, err = EvalContext(context.Background(), p, divergentDB(), Options{MaxIterations: 5})
	if err != ErrIterationLimit {
		t.Fatalf("err = %v, want ErrIterationLimit (identical sentinel)", err)
	}
	if res == nil || !res.Partial || res.Incomplete != "iteration limit exceeded" {
		t.Fatalf("want partial result, got %+v", res)
	}
}

// TestUpdateAndRetractHonorContext: the incremental entry points accept a
// context and return partial results on pre-canceled contexts.
func TestUpdateAndRetractHonorContext(t *testing.T) {
	src := `
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), e(Y,Z).
?- t(X,Y).
`
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := 0; i < 40; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	prev, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	added := NewDatabase()
	added.Add("e", "40", "41")
	res, err := UpdateContext(ctx, p, prev, added, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("UpdateContext err = %v, want ErrCanceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("UpdateContext: want partial result, got %+v", res)
	}

	removed := NewDatabase()
	removed.Add("e", "0", "1")
	res, err = RetractContext(ctx, p, prev, removed, Options{})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("RetractContext err = %v, want ErrCanceled", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("RetractContext: want partial result, got %+v", res)
	}
}

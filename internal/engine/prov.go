package engine

// provSet maps derived tuples to their recorded Justification. It replaced
// a map keyed on string-encoded tuples: entries chain off the tuple
// fingerprint and are verified by exact row comparison, so fingerprint
// collisions cost a short scan, never a wrong answer. Provenance is a
// cold path (TrackProvenance only), but it must respect the same exact
// set semantics as the arena.
type provSet struct {
	m map[uint64][]provEntry
}

type provEntry struct {
	row Tuple
	j   Justification
}

func newProvSet() *provSet {
	return &provSet{m: make(map[uint64][]provEntry)}
}

// put records j for t, overwriting any existing entry (the seed stored
// into a plain map; in practice insertDerived only records justifications
// for newly derived facts, so the overwrite never fires).
func (p *provSet) put(t Tuple, j Justification) {
	fp := fingerprint(t)
	for i, e := range p.m[fp] {
		if tupleEq(e.row, t) {
			p.m[fp][i].j = j
			return
		}
	}
	cp := make(Tuple, len(t))
	copy(cp, t)
	p.m[fp] = append(p.m[fp], provEntry{row: cp, j: j})
}

// get returns the justification recorded for t.
func (p *provSet) get(t Tuple) (Justification, bool) {
	for _, e := range p.m[fingerprint(t)] {
		if tupleEq(e.row, t) {
			return e.j, true
		}
	}
	return Justification{}, false
}

// del removes t's entry if present.
func (p *provSet) del(t Tuple) {
	fp := fingerprint(t)
	es := p.m[fp]
	for i, e := range es {
		if tupleEq(e.row, t) {
			es = append(es[:i], es[i+1:]...)
			if len(es) == 0 {
				delete(p.m, fp)
			} else {
				p.m[fp] = es
			}
			return
		}
	}
}

// clone deep-copies the chain map; entries are immutable and shared.
func (p *provSet) clone() *provSet {
	c := newProvSet()
	for fp, es := range p.m {
		c.m[fp] = append([]provEntry(nil), es...)
	}
	return c
}

package engine

import (
	"fmt"
	"math/rand"
	"testing"
)

// boolCutSrc derives a boolean guard from the base relation and routes
// the query through it, so the runtime cut retires rules once the guard
// holds. Used by the Retract-cut regression below.
const boolCutSrc = `
b :- p(X,Y).
a(X,Y) :- p(X,Y), b.
?- a(X,Y).
`

// cutSet returns the indices of rules the trace recorded as retired.
func cutSet(res *Result) map[int]bool {
	out := map[int]bool{}
	if res.Trace == nil {
		return out
	}
	for i := range res.Trace.Rules {
		if res.Trace.Rules[i].CutPass > 0 {
			out[i] = true
		}
	}
	return out
}

// TestRetractAppliesBooleanCut is the regression for the re-derive loop
// skipping ev.applyCut(): after retracting p(2,3), the boolean b still
// holds (re-derived from p(1,2)), so its rule must be retired exactly as
// a fresh Eval of the surviving database retires it — same
// Stats.RulesRetired, same set of rules with trace Cut events. Before
// the fix, Retract reported zero retired rules here.
func TestRetractAppliesBooleanCut(t *testing.T) {
	p := mustParse(t, boolCutSrc)
	db := NewDatabase()
	db.Add("p", "1", "2")
	db.Add("p", "2", "3")
	opt := Options{BooleanCut: true, Trace: true}

	prev, err := Eval(p, db, opt)
	if err != nil {
		t.Fatal(err)
	}
	removed := NewDatabase()
	removed.Add("p", "2", "3")
	got, err := Retract(p, prev, removed, opt)
	if err != nil {
		t.Fatal(err)
	}

	final := NewDatabase()
	final.Add("p", "1", "2")
	want, err := Eval(p, final, opt)
	if err != nil {
		t.Fatal(err)
	}

	if fmt.Sprint(got.Answers(p.Query)) != fmt.Sprint(want.Answers(p.Query)) {
		t.Fatalf("answers diverge\nretract: %v\nscratch: %v",
			got.Answers(p.Query), want.Answers(p.Query))
	}
	if got.Stats.RulesRetired != want.Stats.RulesRetired {
		t.Errorf("RulesRetired = %d after retraction, scratch Eval retires %d",
			got.Stats.RulesRetired, want.Stats.RulesRetired)
	}
	if want.Stats.RulesRetired == 0 {
		t.Fatal("test program never triggers the cut; the regression is vacuous")
	}
	if g, w := cutSet(got), cutSet(want); fmt.Sprint(g) != fmt.Sprint(w) {
		t.Errorf("trace Cut events diverge: retract retired %v, scratch %v", g, w)
	}
}

// randomBoolProgram wraps randomProgram's positive vocabulary with a
// boolean guard on the query path, so incremental chains exercise the
// runtime cut (randomProgram alone has no arity-0 heads). The guard
// reads a base relation: a guard over a derived predicate that the
// cut's cascade stops maintaining has no exact DRed re-derivation (the
// cut legitimately under-computes unneeded relations, and a retraction
// can make the guard need them again), which is a documented limit of
// combining Retract with the cut, not the regression under test.
func randomBoolProgram(rng *rand.Rand) string {
	base := randomProgram(rng)
	base = base[:len(base)-len("?- d1(X,Y).\n")]
	return base + "g :- e(U,V).\nq(X,Y) :- d1(X,Y), g.\n?- q(X,Y).\n"
}

// TestIncrementalMatchesScratch is the incremental-vs-scratch
// equivalence property: random positive programs, random chains of
// Update and Retract operations over the base relations, each step
// compared against a from-scratch Eval of the database the chain has
// built so far.
//
// Without the cut, full fixpoint equality is required relation by
// relation. With the cut, query answers must agree, and — this is what
// the Retract cut fix buys — the final retired-rule stats and the set
// of traced Cut events must match the scratch run whenever the step did
// real incremental work (no-op steps return without a pass, hence
// without a cut barrier, exactly like Update on empty deltas).
func TestIncrementalMatchesScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(929292))
	const trials = 60
	for trial := 0; trial < trials; trial++ {
		var src string
		if trial%2 == 0 {
			src = randomProgram(rng)
		} else {
			src = randomBoolProgram(rng)
		}
		p := mustParse(t, src)
		for _, cut := range []bool{false, true} {
			opt := Options{BooleanCut: cut, Trace: true}
			full := NewDatabase()
			n := 3 + rng.Intn(4)
			for i := 0; i < 2*n; i++ {
				full.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
				full.Add("f", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			}
			res, err := Eval(p, full, opt)
			if err != nil {
				t.Fatalf("trial %d cut=%v: %v\n%s", trial, cut, err, src)
			}
			steps := 3 + rng.Intn(4)
			for step := 0; step < steps; step++ {
				rel := []string{"e", "f"}[rng.Intn(2)]
				effective := false
				if rng.Intn(3) > 0 { // update twice as often as retract
					added := NewDatabase()
					for i := 0; i < 1+rng.Intn(3); i++ {
						x, y := fmt.Sprint(rng.Intn(n+2)), fmt.Sprint(rng.Intn(n+2))
						added.Add(rel, x, y)
						if full.Add(rel, x, y) {
							effective = true
						}
					}
					res, err = Update(p, res, added, opt)
				} else {
					rows := full.Facts(rel)
					if len(rows) == 0 {
						continue
					}
					row := rows[rng.Intn(len(rows))]
					removed := NewDatabase()
					removed.Add(rel, row...)
					effective = full.RemoveFacts(rel, [][]string{row}) > 0
					res, err = Retract(p, res, removed, opt)
				}
				if err != nil {
					t.Fatalf("trial %d cut=%v step %d: %v\n%s", trial, cut, step, err, src)
				}
				want, err := Eval(p, full, opt)
				if err != nil {
					t.Fatalf("trial %d cut=%v step %d scratch: %v\n%s", trial, cut, step, err, src)
				}
				if got, ref := fmt.Sprint(res.Answers(p.Query)), fmt.Sprint(want.Answers(p.Query)); got != ref {
					t.Fatalf("trial %d cut=%v step %d: answers diverge\ninc:     %s\nscratch: %s\n%s",
						trial, cut, step, got, ref, src)
				}
				if !cut {
					for key := range p.Derived {
						if fmt.Sprint(res.DB.Facts(key)) != fmt.Sprint(want.DB.Facts(key)) {
							t.Fatalf("trial %d step %d: %s diverges from scratch\ninc:     %v\nscratch: %v\n%s",
								trial, step, key, res.DB.Facts(key), want.DB.Facts(key), src)
						}
					}
					continue
				}
				if !effective {
					continue // no pass ran, so no cut barrier: stats stay zero
				}
				if res.Stats.RulesRetired != want.Stats.RulesRetired {
					t.Fatalf("trial %d step %d: RulesRetired %d, scratch %d\n%s",
						trial, step, res.Stats.RulesRetired, want.Stats.RulesRetired, src)
				}
				if g, w := cutSet(res), cutSet(want); fmt.Sprint(g) != fmt.Sprint(w) {
					t.Fatalf("trial %d step %d: Cut events %v, scratch %v\n%s", trial, step, g, w, src)
				}
			}
		}
	}
}

// TestRemoveFacts pins the Database removal helper the durable store and
// WAL replay rely on: present rows go, absent rows and unknown constants
// are ignored, and the surviving relation still answers matches.
func TestRemoveFacts(t *testing.T) {
	db := NewDatabase()
	db.Add("p", "1", "2")
	db.Add("p", "2", "3")
	db.Add("p", "3", "4")
	n := db.RemoveFacts("p", [][]string{{"2", "3"}, {"9", "9"}, {"nope", "1"}, {"1"}})
	if n != 1 {
		t.Errorf("RemoveFacts = %d, want 1", n)
	}
	if got := fmt.Sprint(db.Facts("p")); got != "[[1 2] [3 4]]" {
		t.Errorf("surviving facts = %s", got)
	}
	if db.RemoveFacts("absent", [][]string{{"1"}}) != 0 {
		t.Error("removal from a missing relation must be a no-op")
	}
}

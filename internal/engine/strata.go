package engine

import (
	"fmt"
	"sort"

	"existdlog/internal/ast"
)

// Stratify computes a stratification of the program's derived predicates
// for negation-as-failure semantics: stratum(H) ≥ stratum(B) for positive
// dependencies and stratum(H) > stratum(B) for negated ones. It returns
// the stratum of every derived predicate key (base predicates are stratum
// 0) and an error if negation occurs inside a recursive component.
func Stratify(p *ast.Program) (map[string]int, error) {
	type edge struct {
		to  string
		neg bool
	}
	deps := map[string][]edge{}
	for _, r := range p.Rules {
		h := r.Head.Key()
		for _, b := range r.Body {
			if p.Derived[b.Key()] {
				deps[h] = append(deps[h], edge{b.Key(), b.Negated})
			}
		}
	}
	keys := make([]string, 0, len(p.Derived))
	for k := range p.Derived {
		keys = append(keys, k)
	}
	sort.Strings(keys)

	strata := map[string]int{}
	for _, k := range keys {
		strata[k] = 0
	}
	// Bellman-Ford-style relaxation: at most |keys| rounds; one more
	// improvement means a negative cycle (negation through recursion).
	for round := 0; ; round++ {
		changed := false
		for _, h := range keys {
			for _, e := range deps[h] {
				want := strata[e.to]
				if e.neg {
					want++
				}
				if strata[h] < want {
					strata[h] = want
					changed = true
				}
			}
		}
		if !changed {
			return strata, nil
		}
		if round > len(keys)+1 {
			return nil, fmt.Errorf("engine: program is not stratifiable (negation through recursion)")
		}
	}
}

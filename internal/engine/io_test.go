package engine

import (
	"fmt"
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	db := NewDatabase()
	n, err := db.LoadCSV("e", strings.NewReader("a,b\nb,c\na,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("added = %d, want 2 (one duplicate)", n)
	}
	if db.Count("e") != 2 {
		t.Errorf("count = %d", db.Count("e"))
	}
}

func TestLoadCSVArityMismatch(t *testing.T) {
	db := NewDatabase()
	_, err := db.LoadCSV("e", strings.NewReader("a,b\nc\n"))
	if err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Errorf("err = %v", err)
	}
	// Against an existing relation's arity too.
	db2 := NewDatabase()
	db2.Add("e", "x", "y")
	if _, err := db2.LoadCSV("e", strings.NewReader("a,b,c\n")); err == nil {
		t.Error("arity mismatch with existing relation should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.Add("e", "b", "2")
	db.Add("e", "a", "1")
	db.Add("e", "a b", "with,comma")
	var sb strings.Builder
	if err := db.WriteCSV("e", &sb); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase()
	if _, err := db2.LoadCSV("e", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	a, b := db.Facts("e"), db2.Facts("e")
	if len(a) != len(b) {
		t.Fatalf("round trip lost rows: %v vs %v", a, b)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Errorf("row %d col %d: %q vs %q", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestWriteCSVEmptyRelation(t *testing.T) {
	db := NewDatabase()
	var sb strings.Builder
	if err := db.WriteCSV("nope", &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty relation wrote %q", sb.String())
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.Add("e", "a", "b")
	db.Add("e", "with,comma", "with\"quote")
	db.Add("e", "multi\nline", "c:1")
	db.Add("empty@bf") // arity 0, present
	db.Relation("void", 3)
	db.Relation("off", 0) // arity 0, absent
	var sb strings.Builder
	if err := db.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range db.Keys() {
		rel, _ := db.Lookup(key)
		gotRel, ok := got.Lookup(key)
		if !ok {
			t.Fatalf("relation %s lost in round trip", key)
		}
		if gotRel.Arity() != rel.Arity() || gotRel.Len() != rel.Len() {
			t.Fatalf("%s: arity/len %d/%d, want %d/%d",
				key, gotRel.Arity(), gotRel.Len(), rel.Arity(), rel.Len())
		}
		a := fmt.Sprint(db.Facts(key))
		if b := fmt.Sprint(got.Facts(key)); a != b {
			t.Errorf("%s: %s, want %s", key, b, a)
		}
	}
	if len(got.Keys()) != len(db.Keys()) {
		t.Errorf("keys %v, want %v", got.Keys(), db.Keys())
	}
	// Determinism: equal databases serialize byte-identically.
	var sb2 strings.Builder
	if err := got.WriteSnapshot(&sb2); err != nil {
		t.Fatal(err)
	}
	if sb.String() != sb2.String() {
		t.Error("snapshot encoding is not deterministic")
	}
}

// restoredRows decodes a relation's tuples in arena (insertion) order —
// Facts would sort and hide an order difference.
func restoredRows(db *Database, key string) [][]string {
	rel, ok := db.Lookup(key)
	if !ok {
		return nil
	}
	out := make([][]string, 0, rel.Len())
	for i := 0; i < rel.Len(); i++ {
		tpl := rel.Tuple(i)
		row := make([]string, len(tpl))
		for j, id := range tpl {
			row[j] = db.Syms.Name(id)
		}
		out = append(out, row)
	}
	return out
}

// TestSnapshotRestoreRowOrder (ISSUE 8 satellite 4): ReadSnapshot feeds
// the arena in stream order and the stream is sorted, so a restore's
// insertion order is the sorted Facts order — independent of the order
// the original database was built in, and identical across restores.
// This is what lets checkpoint recovery rebuild arenas deterministically.
// The collisions subtest repeats the round trip with fingerprints crushed
// to four bits: the rebuilt arena's set/dedup behavior must stay exact.
func TestSnapshotRestoreRowOrder(t *testing.T) {
	run := func(t *testing.T) {
		db := NewDatabase()
		// Deliberately scrambled insertion order.
		for _, r := range [][2]string{{"z", "9"}, {"a", "1"}, {"m", "5"}, {"a", "0"}, {"k", "7"}} {
			db.Add("e", r[0], r[1])
		}
		db.Add("g", "x")
		var sb strings.Builder
		if err := db.WriteSnapshot(&sb); err != nil {
			t.Fatal(err)
		}
		r1, err := ReadSnapshot(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		r2, err := ReadSnapshot(strings.NewReader(sb.String()))
		if err != nil {
			t.Fatal(err)
		}
		for _, key := range db.Keys() {
			sorted := fmt.Sprint(db.Facts(key))
			a, b := fmt.Sprint(restoredRows(r1, key)), fmt.Sprint(restoredRows(r2, key))
			if a != sorted {
				t.Errorf("%s: restored arena order %s, want sorted order %s", key, a, sorted)
			}
			if a != b {
				t.Errorf("%s: two restores disagree on row order: %s vs %s", key, a, b)
			}
		}
	}
	t.Run("plain", run)
	t.Run("collisions", func(t *testing.T) {
		withFPMask(t, 0xF, func() { run(t) })
	})
}

func TestSnapshotTruncationDetected(t *testing.T) {
	db := NewDatabase()
	db.Add("e", "a", "b")
	db.Add("e", "c", "d")
	var sb strings.Builder
	if err := db.WriteSnapshot(&sb); err != nil {
		t.Fatal(err)
	}
	full := sb.String()
	for _, cut := range []int{0, len(full) / 3, len(full) - 2} {
		if _, err := ReadSnapshot(strings.NewReader(full[:cut])); err == nil {
			t.Errorf("truncation at %d of %d bytes went undetected", cut, len(full))
		}
	}
	if _, err := ReadSnapshot(strings.NewReader("existdlog-db,2\nend,0\n")); err == nil {
		t.Error("unknown format version accepted")
	}
}

package engine

import (
	"strings"
	"testing"
)

func TestLoadCSV(t *testing.T) {
	db := NewDatabase()
	n, err := db.LoadCSV("e", strings.NewReader("a,b\nb,c\na,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("added = %d, want 2 (one duplicate)", n)
	}
	if db.Count("e") != 2 {
		t.Errorf("count = %d", db.Count("e"))
	}
}

func TestLoadCSVArityMismatch(t *testing.T) {
	db := NewDatabase()
	_, err := db.LoadCSV("e", strings.NewReader("a,b\nc\n"))
	if err == nil || !strings.Contains(err.Error(), "row 2") {
		t.Errorf("err = %v", err)
	}
	// Against an existing relation's arity too.
	db2 := NewDatabase()
	db2.Add("e", "x", "y")
	if _, err := db2.LoadCSV("e", strings.NewReader("a,b,c\n")); err == nil {
		t.Error("arity mismatch with existing relation should error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	db := NewDatabase()
	db.Add("e", "b", "2")
	db.Add("e", "a", "1")
	db.Add("e", "a b", "with,comma")
	var sb strings.Builder
	if err := db.WriteCSV("e", &sb); err != nil {
		t.Fatal(err)
	}
	db2 := NewDatabase()
	if _, err := db2.LoadCSV("e", strings.NewReader(sb.String())); err != nil {
		t.Fatal(err)
	}
	a, b := db.Facts("e"), db2.Facts("e")
	if len(a) != len(b) {
		t.Fatalf("round trip lost rows: %v vs %v", a, b)
	}
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Errorf("row %d col %d: %q vs %q", i, j, a[i][j], b[i][j])
			}
		}
	}
}

func TestWriteCSVEmptyRelation(t *testing.T) {
	db := NewDatabase()
	var sb strings.Builder
	if err := db.WriteCSV("nope", &sb); err != nil {
		t.Fatal(err)
	}
	if sb.Len() != 0 {
		t.Errorf("empty relation wrote %q", sb.String())
	}
}

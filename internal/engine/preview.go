package engine

import (
	"existdlog/internal/ast"
	"existdlog/internal/trace"
)

// PlanPreview compiles p against edb and returns the join orders the
// runtime planner would choose for every rule's startup version (delta
// occurrence -1), with the live EDB cardinalities that justify them — the
// EXPLAIN view of the planner, without running the fixpoint. Delta
// versions are not previewed: their orders depend on delta sizes that
// only exist during evaluation (run with Options.Trace and ReorderJoins
// to see them, per pass, in Result.Trace).
func PlanPreview(p *ast.Program, edb *Database) ([]trace.VersionOrder, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	ev := &evaluator{
		opt:      Options{ReorderJoins: true, Trace: true},
		out:      edb.Clone(),
		derived:  p.Derived,
		arity:    make(map[string]int),
		deltas:   make(map[string]*Relation),
		next:     make(map[string]*Relation),
		queryKey: p.Query.Key(),
	}
	ev.run = runner{ev: ev, stats: &ev.stats}
	ev.initTrace(p)
	if err := ev.compile(p); err != nil {
		return nil, err
	}
	ev.planEpoch++
	for _, plan := range ev.plans {
		ev.recordOrder(plan, -1, ev.planVersion(plan, -1))
	}
	return ev.takeOrders(), nil
}

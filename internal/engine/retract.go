package engine

import (
	"context"
	"fmt"

	"existdlog/internal/ast"
	"existdlog/internal/ierr"
	"existdlog/internal/trace"
)

// Retract removes base facts from a previous evaluation result and brings
// the derived relations up to date with the delete-and-rederive (DRed)
// strategy:
//
//  1. over-delete: every derived fact with a derivation using a deleted
//     fact is marked, semi-naively, against the pre-deletion relations;
//  2. the marked facts are removed;
//  3. re-derive: marked facts with alternative derivations from the
//     surviving facts are put back, and the insertions propagate
//     semi-naively.
//
// Positive programs only (negation would need stratified DRed), and
// removed may only name base predicates. prev must come from Eval, Update
// or Retract of the same program.
func Retract(p *ast.Program, prev *Result, removed *Database, opt Options) (*Result, error) {
	return RetractContext(context.Background(), p, prev, removed, opt)
}

// RetractContext is Retract under a context, checked at every loop
// barrier. Caution on aborts: unlike EvalContext, a Result with Partial
// set here can OVER-approximate the post-retraction fixpoint — DRed may
// not have finished propagating deletions — so a partial retract result is
// diagnostic, not a sound database; callers needing soundness should
// re-evaluate from scratch.
func RetractContext(ctx context.Context, p *ast.Program, prev *Result, removed *Database, opt Options) (res *Result, err error) {
	defer ierr.Rescue(&err)
	if ctx == nil {
		ctx = context.Background()
	}
	if opt.MaxIterations == 0 {
		opt.MaxIterations = 1 << 20
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.HasNegation() {
		return nil, fmt.Errorf("engine: incremental retraction under negation is not supported (re-evaluate)")
	}
	for _, key := range removed.Keys() {
		if p.Derived[key] {
			return nil, fmt.Errorf("engine: Retract cannot remove facts for derived predicate %s", key)
		}
	}

	ev := &evaluator{
		opt:      opt,
		ctx:      ctx,
		done:     ctx.Done(),
		out:      prev.DB.Clone(),
		derived:  p.Derived,
		arity:    make(map[string]int),
		deltas:   make(map[string]*Relation),
		next:     make(map[string]*Relation),
		queryKey: p.Query.Key(),
	}
	ev.run = runner{ev: ev, stats: &ev.stats}
	if opt.TrackProvenance {
		ev.prov = make(map[string]*provSet)
		for k, m := range prev.prov {
			ev.prov[k] = m.clone()
		}
	}
	ev.initTrace(p)
	if err := ev.compile(p); err != nil {
		return nil, err
	}

	// Dead sets, seeded with the removed base facts that actually exist.
	// They are Relations: the arena's verified set semantics (Insert
	// reports newness, Contains is exact under fingerprint collisions)
	// are exactly what marking needs.
	dead := map[string]*Relation{}
	markDead := func(key string, t Tuple) bool {
		m, ok := dead[key]
		if !ok {
			m = NewRelation(len(t))
			dead[key] = m
		}
		return m.Insert(t)
	}
	for _, key := range removed.Keys() {
		rel, _ := removed.Lookup(key)
		cur, ok := ev.out.Lookup(key)
		if !ok {
			continue
		}
		for _, row := range removed.Facts(key) {
			t := make(Tuple, len(row))
			miss := false
			for i, name := range row {
				id, ok := ev.out.Syms.Lookup(name)
				if !ok {
					miss = true
					break
				}
				t[i] = id
			}
			if miss || !cur.Contains(t) {
				continue
			}
			if markDead(key, t) {
				d, ok := ev.deltas[key]
				if !ok {
					d = NewRelation(rel.Arity())
					ev.deltas[key] = d
				}
				d.Insert(t)
			}
		}
	}
	if len(ev.deltas) == 0 {
		return ev.finish(nil)
	}

	// Phase 1 — over-delete, semi-naively against PRE-deletion relations:
	// a head is marked if some rule instance uses a marked fact.
	for len(ev.deltas) > 0 {
		if err := ev.checkCtx(); err != nil {
			return ev.finish(err)
		}
		ev.stats.Iterations++
		if ev.stats.Iterations > ev.opt.MaxIterations {
			return ev.finish(ErrIterationLimit)
		}
		ev.next = make(map[string]*Relation)
		deltas := ev.deltaSizes()
		// Over-delete passes replan per pass like every other barrier;
		// marking joins run against the pre-deletion relations.
		ev.planEpoch++
		versions := 0
		var passErr error
	overdelete:
		for pi, plan := range ev.plans {
			if !ev.active[pi] || plan.nDeltas == 0 {
				continue
			}
			for occ := 0; occ < plan.nDeltas; occ++ {
				if _, ok := ev.deltas[deltaKey(plan, occ)]; !ok {
					continue
				}
				versions++
				passErr = ev.run.evalRule(plan, occ, func(t Tuple, _ []FactRef) error {
					ev.stats.Derivations++
					// Over-deletion derivations are attributed to their rule
					// too, so the per-rule partition of Stats.Derivations
					// survives retraction.
					if ev.tc != nil {
						ev.tc.Emit(plan.idx)
					}
					if rel, ok := ev.out.Lookup(plan.headKey); ok && rel.Contains(t) && markDead(plan.headKey, t) {
						nx, ok := ev.next[plan.headKey]
						if !ok {
							nx = NewRelation(len(t))
							ev.next[plan.headKey] = nx
						}
						nx.Insert(t)
					}
					return nil
				})
				if passErr != nil {
					break overdelete
				}
			}
		}
		if ev.tc != nil {
			ev.tc.Merge(ev.run.shard)
			ev.tc.Pass(trace.PassStats{
				Pass: ev.stats.Iterations, Stratum: 0, Versions: versions,
				Deltas: deltas,
			})
		}
		if passErr != nil {
			return ev.finish(passErr)
		}
		ev.deltas = ev.next
	}

	// Phase 2 — physically remove the marked facts (and their recorded
	// justifications).
	for key, dm := range dead {
		old, ok := ev.out.Lookup(key)
		if !ok {
			continue
		}
		fresh := NewRelation(old.Arity())
		for ti := 0; ti < old.Len(); ti++ {
			t := old.Tuple(ti)
			if !dm.Contains(t) {
				fresh.Insert(t)
			}
		}
		ev.out.Replace(key, fresh)
		if ev.prov != nil {
			if m, ok := ev.prov[key]; ok {
				for ti := 0; ti < dm.Len(); ti++ {
					m.del(dm.Tuple(ti))
				}
			}
		}
	}

	// Phase 3 — re-derive: evaluate the rules whose heads were touched,
	// keep heads that were marked dead (alternative derivations), and
	// propagate the re-insertions semi-naively.
	ev.deltas = make(map[string]*Relation)
	ev.next = make(map[string]*Relation)
	// Phase 2 physically changed the relations, so re-derivation plans
	// must not reuse phase 1's cached orders.
	ev.planEpoch++
	for pi, plan := range ev.plans {
		if !ev.active[pi] {
			continue
		}
		dm, touched := dead[plan.headKey]
		if !touched {
			continue
		}
		err := ev.run.evalRule(plan, -1, func(t Tuple, just []FactRef) error {
			if !dm.Contains(t) {
				return nil // still present; nothing to re-derive
			}
			if err := ev.insertDerived(plan, t, just, true); err != nil {
				return err
			}
			return nil
		})
		if err != nil {
			return ev.finish(err)
		}
	}
	ev.deltas = ev.next
	// The re-derivation seeding acts as this run's startup pass, so the
	// boolean cut applies at its barrier and after every propagation pass
	// below — exactly as in Eval and Update. Without it, boolean rules
	// whose heads survive the retraction were never retired, and both
	// Stats.RulesRetired and the trace's Cut events diverged from a fresh
	// Eval of the post-retraction database.
	ev.applyCut()
	for len(ev.deltas) > 0 {
		if err := ev.checkCtx(); err != nil {
			return ev.finish(err)
		}
		ev.stats.Iterations++
		if ev.stats.Iterations > ev.opt.MaxIterations {
			return ev.finish(ErrIterationLimit)
		}
		ev.next = make(map[string]*Relation)
		if err := ev.updatePass(); err != nil {
			return ev.finish(err)
		}
		ev.deltas = ev.next
		ev.applyCut()
	}
	return ev.finish(nil)
}

package engine

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"existdlog/internal/ast"
	"existdlog/internal/parser"
)

// assertTracePartition checks the partition invariant of ISSUE 3: the
// per-rule counters of a traced run must sum exactly to the aggregate
// Stats — Emitted to Derivations, Facts to FactsDerived, Duplicates to
// DuplicateHits, JoinProbes to JoinProbes — and the pass timeline's fact
// counts and cut events must agree with FactsDerived and RulesRetired.
func assertTracePartition(t *testing.T, res *Result, label, src string) {
	t.Helper()
	m := res.Trace
	if m == nil {
		t.Fatalf("%s: Trace is nil on a traced run\n%s", label, src)
	}
	emitted, facts, duplicates, probes := m.Totals()
	s := res.Stats
	if emitted != s.Derivations || facts != int64(s.FactsDerived) ||
		duplicates != s.DuplicateHits || probes != s.JoinProbes {
		t.Fatalf("%s: per-rule sums do not partition Stats\n"+
			"sums:  emitted=%d facts=%d dup=%d probes=%d\n"+
			"stats: %+v\n%s", label, emitted, facts, duplicates, probes, s, src)
	}
	passFacts := int64(0)
	for _, p := range m.Passes {
		passFacts += int64(p.Facts)
	}
	if passFacts != int64(s.FactsDerived) {
		t.Fatalf("%s: pass facts sum %d != FactsDerived %d\n%s",
			label, passFacts, s.FactsDerived, src)
	}
	if m.Retired() != s.RulesRetired {
		t.Fatalf("%s: %d cut events recorded, Stats.RulesRetired = %d\n%s",
			label, m.Retired(), s.RulesRetired, src)
	}
}

// TestTraceMetricsConsistency is the metrics half of the ISSUE 3 property
// test: over 200 random programs (positive and stratified, cut on and
// off), a traced run's per-rule counters partition its Stats, and the
// Parallel strategy reproduces SemiNaive's Metrics value bit for bit —
// same struct, deep-equal, including the pass timeline.
func TestTraceMetricsConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(777001))
	for trial := 0; trial < 200; trial++ {
		var src string
		if trial%2 == 0 {
			src = randomProgram(rng)
		} else {
			src = randomStratifiedProgram(rng)
		}
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		db := NewDatabase()
		n := 3 + rng.Intn(5)
		for i := 0; i < 2*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			db.Add("f", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		cut := trial%4 < 2
		snOpt := Options{Strategy: SemiNaive, BooleanCut: cut, Trace: true}
		parOpt := Options{Strategy: Parallel, BooleanCut: cut, Trace: true,
			Workers: 1 + rng.Intn(8)}

		sn, err := Eval(p, db, snOpt)
		if err != nil {
			t.Fatalf("trial %d semi-naive: %v\n%s", trial, err, src)
		}
		assertTracePartition(t, sn, fmt.Sprintf("trial %d semi-naive", trial), src)

		par, err := Eval(p, db, parOpt)
		if err != nil {
			t.Fatalf("trial %d parallel: %v\n%s", trial, err, src)
		}
		assertTracePartition(t, par, fmt.Sprintf("trial %d parallel", trial), src)

		if !reflect.DeepEqual(sn.Trace, par.Trace) {
			t.Fatalf("trial %d cut=%v: parallel metrics diverge from semi-naive\n"+
				"semi-naive: %+v\nparallel:   %+v\n%s", trial, cut, sn.Trace, par.Trace, src)
		}

		// The naive strategy cannot promise the same pass timeline (it has
		// no deltas), but its per-rule counters must still partition its own
		// Stats.
		nv, err := Eval(p, db, Options{Strategy: Naive, BooleanCut: cut, Trace: true})
		if err != nil {
			t.Fatalf("trial %d naive: %v\n%s", trial, err, src)
		}
		assertTracePartition(t, nv, fmt.Sprintf("trial %d naive", trial), src)
	}
}

// TestTraceDoesNotPerturbEvaluation pins the observer effect to zero:
// enabling Trace must not change answers, Stats, or insertion order.
func TestTraceDoesNotPerturbEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(777002))
	for trial := 0; trial < 40; trial++ {
		src := randomStratifiedProgram(rng)
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatal(err)
		}
		db := NewDatabase()
		n := 3 + rng.Intn(4)
		for i := 0; i < 2*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			db.Add("f", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		plain, err := Eval(p, db, Options{BooleanCut: true})
		if err != nil {
			t.Fatal(err)
		}
		traced, err := Eval(p, db, Options{BooleanCut: true, Trace: true})
		if err != nil {
			t.Fatal(err)
		}
		if plain.Stats != traced.Stats {
			t.Fatalf("trial %d: tracing changed Stats\nplain:  %+v\ntraced: %+v\n%s",
				trial, plain.Stats, traced.Stats, src)
		}
		for key := range p.Derived {
			if fmt.Sprint(orderedFacts(plain, key)) != fmt.Sprint(orderedFacts(traced, key)) {
				t.Fatalf("trial %d: tracing changed %s insertion order\n%s", trial, key, src)
			}
		}
	}
}

// replayNode checks that one provenance tree node is a genuine rule
// instance: the node's fact matches the rule's head under a substitution
// that simultaneously matches each positive, non-builtin body literal to
// the corresponding child fact, in body order (negated literals have no
// recorded body facts; builtins never contribute FactRefs).
func replayNode(p *ast.Program, res *Result, node *Tree) error {
	if node.Rule < 0 {
		if p.Derived[node.Fact.Key] {
			return fmt.Errorf("derived fact %s(%v) recorded as a leaf",
				node.Fact.Key, res.RowStrings(node.Fact.Row))
		}
		if len(node.Children) != 0 {
			return fmt.Errorf("base fact %s has children", node.Fact.Key)
		}
		return nil
	}
	if node.Rule >= len(p.Rules) {
		return fmt.Errorf("rule index %d out of range", node.Rule)
	}
	r := p.Rules[node.Rule]
	sub := map[string]string{}
	match := func(a ast.Atom, row []string) error {
		if a.Key() != "" && len(a.Args) != len(row) {
			return fmt.Errorf("arity mismatch matching %s against %v", a, row)
		}
		for i, term := range a.Args {
			switch term.Kind {
			case ast.Constant:
				if term.Name != row[i] {
					return fmt.Errorf("constant %s != %s in %s", term.Name, row[i], a)
				}
			case ast.Variable:
				if term.IsAnon() {
					continue
				}
				if v, ok := sub[term.Name]; ok {
					if v != row[i] {
						return fmt.Errorf("variable %s bound to both %s and %s in %s",
							term.Name, v, row[i], a)
					}
				} else {
					sub[term.Name] = row[i]
				}
			}
		}
		return nil
	}
	if r.Head.Key() != node.Fact.Key {
		return fmt.Errorf("node %s produced by rule %d with head %s",
			node.Fact.Key, node.Rule+1, r.Head.Key())
	}
	if err := match(r.Head, res.RowStrings(node.Fact.Row)); err != nil {
		return fmt.Errorf("head of rule %d: %w", node.Rule+1, err)
	}
	ci := 0
	for _, b := range r.Body {
		if b.Negated {
			continue // negated literals contribute no body facts
		}
		if ci >= len(node.Children) {
			return fmt.Errorf("rule %d: body literal %s has no recorded child", node.Rule+1, b)
		}
		c := node.Children[ci]
		ci++
		if b.Key() != c.Fact.Key {
			return fmt.Errorf("rule %d: body literal %s justified by %s", node.Rule+1, b, c.Fact.Key)
		}
		if err := match(b, res.RowStrings(c.Fact.Row)); err != nil {
			return fmt.Errorf("rule %d body: %w", node.Rule+1, err)
		}
	}
	if ci != len(node.Children) {
		return fmt.Errorf("rule %d: %d children recorded, %d positive literals",
			node.Rule+1, len(node.Children), ci)
	}
	for _, c := range node.Children {
		if err := replayNode(p, res, c); err != nil {
			return err
		}
	}
	return nil
}

// TestWhyTreesReplay is the provenance half of the ISSUE 3 property test:
// over 200 random programs, every derived fact's Why tree replays — each
// node is a rule instance whose body atoms are exactly its children's
// heads under one substitution, and every leaf is an EDB fact.
func TestWhyTreesReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(777003))
	for trial := 0; trial < 200; trial++ {
		src := randomProgram(rng)
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		db := NewDatabase()
		n := 3 + rng.Intn(4)
		for i := 0; i < 2*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			db.Add("f", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		opt := Options{TrackProvenance: true}
		if trial%2 == 1 {
			opt.Strategy = Parallel
			opt.Workers = 1 + rng.Intn(4)
		}
		res, err := Eval(p, db, opt)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		for key := range p.Derived {
			for _, row := range res.DB.Facts(key) {
				tree, ok := res.Derivation(key, row)
				if !ok {
					t.Fatalf("trial %d: no derivation for %s(%v)\n%s", trial, key, row, src)
				}
				if err := replayNode(p, res, tree); err != nil {
					t.Fatalf("trial %d: tree for %s(%v) does not replay: %v\n%s",
						trial, key, row, err, src)
				}
			}
		}
	}
}

// TestTraceIncrementalPartition extends the partition invariant to the
// incremental paths: Update and Retract runs with Trace set must also
// have per-rule counters summing to their own Stats.
func TestTraceIncrementalPartition(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(8)
	base, err := Eval(p, db, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	assertTracePartition(t, base, "eval", tcSrc)

	added := NewDatabase()
	added.Add("p", "8", "9")
	upd, err := Update(p, base, added, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	assertTracePartition(t, upd, "update", tcSrc)
	if len(upd.Trace.Passes) == 0 {
		t.Fatal("update recorded no passes")
	}

	removed := NewDatabase()
	removed.Add("p", "3", "4")
	ret, err := Retract(p, upd, removed, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	assertTracePartition(t, ret, "retract", tcSrc)
}

// --- zero-cost-when-off regression (ISSUE 3 satellite 3) ---------------

// Arena baselines, re-pinned after the columnar storage rewrite (ISSUE 8)
// with exactly these fixtures: Eval(tcSrc, chainDB(30)) = 1715 allocs
// (seed: 7828), the probe-heavy join below = 154 (seed: 8136) — the
// per-tuple copies, string keys, and per-emission head allocations are
// gone, so what remains is per-pass bookkeeping. The limits leave ~10%
// headroom for incidental runtime variation; reintroducing a per-fact,
// per-probe, or per-emission allocation would blow through them (the
// chain run alone makes tens of thousands of probe and emit calls).
const (
	seedChainAllocLimit = 1900
	seedProbeAllocLimit = 180
)

const probeSrc = `
q(X,Z) :- e(X,Y), f(Y,Z).
?- q(X,Z).
`

func probeDB() *Database {
	db := NewDatabase()
	for i := 0; i < 100; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i%10))
		db.Add("f", fmt.Sprint(i%10), fmt.Sprint(i))
	}
	return db
}

// TestTraceDisabledAllocs proves the off-path cost of the tracing hooks
// is zero allocations: a disabled-trace Eval stays within the seed
// baseline, and its Stats equal the seed's exactly.
func TestTraceDisabledAllocs(t *testing.T) {
	p := mustParse(t, tcSrc)
	db := chainDB(30)
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Eval(p, db, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > seedChainAllocLimit {
		t.Errorf("disabled-trace Eval allocates %.0f, seed baseline limit %d",
			allocs, seedChainAllocLimit)
	}

	pq := mustParse(t, probeSrc)
	dbq := probeDB()
	allocs = testing.AllocsPerRun(10, func() {
		if _, err := Eval(pq, dbq, Options{}); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > seedProbeAllocLimit {
		t.Errorf("disabled-trace probe-heavy Eval allocates %.0f, seed baseline limit %d",
			allocs, seedProbeAllocLimit)
	}

	// The seed's Stats for the 10-chain closure, pinned: instrumentation
	// must not change what is counted.
	res, err := Eval(p, chainDB(10), Options{})
	if err != nil {
		t.Fatal(err)
	}
	want := Stats{Iterations: 11, FactsDerived: 55, Derivations: 55, JoinProbes: 122}
	if res.Stats != want {
		t.Errorf("Stats = %+v, seed = %+v", res.Stats, want)
	}
	traced, err := Eval(p, chainDB(10), Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if traced.Stats != want {
		t.Errorf("traced Stats = %+v, seed = %+v", traced.Stats, want)
	}
}

// BenchmarkEvalTraceOff / BenchmarkEvalTraceOn are the benchmark pair
// behind the alloc regression test: compare with
// go test -bench 'EvalTrace' -benchmem ./internal/engine/.
func BenchmarkEvalTraceOff(b *testing.B) { benchmarkEvalTrace(b, false) }
func BenchmarkEvalTraceOn(b *testing.B)  { benchmarkEvalTrace(b, true) }

func benchmarkEvalTrace(b *testing.B, on bool) {
	p, err := parser.ParseProgram(tcSrc)
	if err != nil {
		b.Fatal(err)
	}
	db := chainDB(30)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Eval(p, db, Options{Trace: on}); err != nil {
			b.Fatal(err)
		}
	}
}

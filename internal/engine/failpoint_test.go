//go:build failpoint

package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"existdlog/internal/failpoint"
	"existdlog/internal/ierr"
	"existdlog/internal/parser"
)

// The fault suite evaluates this transitive closure over a long chain: it
// runs enough passes, versions, and inserts that every failpoint site is
// reached under every strategy.
const faultProgram = `
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), e(Y,Z).
?- t(X,Y).
`

func faultDB(n int) *Database {
	db := NewDatabase()
	for i := 0; i < n; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	return db
}

// TestInjectedErrorPerSite arms each engine failpoint in turn with a
// distinctive error and checks the evaluation contract at every site: the
// injected error surfaces (exactly that error, wrapped at most), the
// result is a sound partial, shutdown is clean, and no goroutines leak.
func TestInjectedErrorPerSite(t *testing.T) {
	p, err := parser.ParseProgram(faultProgram)
	if err != nil {
		t.Fatal(err)
	}
	db := faultDB(60)
	full, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fullRel, _ := full.DB.Lookup("t")
	// Sites reached per strategy: Naive evaluates rules inline (no version
	// buffers, no workers), so only the pass barrier and the insert path
	// exist there; SemiNaive runs versions and merges on one goroutine;
	// Parallel adds the spawn site.
	sitesFor := map[Strategy][]string{
		Naive:     {FPPass, FPInsert},
		SemiNaive: {FPPass, FPMerge, FPInsert, FPWorker},
		Parallel:  {FPPass, FPMerge, FPInsert, FPSpawn, FPWorker},
	}
	for _, s := range allStrategies {
		for _, site := range sitesFor[s.opt.Strategy] {
			t.Run(fmt.Sprintf("%s/%s", s.name, strings.TrimPrefix(site, "engine/")), func(t *testing.T) {
				defer checkNoLeakedGoroutines(t)()
				defer failpoint.Reset()
				boom := fmt.Errorf("boom at %s", site)
				// Fire on a later hit so some sound work lands first. The
				// spawn site is hit at most workers× per pass and only in
				// passes wide enough to fan out, so it fires earlier.
				after := 3
				if site == FPSpawn {
					after = 2
				}
				failpoint.EnableError(site, boom, after)
				res, err := EvalContext(context.Background(), p, db, s.opt)
				if failpoint.Hits(site) == 0 {
					t.Fatalf("site %s was never reached", site)
				}
				if !errors.Is(err, boom) {
					t.Fatalf("err = %v, want the injected %v", err, boom)
				}
				if res == nil || !res.Partial || res.Incomplete == "" {
					t.Fatalf("want partial result, got %+v", res)
				}
				// Soundness: every partial fact is in the true fixpoint.
				if rel, ok := res.DB.Lookup("t"); ok {
					for _, tuple := range rel.Tuples() {
						row := res.RowStrings(tuple)
						want := make(Tuple, len(row))
						for i, name := range row {
							id, ok := full.DB.Syms.Lookup(name)
							if !ok {
								t.Fatalf("partial fact t%v uses unknown constant", row)
							}
							want[i] = id
						}
						if !fullRel.Contains(want) {
							t.Fatalf("partial fact t%v is not in the true fixpoint", row)
						}
					}
				}
				if got := res.DB.TotalFacts() - db.TotalFacts(); got != res.Stats.FactsDerived {
					t.Fatalf("Stats.FactsDerived = %d but partial DB holds %d derived facts",
						res.Stats.FactsDerived, got)
				}
			})
		}
	}
}

// TestErrorOnEveryHitSingleSurface floods the worker site — the error
// fires on every rule version across 8 workers — and pins that exactly
// one error comes back (the first in version order), with a clean drain.
func TestErrorOnEveryHitSingleSurface(t *testing.T) {
	defer checkNoLeakedGoroutines(t)()
	defer failpoint.Reset()
	p, err := parser.ParseProgram(faultProgram)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("every worker fails")
	failpoint.EnableError(FPWorker, boom, 1)
	res, err := EvalContext(context.Background(), p, faultDB(60), Options{Strategy: Parallel, Workers: 8})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want injected error", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want partial result, got %+v", res)
	}
	if n := failpoint.Hits(FPWorker); n == 0 {
		t.Fatal("worker site never hit")
	}
}

// TestWorkerPanicBecomesInternalError injects a panic on a parallel
// worker: the bulkhead must catch it, convert it to a stack-carrying
// *ierr.InternalError, drain the pool, and return a partial result —
// never crash the process or deadlock the pass barrier.
func TestWorkerPanicBecomesInternalError(t *testing.T) {
	for _, s := range allStrategies {
		if s.opt.Strategy == Naive {
			continue // no version bulkhead: naive panics are caught by the API-boundary Rescue
		}
		t.Run(s.name, func(t *testing.T) {
			defer checkNoLeakedGoroutines(t)()
			defer failpoint.Reset()
			p, err := parser.ParseProgram(faultProgram)
			if err != nil {
				t.Fatal(err)
			}
			failpoint.EnablePanic(FPWorker, 2)
			res, err := EvalContext(context.Background(), p, faultDB(40), s.opt)
			if err == nil {
				t.Fatal("injected panic did not surface")
			}
			var ie *ierr.InternalError
			if !errors.As(err, &ie) {
				t.Fatalf("err = %v (%T), want *ierr.InternalError", err, err)
			}
			if !strings.Contains(fmt.Sprint(ie.Recovered), "injected panic") {
				t.Fatalf("recovered value %v does not name the injection", ie.Recovered)
			}
			if len(ie.Stack) == 0 {
				t.Fatal("internal error carries no stack")
			}
			if res == nil || !res.Partial {
				t.Fatalf("want partial result, got %+v", res)
			}
		})
	}
}

// TestBoundaryRescueCatchesPanic: a panic outside the worker bulkhead
// (here: the naive pass barrier) is recovered at the API boundary into a
// *ierr.InternalError rather than escaping to the caller.
func TestBoundaryRescueCatchesPanic(t *testing.T) {
	defer checkNoLeakedGoroutines(t)()
	defer failpoint.Reset()
	p, err := parser.ParseProgram(faultProgram)
	if err != nil {
		t.Fatal(err)
	}
	failpoint.EnablePanic(FPPass, 2)
	_, err = EvalContext(context.Background(), p, faultDB(40), Options{Strategy: Naive})
	var ie *ierr.InternalError
	if !errors.As(err, &ie) {
		t.Fatalf("err = %v (%T), want *ierr.InternalError", err, err)
	}
	if len(ie.Stack) == 0 {
		t.Fatal("internal error carries no stack")
	}
}

// TestDelayedWorkerHitsDeadline slows every worker down and runs under a
// deadline: the injected latency must not defeat cancellation — the pass
// drains and ErrDeadline surfaces.
func TestDelayedWorkerHitsDeadline(t *testing.T) {
	defer checkNoLeakedGoroutines(t)()
	defer failpoint.Reset()
	p, err := parser.ParseProgram(faultProgram)
	if err != nil {
		t.Fatal(err)
	}
	failpoint.EnableDelay(FPWorker, 10*time.Millisecond, 1)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	res, err := EvalContext(ctx, p, faultDB(120), Options{Strategy: Parallel, Workers: 4})
	if !errors.Is(err, ErrDeadline) {
		t.Fatalf("err = %v, want ErrDeadline", err)
	}
	// Bound is generous: the deadline plus one in-flight delayed version
	// per worker plus scheduling slack.
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("drain after deadline took %v", elapsed)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want partial result, got %+v", res)
	}
}

// TestSpawnFaultFallsBackCleanly: failing the worker spawn site must not
// deadlock the pass (the pass returns the spawn error after the already
// spawned workers drain).
func TestSpawnFaultFallsBackCleanly(t *testing.T) {
	defer checkNoLeakedGoroutines(t)()
	defer failpoint.Reset()
	p, err := parser.ParseProgram(faultProgram)
	if err != nil {
		t.Fatal(err)
	}
	boom := errors.New("cannot spawn")
	failpoint.EnableError(FPSpawn, boom, 2) // first worker spawns, second fails
	res, err := EvalContext(context.Background(), p, faultDB(60), Options{Strategy: Parallel, Workers: 8})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want spawn error", err)
	}
	if res == nil || !res.Partial {
		t.Fatalf("want partial result, got %+v", res)
	}
}

// TestNoFaultsBitIdentical: with the failpoint build active but nothing
// armed, Parallel remains bit-identical to SemiNaive — the instrumented
// build changes nothing unless a fault is injected.
func TestNoFaultsBitIdentical(t *testing.T) {
	failpoint.Reset()
	p, err := parser.ParseProgram(faultProgram)
	if err != nil {
		t.Fatal(err)
	}
	db := faultDB(80)
	seq, err := Eval(p, db, Options{Strategy: SemiNaive})
	if err != nil {
		t.Fatal(err)
	}
	par, err := Eval(p, db, Options{Strategy: Parallel, Workers: 6})
	if err != nil {
		t.Fatal(err)
	}
	if seq.Stats != par.Stats {
		t.Fatalf("stats diverge under failpoint build:\nseq %+v\npar %+v", seq.Stats, par.Stats)
	}
	a, b := orderedFacts(seq, "t"), orderedFacts(par, "t")
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatal("insertion order diverges under failpoint build")
	}
}

package engine

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"existdlog/internal/parser"
)

func TestStratifyBasics(t *testing.T) {
	p := mustParse(t, `
reach(X) :- source(X).
reach(Y) :- reach(X), e(X,Y).
unreachable(X) :- node(X), not reach(X).
?- unreachable(X).
`)
	strata, err := Stratify(p)
	if err != nil {
		t.Fatal(err)
	}
	if strata["reach"] != 0 || strata["unreachable"] != 1 {
		t.Errorf("strata = %v", strata)
	}
}

func TestStratifyRejectsNegativeCycle(t *testing.T) {
	p := mustParse(t, `
win(X) :- move(X,Y), not win2(Y).
win2(X) :- win(X).
win(X) :- base(X).
win2(X) :- base(X).
?- win(X).
`)
	if _, err := Stratify(p); err == nil {
		t.Error("negation through recursion must be rejected")
	}
	if _, err := Eval(p, NewDatabase(), Options{}); err == nil {
		t.Error("Eval must reject unstratifiable programs")
	}
}

// The classic set-difference / unreachable-nodes query.
func TestNegationUnreachable(t *testing.T) {
	p := mustParse(t, `
reach(X) :- source(X).
reach(Y) :- reach(X), e(X,Y).
unreachable(X) :- node(X), not reach(X).
?- unreachable(X).
`)
	db := NewDatabase()
	for i := 0; i < 10; i++ {
		db.Add("node", fmt.Sprint(i))
	}
	for i := 0; i < 4; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	db.Add("source", "0")
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := res.DB.Facts("unreachable")
	if len(got) != 5 { // nodes 5..9
		t.Fatalf("unreachable = %v", got)
	}
	for _, row := range got {
		var n int
		fmt.Sscan(row[0], &n)
		if n < 5 {
			t.Errorf("node %d is reachable", n)
		}
	}
}

// Negated literal written FIRST in the body: the engine must defer it
// until its variables are bound.
func TestNegationLiteralOrderIndependent(t *testing.T) {
	p1 := mustParse(t, `
only(X) :- a(X), not b(X).
?- only(X).
`)
	p2 := mustParse(t, `
only(X) :- not b(X), a(X).
?- only(X).
`)
	db := NewDatabase()
	db.Add("a", "1")
	db.Add("a", "2")
	db.Add("b", "2")
	r1, err := Eval(p1, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Eval(p2, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(r1.DB.Facts("only")) != fmt.Sprint(r2.DB.Facts("only")) {
		t.Errorf("literal order changed negation results: %v vs %v",
			r1.DB.Facts("only"), r2.DB.Facts("only"))
	}
	if got := r1.DB.Facts("only"); len(got) != 1 || got[0][0] != "1" {
		t.Errorf("only = %v", got)
	}
}

// Negation with a wildcard: not p(X,_) means "no p-tuple starts with X".
func TestNegationWildcard(t *testing.T) {
	p := mustParse(t, `
leaf(X) :- node(X), not e(X,_).
?- leaf(X).
`)
	db := NewDatabase()
	db.Add("node", "a")
	db.Add("node", "b")
	db.Add("node", "c")
	db.Add("e", "a", "b")
	db.Add("e", "b", "c")
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.DB.Facts("leaf"); len(got) != 1 || got[0][0] != "c" {
		t.Errorf("leaf = %v", got)
	}
}

// Three strata: derived, its complement, and a predicate over the
// complement.
func TestNegationThreeStrata(t *testing.T) {
	p := mustParse(t, `
r(X,Y) :- e(X,Y).
r(X,Y) :- r(X,Z), e(Z,Y).
nr(X,Y) :- node(X), node(Y), not r(X,Y).
island(X) :- node(X), not hasout(X).
hasout(X) :- node(X), nr(X,Y), neq(X,Y).
?- island(X).
`)
	db := NewDatabase()
	for _, n := range []string{"a", "b", "c"} {
		db.Add("node", n)
	}
	db.Add("e", "a", "b")
	// a reaches b; islands under this contrived definition: nodes with no
	// non-reachable distinct partner. From a: nr(a,c),nr(a,a) -> hasout.
	res, err := Eval(p, db, Options{})
	if err != nil {
		t.Fatal(err)
	}
	strata, _ := Stratify(p)
	if strata["island"] <= strata["nr"] || strata["nr"] <= strata["r"] {
		t.Errorf("strata ordering wrong: %v", strata)
	}
	_ = res
}

// Naive and semi-naive must agree under stratified negation.
func TestNegationNaiveSemiNaiveAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(606))
	src := `
r(X,Y) :- e(X,Y).
r(X,Y) :- r(X,Z), e(Z,Y).
nr(X,Y) :- n(X), n(Y), not r(X,Y).
top(X) :- n(X), not nr(X,X).
?- top(X).
`
	p := mustParse(t, src)
	for trial := 0; trial < 15; trial++ {
		db := NewDatabase()
		n := 3 + rng.Intn(4)
		for i := 0; i < n; i++ {
			db.Add("n", fmt.Sprint(i))
		}
		for i := 0; i < 2*n; i++ {
			db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
		}
		sn, err := Eval(p, db, Options{Strategy: SemiNaive})
		if err != nil {
			t.Fatal(err)
		}
		nv, err := Eval(p, db, Options{Strategy: Naive})
		if err != nil {
			t.Fatal(err)
		}
		for _, pred := range []string{"r", "nr", "top"} {
			if fmt.Sprint(sn.DB.Facts(pred)) != fmt.Sprint(nv.DB.Facts(pred)) {
				t.Fatalf("trial %d: %s differs", trial, pred)
			}
		}
	}
}

// Reordering and the boolean cut stay sound under negation.
func TestNegationWithReorderAndCut(t *testing.T) {
	p := mustParse(t, `
ok :- conf(C), not broken(C).
alert(X) :- sensor(X), ok.
broken(C) :- fault(C).
?- alert(X).
`)
	db := NewDatabase()
	db.Add("conf", "c1")
	db.Add("conf", "c2")
	db.Add("fault", "c1")
	db.Add("sensor", "s1")
	for _, opts := range []Options{
		{},
		{ReorderJoins: true},
		{BooleanCut: true},
		{ReorderJoins: true, BooleanCut: true},
	} {
		res, err := Eval(p, db, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.DB.Count("alert") != 1 {
			t.Errorf("opts %+v: alert = %v", opts, res.DB.Facts("alert"))
		}
	}
}

func TestParseNegation(t *testing.T) {
	p := mustParse(t, `
a(X) :- b(X), not c(X).
?- a(X).
`)
	if !p.Rules[0].Body[1].Negated {
		t.Error("negation not parsed")
	}
	if p.Rules[0].String() != "a(X) :- b(X), not c(X)." {
		t.Errorf("String = %q", p.Rules[0].String())
	}
	// A predicate actually NAMED not still works with parentheses.
	p2 := mustParse(t, `
a(X) :- not(X).
?- a(X).
`)
	if p2.Rules[0].Body[0].Pred != "not" || p2.Rules[0].Body[0].Negated {
		t.Errorf("not/1 predicate mishandled: %s", p2.Rules[0])
	}
	// Unsafe negation rejected.
	if _, err := parser.ParseProgram(`a(X) :- b(X), not c(Y).
?- a(X).`); err == nil || !strings.Contains(err.Error(), "negated literal") {
		t.Errorf("unsafe negation should be rejected, got %v", err)
	}
}

package engine

import (
	"bufio"
	"fmt"
	"math/rand"
	"os"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// Adversarial fingerprint-collision suite (ISSUE 8 satellite 1). Genuine
// 64-bit collisions cannot be brute-forced, so the tests narrow fpMask —
// the sanctioned internal hook — to make collisions routine (mask 0xF:
// sixteen distinct fingerprints for the whole universe; mask 0: every
// tuple collides with every other) and then assert that membership,
// insert newness, insertion order, projection-index probes, provenance,
// and DRed retraction remain exact. A committed regression seed pins the
// production hash: tuple pairs that collide under mask 0xFFFF today must
// still collide when the test reruns, so a hash change is loud, not
// silent.

// withFPMask runs f with fpMask narrowed to mask. Relations must be
// created AND used under the same mask (a relation hashes consistently
// for its lifetime), so f does both; the mask is restored afterwards.
func withFPMask(t *testing.T, mask uint64, f func()) {
	t.Helper()
	old := fpMask
	fpMask = mask
	defer func() { fpMask = old }()
	f()
}

// withRefCheck runs f with the map-of-strings differential oracle mirrored
// into every relation created inside it.
func withRefCheck(t *testing.T, f func()) {
	t.Helper()
	refCheckEnabled = true
	defer func() { refCheckEnabled = false }()
	f()
}

// TestFingerprintCollisionSetExactness drives randomized inserts, lookups,
// and probes against relations whose fingerprints are crushed to a handful
// of values, with the string-keyed oracle verifying every operation.
func TestFingerprintCollisionSetExactness(t *testing.T) {
	for _, mask := range []uint64{0, 0xF, 0xFF} {
		mask := mask
		t.Run(fmt.Sprintf("mask%#x", mask), func(t *testing.T) {
			withFPMask(t, mask, func() {
				withRefCheck(t, func() {
					rng := rand.New(rand.NewSource(int64(mask) + 7))
					r := NewRelation(3)
					var mirror []Tuple
					seen := map[[3]int32]bool{}
					for step := 0; step < 3000; step++ {
						switch rng.Intn(4) {
						case 0, 1:
							tpl := Tuple{int32(rng.Intn(12)), int32(rng.Intn(12)), int32(rng.Intn(12))}
							key := [3]int32{tpl[0], tpl[1], tpl[2]}
							isNew := r.Insert(tpl)
							if isNew == seen[key] {
								t.Fatalf("step %d: Insert(%v) newness=%v, want %v", step, tpl, isNew, !seen[key])
							}
							if !seen[key] {
								seen[key] = true
								mirror = append(mirror, append(Tuple(nil), tpl...))
							}
						case 2:
							tpl := Tuple{int32(rng.Intn(12)), int32(rng.Intn(12)), int32(rng.Intn(12))}
							if r.Contains(tpl) != seen[[3]int32{tpl[0], tpl[1], tpl[2]}] {
								t.Fatalf("step %d: Contains(%v) wrong", step, tpl)
							}
						default:
							nCols := 1 + rng.Intn(3)
							cols := rng.Perm(3)[:nCols]
							vals := make([]int32, nCols)
							for i := range vals {
								vals[i] = int32(rng.Intn(12))
							}
							got := map[int]bool{}
							for _, ti := range r.Match(cols, vals) {
								got[int(ti)] = true
							}
							for i, tpl := range mirror {
								want := true
								for j, c := range cols {
									if tpl[c] != vals[j] {
										want = false
									}
								}
								if got[i] != want {
									t.Fatalf("step %d: Match(%v,%v) row %d=%v, want %v", step, cols, vals, i, got[i], want)
								}
							}
							if len(got) > len(mirror) {
								t.Fatalf("step %d: Match returned phantom rows", step)
							}
						}
					}
					// Insertion order survives collisions.
					if r.Len() != len(mirror) {
						t.Fatalf("Len=%d, mirror=%d", r.Len(), len(mirror))
					}
					for i, want := range mirror {
						if !tupleEq(r.Tuple(i), want) {
							t.Fatalf("row %d = %v, want %v", i, r.Tuple(i), want)
						}
					}
					// Clone isolation under collisions.
					c := r.Clone()
					extra := Tuple{99, 99, 99}
					c.Insert(extra)
					if r.Contains(extra) {
						t.Fatal("clone insert leaked into original")
					}
					if !c.Contains(extra) || c.Len() != r.Len()+1 {
						t.Fatal("clone lost its own insert")
					}
				})
			})
		})
	}
}

// TestFingerprintCollisionRegressionSeed re-hashes the committed colliding
// tuple pairs: each pair must still collide under its recorded mask (the
// hash function is pinned — see testdata/fp_collisions.csv for how to
// regenerate after an intentional change), and a relation fed both halves
// of every pair must keep them exactly apart.
func TestFingerprintCollisionRegressionSeed(t *testing.T) {
	f, err := os.Open("testdata/fp_collisions.csv")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	type pair struct {
		mask uint64
		a, b Tuple
	}
	var pairs []pair
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		parts := strings.Split(line, ",")
		if len(parts) != 7 {
			t.Fatalf("malformed seed line %q", line)
		}
		nums := make([]int64, 7)
		for i, p := range parts {
			n, err := strconv.ParseInt(p, 10, 64)
			if err != nil {
				t.Fatalf("seed line %q: %v", line, err)
			}
			nums[i] = n
		}
		pairs = append(pairs, pair{
			mask: uint64(nums[0]),
			a:    Tuple{int32(nums[1]), int32(nums[2]), int32(nums[3])},
			b:    Tuple{int32(nums[4]), int32(nums[5]), int32(nums[6])},
		})
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if len(pairs) < 3 {
		t.Fatalf("only %d seed pairs — regenerate testdata/fp_collisions.csv", len(pairs))
	}
	for i, p := range pairs {
		if tupleEq(p.a, p.b) {
			t.Fatalf("seed %d: tuples not distinct: %v", i, p.a)
		}
		withFPMask(t, p.mask, func() {
			if fingerprint(p.a) != fingerprint(p.b) {
				t.Fatalf("seed %d: %v and %v no longer collide under mask %#x — "+
					"the fingerprint function changed; regenerate testdata/fp_collisions.csv",
					i, p.a, p.b, p.mask)
			}
			r := NewRelation(3)
			if !r.Insert(p.a) || !r.Insert(p.b) {
				t.Fatalf("seed %d: colliding pair not both new", i)
			}
			if r.Insert(p.a) || r.Insert(p.b) {
				t.Fatalf("seed %d: duplicate insert accepted", i)
			}
			if !r.Contains(p.a) || !r.Contains(p.b) {
				t.Fatalf("seed %d: membership lost a colliding tuple", i)
			}
			// Probe each tuple's full projection: exactly its own row.
			for _, probe := range []Tuple{p.a, p.b} {
				got := r.Match([]int{0, 1, 2}, probe)
				if len(got) != 1 || !tupleEq(r.Tuple(int(got[0])), probe) {
					t.Fatalf("seed %d: Match(%v) = %v", i, probe, got)
				}
			}
		})
	}
}

// TestDRedRetractionUnderCollisions evaluates transitive closure, retracts
// edges with fingerprints crushed to four bits (the DRed dead sets, the
// rebuilt relations, and the provenance map all key on fingerprints), and
// checks the result against a from-scratch evaluation of the surviving
// facts — answers, Stats-visible fact counts, and provenance replay.
func TestDRedRetractionUnderCollisions(t *testing.T) {
	withFPMask(t, 0xF, func() {
		withRefCheck(t, func() {
			p := mustParse(t, tcSrc)
			opt := Options{TrackProvenance: true}
			full, err := Eval(p, chainDB(12), opt)
			if err != nil {
				t.Fatal(err)
			}
			removed := NewDatabase()
			removed.Add("p", "4", "5")
			removed.Add("p", "9", "10")
			ret, err := Retract(p, full, removed, opt)
			if err != nil {
				t.Fatal(err)
			}

			scratchDB := chainDB(12)
			if scratchDB.RemoveFacts("p", [][]string{{"4", "5"}, {"9", "10"}}) != 2 {
				t.Fatal("RemoveFacts under collisions lost a row")
			}
			scratch, err := Eval(p, scratchDB, opt)
			if err != nil {
				t.Fatal(err)
			}
			for _, key := range scratch.DB.Keys() {
				if !reflect.DeepEqual(ret.DB.Facts(key), scratch.DB.Facts(key)) {
					t.Fatalf("relation %s diverged after collision retraction:\n dred: %v\n scratch: %v",
						key, ret.DB.Facts(key), scratch.DB.Facts(key))
				}
			}
			// Provenance stays replayable for surviving derived facts.
			rows := ret.DB.Facts("a")
			if len(rows) == 0 {
				t.Fatal("no derived facts survived")
			}
			tree, ok := ret.Derivation("a", rows[0])
			if !ok || tree == nil {
				t.Fatalf("Derivation(%v) not reconstructable after retraction", rows[0])
			}
		})
	})
}

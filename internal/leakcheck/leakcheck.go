// Package leakcheck is the goroutine leak detector shared by the engine
// and server test suites. It began life inside the engine's tests; the
// serve mode's shutdown tests need the same check (a drained server must
// leave no worker or handler goroutines behind), so it lives here.
package leakcheck

import (
	"bytes"
	"runtime"
	"runtime/pprof"
	"testing"
	"time"
)

// Check fails the test if the goroutine count has not returned to (at
// most) the baseline captured when the helper was called. Use as
//
//	defer leakcheck.Check(t)()
//
// around code that spawns workers: the returned func polls with a grace
// period — workers are expected to drain promptly but asynchronously
// after a cancellation or injected fault — and on timeout dumps all
// goroutine stacks so the leaked goroutine is identifiable.
func Check(t *testing.T) func() {
	t.Helper()
	base := runtime.NumGoroutine()
	return func() {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		var n int
		for {
			n = runtime.NumGoroutine()
			if n <= base {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
		var buf bytes.Buffer
		_ = pprof.Lookup("goroutine").WriteTo(&buf, 1)
		t.Fatalf("goroutine leak: %d goroutines, baseline %d\n%s", n, base, buf.String())
	}
}

//go:build failpoint

package failpoint

import (
	"fmt"
	"math/rand"
	"sync"
	"time"
)

// Enabled reports whether this binary was built with the failpoint tag.
const Enabled = true

type point struct {
	cfg   Config
	rng   *rand.Rand
	hits  int64
	fired int
}

var (
	mu     sync.Mutex
	points = map[string]*point{}
	hits   = map[string]int64{} // hit counts survive Disable, for assertions
)

// Enable arms name with cfg, resetting its hit and firing counters.
func Enable(name string, cfg Config) {
	mu.Lock()
	defer mu.Unlock()
	p := &point{cfg: cfg}
	if cfg.Prob > 0 {
		p.rng = rand.New(rand.NewSource(cfg.Seed))
	}
	points[name] = p
	hits[name] = 0
}

// EnableError arms name to return err starting at the after-th hit.
func EnableError(name string, err error, after int) {
	Enable(name, Config{Act: ActError, Err: err, After: after})
}

// EnableDelay arms name to sleep d starting at the after-th hit.
func EnableDelay(name string, d time.Duration, after int) {
	Enable(name, Config{Act: ActDelay, Delay: d, After: after})
}

// EnablePanic arms name to panic starting at the after-th hit.
func EnablePanic(name string, after int) {
	Enable(name, Config{Act: ActPanic, After: after})
}

// Disable disarms name; its accumulated hit count remains readable.
func Disable(name string) {
	mu.Lock()
	defer mu.Unlock()
	delete(points, name)
}

// Reset disarms every failpoint and zeroes all hit counts.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	points = map[string]*point{}
	hits = map[string]int64{}
}

// Hits returns how many times name's site has been reached since the last
// Enable/Reset (enabled or not — disabled sites count zero because Inject
// short-circuits before accounting).
func Hits(name string) int64 {
	mu.Lock()
	defer mu.Unlock()
	return hits[name]
}

// Inject is the hook compiled into program sites. When name is armed and
// the schedule says "fire", it performs the configured action; otherwise it
// returns nil. ActPanic panics with a value naming the failpoint so tests
// can assert which site blew up.
func Inject(name string) error {
	mu.Lock()
	p, ok := points[name]
	if !ok {
		mu.Unlock()
		return nil
	}
	p.hits++
	hits[name] = p.hits
	fire := false
	if p.cfg.Count == 0 || p.fired < p.cfg.Count {
		if p.cfg.Prob > 0 {
			fire = p.rng.Float64() < p.cfg.Prob
		} else {
			after := int64(p.cfg.After)
			if after < 1 {
				after = 1
			}
			fire = p.hits >= after
		}
	}
	if fire {
		p.fired++
	}
	cfg := p.cfg
	mu.Unlock()
	if !fire {
		return nil
	}
	switch cfg.Act {
	case ActError:
		if cfg.Err != nil {
			return cfg.Err
		}
		return fmt.Errorf("failpoint %s: injected error", name)
	case ActDelay:
		time.Sleep(cfg.Delay)
		return nil
	case ActPanic:
		panic(fmt.Sprintf("failpoint %s: injected panic", name))
	}
	return nil
}

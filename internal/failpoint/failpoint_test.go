//go:build failpoint

package failpoint

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func TestAfterSchedule(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	EnableError("t/after", boom, 3)
	for i := 1; i <= 5; i++ {
		err := Inject("t/after")
		if i < 3 && err != nil {
			t.Fatalf("hit %d fired early: %v", i, err)
		}
		if i >= 3 && err != boom {
			t.Fatalf("hit %d: err = %v, want boom", i, err)
		}
	}
	if got := Hits("t/after"); got != 5 {
		t.Fatalf("Hits = %d, want 5", got)
	}
}

func TestCountLimitsFirings(t *testing.T) {
	defer Reset()
	boom := errors.New("boom")
	Enable("t/count", Config{Act: ActError, Err: boom, After: 1, Count: 2})
	fired := 0
	for i := 0; i < 10; i++ {
		if Inject("t/count") != nil {
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

func TestProbDeterministicPerSeed(t *testing.T) {
	defer Reset()
	pattern := func(seed int64) string {
		Enable("t/prob", Config{Act: ActError, Err: errors.New("x"), Prob: 0.5, Seed: seed})
		s := ""
		for i := 0; i < 64; i++ {
			if Inject("t/prob") != nil {
				s += "1"
			} else {
				s += "0"
			}
		}
		return s
	}
	a, b := pattern(7), pattern(7)
	if a != b {
		t.Fatalf("same seed, different firing patterns:\n%s\n%s", a, b)
	}
	if c := pattern(8); c == a {
		t.Fatalf("different seeds produced the same 64-hit pattern %s", a)
	}
}

func TestDelayAndPanicActions(t *testing.T) {
	defer Reset()
	EnableDelay("t/delay", 20*time.Millisecond, 1)
	start := time.Now()
	if err := Inject("t/delay"); err != nil {
		t.Fatalf("delay returned error %v", err)
	}
	if d := time.Since(start); d < 20*time.Millisecond {
		t.Fatalf("delay slept only %v", d)
	}
	EnablePanic("t/panic", 1)
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("panic action did not panic")
			}
			if want := "failpoint t/panic: injected panic"; fmt.Sprint(r) != want {
				t.Fatalf("panic value %q, want %q", r, want)
			}
		}()
		Inject("t/panic")
	}()
}

func TestDisableAndUnknownAreSilent(t *testing.T) {
	defer Reset()
	EnableError("t/off", errors.New("x"), 1)
	Disable("t/off")
	if err := Inject("t/off"); err != nil {
		t.Fatalf("disabled point fired: %v", err)
	}
	if err := Inject("t/never-enabled"); err != nil {
		t.Fatalf("unknown point fired: %v", err)
	}
}

// TestConcurrentInject exercises the registry under -race: many goroutines
// hammering one armed point must account every hit exactly once.
func TestConcurrentInject(t *testing.T) {
	defer Reset()
	EnableError("t/conc", errors.New("x"), 1000000) // never fires
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Inject("t/conc")
			}
		}()
	}
	wg.Wait()
	if got := Hits("t/conc"); got != workers*per {
		t.Fatalf("Hits = %d, want %d", got, workers*per)
	}
}

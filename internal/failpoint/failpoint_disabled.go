//go:build !failpoint

package failpoint

import "time"

// Enabled reports whether this binary was built with the failpoint tag.
const Enabled = false

// Inject is a no-op in the default build; the constant nil return lets the
// compiler inline and eliminate the call at every site.
func Inject(string) error { return nil }

// The registry management functions are inert no-ops in the default build
// so that code shared between normal and failpoint test binaries compiles
// unchanged.

func Enable(string, Config)                  {}
func EnableError(string, error, int)         {}
func EnableDelay(string, time.Duration, int) {}
func EnablePanic(string, int)                {}
func Disable(string)                         {}
func Reset()                                 {}
func Hits(string) int64                      { return 0 }

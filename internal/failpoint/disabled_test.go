//go:build !failpoint

package failpoint

import (
	"errors"
	"testing"
	"time"
)

// TestDisabledBuildIsInert pins the default-build contract: every hook is a
// no-op even after Enable, so production binaries cannot be made to
// misbehave and the Inject calls in the engine cost nothing.
func TestDisabledBuildIsInert(t *testing.T) {
	if Enabled {
		t.Fatal("Enabled must be false without the failpoint build tag")
	}
	EnableError("x", errors.New("boom"), 1)
	EnableDelay("x", time.Second, 1)
	EnablePanic("x", 1)
	Enable("x", Config{Act: ActError, Err: errors.New("boom")})
	for i := 0; i < 3; i++ {
		if err := Inject("x"); err != nil {
			t.Fatalf("Inject fired in the default build: %v", err)
		}
	}
	if Hits("x") != 0 {
		t.Fatal("Hits must stay zero in the default build")
	}
	Disable("x")
	Reset()
}

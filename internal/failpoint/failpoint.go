// Package failpoint is a deterministic fault-injection registry for the
// engine's robustness tests. A failpoint is a named program site
// (e.g. "engine/worker") where the code calls Inject; a test enables an
// action at that name — return an error, sleep, or panic — and the site
// misbehaves on a deterministic schedule. The default build compiles every
// hook to a no-op: the registry only exists under the `failpoint` build
// tag (CI runs `go test -race -tags failpoint ./internal/engine/...
// ./internal/failpoint/...`), so production binaries carry no registry,
// no locks, and no injected behavior.
//
// Scheduling is deterministic so fault tests are reproducible:
//
//   - After: the point first fires on the After-th hit (1-based;
//     0 means the first hit), counting hits since Enable.
//   - Count: at most Count firings (0 = unlimited once reached).
//   - Prob/Seed: instead of After, fire per-hit with probability Prob
//     drawn from a rand.Rand seeded with Seed — the firing pattern is a
//     pure function of (Seed, hit index), identical across runs.
package failpoint

import "time"

// Action selects what an enabled failpoint does when it fires.
type Action int

const (
	// ActError makes Inject return the configured error.
	ActError Action = iota
	// ActDelay makes Inject sleep for the configured duration.
	ActDelay
	// ActPanic makes Inject panic with a descriptive value; the engine's
	// recovery layers must convert it into an error exactly once.
	ActPanic
)

// Config describes when and how an enabled failpoint fires.
type Config struct {
	Act   Action
	Err   error         // returned by ActError firings
	Delay time.Duration // slept by ActDelay firings
	After int           // first firing hit index (1-based; 0 ≡ 1)
	Count int           // max firings (0 = unlimited)
	Prob  float64       // if > 0, per-hit firing probability (overrides After)
	Seed  int64         // seed for the Prob schedule
}

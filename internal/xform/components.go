// Package xform implements the rule rewritings of the paper:
//
//   - SplitComponents (Section 3.1): connected components of a rule body
//     that are not connected to the head become boolean subquery rules,
//     enabling the runtime boolean cut.
//   - PushProjections (Section 3.2, Lemma 3.2): existential ('d') argument
//     positions of adorned derived predicates are deleted consistently.
//   - AddCoveringUnitRules (Section 5): unit rules q^a :- q^a1 for covering
//     adornments, the raw material of the summary-based deletion tests.
//   - ReduceInvariantArgument (Section 6, Example 12): an argument carried
//     unchanged through recursion and consumed only by invariant check
//     literals is projected out, with the checks pushed into the exit
//     rules.
package xform

import (
	"fmt"
	"strconv"

	"existdlog/internal/ast"
)

// SplitComponents applies the Phase-1 rewrite of Section 3.1 to an adorned
// program: in every rule body, the connected components (variables are
// connected when they co-occur in a literal, transitively; head variables
// in existential positions do not anchor the head) that do not contain the
// head are replaced by fresh boolean predicates with their own defining
// rules. Existential head variables whose binding component was severed
// become anonymous (the paper's "p@nd(X,_)"), per Example 2.
//
// Lemma 3.1: the rewrite preserves query equivalence and leaves every rule
// with a single connected component.
func SplitComponents(p *ast.Program) (*ast.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &ast.Program{Query: p.Query.Clone(), Derived: make(map[string]bool)}
	for k := range p.Derived {
		out.Derived[k] = true
	}
	used := make(map[string]bool)
	for _, k := range p.PredicateKeys() {
		used[k] = true
	}
	boolN := 0
	freshBool := func() string {
		for {
			boolN++
			name := "b" + strconv.Itoa(boolN)
			if !used[name] {
				used[name] = true
				return name
			}
		}
	}

	for _, r := range p.Rules {
		groups, headGroup := componentGroups(r)
		severable := 0
		for gi := range groups {
			if gi != headGroup {
				severable++
			}
		}
		if severable == 0 || (headGroup < 0 && severable <= 1) {
			// Fully connected, or a headless rule that is itself a single
			// subquery: nothing to split.
			out.Rules = append(out.Rules, r.Clone())
			continue
		}
		// Rebuild the rule in original literal order: boolean literals and
		// the head group's literals stay; each other group is replaced (at
		// its first literal's position) by a fresh boolean literal with a
		// defining rule.
		newRule := ast.Rule{Head: r.Head.Clone()}
		var boolRules []ast.Rule
		severedVars := make(map[string]bool)
		groupName := make(map[int]string)
		groupAt := make(map[int]int) // literal index -> group
		for gi, g := range groups {
			for _, li := range g {
				groupAt[li] = gi
			}
			if gi == headGroup {
				continue
			}
			for _, li := range g {
				for _, t := range r.Body[li].Args {
					if t.Kind == ast.Variable {
						severedVars[t.Name] = true
					}
				}
			}
		}
		for li, b := range r.Body {
			gi, grouped := groupAt[li]
			if !grouped || gi == headGroup {
				newRule.Body = append(newRule.Body, b.Clone())
				continue
			}
			name, named := groupName[gi]
			if !named {
				name = freshBool()
				groupName[gi] = name
				newRule.Body = append(newRule.Body, ast.NewAtom(name))
				br := ast.Rule{Head: ast.NewAtom(name)}
				for _, gli := range groups[gi] {
					br.Body = append(br.Body, r.Body[gli].Clone())
				}
				boolRules = append(boolRules, br)
				out.Derived[name] = true
			}
		}
		// Anonymize existential head variables bound only in severed
		// components.
		for i, t := range newRule.Head.Args {
			if t.Kind == ast.Variable && severedVars[t.Name] &&
				headExistential(r.Head, i) {
				newRule.Head.Args[i] = ast.V("_")
			}
		}
		out.Rules = append(out.Rules, newRule)
		out.Rules = append(out.Rules, boolRules...)
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("xform: component split produced invalid program: %w", err)
	}
	return out, nil
}

func headExistential(head ast.Atom, i int) bool {
	return i < len(head.Adornment) && head.Adornment[i] == 'd'
}

// componentGroups partitions the body literal indices of r into
// connectivity groups and returns the index of the group containing the
// head (-1 if no group shares a variable with a non-existential head
// position). Arity-0 (boolean) literals carry no variables and belong to
// no group: they are already propositional subqueries and are never
// re-severed.
func componentGroups(r ast.Rule) (groups [][]int, headGroup int) {
	// Union-find over variable names; each literal links its variables.
	parent := make(map[string]string)
	var find func(x string) string
	find = func(x string) string {
		if parent[x] == "" {
			parent[x] = x
		}
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b string) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}
	for _, b := range r.Body {
		var first string
		for _, t := range b.Args {
			if t.Kind != ast.Variable {
				continue
			}
			if first == "" {
				first = t.Name
			} else {
				union(first, t.Name)
			}
		}
	}
	// Head anchor roots: variables in non-existential head positions.
	anchor := make(map[string]bool)
	for i, t := range r.Head.Args {
		if t.Kind == ast.Variable && !t.IsAnon() && !headExistential(r.Head, i) {
			anchor[find(t.Name)] = true
		}
	}
	// Group literals by component root; variable-free literals are their
	// own singleton groups.
	rootGroup := make(map[string]int)
	headGroup = -1
	for li, b := range r.Body {
		if b.Arity() == 0 {
			continue // propositional: no component
		}
		var root string
		for _, t := range b.Args {
			if t.Kind == ast.Variable {
				root = find(t.Name)
				break
			}
		}
		if root == "" {
			groups = append(groups, []int{li}) // ground literal: own group
			continue
		}
		gi, ok := rootGroup[root]
		if !ok {
			gi = len(groups)
			rootGroup[root] = gi
			groups = append(groups, nil)
			if anchor[root] {
				headGroup = gi
			}
		}
		groups[gi] = append(groups[gi], li)
	}
	return groups, headGroup
}

// ComponentReport describes the outcome of SplitComponents for one rule,
// used by the CLI and tests.
type ComponentReport struct {
	Rule       string
	Components int
}

// CountComponents reports, for each rule, how many connectivity components
// its body has (including the head's).
func CountComponents(p *ast.Program) []ComponentReport {
	out := make([]ComponentReport, 0, len(p.Rules))
	for _, r := range p.Rules {
		groups, _ := componentGroups(r)
		n := len(groups)
		if n == 0 {
			n = 1
		}
		out = append(out, ComponentReport{Rule: r.String(), Components: n})
	}
	return out
}

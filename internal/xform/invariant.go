package xform

import (
	"fmt"
	"sort"

	"existdlog/internal/ast"
)

// InvariantReduction describes an applicable Example-12 transformation: an
// argument position of a recursive predicate that is carried unchanged
// through the recursion, consumed only by invariant check literals, and
// existential at every use site outside the recursion. Projecting it out —
// with the checks pushed down into the exit rules and use sites unfolded
// for the check-free base case — reduces the arity of the recursive
// predicate even though plain projection pushing cannot (Section 6 of the
// paper).
type InvariantReduction struct {
	Base    string // base predicate name of the recursive family
	Pos     int    // 0-based argument position to drop
	NewPred string // name of the reduced predicate
	Checks  []string
}

// FindInvariantReductions scans an adorned (unprojected) program for
// argument positions to which ReduceInvariantArgument applies.
func FindInvariantReductions(p *ast.Program) []InvariantReduction {
	var out []InvariantReduction
	seen := map[string]bool{}
	for _, r := range p.Rules {
		base := r.Head.Pred
		if seen[base] || r.Head.Adornment == "" {
			continue
		}
		seen[base] = true
		arity := r.Head.Arity()
		for k := 0; k < arity; k++ {
			if red, err := planReduction(p, base, k); err == nil {
				out = append(out, *red)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Base != out[j].Base {
			return out[i].Base < out[j].Base
		}
		return out[i].Pos < out[j].Pos
	})
	return out
}

// ReduceInvariantArgument applies the transformation for argument position
// k (0-based) of the recursive predicate family with the given base name.
// It returns an error if the preconditions do not hold.
func ReduceInvariantArgument(p *ast.Program, base string, k int) (*ast.Program, error) {
	if _, err := planReduction(p, base, k); err != nil {
		return nil, err
	}
	return applyReduction(p, base, k)
}

type familyInfo struct {
	keys      []string   // adorned version keys, sorted
	rules     []ast.Rule // representative rules, adornments stripped
	recursive []int      // indices into rules with a recursive occurrence
	exits     []int
	checks    map[int][]int // recursive rule index -> check literal indices
}

// stripFamily removes adornments from atoms of the family so versions can
// be compared and a representative extracted.
func stripFamily(r ast.Rule, base string) ast.Rule {
	out := r.Clone()
	if out.Head.Pred == base {
		out.Head.Adornment = ""
	}
	for i := range out.Body {
		if out.Body[i].Pred == base {
			out.Body[i].Adornment = ""
		}
	}
	return out
}

func familyOf(p *ast.Program, base string, k int) (*familyInfo, error) {
	byVersion := map[string][]ast.Rule{}
	for _, r := range p.Rules {
		if r.Head.Pred == base {
			byVersion[r.Head.Key()] = append(byVersion[r.Head.Key()], r)
		}
	}
	if len(byVersion) == 0 {
		return nil, fmt.Errorf("xform: no rules define %s", base)
	}
	fam := &familyInfo{checks: map[int][]int{}}
	for key := range byVersion {
		fam.keys = append(fam.keys, key)
	}
	sort.Strings(fam.keys)

	// All versions must be adorned copies of the same original rules.
	canon := func(rs []ast.Rule) []string {
		out := make([]string, len(rs))
		for i, r := range rs {
			out[i] = stripFamily(r, base).String()
		}
		sort.Strings(out)
		return out
	}
	ref := canon(byVersion[fam.keys[0]])
	for _, key := range fam.keys[1:] {
		got := canon(byVersion[key])
		if len(got) != len(ref) {
			return nil, fmt.Errorf("xform: versions %s and %s of %s differ structurally", fam.keys[0], key, base)
		}
		for i := range got {
			if got[i] != ref[i] {
				return nil, fmt.Errorf("xform: versions %s and %s of %s differ structurally", fam.keys[0], key, base)
			}
		}
	}
	for _, r := range byVersion[fam.keys[0]] {
		fam.rules = append(fam.rules, stripFamily(r, base))
	}

	for ri, r := range fam.rules {
		recOcc := -1
		for bi, b := range r.Body {
			if b.Pred != base {
				continue
			}
			if recOcc >= 0 {
				return nil, fmt.Errorf("xform: rule %s has multiple recursive occurrences", r)
			}
			recOcc = bi
		}
		if recOcc < 0 {
			fam.exits = append(fam.exits, ri)
			continue
		}
		fam.recursive = append(fam.recursive, ri)
		// Position k must be an invariant variable: same variable in the
		// head and the recursive occurrence.
		hv := r.Head.Args[k]
		if hv.Kind != ast.Variable || r.Body[recOcc].Args[k] != hv {
			return nil, fmt.Errorf("xform: position %d of %s is not invariant in %s", k+1, base, r)
		}
		// Its other occurrences must be confined to base "check" literals
		// whose variables are exactly {hv}.
		var checks []int
		for bi, b := range r.Body {
			if bi == recOcc {
				continue
			}
			uses := false
			onlyHV := true
			for _, t := range b.Args {
				if t.Kind == ast.Variable && !t.IsAnon() {
					if t.Name == hv.Name {
						uses = true
					} else {
						onlyHV = false
					}
				}
			}
			if !uses {
				continue
			}
			if !onlyHV || p.Derived[b.Key()] {
				return nil, fmt.Errorf("xform: %s uses the invariant variable outside a check literal", r)
			}
			checks = append(checks, bi)
		}
		if len(checks) == 0 {
			return nil, fmt.Errorf("xform: position %d of %s has no check literal; use plain projection pushing", k+1, base)
		}
		fam.checks[ri] = checks
	}
	if len(fam.recursive) == 0 {
		return nil, fmt.Errorf("xform: %s is not recursive", base)
	}
	// All recursive rules must agree on the check literal set (modulo the
	// invariant variable's name).
	refChecks := checkStrings(fam, fam.recursive[0], k)
	for _, ri := range fam.recursive[1:] {
		got := checkStrings(fam, ri, k)
		if len(got) != len(refChecks) {
			return nil, fmt.Errorf("xform: recursive rules of %s disagree on check literals", base)
		}
		for i := range got {
			if got[i] != refChecks[i] {
				return nil, fmt.Errorf("xform: recursive rules of %s disagree on check literals", base)
			}
		}
	}
	// Exit rules must bind position k in the body (a variable occurring in
	// a body literal, or a constant).
	for _, ri := range fam.exits {
		r := fam.rules[ri]
		t := r.Head.Args[k]
		if t.Kind == ast.Constant {
			continue
		}
		bound := false
		for _, b := range r.Body {
			for _, u := range b.Args {
				if u == t {
					bound = true
				}
			}
		}
		if !bound {
			return nil, fmt.Errorf("xform: exit rule %s does not bind position %d", r, k+1)
		}
	}
	return fam, nil
}

// checkStrings renders rule ri's check literals with the invariant
// variable normalized, for cross-rule comparison.
func checkStrings(fam *familyInfo, ri, k int) []string {
	r := fam.rules[ri]
	hv := r.Head.Args[k]
	s := ast.Subst{hv.Name: ast.V("$INV")}
	var out []string
	for _, bi := range fam.checks[ri] {
		out = append(out, s.ApplyAtom(r.Body[bi]).String())
	}
	sort.Strings(out)
	return out
}

// consumerSite is an occurrence of the family predicate outside the
// family's own rules.
type consumerSite struct {
	rule int // index in p.Rules
	lit  int
}

func consumerSites(p *ast.Program, base string, k int) ([]consumerSite, error) {
	var sites []consumerSite
	for ri, r := range p.Rules {
		if r.Head.Pred == base {
			continue
		}
		for bi, b := range r.Body {
			if b.Pred != base {
				continue
			}
			if b.Negated {
				// Variant B unfolds the exit rules in place of the
				// occurrence, which is unsound under negation.
				return nil, fmt.Errorf("xform: use site %s negates %s; not reducible", r, base)
			}
			if b.Adornment == "" {
				return nil, fmt.Errorf("xform: use site %s is not adorned; adorn the program first", r)
			}
			if len(b.Adornment) != len(b.Args) {
				return nil, fmt.Errorf("xform: %s is already projected; reduce before projection pushing", b)
			}
			if b.Adornment[k] != 'd' {
				return nil, fmt.Errorf("xform: position %d of %s is needed at use site %s", k+1, base, r)
			}
			t := b.Args[k]
			if t.Kind == ast.Variable && !t.IsAnon() {
				occ := 0
				for _, bb := range r.Body {
					for _, u := range bb.Args {
						if u == t {
							occ++
						}
					}
				}
				for _, u := range r.Head.Args {
					if u == t {
						occ++
					}
				}
				if occ > 1 {
					return nil, fmt.Errorf("xform: use site %s shares the dropped argument", r)
				}
			}
			sites = append(sites, consumerSite{ri, bi})
		}
	}
	if p.Query.Pred == base {
		return nil, fmt.Errorf("xform: query goal is on %s itself; reduce a consumer instead", base)
	}
	return sites, nil
}

func planReduction(p *ast.Program, base string, k int) (*InvariantReduction, error) {
	fam, err := familyOf(p, base, k)
	if err != nil {
		return nil, err
	}
	if _, err := consumerSites(p, base, k); err != nil {
		return nil, err
	}
	red := &InvariantReduction{Base: base, Pos: k, NewPred: freshPred(p, base+"_r")}
	for _, s := range checkStrings(fam, fam.recursive[0], k) {
		red.Checks = append(red.Checks, s)
	}
	return red, nil
}

func freshPred(p *ast.Program, want string) string {
	used := map[string]bool{}
	for _, k := range p.PredicateKeys() {
		used[k] = true
	}
	name := want
	for i := 2; used[name]; i++ {
		name = fmt.Sprintf("%s%d", want, i)
	}
	return name
}

func dropPos(args []ast.Term, k int) []ast.Term {
	out := make([]ast.Term, 0, len(args)-1)
	out = append(out, args[:k]...)
	out = append(out, args[k+1:]...)
	return out
}

func applyReduction(p *ast.Program, base string, k int) (*ast.Program, error) {
	fam, err := familyOf(p, base, k)
	if err != nil {
		return nil, err
	}
	sites, err := consumerSites(p, base, k)
	if err != nil {
		return nil, err
	}
	siteAt := map[int]int{}
	for _, s := range sites {
		if _, dup := siteAt[s.rule]; dup {
			return nil, fmt.Errorf("xform: rule %s uses %s more than once", p.Rules[s.rule], base)
		}
		siteAt[s.rule] = s.lit
	}
	newPred := freshPred(p, base+"_r")
	// Reduced adornment: the representative head adornment with position k
	// removed; at every surviving position the recursion itself needs the
	// value, so normalize to all-n.
	newAd := ast.Adornment("")
	for i := 0; i < len(fam.rules[0].Head.Args)-1; i++ {
		newAd += "n"
	}

	out := &ast.Program{Query: p.Query.Clone(), Derived: map[string]bool{}}
	for key := range p.Derived {
		if !isFamilyKey(key, base, fam.keys) {
			out.Derived[key] = true
		}
	}
	out.Derived[newPred+"@"+string(newAd)] = true

	reduceAtom := func(a ast.Atom) ast.Atom {
		return ast.Atom{Pred: newPred, Adornment: newAd, Args: dropPos(a.Args, k), Negated: a.Negated}
	}

	// Reduced family rules.
	for ri, r := range fam.rules {
		nr := ast.Rule{Head: reduceAtom(r.Head)}
		isRec := false
		for _, rri := range fam.recursive {
			if rri == ri {
				isRec = true
			}
		}
		if isRec {
			checkSet := map[int]bool{}
			for _, ci := range fam.checks[ri] {
				checkSet[ci] = true
			}
			for bi, b := range r.Body {
				if checkSet[bi] {
					continue
				}
				if b.Pred == base {
					nr.Body = append(nr.Body, reduceAtom(b))
				} else {
					nr.Body = append(nr.Body, b.Clone())
				}
			}
		} else {
			// Exit rule: keep the body and append the checks with the
			// invariant variable bound to the exit rule's position-k term.
			nr.Body = append(nr.Body, cloneAtoms(r.Body)...)
			exitTerm := r.Head.Args[k]
			rec0 := fam.recursive[0]
			hv := fam.rules[rec0].Head.Args[k]
			s := ast.Subst{hv.Name: exitTerm}
			for _, ci := range fam.checks[rec0] {
				nr.Body = append(nr.Body, s.ApplyAtom(fam.rules[rec0].Body[ci]))
			}
		}
		out.Rules = append(out.Rules, nr)
	}

	// Consumer rules: one variant through the reduced predicate, plus one
	// unfolding per exit rule (the check-free base case).
	exitRules := make([]ast.Rule, 0, len(fam.exits))
	for _, ri := range fam.exits {
		exitRules = append(exitRules, fam.rules[ri])
	}
	for ri, r := range p.Rules {
		if r.Head.Pred == base {
			continue
		}
		li, ok := siteAt[ri]
		if !ok {
			out.Rules = append(out.Rules, r.Clone())
			continue
		}
		// Variant A: through the reduced predicate.
		va := r.Clone()
		va.Body[li] = reduceAtom(va.Body[li])
		out.Rules = append(out.Rules, va)
		// Variant B: unfold each exit rule in place of the occurrence.
		for ei, ex := range exitRules {
			renamed := ast.RenameApart(ex, fmt.Sprintf("$u%d_%d", ri, ei))
			occ := r.Body[li].Clone()
			occ.Adornment = ""
			s, ok := ast.Unify(renamed.Head, occ, nil)
			if !ok {
				continue // exit head cannot produce this occurrence
			}
			vb := s.ApplyRule(r.Clone())
			var body []ast.Atom
			for bi, b := range vb.Body {
				if bi == li {
					for _, eb := range renamed.Body {
						body = append(body, s.ApplyAtom(eb))
					}
				} else {
					body = append(body, b)
				}
			}
			vb.Body = body
			out.Rules = append(out.Rules, vb)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("xform: invariant reduction produced invalid program: %w", err)
	}
	return out, nil
}

func isFamilyKey(key, base string, famKeys []string) bool {
	for _, k := range famKeys {
		if k == key {
			return true
		}
	}
	return key == base
}

func cloneAtoms(as []ast.Atom) []ast.Atom {
	out := make([]ast.Atom, len(as))
	for i := range as {
		out[i] = as[i].Clone()
	}
	return out
}

package xform

import (
	"fmt"
	"strings"
	"testing"

	"existdlog/internal/adorn"
	"existdlog/internal/ast"
	"existdlog/internal/engine"
	"existdlog/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustAdorn(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := adorn.Adorn(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Example 2 of the paper: the rule splits into a head component plus two
// boolean subqueries.
func TestSplitComponentsExample2(t *testing.T) {
	p := mustAdorn(t, `
p(X,U) :- q1(X,Y), q2(Y,Z), q3(U,V), q4(V), q5(W).
q4(X) :- q6(X).
?- p(X,_).
`)
	sp, err := SplitComponents(p)
	if err != nil {
		t.Fatal(err)
	}
	var main *ast.Rule
	boolRules := 0
	for i := range sp.Rules {
		switch {
		case sp.Rules[i].Head.Pred == "p":
			main = &sp.Rules[i]
		case sp.Rules[i].Head.Arity() == 0:
			boolRules++
		}
	}
	if main == nil {
		t.Fatalf("no rule for p:\n%s", sp)
	}
	// p@nd(X,_) :- q1(X,Y), q2(Y,_), B2, B3.
	if len(main.Body) != 4 {
		t.Fatalf("main rule = %s", main)
	}
	if !main.Head.Args[1].IsAnon() {
		t.Errorf("severed existential head argument should be anonymous: %s", main)
	}
	if boolRules != 2 {
		t.Errorf("expected 2 boolean rules, got %d:\n%s", boolRules, sp)
	}
	// The component {q3,q4} must stay together in one boolean rule.
	okQ34 := false
	for _, r := range sp.Rules {
		if r.Head.Arity() == 0 && len(r.Body) == 2 &&
			r.Body[0].Pred == "q3" && r.Body[1].Pred == "q4" {
			okQ34 = true
		}
	}
	if !okQ34 {
		t.Errorf("q3,q4 component not split as a unit:\n%s", sp)
	}
	// Lemma 3.1: every rule in the result has a single component.
	for _, rep := range CountComponents(sp) {
		if rep.Components != 1 {
			t.Errorf("rule %q has %d components after split", rep.Rule, rep.Components)
		}
	}
}

func TestSplitComponentsNoChange(t *testing.T) {
	p := mustAdorn(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,_).
`)
	sp, err := SplitComponents(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Rules) != len(p.Rules) {
		t.Errorf("connected rules should be unchanged:\n%s", sp)
	}
}

// Query equivalence of the component split (Lemma 3.1), checked by
// evaluation.
func TestSplitComponentsPreservesAnswers(t *testing.T) {
	src := `
p(X,U) :- q1(X,Y), q2(Y,Z), q3(U,V), q4(V), q5(W).
q4(X) :- q6(X).
?- p(X,_).
`
	p := mustAdorn(t, src)
	sp, err := SplitComponents(p)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase()
	for i := 0; i < 6; i++ {
		db.Add("q1", fmt.Sprint(i), fmt.Sprint(i+1))
		db.Add("q2", fmt.Sprint(i+1), fmt.Sprint(i+2))
		db.Add("q3", fmt.Sprint(i), fmt.Sprint(i))
		db.Add("q6", fmt.Sprint(i))
	}
	db.Add("q5", "w")
	before, err := engine.Eval(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := engine.Eval(sp, db, engine.Options{BooleanCut: true})
	if err != nil {
		t.Fatal(err)
	}
	goal := ast.NewAdorned("p", "nd", ast.V("X"), ast.V("_"))
	// Compare the needed (first) column only: the split anonymizes the
	// existential column.
	project := func(rows [][]string) map[string]bool {
		out := map[string]bool{}
		for _, r := range rows {
			out[r[0]] = true
		}
		return out
	}
	a, b := project(before.Answers(goal)), project(after.Answers(goal))
	if len(a) != len(b) {
		t.Fatalf("answer sets differ: %v vs %v", a, b)
	}
	for k := range a {
		if !b[k] {
			t.Errorf("missing answer %s after split", k)
		}
	}
	if after.Stats.RulesRetired == 0 {
		t.Error("boolean cut should retire rules on this workload")
	}
}

// Examples 1/3 of the paper: pushing the projection makes transitive
// closure unary.
func TestPushProjectionsExample1(t *testing.T) {
	p := mustAdorn(t, `
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`)
	pp, err := PushProjections(p)
	if err != nil {
		t.Fatal(err)
	}
	got := pp.String()
	want := `query@n(X) :- a@nd(X).
a@nd(X) :- p(X,Z), a@nd(Z).
a@nd(X) :- p(X,Y).
?- query@n(X).
`
	if got != want {
		t.Errorf("projected program:\n%swant:\n%s", got, want)
	}
}

func TestPushProjectionsPreservesAnswers(t *testing.T) {
	src := `
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`
	p := mustAdorn(t, src)
	pp, err := PushProjections(p)
	if err != nil {
		t.Fatal(err)
	}
	db := engine.NewDatabase()
	for i := 0; i < 15; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
		db.Add("p", fmt.Sprint(i), fmt.Sprint((i*3)%16))
	}
	r1, err := engine.Eval(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := engine.Eval(pp, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g1 := ast.NewAdorned("query", "n", ast.V("X"))
	a1, a2 := r1.Answers(g1), r2.Answers(g1)
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Errorf("answers differ:\n%v\n%v", a1, a2)
	}
	// The whole point: fewer facts derived.
	if r2.Stats.FactsDerived >= r1.Stats.FactsDerived {
		t.Errorf("projection should derive fewer facts: %d vs %d",
			r2.Stats.FactsDerived, r1.Stats.FactsDerived)
	}
}

func TestPushProjectionsIdempotent(t *testing.T) {
	p := mustAdorn(t, `
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`)
	pp, err := PushProjections(p)
	if err != nil {
		t.Fatal(err)
	}
	pp2, err := PushProjections(pp)
	if err != nil {
		t.Fatal(err)
	}
	if pp.String() != pp2.String() {
		t.Errorf("projection not idempotent:\n%s\nvs\n%s", pp, pp2)
	}
}

func TestPushProjectionsRejectsSharedDroppedVariable(t *testing.T) {
	// Hand-written (incorrectly) adorned program: Y is marked d on the
	// body occurrence but is used in a kept position of q.
	p := parser.MustParseProgram(`
a@nd(X,Y) :- p(X,Y).
top@n(X) :- a@nd(X,Y), q(Y).
?- top@n(X).
`)
	if _, err := PushProjections(p); err == nil ||
		!strings.Contains(err.Error(), "kept position") {
		t.Errorf("expected shared-variable rejection, got %v", err)
	}
}

func TestAddCoveringUnitRules(t *testing.T) {
	// Example 5/6 shape after projection: a@nd (unary) and a@nn (binary).
	p := mustAdorn(t, `
a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,_).
`)
	pp, err := PushProjections(p)
	if err != nil {
		t.Fatal(err)
	}
	ext, added := AddCoveringUnitRules(pp)
	if len(added) != 1 {
		t.Fatalf("expected 1 unit rule, got %d:\n%s", len(added), ext)
	}
	r := ext.Rules[added[0]]
	if r.String() != "a@nd(U1) :- a@nn(U1,U2)." {
		t.Errorf("unit rule = %s", r)
	}
	// Adding again is a no-op.
	_, again := AddCoveringUnitRules(ext)
	if len(again) != 0 {
		t.Errorf("unit rule added twice")
	}
}

func TestAddCoveringUnitRulesUnprojected(t *testing.T) {
	p := mustAdorn(t, `
a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,_).
`)
	ext, added := AddCoveringUnitRules(p)
	if len(added) != 1 {
		t.Fatalf("expected 1 unit rule:\n%s", ext)
	}
	if got := ext.Rules[added[0]].String(); got != "a@nd(U1,U2) :- a@nn(U1,U2)." {
		t.Errorf("unit rule = %s", got)
	}
}

// Example 12 of the paper: the invariant existential argument Z of the
// ternary recursion is projected out; the check c(Z) moves into the exit
// rule; the use site gains an unfolded check-free variant.
func TestReduceInvariantArgumentExample12(t *testing.T) {
	src := `
query(X,Y) :- p(X,Y,Z).
p(X,Y,Z) :- up(X,X1), p(X1,Y1,Z), dn(Y1,Y), c(Z).
p(X,Y,Z) :- b(X,Y,Z).
?- query(X,Y).
`
	ad := mustAdorn(t, src)
	reds := FindInvariantReductions(ad)
	if len(reds) != 1 || reds[0].Base != "p" || reds[0].Pos != 2 {
		t.Fatalf("FindInvariantReductions = %+v\n%s", reds, ad)
	}
	tr, err := ReduceInvariantArgument(ad, "p", 2)
	if err != nil {
		t.Fatal(err)
	}
	// The recursive predicate is now binary.
	for _, r := range tr.Rules {
		if strings.HasPrefix(r.Head.Pred, "p_r") && r.Head.Arity() != 2 {
			t.Errorf("reduced predicate not binary: %s", r)
		}
	}
	// Equivalence on data where the check matters.
	db := engine.NewDatabase()
	depth := 6
	for i := 0; i < depth; i++ {
		db.Add("up", fmt.Sprint(i), fmt.Sprint(i+1))
		db.Add("dn", fmt.Sprint(i+1), fmt.Sprint(i))
	}
	db.Add("b", fmt.Sprint(depth), fmt.Sprint(depth), "ok")
	db.Add("b", fmt.Sprint(depth), fmt.Sprint(depth), "bad")
	db.Add("b", "lone", "lone", "bad") // reachable only via the base case
	db.Add("c", "ok")
	r1, err := engine.Eval(ad, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := engine.Eval(tr, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	goal := ast.NewAdorned("query", "nn", ast.V("X"), ast.V("Y"))
	a1, a2 := r1.Answers(goal), r2.Answers(goal)
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Errorf("answers differ:\noriginal:    %v\ntransformed: %v\nprogram:\n%s", a1, a2, tr)
	}
	// "lone" must be answered by both (base case needs no check).
	found := false
	for _, row := range a2 {
		if row[0] == "lone" {
			found = true
		}
	}
	if !found {
		t.Errorf("check-free base case lost: %v", a2)
	}
}

func TestReduceInvariantArgumentRejections(t *testing.T) {
	// Position is consumed by a derived literal: not a check.
	ad := mustAdorn(t, `
query(X,Y) :- p(X,Y,Z).
p(X,Y,Z) :- up(X,X1), p(X1,Y1,Z), dn(Y1,Y), d(Z).
p(X,Y,Z) :- b(X,Y,Z).
d(Z) :- c(Z).
?- query(X,Y).
`)
	if _, err := ReduceInvariantArgument(ad, "p", 2); err == nil {
		t.Error("derived check literal should be rejected")
	}
	// Position not invariant (shifted through recursion).
	ad2 := mustAdorn(t, `
query(X,Y) :- p(X,Y,Z).
p(X,Y,Z) :- up(X,X1), p(X1,Y1,W), g(W,Z), dn(Y1,Y), c(Z).
p(X,Y,Z) :- b(X,Y,Z).
?- query(X,Y).
`)
	if _, err := ReduceInvariantArgument(ad2, "p", 2); err == nil {
		t.Error("non-invariant position should be rejected")
	}
	// Needed at the use site.
	ad3 := mustAdorn(t, `
query(X,Y) :- p(X,Y,Z), out(Z,Y).
p(X,Y,Z) :- up(X,X1), p(X1,Y1,Z), dn(Y1,Y), c(Z).
p(X,Y,Z) :- b(X,Y,Z).
?- query(X,Y).
`)
	if _, err := ReduceInvariantArgument(ad3, "p", 2); err == nil {
		t.Error("needed use site should be rejected")
	}
}

// Regression: projection must preserve negation on adorned literals
// ("not shielded@n(S)" must not silently become "shielded@n(S)").
func TestPushProjectionsPreservesNegation(t *testing.T) {
	p := mustAdorn(t, `
exposed(S) :- reachable(S), not shielded(S).
reachable(S) :- ingress(S).
reachable(S) :- reachable(R), link(R,S).
shielded(S) :- firewall(F,S).
?- exposed(S).
`)
	pp, err := PushProjections(p)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, r := range pp.Rules {
		for _, b := range r.Body {
			if b.Pred == "shielded" && b.Negated {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("negation lost:\n%s", pp)
	}
	db := engine.NewDatabase()
	db.Add("link", "n0", "n1")
	db.Add("link", "n1", "n2")
	db.Add("ingress", "n0")
	db.Add("firewall", "fw", "n0")
	before, err := engine.Eval(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := engine.Eval(pp, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a := before.Answers(p.Query)
	b := after.Answers(pp.Query)
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Fatalf("answers differ: %v vs %v", a, b)
	}
}

// A ground negated literal in a disconnected component becomes a boolean
// guard ("proceed only while no alarm exists").
func TestSplitComponentsSeversNegatedGuard(t *testing.T) {
	p := mustAdorn(t, `
act(X) :- task(X), not alarm(_).
?- act(X).
`)
	sp, err := SplitComponents(p)
	if err != nil {
		t.Fatal(err)
	}
	var boolRule *ast.Rule
	for i := range sp.Rules {
		if sp.Rules[i].Head.Arity() == 0 {
			boolRule = &sp.Rules[i]
		}
	}
	if boolRule == nil || !boolRule.Body[0].Negated {
		t.Fatalf("negated guard not severed:\n%s", sp)
	}
	db := engine.NewDatabase()
	db.Add("task", "t1")
	before, err := engine.Eval(p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := engine.Eval(sp, db, engine.Options{BooleanCut: true})
	if err != nil {
		t.Fatal(err)
	}
	if before.AnswerCount(p.Query) != 1 || after.AnswerCount(sp.Query) != 1 {
		t.Errorf("answers: %d vs %d", before.AnswerCount(p.Query), after.AnswerCount(sp.Query))
	}
	// With an alarm present, both say no.
	db.Add("alarm", "a1")
	before2, _ := engine.Eval(p, db, engine.Options{})
	after2, err := engine.Eval(sp, db, engine.Options{BooleanCut: true})
	if err != nil {
		t.Fatal(err)
	}
	if before2.AnswerCount(p.Query) != 0 || after2.AnswerCount(sp.Query) != 0 {
		t.Errorf("alarm case: %d vs %d", before2.AnswerCount(p.Query), after2.AnswerCount(sp.Query))
	}
}

package xform

import (
	"fmt"
	"sort"

	"existdlog/internal/ast"
)

// PushProjections applies Lemma 3.2 to an adorned program: every
// occurrence of an adorned derived literal p^a — in rule heads, rule
// bodies, and the query goal — is consistently replaced by its projection
// onto the 'n' positions of a. The adornment string keeps its original
// length; the correspondence between adornment and arguments ignores the
// 'd's, as in the paper.
//
// The rewrite checks the precondition that makes it meaning-preserving: a
// variable in a dropped body position must not occur in any kept position
// of the same rule (it may occur in other dropped positions, e.g. the head
// position it propagates to, as in Example 1's recursive rule).
func PushProjections(p *ast.Program) (*ast.Program, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	out := &ast.Program{Query: p.Query.Clone(), Derived: make(map[string]bool)}
	for k := range p.Derived {
		out.Derived[k] = true
	}
	project := func(a ast.Atom) (ast.Atom, bool) {
		if a.Adornment == "" || !p.Derived[a.Key()] || len(a.Args) != len(a.Adornment) {
			return a, false // unadorned, base, or already projected
		}
		keep := a.Args[:0:0]
		for i, t := range a.Args {
			if a.Adornment[i] == 'n' {
				keep = append(keep, t)
			}
		}
		return ast.Atom{Pred: a.Pred, Adornment: a.Adornment, Args: keep, Negated: a.Negated}, true
	}
	for ri, r := range p.Rules {
		nr := r.Clone()
		kept := make(map[string]int)     // variable -> occurrences in kept positions
		droppedBody := map[string]bool{} // variables dropped from body literals
		note := func(a ast.Atom, isBody bool) {
			dropped := a.Adornment != "" && p.Derived[a.Key()] && len(a.Args) == len(a.Adornment)
			for i, t := range a.Args {
				if t.Kind != ast.Variable {
					continue
				}
				if dropped && a.Adornment[i] == 'd' {
					if isBody {
						droppedBody[t.Name] = true
					}
				} else {
					kept[t.Name]++
				}
			}
		}
		note(r.Head, false)
		for _, b := range r.Body {
			note(b, true)
		}
		for v := range droppedBody {
			if kept[v] > 0 {
				return nil, fmt.Errorf(
					"xform: rule %d (%s): variable %s in a dropped position also occurs in a kept position; projection would change the query",
					ri+1, r, v)
			}
		}
		nr.Head, _ = project(nr.Head)
		for bi := range nr.Body {
			nr.Body[bi], _ = project(nr.Body[bi])
		}
		out.Rules = append(out.Rules, nr)
	}
	out.Query, _ = project(out.Query)
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("xform: projection produced invalid program: %w", err)
	}
	return out, nil
}

// AddCoveringUnitRules returns p extended with the unit rules of
// Section 5: for every pair of adorned derived versions p^a, p^a1 of the
// same base predicate where a1 covers a (each 'n' of a is 'n' in a1), the
// rule
//
//	p^a(t̄) :- p^a1(t̄1)
//
// is added (if not already present), where t̄1 is a vector of fresh
// variables over a1's kept positions and t̄ selects those kept by a.
// The rules are valid for both projected and unprojected programs. The
// returned indices identify the added rules in the result.
func AddCoveringUnitRules(p *ast.Program) (*ast.Program, []int) {
	out := p.Clone()
	// Group adorned derived keys by base predicate name.
	type version struct {
		ad   ast.Adornment
		args int
	}
	byBase := make(map[string][]version)
	seen := make(map[string]bool)
	collect := func(a ast.Atom) {
		if a.Adornment == "" || !p.Derived[a.Key()] || seen[a.Key()] {
			return
		}
		seen[a.Key()] = true
		byBase[a.Pred] = append(byBase[a.Pred], version{a.Adornment, len(a.Args)})
	}
	for _, r := range p.Rules {
		collect(r.Head)
		for _, b := range r.Body {
			collect(b)
		}
	}
	collect(p.Query)

	// Iterate bases in sorted order so the added rules come out in a
	// deterministic order (the optimizer's EXPLAIN report is byte-stable).
	bases := make([]string, 0, len(byBase))
	for base := range byBase {
		bases = append(bases, base)
	}
	sort.Strings(bases)

	var added []int
	for _, base := range bases {
		versions := byBase[base]
		for _, lo := range versions {
			for _, hi := range versions {
				if lo.ad == hi.ad || !hi.ad.Covers(lo.ad) {
					continue
				}
				rule := coveringUnitRule(base, lo.ad, hi.ad, lo.args == len(lo.ad))
				dup := false
				for _, r := range out.Rules {
					if r.Equal(rule) {
						dup = true
						break
					}
				}
				if !dup {
					out.Rules = append(out.Rules, rule)
					added = append(added, len(out.Rules)-1)
				}
			}
		}
	}
	return out, added
}

// coveringUnitRule builds p^lo(t̄) :- p^hi(t̄1). With unprojected=true both
// atoms carry all positions; otherwise each carries only its 'n'
// positions.
func coveringUnitRule(base string, lo, hi ast.Adornment, unprojected bool) ast.Rule {
	var headArgs, bodyArgs []ast.Term
	for i := range hi {
		v := ast.V(fmt.Sprintf("U%d", i+1))
		if unprojected {
			bodyArgs = append(bodyArgs, v)
			headArgs = append(headArgs, v)
			continue
		}
		if hi[i] == 'n' {
			bodyArgs = append(bodyArgs, v)
			if lo[i] == 'n' {
				headArgs = append(headArgs, v)
			}
		}
	}
	return ast.NewRule(
		ast.Atom{Pred: base, Adornment: lo, Args: headArgs},
		ast.Atom{Pred: base, Adornment: hi, Args: bodyArgs},
	)
}

package xform

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"existdlog/internal/adorn"
	"existdlog/internal/engine"
	"existdlog/internal/parser"
)

// randomExistentialProgram builds a random program with a unary query over
// random recursive rules — the adornment/split/projection pipeline must
// preserve its answers (Lemma 2.2 + Lemma 3.1 + Lemma 3.2, semantically).
func randomExistentialProgram(rng *rand.Rand) string {
	derived := []string{"d1", "d2", "d3"}
	base := []string{"e", "f"}
	var sb strings.Builder
	n := 1 + rng.Intn(4)
	for i := 0; i < n; i++ {
		h := derived[rng.Intn(len(derived))]
		switch rng.Intn(5) {
		case 0:
			fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Z), %s(Z,Y).\n",
				h, base[rng.Intn(2)], derived[rng.Intn(3)])
		case 1:
			fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Z), %s(Z,Y).\n",
				h, derived[rng.Intn(3)], base[rng.Intn(2)])
		case 2:
			fmt.Fprintf(&sb, "%s(X,Y) :- %s(Y,X).\n", h, derived[rng.Intn(3)])
		case 3:
			fmt.Fprintf(&sb, "%s(X,Y) :- %s(X,Y), %s(Y,W).\n",
				h, derived[rng.Intn(3)], base[rng.Intn(2)])
		case 4:
			fmt.Fprintf(&sb, "%s(X,X) :- %s(X,X).\n", h, base[rng.Intn(2)])
		}
	}
	for _, d := range derived {
		fmt.Fprintf(&sb, "%s(X,Y) :- e(X,Y).\n", d)
	}
	// Query shapes with genuine existential structure.
	switch rng.Intn(4) {
	case 0:
		sb.WriteString("query(X) :- d1(X,Y).\n")
	case 1:
		sb.WriteString("query(X) :- d1(X,Y), d2(Y,Z).\n")
	case 2:
		sb.WriteString("query(X) :- d1(X,Y), f(U,V).\n") // disconnected component
	case 3:
		sb.WriteString("query(X) :- d1(X,Y), d2(X,Z), f(W,W).\n")
	}
	sb.WriteString("?- query(X).\n")
	return sb.String()
}

func TestAdornSplitProjectPreserveAnswersFuzz(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	for trial := 0; trial < 60; trial++ {
		src := randomExistentialProgram(rng)
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, src)
		}
		ad, err := adorn.Adorn(p)
		if err != nil {
			t.Fatalf("trial %d adorn: %v\n%s", trial, err, src)
		}
		sp, err := SplitComponents(ad)
		if err != nil {
			t.Fatalf("trial %d split: %v\n%s", trial, err, ad)
		}
		pp, err := PushProjections(sp)
		if err != nil {
			t.Fatalf("trial %d project: %v\n%s", trial, err, sp)
		}
		for round := 0; round < 4; round++ {
			db := engine.NewDatabase()
			n := 3 + rng.Intn(4)
			for i := 0; i < 2*n; i++ {
				db.Add("e", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
				db.Add("f", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			}
			before, err := engine.Eval(p, db, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			after, err := engine.Eval(pp, db, engine.Options{BooleanCut: true})
			if err != nil {
				t.Fatal(err)
			}
			a1 := before.Answers(p.Query)
			a2 := after.Answers(pp.Query)
			if fmt.Sprint(a1) != fmt.Sprint(a2) {
				t.Fatalf("trial %d round %d: answers differ\nbefore: %v\nafter:  %v\nsource:\n%s\nprojected:\n%s",
					trial, round, a1, a2, src, pp)
			}
			// No strict fact-count assertion here: a program may need
			// several adorned versions of one predicate (Example 5), and
			// before rule deletion those can slightly exceed the original's
			// fact count — the caveat behind the paper's "usually has more
			// rules ... final program will perform at least as well".
			// Guard only against pathological blowup.
			if after.Stats.FactsDerived > 4*before.Stats.FactsDerived+16 {
				t.Fatalf("trial %d: optimized fact blowup (%d vs %d)\n%s\n%s",
					trial, after.Stats.FactsDerived, before.Stats.FactsDerived, src, pp)
			}
		}
	}
}

// Admission control: a fixed pool of evaluation slots fronted by one
// bounded wait queue per priority class. This replaces the old
// unbounded `slots chan struct{}` wait — under overload the old path
// let requests pile up without limit, turning saturation into
// unbounded latency and timeout storms. The controller instead makes
// three explicit decisions, in order of preference:
//
//   - admit: a slot is free (and no one of equal-or-higher priority is
//     already waiting), so the request evaluates now;
//   - queue: the class's queue has room, so the request waits — but
//     only up to the queue timeout, and only while its own deadline is
//     alive;
//   - reject: the queue is full (429) or the wait timed out (503),
//     reported immediately with a Retry-After hint so well-behaved
//     clients back off instead of hammering.
//
// Slots hand off in strict priority order — health > query > mutation
// — and a queued request whose context expired before it reached the
// front is *shed*: discarded at dequeue without ever starting
// evaluation, because evaluating work nobody is waiting for is the
// classic overload death spiral. Health-class requests (probes,
// scrapes) never consume slots at all: they are O(1) and must stay
// responsive precisely when the server is saturated.
package server

import (
	"context"
	"errors"
	"sync"
	"time"

	"existdlog/internal/obs"
)

// admitClass is a request's priority class, highest priority first.
type admitClass int

const (
	// admitHealth is for probes and scrapes: granted immediately,
	// bypassing the slot pool (cheap, and must work during overload).
	admitHealth admitClass = iota
	// admitQuery is for /query: reads keep flowing as long as any
	// capacity exists.
	admitQuery
	// admitMutation is for /update and /retract: writes yield to reads
	// under contention (a lost read is user-visible latency; a rejected
	// write is retried by the idempotent client).
	admitMutation
	numAdmitClasses
)

func (c admitClass) String() string {
	switch c {
	case admitHealth:
		return "health"
	case admitQuery:
		return "query"
	default:
		return "mutation"
	}
}

// Admission rejection errors. Handlers map these to HTTP statuses:
// errQueueFull → 429 (the queue itself is out of capacity — back off),
// errQueueTimeout → 503 (we waited the configured bound and no slot
// freed), errShed → 503 (the request's own deadline expired while it
// waited, so evaluating it would serve no one).
var (
	errQueueFull    = errors.New("admission queue is full")
	errQueueTimeout = errors.New("timed out waiting for an evaluation slot")
	errShed         = errors.New("request deadline expired while queued")
)

// waiterState tracks who is responsible for a queued waiter's slot.
// Transitions happen under admission.mu, so exactly one side — the
// granter popping the queue, or the waiter giving up — settles each
// waiter.
type waiterState int

const (
	waiting   waiterState = iota
	granted               // a slot was handed to this waiter via its grant channel
	shed                  // the granter discarded it at dequeue (deadline already dead)
	abandoned             // the waiter gave up (timeout or cancellation) before a grant
)

type waiter struct {
	ctx   context.Context
	grant chan struct{} // buffered(1): the granter never blocks on a vanished waiter
	state waiterState
}

// admission is the slot pool plus per-class bounded FIFO queues.
type admission struct {
	maxQueue     int           // per-class queue capacity
	queueTimeout time.Duration // max time a request may wait queued (0 = wait for its own deadline only)
	reg          *obs.Registry

	mu     sync.Mutex
	free   int // slots not currently held
	queues [numAdmitClasses][]*waiter
}

func newAdmission(slots, maxQueue int, queueTimeout time.Duration, reg *obs.Registry) *admission {
	return &admission{
		maxQueue:     maxQueue,
		queueTimeout: queueTimeout,
		reg:          reg,
		free:         slots,
	}
}

// queuedLocked reports whether any waiter of class c or higher priority
// is queued (admission.mu held). A free slot is not taken out of order:
// even a request that could run now queues behind earlier arrivals of
// its own class, preserving FIFO within a class.
func (a *admission) queuedLocked(c admitClass) bool {
	for k := admitClass(0); k <= c; k++ {
		if len(a.queues[k]) > 0 {
			return true
		}
	}
	return false
}

// admit acquires an evaluation slot for a request of class c, waiting
// in the class's bounded queue if none is free. On success the caller
// MUST call release exactly once when evaluation finishes. On error
// (errQueueFull, errQueueTimeout, errShed, or a wrapped form) no slot
// is held. ctx should carry the request's own deadline: it bounds the
// queue wait, and its expiry while queued sheds the request.
func (a *admission) admit(ctx context.Context, c admitClass) error {
	if c == admitHealth {
		return nil // probes bypass the pool entirely
	}
	a.mu.Lock()
	if a.free > 0 && !a.queuedLocked(c) {
		a.free--
		a.mu.Unlock()
		return nil
	}
	if len(a.queues[c]) >= a.maxQueue {
		a.mu.Unlock()
		return errQueueFull
	}
	w := &waiter{ctx: ctx, grant: make(chan struct{}, 1)}
	a.queues[c] = append(a.queues[c], w)
	a.mu.Unlock()

	a.reg.QueueEnter()
	defer a.reg.QueueLeave()

	var timeout <-chan time.Time
	if a.queueTimeout > 0 {
		t := time.NewTimer(a.queueTimeout)
		defer t.Stop()
		timeout = t.C
	}

	select {
	case <-w.grant:
		// Shed at dequeue, second check: the granter verified the
		// deadline when it popped us, but the grant and the expiry can
		// race — never start evaluating on a dead deadline.
		if ctx.Err() != nil {
			a.reg.Shed()
			a.release()
			return errShed
		}
		return nil
	case <-ctx.Done():
		switch a.settle(w, shed) {
		case waiting:
			a.reg.Shed()
			return errShed
		case granted:
			// A grant raced our cancellation: we own a slot we cannot use.
			<-w.grant
			a.reg.Shed()
			a.release()
			return errShed
		default: // the granter shed us first and already counted it
			return errShed
		}
	case <-timeout:
		switch a.settle(w, abandoned) {
		case waiting:
			return errQueueTimeout
		case granted:
			// Granted at the same instant the timer fired — take the slot.
			<-w.grant
			if ctx.Err() != nil {
				a.reg.Shed()
				a.release()
				return errShed
			}
			return nil
		default: // shed by the granter while the timer fired
			return errShed
		}
	}
}

// settle moves a still-waiting waiter to state s and returns the state
// it found. Anything but `waiting` means another party settled the
// waiter first: `granted` means it owns a slot (and must consume the
// pending grant), `shed` means the granter discarded and counted it.
func (a *admission) settle(w *waiter, s waiterState) waiterState {
	a.mu.Lock()
	defer a.mu.Unlock()
	prev := w.state
	if prev == waiting {
		w.state = s
	}
	return prev
}

// release returns a slot to the pool, handing it to the
// highest-priority live waiter if one is queued. Waiters whose
// deadlines died while queued are shed here — popped, counted, and
// never granted — so a burst of expired requests cannot occupy the
// engine.
func (a *admission) release() {
	a.mu.Lock()
	for c := admitClass(0); c < numAdmitClasses; c++ {
		q := a.queues[c]
		for len(q) > 0 {
			w := q[0]
			q = q[1:]
			if w.state != waiting {
				continue // gave up already; nothing owed
			}
			if w.ctx.Err() != nil {
				// Shed at dequeue: the deadline died while it waited.
				w.state = shed
				a.reg.Shed()
				continue
			}
			w.state = granted
			a.queues[c] = q
			a.mu.Unlock()
			w.grant <- struct{}{}
			return
		}
		a.queues[c] = q
	}
	a.free++
	a.mu.Unlock()
}

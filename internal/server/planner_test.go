package server

import (
	"fmt"
	"testing"
)

// hasOrders reports whether any pass record in a trace response carries
// planner order lines.
func hasOrders(out map[string]any) bool {
	passes, _ := out["passes"].([]any)
	for _, p := range passes {
		if m, ok := p.(map[string]any); ok {
			if o, ok := m["orders"].([]any); ok && len(o) > 0 {
				return true
			}
		}
	}
	return false
}

// TestQueryPlannerDefaultOnAndOverride: the runtime join planner is on
// by default for served queries, its per-pass orders ride along in the
// trace response, and the per-request "reorder" override compiles into
// a separate cache entry (never cross-contaminating the default one)
// while returning the same answers.
func TestQueryPlannerDefaultOnAndOverride(t *testing.T) {
	_, ts := newTestServer(t, Config{Source: chainSrc})

	resp, on := postQuery(t, ts.URL, `{"goal": "a(X,Y)", "trace": true}`)
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d, body %v", resp.StatusCode, on)
	}
	if !hasOrders(on) {
		t.Fatalf("default (planner-on) trace has no per-pass orders: %v", on["passes"])
	}

	// Opting out is a different compiled program: first such request must
	// be a cache miss, and its answers must match the planner's.
	_, off := postQuery(t, ts.URL, `{"goal": "a(X,Y)", "reorder": false, "trace": true}`)
	if off["cached"].(bool) {
		t.Error("planner-off request was served from the planner-on cache entry")
	}
	if hasOrders(off) {
		t.Errorf("planner-off trace carries order records: %v", off["passes"])
	}
	if fmt.Sprint(on["answers"]) != fmt.Sprint(off["answers"]) {
		t.Errorf("planner changed the answers\non:  %v\noff: %v", on["answers"], off["answers"])
	}

	// Each setting then hits its own cache entry.
	_, on2 := postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if !on2["cached"].(bool) {
		t.Error("second planner-on query missed the cache")
	}
	_, off2 := postQuery(t, ts.URL, `{"goal": "a(X,Y)", "reorder": false}`)
	if !off2["cached"].(bool) {
		t.Error("second planner-off query missed the cache")
	}
}

// TestServeNoReorderConfig: -no-reorder flips the default off for the
// whole server, and the per-request override can still turn the planner
// back on for one query.
func TestServeNoReorderConfig(t *testing.T) {
	_, ts := newTestServer(t, Config{Source: chainSrc, NoReorder: true})

	_, off := postQuery(t, ts.URL, `{"goal": "a(X,Y)", "trace": true}`)
	if hasOrders(off) {
		t.Errorf("-no-reorder server still planned: %v", off["passes"])
	}

	_, on := postQuery(t, ts.URL, `{"goal": "a(X,Y)", "reorder": true, "trace": true}`)
	if on["cached"].(bool) {
		t.Error("override request reused the planner-off cache entry")
	}
	if !hasOrders(on) {
		t.Fatal("per-request reorder:true did not engage the planner")
	}
	if fmt.Sprint(on["answers"]) != fmt.Sprint(off["answers"]) {
		t.Errorf("override changed the answers\non:  %v\noff: %v", on["answers"], off["answers"])
	}
}

package server

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"existdlog"
	"existdlog/internal/engine"
	"existdlog/internal/obs"
	"existdlog/internal/wal"
)

// newTestStore parses src and opens a store over it.
func newTestStore(t *testing.T, src string, cfg StoreConfig) *Store {
	t.Helper()
	prog, db, err := existdlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(prog, db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func mustMutate(t *testing.T, st *Store, op wal.Op, facts ...wal.Fact) uint64 {
	t.Helper()
	seq, err := st.Mutate(context.Background(), Mutation{Op: op, Facts: facts})
	if err != nil {
		t.Fatalf("%s: %v", op, err)
	}
	return seq
}

func fact(key string, row ...string) wal.Fact { return wal.Fact{Key: key, Row: row} }

// arenaRows decodes a relation's tuples in arena (insertion) order.
// EDB.Facts sorts its rows, so only this view can tell whether recovery
// rebuilt the arena itself — not just the set — identically (ISSUE 8
// satellite 4: row order feeds evaluation order, which downstream output
// pins byte-for-byte).
func arenaRows(db *engine.Database, key string) [][]string {
	rel, ok := db.Lookup(key)
	if !ok {
		return nil
	}
	out := make([][]string, 0, rel.Len())
	for i := 0; i < rel.Len(); i++ {
		tpl := rel.Tuple(i)
		row := make([]string, len(tpl))
		for j, id := range tpl {
			row[j] = db.Syms.Name(id)
		}
		out = append(out, row)
	}
	return out
}

// TestGoalKeyCollision is the cache-collision regression: two distinct
// goals whose quoted constants contain the old encoding's separators
// must not share a cache key. Before the length-prefixed encoding,
// a('x,c:y','z') and a('x','y,c:z') collided and one goal was served
// the other's cached program and answers.
func TestGoalKeyCollision(t *testing.T) {
	pairs := [][2]string{
		{"a('x,c:y','z')", "a('x','y,c:z')"},
		{"a('1','2,c:3,c:4')", "a('1,c:2','3,c:4')"},
		{"a('v0',X)", "a(X,'v0')"},
		{"a('_','x')", "a(_,'x')"},
	}
	for _, pair := range pairs {
		g1, err := parseGoal(pair[0])
		if err != nil {
			t.Fatal(err)
		}
		g2, err := parseGoal(pair[1])
		if err != nil {
			t.Fatal(err)
		}
		if goalKey(g1) == goalKey(g2) {
			t.Errorf("goalKey(%s) == goalKey(%s) == %q", pair[0], pair[1], goalKey(g1))
		}
	}
	// Same shape must still share a key (the cache's whole point).
	g1, _ := parseGoal("a(X,Y)")
	g2, _ := parseGoal("a(U,V)")
	if goalKey(g1) != goalKey(g2) {
		t.Errorf("alpha-equivalent goals got distinct keys %q, %q", goalKey(g1), goalKey(g2))
	}
}

// TestGoalKeyCollisionServed drives the same regression end to end: the
// colliding goals query different base tuples, so a collision serves
// one goal the other's cached answers.
func TestGoalKeyCollisionServed(t *testing.T) {
	src := `e('x,c:y','z'). e('x','y,c:z').`
	_, ts := newTestServer(t, Config{Source: src})
	_, out1 := postQuery(t, ts.URL, `{"goal": "e('x,c:y','z')"}`)
	if out1["count"].(float64) != 1 {
		t.Fatalf("first goal: %v", out1)
	}
	_, out2 := postQuery(t, ts.URL, `{"goal": "e('x','y,c:z')"}`)
	if out2["count"].(float64) != 1 {
		t.Fatalf("second goal: %v", out2)
	}
	if out2["cached"].(bool) {
		t.Error("distinct goals shared a cache entry")
	}
	got := fmt.Sprint(out2["answers"])
	if !strings.Contains(got, "y,c:z") || strings.Contains(got, "x,c:y") {
		t.Errorf("second goal served the first goal's answers: %v", got)
	}
}

func postJSON(t *testing.T, url, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

// TestMutationEndpoints drives /update and /retract over HTTP: new
// facts change subsequent answers, retracted facts disappear, and the
// write is reflected in the store gauges and mutation counters.
func TestMutationEndpoints(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc})

	_, out := postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if out["count"].(float64) != 6 {
		t.Fatalf("baseline count = %v", out["count"])
	}

	resp, out := postJSON(t, ts.URL+"/update", `{"facts": ["p(4,5)"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status %d: %v", resp.StatusCode, out)
	}
	if out["seq"].(float64) != 1 {
		t.Errorf("seq = %v, want 1", out["seq"])
	}
	_, out = postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if out["count"].(float64) != 10 {
		t.Errorf("after update count = %v, want 10 (closure of a 5-chain)", out["count"])
	}
	if !out["cached"].(bool) {
		t.Error("the compiled-program cache must survive mutations (it depends on rules only)")
	}

	resp, out = postJSON(t, ts.URL+"/retract", `{"facts": ["p(4,5)", "p(3,4)"]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("retract status %d: %v", resp.StatusCode, out)
	}
	_, out = postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if out["count"].(float64) != 3 {
		t.Errorf("after retract count = %v, want 3 (closure of a 3-chain)", out["count"])
	}

	snap := s.Registry().Snapshot()
	if snap.Mutations["update/ok"] != 1 || snap.Mutations["retract/ok"] != 1 {
		t.Errorf("mutation counters: %v", snap.Mutations)
	}
	if snap.StoreSeq != 2 {
		t.Errorf("store seq gauge = %d, want 2", snap.StoreSeq)
	}
	if snap.StoreBaseFacts != 2 {
		t.Errorf("base facts gauge = %d, want 2", snap.StoreBaseFacts)
	}
	if snap.StoreDerivedFacts == 0 {
		t.Error("derived facts gauge still zero after materializing writes")
	}
}

// TestMutationRejections pins the write path's client errors: derived
// predicates, non-ground facts, unparsable facts, arity mismatches, and
// wrong methods. None of them may move the store's version.
func TestMutationRejections(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc})
	cases := []struct {
		name, url, body string
		status          int
	}{
		{"derived predicate", "/update", `{"facts": ["a(9,9)"]}`, http.StatusBadRequest},
		{"non-ground", "/update", `{"facts": ["p(X,1)"]}`, http.StatusBadRequest},
		{"not a fact", "/update", `{"facts": ["p(1,2) :- q(2)"]}`, http.StatusBadRequest},
		{"empty", "/update", `{"facts": []}`, http.StatusBadRequest},
		{"arity mismatch", "/update", `{"facts": ["p(1,2,3)"]}`, http.StatusBadRequest},
		{"bad json", "/retract", `{"facts": 7}`, http.StatusBadRequest},
		{"derived retract", "/retract", `{"facts": ["a(1,2)"]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, out := postJSON(t, ts.URL+tc.url, tc.body)
		if resp.StatusCode != tc.status {
			t.Errorf("%s: status %d, want %d (%v)", tc.name, resp.StatusCode, tc.status, out)
		}
	}
	resp, err := http.Get(ts.URL + "/update")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /update: status %d", resp.StatusCode)
	}
	if v := s.Store().Current(); v.Seq != 0 {
		t.Errorf("rejected mutations moved the version to seq %d", v.Seq)
	}
	snap := s.Registry().Snapshot()
	if snap.Mutations["update/error"] != 5 || snap.Mutations["retract/error"] != 2 {
		t.Errorf("mutation error counters: %v", snap.Mutations)
	}
}

// TestMutationsRefusedWhileDraining: the drain that stops admitting
// queries stops admitting writes too.
func TestMutationsRefusedWhileDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc})
	s.BeginDrain()
	resp, out := postJSON(t, ts.URL+"/update", `{"facts": ["p(4,5)"]}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("update while draining: status %d (%v)", resp.StatusCode, out)
	}
}

// TestStoreRecovery: mutations survive a clean close and reopen, both
// from the log alone and through a checkpoint + log-truncation cycle,
// and the recovered materialization equals a from-scratch evaluation.
func TestStoreRecovery(t *testing.T) {
	dir := t.TempDir()
	src := chainSrc
	cfg := StoreConfig{WALDir: dir, SnapshotEvery: 3}

	st := newTestStore(t, src, cfg)
	mustMutate(t, st, wal.OpUpdate, fact("p", "4", "5"), fact("p", "5", "6"))
	mustMutate(t, st, wal.OpRetract, fact("p", "1", "2"))
	preClose := fmt.Sprint(arenaRows(st.Current().EDB, "p"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Two updates and a retract: recovery must replay all three.
	st2 := newTestStore(t, src, cfg)
	v := st2.Current()
	if v.Seq != 2 {
		t.Fatalf("recovered seq = %d, want 2", v.Seq)
	}
	if got := fmt.Sprint(v.EDB.Facts("p")); got != "[[2 3] [3 4] [4 5] [5 6]]" {
		t.Fatalf("recovered base facts: %s", got)
	}
	// WAL replay applies the same operations in the same order the live
	// store did, so it rebuilds the arena identically — same rows in the
	// same slots, not merely the same set.
	if got := fmt.Sprint(arenaRows(v.EDB, "p")); got != preClose {
		t.Fatalf("wal replay changed arena row order:\ngot  %s\nwant %s", got, preClose)
	}

	// Cross the checkpoint threshold: snapshot written, log truncated.
	mustMutate(t, st2, wal.OpUpdate, fact("p", "6", "7"))
	if _, err := os.Stat(filepath.Join(dir, "snapshot.db")); err != nil {
		t.Fatalf("no checkpoint after %d mutations: %v", 3, err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "wal.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated after checkpoint (size %d, err %v)", fi.Size(), err)
	}
	mustMutate(t, st2, wal.OpUpdate, fact("p", "7", "8"))
	st2.Close()

	// Recovery now stacks snapshot + newer log records.
	st3 := newTestStore(t, src, cfg)
	v = st3.Current()
	if v.Seq != 4 {
		t.Fatalf("recovered seq = %d, want 4", v.Seq)
	}
	// Checkpoint + log recovery is deterministic down to arena row order:
	// a second recovery from the same directory rebuilds the same arena
	// row-for-row (the snapshot's sorted rows, then log records in order).
	rowsA := fmt.Sprint(arenaRows(v.EDB, "p"))
	if err := st3.Close(); err != nil {
		t.Fatal(err)
	}
	st3 = newTestStore(t, src, cfg)
	v = st3.Current()
	if got := fmt.Sprint(arenaRows(v.EDB, "p")); got != rowsA {
		t.Fatalf("checkpoint recovery is not row-order deterministic:\nfirst  %s\nsecond %s", rowsA, got)
	}
	mustMutate(t, st3, wal.OpUpdate, fact("p", "8", "9"))
	v = st3.Current()

	// Exact fixpoint: recovered materialization == scratch evaluation.
	prog, _, err := existdlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Eval(prog, v.EDB, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v.Mat == nil {
		t.Fatal("no materialization after a write")
	}
	if got, ref := fmt.Sprint(v.Mat.DB.Facts("a")), fmt.Sprint(want.DB.Facts("a")); got != ref {
		t.Errorf("recovered fixpoint diverges\ngot  %s\nwant %s", got, ref)
	}
}

// TestStoreRetractFallback: a retraction the incremental path cannot
// complete must never install its over-approximating partial result —
// the store recomputes from scratch instead. MaxIterations is not
// reachable from StoreConfig by design, so simulate the unsound path
// with a program Retract rejects outright only via negation... instead,
// exercise the documented fallback trigger: negation disables the
// incremental path entirely, and every mutation still yields the exact
// fixpoint via re-evaluation.
func TestStoreRetractFallback(t *testing.T) {
	src := `unreach(X,Y) :- node(X), node(Y), not path(X,Y).
path(X,Y) :- e(X,Y).
path(X,Y) :- e(X,Z), path(Z,Y).
?- unreach(X,Y).
node(1). node(2). node(3).
e(1,2). e(2,3).
`
	st := newTestStore(t, src, StoreConfig{})
	mustMutate(t, st, wal.OpUpdate, fact("e", "3", "1"))
	v := st.Current()
	if v.Mat == nil {
		t.Fatal("negation program not materialized")
	}
	// All nodes now reach each other: no unreachable pairs.
	if got := v.Mat.DB.Count("unreach"); got != 0 {
		t.Fatalf("after closing the cycle unreach has %d tuples", got)
	}
	mustMutate(t, st, wal.OpRetract, fact("e", "2", "3"))
	v = st.Current()
	prog, _, err := existdlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Eval(prog, v.EDB, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ref := fmt.Sprint(v.Mat.DB.Facts("unreach")), fmt.Sprint(want.DB.Facts("unreach")); got != ref {
		t.Errorf("fallback fixpoint diverges\ngot  %s\nwant %s", got, ref)
	}
}

// TestConcurrentReadersSeeConsistentVersions is the -race pinning test:
// while a writer extends a chain one edge per mutation, readers pin
// versions and check the version's own invariant — a version at Seq n
// holds exactly the initial facts plus n edges, and an evaluation
// against the pinned base state sees the matching closure. A reader
// racing the applier on shared state would trip the race detector;
// a reader observing a half-applied batch would break the invariant.
func TestConcurrentReadersSeeConsistentVersions(t *testing.T) {
	src := `a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
p(1,2).
`
	st := newTestStore(t, src, StoreConfig{})
	prog, _, err := existdlog.Parse(src)
	if err != nil {
		t.Fatal(err)
	}

	const writes = 40
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				v := st.Current()
				n := int(v.Seq) + 1 // edges in this version's chain
				if got := v.EDB.Count("p"); got != n {
					t.Errorf("version seq %d has %d edges, want %d", v.Seq, got, n)
					return
				}
				res, err := engine.Eval(prog, v.EDB, engine.Options{})
				if err != nil {
					t.Error(err)
					return
				}
				if got, want := res.DB.Count("a"), n*(n+1)/2; got != want {
					t.Errorf("pinned version seq %d: closure %d, want %d", v.Seq, got, want)
					return
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		mustMutate(t, st, wal.OpUpdate, fact("p", fmt.Sprint(i+2), fmt.Sprint(i+3)))
	}
	close(stop)
	wg.Wait()

	v := st.Current()
	if v.Seq != writes {
		t.Fatalf("final seq = %d, want %d", v.Seq, writes)
	}
	if v.Mat == nil {
		t.Fatal("no materialization after writes")
	}
	n := writes + 1
	if got := v.Mat.DB.Count("a"); got != n*(n+1)/2 {
		t.Errorf("final closure %d, want %d", v.Mat.DB.Count("a"), n*(n+1)/2)
	}
}

// TestStoreBatching: concurrent writers group-commit. The batch-size
// histogram must account for every mutation exactly once, and the
// number of fsyncs must not exceed the number of batches.
func TestStoreBatching(t *testing.T) {
	reg := obs.NewRegistry()
	st := newTestStore(t, "a(X,Y) :- p(X,Y).\n?- a(X,Y).\np(0,0).",
		StoreConfig{WALDir: t.TempDir(), Registry: reg})
	const writers, each = 8, 10
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				_, err := st.Mutate(context.Background(),
					Mutation{Op: wal.OpUpdate, Facts: []wal.Fact{fact("p", fmt.Sprint(w), fmt.Sprint(i))}})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	snap := reg.Snapshot()
	if got := int(snap.BatchSize.Sum); got != writers*each {
		t.Errorf("batch-size histogram accounted %d mutations, want %d", got, writers*each)
	}
	if snap.WALRecords != writers*each {
		t.Errorf("wal records = %d, want %d", snap.WALRecords, writers*each)
	}
	batches := int64(0)
	for _, c := range snap.BatchSize.Counts {
		batches += c
	}
	if snap.WALSyncs > batches {
		t.Errorf("more fsyncs (%d) than batches (%d): group commit is not grouping", snap.WALSyncs, batches)
	}
	if v := st.Current(); v.Seq != writers*each {
		t.Errorf("final seq %d, want %d", v.Seq, writers*each)
	}
}

// TestStoreCrashHelper is the SIGKILL victim: it opens a durable store
// and writes edges forever, printing each edge only after its ack. Run
// only as a subprocess of TestStoreCrashRecovery.
func TestStoreCrashHelper(t *testing.T) {
	dir := os.Getenv("EXISTDLOG_STORE_CRASH_DIR")
	if dir == "" {
		t.Skip("subprocess helper")
	}
	prog, db, err := existdlog.Parse(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStore(prog, db, StoreConfig{WALDir: dir, SnapshotEvery: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i := 4; ; i++ {
		_, err := st.Mutate(context.Background(), Mutation{
			Op:    wal.OpUpdate,
			Facts: []wal.Fact{fact("p", fmt.Sprint(i), fmt.Sprint(i+1))},
		})
		if err != nil {
			return
		}
		// The ack means the record is fsync'd: it must survive SIGKILL.
		fmt.Printf("acked %d\n", i)
	}
}

// TestStoreCrashRecovery SIGKILLs a store mid-write-burst and verifies
// that recovery reproduces every acknowledged write and the exact
// fixpoint an uninterrupted run would have.
func TestStoreCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns a subprocess")
	}
	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run=^TestStoreCrashHelper$", "-test.v")
	cmd.Env = append(os.Environ(), "EXISTDLOG_STORE_CRASH_DIR="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = cmd.Stdout
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}

	// Let a burst of acknowledged writes through, then SIGKILL with the
	// helper still writing.
	lastAcked := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		var n int
		if _, err := fmt.Sscanf(sc.Text(), "acked %d", &n); err == nil {
			lastAcked = n
			if n >= 15 {
				break
			}
		}
	}
	if lastAcked < 15 {
		cmd.Process.Kill()
		cmd.Wait()
		t.Fatalf("helper died before the burst (last ack %d)", lastAcked)
	}
	if err := cmd.Process.Kill(); err != nil { // SIGKILL
		t.Fatal(err)
	}
	cmd.Wait()

	// Recover in-process from the same directory.
	st := newTestStore(t, chainSrc, StoreConfig{WALDir: dir, SnapshotEvery: 5})
	v := st.Current()
	for i := 4; i <= lastAcked; i++ {
		if !contains(v.EDB.Facts("p"), []string{fmt.Sprint(i), fmt.Sprint(i + 1)}) {
			t.Fatalf("acknowledged edge p(%d,%d) lost in the crash", i, i+1)
		}
	}
	// Unacked writes may or may not have landed, but the surviving state
	// must be a prefix of the helper's sequence: chain edges with no gap.
	edges := v.EDB.Count("p")
	if int(v.Seq) != edges-3 {
		t.Fatalf("seq %d does not match %d recovered edges", v.Seq, edges)
	}
	// Crash recovery rebuilds the arena deterministically: the helper's
	// run crossed checkpoint thresholds, so recovery stacks a snapshot's
	// sorted rows plus the log tail — and a second recovery from the same
	// crashed directory must land every row in the same arena slot. (The
	// SIGKILL lands mid-write, so this also exercises the torn-tail replay
	// path against the arena store.)
	rowsFirst := fmt.Sprint(arenaRows(v.EDB, "p"))
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st = newTestStore(t, chainSrc, StoreConfig{WALDir: dir, SnapshotEvery: 5})
	v = st.Current()
	if got := fmt.Sprint(arenaRows(v.EDB, "p")); got != rowsFirst {
		t.Fatalf("crash recovery is not row-order deterministic:\nfirst  %s\nsecond %s", rowsFirst, got)
	}

	// Exact fixpoint equality with an uninterrupted run over the same
	// base state: closure of an (edges+1)-node chain, counted via the
	// recovered store's own materialization.
	mustMutate(t, st, wal.OpUpdate, fact("p", "0", "1"))
	v = st.Current()
	if v.Mat == nil {
		t.Fatal("no materialization after recovery write")
	}
	prog, _, err := existdlog.Parse(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	want, err := engine.Eval(prog, v.EDB, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got, ref := fmt.Sprint(v.Mat.DB.Facts("a")), fmt.Sprint(want.DB.Facts("a")); got != ref {
		t.Errorf("recovered fixpoint diverges from scratch evaluation")
	}
}

// TestStoreRecoverySeqSkip pins the replay guard (rec.Seq <= snapshot
// seq → skip) against the arena store: a checkpoint that already covers
// a log prefix is authoritative for that prefix — its rows land in the
// arena in snapshot order and the covered records are not re-applied —
// while records past the checkpoint still replay on top, in order.
func TestStoreRecoverySeqSkip(t *testing.T) {
	dir := t.TempDir()
	cfg := StoreConfig{WALDir: dir, SnapshotEvery: 100}
	st := newTestStore(t, chainSrc, cfg)
	mustMutate(t, st, wal.OpUpdate, fact("p", "4", "5")) // seq 1
	mustMutate(t, st, wal.OpUpdate, fact("p", "5", "6")) // seq 2
	mustMutate(t, st, wal.OpUpdate, fact("p", "6", "7")) // seq 3
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Hand-write a checkpoint at seq 2 WITHOUT truncating the log. Its
	// state intentionally diverges from the log prefix (p(7,8) instead of
	// p(4,5)/p(5,6)): if recovery re-applied records 1 or 2, the divergent
	// rows would reappear and betray the double-apply.
	_, db, err := existdlog.Parse(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	db.Add("p", "7", "8")
	if err := wal.WriteSnapshotFile(filepath.Join(dir, snapFile), 2, db); err != nil {
		t.Fatal(err)
	}

	st2 := newTestStore(t, chainSrc, cfg)
	v := st2.Current()
	if v.Seq != 3 {
		t.Fatalf("recovered seq = %d, want 3", v.Seq)
	}
	got := fmt.Sprint(arenaRows(v.EDB, "p"))
	// Snapshot rows restore in sorted order, then record 3 appends p(6,7).
	want := fmt.Sprint([][]string{{"1", "2"}, {"2", "3"}, {"3", "4"}, {"7", "8"}, {"6", "7"}})
	if got != want {
		t.Fatalf("seq-skip recovery arena:\ngot  %s\nwant %s", got, want)
	}
}

func contains(rows [][]string, row []string) bool {
	for _, r := range rows {
		if fmt.Sprint(r) == fmt.Sprint(row) {
			return true
		}
	}
	return false
}

// TestMutateClosedStore: a closed store fails writes instead of
// hanging.
func TestMutateClosedStore(t *testing.T) {
	st := newTestStore(t, chainSrc, StoreConfig{})
	st.Close()
	_, err := st.Mutate(context.Background(), Mutation{Op: wal.OpUpdate, Facts: []wal.Fact{fact("p", "9", "9")}})
	if err == nil {
		t.Fatal("mutate on a closed store succeeded")
	}
	if _, err := st.Mutate(context.Background(), Mutation{Op: "bogus"}); err == nil {
		t.Fatal("bogus op accepted")
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"existdlog/internal/leakcheck"
	"existdlog/internal/obs"
)

var update = flag.Bool("update", false, "rewrite golden files")

// chainSrc is the served program of most tests: transitive closure over
// a 4-node chain, with its own default goal.
const chainSrc = `a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
p(1,2). p(2,3). p(3,4).
`

// countSrc counts forever: only a deadline or an abort stops it, so it
// exercises the partial-result paths.
const countSrc = `n(X) :- seed(X).
n(Y) :- n(X), succ(X,Y).
?- n(X).
seed(0).
`

// fakeClock steps a fixed amount per Now call. The query handler reads
// the clock exactly twice per counted request, so with a fake clock
// every query observes the same latency and the metrics scrape is
// byte-deterministic.
type fakeClock struct {
	mu   sync.Mutex
	t    time.Time
	step time.Duration
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(c.step)
	return c.t
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { s.Close() })
	return s, ts
}

func postQuery(t *testing.T, url string, body string) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/query", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp, out
}

func TestQueryAnswers(t *testing.T) {
	_, ts := newTestServer(t, Config{Source: chainSrc})
	resp, out := postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %v", resp.StatusCode, out)
	}
	if got := out["count"].(float64); got != 6 {
		t.Errorf("count = %v, want 6 (closure of a 4-chain)", got)
	}
	if out["cached"].(bool) {
		t.Error("first query reported a cache hit")
	}
	if _, ok := out["stats"].(map[string]any); !ok {
		t.Errorf("response has no stats object: %v", out)
	}

	// Same goal shape again: served from the compiled cache.
	_, out = postQuery(t, ts.URL, `{"goal": "a(U,V)"}`)
	if !out["cached"].(bool) {
		t.Error("alpha-renamed goal missed the compiled cache")
	}

	// Constants act as selections and are part of the cache key.
	_, out = postQuery(t, ts.URL, `{"goal": "a(1,Y)"}`)
	if out["cached"].(bool) {
		t.Error("selected goal a(1,Y) shares a cache entry with a(X,Y)")
	}
	if got := out["count"].(float64); got != 3 {
		t.Errorf("a(1,Y) count = %v, want 3", got)
	}

	// Empty body evaluates the program's own "?- goal.".
	_, out = postQuery(t, ts.URL, ``)
	if got := out["count"].(float64); got != 6 {
		t.Errorf("default-goal count = %v, want 6", got)
	}

	// Base relations answer too, evaluated as written.
	_, out = postQuery(t, ts.URL, `{"goal": "p(1,X)"}`)
	if got := out["count"].(float64); got != 1 {
		t.Errorf("p(1,X) count = %v, want 1", got)
	}

	// Per-request trace: the per-rule metrics ride along.
	_, out = postQuery(t, ts.URL, `{"goal": "a(X,Y)", "trace": true}`)
	if rules, ok := out["rules"].([]any); !ok || len(rules) == 0 {
		t.Errorf("trace:true response has no rules: %v", out)
	}
}

func TestQueryErrorPaths(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc})

	// Malformed goal: 400 with the parse error in the body.
	resp, out := postQuery(t, ts.URL, `{"goal": "a(X,"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed goal: status %d, want 400 (%v)", resp.StatusCode, out)
	}
	if msg, _ := out["error"].(string); !strings.Contains(msg, "parsing goal") {
		t.Errorf("malformed goal error = %q", out["error"])
	}

	// Malformed JSON body.
	resp, out = postQuery(t, ts.URL, `{"goal": `)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d (%v)", resp.StatusCode, out)
	}

	// Arity mismatch: a/1 against rules defining a/2.
	resp, out = postQuery(t, ts.URL, `{"goal": "a(X)"}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("arity mismatch: status %d, want 400 (%v)", resp.StatusCode, out)
	}

	// Wrong method.
	getResp, err := http.Get(ts.URL + "/query")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /query: status %d, want 405", getResp.StatusCode)
	}

	// Every failed request shows up in the error outcome counter
	// (the 405 is rejected before it counts as a query).
	if got := s.Registry().Snapshot().Queries[obs.OutcomeError]; got != 3 {
		t.Errorf("error outcome counter = %d, want 3", got)
	}
}

func TestQueryTimeoutReturnsPartial(t *testing.T) {
	_, ts := newTestServer(t, Config{Source: countSrc})
	resp, out := postQuery(t, ts.URL, `{"goal": "n(X)", "timeout_ms": 50}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("timed-out query: status %d, want 200 (%v)", resp.StatusCode, out)
	}
	if partial, _ := out["partial"].(bool); !partial {
		t.Fatalf("timed-out query not marked partial: %v", out)
	}
	if inc, _ := out["incomplete"].(string); inc != "deadline exceeded" {
		t.Errorf("incomplete = %q, want \"deadline exceeded\"", out["incomplete"])
	}
	if got := out["count"].(float64); got < 1 {
		t.Errorf("partial result carries no answers: count = %v", got)
	}
}

func TestMaxFactsReturnsPartial(t *testing.T) {
	_, ts := newTestServer(t, Config{Source: countSrc, MaxFacts: 100})
	resp, out := postQuery(t, ts.URL, `{"goal": "n(X)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("limit-hit query: status %d (%v)", resp.StatusCode, out)
	}
	if inc, _ := out["incomplete"].(string); inc != "fact limit exceeded" {
		t.Errorf("incomplete = %q, want \"fact limit exceeded\"", out["incomplete"])
	}
}

func TestHealthAndReady(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc})
	for _, path := range []string{"/healthz", "/readyz"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d, want 200", path, resp.StatusCode)
		}
	}
	s.BeginDrain()
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /readyz: status %d, want 503", resp.StatusCode)
	}
	qresp, out := postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if qresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining /query: status %d, want 503 (%v)", qresp.StatusCode, out)
	}
	// Liveness is unaffected by draining.
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("draining /healthz: status %d, want 200", resp.StatusCode)
	}
}

func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t, Config{Source: chainSrc})
	resp, err := http.Get(ts.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("/debug/pprof/cmdline: status %d, want 200", resp.StatusCode)
	}
}

// TestMetricsGolden byte-matches a /metrics scrape after a fixed request
// sequence. The injected stepping clock makes the latency histogram
// deterministic; the process start time is the one wall-clock line and
// is stripped before comparison. Refresh with: go test ./internal/server
// -run TestMetricsGolden -update
func TestMetricsGolden(t *testing.T) {
	clock := &fakeClock{
		t:    time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC),
		step: time.Millisecond,
	}
	_, ts := newTestServer(t, Config{Source: chainSrc, Now: clock.Now})
	for _, body := range []string{
		``,                       // default goal, cache miss
		`{"goal": "a(X,Y)"}`,     // cache hit
		`{"goal": "a(1,Y)"}`,     // selection, separate cache entry
		`{"goal": "p(1,X)"}`,     // base relation, evaluated as written
		`{"goal": "broken(((("}`, // parse error, error outcome
	} {
		resp, _ := postQuery(t, ts.URL, body)
		resp.Body.Close()
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}

	// The scrape must be valid exposition before anything else.
	if _, err := obs.ParseExposition(bytes.NewReader(raw)); err != nil {
		t.Fatalf("scrape does not parse: %v\n%s", err, raw)
	}

	got := stripStartTime(raw)
	golden := filepath.Join("testdata", "metrics.golden")
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to write it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("scrape diverges from %s:\n%s", golden, diffLines(want, got))
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	var buf bytes.Buffer
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}

// stripStartTime drops the process-start-time and uptime families — the
// only wall-clock-dependent lines in the exposition.
func stripStartTime(b []byte) []byte {
	var out bytes.Buffer
	for _, line := range strings.SplitAfter(string(b), "\n") {
		if strings.Contains(line, "existdlog_process_start_time_seconds") ||
			strings.Contains(line, "existdlog_process_uptime_seconds") {
			continue
		}
		out.WriteString(line)
	}
	return out.Bytes()
}

func diffLines(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	var sb strings.Builder
	for i := 0; i < len(w) || i < len(g); i++ {
		var wl, gl string
		if i < len(w) {
			wl = w[i]
		}
		if i < len(g) {
			gl = g[i]
		}
		if wl != gl {
			fmt.Fprintf(&sb, "line %d:\n  want %q\n  got  %q\n", i+1, wl, gl)
		}
	}
	return sb.String()
}

// TestConcurrentScrapeWhileQuerying races queries against scrapes; run
// under -race in the CI serve job. Every scrape must parse, and after
// the dust settles the outcome counters account for every request.
func TestConcurrentScrapeWhileQuerying(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc, MaxConcurrent: 4, Parallel: true})
	const queriers, queries = 4, 25
	const scrapers, scrapes = 2, 25
	var wg sync.WaitGroup
	for w := 0; w < queriers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			goals := []string{`{"goal": "a(X,Y)"}`, `{"goal": "a(1,Y)"}`, `{"goal": "p(X,_)"}`}
			for i := 0; i < queries; i++ {
				resp, err := http.Post(ts.URL+"/query", "application/json",
					strings.NewReader(goals[(w+i)%len(goals)]))
				if err != nil {
					t.Error(err)
					return
				}
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					t.Errorf("query status %d", resp.StatusCode)
					return
				}
			}
		}(w)
	}
	for w := 0; w < scrapers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < scrapes; i++ {
				resp, err := http.Get(ts.URL + "/metrics")
				if err != nil {
					t.Error(err)
					return
				}
				raw, err := readAll(resp)
				if err != nil {
					t.Error(err)
					return
				}
				if _, err := obs.ParseExposition(bytes.NewReader(raw)); err != nil {
					t.Errorf("mid-flight scrape invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	snap := s.Registry().Snapshot()
	if got := snap.Queries[obs.OutcomeOK]; got != queriers*queries {
		t.Errorf("ok outcomes = %d, want %d", got, queriers*queries)
	}
	if snap.InFlight != 0 || snap.QueueDepth != 0 {
		t.Errorf("gauges did not settle: in_flight=%d queue=%d", snap.InFlight, snap.QueueDepth)
	}
}

// TestDrainAbortsInFlight is the graceful-shutdown path: a long query is
// in flight, the server drains with a short grace, the query comes back
// as a sound partial, and no goroutines are left behind.
func TestDrainAbortsInFlight(t *testing.T) {
	defer leakcheck.Check(t)()
	s, err := New(Config{Source: countSrc})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type result struct {
		status int
		out    map[string]any
	}
	done := make(chan result, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/query", "application/json",
			strings.NewReader(`{"goal": "n(X)"}`))
		if err != nil {
			done <- result{}
			return
		}
		defer resp.Body.Close()
		var out map[string]any
		json.NewDecoder(resp.Body).Decode(&out)
		done <- result{resp.StatusCode, out}
	}()

	// Wait for the query to be in flight before draining.
	deadline := time.Now().Add(5 * time.Second)
	for s.Registry().Snapshot().InFlight == 0 {
		if time.Now().After(deadline) {
			t.Fatal("query never became in-flight")
		}
		time.Sleep(2 * time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err == nil {
		t.Error("Drain returned nil; the unbounded query should have needed an abort")
	}

	res := <-done
	if res.status != http.StatusOK {
		t.Fatalf("aborted query: status %d (%v)", res.status, res.out)
	}
	if partial, _ := res.out["partial"].(bool); !partial {
		t.Errorf("aborted query not partial: %v", res.out)
	}
	if inc, _ := res.out["incomplete"].(string); inc != "canceled" {
		t.Errorf("incomplete = %q, want \"canceled\"", res.out["incomplete"])
	}
	snap := s.Registry().Snapshot()
	if got := snap.Queries[obs.OutcomePartial]; got != 1 {
		t.Errorf("partial outcomes = %d, want 1", got)
	}
}

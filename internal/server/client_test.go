package server

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"existdlog/internal/obs"
)

// fastRetry keeps client tests quick: tight backoff, a handful of
// attempts.
func fastRetry() *RetryPolicy {
	return &RetryPolicy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 10 * time.Millisecond}
}

func TestClientRetriesUntilSuccess(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) <= 2 {
			w.Header().Set("Retry-After", "0") // malformed-as-hint: ignored, backoff applies
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "try later"})
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{Request: "q1", Count: 3, Answers: [][]string{}})
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	c := &Client{Base: ts.URL, Retry: fastRetry(), Registry: reg}
	res, err := c.Query(context.Background(), "a(X,Y)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || res.Count != 3 {
		t.Fatalf("result = %+v, want status 200 count 3", res)
	}
	if got := hits.Load(); got != 3 {
		t.Errorf("server hits = %d, want 3 (two 503s then success)", got)
	}
	if got := reg.Snapshot().Retries; got != 2 {
		t.Errorf("retries_total = %d, want 2", got)
	}
}

func TestClientNoRetryWithoutPolicy(t *testing.T) {
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "overloaded"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL) // zero-config: one attempt, rejections observable
	res, err := c.Query(context.Background(), "a(X,Y)", 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503 passed through", res.Status)
	}
	if got := hits.Load(); got != 1 {
		t.Errorf("server hits = %d, want exactly 1", got)
	}
}

// TestClientBackoffSchedule pins the backoff math directly: jittered
// below the doubling cap, and a server Retry-After hint overriding the
// schedule (itself capped so a hostile header cannot stall a client
// for minutes).
func TestClientBackoffSchedule(t *testing.T) {
	p := &RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond}
	for n := 1; n <= 6; n++ {
		cap := p.BaseDelay << (n - 1)
		if cap > p.MaxDelay || cap <= 0 {
			cap = p.MaxDelay
		}
		for i := 0; i < 50; i++ {
			if d := p.backoff(n, 0); d <= 0 || d > cap {
				t.Fatalf("backoff(%d) = %v, want in (0, %v]", n, d, cap)
			}
		}
	}
	if d := p.backoff(1, 3*time.Second); d != 320*time.Millisecond {
		t.Errorf("oversized Retry-After backoff = %v, want capped at 4x MaxDelay = 320ms", d)
	}
	if d := p.backoff(1, 60*time.Millisecond); d != 60*time.Millisecond {
		t.Errorf("Retry-After backoff = %v, want the hint honored exactly", d)
	}
}

func TestClientBreakerOpensAndRecovers(t *testing.T) {
	var failing atomic.Bool
	failing.Store(true)
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if failing.Load() {
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "down"})
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{Request: "q", Count: 1, Answers: [][]string{}})
	}))
	defer ts.Close()

	reg := obs.NewRegistry()
	c := &Client{
		Base:     ts.URL,
		Retry:    &RetryPolicy{MaxAttempts: 1}, // isolate the breaker from the retry loop
		Breaker:  &BreakerPolicy{Threshold: 2, Cooldown: 30 * time.Millisecond},
		Registry: reg,
	}

	// Two consecutive failures trip the breaker.
	for i := 0; i < 2; i++ {
		if res, err := c.Query(context.Background(), "a(X,Y)", 0); err != nil || res.Status != http.StatusServiceUnavailable {
			t.Fatalf("failing call %d: res=%+v err=%v", i, res, err)
		}
	}
	// Open: the next call fails fast without touching the server.
	before := hits.Load()
	if _, err := c.Query(context.Background(), "a(X,Y)", 0); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("call with open breaker: err = %v, want ErrCircuitOpen", err)
	}
	if hits.Load() != before {
		t.Error("open breaker still sent a request to the server")
	}
	snap := reg.Snapshot()
	if snap.BreakerTrips != 1 || snap.BreakerState != 2 {
		t.Errorf("trips=%d state=%d, want trips=1 state=2 (open)", snap.BreakerTrips, snap.BreakerState)
	}

	// After the cooldown a half-open trial goes through; the server is
	// healthy again, so the circuit closes.
	failing.Store(false)
	time.Sleep(40 * time.Millisecond)
	res, err := c.Query(context.Background(), "a(X,Y)", 0)
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("post-cooldown call: res=%+v err=%v", res, err)
	}
	if got := reg.Snapshot().BreakerState; got != 0 {
		t.Errorf("breaker state after recovery = %d, want 0 (closed)", got)
	}
}

// TestClientDrainsBodiesForReuse is the HTTP-hygiene satellite: every
// response body — error paths included — must be drained and closed so
// sequential calls reuse one connection instead of dialing fresh ones.
func TestClientDrainsBodiesForReuse(t *testing.T) {
	conns := make(map[string]bool)
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		conns[r.RemoteAddr] = true
		mu.Unlock()
		// A non-200 with a body: the old client left these unread under
		// some paths, poisoning the connection for reuse.
		writeJSON(w, http.StatusBadRequest, errorResponse{Error: "bad goal"})
	}))
	defer ts.Close()

	c := NewClient(ts.URL)
	for i := 0; i < 8; i++ {
		if _, err := c.Query(context.Background(), "nope(", 0); err != nil {
			t.Fatal(err)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(conns) != 1 {
		t.Errorf("sequential error responses used %d connections, want 1 (bodies drained, conn reused)", len(conns))
	}
}

// discardWriter swallows a handler's response: the mutation middleware
// below uses it to let a write APPLY while its acknowledgment is lost.
type discardWriter struct{ h http.Header }

func (d discardWriter) Header() http.Header         { return d.h }
func (d discardWriter) Write(p []byte) (int, error) { return len(p), nil }
func (d discardWriter) WriteHeader(int)             {}

// TestClientIdempotentRetryAppliesOnce is the ack-lost write drill: the
// first /update fully applies server-side, but the connection dies
// before the client sees the ack. The retry carries the same
// Idempotency-Key, so the store's dedup window acknowledges the
// original application instead of applying again — observable as the
// retried call acking seq 1 with exactly one version installed.
func TestClientIdempotentRetryAppliesOnce(t *testing.T) {
	dir := t.TempDir()
	s, err := New(Config{Source: chainSrc, WALDir: filepath.Join(dir)})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	var dropped atomic.Bool
	inner := s.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/update" && dropped.CompareAndSwap(false, true) {
			inner.ServeHTTP(discardWriter{h: http.Header{}}, r) // the write lands...
			panic(http.ErrAbortHandler)                         // ...the ack does not
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := NewResilientClient(ts.URL, nil)
	c.Retry = fastRetry()
	res, err := c.Mutate(context.Background(), "update", []string{"p(9,10)"}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Status != http.StatusOK || res.Seq != 1 {
		t.Fatalf("retried mutation = %+v, want status 200 seq 1 (the original application's ack)", res)
	}
	if got := s.Store().Current().Seq; got != 1 {
		t.Errorf("store seq = %d, want 1 — the retry was applied a second time", got)
	}
	if got := len(s.Store().Current().EDB.Facts("p")); got != 4 {
		t.Errorf("p has %d facts, want 4 (3 base + 1 mutation)", got)
	}

	// A genuinely new mutation still advances the store.
	res, err = c.Mutate(context.Background(), "update", []string{"p(10,11)"}, 2*time.Second)
	if err != nil || res.Seq != 2 {
		t.Fatalf("follow-up mutation = %+v err=%v, want seq 2", res, err)
	}
}

// TestClientMutationIdempotencyKeyStableAcrossRetries checks the key
// itself: one Mutate call sends the same Idempotency-Key on every
// attempt, and distinct calls send distinct keys.
func TestClientMutationIdempotencyKeyStableAcrossRetries(t *testing.T) {
	var mu sync.Mutex
	var keys []string
	var hits int
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		keys = append(keys, r.Header.Get("Idempotency-Key"))
		hits++
		n := hits
		mu.Unlock()
		if n == 1 {
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "try again"})
			return
		}
		writeJSON(w, http.StatusOK, mutationResponse{Request: "m", Seq: uint64(n)})
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, Retry: fastRetry()}
	if _, err := c.Mutate(context.Background(), "update", []string{"p(1,9)"}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Mutate(context.Background(), "update", []string{"p(2,9)"}, 0); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(keys) != 3 {
		t.Fatalf("attempts = %d, want 3 (retry then fresh call)", len(keys))
	}
	if keys[0] == "" || keys[0] != keys[1] {
		t.Errorf("retry keys %q vs %q, want identical and non-empty", keys[0], keys[1])
	}
	if keys[2] == keys[0] {
		t.Errorf("second call reused the first call's idempotency key %q", keys[2])
	}
}

// TestClientHonorsRetryAfterHeader: a 503 carrying Retry-After: 1
// delays the retry by at least that long (the one deliberately slow
// client test).
func TestClientHonorsRetryAfterHeader(t *testing.T) {
	if testing.Short() {
		t.Skip("1s retry-after wait")
	}
	var hits atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			writeJSON(w, http.StatusServiceUnavailable, errorResponse{Error: "busy"})
			return
		}
		writeJSON(w, http.StatusOK, queryResponse{Request: "q", Answers: [][]string{}})
	}))
	defer ts.Close()

	// MaxDelay 300ms would back off far less than 1s on its own; the
	// hint must override it (it fits under the 4x MaxDelay cap).
	c := &Client{Base: ts.URL, Retry: &RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond, MaxDelay: 300 * time.Millisecond}}
	start := time.Now()
	res, err := c.Query(context.Background(), "a(X,Y)", 0)
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("res=%+v err=%v", res, err)
	}
	if waited := time.Since(start); waited < time.Second {
		t.Errorf("retry waited %v, want >= 1s (the server's Retry-After)", waited)
	}
}

package server

import (
	"context"
	"errors"
	"net/http"
	"sync"
	"testing"
	"time"

	"existdlog/internal/obs"
)

// queuedWaiters counts live queue entries across all classes (test-only
// peek under the controller's lock).
func queuedWaiters(a *admission) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	n := 0
	for _, q := range a.queues {
		for _, w := range q {
			if w.state == waiting {
				n++
			}
		}
	}
	return n
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOverloadAdmitImmediateWhenFree(t *testing.T) {
	adm := newAdmission(2, 4, time.Minute, obs.NewRegistry())
	for i := 0; i < 2; i++ {
		if err := adm.admit(context.Background(), admitQuery); err != nil {
			t.Fatalf("admit %d with free slots: %v", i, err)
		}
	}
	adm.release()
	adm.release()
	if err := adm.admit(context.Background(), admitMutation); err != nil {
		t.Fatalf("admit after release: %v", err)
	}
	adm.release()
}

func TestOverloadQueueFullRejectsImmediately(t *testing.T) {
	adm := newAdmission(1, 1, time.Minute, obs.NewRegistry())
	if err := adm.admit(context.Background(), admitQuery); err != nil {
		t.Fatal(err)
	}
	// One waiter fills the class queue.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := adm.admit(context.Background(), admitQuery); err != nil {
			t.Errorf("queued waiter: %v", err)
			return
		}
		adm.release()
	}()
	waitFor(t, "waiter to queue", func() bool { return queuedWaiters(adm) == 1 })

	// The queue is at capacity: the next arrival is rejected without
	// blocking.
	start := time.Now()
	if err := adm.admit(context.Background(), admitQuery); !errors.Is(err, errQueueFull) {
		t.Fatalf("admit on full queue = %v, want errQueueFull", err)
	}
	if waited := time.Since(start); waited > time.Second {
		t.Errorf("full-queue rejection took %v, want immediate", waited)
	}
	adm.release()
	wg.Wait()
}

func TestOverloadQueueTimeout(t *testing.T) {
	adm := newAdmission(1, 4, 30*time.Millisecond, obs.NewRegistry())
	if err := adm.admit(context.Background(), admitQuery); err != nil {
		t.Fatal(err)
	}
	defer adm.release()
	if err := adm.admit(context.Background(), admitQuery); !errors.Is(err, errQueueTimeout) {
		t.Fatalf("admit past queue timeout = %v, want errQueueTimeout", err)
	}
}

// TestOverloadShedExpiredWaiter is the shed-at-dequeue contract at the
// controller level: a queued request whose own deadline dies while it
// waits comes back errShed, is counted in shed_total, and the pool
// stays healthy afterwards.
func TestOverloadShedExpiredWaiter(t *testing.T) {
	reg := obs.NewRegistry()
	adm := newAdmission(1, 4, time.Minute, reg)
	if err := adm.admit(context.Background(), admitQuery); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := adm.admit(ctx, admitQuery); !errors.Is(err, errShed) {
		t.Fatalf("admit with expiring deadline = %v, want errShed", err)
	}
	if got := reg.Snapshot().Shed; got != 1 {
		t.Errorf("shed_total = %d, want 1", got)
	}
	adm.release()
	// The shed waiter left no residue: a fresh request admits instantly.
	if err := adm.admit(context.Background(), admitQuery); err != nil {
		t.Fatalf("admit after shed: %v", err)
	}
	adm.release()
}

// TestOverloadPriorityOrder pins the grant order: when a slot frees,
// a queued query beats a queued mutation even though the mutation
// arrived first.
func TestOverloadPriorityOrder(t *testing.T) {
	adm := newAdmission(1, 4, time.Minute, obs.NewRegistry())
	if err := adm.admit(context.Background(), admitQuery); err != nil {
		t.Fatal(err)
	}

	order := make(chan admitClass, 2)
	var wg sync.WaitGroup
	launch := func(c admitClass) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := adm.admit(context.Background(), c); err != nil {
				t.Errorf("admit(%v): %v", c, err)
				return
			}
			order <- c
			adm.release()
		}()
	}
	launch(admitMutation)
	waitFor(t, "mutation to queue", func() bool { return queuedWaiters(adm) == 1 })
	launch(admitQuery)
	waitFor(t, "query to queue", func() bool { return queuedWaiters(adm) == 2 })

	adm.release()
	first, second := <-order, <-order
	wg.Wait()
	if first != admitQuery || second != admitMutation {
		t.Errorf("grant order = %v then %v, want query then mutation", first, second)
	}
}

// TestOverloadHealthBypassesSlots: health-class admissions never touch
// the pool, so probes stay responsive while every slot is held.
func TestOverloadHealthBypassesSlots(t *testing.T) {
	adm := newAdmission(1, 1, time.Minute, obs.NewRegistry())
	if err := adm.admit(context.Background(), admitQuery); err != nil {
		t.Fatal(err)
	}
	defer adm.release()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := adm.admit(ctx, admitHealth); err != nil {
		t.Fatalf("health admit with all slots held: %v", err)
	}
}

// TestOverloadHTTPRejects429WithRetryAfter drives the whole HTTP path
// into overload: one slot, a queue of one. The slot is pinned by a
// long-deadline query over a program that counts forever; the next
// request occupies the queue and 503s at the queue timeout; a third is
// refused on the spot with 429 — both rejections carrying Retry-After.
// After the load drains, the server serves again (the e2e smoke
// mirrors this recovery check from outside the process).
func TestOverloadHTTPRejects429WithRetryAfter(t *testing.T) {
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Source:        countSrc,
		MaxConcurrent: 1,
		MaxQueue:      1,
		QueueTimeout:  150 * time.Millisecond,
		MaxTimeout:    5 * time.Second,
		Registry:      reg,
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // pins the only slot for ~1.2s, returns a sound partial
		defer wg.Done()
		resp, _ := postQuery(t, ts.URL, `{"timeout_ms": 1200}`)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("blocker status = %d, want 200 (partial)", resp.StatusCode)
		}
	}()
	waitFor(t, "blocker to hold the slot", func() bool { return reg.Snapshot().InFlight == 1 })

	wg.Add(1)
	go func() { // fills the queue, then times out of it
		defer wg.Done()
		resp, _ := postQuery(t, ts.URL, `{"timeout_ms": 1200}`)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("queued request status = %d, want 503 (queue timeout)", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("503 queue-timeout rejection has no Retry-After header")
		}
	}()
	waitFor(t, "request to queue", func() bool { return reg.Snapshot().QueueDepth == 1 })

	// Queue full: immediate 429.
	resp, _ := postQuery(t, ts.URL, `{"timeout_ms": 1200}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-capacity status = %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Errorf("Retry-After = %q, want \"1\" (queue timeout rounded up)", ra)
	}
	wg.Wait()

	snap := s.Registry().Snapshot()
	if got := snap.Rejected["queue_full/query"]; got != 1 {
		t.Errorf("rejected_total{queue_full,query} = %d, want 1", got)
	}
	if got := snap.Rejected["queue_timeout/query"]; got != 1 {
		t.Errorf("rejected_total{queue_timeout,query} = %d, want 1", got)
	}

	// Recovery: with the overload gone, the same endpoint serves again.
	resp, _ = postQuery(t, ts.URL, `{"timeout_ms": 50}`)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-overload status = %d, want 200", resp.StatusCode)
	}
}

// TestOverloadShedExpiredRequestNeverEvaluates is the satellite
// regression: a saturated server plus a short client timeout_ms. The
// victim's deadline dies while it queues, so it must be shed — a 503,
// counted in shed_total, and crucially *no* query outcome recorded,
// because it never reached the engine. (Evaluating it would have
// produced a 200 partial: observing 503 proves it was never started.)
func TestOverloadShedExpiredRequestNeverEvaluates(t *testing.T) {
	reg := obs.NewRegistry()
	_, ts := newTestServer(t, Config{
		Source:        countSrc,
		MaxConcurrent: 1,
		MaxQueue:      8,
		QueueTimeout:  5 * time.Second,
		MaxTimeout:    5 * time.Second,
		Registry:      reg,
	})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // saturates the single slot for ~600ms
		defer wg.Done()
		postQuery(t, ts.URL, `{"timeout_ms": 600}`)
	}()
	waitFor(t, "blocker to hold the slot", func() bool { return reg.Snapshot().InFlight == 1 })

	resp, _ := postQuery(t, ts.URL, `{"timeout_ms": 50}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired-in-queue status = %d, want 503", resp.StatusCode)
	}
	wg.Wait()

	snap := reg.Snapshot()
	if snap.Shed == 0 {
		t.Error("shed_total = 0, want > 0")
	}
	// Exactly one query outcome: the blocker's partial. The shed victim
	// contributes nothing — it never evaluated.
	if got := snap.Queries[obs.OutcomePartial]; got != 1 {
		t.Errorf("queries_total{partial} = %d, want 1 (the blocker alone)", got)
	}
	if got := snap.Queries[obs.OutcomeOK] + snap.Queries[obs.OutcomeError]; got != 0 {
		t.Errorf("unexpected ok/error outcomes = %d, want 0", got)
	}
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"existdlog/internal/tracespan"
)

// postTraced posts a query with an explicit W3C traceparent header and
// returns the decoded body plus the client-side ids it sent.
func postTraced(t *testing.T, url, body string) (map[string]any, tracespan.TraceID, tracespan.SpanID) {
	t.Helper()
	tid, sid := tracespan.NewTraceID(), tracespan.NewSpanID()
	req, err := http.NewRequest(http.MethodPost, url+"/query", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", tracespan.Traceparent(tid, sid))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out := decodeBody(t, resp)
	return out, tid, sid
}

func decodeBody(t *testing.T, resp *http.Response) map[string]any {
	t.Helper()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return out
}

// spanNames collects the names of the top-level stage spans, in order.
func spanNames(req *tracespan.Request) []string {
	var names []string
	for _, sp := range req.Spans {
		if sp.Parent == tracespan.RootSpan {
			names = append(names, sp.Name)
		}
	}
	return names
}

func TestQueryTraceSpans(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc, FlightSize: 64})
	out, tid, sid := postTraced(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if got := out["trace"]; got != tid.String() {
		t.Fatalf("response trace = %v, want the propagated id %s", got, tid)
	}

	req := s.FlightRecorder().Find(tid.String())
	if req == nil {
		t.Fatal("flight recorder has no entry for the propagated trace id")
	}
	if err := req.Validate(); err != nil {
		t.Fatalf("recorded trace fails validation: %v", err)
	}
	if req.Verb != "query" || req.Detail != "a(X,Y)" || req.Status != 200 || req.Outcome != "ok" {
		t.Errorf("trace header = %s/%s/%d/%s, want query/a(X,Y)/200/ok",
			req.Verb, req.Detail, req.Status, req.Outcome)
	}
	if req.ParentSpan != sid.String() {
		t.Errorf("parent span = %s, want the client attempt id %s", req.ParentSpan, sid)
	}

	want := []string{"decode", "compile", "queue", "eval", "respond"}
	got := spanNames(req)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("stage spans = %v, want %v", got, want)
	}

	// The eval span carries per-pass children grafted from the engine.
	evalIdx := -1
	for i, sp := range req.Spans {
		if sp.Name == "eval" {
			evalIdx = i
		}
	}
	passes := 0
	for _, sp := range req.Spans {
		if sp.Parent == evalIdx && strings.HasPrefix(sp.Name, "pass ") {
			passes++
		}
	}
	// Transitive closure of a 4-chain runs 4 semi-naive passes (the last
	// one empty).
	if passes < 2 {
		t.Errorf("eval span has %d pass children, want >= 2", passes)
	}

	// The stage spans must account for (nearly) all of the request: this
	// is the invariant the BENCH exemplar check leans on.
	if cov := req.StageCoverage(); cov < 0.5 || cov > 1.1 {
		t.Errorf("stage coverage = %.2f, want ~1 (stages %v of %v)", cov, req.StageSum(), req.Duration)
	}

	// The compile span names the cache outcome; a repeat query hits.
	out2, tid2, _ := postTraced(t, ts.URL, `{"goal": "a(U,V)"}`)
	if !out2["cached"].(bool) {
		t.Fatal("second query missed the cache")
	}
	req2 := s.FlightRecorder().Find(tid2.String())
	found := false
	for _, sp := range req2.Spans {
		for _, a := range sp.Attrs {
			if sp.Name == "compile" && a.Key == "cache" && a.Value == "hit" {
				found = true
			}
		}
	}
	if !found {
		t.Error("cache-hit query's compile span has no cache=hit attr")
	}
}

func TestMutationTraceSpans(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc, WALDir: t.TempDir(), FlightSize: 64})
	resp, err := http.Post(ts.URL+"/update", "application/json",
		strings.NewReader(`{"facts": ["p(4,5)", "p(5,6)"]}`))
	if err != nil {
		t.Fatal(err)
	}
	out := decodeBody(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("update status = %d, body %v", resp.StatusCode, out)
	}
	traceID, _ := out["trace"].(string)
	if traceID == "" {
		t.Fatal("mutation response carries no trace id")
	}

	req := s.FlightRecorder().Find(traceID)
	if req == nil {
		t.Fatal("flight recorder has no entry for the mutation")
	}
	if err := req.Validate(); err != nil {
		t.Fatalf("recorded trace fails validation: %v", err)
	}
	if req.Verb != "update" || req.Detail != "2 facts" {
		t.Errorf("verb/detail = %s/%s, want update/2 facts", req.Verb, req.Detail)
	}
	if got, want := strings.Join(spanNames(req), ","), "decode,queue,store"; got != want {
		t.Errorf("stage spans = %s, want %s", got, want)
	}

	// The store span breaks down into the applier pipeline, WAL stages
	// included (the server has a WAL configured).
	storeIdx := -1
	for i, sp := range req.Spans {
		if sp.Name == "store" {
			storeIdx = i
		}
	}
	children := map[string]bool{}
	for _, sp := range req.Spans {
		if sp.Parent == storeIdx {
			children[sp.Name] = true
		}
	}
	for _, want := range []string{"applier_queue", "maintain", "wal_append", "wal_fsync", "install", "ack"} {
		if !children[want] {
			t.Errorf("store span is missing the %q sub-stage (have %v)", want, children)
		}
	}
}

func TestTraceWithoutHeader(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc, FlightSize: 16})
	resp, out := postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	traceID, _ := out["trace"].(string)
	if _, ok := tracespan.ParseTraceID(traceID); !ok {
		t.Fatalf("server-originated trace id %q is not 32 hex digits", traceID)
	}
	if req := s.FlightRecorder().Find(traceID); req == nil || req.ParentSpan != "" {
		t.Errorf("server-originated trace: entry %+v, want recorded with no parent span", req)
	}
}

func TestRecorderDisabled(t *testing.T) {
	_, ts := newTestServer(t, Config{Source: chainSrc})
	resp, out := postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if _, ok := out["trace"]; ok {
		t.Error("tracing disabled, but the response still carries a trace field")
	}
	dresp, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/requests with recorder disabled = %d, want 404", dresp.StatusCode)
	}
}

func TestRejectCarriesTrace(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc, FlightSize: 16})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	resp, out := postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining query status = %d, want 503", resp.StatusCode)
	}
	traceID, _ := out["trace"].(string)
	if traceID == "" || out["request"] == "" {
		t.Fatalf("rejection body %v lacks request/trace correlation ids", out)
	}
	req := s.FlightRecorder().Find(traceID)
	if req == nil || req.Outcome != "rejected:draining" {
		t.Errorf("rejection trace = %+v, want outcome rejected:draining", req)
	}
}

func TestHealthzIdentity(t *testing.T) {
	s, ts := newTestServer(t, Config{Source: chainSrc})
	s.Registry().SetBuildInfo("v9.9", "go1.99", "abc123def456")
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body bytes.Buffer
	body.ReadFrom(resp.Body)
	lines := strings.Split(strings.TrimSpace(body.String()), "\n")
	// The liveness contract is unchanged: 200 and "ok" on the first line.
	if resp.StatusCode != http.StatusOK || lines[0] != "ok" {
		t.Fatalf("healthz = %d %q, want 200 with first line \"ok\"", resp.StatusCode, lines[0])
	}
	for _, want := range []string{"version: v9.9", "go: go1.99", "commit: abc123def456", "uptime: "} {
		found := false
		for _, l := range lines {
			if strings.HasPrefix(l, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("healthz body is missing %q:\n%s", want, body.String())
		}
	}
}

// syncBuffer guards the log buffer: the handler goroutine writes it
// while the test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func TestSlowQueryLog(t *testing.T) {
	var logs syncBuffer
	_, ts := newTestServer(t, Config{
		Source:     chainSrc,
		FlightSize: 16,
		SlowQuery:  time.Nanosecond, // every request is "slow"
		Logger:     slog.New(slog.NewJSONHandler(&logs, nil)),
	})
	_, out := postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	traceID, _ := out["trace"].(string)
	waitFor(t, "slow-query log line", func() bool {
		return strings.Contains(logs.String(), "slow query")
	})
	line := logs.String()
	for _, want := range []string{"slow query", traceID, `"verb":"query"`, `"detail":"a(X,Y)"`, `"spans":[`, `"name":"eval"`, "staged"} {
		if !strings.Contains(line, want) {
			t.Errorf("slow-query log is missing %q:\n%s", want, line)
		}
	}
}

func TestSlowQueryLogQuietUnderThreshold(t *testing.T) {
	var logs syncBuffer
	_, ts := newTestServer(t, Config{
		Source:     chainSrc,
		FlightSize: 16,
		SlowQuery:  time.Hour,
		Logger:     slog.New(slog.NewJSONHandler(&logs, nil)),
	})
	postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if strings.Contains(logs.String(), "slow query") {
		t.Error("fast query emitted a slow-query log line")
	}
}

// TestClientRetryReusesTraceID is the retry-tracing contract: one trace
// id per call, held constant across attempts, with a fresh span id per
// attempt — so the server can correlate retries without ever recording
// a duplicate (trace, span) pair.
func TestClientRetryReusesTraceID(t *testing.T) {
	var mu sync.Mutex
	var parents []string
	attempts := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		parents = append(parents, r.Header.Get("traceparent"))
		attempts++
		n := attempts
		mu.Unlock()
		if n < 3 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"request":"q1","count":6,"cached":false,"stats":{},"elapsed_seconds":0}`))
	}))
	defer ts.Close()

	rec := tracespan.NewRecorder(16)
	c := &Client{Base: ts.URL, Retry: fastRetry(), Recorder: rec}
	res, err := c.Query(context.Background(), "a(X,Y)", 0)
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("query: %v, status %d", err, res.Status)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(parents) != 3 {
		t.Fatalf("server saw %d attempts, want 3", len(parents))
	}
	spanIDs := map[string]bool{}
	for i, h := range parents {
		tid, sid, ok := tracespan.ParseTraceparent(h)
		if !ok {
			t.Fatalf("attempt %d sent unparseable traceparent %q", i+1, h)
		}
		if tid.String() != res.TraceID {
			t.Errorf("attempt %d trace id %s, want the call's %s", i+1, tid, res.TraceID)
		}
		if spanIDs[sid.String()] {
			t.Errorf("attempt %d reused span id %s", i+1, sid)
		}
		spanIDs[sid.String()] = true
	}

	// The client-side recorder shows the same call: one trace, one span
	// per attempt plus backoffs.
	creq := rec.Find(res.TraceID)
	if creq == nil {
		t.Fatal("client recorder has no entry for the call")
	}
	if creq.Verb != "client.query" || creq.Outcome != "ok" {
		t.Errorf("client trace = %s/%s, want client.query/ok", creq.Verb, creq.Outcome)
	}
	var names []string
	for _, sp := range creq.Spans {
		names = append(names, sp.Name)
	}
	want := "attempt 1,backoff,attempt 2,backoff,attempt 3"
	if strings.Join(names, ",") != want {
		t.Errorf("client spans = %v, want %s", names, want)
	}
	if err := creq.Validate(); err != nil {
		t.Errorf("client trace fails validation: %v", err)
	}
}

// TestRetriedMutationDistinctAttempts drives a retried mutation against
// a real server whose first response is discarded (ack lost): the
// recorder must show one entry per server-side attempt, same trace id,
// never a duplicated (trace, span) pair.
func TestRetriedMutationDistinctAttempts(t *testing.T) {
	s, err := New(Config{Source: chainSrc, FlightSize: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	inner := s.Handler()
	var n int32
	var mu sync.Mutex
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		mu.Lock()
		n++
		first := n == 1
		mu.Unlock()
		if first {
			// The handler runs (the write is applied) but the ack is lost.
			inner.ServeHTTP(discardWriter{h: http.Header{}}, r)
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	c := &Client{Base: ts.URL, Retry: fastRetry()}
	res, err := c.Mutate(context.Background(), "update", []string{"p(7,8)"}, time.Second)
	if err != nil || res.Status != http.StatusOK {
		t.Fatalf("mutate: %v, status %d", err, res.Status)
	}

	entries := 0
	seen := map[[2]string]bool{}
	for _, req := range s.FlightRecorder().Snapshot(0) {
		key := [2]string{req.TraceID, req.SpanID}
		if seen[key] {
			t.Errorf("duplicate (trace, span) pair %v in the recorder", key)
		}
		seen[key] = true
		if req.TraceID == res.TraceID {
			entries++
		}
	}
	if entries != 2 {
		t.Errorf("recorder has %d entries for the retried call's trace, want 2 (one per attempt)", entries)
	}
}

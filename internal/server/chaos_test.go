//go:build failpoint

// Chaos and degraded-mode suite (CI: go test -race -tags failpoint
// -run 'Chaos|Overload|Degraded' ./internal/...). The failpoint sites
// driven here: "wal/sync" and "wal/append" (disk faults mid-group-
// commit), "server/slow" (handler latency), plus an HTTP middleware
// that kills connections before and after the handler runs (request
// lost vs. ack lost).
package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"existdlog"
	"existdlog/internal/failpoint"
	"existdlog/internal/leakcheck"
	"existdlog/internal/obs"
	"existdlog/internal/wal"
)

var errDisk = errors.New("injected disk failure (EIO)")

// waitRecovered polls until the store has left degraded mode.
func waitRecovered(t *testing.T, st *Store) {
	t.Helper()
	waitFor(t, "store to leave degraded mode", func() bool {
		deg, _ := st.Degraded()
		return !deg
	})
}

// TestDegradedModeEntersAndRecovers: a WAL sync failure flips the
// store read-only — the failed write is not applied and not acked as
// success, reads keep serving the last installed version, further
// writes fail fast — and a later successful probe write re-enables
// mutations without a restart.
func TestDegradedModeEntersAndRecovers(t *testing.T) {
	defer failpoint.Reset()
	reg := obs.NewRegistry()
	st := newTestStore(t, chainSrc, StoreConfig{
		WALDir:     t.TempDir(),
		Registry:   reg,
		ProbeEvery: 10 * time.Millisecond,
	})

	// Fires on the group commit and the first two probes, then heals.
	failpoint.Enable("wal/sync", failpoint.Config{Act: failpoint.ActError, Err: errDisk, Count: 3})

	_, err := st.Mutate(context.Background(), Mutation{Op: wal.OpUpdate, Facts: []wal.Fact{fact("p", "4", "5")}})
	if !errors.Is(err, ErrDegraded) {
		t.Fatalf("mutation over failing WAL: err = %v, want ErrDegraded", err)
	}
	if deg, cause := st.Degraded(); !deg || !strings.Contains(cause, "injected disk failure") {
		t.Fatalf("Degraded() = %v, %q; want degraded with the injected cause", deg, cause)
	}
	if got := st.Current().Seq; got != 0 {
		t.Fatalf("store seq = %d after failed commit, want 0 (no version installed)", got)
	}
	if got := reg.Snapshot().Degraded; got != 1 {
		t.Errorf("degraded gauge = %d, want 1", got)
	}
	// Fail fast while degraded: rejected before reaching the applier.
	if _, err := st.Mutate(context.Background(), Mutation{Op: wal.OpUpdate, Facts: []wal.Fact{fact("p", "5", "6")}}); !errors.Is(err, ErrDegraded) {
		t.Fatalf("mutation while degraded: err = %v, want fast ErrDegraded", err)
	}
	// Reads never stopped: the pinned version is intact.
	if got := len(st.Current().EDB.Facts("p")); got != 3 {
		t.Errorf("base facts = %d while degraded, want 3", got)
	}

	waitRecovered(t, st)
	if got := reg.Snapshot().Degraded; got != 0 {
		t.Errorf("degraded gauge after recovery = %d, want 0", got)
	}
	if seq := mustMutate(t, st, wal.OpUpdate, fact("p", "4", "5")); seq != 1 {
		t.Errorf("post-recovery mutation seq = %d, want 1", seq)
	}
}

// TestDegradedWALSyncAtomicity is the failure-atomicity satellite: an
// injected Sync error mid-group-commit must leave no version
// installed and no success ack — and after the store recovers, closes,
// and reopens, the failed write must not resurface from the log
// (the rollback physically removed its frames).
func TestDegradedWALSyncAtomicity(t *testing.T) {
	defer failpoint.Reset()
	dir := t.TempDir()
	st := newTestStore(t, chainSrc, StoreConfig{WALDir: dir, ProbeEvery: 10 * time.Millisecond})

	if seq := mustMutate(t, st, wal.OpUpdate, fact("p", "4", "5")); seq != 1 {
		t.Fatalf("setup mutation seq = %d, want 1", seq)
	}

	failpoint.Enable("wal/sync", failpoint.Config{Act: failpoint.ActError, Err: errDisk, Count: 1})
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = st.Mutate(context.Background(),
				Mutation{Op: wal.OpUpdate, Facts: []wal.Fact{fact("p", "6", fmt.Sprint(7+i))}})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("mutation %d over failing WAL was acked as success", i)
		}
	}
	if got := st.Current().Seq; got != 1 {
		t.Fatalf("store seq = %d after failed group commit, want 1 (nothing installed)", got)
	}

	waitRecovered(t, st)
	st.Close()

	// Reopen from disk: the durable state is exactly the acked prefix.
	prog, db, err := existdlog.Parse(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := NewStore(prog, db, StoreConfig{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if got := st2.Current().Seq; got != 1 {
		t.Errorf("reopened seq = %d, want 1", got)
	}
	for _, row := range st2.Current().EDB.Facts("p") {
		if row[0] == "6" {
			t.Errorf("failed write p(6,%s) resurfaced from the log after reopen", row[1])
		}
	}
	if got := len(st2.Current().EDB.Facts("p")); got != 4 {
		t.Errorf("reopened p facts = %d, want 4 (3 base + the acked write)", got)
	}
}

// TestDegradedHTTPServesReadsRejectsWrites drives degraded mode over
// the wire: /query answers from the last installed version, /update
// gets 503 + Retry-After with the degraded reason counted, /readyz
// names the cause — and everything recovers once the disk heals.
func TestDegradedHTTPServesReadsRejectsWrites(t *testing.T) {
	defer failpoint.Reset()
	reg := obs.NewRegistry()
	s, ts := newTestServer(t, Config{
		Source:     chainSrc,
		WALDir:     t.TempDir(),
		ProbeEvery: 10 * time.Millisecond,
		Registry:   reg,
		FlightSize: 64,
	})

	failpoint.Enable("wal/sync", failpoint.Config{Act: failpoint.ActError, Err: errDisk})

	// The write that trips degraded mode: 503, Retry-After, counted, and
	// the body names the request and trace ids for correlation.
	resp, err := http.Post(ts.URL+"/update", "application/json",
		strings.NewReader(`{"facts": ["p(4,5)"]}`))
	if err != nil {
		t.Fatal(err)
	}
	trip := decodeBody(t, resp)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("mutation over failing WAL: status = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded 503 has no Retry-After header")
	}
	tripReq, _ := trip["request"].(string)
	tripTrace, _ := trip["trace"].(string)
	if tripReq == "" || tripTrace == "" {
		t.Fatalf("degraded 503 body %v lacks request/trace correlation ids", trip)
	}

	// Later writes fail fast; their error text attributes the outage to
	// the triggering request, pointing at its flight-recorder entry.
	resp2b, err := http.Post(ts.URL+"/update", "application/json",
		strings.NewReader(`{"facts": ["p(5,6)"]}`))
	if err != nil {
		t.Fatal(err)
	}
	fast := decodeBody(t, resp2b)
	resp2b.Body.Close()
	wantAttr := fmt.Sprintf("triggered by request %s trace %s", tripReq, tripTrace)
	if msg, _ := fast["error"].(string); !strings.Contains(msg, wantAttr) {
		t.Errorf("fail-fast 503 error %q does not name the triggering request (%s)", msg, wantAttr)
	}
	if s.FlightRecorder().Find(tripTrace) == nil {
		t.Error("the triggering request has no flight-recorder entry to point at")
	}

	// Reads serve the last installed version throughout.
	qresp, out := postQuery(t, ts.URL, `{"goal": "a(X,Y)"}`)
	if qresp.StatusCode != http.StatusOK || out["count"].(float64) != 6 {
		t.Fatalf("query while degraded: status %d count %v, want 200/6", qresp.StatusCode, out["count"])
	}

	// Readiness carries the reason.
	rresp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body := make([]byte, 256)
	n, _ := rresp.Body.Read(body)
	rresp.Body.Close()
	if rresp.StatusCode != http.StatusServiceUnavailable || !strings.HasPrefix(string(body[:n]), "degraded:") {
		t.Fatalf("readyz while degraded = %d %q, want 503 \"degraded: ...\"", rresp.StatusCode, string(body[:n]))
	}
	if !strings.Contains(string(body[:n]), wantAttr) {
		t.Errorf("readyz cause %q does not name the triggering request (%s)", string(body[:n]), wantAttr)
	}
	if got := reg.Snapshot().Rejected["degraded/mutation"]; got < 1 {
		t.Errorf("rejected_total{degraded,mutation} = %d, want >= 1", got)
	}

	// Heal the disk: the probe recovers the store, writes flow again.
	failpoint.Disable("wal/sync")
	waitRecovered(t, s.Store())
	resp2, err := http.Post(ts.URL+"/update", "application/json",
		strings.NewReader(`{"facts": ["p(4,5)"]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Errorf("post-recovery mutation status = %d, want 200", resp2.StatusCode)
	}
	rresp2, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	rresp2.Body.Close()
	if rresp2.StatusCode != http.StatusOK {
		t.Errorf("post-recovery readyz = %d, want 200", rresp2.StatusCode)
	}
}

// TestChaosSoak drives concurrent read/write traffic through every
// fault at once — probabilistic WAL sync errors, injected handler
// latency, connections killed before the handler (request lost) and
// after it (ack lost) — with retrying idempotent clients, then
// asserts the three chaos invariants: no goroutine leaks, every acked
// write survives a restart, and every completed query is sound.
func TestChaosSoak(t *testing.T) {
	defer failpoint.Reset()
	check := leakcheck.Check(t)

	dir := t.TempDir()
	reg := obs.NewRegistry()
	srv, err := New(Config{
		Source:         chainSrc,
		WALDir:         dir,
		MaxConcurrent:  2,
		MaxQueue:       8,
		QueueTimeout:   200 * time.Millisecond,
		DefaultTimeout: 2 * time.Second,
		ProbeEvery:     5 * time.Millisecond,
		Registry:       reg,
		FlightSize:     4096,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Connection chaos: every 13th request dies before the handler
	// (the write never happens), every 7th dies after it (the write
	// happens, the ack is lost) — the idempotent retry must converge
	// to exactly-once either way.
	var reqN atomic.Int64
	inner := srv.Handler()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch n := reqN.Add(1); {
		case n%13 == 0:
			panic(http.ErrAbortHandler)
		case n%7 == 0:
			inner.ServeHTTP(discardWriter{h: http.Header{}}, r)
			panic(http.ErrAbortHandler)
		default:
			inner.ServeHTTP(w, r)
		}
	}))

	// Disk and latency chaos, both on deterministic schedules.
	failpoint.Enable("wal/sync", failpoint.Config{Act: failpoint.ActError, Err: errDisk, Prob: 0.3, Seed: 7})
	failpoint.Enable("server/slow", failpoint.Config{Act: failpoint.ActDelay, Delay: 5 * time.Millisecond, Prob: 0.3, Seed: 11})

	var ackedMu sync.Mutex
	acked := map[string]bool{} // fact source text -> acked by the server
	var wg sync.WaitGroup
	const workers, iters = 4, 30
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := &Client{
				Base:  ts.URL,
				Retry: &RetryPolicy{MaxAttempts: 5, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
			}
			for i := 0; i < iters; i++ {
				if i%3 == 0 {
					f := fmt.Sprintf("p(w%d_%d,99)", w, i)
					res, err := c.Mutate(context.Background(), "update", []string{f}, time.Second)
					if err == nil && res.Status == http.StatusOK {
						ackedMu.Lock()
						acked[f] = true
						ackedMu.Unlock()
					}
					continue
				}
				res, err := c.Query(context.Background(), "a(X,Y)", 500*time.Millisecond)
				if err != nil {
					continue // transport chaos: the connection was killed
				}
				switch {
				case res.Status == http.StatusOK && !res.Partial:
					// Soundness: a completed closure query always holds at
					// least the 6 base-chain answers; mutations only add.
					if res.Count < 6 {
						t.Errorf("complete query returned %d answers, want >= 6", res.Count)
					}
				case res.Status == http.StatusOK,
					res.Status == http.StatusTooManyRequests,
					res.Status == http.StatusServiceUnavailable:
					// partials and rejections are the overload design working
				default:
					t.Errorf("unexpected query status %d (%s)", res.Status, res.Err)
				}
			}
		}(w)
	}
	wg.Wait()

	// Chaos off; let the store heal, then shut down cleanly.
	failpoint.Reset()
	waitRecovered(t, srv.Store())
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	srv.Drain(drainCtx)
	ts.Close()
	if err := srv.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	check() // no goroutine may survive the drain + close

	if len(acked) == 0 {
		t.Fatal("chaos run acked no mutations; the soak exercised nothing")
	}

	// Tracing invariant under connection chaos: a retried call reuses its
	// trace id across attempts but every attempt is a distinct recorder
	// entry — the flight recorder must never hold a duplicate
	// (trace, span) pair, killed connections and lost acks included.
	seenSpan := map[[2]string]bool{}
	perTrace := map[string]int{}
	for _, req := range srv.FlightRecorder().Snapshot(0) {
		key := [2]string{req.TraceID, req.SpanID}
		if seenSpan[key] {
			t.Errorf("flight recorder holds a duplicate (trace, span) pair %v", key)
		}
		seenSpan[key] = true
		perTrace[req.TraceID]++
		if err := req.Validate(); err != nil {
			t.Errorf("recorded trace invalid under chaos: %v", err)
		}
	}
	multi := 0
	for _, n := range perTrace {
		if n > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no trace has multiple attempt entries; the connection chaos never forced a retry")
	}
	t.Logf("flight recorder: %d entries, %d traces with retried attempts", len(seenSpan), multi)

	// Restart from disk: every acked write must be present exactly as
	// acknowledged — lost-ack retries included.
	prog, db, err := existdlog.Parse(chainSrc)
	if err != nil {
		t.Fatal(err)
	}
	st2, err := NewStore(prog, db, StoreConfig{WALDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	have := map[string]bool{}
	for _, row := range st2.Current().EDB.Facts("p") {
		have[fmt.Sprintf("p(%s,%s)", row[0], row[1])] = true
	}
	for f := range acked {
		if !have[f] {
			t.Errorf("acked write %s missing after restart", f)
		}
	}
	t.Logf("chaos soak: %d acked writes all durable, %d HTTP requests total", len(acked), reqN.Load())
}

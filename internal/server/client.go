package server

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"time"

	"existdlog/internal/obs"
	"existdlog/internal/tracespan"
)

// Client is the HTTP client for a served instance, shared by the
// loadgen verb and the repl's :add/:retract. It speaks the same wire
// format the handlers above decode, and it reuses the server's
// cancellation plumbing from the other side: every call threads its
// context into the request, so cancelling the context tears the
// connection down and the server aborts the evaluation into a sound
// partial result.
//
// A zero-configured Client is deliberately non-resilient — one attempt
// per call, no breaker — because the load generator needs to observe
// rejections and failures, not paper over them. Production-style
// callers use NewResilientClient (or set Retry/Breaker), which adds:
//
//   - capped, jittered exponential backoff on transport errors and
//     retryable statuses (429/502/503/504), honoring the server's
//     Retry-After hint;
//   - an Idempotency-Key header on every mutation, generated once per
//     call and reused across attempts, so a retried ack-lost write is
//     applied exactly once by the store's WAL-backed dedup window;
//   - a half-open circuit breaker that fails fast while the server is
//     persistently down instead of feeding a retry storm.
type Client struct {
	// Base is the served instance's base URL, e.g. "http://127.0.0.1:8347".
	Base string
	// HTTP is the underlying client; nil uses a shared client with an
	// overall request timeout (never http.DefaultClient, whose missing
	// timeout turns a hung server into a hung caller).
	HTTP *http.Client
	// Retry enables retries; nil means a single attempt per call.
	Retry *RetryPolicy
	// Breaker enables the circuit breaker; nil means none.
	Breaker *BreakerPolicy
	// Registry receives retry and breaker metrics; nil discards them.
	Registry *obs.Registry
	// Recorder, when set, records one client-side trace per call (verb
	// "client.<path>") with one span per attempt and backoff sleep —
	// the caller's view of the same trace id the server records. Nil
	// disables client-side spans at zero cost.
	Recorder *tracespan.Recorder

	brkOnce sync.Once
	brk     *breaker
}

// RetryPolicy shapes the retry loop: capped exponential backoff with
// full jitter (each sleep is uniform in (0, cap] of the doubling
// schedule), so synchronized clients desynchronize instead of
// retrying in lockstep.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first
	// (0 = 4).
	MaxAttempts int
	// BaseDelay seeds the backoff schedule (0 = 50ms).
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (0 = 2s). A server
	// Retry-After hint overrides the schedule but is still capped at
	// 4× MaxDelay.
	MaxDelay time.Duration
}

func (p *RetryPolicy) attempts() int {
	if p.MaxAttempts <= 0 {
		return 4
	}
	return p.MaxAttempts
}

func (p *RetryPolicy) base() time.Duration {
	if p.BaseDelay <= 0 {
		return 50 * time.Millisecond
	}
	return p.BaseDelay
}

func (p *RetryPolicy) cap() time.Duration {
	if p.MaxDelay <= 0 {
		return 2 * time.Second
	}
	return p.MaxDelay
}

// backoff returns the sleep before retry number n (n = 1 is the first
// retry): full jitter over min(cap, base·2ⁿ⁻¹), or the server's
// Retry-After hint when it gave one.
func (p *RetryPolicy) backoff(n int, retryAfter time.Duration) time.Duration {
	if retryAfter > 0 {
		if max := 4 * p.cap(); retryAfter > max {
			return max
		}
		return retryAfter
	}
	d := p.base() << (n - 1)
	if d <= 0 || d > p.cap() {
		d = p.cap()
	}
	return time.Duration(mrand.Int63n(int64(d))) + 1
}

// BreakerPolicy shapes the circuit breaker.
type BreakerPolicy struct {
	// Threshold is the consecutive-failure count that opens the
	// circuit (0 = 8).
	Threshold int
	// Cooldown is how long the circuit stays open before a single
	// half-open trial request is allowed through (0 = 1s).
	Cooldown time.Duration
}

func (p *BreakerPolicy) threshold() int {
	if p.Threshold <= 0 {
		return 8
	}
	return p.Threshold
}

func (p *BreakerPolicy) cooldown() time.Duration {
	if p.Cooldown <= 0 {
		return time.Second
	}
	return p.Cooldown
}

// ErrCircuitOpen is returned (wrapped) while the breaker is open: the
// server has failed persistently and the cooldown has not elapsed, so
// the client fails fast instead of adding load.
var ErrCircuitOpen = errors.New("circuit breaker is open")

// Breaker states, exported through the breaker-state gauge.
const (
	breakerClosed   = 0
	breakerHalfOpen = 1
	breakerOpen     = 2
)

// breaker is a consecutive-failure circuit breaker. Closed passes
// everything; Threshold consecutive failures open it; after Cooldown
// one trial request goes through half-open — success closes the
// circuit, failure reopens it for another cooldown.
type breaker struct {
	policy *BreakerPolicy
	reg    *obs.Registry
	now    func() time.Time

	mu       sync.Mutex
	state    int
	fails    int
	openedAt time.Time
	trial    bool // a half-open trial is in flight
}

func (b *breaker) setState(s int) {
	b.state = s
	if b.reg != nil {
		b.reg.SetBreakerState(int64(s))
	}
}

// allow reports whether a request may proceed, transitioning
// open→half-open after the cooldown. In half-open only one trial is
// admitted at a time.
func (b *breaker) allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return nil
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.policy.cooldown() {
			return ErrCircuitOpen
		}
		b.setState(breakerHalfOpen)
		b.trial = true
		return nil
	default: // half-open
		if b.trial {
			return ErrCircuitOpen
		}
		b.trial = true
		return nil
	}
}

// report records an attempt's outcome. Success closes the circuit and
// clears the failure streak; failure extends the streak and opens the
// circuit at the threshold (or immediately, from half-open).
func (b *breaker) report(ok bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.trial = false
	if ok {
		b.fails = 0
		if b.state != breakerClosed {
			b.setState(breakerClosed)
		}
		return
	}
	b.fails++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.fails >= b.policy.threshold()) {
		if b.state != breakerOpen {
			if b.reg != nil {
				b.reg.BreakerTripped()
			}
			b.setState(breakerOpen)
		}
		b.openedAt = b.now()
	}
}

// defaultHTTPClient is shared by all zero-HTTP Clients: one transport
// (so connections are pooled and reused) with an overall timeout, so a
// wedged server cannot hang a caller forever.
var defaultHTTPClient = &http.Client{Timeout: 30 * time.Second}

// NewClient returns a plain single-attempt client for the given base
// URL (trailing slashes trimmed).
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

// NewResilientClient returns a client with the default retry policy
// and circuit breaker enabled; reg (optional) receives retry and
// breaker metrics.
func NewResilientClient(base string, reg *obs.Registry) *Client {
	return &Client{
		Base:     strings.TrimRight(base, "/"),
		Retry:    &RetryPolicy{},
		Breaker:  &BreakerPolicy{},
		Registry: reg,
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return defaultHTTPClient
}

// breakerInst lazily builds the breaker for c.Breaker (nil if unset).
func (c *Client) breakerInst() *breaker {
	if c.Breaker == nil {
		return nil
	}
	c.brkOnce.Do(func() {
		c.brk = &breaker{policy: c.Breaker, reg: c.Registry, now: time.Now}
	})
	return c.brk
}

// QueryResult is the client's view of one finished /query call.
type QueryResult struct {
	Status         int     // HTTP status
	Count          int     // answers returned
	Partial        bool    // sound partial result (timeout, cancel, limit)
	Incomplete     string  // what stopped a partial evaluation
	ProvedEmpty    bool    // the optimizer proved the answer empty
	Cached         bool    // compiled-program cache hit
	ElapsedSeconds float64 // server-side evaluation wall time
	Err            string  // server error message on a non-200 status
	// TraceID is the call's end-to-end trace id (one per call, held
	// constant across retries): the handle into /debug/requests.
	TraceID string
}

// MutateResult is the client's view of one finished /update or /retract
// call. Seq is the first store version that includes the write.
type MutateResult struct {
	Status  int
	Facts   int
	Seq     uint64
	Err     string
	TraceID string
}

// traceIDFor picks the call's trace id: an explicit one planted with
// tracespan.ContextWithTrace (loadgen pins deterministic per-request
// ids this way), else freshly generated. One id per call — retries
// reuse it with fresh span ids, so the server-side recorder shows one
// trace with N attempt entries, never duplicates.
func traceIDFor(ctx context.Context) tracespan.TraceID {
	if tid, ok := tracespan.TraceFromContext(ctx); ok {
		return tid
	}
	return tracespan.NewTraceID()
}

// retryableStatus reports whether a status signals a transient
// condition worth retrying: admission rejections and gateway-style
// failures. Plain 500s are not retried — they are most likely
// deterministic.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// postOnce sends one JSON request and decodes the response into out,
// returning the status, the server's error message (if any), and the
// parsed Retry-After hint. The response body is always drained and
// closed, error paths included, so the underlying connection returns
// to the pool for reuse — under a retry storm, leaking bodies turns
// every attempt into a fresh TCP+TLS handshake against an overloaded
// server.
func (c *Client) postOnce(ctx context.Context, path, idemKey string, tid tracespan.TraceID, payload []byte, out any) (status int, msg string, retryAfter time.Duration, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(payload))
	if err != nil {
		return 0, "", 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if !tid.IsZero() {
		// One trace id per call, a fresh span id per attempt: the W3C
		// parent of whatever server-side tree this attempt produces.
		req.Header.Set("traceparent", tracespan.Traceparent(tid, tracespan.NewSpanID()))
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, "", 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if s := resp.Header.Get("Retry-After"); s != "" {
		if secs, perr := strconv.Atoi(s); perr == nil && secs > 0 {
			retryAfter = time.Duration(secs) * time.Second
		}
	}
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return resp.StatusCode, "", retryAfter, err
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return resp.StatusCode, e.Error, retryAfter, nil
		}
		return resp.StatusCode, strings.TrimSpace(string(raw)), retryAfter, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return resp.StatusCode, "", retryAfter, fmt.Errorf("decoding %s response: %w", path, err)
	}
	return resp.StatusCode, "", retryAfter, nil
}

// post runs the retry loop around postOnce. Transport errors and
// retryable statuses back off and retry (bounded by the policy and by
// ctx); everything else returns immediately. With no Retry policy it
// is a single attempt, preserving the raw behavior measurement tools
// depend on.
func (c *Client) post(ctx context.Context, path, idemKey string, tid tracespan.TraceID, body, out any) (int, string, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, "", err
	}
	tb := c.Recorder.Begin(tid, tracespan.SpanID{}, "", "client."+strings.TrimPrefix(path, "/"), "")
	brk := c.breakerInst()
	attempts := 1
	if c.Retry != nil {
		attempts = c.Retry.attempts()
	}
	var (
		status     int
		msg        string
		retryAfter time.Duration
	)
	for attempt := 1; ; attempt++ {
		if brk != nil {
			if berr := brk.allow(); berr != nil {
				tb.Finish(status, "breaker_open")
				return 0, "", fmt.Errorf("%s: %w", path, berr)
			}
		}
		sp := tb.Start("attempt " + strconv.Itoa(attempt))
		status, msg, retryAfter, err = c.postOnce(ctx, path, idemKey, tid, payload, out)
		tb.End(sp)
		tb.Attr(sp, "status", strconv.Itoa(status))
		ok := err == nil && !retryableStatus(status)
		if brk != nil {
			brk.report(ok)
		}
		if ok || attempt >= attempts || ctx.Err() != nil {
			outcome := "ok"
			if !ok {
				outcome = "error"
			}
			tb.Finish(status, outcome)
			return status, msg, err
		}
		if c.Registry != nil {
			c.Registry.RetryObserved()
		}
		sleep := c.Retry.backoff(attempt, retryAfter)
		bo := tb.Start("backoff")
		t := time.NewTimer(sleep)
		select {
		case <-t.C:
			tb.End(bo)
		case <-ctx.Done():
			t.Stop()
			tb.End(bo)
			tb.Finish(status, "canceled")
			return status, msg, err
		}
	}
}

// newIdempotencyKey returns a fresh random mutation ID. It is
// generated once per Mutate call and reused across every retry
// attempt, which is exactly what makes an ack-lost retry safe: the
// store's dedup window recognizes the key and acknowledges the
// already-applied write instead of applying it twice.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "" // no entropy: send the mutation without dedup protection
	}
	return hex.EncodeToString(b[:])
}

// Query evaluates one goal. timeout > 0 is forwarded as the request's
// timeout_ms, bounding the server-side evaluation.
func (c *Client) Query(ctx context.Context, goal string, timeout time.Duration) (QueryResult, error) {
	req := queryRequest{Goal: goal}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}
	var resp queryResponse
	tid := traceIDFor(ctx)
	status, msg, err := c.post(ctx, "/query", "", tid, req, &resp)
	if err != nil {
		return QueryResult{Status: status, TraceID: tid.String()}, err
	}
	if msg != "" {
		return QueryResult{Status: status, Err: msg, TraceID: tid.String()}, nil
	}
	return QueryResult{
		Status:         status,
		Count:          resp.Count,
		Partial:        resp.Partial,
		Incomplete:     resp.Incomplete,
		ProvedEmpty:    resp.ProvedEmpty,
		Cached:         resp.Cached,
		ElapsedSeconds: resp.ElapsedSeconds,
		TraceID:        tid.String(),
	}, nil
}

// Mutate posts ground facts to /update or /retract (op names the
// endpoint). The call returns once the write is durable and applied.
// Every mutation carries a fresh Idempotency-Key, held constant across
// retries, so a retried ack-lost write is applied at most once.
func (c *Client) Mutate(ctx context.Context, op string, facts []string, timeout time.Duration) (MutateResult, error) {
	if op != "update" && op != "retract" {
		return MutateResult{}, fmt.Errorf("client: unknown mutation op %q", op)
	}
	req := mutationRequest{Facts: facts}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}
	var resp mutationResponse
	tid := traceIDFor(ctx)
	status, msg, err := c.post(ctx, "/"+op, newIdempotencyKey(), tid, req, &resp)
	if err != nil {
		return MutateResult{Status: status, TraceID: tid.String()}, err
	}
	if msg != "" {
		return MutateResult{Status: status, Err: msg, TraceID: tid.String()}, nil
	}
	return MutateResult{Status: status, Facts: resp.Facts, Seq: resp.Seq, TraceID: tid.String()}, nil
}

// DebugRequests fetches up to limit entries from the server's flight
// recorder (/debug/requests), newest first — the loadgen harness uses
// it to resolve the span trees behind SLO-breaching exemplar trace ids.
// limit <= 0 fetches the whole ring.
func (c *Client) DebugRequests(ctx context.Context, limit int) ([]*tracespan.Request, error) {
	url := c.Base + "/debug/requests?json=1"
	if limit > 0 {
		url += "&limit=" + strconv.Itoa(limit)
	} else {
		url += "&limit=1000000"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("debug/requests: status %d", resp.StatusCode)
	}
	var body struct {
		Requests []*tracespan.Request `json:"requests"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 64<<20)).Decode(&body); err != nil {
		return nil, fmt.Errorf("decoding debug/requests: %w", err)
	}
	return body.Requests, nil
}

package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// Client is the minimal HTTP client for a served instance, shared by
// the loadgen verb and the repl's :add/:retract. It speaks the same
// wire format the handlers above decode, and it reuses the server's
// cancellation plumbing from the other side: every call threads its
// context into the request, so cancelling the context tears the
// connection down and the server aborts the evaluation into a sound
// partial result.
type Client struct {
	// Base is the served instance's base URL, e.g. "http://127.0.0.1:8347".
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
}

// NewClient returns a client for the given base URL (trailing slashes
// trimmed).
func NewClient(base string) *Client {
	return &Client{Base: strings.TrimRight(base, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// QueryResult is the client's view of one finished /query call.
type QueryResult struct {
	Status         int     // HTTP status
	Count          int     // answers returned
	Partial        bool    // sound partial result (timeout, cancel, limit)
	Incomplete     string  // what stopped a partial evaluation
	ProvedEmpty    bool    // the optimizer proved the answer empty
	Cached         bool    // compiled-program cache hit
	ElapsedSeconds float64 // server-side evaluation wall time
	Err            string  // server error message on a non-200 status
}

// MutateResult is the client's view of one finished /update or /retract
// call. Seq is the first store version that includes the write.
type MutateResult struct {
	Status int
	Facts  int
	Seq    uint64
	Err    string
}

// post sends one JSON body and decodes the response into out, returning
// the status and the server's error message (if any). A transport-level
// failure (connection refused, context cancelled mid-flight) comes back
// as the error; HTTP-level failures land in the message.
func (c *Client) post(ctx context.Context, path string, body, out any) (int, string, error) {
	payload, err := json.Marshal(body)
	if err != nil {
		return 0, "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.Base+path, bytes.NewReader(payload))
	if err != nil {
		return 0, "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return resp.StatusCode, "", err
	}
	if resp.StatusCode != http.StatusOK {
		var e errorResponse
		if json.Unmarshal(raw, &e) == nil && e.Error != "" {
			return resp.StatusCode, e.Error, nil
		}
		return resp.StatusCode, strings.TrimSpace(string(raw)), nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return resp.StatusCode, "", fmt.Errorf("decoding %s response: %w", path, err)
	}
	return resp.StatusCode, "", nil
}

// Query evaluates one goal. timeout > 0 is forwarded as the request's
// timeout_ms, bounding the server-side evaluation.
func (c *Client) Query(ctx context.Context, goal string, timeout time.Duration) (QueryResult, error) {
	req := queryRequest{Goal: goal}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}
	var resp queryResponse
	status, msg, err := c.post(ctx, "/query", req, &resp)
	if err != nil {
		return QueryResult{Status: status}, err
	}
	if msg != "" {
		return QueryResult{Status: status, Err: msg}, nil
	}
	return QueryResult{
		Status:         status,
		Count:          resp.Count,
		Partial:        resp.Partial,
		Incomplete:     resp.Incomplete,
		ProvedEmpty:    resp.ProvedEmpty,
		Cached:         resp.Cached,
		ElapsedSeconds: resp.ElapsedSeconds,
	}, nil
}

// Mutate posts ground facts to /update or /retract (op names the
// endpoint). The call returns once the write is durable and applied.
func (c *Client) Mutate(ctx context.Context, op string, facts []string, timeout time.Duration) (MutateResult, error) {
	if op != "update" && op != "retract" {
		return MutateResult{}, fmt.Errorf("client: unknown mutation op %q", op)
	}
	req := mutationRequest{Facts: facts}
	if timeout > 0 {
		req.TimeoutMS = timeout.Milliseconds()
	}
	var resp mutationResponse
	status, msg, err := c.post(ctx, "/"+op, req, &resp)
	if err != nil {
		return MutateResult{Status: status}, err
	}
	if msg != "" {
		return MutateResult{Status: status, Err: msg}, nil
	}
	return MutateResult{Status: status, Facts: resp.Facts, Seq: resp.Seq}, nil
}

package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"existdlog/internal/ast"
	"existdlog/internal/engine"
	"existdlog/internal/failpoint"
	"existdlog/internal/obs"
	"existdlog/internal/wal"
)

// ErrDegraded marks mutations refused while the store is in degraded
// read-only mode: a WAL append or fsync failed (disk full, I/O error),
// so writes cannot be made durable. Queries keep serving from the last
// installed version; a background probe re-enables writes once the log
// accepts a durable frame again.
var ErrDegraded = errors.New("store is degraded (read-only): the write-ahead log is failing")

// Store is the versioned copy-on-write fact store behind the service's
// write path. Readers pin an immutable Version with one atomic load and
// are never blocked: a pinned version's databases are frozen forever.
// Writers serialize through a single applier goroutine, which drains
// every mutation waiting in its queue into one batch — one WAL group
// commit, one incremental maintenance pass, one atomically-installed
// successor version — so bursts of small writes amortize both the fsync
// and the fixpoint work.
//
// Durability (optional, enabled by a WAL directory): a mutation is
// acknowledged only after its record is fsync'd in the append-only log
// AND applied, so every acknowledged write survives SIGKILL; startup
// replays checkpoint + log and re-materializes, reproducing the exact
// fixpoint. Maintenance uses UpdateContext/RetractContext against the
// previous version's materialization; any retraction error or partial
// result is discarded — per retract.go, a partial DRed result
// over-approximates and is unsound — and the applier falls back to a
// full re-evaluation of the new base state instead.
type Store struct {
	prog *ast.Program
	opt  engine.Options
	reg  *obs.Registry
	log  *slog.Logger
	now  func() time.Time

	// incremental is false for programs Update/Retract reject outright
	// (negation); their maintenance is a full Eval per batch.
	incremental bool
	// matEnabled gates materialization. It starts true and flips off
	// permanently (applier-only state) the first time the bounded
	// fixpoint fails to complete — a program that diverges without a
	// goal, e.g. an unbounded counter. The store then maintains only the
	// base facts; queries never read the materialization, so they are
	// unaffected.
	matEnabled bool

	cur atomic.Pointer[Version]

	wlog      *wal.Log // nil when the store is memory-only
	snapPath  string
	snapEvery int
	sinceSnap int

	// Degraded read-only mode: set when a WAL append/sync fails, cleared
	// when a probe write succeeds. Mutate fails fast while set; queries
	// never look at it. The cause string feeds the readiness probe.
	degraded      atomic.Bool
	degradedMu    sync.Mutex
	degradedCause string
	probeEvery    time.Duration

	// Idempotency dedup window: client-supplied mutation IDs already
	// applied, mapped to an including version's sequence. Owned by the
	// applier goroutine (and by NewStore's replay, which runs before the
	// applier starts), so it needs no lock. Bounded FIFO: seenOrder
	// remembers insertion order for eviction.
	seen      map[string]uint64
	seenOrder []string

	reqs      chan *mutReq
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once
	closeErr  error
}

// Version is one immutable state of the store: the base facts, the
// materialized fixpoint of the served program over them, and the
// sequence number of the last mutation included. Mat is nil until the
// first write materializes (lazily: read-only workloads never pay for a
// fixpoint no query reads) and stays nil for programs whose bounded
// materialization cannot complete.
type Version struct {
	Seq uint64
	EDB *engine.Database
	Mat *engine.Result
}

// Mutation is one write request: add (OpUpdate) or remove (OpRetract)
// the given base facts. ID, when non-empty, is an idempotency key: a
// mutation whose ID was already applied (within the dedup window, which
// WAL replay rebuilds across restarts) acknowledges the original's
// sequence without applying again — the contract that makes a retried
// ack-lost write safe.
type Mutation struct {
	Op    wal.Op
	Facts []wal.Fact
	ID    string
	// Req and Trace identify the originating request ("m7") and its
	// trace id for end-to-end correlation: they ride into the WAL record
	// and, if this mutation's batch breaks the log, into the degraded
	// cause reported by /readyz.
	Req   string
	Trace string
}

type mutReq struct {
	m Mutation
	// enq is when the mutation entered the applier queue (real monotonic
	// clock — span math must never see the server's injectable fake);
	// the queue-to-applier handoff span is enq → timing.dequeued.
	enq time.Time
	ack chan mutAck // buffered; the applier never blocks on a waiter
}

type mutAck struct {
	seq uint64
	err error
	// timing is the shared stage breakdown of the batch that carried
	// this mutation (nil on failure paths that never started applying).
	timing *batchTiming
}

// batchTiming is the applier-side stage clock of one batch, shared by
// every mutation the batch acknowledged. All stamps are real time.Now
// wall/monotonic times; the request handler converts them into child
// spans of its "store" span.
type batchTiming struct {
	dequeued  time.Time // applier picked the batch up
	applied   time.Time // maintenance passes done
	walDone   time.Time // records appended (zero when memory-only)
	synced    time.Time // group-commit fsync done (zero when memory-only)
	installed time.Time // new version installed and checkpoint policy run
	size      int       // mutations in the batch (coalescing visibility)
}

// StoreConfig configures NewStore.
type StoreConfig struct {
	// WALDir enables durability: the mutation log and checkpoints live
	// here. Empty runs the store in memory only.
	WALDir string
	// SnapshotEvery checkpoints the base facts after this many logged
	// mutations, then truncates the log. 0 never checkpoints (the log
	// grows until restart).
	SnapshotEvery int
	// MaxFacts bounds the store's materialized fixpoint (0 = unlimited);
	// hitting it disables materialization rather than installing an
	// incomplete fixpoint.
	MaxFacts int
	// ReorderJoins evaluates maintenance passes (materialization,
	// incremental Update/Retract) with the runtime join planner.
	ReorderJoins bool
	// ProbeEvery is how often a degraded store probes the log for
	// recovery (0 = 500ms). Tests shorten it.
	ProbeEvery time.Duration
	Registry   *obs.Registry
	Logger     *slog.Logger
	Now        func() time.Time
}

const (
	walFile  = "wal.log"
	snapFile = "snapshot.db"
	// maxBatch bounds how many queued mutations one maintenance pass
	// absorbs, so acks are never starved behind an unbounded drain.
	maxBatch = 256
	// idemWindow bounds the idempotency dedup map: the oldest remembered
	// ID is evicted past this many. A retry storm resolves within
	// seconds; the window only needs to outlive the client's retry
	// horizon, not the process.
	idemWindow = 8192
)

// NewStore recovers the durable state (checkpoint, then newer log
// records) on top of the program's own base facts, materializes the
// fixpoint, and starts the applier.
func NewStore(prog *ast.Program, edb *engine.Database, cfg StoreConfig) (*Store, error) {
	s := &Store{
		prog: prog,
		// Full fixpoint: no cut, so Update/Retract see every derivation.
		// MaxFacts keeps a divergent program from hanging the applier;
		// a partial result is never installed (matEnabled flips instead).
		opt:         engine.Options{MaxFacts: cfg.MaxFacts, ReorderJoins: cfg.ReorderJoins},
		reg:         cfg.Registry,
		log:         cfg.Logger,
		now:         cfg.Now,
		incremental: !prog.HasNegation(),
		matEnabled:  true,
		snapEvery:   cfg.SnapshotEvery,
		probeEvery:  cfg.ProbeEvery,
		seen:        make(map[string]uint64),
		reqs:        make(chan *mutReq, maxBatch),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
	}
	if s.probeEvery <= 0 {
		s.probeEvery = 500 * time.Millisecond
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if s.now == nil {
		s.now = time.Now
	}
	var seq uint64
	if cfg.WALDir != "" {
		if err := os.MkdirAll(cfg.WALDir, 0o755); err != nil {
			return nil, fmt.Errorf("server: wal dir: %w", err)
		}
		s.snapPath = filepath.Join(cfg.WALDir, snapFile)
		snapSeq, snapDB, err := wal.ReadSnapshotFile(s.snapPath)
		switch {
		case err == nil:
			// The checkpoint is the whole base state at snapSeq; the
			// program's source facts are already inside it.
			edb = snapDB
			seq = snapSeq
		case errors.Is(err, os.ErrNotExist):
			// First start: the program's own facts are the base state.
		default:
			return nil, err
		}
		wlog, recs, err := wal.Open(filepath.Join(cfg.WALDir, walFile))
		if err != nil {
			return nil, err
		}
		s.wlog = wlog
		replayed := 0
		for _, rec := range recs {
			if rec.Op == wal.OpProbe {
				continue // disk-health probe, carries no state
			}
			if rec.Seq <= seq {
				continue // already inside the checkpoint
			}
			if err := applyToEDB(edb, rec.Op, rec.Facts); err != nil {
				wlog.Close()
				return nil, fmt.Errorf("server: wal replay seq %d: %w", rec.Seq, err)
			}
			seq = rec.Seq
			replayed++
			s.rememberID(rec.ID, rec.Seq)
		}
		s.sinceSnap = replayed
		if replayed > 0 || snapSeq > 0 {
			s.log.LogAttrs(context.Background(), slog.LevelInfo, "store recovered",
				slog.Uint64("snapshot_seq", snapSeq),
				slog.Int("wal_records", replayed),
				slog.Uint64("seq", seq))
		}
	}
	s.install(&Version{Seq: seq, EDB: edb})
	go s.applier()
	return s, nil
}

// Current returns the store's latest immutable version.
func (s *Store) Current() *Version { return s.cur.Load() }

// Degraded reports whether the store is in degraded read-only mode and,
// if so, what put it there (the readiness probe's reason string).
func (s *Store) Degraded() (bool, string) {
	if !s.degraded.Load() {
		return false, ""
	}
	s.degradedMu.Lock()
	defer s.degradedMu.Unlock()
	return true, s.degradedCause
}

// enterDegraded flips the store read-only: mutations fail fast, the
// degraded gauge rises, and the applier starts probing for recovery.
// req and trace (both optional) identify the mutation whose batch broke
// the log; they are baked into the cause string so 503 bodies and
// /readyz output point straight at the flight-recorder entry of the
// triggering request.
func (s *Store) enterDegraded(cause error, req, trace string) {
	if s.degraded.Swap(true) {
		return
	}
	text := cause.Error()
	if req != "" {
		text = fmt.Sprintf("%s (triggered by request %s", text, req)
		if trace != "" {
			text += " trace " + trace
		}
		text += ")"
	}
	s.degradedMu.Lock()
	s.degradedCause = text
	s.degradedMu.Unlock()
	if s.reg != nil {
		s.reg.SetDegraded(true)
	}
	s.log.LogAttrs(context.Background(), slog.LevelError,
		"store degraded: serving reads only until the log recovers",
		slog.String("cause", text),
		slog.String("request", req),
		slog.String("trace", trace))
}

// exitDegraded re-enables writes after a successful probe.
func (s *Store) exitDegraded() {
	if !s.degraded.Swap(false) {
		return
	}
	s.degradedMu.Lock()
	s.degradedCause = ""
	s.degradedMu.Unlock()
	if s.reg != nil {
		s.reg.SetDegraded(false)
	}
	s.log.LogAttrs(context.Background(), slog.LevelInfo,
		"store recovered: probe write succeeded, mutations re-enabled")
}

// probe checks whether the log takes durable writes again; on success
// the store leaves degraded mode.
func (s *Store) probe() {
	if s.wlog == nil {
		return
	}
	if err := s.wlog.Probe(); err != nil {
		s.log.LogAttrs(context.Background(), slog.LevelDebug, "degraded probe failed",
			slog.String("error", err.Error()))
		return
	}
	s.exitDegraded()
}

// rememberID records an applied idempotency key, evicting the oldest
// past the window. Applier-owned (startup replay runs before the
// applier), so no locking.
func (s *Store) rememberID(id string, seq uint64) {
	if id == "" {
		return
	}
	if _, ok := s.seen[id]; ok {
		return
	}
	s.seen[id] = seq
	s.seenOrder = append(s.seenOrder, id)
	if len(s.seenOrder) > idemWindow {
		delete(s.seen, s.seenOrder[0])
		s.seenOrder = s.seenOrder[1:]
	}
}

// Mutate submits one mutation and waits for it to be durable and
// applied. The returned sequence identifies the first version that
// includes it. Cancelling ctx abandons the wait, not the write: a
// mutation already queued may still apply.
func (s *Store) Mutate(ctx context.Context, m Mutation) (uint64, error) {
	seq, _, _, err := s.MutateTraced(ctx, m)
	return seq, err
}

// MutateTraced is Mutate plus the applier-side stage timing: the
// enqueue time and the batch's timing stamps (nil when the write failed
// before applying), which the request handler grafts into its span
// tree.
func (s *Store) MutateTraced(ctx context.Context, m Mutation) (uint64, time.Time, *batchTiming, error) {
	if m.Op != wal.OpUpdate && m.Op != wal.OpRetract {
		return 0, time.Time{}, nil, fmt.Errorf("server: unknown mutation op %q", m.Op)
	}
	if len(m.Facts) == 0 {
		return 0, time.Time{}, nil, errors.New("server: mutation with no facts")
	}
	if s.degraded.Load() {
		// Fail fast: don't even queue. A request already queued when the
		// flag flips is failed by the applier instead.
		_, cause := s.Degraded()
		return 0, time.Time{}, nil, fmt.Errorf("%w: %s", ErrDegraded, cause)
	}
	req := &mutReq{m: m, enq: time.Now(), ack: make(chan mutAck, 1)}
	select {
	case s.reqs <- req:
	case <-s.quit:
		return 0, req.enq, nil, errors.New("server: store is closed")
	case <-ctx.Done():
		return 0, req.enq, nil, ctx.Err()
	}
	select {
	case a := <-req.ack:
		return a.seq, req.enq, a.timing, a.err
	case <-ctx.Done():
		return 0, req.enq, nil, ctx.Err()
	case <-s.done:
		// The applier exited. A request enqueued concurrently with Close
		// may have been acked just before the exit (acks are buffered) or
		// never picked up at all.
		select {
		case a := <-req.ack:
			return a.seq, req.enq, a.timing, a.err
		default:
			return 0, req.enq, nil, errors.New("server: store is closed")
		}
	}
}

// Close stops the applier after it finishes the batch in hand (writes
// are never abandoned mid-apply) and closes the log. Mutations still
// queued are failed, not applied. Safe to call more than once.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		close(s.quit)
		<-s.done
		if s.wlog != nil {
			s.closeErr = s.wlog.Close()
		}
	})
	return s.closeErr
}

// install publishes a version and its shape gauges.
func (s *Store) install(v *Version) {
	s.cur.Store(v)
	if s.reg != nil {
		base := 0
		for _, key := range v.EDB.Keys() {
			base += v.EDB.Count(key)
		}
		// Count the materialized relations themselves: a maintenance
		// run's Stats.FactsDerived covers only that run's new facts.
		derived := 0
		if v.Mat != nil {
			for key := range s.prog.Derived {
				derived += v.Mat.DB.Count(key)
			}
		}
		s.reg.SetStoreShape(v.Seq, base, derived)
	}
}

// applyToEDB applies one logged mutation to the base facts. Arity
// mismatches are the only way this fails; the applier validates before
// logging, so during replay a failure means the served program changed
// incompatibly under an old WAL.
func applyToEDB(edb *engine.Database, op wal.Op, facts []wal.Fact) error {
	switch op {
	case wal.OpUpdate:
		for _, f := range facts {
			if err := edb.CheckArity(f.Key, len(f.Row)); err != nil {
				return err
			}
			edb.Add(f.Key, f.Row...)
		}
	case wal.OpRetract:
		byKey := map[string][][]string{}
		for _, f := range facts {
			byKey[f.Key] = append(byKey[f.Key], f.Row)
		}
		for key, rows := range byKey {
			edb.RemoveFacts(key, rows)
		}
	default:
		return fmt.Errorf("unknown op %q", op)
	}
	return nil
}

// applier is the single writer: it drains waiting mutations into one
// batch, validates them, applies one maintenance pass per op-run on a
// fresh copy of the state, group-commits the WAL, installs the new
// version, and only then acknowledges.
func (s *Store) applier() {
	defer close(s.done)
	for {
		var first *mutReq
		if s.degraded.Load() {
			// Read-only: instead of blocking on work that would only be
			// refused, wake periodically to probe the log for recovery.
			timer := time.NewTimer(s.probeEvery)
			select {
			case first = <-s.reqs:
				timer.Stop()
			case <-timer.C:
				s.probe()
				continue
			case <-s.quit:
				timer.Stop()
				s.failQueued()
				return
			}
		} else {
			select {
			case first = <-s.reqs:
			case <-s.quit:
				s.failQueued()
				return
			}
		}
		batch := []*mutReq{first}
	drain:
		for len(batch) < maxBatch {
			select {
			case r := <-s.reqs:
				batch = append(batch, r)
			default:
				break drain
			}
		}
		s.applyBatch(batch)
	}
}

// failQueued rejects mutations still queued at shutdown.
func (s *Store) failQueued() {
	for {
		select {
		case r := <-s.reqs:
			r.ack <- mutAck{err: errors.New("server: store is closed")}
		default:
			return
		}
	}
}

// applyBatch runs one maintenance pass over a batch of mutations.
func (s *Store) applyBatch(batch []*mutReq) {
	if s.degraded.Load() {
		// Queued before (or while) the flag flipped: refuse without
		// touching the log or the state.
		_, cause := s.Degraded()
		s.ackAll(batch, mutAck{err: fmt.Errorf("%w: %s", ErrDegraded, cause)})
		return
	}
	start := s.now()
	timing := &batchTiming{dequeued: time.Now(), size: len(batch)}
	prev := s.cur.Load()
	edb := prev.EDB.Clone()
	mat := prev.Mat

	// Validate against the evolving base state; invalid mutations are
	// acked with their error and excluded from the batch (they reach
	// neither the log nor the maintenance pass). A mutation whose
	// idempotency key was already applied is acked with the remembered
	// sequence — it was durable the first time; an in-batch duplicate
	// rides along and acks with this batch's sequence.
	valid := batch[:0:0]
	var dupes []*mutReq // in-batch duplicates: share the batch's fate
	batchIDs := map[string]bool{}
	for _, r := range batch {
		if r.m.ID != "" {
			if seq, ok := s.seen[r.m.ID]; ok {
				r.ack <- mutAck{seq: seq}
				continue
			}
			if batchIDs[r.m.ID] {
				dupes = append(dupes, r)
				continue
			}
		}
		if err := s.validate(edb, r.m); err != nil {
			r.ack <- mutAck{err: err}
			continue
		}
		if r.m.ID != "" {
			batchIDs[r.m.ID] = true
		}
		valid = append(valid, r)
	}
	if len(valid) == 0 {
		return
	}

	// Maintain incrementally over runs of the same op, preserving the
	// submission order across op changes.
	var err error
	for i := 0; i < len(valid); {
		j := i
		for j < len(valid) && valid[j].m.Op == valid[i].m.Op {
			j++
		}
		run := valid[i:j]
		mat, err = s.applyRun(edb, mat, run[0].m.Op, run)
		if err != nil {
			s.ackAll(valid, mutAck{err: err})
			s.ackAll(dupes, mutAck{err: err})
			return
		}
		i = j
	}
	timing.applied = time.Now()

	// Group commit: one fsync covers every record in the batch. A log
	// failure here — append or sync, real or injected — means the batch
	// cannot be made durable: no version is installed, no ack is sent,
	// any frames already appended are rolled back to the durable prefix,
	// and the store flips to degraded read-only mode.
	seq := prev.Seq
	if s.wlog != nil {
		var werr error
		for _, r := range valid {
			seq++
			if werr = s.wlog.Append(wal.Record{Seq: seq, Op: r.m.Op, Facts: r.m.Facts, ID: r.m.ID, Trace: r.m.Trace}); werr != nil {
				break
			}
		}
		timing.walDone = time.Now()
		if werr == nil {
			werr = s.wlog.Sync()
		}
		timing.synced = time.Now()
		if werr != nil {
			if rberr := s.wlog.Rollback(); rberr != nil {
				s.log.LogAttrs(context.Background(), slog.LevelWarn, "wal rollback failed",
					slog.String("error", rberr.Error()))
			}
			// Attribute the failure to the first mutation of the batch:
			// its request and trace ids make the degraded cause (503
			// bodies, /readyz) correlatable with the flight recorder.
			s.enterDegraded(werr, valid[0].m.Req, valid[0].m.Trace)
			ack := mutAck{err: fmt.Errorf("%w: %s", ErrDegraded, werr)}
			s.ackAll(valid, ack)
			s.ackAll(dupes, ack)
			return
		}
		if s.reg != nil {
			s.reg.WALAppended(len(valid))
			s.reg.WALSynced()
		}
	} else {
		seq += uint64(len(valid))
	}

	for _, r := range valid {
		s.rememberID(r.m.ID, seq)
	}
	s.install(&Version{Seq: seq, EDB: edb, Mat: mat})
	// Checkpoint before acking: not needed for durability (the WAL
	// already covers the batch) but it keeps "ack received" implying
	// "checkpoint policy observed", which recovery tests rely on.
	s.maybeSnapshot(len(valid), seq, edb)
	timing.installed = time.Now()
	if s.reg != nil {
		s.reg.ObserveMaintenance(len(valid), s.now().Sub(start))
	}
	s.ackAll(valid, mutAck{seq: seq, timing: timing})
	s.ackAll(dupes, mutAck{seq: seq, timing: timing})
}

func (s *Store) ackAll(reqs []*mutReq, a mutAck) {
	for _, r := range reqs {
		r.ack <- a
	}
}

// validate rejects mutations the maintenance pass must never see:
// derived predicates (the fixpoint owns those) and arity mismatches
// with the evolving base state.
func (s *Store) validate(edb *engine.Database, m Mutation) error {
	for _, f := range m.Facts {
		if s.prog.Derived[f.Key] {
			return fmt.Errorf("server: %s is a derived predicate; only base facts can be written", f.Key)
		}
		if err := edb.CheckArity(f.Key, len(f.Row)); err != nil {
			return err
		}
	}
	return nil
}

// applyRun applies one same-op run of mutations: the base state is
// updated in place (it is this batch's private copy), and the
// materialization advances by one incremental pass — or, when the
// incremental path is unavailable or unsound (no previous fixpoint yet,
// negation, maintenance errors, a partial Retract result), by a full
// evaluation of the new base state. A full evaluation that itself fails
// or comes back partial disables materialization permanently instead of
// installing an incomplete fixpoint; the base facts remain exact either
// way, so queries are unaffected.
func (s *Store) applyRun(edb *engine.Database, mat *engine.Result, op wal.Op, run []*mutReq) (*engine.Result, error) {
	// Chaos site: an injected maintenance error fails the batch before
	// anything is logged or installed — clients see a clean error, the
	// store stays on the previous version.
	if err := failpoint.Inject("store/maintain"); err != nil {
		return nil, fmt.Errorf("server: maintenance: %w", err)
	}
	delta := engine.NewDatabase()
	for _, r := range run {
		for _, f := range r.m.Facts {
			delta.Add(f.Key, f.Row...)
		}
		if err := applyToEDB(edb, op, r.m.Facts); err != nil {
			return nil, err
		}
	}
	if !s.matEnabled {
		return nil, nil
	}
	if mat != nil && s.incremental {
		var next *engine.Result
		var err error
		if op == wal.OpUpdate {
			next, err = engine.Update(s.prog, mat, delta, s.opt)
		} else {
			next, err = engine.Retract(s.prog, mat, delta, s.opt)
		}
		if err == nil && next != nil && !next.Partial {
			return next, nil
		}
		// An aborted Retract over-approximates (see retract.go) and a
		// failed Update proves nothing: discard and recompute. The new
		// base state is already in edb, so the re-evaluation is exact.
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "incremental maintenance discarded",
			slog.String("op", string(op)),
			slog.Any("error", err))
		if s.reg != nil {
			s.reg.Reevaluated()
		}
	}
	next, err := engine.Eval(s.prog, edb, s.opt)
	if err != nil || next == nil || next.Partial {
		s.matEnabled = false
		s.log.LogAttrs(context.Background(), slog.LevelWarn,
			"materialization disabled: the program's fixpoint cannot complete under the store's bounds",
			slog.Any("error", err))
		return nil, nil
	}
	return next, nil
}

// maybeSnapshot checkpoints the base state once enough mutations have
// accumulated since the last checkpoint, then truncates the log. A
// failed checkpoint only logs: the WAL still covers every mutation, so
// durability is unaffected.
func (s *Store) maybeSnapshot(applied int, seq uint64, edb *engine.Database) {
	if s.wlog == nil || s.snapEvery <= 0 {
		return
	}
	s.sinceSnap += applied
	if s.sinceSnap < s.snapEvery {
		return
	}
	if err := wal.WriteSnapshotFile(s.snapPath, seq, edb); err != nil {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "checkpoint failed",
			slog.Any("error", err))
		return
	}
	if err := s.wlog.Reset(); err != nil {
		s.log.LogAttrs(context.Background(), slog.LevelWarn, "wal reset failed",
			slog.Any("error", err))
	}
	s.sinceSnap = 0
	if s.reg != nil {
		s.reg.SnapshotWritten()
	}
	s.log.LogAttrs(context.Background(), slog.LevelInfo, "checkpoint written",
		slog.Uint64("seq", seq))
}

// Package server implements the long-running query service behind
// `existdlog serve`: a fixed program is loaded once, and HTTP clients
// evaluate goals against it.
//
//	POST /query        evaluate a goal (JSON in, JSON out)
//	POST /update       add base facts (durable when a WAL is configured)
//	POST /retract      remove base facts
//	GET  /metrics      Prometheus text exposition of the obs registry
//	GET  /healthz      liveness: 200 while the process runs
//	GET  /readyz       readiness: 503 once draining begins
//	GET  /debug/pprof  the stdlib profiler endpoints
//
// Every query evaluates with Options.Trace set and drains its Result
// into an obs.Registry, so the process-lifetime counters exactly
// partition the per-query Stats. Concurrent queries are safe without
// locking in the engine: each query pins one immutable Version of the
// fact store (store.go) with a single atomic load, the symbol table is
// internally synchronized, and optimized programs are cached immutably
// per goal — the cache survives mutations because the optimizer reasons
// from rules alone, never from facts. Writes serialize through the
// store's applier and are acknowledged only once durable and applied.
// Cancellation arrives through the same context plumbing the CLI uses —
// a per-request timeout, a client disconnect, or a server-wide drain
// abort all land at the engine's pass barriers and come back as a sound
// partial result; writes, by contrast, are refused while draining but
// never aborted mid-batch.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"existdlog"
	"existdlog/internal/ast"
	"existdlog/internal/engine"
	"existdlog/internal/failpoint"
	"existdlog/internal/ierr"
	"existdlog/internal/obs"
	"existdlog/internal/parser"
	"existdlog/internal/trace"
	"existdlog/internal/tracespan"
	"existdlog/internal/wal"
)

// Config configures a Server.
type Config struct {
	// Source is the served program: rules, facts, and optionally a
	// default "?- goal." used by requests that omit their own.
	Source string
	// Name labels the program in logs (typically the file path).
	Name string
	// NoOptimize serves the program as written instead of optimizing
	// each goal's program through the paper's pipeline.
	NoOptimize bool
	// Parallel evaluates with the parallel semi-naive strategy.
	Parallel bool
	// NoReorder disables the runtime join planner (per-pass greedy
	// reordering from live cardinalities), which is on by default for
	// query evaluation and store maintenance. Requests can override per
	// query with the "reorder" field.
	NoReorder bool
	// DefaultTimeout bounds queries that do not request a timeout
	// (0 = unbounded).
	DefaultTimeout time.Duration
	// MaxTimeout caps client-requested timeouts (0 = no cap).
	MaxTimeout time.Duration
	// MaxConcurrent bounds concurrently evaluating queries; excess
	// requests wait in a queue (observable as the queue-depth gauge).
	// 0 means 4.
	MaxConcurrent int
	// MaxQueue bounds each priority class's admission queue; a request
	// arriving at a full queue is rejected immediately with 429 and a
	// Retry-After hint instead of waiting. 0 means 16× MaxConcurrent.
	MaxQueue int
	// QueueTimeout bounds how long an admitted-but-queued request may
	// wait for an evaluation slot before a 503; it also sizes the
	// Retry-After hint on rejections. 0 means 1s.
	QueueTimeout time.Duration
	// ProbeEvery is the cadence of degraded-mode recovery probes
	// against the WAL (0 = the store's 500ms default).
	ProbeEvery time.Duration
	// MaxFacts bounds derived facts per query (0 = unlimited); blown
	// queries return a sound partial result instead of eating the heap.
	MaxFacts int
	// Logger receives structured request logs; nil discards them.
	Logger *slog.Logger
	// Registry receives the query metrics; nil creates a fresh one.
	Registry *obs.Registry
	// Now is the clock used for request timing; nil means time.Now. The
	// golden metrics test injects a stepping fake so latency histograms
	// are byte-deterministic.
	Now func() time.Time
	// WALDir enables durable writes: /update and /retract mutations are
	// fsync'd to an append-only log here (with periodic checkpoints) and
	// replayed on startup. Empty keeps mutations in memory only.
	WALDir string
	// SnapshotEvery checkpoints the store after this many logged
	// mutations (0 = never; the log grows until restart).
	SnapshotEvery int
	// FlightSize enables the flight recorder: completed request span
	// trees are kept in a lock-free ring of this many entries, served at
	// /debug/requests. 0 disables tracing entirely — the span hot path
	// becomes nil-receiver no-ops and performs zero allocations.
	FlightSize int
	// SlowQuery emits one structured log line with the full span
	// breakdown for any request at least this slow (0 = never). Only
	// effective with FlightSize > 0.
	SlowQuery time.Duration
}

// compiled is one goal's ready-to-evaluate program, cached immutably.
type compiled struct {
	prog  *ast.Program
	goal  ast.Atom
	empty bool // the optimizer proved the answer empty at compile time
}

// Server is an HTTP query service over one loaded program.
type Server struct {
	cfg   Config
	log   *slog.Logger
	reg   *obs.Registry
	now   func() time.Time
	base  *ast.Program
	store *Store

	adm   *admission
	cache sync.Map // goal key -> *compiled
	// rec is the flight recorder; nil when Config.FlightSize is 0, which
	// turns every span call in the handlers into a nil-receiver no-op.
	rec *tracespan.Recorder

	mu       sync.Mutex
	draining bool
	inflight sync.WaitGroup

	abortCtx context.Context
	abort    context.CancelCauseFunc

	reqSeq atomic.Int64
	mux    *http.ServeMux
}

// New parses cfg.Source and returns a ready Server.
func New(cfg Config) (*Server, error) {
	prog, db, err := existdlog.Parse(cfg.Source)
	if err != nil {
		return nil, fmt.Errorf("server: parsing %s: %w", cfg.Name, err)
	}
	logger := cfg.Logger
	if logger == nil {
		logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	reg := cfg.Registry
	if reg == nil {
		reg = obs.NewRegistry()
	}
	now := cfg.Now
	if now == nil {
		now = time.Now
	}
	if cfg.MaxConcurrent <= 0 {
		cfg.MaxConcurrent = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 16 * cfg.MaxConcurrent
	}
	if cfg.QueueTimeout <= 0 {
		cfg.QueueTimeout = time.Second
	}
	store, err := NewStore(prog, db, StoreConfig{
		WALDir:        cfg.WALDir,
		SnapshotEvery: cfg.SnapshotEvery,
		MaxFacts:      cfg.MaxFacts,
		ReorderJoins:  !cfg.NoReorder,
		Registry:      reg,
		Logger:        logger,
		Now:           now,
		ProbeEvery:    cfg.ProbeEvery,
	})
	if err != nil {
		return nil, err
	}
	abortCtx, abort := context.WithCancelCause(context.Background())
	s := &Server{
		cfg:      cfg,
		log:      logger,
		reg:      reg,
		now:      now,
		base:     prog,
		store:    store,
		adm:      newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout, reg),
		abortCtx: abortCtx,
		abort:    abort,
	}
	if cfg.FlightSize > 0 {
		s.rec = tracespan.NewRecorder(cfg.FlightSize)
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/query", s.handleQuery)
	s.mux.HandleFunc("/update", s.handleMutation)
	s.mux.HandleFunc("/retract", s.handleMutation)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/readyz", s.handleReadyz)
	s.mux.HandleFunc("/debug/requests", s.rec.ServeHTTP)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Registry exposes the metrics registry (for the final snapshot log).
func (s *Server) Registry() *obs.Registry { return s.reg }

// Store exposes the versioned fact store (for tests and shutdown).
func (s *Server) Store() *Store { return s.store }

// FlightRecorder exposes the recorder (nil when disabled) for tests and
// the chaos harness's no-duplicate-span assertions.
func (s *Server) FlightRecorder() *tracespan.Recorder { return s.rec }

// Close stops the store's applier and closes its log. Call after Drain:
// mutations still queued are failed, never half-applied.
func (s *Server) Close() error { return s.store.Close() }

// Info returns the served program's shape for startup logs: rule count,
// base fact count, and the program's default goal ("" if none).
func (s *Server) Info() (rules, facts int, defaultGoal string) {
	edb := s.store.Current().EDB
	for _, key := range edb.Keys() {
		facts += edb.Count(key)
	}
	goal := ""
	if s.base.Query.Pred != "" {
		goal = s.base.Query.String()
	}
	return len(s.base.Rules), facts, goal
}

// enter registers an in-flight query unless the server is draining.
func (s *Server) enter() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.inflight.Add(1)
	return true
}

// BeginDrain flips readiness: /readyz starts answering 503 and new
// queries are refused, while in-flight queries keep running.
func (s *Server) BeginDrain() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// AbortInFlight cancels every in-flight evaluation with cause; each
// returns promptly with a sound partial result.
func (s *Server) AbortInFlight(cause error) { s.abort(cause) }

// Drain gracefully shuts the query side down: it stops admitting
// queries, waits for the in-flight ones, and — if ctx expires first —
// aborts them (they still complete, as partials) and waits again.
func (s *Server) Drain(ctx context.Context) error {
	s.BeginDrain()
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.AbortInFlight(fmt.Errorf("server draining: %w", context.Cause(ctx)))
		<-done
		return context.Cause(ctx)
	}
}

// parseGoal parses a request goal like "a(X,Y)" into an atom.
func parseGoal(goal string) (ast.Atom, error) {
	goal = strings.TrimSpace(goal)
	goal = strings.TrimSuffix(goal, ".")
	goal = strings.TrimPrefix(goal, "?-")
	if goal == "" {
		return ast.Atom{}, errors.New("empty goal")
	}
	res, err := parser.Parse("?- " + goal + ".")
	if err != nil {
		return ast.Atom{}, fmt.Errorf("parsing goal %q: %w", goal, err)
	}
	if len(res.Program.Rules) > 0 || len(res.Facts) > 0 {
		return ast.Atom{}, fmt.Errorf("goal %q is not a single atom", goal)
	}
	return res.Program.Query, nil
}

// goalKey canonicalizes a goal for the compiled-program cache:
// predicate, arity, constants, anonymous positions, and the variable
// repetition pattern (variables renamed by first occurrence). Two goals
// with the same key optimize to the same program and select the same
// answers, so a cached entry is interchangeable between them.
//
// Constant names are arbitrary (quoted constants may contain commas,
// colons, anything), so each variable-length field is length-prefixed:
// the encoding is prefix-free and two distinct goals can never share a
// key. A plain separator-joined encoding collided — p('x,c:y','z') and
// p('x','y,c:z') serialized identically, and one goal was served the
// other's cached program.
func goalKey(g ast.Atom) string {
	var sb strings.Builder
	pred := g.Key()
	fmt.Fprintf(&sb, "%d:%s", len(pred), pred)
	first := make(map[string]int)
	for _, t := range g.Args {
		switch {
		case t.Kind == ast.Constant:
			fmt.Fprintf(&sb, ",c%d:%s", len(t.Name), t.Name)
		case t.IsAnon():
			sb.WriteString(",_")
		default:
			i, ok := first[t.Name]
			if !ok {
				i = len(first)
				first[t.Name] = i
			}
			fmt.Fprintf(&sb, ",v%d", i)
		}
	}
	return sb.String()
}

// compile returns the (possibly optimized) program for one goal, cached
// by the goal's canonical shape plus the planner setting the evaluation
// will run with: a per-request reorder override must never be served an
// entry cached under the other setting (today the compiled program is
// planner-independent, but the key guarantees no cross-contamination as
// the planner becomes binding-pattern-aware).
func (s *Server) compile(goal ast.Atom, reorder bool) (*compiled, bool, error) {
	key := goalKey(goal)
	if reorder {
		key += ",plan=on"
	} else {
		key += ",plan=off"
	}
	if c, ok := s.cache.Load(key); ok {
		s.reg.CacheHit()
		return c.(*compiled), true, nil
	}
	s.reg.CacheMiss()
	prog := s.base.Clone()
	prog.Query = goal
	c := &compiled{prog: prog, goal: goal}
	// Goals over base relations (and programs served with -noopt)
	// evaluate as written; the optimizer's pipeline assumes the query
	// predicate is derived.
	if !s.cfg.NoOptimize && prog.Derived[goal.Key()] {
		res, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
		if err != nil {
			return nil, false, err
		}
		c = &compiled{prog: res.Program, goal: res.Program.Query, empty: res.EmptyAnswer}
	}
	actual, _ := s.cache.LoadOrStore(key, c)
	return actual.(*compiled), false, nil
}

// queryRequest is the POST /query body.
type queryRequest struct {
	// Goal is the atom to evaluate, e.g. "a(X,Y)" or "a(1,Y)". Empty
	// uses the served program's own "?- goal." if it has one.
	Goal string `json:"goal"`
	// TimeoutMS bounds this query's evaluation in milliseconds
	// (capped by the server's MaxTimeout).
	TimeoutMS int64 `json:"timeout_ms"`
	// Trace includes the per-rule metrics of this evaluation in the
	// response, plus the per-pass records with the join orders the
	// runtime planner chose and the cardinalities that justified them.
	Trace bool `json:"trace"`
	// Reorder overrides the server's join-planner default for this query:
	// true forces the planner on, false forces it off, absent uses the
	// server setting (on unless -no-reorder).
	Reorder *bool `json:"reorder,omitempty"`
}

// statsJSON mirrors engine.Stats with stable JSON names.
type statsJSON struct {
	Iterations    int   `json:"iterations"`
	FactsDerived  int   `json:"facts_derived"`
	Derivations   int64 `json:"derivations"`
	DuplicateHits int64 `json:"duplicate_hits"`
	JoinProbes    int64 `json:"join_probes"`
	RulesRetired  int   `json:"rules_retired"`
}

// queryResponse is the POST /query success body. Partial results (a
// timeout, a cancellation, a fact limit) are still 200s: the answers
// are sound, Partial is set, and Incomplete names what stopped the
// evaluation.
type queryResponse struct {
	Request string `json:"request"`
	// TraceID correlates this response with the flight recorder, the
	// slow-query log, and histogram exemplars ("" when tracing is
	// disabled).
	TraceID        string            `json:"trace,omitempty"`
	Goal           string            `json:"goal"`
	Answers        [][]string        `json:"answers"`
	Count          int               `json:"count"`
	Partial        bool              `json:"partial,omitempty"`
	Incomplete     string            `json:"incomplete,omitempty"`
	ProvedEmpty    bool              `json:"proved_empty,omitempty"`
	Cached         bool              `json:"cached"`
	Stats          statsJSON         `json:"stats"`
	ElapsedSeconds float64           `json:"elapsed_seconds"`
	Rules          []trace.RuleStats `json:"rules,omitempty"`
	// Passes, under request Trace, is the pass timeline: facts per pass,
	// delta sizes, and — with the join planner on — the per-version
	// orders chosen at each barrier with their justifying cardinalities.
	Passes []trace.PassStats `json:"passes,omitempty"`
}

type errorResponse struct {
	Request string `json:"request"`
	// TraceID correlates the failure with the flight recorder and logs
	// ("" when tracing is disabled).
	TraceID string `json:"trace,omitempty"`
	Error   string `json:"error"`
}

// beginTrace opens a span builder for one request: the trace id comes
// from the client's W3C traceparent header when present (so client
// attempt spans and server trees join up), else is freshly generated.
// With the recorder disabled this returns nil without touching the
// header or the entropy pool — the zero-allocation path.
func (s *Server) beginTrace(r *http.Request, id, verb, detail string) *tracespan.Builder {
	if s.rec == nil {
		return nil
	}
	tid, parent, ok := tracespan.ParseTraceparent(r.Header.Get("traceparent"))
	if !ok {
		tid = tracespan.NewTraceID()
	}
	return s.rec.Begin(tid, parent, id, verb, detail)
}

// finishTrace seals a request's trace, publishes it to the flight
// recorder, and emits the slow-query log line when the request crossed
// the configured threshold. Nil-safe (no recorder, or reject paths that
// never opened a builder).
func (s *Server) finishTrace(tb *tracespan.Builder, status int, outcome string) {
	req := tb.Finish(status, outcome)
	if req == nil || s.cfg.SlowQuery <= 0 || req.Duration < s.cfg.SlowQuery {
		return
	}
	s.log.LogAttrs(context.Background(), slog.LevelWarn, "slow query",
		slog.String("request", req.ID),
		slog.String("trace", req.TraceID),
		slog.String("verb", req.Verb),
		slog.String("detail", req.Detail),
		slog.Int("status", req.Status),
		slog.String("outcome", req.Outcome),
		slog.Duration("elapsed", req.Duration),
		slog.Duration("staged", req.StageSum()),
		slog.Any("spans", slowSpans(req)))
}

// slowSpan is one line of the slow-query breakdown: name, self range,
// and attrs flattened to "k=v" — compact enough for a log line, rich
// enough to see where the time went without opening /debug/requests.
type slowSpan struct {
	Name     string        `json:"name"`
	Parent   int           `json:"parent"`
	Start    time.Duration `json:"start"`
	Duration time.Duration `json:"duration"`
	Attrs    string        `json:"attrs,omitempty"`
}

func slowSpans(req *tracespan.Request) []slowSpan {
	out := make([]slowSpan, len(req.Spans))
	for i := range req.Spans {
		sp := &req.Spans[i]
		var attrs strings.Builder
		for j, a := range sp.Attrs {
			if j > 0 {
				attrs.WriteByte(' ')
			}
			attrs.WriteString(a.Key)
			attrs.WriteByte('=')
			attrs.WriteString(a.Value)
		}
		out[i] = slowSpan{
			Name: sp.Name, Parent: sp.Parent,
			Start: sp.Start, Duration: sp.End - sp.Start,
			Attrs: attrs.String(),
		}
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// errStatus classifies a request-processing error: client mistakes
// (malformed goals, arity mismatches, programs the pipeline rejects)
// are 400s; recovered library panics are 500s.
func errStatus(err error) int {
	var internal *ierr.InternalError
	if errors.As(err, &internal) {
		return http.StatusInternalServerError
	}
	return http.StatusBadRequest
}

// retryAfterSeconds is the Retry-After hint sent with every rejection:
// the queue timeout rounded up to whole seconds (min 1) — by then the
// backlog that caused the rejection has either drained or been shed.
func (s *Server) retryAfterSeconds() int {
	secs := int((s.cfg.QueueTimeout + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// reject refuses a request before evaluation: 429/503 plus Retry-After,
// counted under rejected_total{reason,class}, never under the query or
// mutation outcome counters — a rejected request did not reach the
// engine, and folding rejections into error outcomes would poison the
// latency and outcome metrics exactly when they matter most.
func (s *Server) reject(w http.ResponseWriter, r *http.Request, id string, class admitClass, reason string, status int, err error, tb *tracespan.Builder) {
	s.reg.Rejected(reason, class.String())
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	s.log.LogAttrs(r.Context(), slog.LevelWarn, "request rejected",
		slog.String("request", id),
		slog.String("trace", tb.TraceID()),
		slog.String("class", class.String()),
		slog.String("reason", reason),
		slog.Int("status", status),
		slog.String("error", err.Error()))
	writeJSON(w, status, errorResponse{Request: id, TraceID: tb.TraceID(), Error: err.Error()})
	s.finishTrace(tb, status, "rejected:"+reason)
}

// rejectAdmit maps an admission error onto the wire: queue_full is 429
// (the server is out of queue capacity — back off), queue_timeout is
// 503 (we waited the bounded time and no slot freed). A shed request —
// its own deadline died while it queued — also gets a 503, but is
// counted only in shed_total (the controller already did), not in
// rejected_total.
func (s *Server) rejectAdmit(w http.ResponseWriter, r *http.Request, id string, class admitClass, err error, tb *tracespan.Builder) {
	switch {
	case errors.Is(err, errQueueFull):
		s.reject(w, r, id, class, "queue_full", http.StatusTooManyRequests, err, tb)
	case errors.Is(err, errQueueTimeout):
		s.reject(w, r, id, class, "queue_timeout", http.StatusServiceUnavailable, err, tb)
	default: // errShed
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "request shed",
			slog.String("request", id),
			slog.String("trace", tb.TraceID()),
			slog.String("class", class.String()),
			slog.String("error", err.Error()))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{Request: id, TraceID: tb.TraceID(), Error: err.Error()})
		s.finishTrace(tb, http.StatusServiceUnavailable, "shed")
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	id := fmt.Sprintf("q%d", s.reqSeq.Add(1))
	tb := s.beginTrace(r, id, "query", "")
	if !s.enter() {
		s.reject(w, r, id, admitQuery, "draining", http.StatusServiceUnavailable,
			errors.New("server is draining"), tb)
		return
	}
	defer s.inflight.Done()

	start := s.now()
	fail := func(status int, err error) {
		elapsed := s.now().Sub(start)
		s.reg.ObserveError(elapsed, tb.TraceID())
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "query failed",
			slog.String("request", id),
			slog.Int("status", status),
			slog.String("error", err.Error()),
			slog.Duration("elapsed", elapsed))
		writeJSON(w, status, errorResponse{Request: id, TraceID: tb.TraceID(), Error: err.Error()})
		s.finishTrace(tb, status, "error")
	}

	// Chaos site: the failpoint-tagged suite injects handler latency
	// here to simulate slow evaluation without burning CPU.
	if err := failpoint.Inject("server/slow"); err != nil {
		fail(http.StatusInternalServerError, err)
		return
	}

	decodeSpan := tb.Start("decode")
	var req queryRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		fail(http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			fail(http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
	}

	var goal ast.Atom
	if req.Goal == "" {
		if s.base.Query.Pred == "" {
			fail(http.StatusBadRequest, errors.New("no goal in request and the served program has no ?- query"))
			return
		}
		goal = s.base.Query
	} else {
		goal, err = parseGoal(req.Goal)
		if err != nil {
			fail(http.StatusBadRequest, err)
			return
		}
	}
	tb.End(decodeSpan)
	tb.SetDetail(goal.String())

	// The join planner is on by default; -no-reorder flips the default
	// and the request's "reorder" field overrides either way.
	reorder := !s.cfg.NoReorder
	if req.Reorder != nil {
		reorder = *req.Reorder
	}

	compileSpan := tb.Start("compile")
	c, cached, err := s.compile(goal, reorder)
	if err != nil {
		fail(errStatus(err), err)
		return
	}
	tb.End(compileSpan)
	if cached {
		tb.Attr(compileSpan, "cache", "hit")
	} else {
		tb.Attr(compileSpan, "cache", "miss")
	}
	if c.empty {
		tb.Attr(compileSpan, "proved_empty", "true")
		elapsed := s.now().Sub(start)
		s.reg.ObserveQuery(engine.Stats{}, nil, elapsed, obs.OutcomeOK, tb.TraceID())
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "query",
			slog.String("request", id),
			slog.String("goal", goal.String()),
			slog.Bool("proved_empty", true),
			slog.Duration("elapsed", elapsed))
		writeJSON(w, http.StatusOK, queryResponse{
			Request: id, TraceID: tb.TraceID(), Goal: c.goal.String(), Answers: [][]string{},
			ProvedEmpty: true, Cached: cached, ElapsedSeconds: elapsed.Seconds(),
		})
		s.finishTrace(tb, http.StatusOK, "ok")
		return
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout == 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}

	// The evaluation context merges three cancellation sources: the
	// client hanging up (r.Context), a server-wide drain abort, and the
	// per-request deadline. The causes carry the request id, so the
	// engine's wrapped errors name the query they stopped.
	evalCtx, cancel := context.WithCancelCause(r.Context())
	defer cancel(nil)
	stop := context.AfterFunc(s.abortCtx, func() {
		cancel(context.Cause(s.abortCtx))
	})
	defer stop()
	if timeout > 0 {
		var tcancel context.CancelFunc
		evalCtx, tcancel = context.WithTimeoutCause(evalCtx, timeout,
			fmt.Errorf("request %s exceeded its %s timeout", id, timeout))
		defer tcancel()
	}

	// Bounded admission: take an evaluation slot now, wait briefly in
	// the query-class queue, or get rejected/shed. The wait is bounded
	// by both the queue timeout and the request's own deadline.
	admitSpan := tb.Start("queue")
	if aerr := s.adm.admit(evalCtx, admitQuery); aerr != nil {
		tb.End(admitSpan)
		s.rejectAdmit(w, r, id, admitQuery, aerr, tb)
		return
	}
	tb.End(admitSpan)
	defer s.adm.release()

	finish := s.reg.QueryStarted()
	defer finish()

	opts := existdlog.EvalOptions{
		BooleanCut:   true,
		Trace:        true,
		MaxFacts:     s.cfg.MaxFacts,
		PassTimes:    tb != nil,
		ReorderJoins: reorder,
	}
	if s.cfg.Parallel {
		opts.Strategy = existdlog.Parallel
	}
	// Pin the store version once: the whole evaluation sees one immutable
	// base state, no matter how many writes install newer versions
	// meanwhile.
	evalSpan := tb.Start("eval")
	res, evalErr := existdlog.EvalContext(evalCtx, c.prog, s.store.Current().EDB, opts)
	tb.End(evalSpan)
	if res != nil {
		s.graftPassSpans(tb, evalSpan, res)
	}
	elapsed := s.now().Sub(start)
	if evalErr != nil && (res == nil || !res.Partial) {
		status := errStatus(evalErr)
		if errors.Is(evalErr, existdlog.ErrArityMismatch) {
			status = http.StatusBadRequest
		}
		fail(status, evalErr)
		return
	}

	outcome := obs.OutcomeOK
	if res.Partial {
		outcome = obs.OutcomePartial
	}
	s.reg.ObserveQuery(res.Stats, res.Trace, elapsed, outcome, tb.TraceID())

	respondSpan := tb.Start("respond")
	answers := res.Answers(c.goal)
	if answers == nil {
		answers = [][]string{}
	}
	resp := queryResponse{
		Request:        id,
		TraceID:        tb.TraceID(),
		Goal:           c.goal.String(),
		Answers:        answers,
		Count:          len(answers),
		Partial:        res.Partial,
		Incomplete:     res.Incomplete,
		Cached:         cached,
		ElapsedSeconds: elapsed.Seconds(),
		Stats: statsJSON{
			Iterations:    res.Stats.Iterations,
			FactsDerived:  res.Stats.FactsDerived,
			Derivations:   res.Stats.Derivations,
			DuplicateHits: res.Stats.DuplicateHits,
			JoinProbes:    res.Stats.JoinProbes,
			RulesRetired:  res.Stats.RulesRetired,
		},
	}
	if req.Trace && res.Trace != nil {
		resp.Rules = res.Trace.Rules
		resp.Passes = res.Trace.Passes
	}
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "query",
		slog.String("request", id),
		slog.String("goal", c.goal.String()),
		slog.String("outcome", string(outcome)),
		slog.Int("answers", len(answers)),
		slog.Int("facts", res.Stats.FactsDerived),
		slog.Bool("cached", cached),
		slog.Duration("elapsed", elapsed))
	writeJSON(w, http.StatusOK, resp)
	tb.End(respondSpan)
	s.finishTrace(tb, http.StatusOK, string(outcome))
}

// graftPassSpans converts an evaluation's per-pass wall-clock offsets
// (engine.Result.PassTimes, measured from evaluation start) into child
// spans of the eval span, annotated with the pass metrics the trace
// collector recorded at the same barriers.
func (s *Server) graftPassSpans(tb *tracespan.Builder, evalSpan int, res *engine.Result) {
	if tb == nil || len(res.PassTimes) == 0 {
		return
	}
	base := tb.SpanStart(evalSpan)
	prev := time.Duration(0)
	for i, off := range res.PassTimes {
		sp := tb.Add("pass "+strconv.Itoa(i+1), evalSpan, base+prev, base+off)
		if res.Trace != nil && i < len(res.Trace.Passes) {
			ps := &res.Trace.Passes[i]
			tb.Attr(sp, "facts", strconv.Itoa(ps.Facts))
			tb.Attr(sp, "versions", strconv.Itoa(ps.Versions))
			if len(ps.Cuts) > 0 {
				tb.Attr(sp, "cuts", strconv.Itoa(len(ps.Cuts)))
			}
		}
		prev = off
	}
}

// mutationRequest is the POST /update and POST /retract body.
type mutationRequest struct {
	// Facts are ground atoms in source syntax, e.g. "e(1,2)" or
	// "edge('a,b',c)". /update adds them to the base facts, /retract
	// removes them; derived predicates are rejected.
	Facts []string `json:"facts"`
	// TimeoutMS bounds the wait for the write to become durable and
	// applied (0 = the server's default timeout).
	TimeoutMS int64 `json:"timeout_ms"`
}

// mutationResponse acknowledges a durable, applied write. Seq names the
// first store version that includes it: a subsequent query observes
// this mutation's effect.
type mutationResponse struct {
	Request        string  `json:"request"`
	TraceID        string  `json:"trace,omitempty"`
	Op             string  `json:"op"`
	Facts          int     `json:"facts"`
	Seq            uint64  `json:"seq"`
	ElapsedSeconds float64 `json:"elapsed_seconds"`
}

// parseFacts parses the request's fact strings into WAL facts.
func parseFacts(in []string) ([]wal.Fact, error) {
	if len(in) == 0 {
		return nil, errors.New("no facts in request")
	}
	out := make([]wal.Fact, 0, len(in))
	for _, src := range in {
		src = strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(src), "."))
		res, err := parser.Parse(src + ".")
		if err != nil {
			return nil, fmt.Errorf("parsing fact %q: %w", src, err)
		}
		if len(res.Facts) != 1 || len(res.Program.Rules) > 0 || res.Program.Query.Pred != "" {
			return nil, fmt.Errorf("%q is not a single ground fact", src)
		}
		atom := res.Facts[0]
		row := make([]string, len(atom.Args))
		for i, t := range atom.Args {
			if t.Kind != ast.Constant {
				return nil, fmt.Errorf("fact %q is not ground", src)
			}
			row[i] = t.Name
		}
		out = append(out, wal.Fact{Key: atom.Key(), Row: row})
	}
	return out, nil
}

// handleMutation serves POST /update and POST /retract: parse the
// facts, submit them to the store's applier, and acknowledge once the
// write is durable and an including version is installed. Mutations are
// refused while draining; one already accepted still completes — the
// applier is never aborted mid-batch, so the drain abort that cancels
// in-flight queries does not touch writes.
func (s *Server) handleMutation(w http.ResponseWriter, r *http.Request) {
	op := wal.OpUpdate
	if r.URL.Path == "/retract" {
		op = wal.OpRetract
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "POST only"})
		return
	}
	id := fmt.Sprintf("m%d", s.reqSeq.Add(1))
	tb := s.beginTrace(r, id, string(op), "")
	if !s.enter() {
		s.reject(w, r, id, admitMutation, "draining", http.StatusServiceUnavailable,
			errors.New("server is draining"), tb)
		return
	}
	defer s.inflight.Done()

	// Fail fast in degraded mode: the WAL is refusing writes, so a
	// mutation cannot be made durable — reject it before it occupies
	// queue capacity that reads could use.
	if deg, cause := s.store.Degraded(); deg {
		s.reject(w, r, id, admitMutation, "degraded", http.StatusServiceUnavailable,
			fmt.Errorf("%w: %s", ErrDegraded, cause), tb)
		return
	}

	start := s.now()
	fail := func(status int, err error) {
		s.reg.ObserveMutation(string(op), false)
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "mutation failed",
			slog.String("request", id),
			slog.String("op", string(op)),
			slog.Int("status", status),
			slog.String("error", err.Error()))
		writeJSON(w, status, errorResponse{Request: id, TraceID: tb.TraceID(), Error: err.Error()})
		s.finishTrace(tb, status, "error")
	}

	decodeSpan := tb.Start("decode")
	var req mutationRequest
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		fail(http.StatusBadRequest, fmt.Errorf("reading body: %w", err))
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &req); err != nil {
			fail(http.StatusBadRequest, fmt.Errorf("decoding request: %w", err))
			return
		}
	}
	facts, err := parseFacts(req.Facts)
	if err != nil {
		fail(http.StatusBadRequest, err)
		return
	}
	tb.End(decodeSpan)
	tb.SetDetail(strconv.Itoa(len(facts)) + " facts")

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if s.cfg.MaxTimeout > 0 && (timeout == 0 || timeout > s.cfg.MaxTimeout) {
		timeout = s.cfg.MaxTimeout
	}
	ctx := r.Context()
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}

	// Mutations share the slot pool with queries but queue at lower
	// priority: under contention reads keep flowing while writes wait,
	// are bounded, or are rejected for the (idempotent) client to retry.
	admitSpan := tb.Start("queue")
	if aerr := s.adm.admit(ctx, admitMutation); aerr != nil {
		tb.End(admitSpan)
		s.rejectAdmit(w, r, id, admitMutation, aerr, tb)
		return
	}
	tb.End(admitSpan)
	defer s.adm.release()

	storeSpan := tb.Start("store")
	seq, enq, timing, err := s.store.MutateTraced(ctx, Mutation{
		Op: op, Facts: facts, ID: r.Header.Get("Idempotency-Key"),
		Req: id, Trace: tb.TraceID(),
	})
	tb.End(storeSpan)
	s.graftStoreSpans(tb, storeSpan, enq, timing)
	if err != nil {
		if errors.Is(err, ErrDegraded) {
			// The WAL failed under us (possibly mid-batch, after this
			// mutation was queued): nothing was applied or acked.
			s.reject(w, r, id, admitMutation, "degraded", http.StatusServiceUnavailable, err, tb)
			return
		}
		status := errStatus(err)
		if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			status = http.StatusServiceUnavailable
		}
		fail(status, err)
		return
	}
	elapsed := s.now().Sub(start)
	s.reg.ObserveMutation(string(op), true)
	s.log.LogAttrs(r.Context(), slog.LevelInfo, "mutation",
		slog.String("request", id),
		slog.String("op", string(op)),
		slog.Int("facts", len(facts)),
		slog.Uint64("seq", seq),
		slog.Duration("elapsed", elapsed))
	writeJSON(w, http.StatusOK, mutationResponse{
		Request:        id,
		TraceID:        tb.TraceID(),
		Op:             string(op),
		Facts:          len(facts),
		Seq:            seq,
		ElapsedSeconds: elapsed.Seconds(),
	})
	s.finishTrace(tb, http.StatusOK, "ok")
}

// graftStoreSpans converts the applier's batch timing stamps into child
// spans of the handler's "store" span: the queue-to-applier handoff,
// the batched maintenance pass, the WAL append and group-commit fsync,
// the version install (checkpoint policy included), and the ack wait.
func (s *Server) graftStoreSpans(tb *tracespan.Builder, storeSpan int, enq time.Time, t *batchTiming) {
	if tb == nil || t == nil {
		return
	}
	qStart := tb.OffsetOf(enq)
	deq := tb.OffsetOf(t.dequeued)
	sp := tb.Add("applier_queue", storeSpan, qStart, deq)
	tb.Attr(sp, "batch", strconv.Itoa(t.size))
	applied := tb.OffsetOf(t.applied)
	tb.Add("maintain", storeSpan, deq, applied)
	installFrom := applied
	if !t.walDone.IsZero() {
		walDone := tb.OffsetOf(t.walDone)
		synced := tb.OffsetOf(t.synced)
		tb.Add("wal_append", storeSpan, applied, walDone)
		tb.Add("wal_fsync", storeSpan, walDone, synced)
		installFrom = synced
	}
	installed := tb.OffsetOf(t.installed)
	tb.Add("install", storeSpan, installFrom, installed)
	tb.Add("ack", storeSpan, installed, tb.Offset())
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.LogAttrs(r.Context(), slog.LevelWarn, "metrics scrape failed",
			slog.String("error", err.Error()))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	// Identity and uptime ride along (the liveness contract is only the
	// 200 and the first line; probes that grep "ok" are unaffected).
	b := s.reg.BuildInfo()
	fmt.Fprintf(w, "version: %s\ngo: %s\ncommit: %s\nuptime: %s\n",
		orUnknown(b.Version), orUnknown(b.GoVersion), orUnknown(b.Commit),
		s.reg.Uptime().Round(time.Second))
}

func orUnknown(s string) string {
	if s == "" {
		return "unknown"
	}
	return s
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if draining {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	// Degraded is not-ready with a reason: orchestrators can steer
	// writes elsewhere, but /query keeps answering from the last
	// installed version, so the process stays up.
	if deg, cause := s.store.Degraded(); deg {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintf(w, "degraded: %s\n", cause)
		return
	}
	fmt.Fprintln(w, "ready")
}

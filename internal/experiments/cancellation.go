package experiments

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"existdlog/internal/engine"
	"existdlog/internal/parser"
	"existdlog/internal/workload"
)

// CancellationRow is one measurement of the abort path: evaluate a heavy
// transitive closure under a deadline and record how long past the
// deadline the engine took to hand back the partial result, and how much
// of the fixpoint it had soundly derived by then.
type CancellationRow struct {
	Strategy string
	Deadline time.Duration
	Overrun  time.Duration // time from deadline expiry to return
	Facts    int           // facts in the partial result
	Partial  bool          // false when the run finished inside the deadline
}

// CancellationLatency measures the engine's abort latency (DESIGN.md §7):
// for each strategy and deadline, evaluate transitive closure over a
// dense cyclic graph — heavy enough that short deadlines always land
// mid-evaluation — and time the return past the deadline. The tentpole
// bound is 100ms; measured overruns are recorded in EXPERIMENTS.md.
func CancellationLatency(deadlines []time.Duration) ([]CancellationRow, error) {
	p, err := parser.ParseProgram(`
t(X,Y) :- e(X,Y).
t(X,Z) :- t(X,Y), e(Y,Z).
?- t(X,Y).
`)
	if err != nil {
		return nil, err
	}
	db := engine.NewDatabase()
	workload.Cycle(db, "e", 1200)

	strategies := []struct {
		name string
		opts engine.Options
	}{
		{"naive", engine.Options{Strategy: engine.Naive}},
		{"seminaive", engine.Options{Strategy: engine.SemiNaive}},
		{"parallel", engine.Options{Strategy: engine.Parallel}},
	}
	var rows []CancellationRow
	for _, s := range strategies {
		for _, d := range deadlines {
			ctx, cancel := context.WithTimeout(context.Background(), d)
			start := time.Now()
			res, err := engine.EvalContext(ctx, p, db, s.opts)
			elapsed := time.Since(start)
			cancel()
			row := CancellationRow{Strategy: s.name, Deadline: d}
			switch {
			case err == nil:
				row.Facts = res.Stats.FactsDerived
			case errors.Is(err, engine.ErrDeadline):
				row.Partial = true
				row.Overrun = elapsed - d
				if row.Overrun < 0 {
					row.Overrun = 0
				}
				row.Facts = res.Stats.FactsDerived
			default:
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatCancellationTable renders CancellationLatency rows as the aligned
// table bench -cancel prints and EXPERIMENTS.md records.
func FormatCancellationTable(rows []CancellationRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %10s %12s %10s %9s\n", "strategy", "deadline", "overrun", "facts", "partial")
	for _, r := range rows {
		overrun := "-"
		if r.Partial {
			overrun = r.Overrun.Round(10 * time.Microsecond).String()
		}
		fmt.Fprintf(&sb, "%-10s %10s %12s %10d %9v\n",
			r.Strategy, r.Deadline, overrun, r.Facts, r.Partial)
	}
	return sb.String()
}

// Package experiments defines the reproduction suite of EXPERIMENTS.md:
// one experiment per measurable claim of the paper (the paper, a PODS
// theory paper, has no numeric tables; its worked Examples 1-12 and
// performance claims define the artifacts — see DESIGN.md §4). Each
// experiment pairs program variants (original vs. successive
// optimizations) with workload sweeps and runs them through the harness,
// producing the tables EXPERIMENTS.md records. bench_test.go and the CLI
// `existdlog bench` both drive this package.
package experiments

import (
	"context"
	"errors"
	"fmt"
	"sort"

	"existdlog/internal/adorn"
	"existdlog/internal/ast"
	"existdlog/internal/deletion"
	"existdlog/internal/engine"
	"existdlog/internal/grammar"
	"existdlog/internal/harness"
	"existdlog/internal/magic"
	"existdlog/internal/parser"
	"existdlog/internal/uniform"
	"existdlog/internal/workload"
	"existdlog/internal/xform"
)

// Variant is a named program with its evaluation options.
type Variant struct {
	Name    string
	Program *ast.Program
	Opts    engine.Options
}

// Workload is a named extensional database constructor.
type Workload struct {
	Name  string
	Build func() *engine.Database
}

// Experiment is a full table: variants × workloads.
type Experiment struct {
	ID        string
	Title     string
	Claim     string // the paper claim the shape check verifies
	Variants  []Variant
	Workloads []Workload
	// CheckAnswers verifies all variants agree on the query answer count
	// per workload (the needed columns are the whole tuple for every
	// variant program here).
	CheckAnswers bool
}

// Run evaluates the full table.
func (e *Experiment) Run() ([]harness.Row, error) {
	return e.RunContext(context.Background())
}

// RunContext evaluates the table under a context. On cancellation or
// deadline expiry it returns the rows measured so far — including a
// partial-marked row for the evaluation that was cut — alongside the
// context error, so a deadline-bounded bench renders what it completed.
func (e *Experiment) RunContext(ctx context.Context) ([]harness.Row, error) {
	return e.RunRepeatContext(ctx, 1)
}

// RunRepeatContext is RunContext with each (variant, workload) cell
// evaluated repeat times: the row carries the mean elapsed time plus
// p50/p95/p99 latency quantiles (see harness.RunRepeatContext).
func (e *Experiment) RunRepeatContext(ctx context.Context, repeat int) ([]harness.Row, error) {
	var rows []harness.Row
	for _, wl := range e.Workloads {
		db := wl.Build()
		var answers = -1
		for _, v := range e.Variants {
			row, err := harness.RunRepeatContext(ctx, e.ID, wl.Name, v.Name, v.Program, db, v.Opts, repeat)
			if err != nil {
				if errors.Is(err, engine.ErrCanceled) || errors.Is(err, engine.ErrDeadline) {
					if row.Variant != "" {
						rows = append(rows, row)
					}
					return rows, err
				}
				return nil, err
			}
			rows = append(rows, row)
			if e.CheckAnswers {
				if answers == -1 {
					answers = row.Answers
				} else if answers != row.Answers {
					return nil, fmt.Errorf("%s/%s: variant %s answers %d, expected %d",
						e.ID, wl.Name, v.Name, row.Answers, answers)
				}
			}
		}
	}
	return rows, nil
}

// All returns the full experiment suite in order.
func All() ([]*Experiment, error) {
	ctors := []func() (*Experiment, error){
		E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11, E13,
	}
	var out []*Experiment
	for _, c := range ctors {
		e, err := c()
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func mustProg(src string) *ast.Program { return parser.MustParseProgram(src) }

// pipeline applies the requested subset of the optimization phases.
func pipeline(p *ast.Program, adornIt, split, project, unitAndDelete bool) (*ast.Program, error) {
	cur := p.Clone()
	var err error
	if adornIt {
		if cur, err = adorn.Adorn(cur); err != nil {
			return nil, err
		}
	}
	if split {
		if cur, err = xform.SplitComponents(cur); err != nil {
			return nil, err
		}
	}
	if project {
		if cur, err = xform.PushProjections(cur); err != nil {
			return nil, err
		}
	}
	if unitAndDelete {
		cur, _ = xform.AddCoveringUnitRules(cur)
		cur, _, err = deletion.DeleteRules(cur, deletion.Options{
			Mode: deletion.Lemma53, UniformTest: uniform.RuleRedundant})
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

// --- E1: Examples 1/3 — pushing the projection through transitive closure.

const e1Src = `
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`

// E1 isolates the Lemma 3.2 arity reduction: binary TC vs the unary
// projected recursion (deletion disabled so the recursion itself is
// measured).
func E1() (*Experiment, error) {
	orig := mustProg(e1Src)
	projected, err := pipeline(orig, true, true, true, false)
	if err != nil {
		return nil, err
	}
	trimmed, err := pipeline(orig, true, true, true, true)
	if err != nil {
		return nil, err
	}
	mk := func(name string, build func(db *engine.Database)) Workload {
		return Workload{name, func() *engine.Database {
			db := engine.NewDatabase()
			build(db)
			return db
		}}
	}
	return &Experiment{
		ID:    "E1",
		Title: "Examples 1/3: projection pushing makes TC unary",
		Claim: "arity reduction cuts facts produced and duplicate-elimination cost (§3.2)",
		Variants: []Variant{
			{"original(binary)", orig, engine.Options{}},
			{"projected(unary)", projected, engine.Options{BooleanCut: true}},
			{"projected+deleted", trimmed, engine.Options{BooleanCut: true}},
		},
		Workloads: []Workload{
			mk("chain-256", func(db *engine.Database) { workload.Chain(db, "p", 256) }),
			mk("chain-1024", func(db *engine.Database) { workload.Chain(db, "p", 1024) }),
			mk("cycle-256", func(db *engine.Database) { workload.Cycle(db, "p", 256) }),
			mk("rand-192x768", func(db *engine.Database) { workload.RandomDigraph(db, "p", 192, 768, 11) }),
			mk("tree-12", func(db *engine.Database) { workload.BinaryTree(db, "p", 12) }),
		},
		CheckAnswers: true,
	}, nil
}

// --- E2: Example 2 — boolean subqueries and the runtime cut.

const e2Src = `
p(X,U) :- q1(X,Y), q2(Y,Z), q3(U,V), q4(V), q5(W).
q4(X) :- q6(X).
q4(X) :- q4(Y), q7(Y,X).
?- p(X,_).
`

// E2 measures the connected-component split (§3.1): the q3/q4 subquery is
// disconnected from the head and becomes a boolean; q4 is itself a long
// recursion, so the paper's cascade ("if q4 does not appear anywhere else
// in the program, the rule defining it can also be discarded after B2 is
// shown true") abandons the whole subcomputation the moment one witness
// exists.
func E2() (*Experiment, error) {
	orig := mustProg(e2Src)
	split, err := pipeline(orig, true, true, true, false)
	if err != nil {
		return nil, err
	}
	mk := func(n int) Workload {
		return Workload{fmt.Sprintf("joinload-%d", n), func() *engine.Database {
			db := engine.NewDatabase()
			workload.Chain(db, "q1", n)
			workload.Chain(db, "q2", n)
			workload.RandomDigraph(db, "q3", n, 2*n, 7)
			db.Add("q6", "0") // one seed; the q7 closure does the rest
			workload.Chain(db, "q7", n)
			db.Add("q5", "w")
			return db
		}}
	}
	return &Experiment{
		ID:    "E2",
		Title: "Example 2: existential subqueries as booleans, runtime cut",
		Claim: "a boolean rule leaves the fixpoint once proven (§3.1)",
		Variants: []Variant{
			{"original", orig, engine.Options{}},
			{"split,no-cut", split, engine.Options{}},
			{"split,cut", split, engine.Options{BooleanCut: true}},
		},
		Workloads: []Workload{mk(32), mk(96), mk(192)},
	}, nil
}

// --- E3: Examples 5/6 — uniform query equivalence removes the recursion.

const e3Src = `
a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,_).
`

// E3 is the left-linear closure whose existential query collapses to a
// single non-recursive rule (Example 6): the asymptotic gap grows with
// input size.
func E3() (*Experiment, error) {
	orig := mustProg(e3Src)
	adorned, err := pipeline(orig, true, true, true, false)
	if err != nil {
		return nil, err
	}
	trimmed, err := pipeline(orig, true, true, true, true)
	if err != nil {
		return nil, err
	}
	if len(trimmed.Rules) != 1 {
		return nil, fmt.Errorf("E3: expected the 1-rule program of Example 6, got\n%s", trimmed)
	}
	mk := func(name string, build func(db *engine.Database)) Workload {
		return Workload{name, func() *engine.Database {
			db := engine.NewDatabase()
			build(db)
			return db
		}}
	}
	return &Experiment{
		ID:    "E3",
		Title: "Examples 5/6: rule deletion makes the query non-recursive",
		Claim: "uniform query equivalence deletes rules uniform equivalence cannot (§4-5)",
		Variants: []Variant{
			{"original(binary TC)", orig, engine.Options{}},
			{"adorned+projected", adorned, engine.Options{}},
			{"trimmed(non-recursive)", trimmed, engine.Options{}},
		},
		Workloads: []Workload{
			mk("chain-256", func(db *engine.Database) { workload.Chain(db, "p", 256) }),
			mk("chain-1024", func(db *engine.Database) { workload.Chain(db, "p", 1024) }),
			mk("rand-256x1024", func(db *engine.Database) { workload.RandomDigraph(db, "p", 256, 1024, 17) }),
			mk("grid-24", func(db *engine.Database) { workload.Grid(db, "p", 24) }),
		},
	}, nil
}

// --- E4: Example 7 — summary-based deletion trims 7 rules to 3.

const e4Src = `
p@nd(X) :- p@nn(X,Y).
p@nd(X) :- p1@nn(X,Z), b4(Z).
p@nd(X) :- b1(X,Y).
p@nn(X,Y) :- p1@nn(X,Z), b4(Z), b1(Z,Y).
p@nn(X,Y) :- b5(X,Y).
p1@nn(X,Z) :- p@nn(X,U), b2(U,W,Z).
p1@nn(X,Z) :- p@nd(X), b3(U,W,Z).
?- p@nd(X).
`

// E4 measures Example 7: Lemma 5.1 with the unit and trivial-unit rules
// discards the auxiliary recursion through p1.
func E4() (*Experiment, error) {
	orig := mustProg(e4Src)
	trimmed, _, err := deletion.DeleteRules(orig, deletion.Options{Mode: deletion.Lemma51})
	if err != nil {
		return nil, err
	}
	if len(trimmed.Rules) != 3 {
		return nil, fmt.Errorf("E4: expected 3 rules, got\n%s", trimmed)
	}
	mk := func(n int) Workload {
		return Workload{fmt.Sprintf("rand-%d", n), func() *engine.Database {
			db := engine.NewDatabase()
			workload.Relation(db, "b1", 2, n, 2*n, 3)
			workload.Relation(db, "b2", 3, n, 2*n, 5)
			workload.Relation(db, "b3", 3, n, 2*n, 7)
			workload.Relation(db, "b4", 1, n, n, 9)
			workload.Relation(db, "b5", 2, n, 2*n, 11)
			return db
		}}
	}
	return &Experiment{
		ID:    "E4",
		Title: "Example 7: summary deletion, 7 rules to 3",
		Claim: "Lemma 5.1 discards the auxiliary recursion (§5)",
		Variants: []Variant{
			{"original(7 rules)", orig, engine.Options{}},
			{"trimmed(3 rules)", trimmed, engine.Options{}},
		},
		Workloads:    []Workload{mk(32), mk(128), mk(512)},
		CheckAnswers: true,
	}, nil
}

// --- E5: Example 8 — compile-time empty answer.

const e5Src = `
p@nd(X) :- p@nn(X,Y).
p@nn(X,Y) :- p1@nnn(X,Z,U), g1(Z,U,Y).
p@nn(X,Y) :- p1@nnn(X,Z,U), g1(U,Z,Y).
p1@nnn(X,Z,U) :- p1@nnn(X,V,W), g2(V,W,Z,U).
p1@nnn(X,Z,U) :- p@nn(X,Y), g2(Y,Y,Z,U).
?- p@nd(X).
`

// E5 measures Example 8: the optimizer empties the program, so the
// optimized variant performs zero joins where the original runs a full
// (fruitless) fixpoint.
func E5() (*Experiment, error) {
	orig := mustProg(e5Src)
	trimmed, _, err := deletion.DeleteRules(orig, deletion.Options{Mode: deletion.Lemma51})
	if err != nil {
		return nil, err
	}
	if len(trimmed.Rules) != 0 {
		return nil, fmt.Errorf("E5: expected the empty program, got\n%s", trimmed)
	}
	mk := func(n int) Workload {
		return Workload{fmt.Sprintf("rand-%d", n), func() *engine.Database {
			db := engine.NewDatabase()
			workload.Relation(db, "g1", 3, n, 4*n, 19)
			workload.Relation(db, "g2", 4, n, 4*n, 23)
			return db
		}}
	}
	return &Experiment{
		ID:    "E5",
		Title: "Example 8: the answer is proved empty at compile time",
		Claim: "productivity cleanup cascades until no rule defines the query (§5)",
		Variants: []Variant{
			{"original", orig, engine.Options{}},
			{"trimmed(empty)", trimmed, engine.Options{}},
		},
		Workloads:    []Workload{mk(64), mk(256)},
		CheckAnswers: true,
	}, nil
}

// --- E6: Example 10 — Lemma 5.3 beats Lemma 5.1.

const e6Src = `
p@nd(X,Y) :- p@nn(X,Y).
p@nd(X,Y) :- p@nn(Y,X).
p@nn(X,Y) :- q@nn(X,Y).
p@nn(X,Y) :- q@nn(Y,X).
q@nn(X,Y) :- p@nn(X,Y).
p@nn(X,Y) :- b(X,Y).
?- p@nd(X,_).
`

// E6 measures Example 10: the symmetric q-cycle that only the closure of
// unit projections (Lemma 5.3) removes.
func E6() (*Experiment, error) {
	orig := mustProg(e6Src)
	l51, _, err := deletion.DeleteRules(orig, deletion.Options{Mode: deletion.Lemma51})
	if err != nil {
		return nil, err
	}
	l53, _, err := deletion.DeleteRules(orig, deletion.Options{Mode: deletion.Lemma53})
	if err != nil {
		return nil, err
	}
	if len(l53.Rules) >= len(l51.Rules) {
		return nil, fmt.Errorf("E6: Lemma 5.3 should trim more than 5.1 (%d vs %d)",
			len(l53.Rules), len(l51.Rules))
	}
	mk := func(n int) Workload {
		return Workload{fmt.Sprintf("rand-%d", n), func() *engine.Database {
			db := engine.NewDatabase()
			workload.Relation(db, "b", 2, n, 3*n, 29)
			return db
		}}
	}
	return &Experiment{
		ID:    "E6",
		Title: "Example 10: Lemma 5.3 deletes what Lemma 5.1 cannot",
		Claim: "composing unit rules justifies more deletions (§5)",
		Variants: []Variant{
			{"original(6 rules)", orig, engine.Options{}},
			{fmt.Sprintf("lemma5.1(%d rules)", len(l51.Rules)), l51, engine.Options{}},
			{fmt.Sprintf("lemma5.3(%d rules)", len(l53.Rules)), l53, engine.Options{}},
		},
		Workloads:    []Workload{mk(64), mk(256)},
		CheckAnswers: true,
	}, nil
}

// --- E7: Examples 9/11 — the auxiliary-predicate rewrite exposes a
// deletion.

const e7Src = `
p@nd(X) :- q@nnnn(X,Y,Z,U).
q@nnnn(X,Y,Z,U) :- t@nn(X,Y), g3(Y,Z,U).
p@nd(X) :- s@nnn(X,Z,U), g1(Z,U,Y).
s@nnn(X,Z,U) :- t@nn(X,W), g2(W,Z,U).
s@nnn(X,Z,U) :- q@nnnn(X,V,Z,U), g4(U,W).
t@nn(X,Y) :- b(X,Y).
?- p@nd(X).
`

// E7 measures Example 11: after the (guessed) rewrite through q, Lemma 5.1
// deletes the subsumed rule.
func E7() (*Experiment, error) {
	orig := mustProg(e7Src)
	trimmed, _, err := deletion.DeleteRules(orig, deletion.Options{Mode: deletion.Lemma51})
	if err != nil {
		return nil, err
	}
	if len(trimmed.Rules) >= len(orig.Rules) {
		return nil, fmt.Errorf("E7: expected a deletion, got\n%s", trimmed)
	}
	mk := func(n int) Workload {
		return Workload{fmt.Sprintf("rand-%d", n), func() *engine.Database {
			db := engine.NewDatabase()
			workload.Relation(db, "b", 2, n, 2*n, 31)
			workload.Relation(db, "g1", 3, n, 2*n, 37)
			workload.Relation(db, "g2", 3, n, 2*n, 41)
			workload.Relation(db, "g3", 3, n, 2*n, 43)
			workload.Relation(db, "g4", 2, n, 2*n, 47)
			return db
		}}
	}
	return &Experiment{
		ID:    "E7",
		Title: "Examples 9/11: rewriting exposes a subsumed rule to Lemma 5.1",
		Claim: "non-unit subsumption becomes unit after introducing q (§5, §6)",
		Variants: []Variant{
			{"rewritten(6 rules)", orig, engine.Options{}},
			{fmt.Sprintf("trimmed(%d rules)", len(trimmed.Rules)), trimmed, engine.Options{}},
		},
		Workloads:    []Workload{mk(32), mk(128)},
		CheckAnswers: true,
	}, nil
}

// --- E8: Example 12 — invariant-argument reduction.

const e8Src = `
query(X,Y) :- p(X,Y,Z).
p(X,Y,Z) :- up(X,X1), p(X1,Y1,Z), dn(Y1,Y), c(Z).
p(X,Y,Z) :- b(X,Y,Z).
?- query(X,Y).
`

// E8 measures Example 12: the ternary recursion with an invariant
// existential check becomes binary.
func E8() (*Experiment, error) {
	orig := mustProg(e8Src)
	adorned, err := adorn.Adorn(orig)
	if err != nil {
		return nil, err
	}
	reds := xform.FindInvariantReductions(adorned)
	if len(reds) != 1 {
		return nil, fmt.Errorf("E8: expected one invariant reduction, got %v", reds)
	}
	reduced, err := xform.ReduceInvariantArgument(adorned, reds[0].Base, reds[0].Pos)
	if err != nil {
		return nil, err
	}
	mk := func(depth, checks int) Workload {
		return Workload{fmt.Sprintf("updown-%d-%d", depth, checks), func() *engine.Database {
			db := engine.NewDatabase()
			workload.Chain(db, "up", depth)
			// dn mirrors up.
			for i := 0; i < depth; i++ {
				db.Add("dn", fmt.Sprint(i+1), fmt.Sprint(i))
			}
			for k := 0; k < checks; k++ {
				db.Add("b", fmt.Sprint(depth), fmt.Sprint(depth), fmt.Sprintf("z%d", k))
				if k%2 == 0 {
					db.Add("c", fmt.Sprintf("z%d", k))
				}
			}
			return db
		}}
	}
	return &Experiment{
		ID:    "E8",
		Title: "Example 12: invariant existential argument reduced, arity 3 to 2",
		Claim: "a transformation beyond projection pushing reduces the recursive arity (§6)",
		Variants: []Variant{
			{"adorned(ternary)", adorned, engine.Options{}},
			{"reduced(binary)", reduced, engine.Options{}},
		},
		Workloads: []Workload{mk(64, 16), mk(256, 64), mk(1024, 64)},
	}, nil
}

// --- E9: magic sets / counting compose with projection pushing.

// E9 demonstrates the §6 orthogonality claim on a reachability query with
// a bound source over a forest: projection linearizes, magic localizes,
// and they compose; counting is the third rewriting.
func E9() (*Experiment, error) {
	src := `
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(c0x5).
`
	orig := mustProg(src)
	projected, err := pipeline(orig, true, true, true, false)
	if err != nil {
		return nil, err
	}
	magicOnly, err := magic.Rewrite(orig)
	if err != nil {
		return nil, err
	}
	both, err := magic.Rewrite(projected)
	if err != nil {
		return nil, err
	}
	mk := func(chains, n int) Workload {
		return Workload{fmt.Sprintf("forest-%dx%d", chains, n), func() *engine.Database {
			db := engine.NewDatabase()
			workload.ChainForest(db, "p", chains, n)
			return db
		}}
	}
	return &Experiment{
		ID:    "E9",
		Title: "Magic sets / projection composition (orthogonality, §6)",
		Claim: "selection pushing and projection pushing compose multiplicatively",
		Variants: []Variant{
			{"original", orig, engine.Options{}},
			{"projected", projected, engine.Options{BooleanCut: true}},
			{"magic", magicOnly, engine.Options{}},
			{"projected+magic", both, engine.Options{BooleanCut: true}},
		},
		Workloads:    []Workload{mk(8, 64), mk(16, 128), mk(32, 256)},
		CheckAnswers: true,
	}, nil
}

// --- E10: Theorem 3.3 — regular chain program vs constructed monadic
// program.

func E10() (*Experiment, error) {
	src := `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`
	binary := mustProg(src)
	mp, err := grammar.MonadicFromChain(binary, "dn")
	if err != nil {
		return nil, err
	}
	mk := func(name string, build func(db *engine.Database)) Workload {
		return Workload{name, func() *engine.Database {
			db := engine.NewDatabase()
			build(db)
			return db
		}}
	}
	return &Experiment{
		ID:    "E10",
		Title: "Theorem 3.3: regular binary chain program vs monadic equivalent",
		Claim: "a regular language admits a monadic chain program for the existential query",
		Variants: []Variant{
			{"binary-chain", binary, engine.Options{}},
			{"monadic", mp.Program, engine.Options{}},
		},
		Workloads: []Workload{
			mk("chain-512", func(db *engine.Database) { workload.Chain(db, "p", 512) }),
			mk("rand-256x1024", func(db *engine.Database) { workload.RandomDigraph(db, "p", 256, 1024, 53) }),
			mk("grid-24", func(db *engine.Database) { workload.Grid(db, "p", 24) }),
		},
	}, nil
}

// --- E11: counting vs magic vs plain on an acyclic same-generation
// workload.

func E11() (*Experiment, error) {
	src := `
sg(X,Y) :- up(X,U), sg(U,V), dn(V,Y).
sg(X,Y) :- flat(X,Y).
?- sg(t0a0, Y).
`
	orig := mustProg(src)
	magicP, err := magic.Rewrite(orig)
	if err != nil {
		return nil, err
	}
	suppP, err := magic.RewriteSupplementary(orig)
	if err != nil {
		return nil, err
	}
	counting, err := magic.CountingRewrite(orig)
	if err != nil {
		return nil, err
	}
	mk := func(depth, towers int) Workload {
		return Workload{fmt.Sprintf("towers-%dx%d", towers, depth), func() *engine.Database {
			db := engine.NewDatabase()
			workload.SameGenTowers(db, "up", "dn", "flat", depth, towers)
			return db
		}}
	}
	return &Experiment{
		ID:    "E11",
		Title: "Counting vs magic sets on bound same-generation (§6 orthogonal rewritings)",
		Claim: "both selection-pushing strategies beat raw bottom-up on selective queries",
		Variants: []Variant{
			{"original", orig, engine.Options{}},
			{"magic", magicP, engine.Options{}},
			{"magic-supplementary", suppP, engine.Options{}},
			{"counting", counting, engine.Options{}},
		},
		Workloads: []Workload{mk(16, 8), mk(32, 16), mk(64, 16)},
	}, nil
}

// CapabilityRow records, for one example program and one deletion test,
// how many rules survive — the E12 capability matrix contrasting Sagiv's
// uniform-equivalence test with Lemmas 5.1 and 5.3.
type CapabilityRow struct {
	Example string
	Rules   int
	Sagiv   int // rules remaining under the uniform-equivalence test only
	L51     int // rules remaining under Lemma 5.1 (+cleanup)
	L53     int // rules remaining under Lemma 5.3 (+cleanup)
	Full    int // rules remaining under Lemma 5.3 + Sagiv (+cleanup)
}

// CapabilityMatrix runs every deletion strategy over the example programs
// of Sections 3-5 (E12 of EXPERIMENTS.md).
func CapabilityMatrix() ([]CapabilityRow, error) {
	exmap := map[string]string{
		"Ex3/4 (projected TC)": `
a@nd(X) :- p(X,Z), a@nd(Z).
a@nd(X) :- p(X,Z).
?- a@nd(X).
`,
		"Ex5/6 (two versions)": `
a@nd(X) :- a@nn(X,Z), p(Z,Y).
a@nd(X) :- p(X,Y).
a@nn(X,Y) :- a@nn(X,Z), p(Z,Y).
a@nn(X,Y) :- p(X,Y).
a@nd(U1) :- a@nn(U1,U2).
?- a@nd(X).
`,
		"Ex7 (aux recursion)": e4Src,
		"Ex8 (empty answer)":  e5Src,
		"Ex10 (symmetric)":    e6Src,
		"Ex11 (rewritten)":    e7Src,
	}
	names := make([]string, 0, len(exmap))
	for k := range exmap {
		names = append(names, k)
	}
	sort.Strings(names)
	var rows []CapabilityRow
	for _, name := range names {
		p := mustProg(exmap[name])
		row := CapabilityRow{Example: name, Rules: len(p.Rules)}
		// Sagiv only: iterate RuleRedundant to fixpoint, no summaries, no
		// cleanup (cleanup is query-equivalence reasoning).
		sg := p.Clone()
		for changed := true; changed; {
			changed = false
			for ri := 0; ri < len(sg.Rules); ri++ {
				ok, err := uniform.RuleRedundant(sg, ri)
				if err != nil {
					return nil, err
				}
				if ok {
					sg.Rules = append(sg.Rules[:ri:ri], sg.Rules[ri+1:]...)
					changed = true
					ri--
				}
			}
		}
		row.Sagiv = len(sg.Rules)
		l51, _, err := deletion.DeleteRules(p, deletion.Options{Mode: deletion.Lemma51})
		if err != nil {
			return nil, err
		}
		row.L51 = len(l51.Rules)
		l53, _, err := deletion.DeleteRules(p, deletion.Options{Mode: deletion.Lemma53})
		if err != nil {
			return nil, err
		}
		row.L53 = len(l53.Rules)
		full, _, err := deletion.DeleteRules(p, deletion.Options{
			Mode: deletion.Lemma53, UniformTest: uniform.RuleRedundant})
		if err != nil {
			return nil, err
		}
		row.Full = len(full.Rules)
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatCapabilityMatrix renders the E12 table.
func FormatCapabilityMatrix(rows []CapabilityRow) string {
	out := fmt.Sprintf("%-22s %6s %6s %6s %6s %6s\n",
		"example", "rules", "sagiv", "L5.1", "L5.3", "full")
	for _, r := range rows {
		out += fmt.Sprintf("%-22s %6d %6d %6d %6d %6d\n",
			r.Example, r.Rules, r.Sagiv, r.L51, r.L53, r.Full)
	}
	return out
}

package experiments

import (
	"fmt"

	"existdlog/internal/adorn"
	"existdlog/internal/ast"
	"existdlog/internal/deletion"
	"existdlog/internal/engine"
	"existdlog/internal/uniform"
	"existdlog/internal/workload"
	"existdlog/internal/xform"
)

// E13 is the pipeline ablation: on one workload, the full pipeline is
// compared against variants with a single phase disabled, attributing the
// end-to-end win to its parts. The program interleaves every optimization
// opportunity: an existential recursion (projection), a disconnected
// guard (component split + cut), and a redundant recursive rule
// (deletion).
func E13() (*Experiment, error) {
	src := `
query(X) :- a(X,Y), g(W).
a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
g(W) :- h(W,V).
?- query(X).
`
	orig := mustProg(src)

	type stage struct {
		name                          string
		adorn, split, project, delete bool
	}
	stages := []stage{
		{"full", true, true, true, true},
		{"no-adorn(original)", false, false, false, false},
		{"no-split", true, false, true, true},
		{"no-project", true, true, false, true},
		{"no-delete", true, true, true, false},
	}
	var variants []Variant
	for _, st := range stages {
		p, err := ablationPipeline(orig, st.adorn, st.split, st.project, st.delete)
		if err != nil {
			return nil, fmt.Errorf("E13 %s: %w", st.name, err)
		}
		variants = append(variants, Variant{
			Name:    fmt.Sprintf("%s(%d rules)", st.name, len(p.Rules)),
			Program: p,
			Opts:    engine.Options{BooleanCut: true},
		})
	}
	mk := func(n int) Workload {
		return Workload{fmt.Sprintf("chain-%d", n), func() *engine.Database {
			db := engine.NewDatabase()
			workload.Chain(db, "p", n)
			workload.Relation(db, "h", 2, n, n, 61)
			return db
		}}
	}
	return &Experiment{
		ID:    "E13",
		Title: "Pipeline ablation: each phase's contribution",
		Claim: "adornment+projection, the component cut, and deletion each carry weight",
		Variants: []Variant{
			variants[1], variants[2], variants[3], variants[4], variants[0],
		},
		Workloads: []Workload{mk(128), mk(512)},
	}, nil
}

func ablationPipeline(p *ast.Program, adornIt, split, project, del bool) (*ast.Program, error) {
	cur := p.Clone()
	var err error
	if adornIt {
		if cur, err = adorn.Adorn(cur); err != nil {
			return nil, err
		}
	}
	if split {
		if cur, err = xform.SplitComponents(cur); err != nil {
			return nil, err
		}
	}
	if project {
		if cur, err = xform.PushProjections(cur); err != nil {
			return nil, err
		}
	}
	if del {
		cur, _ = xform.AddCoveringUnitRules(cur)
		cur, _, err = deletion.DeleteRules(cur, deletion.Options{
			Mode: deletion.Lemma53, UniformTest: uniform.RuleRedundant})
		if err != nil {
			return nil, err
		}
	}
	return cur, nil
}

package experiments

import (
	"strings"
	"testing"
)

// Every experiment must construct: the constructors embed shape
// assertions (e.g. E3 demands the 1-rule Example 6 endpoint).
func TestAllConstruct(t *testing.T) {
	exps, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(exps) != 12 {
		t.Errorf("expected 12 experiments, got %d", len(exps))
	}
	seen := map[string]bool{}
	for _, e := range exps {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Claim == "" {
			t.Errorf("%s: missing title or claim", e.ID)
		}
		if len(e.Variants) < 2 {
			t.Errorf("%s: needs at least two variants", e.ID)
		}
		if len(e.Workloads) == 0 {
			t.Errorf("%s: needs workloads", e.ID)
		}
	}
}

// Run the small workload of each experiment and verify the headline shape
// claim: the last (most optimized) variant derives at most as many facts
// as the first, and answer checks hold where declared.
func TestExperimentShapes(t *testing.T) {
	exps, err := All()
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range exps {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			small := *e
			small.Workloads = e.Workloads[:1]
			rows, err := small.Run()
			if err != nil {
				t.Fatal(err)
			}
			if len(rows) != len(e.Variants) {
				t.Fatalf("rows = %d", len(rows))
			}
			// Compare derivation work, not distinct facts: adornment can
			// legitimately keep several projected versions of a predicate
			// (Example 5), so fact counts are not monotone, but the
			// optimized variant must never do more join work.
			first, last := rows[0], rows[len(rows)-1]
			if last.Derivs > first.Derivs {
				t.Errorf("%s: optimized variant performed more derivations (%d > %d)",
					e.ID, last.Derivs, first.Derivs)
			}
		})
	}
}

func TestCapabilityMatrix(t *testing.T) {
	rows, err := CapabilityMatrix()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]CapabilityRow{}
	for _, r := range rows {
		byName[r.Example] = r
	}
	// The qualitative claims of the paper, as a matrix:
	// Example 5 extended with the unit rule collapses to 1 rule under the
	// summary tests; Sagiv alone cannot do that.
	ex56 := byName["Ex5/6 (two versions)"]
	if ex56.L53 != 1 || ex56.Sagiv <= ex56.L53 {
		t.Errorf("Ex5/6 row: %+v", ex56)
	}
	// Example 7: 7 rules -> 3 under Lemma 5.1; Sagiv deletes nothing.
	ex7 := byName["Ex7 (aux recursion)"]
	if ex7.L51 != 3 || ex7.Sagiv != 7 {
		t.Errorf("Ex7 row: %+v", ex7)
	}
	// Example 8: emptied by the summary test + cleanup.
	ex8 := byName["Ex8 (empty answer)"]
	if ex8.L51 != 0 {
		t.Errorf("Ex8 row: %+v", ex8)
	}
	// Example 10: Lemma 5.3 strictly beats Lemma 5.1.
	ex10 := byName["Ex10 (symmetric)"]
	if ex10.L53 >= ex10.L51 {
		t.Errorf("Ex10 row: %+v", ex10)
	}
	// Example 3/4: only the uniform-equivalence test removes the
	// recursion (the summary tests alone cannot).
	ex34 := byName["Ex3/4 (projected TC)"]
	if ex34.Full != 1 || ex34.L53 != 2 {
		t.Errorf("Ex3/4 row: %+v", ex34)
	}
	out := FormatCapabilityMatrix(rows)
	if !strings.Contains(out, "L5.3") || !strings.Contains(out, "Ex7") {
		t.Errorf("matrix format:\n%s", out)
	}
}

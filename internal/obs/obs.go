// Package obs is the process-lifetime observability registry behind
// `existdlog serve` and the repl's `stats` command: it aggregates the
// per-query engine Stats and trace.Metrics that each evaluation already
// produces into counters, gauges, and histograms, and renders them as
// Prometheus text exposition (prom.go).
//
// The registry mirrors the shard design of internal/trace one level up:
// inside one evaluation, per-worker shards drain into a trace.Collector
// at pass barriers; across evaluations, each finished query's collector
// output drains into this registry. All registry state is atomics — an
// ObserveQuery on one goroutine never blocks a scrape on another, and a
// scrape takes a point-in-time snapshot rather than locking writers
// out. Counters therefore exactly partition the sum of the observed
// per-query Stats: every Observe adds precisely the query's own
// counters, and nothing else writes them.
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"existdlog/internal/engine"
	"existdlog/internal/trace"
)

// Outcome classifies a finished query for the queries_total counter.
type Outcome string

const (
	// OutcomeOK is a query that ran to fixpoint.
	OutcomeOK Outcome = "ok"
	// OutcomePartial is a query that stopped early (deadline, cancel,
	// limit) but returned a sound partial result.
	OutcomePartial Outcome = "partial"
	// OutcomeError is a query that produced no result at all: parse
	// error, arity mismatch, internal error.
	OutcomeError Outcome = "error"
)

// outcomes lists every Outcome, sorted, so the exposition is stable
// from the first scrape on (all series pre-declared at zero).
var outcomes = []Outcome{OutcomeError, OutcomeOK, OutcomePartial}

// RuleCounters accumulate one rule's lifetime counters, keyed by the
// rule's source text (identical rules across optimized programs share a
// series, which is the useful aggregation for a fixed served program).
type RuleCounters struct {
	Firings    atomic.Int64
	Emitted    atomic.Int64
	Facts      atomic.Int64
	Duplicates atomic.Int64
	Probes     atomic.Int64
	Cuts       atomic.Int64
}

// Registry is a process-lifetime metrics registry. All methods are safe
// for concurrent use; the write paths are lock-free (the rule map uses
// sync.Map, whose read path after first insertion is atomic).
type Registry struct {
	queries [3]atomic.Int64 // indexed parallel to outcomes

	inFlight   atomic.Int64
	queueDepth atomic.Int64

	// Admission-control state (the serve overload path): requests
	// refused before evaluation, by reason and class; queued requests
	// shed at dequeue because their deadline had already expired; and
	// the degraded read-only gauge the WAL failure path flips.
	rejected [len(rejectReasonsArr) * len(rejectClassesArr)]atomic.Int64
	shed     atomic.Int64
	degraded atomic.Int64

	// Client-side resilience state (the retrying server.Client reports
	// here when given a registry): retried attempts and the circuit
	// breaker's current state and lifetime trips to open.
	retries      atomic.Int64
	breakerState atomic.Int64
	breakerTrips atomic.Int64

	factsDerived  atomic.Int64
	derivations   atomic.Int64
	duplicateHits atomic.Int64
	joinProbes    atomic.Int64
	iterations    atomic.Int64
	rulesRetired  atomic.Int64
	ruleFirings   atomic.Int64

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64

	// Mutation-path state (the serve write path): mutations by op and
	// outcome, durable-store shape gauges, WAL and checkpoint activity,
	// and full re-evaluation fallbacks.
	mutations    [4]atomic.Int64 // (update, retract) x (ok, error)
	storeSeq     atomic.Int64
	storeBase    atomic.Int64
	storeDerived atomic.Int64
	walRecords   atomic.Int64
	walSyncs     atomic.Int64
	snapshots    atomic.Int64
	reevals      atomic.Int64

	// Latency observes per-query wall time in seconds; Facts observes
	// per-query distinct derived facts; Deltas observes every per-pass
	// per-predicate delta size a traced query reported. BatchSize
	// observes mutations applied per maintenance pass (group commit
	// batching), and Maintenance its wall time in seconds.
	Latency     *Histogram
	Facts       *Histogram
	Deltas      *Histogram
	BatchSize   *Histogram
	Maintenance *Histogram

	rules sync.Map // rule text -> *RuleCounters

	// build holds the binary's identity for the build_info gauge and
	// /healthz (SetBuildInfo); nil until set, which renders as empty
	// labels — keeping the golden scrape deterministic in tests that
	// never set it.
	build atomic.Pointer[BuildInfo]

	start time.Time
}

// BuildInfo identifies the running binary: rendered as the
// existdlog_build_info gauge's labels and on /healthz.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"goversion"`
	Commit    string `json:"commit"`
}

// SetBuildInfo publishes the binary's identity (serve calls this once
// at startup with the version, runtime.Version(), and the vcs revision
// from debug.ReadBuildInfo).
func (r *Registry) SetBuildInfo(version, goVersion, commit string) {
	r.build.Store(&BuildInfo{Version: version, GoVersion: goVersion, Commit: commit})
}

// BuildInfo returns the published identity (zero value until set).
func (r *Registry) BuildInfo() BuildInfo {
	if b := r.build.Load(); b != nil {
		return *b
	}
	return BuildInfo{}
}

// Uptime is the time since the registry was created — process uptime
// for all practical purposes, rendered as the
// existdlog_process_uptime_seconds gauge and on /healthz.
func (r *Registry) Uptime() time.Duration { return time.Since(r.start) }

// NewRegistry returns an empty registry with the default buckets.
func NewRegistry() *Registry {
	return &Registry{
		Latency:     NewHistogram(LatencyBuckets()...),
		Facts:       NewHistogram(SizeBuckets()...),
		Deltas:      NewHistogram(SizeBuckets()...),
		BatchSize:   NewHistogram(SizeBuckets()...),
		Maintenance: NewHistogram(LatencyBuckets()...),
		start:       time.Now(),
	}
}

func outcomeIndex(o Outcome) int {
	for i, x := range outcomes {
		if x == o {
			return i
		}
	}
	return 0 // unknown outcomes count as errors
}

// QueryStarted marks a query entering evaluation (the in-flight gauge).
// The returned func marks it done; call it exactly once.
func (r *Registry) QueryStarted() func() {
	r.inFlight.Add(1)
	var once sync.Once
	return func() { once.Do(func() { r.inFlight.Add(-1) }) }
}

// QueueEnter / QueueLeave bracket a request waiting for an evaluation
// slot (the queue-depth gauge).
func (r *Registry) QueueEnter() { r.queueDepth.Add(1) }
func (r *Registry) QueueLeave() { r.queueDepth.Add(-1) }

// CacheHit / CacheMiss count optimized-program cache lookups.
func (r *Registry) CacheHit()  { r.cacheHits.Add(1) }
func (r *Registry) CacheMiss() { r.cacheMisses.Add(1) }

// rejectReasonsArr and rejectClassesArr index the rejected array; both
// are sorted so the exposition pre-declares every series at zero.
// Reasons: "degraded" (read-only mode refuses mutations), "draining"
// (shutdown refuses everything), "queue_full" (the class's admission
// queue is at capacity), "queue_timeout" (the request waited out the
// queue bound without getting a slot).
var (
	rejectReasonsArr = [...]string{"degraded", "draining", "queue_full", "queue_timeout"}
	rejectClassesArr = [...]string{"mutation", "query"}
)

func rejectIndex(reason, class string) int {
	ri, ci := 0, 0
	for i, r := range rejectReasonsArr {
		if r == reason {
			ri = i
		}
	}
	for i, c := range rejectClassesArr {
		if c == class {
			ci = i
		}
	}
	return ci*len(rejectReasonsArr) + ri
}

// Rejected counts one request refused before evaluation, by reason
// ("degraded", "draining", "queue_full", "queue_timeout") and class
// ("query" or "mutation"). Unknown labels fold into the first series
// rather than allocating new ones — the label sets are closed.
func (r *Registry) Rejected(reason, class string) {
	r.rejected[rejectIndex(reason, class)].Add(1)
}

// Shed counts one queued request discarded at dequeue because its
// deadline expired while it waited — it never started evaluating.
func (r *Registry) Shed() { r.shed.Add(1) }

// SetDegraded publishes the store's degraded read-only state (1 while
// mutations are refused because the WAL is failing, 0 otherwise).
func (r *Registry) SetDegraded(on bool) {
	var v int64
	if on {
		v = 1
	}
	r.degraded.Store(v)
}

// RetryObserved counts one retried client attempt (the first attempt of
// a call is not a retry).
func (r *Registry) RetryObserved() { r.retries.Add(1) }

// SetBreakerState publishes the client circuit breaker's state:
// 0 closed, 1 half-open, 2 open.
func (r *Registry) SetBreakerState(state int64) { r.breakerState.Store(state) }

// BreakerTripped counts one breaker transition to open.
func (r *Registry) BreakerTripped() { r.breakerTrips.Add(1) }

// mutationOps and mutationOutcomes index the mutations array; both are
// sorted so the exposition pre-declares every series at zero.
var (
	mutationOps      = []string{"retract", "update"}
	mutationOutcomes = []string{"error", "ok"}
)

func mutationIndex(op string, ok bool) int {
	i := 0
	if op == "update" {
		i = 1
	}
	if ok {
		return i*2 + 1
	}
	return i * 2
}

// ObserveMutation counts one finished write request by op ("update" or
// "retract") and outcome.
func (r *Registry) ObserveMutation(op string, ok bool) {
	r.mutations[mutationIndex(op, ok)].Add(1)
}

// ObserveMaintenance records one applier maintenance pass: how many
// acknowledged mutations it batched and how long it took.
func (r *Registry) ObserveMaintenance(batched int, elapsed time.Duration) {
	r.BatchSize.Observe(float64(batched))
	r.Maintenance.Observe(elapsed.Seconds())
}

// SetStoreShape publishes the current store version's shape: its
// sequence number and its base/derived fact counts.
func (r *Registry) SetStoreShape(seq uint64, base, derived int) {
	r.storeSeq.Store(int64(seq))
	r.storeBase.Store(int64(base))
	r.storeDerived.Store(int64(derived))
}

// WALAppended / WALSynced / SnapshotWritten / Reevaluated count the
// durability layer's activity.
func (r *Registry) WALAppended(records int) { r.walRecords.Add(int64(records)) }
func (r *Registry) WALSynced()              { r.walSyncs.Add(1) }
func (r *Registry) SnapshotWritten()        { r.snapshots.Add(1) }
func (r *Registry) Reevaluated()            { r.reevals.Add(1) }

// ObserveError records a query that produced no Result (parse error,
// arity mismatch, internal error) — only the outcome counter and the
// latency histogram move. A non-empty traceID becomes the latency
// bucket's exemplar.
func (r *Registry) ObserveError(elapsed time.Duration, traceID string) {
	r.queries[outcomeIndex(OutcomeError)].Add(1)
	r.Latency.ObserveExemplar(elapsed.Seconds(), traceID)
}

// ObserveQuery drains one finished evaluation into the registry: the
// aggregate Stats land in the lifetime counters and histograms, and the
// per-rule trace metrics (when the query ran with Options.Trace) land
// in the per-rule series. Partial results observe exactly their partial
// Stats, so the partition invariant holds on aborted queries too. A
// non-empty traceID becomes the exemplar of the latency bucket this
// query lands in, linking the aggregate back to the flight recorder.
func (r *Registry) ObserveQuery(stats engine.Stats, tr *trace.Metrics, elapsed time.Duration, outcome Outcome, traceID string) {
	r.queries[outcomeIndex(outcome)].Add(1)
	r.Latency.ObserveExemplar(elapsed.Seconds(), traceID)
	r.Facts.Observe(float64(stats.FactsDerived))

	r.factsDerived.Add(int64(stats.FactsDerived))
	r.derivations.Add(stats.Derivations)
	r.duplicateHits.Add(stats.DuplicateHits)
	r.joinProbes.Add(stats.JoinProbes)
	r.iterations.Add(int64(stats.Iterations))
	r.rulesRetired.Add(int64(stats.RulesRetired))

	if tr == nil {
		return
	}
	r.ruleFirings.Add(tr.TotalFirings())
	for i := range tr.Rules {
		rs := &tr.Rules[i]
		rc := r.rule(rs.Text)
		rc.Firings.Add(rs.Firings)
		rc.Emitted.Add(rs.Emitted)
		rc.Facts.Add(rs.Facts)
		rc.Duplicates.Add(rs.Duplicates)
		rc.Probes.Add(rs.JoinProbes)
		if rs.CutPass > 0 {
			rc.Cuts.Add(1)
		}
	}
	for i := range tr.Passes {
		for _, d := range tr.Passes[i].Deltas {
			r.Deltas.Observe(float64(d.Size))
		}
	}
}

// rule returns the counters for a rule text, creating them on first use.
func (r *Registry) rule(text string) *RuleCounters {
	if c, ok := r.rules.Load(text); ok {
		return c.(*RuleCounters)
	}
	c, _ := r.rules.LoadOrStore(text, &RuleCounters{})
	return c.(*RuleCounters)
}

// RuleSnapshot is one rule's lifetime counters at snapshot time.
type RuleSnapshot struct {
	Text       string
	Firings    int64
	Emitted    int64
	Facts      int64
	Duplicates int64
	Probes     int64
	Cuts       int64
}

// Snapshot is a point-in-time copy of every scalar in the registry, for
// rendering, logging a final flush, and the repl's stats command.
type Snapshot struct {
	Queries map[Outcome]int64

	InFlight   int64
	QueueDepth int64

	// Rejected maps "reason/class" (e.g. "queue_full/query") to its
	// counter; Shed counts expired-in-queue discards; Degraded is the
	// read-only gauge. Retries/BreakerState/BreakerTrips mirror the
	// resilient client when one reports into this registry.
	Rejected     map[string]int64
	Shed         int64
	Degraded     int64
	Retries      int64
	BreakerState int64
	BreakerTrips int64

	FactsDerived  int64
	Derivations   int64
	DuplicateHits int64
	JoinProbes    int64
	Iterations    int64
	RulesRetired  int64
	RuleFirings   int64

	CacheHits   int64
	CacheMisses int64

	// Mutations maps "op/outcome" (e.g. "update/ok") to its counter.
	Mutations         map[string]int64
	StoreSeq          int64
	StoreBaseFacts    int64
	StoreDerivedFacts int64
	WALRecords        int64
	WALSyncs          int64
	Snapshots         int64
	Reevals           int64

	Latency     HistogramSnapshot
	Facts       HistogramSnapshot
	Deltas      HistogramSnapshot
	BatchSize   HistogramSnapshot
	Maintenance HistogramSnapshot

	Rules []RuleSnapshot // sorted by rule text

	Build  BuildInfo
	Start  time.Time
	Uptime time.Duration
}

// TotalQueries sums the outcome counters.
func (s *Snapshot) TotalQueries() int64 {
	var n int64
	for _, v := range s.Queries {
		n += v
	}
	return n
}

// Snapshot copies the registry. Scrapes render from the snapshot, so a
// slow writer (there are none — writes are a handful of atomic adds)
// can never hold up the scrape and vice versa.
func (r *Registry) Snapshot() *Snapshot {
	s := &Snapshot{
		Queries:           make(map[Outcome]int64, len(outcomes)),
		InFlight:          r.inFlight.Load(),
		QueueDepth:        r.queueDepth.Load(),
		Rejected:          make(map[string]int64, len(r.rejected)),
		Shed:              r.shed.Load(),
		Degraded:          r.degraded.Load(),
		Retries:           r.retries.Load(),
		BreakerState:      r.breakerState.Load(),
		BreakerTrips:      r.breakerTrips.Load(),
		FactsDerived:      r.factsDerived.Load(),
		Derivations:       r.derivations.Load(),
		DuplicateHits:     r.duplicateHits.Load(),
		JoinProbes:        r.joinProbes.Load(),
		Iterations:        r.iterations.Load(),
		RulesRetired:      r.rulesRetired.Load(),
		RuleFirings:       r.ruleFirings.Load(),
		CacheHits:         r.cacheHits.Load(),
		CacheMisses:       r.cacheMisses.Load(),
		Mutations:         make(map[string]int64, len(r.mutations)),
		StoreSeq:          r.storeSeq.Load(),
		StoreBaseFacts:    r.storeBase.Load(),
		StoreDerivedFacts: r.storeDerived.Load(),
		WALRecords:        r.walRecords.Load(),
		WALSyncs:          r.walSyncs.Load(),
		Snapshots:         r.snapshots.Load(),
		Reevals:           r.reevals.Load(),
		Latency:           r.Latency.Snapshot(),
		Facts:             r.Facts.Snapshot(),
		Deltas:            r.Deltas.Snapshot(),
		BatchSize:         r.BatchSize.Snapshot(),
		Maintenance:       r.Maintenance.Snapshot(),
		Build:             r.BuildInfo(),
		Start:             r.start,
		Uptime:            r.Uptime(),
	}
	for i, o := range outcomes {
		s.Queries[o] = r.queries[i].Load()
	}
	for ci, class := range rejectClassesArr {
		for ri, reason := range rejectReasonsArr {
			s.Rejected[reason+"/"+class] = r.rejected[ci*len(rejectReasonsArr)+ri].Load()
		}
	}
	for oi, op := range mutationOps {
		for ri, res := range mutationOutcomes {
			s.Mutations[op+"/"+res] = r.mutations[oi*2+ri].Load()
		}
	}
	r.rules.Range(func(k, v any) bool {
		c := v.(*RuleCounters)
		s.Rules = append(s.Rules, RuleSnapshot{
			Text:       k.(string),
			Firings:    c.Firings.Load(),
			Emitted:    c.Emitted.Load(),
			Facts:      c.Facts.Load(),
			Duplicates: c.Duplicates.Load(),
			Probes:     c.Probes.Load(),
			Cuts:       c.Cuts.Load(),
		})
		return true
	})
	sort.Slice(s.Rules, func(i, j int) bool { return s.Rules[i].Text < s.Rules[j].Text })
	return s
}

package obs

import "sync/atomic"

// Exemplar links a histogram bucket back to a concrete request: the
// trace id and value of the bucket's most recent occupant. This is the
// bridge from aggregate SLO math to the flight recorder — loadgen reads
// the exemplar behind a breaching quantile's bucket, looks the trace id
// up at /debug/requests, and embeds that request's span tree in the
// BENCH report. Last-write-wins per bucket (one atomic pointer swap per
// observation), matching OpenMetrics exemplar semantics.
//
// Exemplars are deliberately NOT rendered into the /metrics text: the
// endpoint speaks Prometheus text format 0.0.4, which has no exemplar
// syntax, and the scrape is golden-tested byte for byte. They are
// exposed through Snapshot (JSON debug surface) and the harness.
type Exemplar struct {
	TraceID string  `json:"trace_id"`
	Value   float64 `json:"value"`
}

// exemplars is the per-bucket exemplar store attached lazily to a
// Histogram by ObserveExemplar.
type exemplars struct {
	slots []atomic.Pointer[Exemplar] // len = buckets (bounds+1 for +Inf)
}

// ObserveExemplar is Observe plus an exemplar: the observation lands in
// its bucket and the bucket's exemplar is replaced with (v, traceID).
// An empty traceID degrades to a plain Observe, so call sites need no
// tracing-enabled branch.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	h.Observe(v)
	if traceID == "" {
		return
	}
	ex := h.ex.Load()
	if ex == nil {
		neu := &exemplars{slots: make([]atomic.Pointer[Exemplar], len(h.counts))}
		if !h.ex.CompareAndSwap(nil, neu) {
			ex = h.ex.Load() // lost the race; use the winner's store
		} else {
			ex = neu
		}
	}
	ex.slots[h.bucketOf(v)].Store(&Exemplar{TraceID: traceID, Value: v})
}

// bucketOf returns the bucket index v lands in (the Observe scan,
// factored out so exemplars agree with counts).
func (h *Histogram) bucketOf(v float64) int {
	for b, bound := range h.bounds {
		if v <= bound {
			return b
		}
	}
	return len(h.bounds)
}

// Exemplars returns the current per-bucket exemplars, index-aligned
// with HistogramSnapshot.Counts (nil entries for buckets that never saw
// a traced observation; nil slice when none have).
func (h *Histogram) Exemplars() []*Exemplar {
	ex := h.ex.Load()
	if ex == nil {
		return nil
	}
	out := make([]*Exemplar, len(ex.slots))
	for i := range ex.slots {
		out[i] = ex.slots[i].Load()
	}
	return out
}

// ExemplarForQuantile returns the exemplar for the bucket holding the
// q-quantile — the concrete request standing behind an SLO verdict's
// p99. Falls back to the nearest lower populated bucket with an
// exemplar (a racing scrape can see a bucket count before its
// exemplar), then nil.
func (h *Histogram) ExemplarForQuantile(q float64) *Exemplar {
	exs := h.Exemplars()
	if exs == nil {
		return nil
	}
	s := h.Snapshot()
	if s.Count == 0 {
		return nil
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	target := len(s.Counts) - 1
	for i, c := range s.Counts {
		cum += c
		if float64(cum) >= rank {
			target = i
			break
		}
	}
	for i := target; i >= 0; i-- {
		if s.Counts[i] > 0 && exs[i] != nil {
			return exs[i]
		}
	}
	return nil
}

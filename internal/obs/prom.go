package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The exposition below is hand-rolled Prometheus text format
// (version 0.0.4): `# HELP` / `# TYPE` headers followed by samples,
// histograms as cumulative `_bucket{le=...}` series plus `_sum` and
// `_count`. Everything renders from a Snapshot in a fixed order with
// sorted labels, so for a deterministic query sequence the scrape is
// byte-identical — which is what the golden test in internal/server
// pins.

// escapeLabel escapes a label value per the exposition format:
// backslash, double quote, and newline.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// formatFloat renders a sample value or bucket bound the way Prometheus
// clients do: shortest representation that round-trips.
func formatFloat(f float64) string {
	return strconv.FormatFloat(f, 'g', -1, 64)
}

type promWriter struct {
	w   io.Writer
	err error
}

func (p *promWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	_, p.err = fmt.Fprintf(p.w, format, args...)
}

func (p *promWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (p *promWriter) sample(name, labels string, value int64) {
	if labels != "" {
		p.printf("%s{%s} %d\n", name, labels, value)
		return
	}
	p.printf("%s %d\n", name, value)
}

func (p *promWriter) histogram(name, help string, h HistogramSnapshot) {
	p.header(name, help, "histogram")
	cum := int64(0)
	for i, bound := range h.Bounds {
		cum += h.Counts[i]
		p.printf("%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum)
	}
	cum += h.Counts[len(h.Bounds)]
	p.printf("%s_bucket{le=\"+Inf\"} %d\n", name, cum)
	p.printf("%s_sum %s\n", name, formatFloat(h.Sum))
	p.printf("%s_count %d\n", name, cum)
}

// WritePrometheus renders the registry as Prometheus text exposition.
// It snapshots first, so the scrape is internally consistent and never
// contends with observers beyond individual atomic loads.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.Snapshot().WritePrometheus(w)
}

// WritePrometheus renders the snapshot as Prometheus text exposition.
func (s *Snapshot) WritePrometheus(w io.Writer) error {
	p := &promWriter{w: w}

	p.header("existdlog_queries_total", "Queries served, by outcome.", "counter")
	for _, o := range outcomes {
		p.sample("existdlog_queries_total", fmt.Sprintf("outcome=%q", string(o)), s.Queries[o])
	}

	p.header("existdlog_queries_in_flight", "Queries currently evaluating.", "gauge")
	p.sample("existdlog_queries_in_flight", "", s.InFlight)
	p.header("existdlog_queue_depth", "Requests waiting for an evaluation slot.", "gauge")
	p.sample("existdlog_queue_depth", "", s.QueueDepth)

	p.header("existdlog_rejected_total", "Requests refused before evaluation, by class and reason.", "counter")
	for _, class := range rejectClassesArr {
		for _, reason := range rejectReasonsArr {
			p.sample("existdlog_rejected_total",
				fmt.Sprintf("class=%q,reason=%q", class, reason), s.Rejected[reason+"/"+class])
		}
	}
	p.header("existdlog_shed_total", "Queued requests discarded at dequeue because their deadline had expired.", "counter")
	p.sample("existdlog_shed_total", "", s.Shed)
	p.header("existdlog_degraded", "1 while the store is in degraded read-only mode (WAL failing), else 0.", "gauge")
	p.sample("existdlog_degraded", "", s.Degraded)

	scalars := []struct {
		name, help string
		value      int64
	}{
		{"existdlog_facts_derived_total", "Distinct facts derived across all queries.", s.FactsDerived},
		{"existdlog_derivations_total", "Head tuples produced across all queries, duplicates included.", s.Derivations},
		{"existdlog_duplicate_hits_total", "Derivations rejected by duplicate elimination.", s.DuplicateHits},
		{"existdlog_join_probes_total", "Index probes performed during joins.", s.JoinProbes},
		{"existdlog_passes_total", "Fixpoint passes run across all queries.", s.Iterations},
		{"existdlog_rules_retired_total", "Rules retired at runtime by the boolean cut.", s.RulesRetired},
	}
	for _, c := range scalars {
		p.header(c.name, c.help, "counter")
		p.sample(c.name, "", c.value)
	}

	p.header("existdlog_optimize_cache_total", "Optimized-program cache lookups, by result.", "counter")
	p.sample("existdlog_optimize_cache_total", `result="hit"`, s.CacheHits)
	p.sample("existdlog_optimize_cache_total", `result="miss"`, s.CacheMisses)

	p.header("existdlog_mutations_total", "Write requests served, by op and outcome.", "counter")
	for _, op := range mutationOps {
		for _, res := range mutationOutcomes {
			p.sample("existdlog_mutations_total",
				fmt.Sprintf("op=%q,outcome=%q", op, res), s.Mutations[op+"/"+res])
		}
	}

	storeGauges := []struct {
		name, help string
		value      int64
	}{
		{"existdlog_store_seq", "Sequence number of the current store version.", s.StoreSeq},
		{"existdlog_store_base_facts", "Base facts in the current store version.", s.StoreBaseFacts},
		{"existdlog_store_derived_facts", "Derived facts materialized in the current store version.", s.StoreDerivedFacts},
	}
	for _, g := range storeGauges {
		p.header(g.name, g.help, "gauge")
		p.sample(g.name, "", g.value)
	}

	durability := []struct {
		name, help string
		value      int64
	}{
		{"existdlog_wal_records_total", "Mutation records appended to the write-ahead log.", s.WALRecords},
		{"existdlog_wal_syncs_total", "Group-commit fsyncs of the write-ahead log.", s.WALSyncs},
		{"existdlog_snapshots_total", "Durable store checkpoints written.", s.Snapshots},
		{"existdlog_reevals_total", "Full re-evaluations forced by unsound incremental results.", s.Reevals},
	}
	for _, c := range durability {
		p.header(c.name, c.help, "counter")
		p.sample(c.name, "", c.value)
	}

	p.histogram("existdlog_query_duration_seconds", "Query latency in seconds.", s.Latency)
	p.histogram("existdlog_query_facts", "Distinct facts derived per query.", s.Facts)
	p.histogram("existdlog_delta_size", "Per-pass per-predicate delta sizes of traced queries.", s.Deltas)
	p.histogram("existdlog_applied_batch_size", "Mutations applied per maintenance pass.", s.BatchSize)
	p.histogram("existdlog_maintenance_duration_seconds", "Maintenance pass latency in seconds.", s.Maintenance)

	rulemetrics := []struct {
		name, help string
		get        func(*RuleSnapshot) int64
	}{
		{"existdlog_rule_firings", "Rule-version evaluations, by rule.", func(r *RuleSnapshot) int64 { return r.Firings }},
		{"existdlog_rule_emitted", "Head tuples produced, by rule, duplicates included.", func(r *RuleSnapshot) int64 { return r.Emitted }},
		{"existdlog_rule_facts", "Distinct new facts contributed, by rule.", func(r *RuleSnapshot) int64 { return r.Facts }},
		{"existdlog_rule_duplicates", "Emitted tuples rejected as duplicates, by rule.", func(r *RuleSnapshot) int64 { return r.Duplicates }},
		{"existdlog_rule_join_probes", "Index probes performed, by rule.", func(r *RuleSnapshot) int64 { return r.Probes }},
		{"existdlog_rule_cuts", "Queries in which the boolean cut retired the rule.", func(r *RuleSnapshot) int64 { return r.Cuts }},
	}
	for _, m := range rulemetrics {
		name := m.name + "_total"
		p.header(name, m.help, "counter")
		for i := range s.Rules {
			r := &s.Rules[i]
			p.sample(name, fmt.Sprintf("rule=%q", escapeLabel(r.Text)), m.get(r))
		}
	}

	p.header("existdlog_client_retries_total", "Retried attempts by the resilient client reporting into this registry.", "counter")
	p.sample("existdlog_client_retries_total", "", s.Retries)
	p.header("existdlog_client_breaker_state", "Client circuit breaker state: 0 closed, 1 half-open, 2 open.", "gauge")
	p.sample("existdlog_client_breaker_state", "", s.BreakerState)
	p.header("existdlog_client_breaker_trips_total", "Client circuit breaker transitions to open.", "counter")
	p.sample("existdlog_client_breaker_trips_total", "", s.BreakerTrips)

	p.header("existdlog_build_info", "Binary identity; the gauge is always 1, the labels carry the information.", "gauge")
	p.printf("existdlog_build_info{commit=%q,goversion=%q,version=%q} 1\n",
		escapeLabel(s.Build.Commit), escapeLabel(s.Build.GoVersion), escapeLabel(s.Build.Version))

	p.header("existdlog_process_start_time_seconds", "Unix time the registry was created.", "gauge")
	p.printf("existdlog_process_start_time_seconds %s\n",
		formatFloat(float64(s.Start.UnixNano())/1e9))
	p.header("existdlog_process_uptime_seconds", "Seconds since the registry was created.", "gauge")
	p.printf("existdlog_process_uptime_seconds %s\n", formatFloat(s.Uptime.Seconds()))
	return p.err
}

package obs

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// A strict reader for the Prometheus text exposition format, used by
// the metrics tests (the acceptance check "the scrape parses") and the
// CI smoke step. It validates what a real Prometheus scraper would
// reject: malformed names and labels, samples without a TYPE, histogram
// buckets that are not cumulative, and `_count` disagreeing with the
// +Inf bucket.

// Sample is one parsed sample line.
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Family is one metric family: its TYPE plus samples in file order.
type Family struct {
	Name    string
	Type    string
	Help    string
	Samples []Sample
}

var (
	metricNameRe = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelNameRe  = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
)

// baseFamily strips the histogram sample suffixes so `x_bucket`,
// `x_sum`, and `x_count` attach to family x when x is a histogram.
func baseFamily(name string, families map[string]*Family) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suf)
		if base != name {
			if f, ok := families[base]; ok && f.Type == "histogram" {
				return base
			}
		}
	}
	return name
}

func parseLabels(s string) (map[string]string, error) {
	labels := make(map[string]string)
	rest := s
	for rest != "" {
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return nil, fmt.Errorf("label without '=' in %q", s)
		}
		name := rest[:eq]
		if !labelNameRe.MatchString(name) {
			return nil, fmt.Errorf("bad label name %q", name)
		}
		rest = rest[eq+1:]
		if len(rest) == 0 || rest[0] != '"' {
			return nil, fmt.Errorf("unquoted label value in %q", s)
		}
		// Scan the quoted value honoring escapes.
		var val strings.Builder
		i := 1
		closed := false
		for i < len(rest) {
			c := rest[i]
			if c == '\\' {
				if i+1 >= len(rest) {
					return nil, fmt.Errorf("dangling escape in %q", s)
				}
				switch rest[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return nil, fmt.Errorf("bad escape \\%c in %q", rest[i+1], s)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated label value in %q", s)
		}
		labels[name] = val.String()
		rest = rest[i:]
		if strings.HasPrefix(rest, ",") {
			rest = rest[1:]
		} else if rest != "" {
			return nil, fmt.Errorf("junk %q after label value", rest)
		}
	}
	return labels, nil
}

// ParseExposition parses and validates text exposition, returning the
// metric families keyed by name. Any deviation from the format is an
// error, as are histogram families whose buckets are not cumulative or
// whose +Inf bucket disagrees with _count.
func ParseExposition(r io.Reader) (map[string]*Family, error) {
	families := make(map[string]*Family)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q in HELP", lineNo, name)
			}
			f := families[name]
			if f == nil {
				f = &Family{Name: name}
				families[name] = f
			}
			f.Help = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return nil, fmt.Errorf("line %d: malformed TYPE line %q", lineNo, line)
			}
			name, typ := parts[0], parts[1]
			if !metricNameRe.MatchString(name) {
				return nil, fmt.Errorf("line %d: bad metric name %q in TYPE", lineNo, name)
			}
			switch typ {
			case "counter", "gauge", "histogram", "summary", "untyped":
			default:
				return nil, fmt.Errorf("line %d: unknown metric type %q", lineNo, typ)
			}
			f := families[name]
			if f == nil {
				f = &Family{Name: name}
				families[name] = f
			}
			if len(f.Samples) > 0 {
				return nil, fmt.Errorf("line %d: TYPE for %s after its samples", lineNo, name)
			}
			f.Type = typ
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // free-form comment
		}
		// Sample line: name[{labels}] value [timestamp]
		name := line
		labelPart := ""
		if i := strings.IndexByte(line, '{'); i >= 0 {
			j := strings.LastIndexByte(line, '}')
			if j < i {
				return nil, fmt.Errorf("line %d: unbalanced braces in %q", lineNo, line)
			}
			name = line[:i]
			labelPart = line[i+1 : j]
			line = name + line[j+1:]
		}
		fields := strings.Fields(line)
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("line %d: malformed sample %q", lineNo, sc.Text())
		}
		name = fields[0]
		if !metricNameRe.MatchString(name) {
			return nil, fmt.Errorf("line %d: bad metric name %q", lineNo, name)
		}
		value, err := parseValue(fields[1])
		if err != nil {
			return nil, fmt.Errorf("line %d: bad value %q: %v", lineNo, fields[1], err)
		}
		labels, err := parseLabels(labelPart)
		if err != nil {
			return nil, fmt.Errorf("line %d: %v", lineNo, err)
		}
		famName := baseFamily(name, families)
		f := families[famName]
		if f == nil || f.Type == "" {
			return nil, fmt.Errorf("line %d: sample %s without a preceding TYPE", lineNo, name)
		}
		f.Samples = append(f.Samples, Sample{Name: name, Labels: labels, Value: value})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	for _, f := range families {
		if f.Type == "histogram" {
			if err := validateHistogram(f); err != nil {
				return nil, err
			}
		}
	}
	return families, nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf", "Inf":
		return strconv.ParseFloat("+Inf", 64)
	case "-Inf":
		return strconv.ParseFloat("-Inf", 64)
	}
	return strconv.ParseFloat(s, 64)
}

func validateHistogram(f *Family) error {
	var bounds []float64
	var cums []float64
	var count float64
	haveCount, haveSum, haveInf := false, false, false
	for _, s := range f.Samples {
		switch s.Name {
		case f.Name + "_bucket":
			le, ok := s.Labels["le"]
			if !ok {
				return fmt.Errorf("%s: bucket without le label", f.Name)
			}
			b, err := parseValue(le)
			if err != nil {
				return fmt.Errorf("%s: bad le %q", f.Name, le)
			}
			if le == "+Inf" {
				haveInf = true
			}
			bounds = append(bounds, b)
			cums = append(cums, s.Value)
		case f.Name + "_sum":
			haveSum = true
		case f.Name + "_count":
			haveCount = true
			count = s.Value
		}
	}
	if !haveInf || !haveSum || !haveCount {
		return fmt.Errorf("%s: histogram missing +Inf bucket, _sum, or _count", f.Name)
	}
	if !sort.Float64sAreSorted(bounds) {
		return fmt.Errorf("%s: bucket bounds out of order", f.Name)
	}
	for i := 1; i < len(cums); i++ {
		if cums[i] < cums[i-1] {
			return fmt.Errorf("%s: buckets not cumulative (%v then %v)", f.Name, cums[i-1], cums[i])
		}
	}
	if len(cums) > 0 && cums[len(cums)-1] != count {
		return fmt.Errorf("%s: +Inf bucket %v != count %v", f.Name, cums[len(cums)-1], count)
	}
	return nil
}

package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket, lock-free histogram in the Prometheus
// mold: per-bucket observation counts plus a running sum and count, all
// maintained with atomics so observation never blocks a scrape and a
// scrape never blocks observation. Bucket boundaries are upper bounds
// (an observation v lands in the first bucket with v <= bound); the
// implicit final bucket is +Inf. Boundaries are immutable after
// construction, which is what makes the unsynchronized reads safe.
type Histogram struct {
	bounds []float64
	counts []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	sum    atomic.Uint64  // float64 bits, CAS-accumulated
	count  atomic.Int64
	// ex holds per-bucket exemplars (exemplar.go), attached lazily on
	// the first ObserveExemplar so untraced histograms pay one nil load.
	ex atomic.Pointer[exemplars]
}

// NewHistogram returns a histogram over the given strictly increasing
// upper bounds. An empty bounds slice yields a single +Inf bucket.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("obs: histogram bounds must be strictly increasing")
		}
	}
	return &Histogram{
		bounds: bounds,
		counts: make([]atomic.Int64, len(bounds)+1),
	}
}

// LatencyBuckets are the default buckets for query latency in seconds:
// 100µs to 10s, roughly 2.5× apart — wide enough for a cold optimizer
// pass, fine enough to separate sub-millisecond cached queries.
func LatencyBuckets() []float64 {
	return []float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
		0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10}
}

// SizeBuckets are the default buckets for fact counts and delta sizes:
// decades from 1 to 1e6.
func SizeBuckets() []float64 {
	return []float64{0, 1, 10, 100, 1000, 10000, 100000, 1e6}
}

// ObserveDuration records one duration in seconds — the convention of
// every latency histogram in the registry and the loadgen harness.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v; linear scan — the bucket
	// lists here are short and the scan is branch-predictable.
	i := len(h.bounds)
	for b, bound := range h.bounds {
		if v <= bound {
			i = b
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		neu := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, neu) {
			return
		}
	}
}

// HistogramSnapshot is a consistent-enough copy of a histogram for
// rendering: buckets are read in one pass, so a scrape racing an
// Observe may see the new observation in some counters and not others,
// but every counter is a value that was true at some instant and the
// rendered cumulative buckets stay monotone (Render re-derives them
// from the per-bucket counts).
type HistogramSnapshot struct {
	Bounds []float64 // upper bounds, excluding +Inf
	Counts []int64   // per-bucket (not cumulative), len(Bounds)+1
	Sum    float64
	Count  int64
}

// Snapshot copies the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]int64, len(h.counts)),
		Sum:    math.Float64frombits(h.sum.Load()),
	}
	total := int64(0)
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		total += c
	}
	// Derive the count from the buckets read, not the count atomic: a
	// racing Observe bumps the bucket before the count, and deriving
	// keeps the rendered +Inf cumulative bucket equal to _count, which
	// the exposition format requires.
	s.Count = total
	return s
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 <= q <= 1) from the snapshot by
// linear interpolation inside the bucket where the rank falls — the
// same estimate Prometheus's histogram_quantile computes. Observations
// in the +Inf bucket clamp to the highest finite bound. Returns 0 for
// an empty histogram.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	cum := int64(0)
	for i, c := range s.Counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(s.Bounds) {
			// +Inf bucket: clamp to the largest finite bound.
			if len(s.Bounds) == 0 {
				return 0
			}
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		hi := s.Bounds[i]
		if c == 0 {
			return hi
		}
		inBucket := rank - float64(cum-c)
		return lo + (hi-lo)*(inBucket/float64(c))
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Quantile estimates the q-quantile of the live histogram.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// QuantileDuration is Quantile for histograms observing seconds,
// rendered as a duration rounded to the microsecond.
func (s HistogramSnapshot) QuantileDuration(q float64) time.Duration {
	return time.Duration(s.Quantile(q) * float64(time.Second)).Round(time.Microsecond)
}

package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestObserveExemplarAttachesToBucket(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	if h.Exemplars() != nil {
		t.Fatal("fresh histogram already has an exemplar store")
	}

	// Empty trace id degrades to a plain Observe: no store is attached.
	h.ObserveExemplar(0.005, "")
	if h.Exemplars() != nil {
		t.Fatal("untraced observation attached an exemplar store")
	}
	if got := h.Snapshot().Count; got != 1 {
		t.Fatalf("count = %d, want 1 (the untraced observation still counts)", got)
	}

	h.ObserveExemplar(0.005, "aaaa")
	h.ObserveExemplar(0.0005, "bbbb")
	h.ObserveExemplar(0.5, "cccc") // lands in the +Inf bucket
	exs := h.Exemplars()
	if exs == nil || len(exs) != 4 {
		t.Fatalf("Exemplars() = %v, want 4 slots (3 bounds + Inf)", exs)
	}
	if exs[0].TraceID != "bbbb" || exs[1].TraceID != "aaaa" || exs[2] != nil || exs[3].TraceID != "cccc" {
		t.Errorf("bucket exemplars = %v, want bbbb/aaaa/nil/cccc", exs)
	}

	// Last write wins within a bucket.
	h.ObserveExemplar(0.006, "dddd")
	if got := h.Exemplars()[1]; got.TraceID != "dddd" || got.Value != 0.006 {
		t.Errorf("bucket 1 exemplar = %+v, want the newest (dddd, 0.006)", got)
	}
}

func TestExemplarForQuantile(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	if h.ExemplarForQuantile(0.99) != nil {
		t.Fatal("empty histogram returned an exemplar")
	}
	// 98 fast requests, 2 slow ones: p99 sits in the slow bucket.
	for i := 0; i < 98; i++ {
		h.ObserveExemplar(0.0005, "fast")
	}
	h.ObserveExemplar(0.05, "slow-a")
	h.ObserveExemplar(0.06, "slow-b")
	if got := h.ExemplarForQuantile(0.99); got == nil || got.TraceID != "slow-b" {
		t.Errorf("p99 exemplar = %+v, want the slow bucket's last occupant slow-b", got)
	}
	if got := h.ExemplarForQuantile(0.50); got == nil || got.TraceID != "fast" {
		t.Errorf("p50 exemplar = %+v, want fast", got)
	}
}

func TestExemplarFallsBackToLowerBucket(t *testing.T) {
	h := NewHistogram(0.001, 0.01, 0.1)
	h.ObserveExemplar(0.0005, "traced")
	h.Observe(0.05) // tail bucket populated but never traced
	if got := h.ExemplarForQuantile(0.99); got == nil || got.TraceID != "traced" {
		t.Errorf("p99 exemplar = %+v, want fallback to the traced lower bucket", got)
	}
}

func TestObserveExemplarConcurrent(t *testing.T) {
	h := NewHistogram(LatencyBuckets()...)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.ObserveExemplar(0.002, "t")
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 1600 {
		t.Errorf("count = %d, want 1600", got)
	}
	if got := h.ExemplarForQuantile(0.99); got == nil || got.TraceID != "t" {
		t.Errorf("exemplar lost under concurrency: %+v", got)
	}
}

func TestQueryExemplarReachableFromRegistry(t *testing.T) {
	r := NewRegistry()
	r.ObserveError(5*time.Millisecond, "deadbeef")
	if got := r.Latency.ExemplarForQuantile(0.99); got == nil || got.TraceID != "deadbeef" {
		t.Errorf("latency exemplar = %+v, want the observed trace id", got)
	}
}

func TestBuildInfoAndUptime(t *testing.T) {
	r := NewRegistry()
	if bi := r.BuildInfo(); bi != (BuildInfo{}) {
		t.Fatalf("unset build info = %+v, want zero", bi)
	}
	r.SetBuildInfo("v1.2.3", "go1.22", "cafebabe")
	bi := r.BuildInfo()
	if bi.Version != "v1.2.3" || bi.GoVersion != "go1.22" || bi.Commit != "cafebabe" {
		t.Fatalf("build info = %+v", bi)
	}
	if r.Uptime() < 0 {
		t.Error("negative uptime")
	}

	snap := r.Snapshot()
	if snap.Build != bi {
		t.Errorf("snapshot build = %+v, want %+v", snap.Build, bi)
	}
	if snap.Uptime < 0 {
		t.Error("snapshot uptime negative")
	}

	var buf strings.Builder
	if err := snap.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		`existdlog_build_info{commit="cafebabe",goversion="go1.22",version="v1.2.3"} 1`,
		"existdlog_process_uptime_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
	// Exemplars stay out of the 0.0.4 text format (golden-tested):
	// nothing in the scrape may mention a trace id.
	r.ObserveError(time.Millisecond, "feedface")
	buf.Reset()
	if err := r.Snapshot().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "feedface") {
		t.Error("exemplar trace id leaked into the text exposition")
	}
}

package obs

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"

	"existdlog/internal/engine"
	"existdlog/internal/parser"
)

func TestHistogramObserveAndSnapshot(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 50, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	if s.Count != 6 {
		t.Fatalf("count = %d, want 6", s.Count)
	}
	want := []int64{2, 1, 1, 2} // <=1: {0.5,1}; <=10: {5}; <=100: {50}; +Inf: {500,5000}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if got := s.Sum; math.Abs(got-5556.5) > 1e-9 {
		t.Errorf("sum = %v, want 5556.5", got)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	// 100 observations uniform in (0,1]: p50 interpolates inside the
	// first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if q := h.Quantile(0.5); q <= 0 || q > 1 {
		t.Errorf("p50 = %v, want within (0,1]", q)
	}
	h2 := NewHistogram(1, 2, 4, 8)
	for i := 0; i < 90; i++ {
		h2.Observe(0.5)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(3) // lands in (2,4]
	}
	if q := h2.Quantile(0.99); q <= 2 || q > 4 {
		t.Errorf("p99 = %v, want within (2,4]", q)
	}
	// +Inf observations clamp to the top finite bound.
	h3 := NewHistogram(1, 2)
	h3.Observe(1000)
	if q := h3.Quantile(0.5); q != 2 {
		t.Errorf("overflow quantile = %v, want clamp to 2", q)
	}
	var empty HistogramSnapshot
	if q := empty.Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %v, want 0", q)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-increasing bounds should panic")
		}
	}()
	NewHistogram(1, 1)
}

// evalTraced evaluates src with tracing and feeds the registry the way
// the server does.
func evalTraced(t *testing.T, reg *Registry, src string, opts engine.Options) *engine.Result {
	t.Helper()
	res, err := parse(t, src, reg, opts)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func parse(t *testing.T, src string, reg *Registry, opts engine.Options) (*engine.Result, error) {
	t.Helper()
	pr, err := parser.Parse(src)
	if err != nil {
		return nil, err
	}
	db := engine.NewDatabase()
	if err := db.AddAtoms(pr.Facts); err != nil {
		return nil, err
	}
	opts.Trace = true
	start := time.Now()
	res, err := engine.Eval(pr.Program, db, opts)
	elapsed := time.Since(start)
	outcome := OutcomeOK
	if err != nil {
		if res == nil || !res.Partial {
			reg.ObserveError(elapsed, "")
			return nil, err
		}
		outcome = OutcomePartial
	}
	reg.ObserveQuery(res.Stats, res.Trace, elapsed, outcome, "")
	return res, nil
}

// chainSrc builds a transitive-closure program over a random chain/graph.
func chainSrc(rng *rand.Rand) string {
	var sb strings.Builder
	sb.WriteString("a(X,Y) :- p(X,Z), a(Z,Y).\na(X,Y) :- p(X,Y).\n?- a(X,Y).\n")
	n := 3 + rng.Intn(8)
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "p(%d,%d).\n", rng.Intn(n), rng.Intn(n))
	}
	return sb.String()
}

// TestRegistryPartitionsStats is the acceptance property test: across a
// randomized query sequence, the registry's lifetime counters equal the
// sum of the per-query Stats exactly — complete and partial (limit-hit)
// queries alike — and the per-rule series sum to the same totals.
func TestRegistryPartitionsStats(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	reg := NewRegistry()
	var want struct {
		facts, derivs, dups, probes, iters, retired, firings int64
		ok, partial                                          int64
	}
	for q := 0; q < 60; q++ {
		src := chainSrc(rng)
		opts := engine.Options{BooleanCut: true}
		if q%7 == 3 {
			opts.MaxFacts = 1 + rng.Intn(3) // force some partial results
		}
		if q%2 == 1 {
			opts.Strategy = engine.Parallel
		}
		res, err := parse(t, src, reg, opts)
		if err != nil && (res == nil || !res.Partial) {
			t.Fatalf("query %d: %v", q, err)
		}
		if res.Partial {
			want.partial++
		} else {
			want.ok++
		}
		want.facts += int64(res.Stats.FactsDerived)
		want.derivs += res.Stats.Derivations
		want.dups += res.Stats.DuplicateHits
		want.probes += res.Stats.JoinProbes
		want.iters += int64(res.Stats.Iterations)
		want.retired += int64(res.Stats.RulesRetired)
		want.firings += res.Trace.TotalFirings()
	}
	s := reg.Snapshot()
	if s.FactsDerived != want.facts || s.Derivations != want.derivs ||
		s.DuplicateHits != want.dups || s.JoinProbes != want.probes ||
		s.Iterations != want.iters || s.RulesRetired != want.retired ||
		s.RuleFirings != want.firings {
		t.Errorf("registry totals %+v diverge from summed Stats %+v", s, want)
	}
	if s.Queries[OutcomeOK] != want.ok || s.Queries[OutcomePartial] != want.partial {
		t.Errorf("outcomes ok=%d partial=%d, want ok=%d partial=%d",
			s.Queries[OutcomeOK], s.Queries[OutcomePartial], want.ok, want.partial)
	}
	if s.TotalQueries() != 60 {
		t.Errorf("total queries %d, want 60", s.TotalQueries())
	}
	// Per-rule series partition the same totals.
	var ruleFacts, ruleDerivs, ruleDups, ruleProbes, ruleFirings int64
	for _, r := range s.Rules {
		ruleFacts += r.Facts
		ruleDerivs += r.Emitted
		ruleDups += r.Duplicates
		ruleProbes += r.Probes
		ruleFirings += r.Firings
	}
	if ruleFacts != want.facts || ruleDerivs != want.derivs ||
		ruleDups != want.dups || ruleProbes != want.probes || ruleFirings != want.firings {
		t.Errorf("per-rule sums (facts=%d derivs=%d dups=%d probes=%d firings=%d) diverge from %+v",
			ruleFacts, ruleDerivs, ruleDups, ruleProbes, ruleFirings, want)
	}
	// Histogram counts agree with the query count.
	if s.Latency.Count != 60 || s.Facts.Count != 60 {
		t.Errorf("histogram counts latency=%d facts=%d, want 60", s.Latency.Count, s.Facts.Count)
	}
}

// TestExpositionValid renders a populated registry and feeds it through
// the strict exposition parser — the acceptance check that /metrics is
// valid Prometheus text.
func TestExpositionValid(t *testing.T) {
	reg := NewRegistry()
	evalTraced(t, reg, "a(X,Y) :- p(X,Z), a(Z,Y).\na(X,Y) :- p(X,Y).\n?- a(X,Y).\np(1,2). p(2,3).\n",
		engine.Options{BooleanCut: true})
	reg.CacheMiss()
	reg.CacheHit()
	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	families, err := ParseExposition(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("exposition does not parse: %v\n%s", err, sb.String())
	}
	for _, want := range []string{
		"existdlog_queries_total", "existdlog_queries_in_flight",
		"existdlog_queue_depth", "existdlog_facts_derived_total",
		"existdlog_query_duration_seconds", "existdlog_query_facts",
		"existdlog_delta_size", "existdlog_rule_firings_total",
		"existdlog_rule_cuts_total", "existdlog_optimize_cache_total",
		"existdlog_process_start_time_seconds",
	} {
		if families[want] == nil {
			t.Errorf("family %s missing from exposition", want)
		}
	}
	// The rule labels carry the rule text verbatim.
	found := false
	for _, smp := range families["existdlog_rule_firings_total"].Samples {
		if smp.Labels["rule"] == "a(X,Y) :- p(X,Y)." {
			found = true
		}
	}
	if !found {
		t.Errorf("rule label missing:\n%s", sb.String())
	}
}

func TestExpositionParserRejectsMalformed(t *testing.T) {
	bad := []string{
		"existdlog_x 1\n",                               // sample without TYPE
		"# TYPE m counter\nm{le=0.1} 1\n",               // unquoted label value
		"# TYPE m counter\nm{le=\"0.1\"\n",              // unbalanced braces
		"# TYPE m counter\nm notanumber\n",              // bad value
		"# TYPE m wibble\nm 1\n",                        // unknown type
		"# TYPE 0bad counter\n",                         // bad name
		"# TYPE m histogram\nm_bucket{le=\"+Inf\"} 1\n", // missing sum/count
		"# TYPE m counter\nm{x=\"a\"} 1 2 3\n",          // junk after value
		"m 1\n# TYPE m counter\n",                       // sample precedes its TYPE
	}
	for _, src := range bad {
		if _, err := ParseExposition(strings.NewReader(src)); err == nil {
			t.Errorf("parser accepted malformed input %q", src)
		}
	}
	// Non-cumulative histogram buckets are rejected.
	h := `# TYPE m histogram
m_bucket{le="1"} 5
m_bucket{le="2"} 3
m_bucket{le="+Inf"} 5
m_sum 1
m_count 5
`
	if _, err := ParseExposition(strings.NewReader(h)); err == nil {
		t.Error("parser accepted non-cumulative buckets")
	}
}

func TestEscapeLabel(t *testing.T) {
	in := "a \"b\" \\c\nd"
	want := `a \"b\" \\c\nd`
	if got := escapeLabel(in); got != want {
		t.Errorf("escapeLabel = %q, want %q", got, want)
	}
}

// TestConcurrentObserveAndScrape hammers the registry from observer and
// scraper goroutines at once; every scrape must remain valid exposition
// (run under -race in the CI serve job).
func TestConcurrentObserveAndScrape(t *testing.T) {
	reg := NewRegistry()
	stats := engine.Stats{FactsDerived: 3, Derivations: 5, DuplicateHits: 2, JoinProbes: 7, Iterations: 2}
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				done := reg.QueryStarted()
				reg.QueueEnter()
				reg.ObserveQuery(stats, nil, time.Millisecond, OutcomeOK, "")
				reg.QueueLeave()
				done()
			}
		}()
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				var sb strings.Builder
				if err := reg.WritePrometheus(&sb); err != nil {
					t.Error(err)
					return
				}
				if _, err := ParseExposition(strings.NewReader(sb.String())); err != nil {
					t.Errorf("mid-flight scrape invalid: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	s := reg.Snapshot()
	if s.Queries[OutcomeOK] != 2000 || s.FactsDerived != 6000 {
		t.Errorf("after concurrent observes: %+v", s)
	}
	if s.InFlight != 0 || s.QueueDepth != 0 {
		t.Errorf("gauges did not return to zero: %+v", s)
	}
}

package harness

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// SLO is a parsed service-level objective spec for a loadgen run:
// comma-separated objectives, each a bound the finished report must
// satisfy. The grammar:
//
//	p50=2ms            overall latency quantile bound (p50/p95/p99)
//	point.p99=10ms     the same, scoped to one request class
//	errors=0           at most this many error outcomes
//	partials=3         at most this many partial outcomes
//	goodput=20         at least this many OK responses per second
//
// "=" reads as "at most" (p99=50ms means the observed p99 must not
// exceed 50ms) — except goodput, which is a floor: the overload
// scenario defends a minimum rate of successfully served requests
// while everything beyond it is rejected.
type SLO struct {
	Objectives []Objective
}

// Objective is one bound of an SLO.
type Objective struct {
	// Name is the objective's left-hand side as written ("p99",
	// "point.p99", "errors").
	Name string
	// Class scopes a latency objective to one request class ("" =
	// overall).
	Class string
	// Quantile is 0.50, 0.95, or 0.99 for latency objectives.
	Quantile float64
	// MaxLatency bounds the quantile for latency objectives.
	MaxLatency time.Duration
	// Count marks a count objective (errors/partials), bounded by
	// MaxCount.
	Count    bool
	MaxCount int64
	// Goodput marks a goodput-floor objective: the run's OK rate must
	// be at least MinGoodput responses per second.
	Goodput    bool
	MinGoodput float64
}

// SLOResult is one objective's verdict against a finished report.
type SLOResult struct {
	Objective string `json:"objective"`
	Observed  string `json:"observed"`
	Pass      bool   `json:"pass"`
}

// SLOPassed reports whether every objective passed.
func SLOPassed(results []SLOResult) bool {
	for _, r := range results {
		if !r.Pass {
			return false
		}
	}
	return true
}

var quantileNames = map[string]float64{"p50": 0.50, "p95": 0.95, "p99": 0.99}

// ParseSLO parses a spec like "p99=50ms,errors=0". An empty spec yields
// an SLO with no objectives (which trivially passes).
func ParseSLO(spec string) (*SLO, error) {
	s := &SLO{}
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return s, nil
	}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		name, value, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("slo: objective %q is not name=value", part)
		}
		name, value = strings.TrimSpace(name), strings.TrimSpace(value)
		obj := Objective{Name: name}
		switch name {
		case "errors", "partials":
			n, err := strconv.ParseInt(value, 10, 64)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("slo: %s wants a non-negative count, got %q", name, value)
			}
			obj.Count = true
			obj.MaxCount = n
		case "goodput":
			f, err := strconv.ParseFloat(value, 64)
			if err != nil || f < 0 {
				return nil, fmt.Errorf("slo: goodput wants a non-negative rate (rps), got %q", value)
			}
			obj.Goodput = true
			obj.MinGoodput = f
		default:
			qname := name
			if class, rest, scoped := strings.Cut(name, "."); scoped {
				obj.Class = class
				qname = rest
			}
			q, ok := quantileNames[qname]
			if !ok {
				return nil, fmt.Errorf("slo: unknown objective %q (want p50/p95/p99, class.pXX, errors, partials, goodput)", name)
			}
			d, err := time.ParseDuration(value)
			if err != nil || d <= 0 {
				return nil, fmt.Errorf("slo: %s wants a positive duration, got %q", name, value)
			}
			obj.Quantile = q
			obj.MaxLatency = d
		}
		s.Objectives = append(s.Objectives, obj)
	}
	return s, nil
}

// Evaluate checks every objective against a finished load report and
// returns the verdicts in objective order.
func (s *SLO) Evaluate(rep *LoadReport) []SLOResult {
	results := make([]SLOResult, 0, len(s.Objectives))
	for _, obj := range s.Objectives {
		r := SLOResult{}
		switch {
		case obj.Goodput:
			observed := rep.Results.GoodputRPS
			r.Objective = fmt.Sprintf("goodput >= %g rps", obj.MinGoodput)
			r.Observed = fmt.Sprintf("%.4g rps", observed)
			r.Pass = observed >= obj.MinGoodput
		case obj.Count:
			observed := int64(rep.Results.Errors)
			if obj.Name == "partials" {
				observed = int64(rep.Results.Partial)
			}
			r.Objective = fmt.Sprintf("%s <= %d", obj.Name, obj.MaxCount)
			r.Observed = strconv.FormatInt(observed, 10)
			r.Pass = observed <= obj.MaxCount
		default:
			observed := rep.quantile(obj.Class, obj.Quantile)
			r.Objective = fmt.Sprintf("%s <= %s", obj.Name, obj.MaxLatency)
			r.Observed = observed.String()
			r.Pass = observed <= obj.MaxLatency
		}
		results = append(results, r)
	}
	return results
}

package harness

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"existdlog/internal/obs"
	"existdlog/internal/tracespan"
	"existdlog/internal/workload"
)

// LoadReportSchema versions the BENCH_<scenario>.json format the
// loadgen verb persists. Bump it when a field changes meaning; the
// -check validator refuses foreign schemas.
const LoadReportSchema = "existdlog-loadgen/v1"

// LoadSample is one executed request's measurement, as the open-loop
// runner records it.
type LoadSample struct {
	Class   workload.Class
	Latency time.Duration
	// Outcome is "ok", "partial", "error", "rejected" (the server
	// refused it before evaluation: 429/503 from admission control,
	// draining, or degraded mode), or "skipped" (scheduled but never
	// issued because the run was cancelled).
	Outcome string
	// TraceID is the trace id the runner pinned on the request (hex),
	// empty when the runner did not propagate one. It links the sample to
	// the server's flight recorder for exemplar resolution.
	TraceID string
}

// ExemplarRef names one concrete request behind a latency quantile: the
// worst offender the report's summary statistics would otherwise hide.
// Trace is the server-side span tree for that request, resolved from
// the flight recorder after the run (nil when the recorder was disabled
// or had already evicted it); StageCoverage is the resolved tree's
// stage-sum over its measured duration.
type ExemplarRef struct {
	// Class is empty for the overall distribution.
	Class          workload.Class     `json:"class,omitempty"`
	Quantile       float64            `json:"quantile"`
	LatencySeconds float64            `json:"latency_seconds"`
	TraceID        string             `json:"trace_id"`
	Trace          *tracespan.Request `json:"trace,omitempty"`
	StageCoverage  float64            `json:"stage_coverage,omitempty"`
}

// PeriodSummary is one arrival period in report units.
type PeriodSummary struct {
	RateRPS float64 `json:"rate_rps"`
	Seconds float64 `json:"seconds"`
}

// ClassSchedule summarizes one class's slice of the schedule. Counts
// and offsets are functions of (scenario, seed) alone, so this block is
// byte-identical across runs with the same seed.
type ClassSchedule struct {
	Class       workload.Class `json:"class"`
	Count       int            `json:"count"`
	FirstOffset time.Duration  `json:"first_offset_ns"`
	LastOffset  time.Duration  `json:"last_offset_ns"`
}

// ScheduleSummary pins the generated schedule: request count, span,
// per-class counts/offsets, and the FNV digest over the full request
// sequence (offsets, classes, goals, payloads).
type ScheduleSummary struct {
	Requests        int             `json:"requests"`
	DurationSeconds float64         `json:"duration_seconds"`
	Digest          string          `json:"digest"`
	Classes         []ClassSchedule `json:"classes"`
}

// LatencyQuantiles are interpolated histogram quantile estimates —
// the same estimator the serve-mode Prometheus histograms use.
type LatencyQuantiles struct {
	P50 time.Duration `json:"p50_ns"`
	P95 time.Duration `json:"p95_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// ClassResult is one class's measured outcome counts and latency.
// Rejected requests are excluded from the latency quantiles: a 429
// returned in microseconds says nothing about evaluation latency, and
// folding it in would make an overloaded server look fast.
type ClassResult struct {
	Class    workload.Class `json:"class"`
	Issued   int            `json:"issued"`
	OK       int            `json:"ok"`
	Partial  int            `json:"partial"`
	Errors   int            `json:"errors"`
	Rejected int            `json:"rejected,omitempty"`
	LatencyQuantiles
}

// LoadResults are the run's measured outcomes. Issued always equals
// OK + Partial + Errors + Rejected — the runner classifies every
// issued request into exactly one bucket; Skipped counts scheduled
// requests a cancelled run never sent. GoodputRPS is the rate of OK
// responses alone: the overload scenario's defended metric, since
// under saturation throughput of *accepted* work is what matters.
type LoadResults struct {
	Issued         int              `json:"issued"`
	OK             int              `json:"ok"`
	Partial        int              `json:"partial"`
	Errors         int              `json:"errors"`
	Rejected       int              `json:"rejected,omitempty"`
	Skipped        int              `json:"skipped"`
	ElapsedSeconds float64          `json:"elapsed_seconds"`
	ThroughputRPS  float64          `json:"throughput_rps"`
	GoodputRPS     float64          `json:"goodput_rps,omitempty"`
	Overall        LatencyQuantiles `json:"overall"`
	Classes        []ClassResult    `json:"classes"`
}

// LoadReport is the persisted BENCH_<scenario>.json: enough to compare
// runs across commits (scenario, seed, rev, schedule identity) plus the
// measured quantiles and SLO verdicts.
type LoadReport struct {
	Schema      string          `json:"schema"`
	Scenario    string          `json:"scenario"`
	Seed        int64           `json:"seed"`
	GitRev      string          `json:"git_rev"`
	GeneratedAt string          `json:"generated_at"`
	Periods     []PeriodSummary `json:"periods"`
	Schedule    ScheduleSummary `json:"schedule"`
	Results     LoadResults     `json:"results"`
	SLO         []SLOResult     `json:"slo,omitempty"`
	// Exemplars link the report's tail quantiles to the concrete requests
	// behind them. Present only when the runner propagated trace ids.
	Exemplars []ExemplarRef `json:"exemplars,omitempty"`
}

// quantile looks up a latency quantile for Evaluate: overall when class
// is empty, else that class's row (absent class = zero, trivially met).
func (r *LoadReport) quantile(class string, q float64) time.Duration {
	pick := func(lq LatencyQuantiles) time.Duration {
		switch q {
		case 0.50:
			return lq.P50
		case 0.95:
			return lq.P95
		default:
			return lq.P99
		}
	}
	if class == "" {
		return pick(r.Results.Overall)
	}
	for _, c := range r.Results.Classes {
		if string(c.Class) == class {
			return pick(c.LatencyQuantiles)
		}
	}
	return 0
}

// BuildLoadReport assembles the report from the trace that was driven
// and the samples the runner measured. rev and at are injectable (the
// golden layer pins them); slo may be nil for no verdicts.
func BuildLoadReport(tr *workload.Trace, samples []LoadSample, elapsed time.Duration, rev string, at time.Time, slo *SLO) *LoadReport {
	rep := &LoadReport{
		Schema:      LoadReportSchema,
		Scenario:    tr.Scenario,
		Seed:        tr.Seed,
		GitRev:      rev,
		GeneratedAt: at.UTC().Format(time.RFC3339),
	}
	for _, p := range tr.Periods {
		rep.Periods = append(rep.Periods, PeriodSummary{RateRPS: p.Rate, Seconds: p.Duration.Seconds()})
	}

	rep.Schedule = ScheduleSummary{
		Requests:        len(tr.Requests),
		DurationSeconds: tr.Duration().Seconds(),
		Digest:          tr.Digest(),
	}
	sched := map[workload.Class]*ClassSchedule{}
	for _, req := range tr.Requests {
		cs, ok := sched[req.Class]
		if !ok {
			cs = &ClassSchedule{Class: req.Class, FirstOffset: req.Offset}
			sched[req.Class] = cs
		}
		cs.Count++
		cs.LastOffset = req.Offset
	}

	overall := obs.NewHistogram(obs.LatencyBuckets()...)
	hists := map[workload.Class]*obs.Histogram{}
	results := map[workload.Class]*ClassResult{}
	// Served samples that carry a trace id, kept per class and overall so
	// the p99 rows can be resolved to the concrete requests behind them.
	traced := map[workload.Class][]LoadSample{}
	var tracedAll []LoadSample
	for _, s := range samples {
		cr, ok := results[s.Class]
		if !ok {
			cr = &ClassResult{Class: s.Class}
			results[s.Class] = cr
			hists[s.Class] = obs.NewHistogram(obs.LatencyBuckets()...)
		}
		switch s.Outcome {
		case "skipped":
			rep.Results.Skipped++
			continue
		case "rejected":
			// Counted as issued, excluded from latency: the histograms
			// describe served requests only.
			cr.Rejected++
			rep.Results.Rejected++
			cr.Issued++
			rep.Results.Issued++
			continue
		case "partial":
			cr.Partial++
			rep.Results.Partial++
		case "error":
			cr.Errors++
			rep.Results.Errors++
		default:
			cr.OK++
			rep.Results.OK++
		}
		cr.Issued++
		rep.Results.Issued++
		hists[s.Class].ObserveDuration(s.Latency)
		overall.ObserveDuration(s.Latency)
		if s.TraceID != "" {
			traced[s.Class] = append(traced[s.Class], s)
			tracedAll = append(tracedAll, s)
		}
	}
	for _, class := range workload.Classes {
		if cs, ok := sched[class]; ok {
			rep.Schedule.Classes = append(rep.Schedule.Classes, *cs)
		}
		cr, ok := results[class]
		if !ok {
			continue
		}
		snap := hists[class].Snapshot()
		cr.P50, cr.P95, cr.P99 = snap.QuantileDuration(0.50), snap.QuantileDuration(0.95), snap.QuantileDuration(0.99)
		rep.Results.Classes = append(rep.Results.Classes, *cr)
	}
	snap := overall.Snapshot()
	rep.Results.Overall = LatencyQuantiles{
		P50: snap.QuantileDuration(0.50),
		P95: snap.QuantileDuration(0.95),
		P99: snap.QuantileDuration(0.99),
	}
	if ex := pickExemplar(tracedAll, rep.Results.Overall.P99); ex != nil {
		rep.Exemplars = append(rep.Exemplars, *ex)
	}
	for _, cr := range rep.Results.Classes {
		if ex := pickExemplar(traced[cr.Class], cr.P99); ex != nil {
			ex.Class = cr.Class
			rep.Exemplars = append(rep.Exemplars, *ex)
		}
	}
	rep.Results.ElapsedSeconds = elapsed.Seconds()
	if elapsed > 0 {
		rep.Results.ThroughputRPS = float64(rep.Results.Issued) / elapsed.Seconds()
		rep.Results.GoodputRPS = float64(rep.Results.OK) / elapsed.Seconds()
	}
	if slo != nil {
		rep.SLO = slo.Evaluate(rep)
	}
	return rep
}

// pickExemplar resolves the traced sample behind a quantile estimate:
// the slowest-but-one request at or above it — the cheapest request the
// estimator counted toward the tail — falling back to the slowest traced
// sample when the interpolated estimate overshoots every observation.
// Nil when no served sample carried a trace id.
func pickExemplar(samples []LoadSample, q time.Duration) *ExemplarRef {
	var best *LoadSample
	var worst *LoadSample
	for i := range samples {
		s := &samples[i]
		if worst == nil || s.Latency > worst.Latency {
			worst = s
		}
		if s.Latency >= q && (best == nil || s.Latency < best.Latency) {
			best = s
		}
	}
	if best == nil {
		best = worst
	}
	if best == nil {
		return nil
	}
	return &ExemplarRef{
		Quantile:       0.99,
		LatencySeconds: best.Latency.Seconds(),
		TraceID:        best.TraceID,
	}
}

// Validate checks a report's internal consistency: the schema version,
// the schedule partition (per-class counts sum to the request count),
// and the outcome partition (issued = ok + partial + errors). The
// -check verb and the CI loadgen job run this over emitted files.
func (r *LoadReport) Validate() error {
	if r.Schema != LoadReportSchema {
		return fmt.Errorf("loadreport: schema %q, want %q", r.Schema, LoadReportSchema)
	}
	if r.Scenario == "" {
		return fmt.Errorf("loadreport: missing scenario")
	}
	if r.Schedule.Digest == "" {
		return fmt.Errorf("loadreport: missing schedule digest")
	}
	sched := 0
	for _, c := range r.Schedule.Classes {
		sched += c.Count
	}
	if sched != r.Schedule.Requests {
		return fmt.Errorf("loadreport: class schedule counts sum to %d, want %d", sched, r.Schedule.Requests)
	}
	if got := r.Results.OK + r.Results.Partial + r.Results.Errors + r.Results.Rejected; got != r.Results.Issued {
		return fmt.Errorf("loadreport: ok+partial+errors+rejected = %d does not partition issued = %d", got, r.Results.Issued)
	}
	if r.Results.Issued+r.Results.Skipped > r.Schedule.Requests {
		return fmt.Errorf("loadreport: issued %d + skipped %d exceeds scheduled %d",
			r.Results.Issued, r.Results.Skipped, r.Schedule.Requests)
	}
	for _, c := range r.Results.Classes {
		if got := c.OK + c.Partial + c.Errors + c.Rejected; got != c.Issued {
			return fmt.Errorf("loadreport: class %s outcomes %d do not partition issued %d", c.Class, got, c.Issued)
		}
	}
	for i, ex := range r.Exemplars {
		if ex.TraceID == "" {
			return fmt.Errorf("loadreport: exemplar %d has no trace id", i)
		}
		if ex.Trace == nil {
			continue
		}
		if ex.Trace.TraceID != ex.TraceID {
			return fmt.Errorf("loadreport: exemplar %d trace id %s does not match embedded span tree %s",
				i, ex.TraceID, ex.Trace.TraceID)
		}
		if err := ex.Trace.Validate(); err != nil {
			return fmt.Errorf("loadreport: exemplar %d (%s): %w", i, ex.TraceID, err)
		}
		if got := ex.Trace.StageCoverage(); got < ex.StageCoverage-1e-9 || got > ex.StageCoverage+1e-9 {
			return fmt.Errorf("loadreport: exemplar %d (%s): stage coverage %.6f does not match span tree %.6f",
				i, ex.TraceID, ex.StageCoverage, got)
		}
	}
	return nil
}

// ReadLoadReport loads and validates a persisted report, rejecting
// unknown fields so schema drift is caught rather than ignored.
func ReadLoadReport(r io.Reader) (*LoadReport, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var rep LoadReport
	if err := dec.Decode(&rep); err != nil {
		return nil, fmt.Errorf("loadreport: decoding: %w", err)
	}
	if err := rep.Validate(); err != nil {
		return nil, err
	}
	return &rep, nil
}

// WriteLoadJSON persists the report as indented JSON — the
// BENCH_<scenario>.json format.
func WriteLoadJSON(w io.Writer, rep *LoadReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

// WriteLoadTable renders the human-readable run summary: the schedule,
// the per-class outcome/latency table, throughput, and the SLO verdict.
func WriteLoadTable(w io.Writer, rep *LoadReport) {
	fmt.Fprintf(w, "== loadgen: %s (seed %d, rev %s) ==\n", rep.Scenario, rep.Seed, rep.GitRev)
	fmt.Fprintf(w, "arrivals:")
	for i, p := range rep.Periods {
		if i > 0 {
			fmt.Fprintf(w, " |")
		}
		fmt.Fprintf(w, " %.4grps/%.4gs", p.RateRPS, p.Seconds)
	}
	fmt.Fprintf(w, "\nschedule: %d requests over %.4gs, digest %s\n",
		rep.Schedule.Requests, rep.Schedule.DurationSeconds, rep.Schedule.Digest)
	fmt.Fprintf(w, "%-10s %6s %6s %6s %7s %6s %8s %10s %10s %10s\n",
		"class", "sched", "issued", "ok", "partial", "error", "rejected", "p50", "p95", "p99")
	schedCount := map[workload.Class]int{}
	for _, c := range rep.Schedule.Classes {
		schedCount[c.Class] = c.Count
	}
	for _, c := range rep.Results.Classes {
		fmt.Fprintf(w, "%-10s %6d %6d %6d %7d %6d %8d %10s %10s %10s\n",
			c.Class, schedCount[c.Class], c.Issued, c.OK, c.Partial, c.Errors, c.Rejected,
			c.P50, c.P95, c.P99)
	}
	o := rep.Results
	fmt.Fprintf(w, "%-10s %6d %6d %6d %7d %6d %8d %10s %10s %10s\n",
		"total", rep.Schedule.Requests, o.Issued, o.OK, o.Partial, o.Errors, o.Rejected,
		o.Overall.P50, o.Overall.P95, o.Overall.P99)
	if o.Skipped > 0 {
		fmt.Fprintf(w, "skipped: %d scheduled requests were never issued (run cancelled)\n", o.Skipped)
	}
	fmt.Fprintf(w, "throughput: %.4g rps issued over %.4gs\n", o.ThroughputRPS, o.ElapsedSeconds)
	if o.Rejected > 0 {
		fmt.Fprintf(w, "goodput: %.4g rps ok (%d rejected before evaluation)\n", o.GoodputRPS, o.Rejected)
	}
	if len(rep.Exemplars) > 0 {
		fmt.Fprintf(w, "p99 exemplars:\n")
		for _, ex := range rep.Exemplars {
			class := "overall"
			if ex.Class != "" {
				class = string(ex.Class)
			}
			line := fmt.Sprintf("  %-10s %8.3fms trace %s", class, ex.LatencySeconds*1e3, ex.TraceID)
			if ex.Trace != nil {
				line += fmt.Sprintf(" (%d spans, %.0f%% staged)", len(ex.Trace.Spans), ex.StageCoverage*100)
			}
			fmt.Fprintln(w, line)
		}
	}
	if len(rep.SLO) > 0 {
		verdict := "PASS"
		if !SLOPassed(rep.SLO) {
			verdict = "FAIL"
		}
		fmt.Fprintf(w, "SLO verdict: %s\n", verdict)
		for _, r := range rep.SLO {
			status := "PASS"
			if !r.Pass {
				status = "FAIL"
			}
			fmt.Fprintf(w, "  %s: %s (observed %s)\n", r.Objective, status, r.Observed)
		}
	}
}

// Package harness runs the experiment suite of EXPERIMENTS.md: it
// evaluates program variants over workload sweeps and renders the result
// tables. Each benchmark in the repository's bench_test.go drives one
// experiment through this package so the printed rows and the recorded
// tables come from the same code.
package harness

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"existdlog/internal/ast"
	"existdlog/internal/engine"
	"existdlog/internal/obs"
)

// Row is one measurement: a program variant evaluated over one workload
// instance. The JSON names are the schema of the recorded BENCH_*.json
// files. Under repetition (RunRepeatContext) Elapsed is the mean and
// P50/P95/P99 are latency quantiles estimated from an obs.Histogram of
// the individual runs; single runs leave the quantiles zero.
type Row struct {
	Experiment string        `json:"experiment"`
	Workload   string        `json:"workload"`
	Variant    string        `json:"variant"`
	Rules      int           `json:"rules"`
	Answers    int           `json:"answers"`
	Facts      int           `json:"facts"`  // distinct derived facts
	Derivs     int64         `json:"derivs"` // derivations incl. duplicates
	Dups       int64         `json:"dups"`   // duplicate-elimination hits
	Iters      int           `json:"iters"`
	Retired    int           `json:"retired"` // rules retired by the boolean cut
	Elapsed    time.Duration `json:"elapsed_ns"`
	Repeats    int           `json:"repeats,omitempty"`
	P50        time.Duration `json:"p50_ns,omitempty"`
	P95        time.Duration `json:"p95_ns,omitempty"`
	P99        time.Duration `json:"p99_ns,omitempty"`
}

// Run evaluates p over db and returns the filled row.
func Run(experiment, workload, variant string, p *ast.Program, db *engine.Database, opts engine.Options) (Row, error) {
	return RunContext(context.Background(), experiment, workload, variant, p, db, opts)
}

// RunContext is Run under a context. An aborted evaluation (cancellation,
// deadline, limit) still returns a filled row — the measurements of the
// partial result, with the variant marked — alongside the error, so
// deadline-bounded suites can render what they measured before the cut.
func RunContext(ctx context.Context, experiment, workload, variant string, p *ast.Program, db *engine.Database, opts engine.Options) (Row, error) {
	start := time.Now()
	res, err := engine.EvalContext(ctx, p, db, opts)
	if err != nil {
		if res == nil || !res.Partial {
			return Row{}, fmt.Errorf("%s/%s/%s: %w", experiment, workload, variant, err)
		}
		row := fill(experiment, workload, variant+" (partial)", p, res, time.Since(start))
		return row, fmt.Errorf("%s/%s/%s: %w", experiment, workload, variant, err)
	}
	elapsed := time.Since(start)
	return fill(experiment, workload, variant, p, res, elapsed), nil
}

// RunRepeatContext evaluates the same (variant, workload) repeat times
// and reports latency quantiles: each run's wall time feeds an
// obs.Histogram, Elapsed becomes the mean, and P50/P95/P99 are the
// interpolated quantile estimates (exactly what a Prometheus
// histogram_quantile over the serve-mode latency histogram would
// report). Counters are taken from the last run — evaluation is
// deterministic, so every run derives the same facts. repeat < 1 is
// treated as 1; an aborted run returns like RunContext, with whatever
// quantiles the completed repetitions established.
func RunRepeatContext(ctx context.Context, experiment, workload, variant string, p *ast.Program, db *engine.Database, opts engine.Options, repeat int) (Row, error) {
	if repeat < 1 {
		repeat = 1
	}
	if repeat == 1 {
		return RunContext(ctx, experiment, workload, variant, p, db, opts)
	}
	hist := obs.NewHistogram(obs.LatencyBuckets()...)
	var total time.Duration
	var row Row
	for i := 0; i < repeat; i++ {
		start := time.Now()
		res, err := engine.EvalContext(ctx, p, db, opts)
		elapsed := time.Since(start)
		if err != nil {
			if res == nil || !res.Partial {
				return Row{}, fmt.Errorf("%s/%s/%s: %w", experiment, workload, variant, err)
			}
			row = fill(experiment, workload, variant+" (partial)", p, res, elapsed)
			quantiles(&row, hist, i)
			return row, fmt.Errorf("%s/%s/%s: %w", experiment, workload, variant, err)
		}
		hist.Observe(elapsed.Seconds())
		total += elapsed
		row = fill(experiment, workload, variant, p, res, elapsed)
	}
	row.Elapsed = total / time.Duration(repeat)
	quantiles(&row, hist, repeat)
	return row, nil
}

func quantiles(row *Row, hist *obs.Histogram, completed int) {
	if completed < 1 {
		return
	}
	snap := hist.Snapshot()
	row.Repeats = completed
	row.P50 = snap.QuantileDuration(0.50)
	row.P95 = snap.QuantileDuration(0.95)
	row.P99 = snap.QuantileDuration(0.99)
}

func fill(experiment, workload, variant string, p *ast.Program, res *engine.Result, elapsed time.Duration) Row {
	return Row{
		Experiment: experiment,
		Workload:   workload,
		Variant:    variant,
		Rules:      len(p.Rules),
		Answers:    res.AnswerCount(p.Query),
		Facts:      res.Stats.FactsDerived,
		Derivs:     res.Stats.Derivations,
		Dups:       res.Stats.DuplicateHits,
		Iters:      res.Stats.Iterations,
		Retired:    res.Stats.RulesRetired,
		Elapsed:    elapsed,
	}
}

// WriteTable renders rows as an aligned text table. The quantile
// columns only appear when at least one row carries quantiles (i.e. the
// suite ran with repetition).
func WriteTable(w io.Writer, rows []Row) {
	if len(rows) == 0 {
		return
	}
	withQuantiles := false
	for _, r := range rows {
		if r.Repeats > 1 {
			withQuantiles = true
			break
		}
	}
	fmt.Fprintf(w, "%-6s %-14s %-22s %5s %8s %9s %10s %9s %5s %5s %12s",
		"exp", "workload", "variant", "rules", "answers", "facts", "derivs", "dups", "iters", "cut", "elapsed")
	if withQuantiles {
		fmt.Fprintf(w, " %10s %10s %10s", "p50", "p95", "p99")
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-14s %-22s %5d %8d %9d %10d %9d %5d %5d %12s",
			r.Experiment, r.Workload, r.Variant, r.Rules, r.Answers, r.Facts,
			r.Derivs, r.Dups, r.Iters, r.Retired, r.Elapsed.Round(time.Microsecond))
		if withQuantiles {
			fmt.Fprintf(w, " %10s %10s %10s",
				quantileCell(r, r.P50), quantileCell(r, r.P95), quantileCell(r, r.P99))
		}
		fmt.Fprintln(w)
	}
}

// quantileCell renders one quantile column: single-run rows have no
// distribution to estimate from, so they print "-".
func quantileCell(r Row, d time.Duration) string {
	if r.Repeats <= 1 {
		return "-"
	}
	return d.Round(time.Microsecond).String()
}

// WriteJSON records rows as an indented JSON array — the BENCH_*.json
// format.
func WriteJSON(w io.Writer, rows []Row) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// Table renders rows as a string.
func Table(rows []Row) string {
	var sb strings.Builder
	WriteTable(&sb, rows)
	return sb.String()
}

// Speedup summarizes variant pairs: for each workload present in rows, the
// ratio of the baseline variant's facts/derivations/time to the
// optimized variant's.
func Speedup(rows []Row, baseline, optimized string) string {
	byKey := map[string]map[string]Row{}
	var order []string
	for _, r := range rows {
		m, ok := byKey[r.Workload]
		if !ok {
			m = map[string]Row{}
			byKey[r.Workload] = m
			order = append(order, r.Workload)
		}
		m[r.Variant] = r
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s %12s %12s\n", "workload", "facts×", "derivs×", "time×")
	for _, wl := range order {
		b, okB := byKey[wl][baseline]
		o, okO := byKey[wl][optimized]
		if !okB || !okO {
			continue
		}
		fmt.Fprintf(&sb, "%-14s %12s %12s %12s\n", wl,
			ratio(float64(b.Facts), float64(o.Facts)),
			ratio(float64(b.Derivs), float64(o.Derivs)),
			ratio(float64(b.Elapsed), float64(o.Elapsed)))
	}
	return sb.String()
}

func ratio(a, b float64) string {
	if b == 0 {
		if a == 0 {
			return "1.0"
		}
		return "inf"
	}
	return fmt.Sprintf("%.1f", a/b)
}

// Package harness runs the experiment suite of EXPERIMENTS.md: it
// evaluates program variants over workload sweeps and renders the result
// tables. Each benchmark in the repository's bench_test.go drives one
// experiment through this package so the printed rows and the recorded
// tables come from the same code.
package harness

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"existdlog/internal/ast"
	"existdlog/internal/engine"
)

// Row is one measurement: a program variant evaluated over one workload
// instance.
type Row struct {
	Experiment string
	Workload   string
	Variant    string
	Rules      int
	Answers    int
	Facts      int   // distinct derived facts
	Derivs     int64 // derivations incl. duplicates
	Dups       int64 // duplicate-elimination hits
	Iters      int
	Retired    int // rules retired by the boolean cut
	Elapsed    time.Duration
}

// Run evaluates p over db and returns the filled row.
func Run(experiment, workload, variant string, p *ast.Program, db *engine.Database, opts engine.Options) (Row, error) {
	return RunContext(context.Background(), experiment, workload, variant, p, db, opts)
}

// RunContext is Run under a context. An aborted evaluation (cancellation,
// deadline, limit) still returns a filled row — the measurements of the
// partial result, with the variant marked — alongside the error, so
// deadline-bounded suites can render what they measured before the cut.
func RunContext(ctx context.Context, experiment, workload, variant string, p *ast.Program, db *engine.Database, opts engine.Options) (Row, error) {
	start := time.Now()
	res, err := engine.EvalContext(ctx, p, db, opts)
	if err != nil {
		if res == nil || !res.Partial {
			return Row{}, fmt.Errorf("%s/%s/%s: %w", experiment, workload, variant, err)
		}
		row := fill(experiment, workload, variant+" (partial)", p, res, time.Since(start))
		return row, fmt.Errorf("%s/%s/%s: %w", experiment, workload, variant, err)
	}
	elapsed := time.Since(start)
	return fill(experiment, workload, variant, p, res, elapsed), nil
}

func fill(experiment, workload, variant string, p *ast.Program, res *engine.Result, elapsed time.Duration) Row {
	return Row{
		Experiment: experiment,
		Workload:   workload,
		Variant:    variant,
		Rules:      len(p.Rules),
		Answers:    res.AnswerCount(p.Query),
		Facts:      res.Stats.FactsDerived,
		Derivs:     res.Stats.Derivations,
		Dups:       res.Stats.DuplicateHits,
		Iters:      res.Stats.Iterations,
		Retired:    res.Stats.RulesRetired,
		Elapsed:    elapsed,
	}
}

// WriteTable renders rows as an aligned text table.
func WriteTable(w io.Writer, rows []Row) {
	if len(rows) == 0 {
		return
	}
	fmt.Fprintf(w, "%-6s %-14s %-22s %5s %8s %9s %10s %9s %5s %5s %12s\n",
		"exp", "workload", "variant", "rules", "answers", "facts", "derivs", "dups", "iters", "cut", "elapsed")
	for _, r := range rows {
		fmt.Fprintf(w, "%-6s %-14s %-22s %5d %8d %9d %10d %9d %5d %5d %12s\n",
			r.Experiment, r.Workload, r.Variant, r.Rules, r.Answers, r.Facts,
			r.Derivs, r.Dups, r.Iters, r.Retired, r.Elapsed.Round(time.Microsecond))
	}
}

// Table renders rows as a string.
func Table(rows []Row) string {
	var sb strings.Builder
	WriteTable(&sb, rows)
	return sb.String()
}

// Speedup summarizes variant pairs: for each workload present in rows, the
// ratio of the baseline variant's facts/derivations/time to the
// optimized variant's.
func Speedup(rows []Row, baseline, optimized string) string {
	byKey := map[string]map[string]Row{}
	var order []string
	for _, r := range rows {
		m, ok := byKey[r.Workload]
		if !ok {
			m = map[string]Row{}
			byKey[r.Workload] = m
			order = append(order, r.Workload)
		}
		m[r.Variant] = r
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %12s %12s %12s\n", "workload", "facts×", "derivs×", "time×")
	for _, wl := range order {
		b, okB := byKey[wl][baseline]
		o, okO := byKey[wl][optimized]
		if !okB || !okO {
			continue
		}
		fmt.Fprintf(&sb, "%-14s %12s %12s %12s\n", wl,
			ratio(float64(b.Facts), float64(o.Facts)),
			ratio(float64(b.Derivs), float64(o.Derivs)),
			ratio(float64(b.Elapsed), float64(o.Elapsed)))
	}
	return sb.String()
}

func ratio(a, b float64) string {
	if b == 0 {
		if a == 0 {
			return "1.0"
		}
		return "inf"
	}
	return fmt.Sprintf("%.1f", a/b)
}

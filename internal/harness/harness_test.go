package harness

import (
	"strings"
	"testing"
	"time"

	"existdlog/internal/engine"
	"existdlog/internal/parser"
	"existdlog/internal/workload"
)

func TestRunFillsRow(t *testing.T) {
	p := parser.MustParseProgram(`
a(X,Y) :- e(X,Z), a(Z,Y).
a(X,Y) :- e(X,Y).
?- a(X,Y).
`)
	db := engine.NewDatabase()
	workload.Chain(db, "e", 8)
	row, err := Run("EX", "chain-8", "original", p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.Experiment != "EX" || row.Workload != "chain-8" || row.Variant != "original" {
		t.Errorf("labels: %+v", row)
	}
	if row.Rules != 2 || row.Answers != 36 || row.Facts != 36 {
		t.Errorf("measures: %+v", row)
	}
	if row.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	p := parser.MustParseProgram(`
a(X,Y) :- e(X,Z), a(Z,Y).
a(X,Y) :- e(X,Y).
?- a(X,Y).
`)
	db := engine.NewDatabase()
	workload.Chain(db, "e", 50)
	_, err := Run("EX", "w", "v", p, db, engine.Options{MaxIterations: 2})
	if err == nil || !strings.Contains(err.Error(), "EX/w/v") {
		t.Errorf("err = %v", err)
	}
}

func TestTableAndSpeedup(t *testing.T) {
	rows := []Row{
		{Experiment: "E", Workload: "w1", Variant: "base", Facts: 100, Derivs: 200, Elapsed: 10 * time.Millisecond},
		{Experiment: "E", Workload: "w1", Variant: "opt", Facts: 10, Derivs: 20, Elapsed: time.Millisecond},
		{Experiment: "E", Workload: "w2", Variant: "base", Facts: 50, Derivs: 50, Elapsed: 5 * time.Millisecond},
		{Experiment: "E", Workload: "w2", Variant: "opt", Facts: 50, Derivs: 50, Elapsed: 5 * time.Millisecond},
	}
	table := Table(rows)
	if !strings.Contains(table, "w1") || !strings.Contains(table, "opt") {
		t.Errorf("table:\n%s", table)
	}
	sp := Speedup(rows, "base", "opt")
	if !strings.Contains(sp, "10.0") {
		t.Errorf("speedup:\n%s", sp)
	}
	if !strings.Contains(sp, "1.0") {
		t.Errorf("speedup should include the 1.0 row:\n%s", sp)
	}
}

func TestSpeedupZeroDenominator(t *testing.T) {
	rows := []Row{
		{Workload: "w", Variant: "base", Facts: 5},
		{Workload: "w", Variant: "opt", Facts: 0},
	}
	sp := Speedup(rows, "base", "opt")
	if !strings.Contains(sp, "inf") {
		t.Errorf("speedup:\n%s", sp)
	}
}

func TestTableEmpty(t *testing.T) {
	if Table(nil) != "" {
		t.Error("empty rows should render nothing")
	}
}

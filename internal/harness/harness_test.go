package harness

import (
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"existdlog/internal/engine"
	"existdlog/internal/parser"
	"existdlog/internal/workload"
)

func TestRunFillsRow(t *testing.T) {
	p := parser.MustParseProgram(`
a(X,Y) :- e(X,Z), a(Z,Y).
a(X,Y) :- e(X,Y).
?- a(X,Y).
`)
	db := engine.NewDatabase()
	workload.Chain(db, "e", 8)
	row, err := Run("EX", "chain-8", "original", p, db, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if row.Experiment != "EX" || row.Workload != "chain-8" || row.Variant != "original" {
		t.Errorf("labels: %+v", row)
	}
	if row.Rules != 2 || row.Answers != 36 || row.Facts != 36 {
		t.Errorf("measures: %+v", row)
	}
	if row.Elapsed <= 0 {
		t.Error("elapsed not recorded")
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	p := parser.MustParseProgram(`
a(X,Y) :- e(X,Z), a(Z,Y).
a(X,Y) :- e(X,Y).
?- a(X,Y).
`)
	db := engine.NewDatabase()
	workload.Chain(db, "e", 50)
	_, err := Run("EX", "w", "v", p, db, engine.Options{MaxIterations: 2})
	if err == nil || !strings.Contains(err.Error(), "EX/w/v") {
		t.Errorf("err = %v", err)
	}
}

func TestTableAndSpeedup(t *testing.T) {
	rows := []Row{
		{Experiment: "E", Workload: "w1", Variant: "base", Facts: 100, Derivs: 200, Elapsed: 10 * time.Millisecond},
		{Experiment: "E", Workload: "w1", Variant: "opt", Facts: 10, Derivs: 20, Elapsed: time.Millisecond},
		{Experiment: "E", Workload: "w2", Variant: "base", Facts: 50, Derivs: 50, Elapsed: 5 * time.Millisecond},
		{Experiment: "E", Workload: "w2", Variant: "opt", Facts: 50, Derivs: 50, Elapsed: 5 * time.Millisecond},
	}
	table := Table(rows)
	if !strings.Contains(table, "w1") || !strings.Contains(table, "opt") {
		t.Errorf("table:\n%s", table)
	}
	sp := Speedup(rows, "base", "opt")
	if !strings.Contains(sp, "10.0") {
		t.Errorf("speedup:\n%s", sp)
	}
	if !strings.Contains(sp, "1.0") {
		t.Errorf("speedup should include the 1.0 row:\n%s", sp)
	}
}

func TestSpeedupZeroDenominator(t *testing.T) {
	rows := []Row{
		{Workload: "w", Variant: "base", Facts: 5},
		{Workload: "w", Variant: "opt", Facts: 0},
	}
	sp := Speedup(rows, "base", "opt")
	if !strings.Contains(sp, "inf") {
		t.Errorf("speedup:\n%s", sp)
	}
}

func TestTableEmpty(t *testing.T) {
	if Table(nil) != "" {
		t.Error("empty rows should render nothing")
	}
}

func TestRunRepeatQuantiles(t *testing.T) {
	p := parser.MustParseProgram(`
a(X,Y) :- e(X,Z), a(Z,Y).
a(X,Y) :- e(X,Y).
?- a(X,Y).
`)
	db := engine.NewDatabase()
	workload.Chain(db, "e", 16)
	row, err := RunRepeatContext(context.Background(), "EX", "chain-16", "v", p, db, engine.Options{}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if row.Repeats != 7 {
		t.Errorf("repeats = %d, want 7", row.Repeats)
	}
	if row.Answers != 136 || row.Facts != 136 {
		t.Errorf("counters: %+v", row)
	}
	if row.P50 <= 0 || row.P95 < row.P50 || row.P99 < row.P95 {
		t.Errorf("quantiles not ordered: p50=%v p95=%v p99=%v", row.P50, row.P95, row.P99)
	}
	if row.Elapsed <= 0 {
		t.Error("mean elapsed not recorded")
	}

	// The table gains quantile columns only when repetition happened,
	// and single-run rows in the same table print "-".
	table := Table([]Row{row, {Experiment: "EX", Workload: "w", Variant: "single", Elapsed: time.Millisecond}})
	if !strings.Contains(table, "p50") || !strings.Contains(table, "p99") {
		t.Errorf("table missing quantile columns:\n%s", table)
	}
	if !strings.Contains(table, "-") {
		t.Errorf("single-run row should print '-' quantiles:\n%s", table)
	}
	if plain := Table([]Row{{Experiment: "EX", Workload: "w", Variant: "v"}}); strings.Contains(plain, "p50") {
		t.Errorf("quantile columns leaked into a single-run table:\n%s", plain)
	}
}

func TestRunRepeatOnceDelegates(t *testing.T) {
	p := parser.MustParseProgram(`
a(X,Y) :- e(X,Y).
?- a(X,Y).
`)
	db := engine.NewDatabase()
	workload.Chain(db, "e", 4)
	row, err := RunRepeatContext(context.Background(), "EX", "w", "v", p, db, engine.Options{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if row.Repeats != 0 || row.P50 != 0 {
		t.Errorf("single run should carry no quantiles: %+v", row)
	}
}

func TestWriteJSONRoundTrips(t *testing.T) {
	rows := []Row{{
		Experiment: "E1", Workload: "w", Variant: "v",
		Facts: 3, Elapsed: time.Millisecond,
		Repeats: 5, P50: time.Millisecond, P95: 2 * time.Millisecond, P99: 2 * time.Millisecond,
	}}
	var buf strings.Builder
	if err := WriteJSON(&buf, rows); err != nil {
		t.Fatal(err)
	}
	var back []Row
	if err := json.Unmarshal([]byte(buf.String()), &back); err != nil {
		t.Fatalf("recorded JSON does not parse: %v\n%s", err, buf.String())
	}
	if len(back) != 1 || back[0] != rows[0] {
		t.Errorf("round trip: %+v != %+v", back, rows)
	}
	for _, field := range []string{`"experiment"`, `"p50_ns"`, `"elapsed_ns"`} {
		if !strings.Contains(buf.String(), field) {
			t.Errorf("JSON missing %s:\n%s", field, buf.String())
		}
	}
}

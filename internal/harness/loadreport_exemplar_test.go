package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"existdlog/internal/tracespan"
	"existdlog/internal/workload"
)

// tracedSamples builds a deterministic sample set where every served
// request carries a trace id derived from its index.
func tracedSamples(tr *workload.Trace) []LoadSample {
	samples := make([]LoadSample, len(tr.Requests))
	for i, req := range tr.Requests {
		tid := tracespan.TraceID(tr.TraceIDFor(i))
		samples[i] = LoadSample{
			Class:   req.Class,
			Latency: time.Duration(i%23+1) * 700 * time.Microsecond,
			Outcome: "ok",
			TraceID: tid.String(),
		}
	}
	return samples
}

func TestBuildLoadReportExemplars(t *testing.T) {
	tr := workload.Scenarios["mixed"].Generate(7, 4*time.Second, 0)
	samples := tracedSamples(tr)
	rep := BuildLoadReport(tr, samples, 4*time.Second, "rev", time.Unix(1754500000, 0).UTC(), nil)

	if len(rep.Exemplars) == 0 {
		t.Fatal("traced samples produced no exemplars")
	}
	// One overall exemplar (empty class) plus one per measured class.
	if rep.Exemplars[0].Class != "" {
		t.Errorf("first exemplar class = %q, want the overall row", rep.Exemplars[0].Class)
	}
	if want := 1 + len(rep.Results.Classes); len(rep.Exemplars) != want {
		t.Errorf("%d exemplars, want %d (overall + per class)", len(rep.Exemplars), want)
	}
	byTrace := map[string]LoadSample{}
	for _, s := range samples {
		byTrace[s.TraceID] = s
	}
	for _, ex := range rep.Exemplars {
		s, ok := byTrace[ex.TraceID]
		if !ok {
			t.Errorf("exemplar trace id %s matches no sample", ex.TraceID)
			continue
		}
		if ex.Quantile != 0.99 {
			t.Errorf("exemplar quantile = %v, want 0.99", ex.Quantile)
		}
		if ex.LatencySeconds != s.Latency.Seconds() {
			t.Errorf("exemplar latency %v does not match its sample's %v", ex.LatencySeconds, s.Latency)
		}
		if ex.Class != "" && ex.Class != s.Class {
			t.Errorf("exemplar class %s resolved to a %s sample", ex.Class, s.Class)
		}
		// The exemplar must actually sit in the class's tail: at or above
		// the estimated p99, or be the slowest traced sample.
		if ex.Class != "" {
			p99 := rep.quantile(string(ex.Class), 0.99)
			var max time.Duration
			for _, o := range samples {
				if o.Class == s.Class && o.Latency > max {
					max = o.Latency
				}
			}
			if s.Latency < p99 && s.Latency != max {
				t.Errorf("class %s exemplar latency %v is below p99 %v and not the max %v",
					ex.Class, s.Latency, p99, max)
			}
		}
	}
	if err := rep.Validate(); err != nil {
		t.Errorf("report with exemplars fails validation: %v", err)
	}
}

func TestLoadReportNoTraceIDsNoExemplars(t *testing.T) {
	tr := workload.Scenarios["mixed"].Generate(7, 2*time.Second, 0)
	samples := make([]LoadSample, len(tr.Requests))
	for i, req := range tr.Requests {
		samples[i] = LoadSample{Class: req.Class, Latency: time.Millisecond, Outcome: "ok"}
	}
	rep := BuildLoadReport(tr, samples, 2*time.Second, "rev", time.Unix(1754500000, 0).UTC(), nil)
	if len(rep.Exemplars) != 0 {
		t.Fatalf("untraced run produced %d exemplars, want none", len(rep.Exemplars))
	}
	var buf bytes.Buffer
	if err := WriteLoadJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "exemplars") {
		t.Error("untraced report still serializes an exemplars field")
	}
}

func TestLoadReportExemplarRoundTripAndValidation(t *testing.T) {
	tr := workload.Scenarios["mixed"].Generate(7, 2*time.Second, 0)
	rep := BuildLoadReport(tr, tracedSamples(tr), 2*time.Second, "rev", time.Unix(1754500000, 0).UTC(), nil)

	// Embed a span tree on the first exemplar, the way loadgen does
	// after resolving it from /debug/requests.
	rec := tracespan.NewRecorder(16)
	tid, _ := tracespan.ParseTraceID(rep.Exemplars[0].TraceID)
	tb := rec.Begin(tid, tracespan.SpanID{}, "q1", "query", "tc(X,Y)")
	tb.End(tb.Start("eval"))
	req := tb.Finish(200, "ok")
	rep.Exemplars[0].Trace = req
	rep.Exemplars[0].StageCoverage = req.StageCoverage()

	var buf bytes.Buffer
	if err := WriteLoadJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLoadReport(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Exemplars[0].Trace == nil || back.Exemplars[0].Trace.TraceID != rep.Exemplars[0].TraceID {
		t.Fatal("embedded span tree lost in the JSON round trip")
	}

	// Validation rejects a span tree that does not match its exemplar.
	rep.Exemplars[0].Trace = &tracespan.Request{TraceID: tracespan.NewTraceID().String(), Verb: "query"}
	if err := rep.Validate(); err == nil || !strings.Contains(err.Error(), "does not match") {
		t.Errorf("mismatched embedded trace passed validation (err=%v)", err)
	}
	rep.Exemplars[0].Trace = nil
	rep.Exemplars[0].TraceID = ""
	if err := rep.Validate(); err == nil {
		t.Error("exemplar without a trace id passed validation")
	}
}

package harness

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"existdlog/internal/workload"
)

func TestParseSLO(t *testing.T) {
	cases := []struct {
		spec    string
		wantErr bool
		objs    int
	}{
		{"", false, 0},
		{"p99=50ms", false, 1},
		{"p99=50ms,errors=0", false, 2},
		{"p50=1ms, p95=10ms, p99=50ms, errors=0, partials=2", false, 5},
		{"point.p99=10ms,recursive.p95=1s", false, 2},
		{"p98=50ms", true, 0},      // unknown quantile
		{"p99=banana", true, 0},    // not a duration
		{"p99=-5ms", true, 0},      // non-positive duration
		{"errors=-1", true, 0},     // negative count
		{"errors=many", true, 0},   // not a count
		{"p99", true, 0},           // missing value
		{"weird.q.p99=1ms", true, 0}, // nested scope
	}
	for _, tc := range cases {
		s, err := ParseSLO(tc.spec)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseSLO(%q): expected error", tc.spec)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseSLO(%q): %v", tc.spec, err)
			continue
		}
		if len(s.Objectives) != tc.objs {
			t.Errorf("ParseSLO(%q): %d objectives, want %d", tc.spec, len(s.Objectives), tc.objs)
		}
	}
}

// report builds a small fixed report for evaluation tests.
func sloTestReport(t *testing.T) *LoadReport {
	t.Helper()
	tr := workload.Scenarios["steady"].Generate(5, 2*time.Second, 20)
	samples := make([]LoadSample, len(tr.Requests))
	for i, req := range tr.Requests {
		outcome := "ok"
		switch {
		case i%17 == 3:
			outcome = "error"
		case i%13 == 5:
			outcome = "partial"
		}
		samples[i] = LoadSample{Class: req.Class, Latency: time.Duration(i%9+1) * time.Millisecond, Outcome: outcome}
	}
	return BuildLoadReport(tr, samples, 2*time.Second, "testrev", time.Unix(0, 0), nil)
}

func TestSLOEvaluate(t *testing.T) {
	rep := sloTestReport(t)
	slo, err := ParseSLO("p99=50ms,point.p95=50ms,errors=1000,partials=0")
	if err != nil {
		t.Fatal(err)
	}
	res := slo.Evaluate(rep)
	if len(res) != 4 {
		t.Fatalf("got %d results: %+v", len(res), res)
	}
	// Latencies are all under 10ms, so both latency objectives pass;
	// errors bound is generous; partials=0 fails (the fixture has some).
	if !res[0].Pass || !res[1].Pass || !res[2].Pass {
		t.Errorf("expected first three objectives to pass: %+v", res)
	}
	if res[3].Pass {
		t.Errorf("partials=0 should fail: %+v", res[3])
	}
	if SLOPassed(res) {
		t.Error("SLOPassed should be false with a failing objective")
	}

	tight, _ := ParseSLO("p50=1ns")
	if r := tight.Evaluate(rep); r[0].Pass {
		t.Errorf("p50=1ns should fail: %+v", r)
	}
	if empty, _ := ParseSLO(""); !SLOPassed(empty.Evaluate(rep)) {
		t.Error("empty SLO must trivially pass")
	}
}

// TestLoadReportPartition checks the report invariants the -check verb
// enforces, on a real built report: issued = ok + partial + errors,
// schedule class counts partition the request count, and Validate
// accepts the result while rejecting corrupted variants.
func TestLoadReportPartition(t *testing.T) {
	rep := sloTestReport(t)
	if err := rep.Validate(); err != nil {
		t.Fatalf("built report invalid: %v", err)
	}
	if rep.Results.Issued != rep.Results.OK+rep.Results.Partial+rep.Results.Errors {
		t.Error("outcome partition broken")
	}
	bad := *rep
	bad.Results.OK++
	if err := bad.Validate(); err == nil {
		t.Error("partition violation not caught")
	}
	bad = *rep
	bad.Schema = "nope/v0"
	if err := bad.Validate(); err == nil {
		t.Error("schema mismatch not caught")
	}
}

// TestLoadReportRoundTrip writes and re-reads a report through the
// strict decoder the -check verb uses.
func TestLoadReportRoundTrip(t *testing.T) {
	rep := sloTestReport(t)
	var buf bytes.Buffer
	if err := WriteLoadJSON(&buf, rep); err != nil {
		t.Fatal(err)
	}
	got, err := ReadLoadReport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schedule.Digest != rep.Schedule.Digest || got.Results.Issued != rep.Results.Issued {
		t.Errorf("round trip changed the report: %+v vs %+v", got, rep)
	}
	if _, err := ReadLoadReport(strings.NewReader(`{"schema":"` + LoadReportSchema + `","extra":1}`)); err == nil {
		t.Error("unknown field accepted")
	}
}

// Package wal provides the durability layer for the mutable query
// service: an append-only log of fact mutations plus checkpoint files,
// both designed so that a process killed at any instant recovers to
// exactly the acknowledged state.
//
// The log is a sequence of self-checking frames:
//
//	uint32 LE payload length | uint32 LE CRC-32 (IEEE) of payload | payload
//
// where the payload is one JSON-encoded Record. Appends become durable
// only at Sync (the caller groups several Appends per fsync); a crash
// mid-write leaves a torn tail that Open detects — short frame, bad
// checksum, or undecodable payload — and truncates away. Everything
// before the tear was fsync'd and acknowledged; everything after it was
// never acknowledged, so dropping it is exactly crash semantics.
//
// Records carry the store's sequence number. Checkpoints record the
// sequence they cover, so replay applies only records newer than the
// checkpoint; this makes the checkpoint-then-truncate dance safe in
// either crash order (a stale log behind a fresh checkpoint is merely
// redundant, never double-applied).
package wal

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"

	"existdlog/internal/engine"
	"existdlog/internal/failpoint"
)

// Op distinguishes the mutation kinds the service logs.
type Op string

const (
	OpUpdate  Op = "update"
	OpRetract Op = "retract"
	// OpProbe is a disk-health probe frame the degraded-mode recovery
	// path appends and fsyncs, then rolls back. It carries no facts and
	// replay skips it — one can survive only if the process dies between
	// the probe's sync and its rollback, which is harmless.
	OpProbe Op = "probe"
)

// Fact is one base tuple named by relation key and constant row.
type Fact struct {
	Key string   `json:"key"`
	Row []string `json:"row"`
}

// Record is one durable mutation: all facts of one acknowledged write.
// ID is the client's idempotency key, when one was supplied: replay
// rebuilds the store's dedup window from it, so a retried ack-lost
// write is applied once even across a restart.
type Record struct {
	Seq   uint64 `json:"seq"`
	Op    Op     `json:"op"`
	Facts []Fact `json:"facts"`
	ID    string `json:"id,omitempty"`
	// Trace is the originating request's trace id, carried for
	// end-to-end correlation between the log and the flight recorder.
	// Replay ignores it; old logs without the field read back fine.
	Trace string `json:"trace,omitempty"`
}

// maxFrame bounds a frame payload; anything larger in a length header is
// treated as tail corruption rather than an attempted allocation.
const maxFrame = 1 << 28

// Log is an append-only mutation log backed by one file. It tracks two
// offsets: off, the end of everything appended, and synced, the end of
// the durable prefix (advanced by Sync). Rollback truncates back to the
// durable prefix — the degraded-mode path uses it to discard frames
// that were appended but never became durable, so the on-disk log never
// carries a record the store did not acknowledge and apply.
type Log struct {
	f       *os.File
	lastSeq uint64
	off     int64
	synced  int64
}

// Open opens (creating if absent) the log at path, replays every intact
// record into the returned slice, and truncates any torn tail so the
// file ends at the last intact frame, ready for appends.
func Open(path string) (*Log, []Record, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	var recs []Record
	br := bufio.NewReader(f)
	var off int64 // end of the last intact frame
	var head [8]byte
	for {
		if _, err := io.ReadFull(br, head[:]); err != nil {
			break // clean EOF or torn header: both end the intact prefix
		}
		n := binary.LittleEndian.Uint32(head[0:4])
		sum := binary.LittleEndian.Uint32(head[4:8])
		if n > maxFrame {
			break
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != sum {
			break
		}
		var rec Record
		if err := json.Unmarshal(payload, &rec); err != nil {
			break
		}
		recs = append(recs, rec)
		off += int64(8 + n)
	}
	if err := f.Truncate(off); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: truncate torn tail: %w", err)
	}
	if _, err := f.Seek(off, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{f: f, off: off, synced: off}
	for _, r := range recs {
		if r.Seq > l.lastSeq {
			l.lastSeq = r.Seq
		}
	}
	return l, recs, nil
}

// Append writes one record frame. It is buffered by the OS only; the
// record is not durable until Sync returns. The "wal/append" failpoint
// injects write faults (ENOSPC, EIO) here for the degraded-mode suite.
func (l *Log) Append(rec Record) error {
	if err := failpoint.Inject("wal/append"); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("wal: encode: %w", err)
	}
	frame := make([]byte, 8+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[8:], payload)
	if _, err := l.f.Write(frame); err != nil {
		return fmt.Errorf("wal: append: %w", err)
	}
	l.off += int64(len(frame))
	if rec.Seq > l.lastSeq {
		l.lastSeq = rec.Seq
	}
	return nil
}

// Sync makes every appended record durable (one fsync; callers batch
// appends to group-commit). The "wal/sync" failpoint injects fsync
// faults here for the degraded-mode suite.
func (l *Log) Sync() error {
	if err := failpoint.Inject("wal/sync"); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("wal: sync: %w", err)
	}
	l.synced = l.off
	return nil
}

// Rollback discards every frame appended since the last successful
// Sync, truncating the file back to the durable prefix. The store calls
// it after a failed group commit: the discarded frames were never
// acknowledged and never applied, so dropping them restores the
// log-matches-store invariant before the next write (or probe).
func (l *Log) Rollback() error {
	if l.off == l.synced {
		return nil
	}
	if err := l.f.Truncate(l.synced); err != nil {
		return fmt.Errorf("wal: rollback: %w", err)
	}
	if _, err := l.f.Seek(l.synced, io.SeekStart); err != nil {
		return fmt.Errorf("wal: rollback: %w", err)
	}
	l.off = l.synced
	return nil
}

// Probe checks the log can still take durable writes: it appends a
// contentless probe frame, fsyncs it, and rolls it back. Success means
// appends and fsyncs work again — the degraded-mode recovery signal. A
// probe frame that survives a crash between sync and rollback is
// skipped at replay (OpProbe carries no facts).
func (l *Log) Probe() error {
	if err := l.Rollback(); err != nil {
		return err
	}
	base := l.off
	if err := l.Append(Record{Op: OpProbe}); err != nil {
		return err
	}
	if err := l.Sync(); err != nil {
		// The probe frame never became durable; best-effort drop it (a
		// leftover is re-dropped by the next probe's own Rollback).
		l.Rollback()
		return err
	}
	// The probe frame is durable, so the disk is healthy; truncate it
	// away (synced moved past it, so Rollback would keep it).
	if err := l.f.Truncate(base); err != nil {
		return fmt.Errorf("wal: probe: %w", err)
	}
	if _, err := l.f.Seek(base, io.SeekStart); err != nil {
		return fmt.Errorf("wal: probe: %w", err)
	}
	l.off, l.synced = base, base
	return nil
}

// Reset discards the log contents. Called after a checkpoint has been
// durably installed; safe because replay skips records at or below the
// checkpoint sequence anyway, so a crash before the reset only costs
// redundant (skipped) replay work.
func (l *Log) Reset() error {
	if err := l.f.Truncate(0); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	if _, err := l.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("wal: reset: %w", err)
	}
	l.off, l.synced = 0, 0
	return nil
}

// LastSeq returns the highest sequence number seen (replayed or appended).
func (l *Log) LastSeq() uint64 { return l.lastSeq }

// Close closes the underlying file without syncing.
func (l *Log) Close() error { return l.f.Close() }

// WriteSnapshotFile durably checkpoints db, covering mutations up to and
// including seq, at path: written to a temp file, fsync'd, then renamed
// over path so a crash leaves either the old checkpoint or the new one,
// never a torn file under the real name.
func WriteSnapshotFile(path string, seq uint64, db *engine.Database) (err error) {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()
	bw := bufio.NewWriter(f)
	if _, err = fmt.Fprintf(bw, "snapshot,%d\n", seq); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err = db.WriteSnapshot(bw); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err = f.Sync(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err = os.Rename(tmp, path); err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	// Make the rename itself durable.
	if dir, derr := os.Open(filepath.Dir(path)); derr == nil {
		dir.Sync()
		dir.Close()
	}
	return nil
}

// ReadSnapshotFile loads a checkpoint written by WriteSnapshotFile,
// returning the covered sequence and the database. A missing file is
// reported with an error matching os.ErrNotExist (the caller starts
// from the initial load instead); a torn or malformed file is a hard
// error, because WriteSnapshotFile's rename protocol should make one
// impossible.
func ReadSnapshotFile(path string) (uint64, *engine.Database, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot: %w", err)
	}
	defer f.Close()
	br := bufio.NewReader(f)
	line, err := br.ReadString('\n')
	if err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot header: %w", err)
	}
	var seq uint64
	if _, err := fmt.Sscanf(line, "snapshot,%d\n", &seq); err != nil {
		return 0, nil, fmt.Errorf("wal: snapshot header %q: %w", line, err)
	}
	db, err := engine.ReadSnapshot(br)
	if err != nil {
		return 0, nil, err
	}
	return seq, db, nil
}

package wal

import (
	"fmt"
	"path/filepath"
	"testing"
)

// TestLogRollbackDiscardsUnsynced: frames appended after the last Sync
// are dropped by Rollback, frames before it survive, and the log keeps
// accepting writes at the rolled-back offset.
func TestLogRollbackDiscardsUnsynced(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)

	durable := rec(1, OpUpdate, Fact{Key: "e", Row: []string{"a", "b"}})
	if err := l.Append(durable); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Two frames past the durable prefix, never synced.
	if err := l.Append(rec(2, OpUpdate, Fact{Key: "e", Row: []string{"b", "c"}})); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(3, OpUpdate, Fact{Key: "e", Row: []string{"c", "d"}})); err != nil {
		t.Fatal(err)
	}
	if err := l.Rollback(); err != nil {
		t.Fatal(err)
	}
	// The log stays writable after a rollback: the next commit lands
	// where the discarded frames were.
	after := rec(4, OpUpdate, Fact{Key: "e", Row: []string{"d", "e"}})
	if err := l.Append(after); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, got := openT(t, path)
	want := []Record{durable, after}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("replay after rollback\ngot  %v\nwant %v", got, want)
	}
}

// TestLogRollbackNoopWhenClean: with nothing unsynced, Rollback leaves
// the log untouched.
func TestLogRollbackNoopWhenClean(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	r := rec(1, OpUpdate, Fact{Key: "e", Row: []string{"a", "b"}})
	if err := l.Append(r); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Rollback(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got := openT(t, path)
	if len(got) != 1 {
		t.Fatalf("replay after clean rollback = %d records, want 1", len(got))
	}
}

// TestLogProbeLeavesNoResidue: a successful Probe proves the disk
// takes durable writes and leaves the log byte-identical — no probe
// frame survives, existing records are intact, and appends continue
// normally.
func TestLogProbeLeavesNoResidue(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)

	first := rec(1, OpUpdate, Fact{Key: "e", Row: []string{"a", "b"}})
	if err := l.Append(first); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := l.Probe(); err != nil {
			t.Fatalf("probe %d: %v", i, err)
		}
	}
	second := rec(2, OpUpdate, Fact{Key: "e", Row: []string{"b", "c"}})
	if err := l.Append(second); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()

	_, got := openT(t, path)
	want := []Record{first, second}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("replay after probes\ngot  %v\nwant %v", got, want)
	}
}

// TestLogProbeOnEmptyLog: probing a fresh log works and leaves it
// empty.
func TestLogProbeOnEmptyLog(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	if err := l.Probe(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got := openT(t, path)
	if len(got) != 0 {
		t.Fatalf("replay after probe on empty log = %d records, want 0", len(got))
	}
}

// TestLogProbeDropsUnsyncedFirst: Probe begins with a rollback, so
// unsynced frames from a failed group commit never linger past the
// first successful probe.
func TestLogProbeDropsUnsyncedFirst(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	durable := rec(1, OpUpdate, Fact{Key: "e", Row: []string{"a", "b"}})
	if err := l.Append(durable); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(2, OpUpdate, Fact{Key: "e", Row: []string{"x", "y"}})); err != nil {
		t.Fatal(err)
	}
	if err := l.Probe(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	_, got := openT(t, path)
	want := []Record{durable}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("replay\ngot  %v\nwant %v", got, want)
	}
}

package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"existdlog/internal/engine"
)

func rec(seq uint64, op Op, facts ...Fact) Record {
	return Record{Seq: seq, Op: op, Facts: facts}
}

func openT(t *testing.T, path string) (*Log, []Record) {
	t.Helper()
	l, recs, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return l, recs
}

func TestLogRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, recs := openT(t, path)
	if len(recs) != 0 {
		t.Fatalf("fresh log replayed %d records", len(recs))
	}
	want := []Record{
		rec(1, OpUpdate, Fact{Key: "e", Row: []string{"a", "b"}}),
		rec(2, OpRetract, Fact{Key: "e", Row: []string{"a", "b"}}),
		rec(3, OpUpdate,
			Fact{Key: "e", Row: []string{"with,comma", "with\"quote"}},
			Fact{Key: "b@f", Row: nil}),
	}
	for _, r := range want {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	if l.LastSeq() != 3 {
		t.Errorf("LastSeq = %d, want 3", l.LastSeq())
	}
	l.Close()

	l2, got := openT(t, path)
	defer l2.Close()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("replay\ngot  %v\nwant %v", got, want)
	}
	if l2.LastSeq() != 3 {
		t.Errorf("reopened LastSeq = %d, want 3", l2.LastSeq())
	}
}

// TestLogTornTail cuts the file at every byte boundary inside the last
// frame and checks that replay keeps exactly the intact prefix, that the
// tail is physically truncated, and that appending afterwards works.
func TestLogTornTail(t *testing.T) {
	dir := t.TempDir()
	ref := filepath.Join(dir, "ref.log")
	l, _ := openT(t, ref)
	if err := l.Append(rec(1, OpUpdate, Fact{Key: "e", Row: []string{"a", "b"}})); err != nil {
		t.Fatal(err)
	}
	intact, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(2, OpUpdate, Fact{Key: "e", Row: []string{"c", "d"}})); err != nil {
		t.Fatal(err)
	}
	l.Close()
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	for cut := len(intact) + 1; cut < len(full); cut++ {
		path := filepath.Join(dir, fmt.Sprintf("cut%d.log", cut))
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		l, recs := openT(t, path)
		if len(recs) != 1 || recs[0].Seq != 1 {
			t.Fatalf("cut at %d: replayed %v, want record 1 only", cut, recs)
		}
		if fi, err := os.Stat(path); err != nil || fi.Size() != int64(len(intact)) {
			t.Fatalf("cut at %d: size %d after open, want %d", cut, fi.Size(), len(intact))
		}
		if err := l.Append(rec(2, OpUpdate, Fact{Key: "e", Row: []string{"x", "y"}})); err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(); err != nil {
			t.Fatal(err)
		}
		l.Close()
		l2, recs2 := openT(t, path)
		l2.Close()
		if len(recs2) != 2 {
			t.Fatalf("cut at %d: append after truncation lost records: %v", cut, recs2)
		}
	}
}

// TestLogCorruptFrame flips a payload byte mid-log: replay must stop at
// the corruption instead of decoding garbage.
func TestLogCorruptFrame(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	for seq := uint64(1); seq <= 3; seq++ {
		if err := l.Append(rec(seq, OpUpdate, Fact{Key: "e", Row: []string{"a", "b"}})); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff // lands in the second frame
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	l2, recs := openT(t, path)
	l2.Close()
	if len(recs) != 1 {
		t.Fatalf("replayed %d records across a corrupt frame, want 1", len(recs))
	}
}

func TestLogReset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "wal.log")
	l, _ := openT(t, path)
	if err := l.Append(rec(7, OpUpdate, Fact{Key: "e", Row: []string{"a", "b"}})); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(rec(8, OpUpdate, Fact{Key: "e", Row: []string{"c", "d"}})); err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	l.Close()
	l2, recs := openT(t, path)
	l2.Close()
	if len(recs) != 1 || recs[0].Seq != 8 {
		t.Fatalf("after reset replayed %v, want record 8 only", recs)
	}
}

func TestSnapshotFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "snapshot.db")
	db := engine.NewDatabase()
	db.Add("e", "a", "b")
	db.Add("e", "with,comma", "line\nbreak")
	db.Add("flag")
	if err := WriteSnapshotFile(path, 42, db); err != nil {
		t.Fatal(err)
	}
	seq, got, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 42 {
		t.Errorf("seq = %d, want 42", seq)
	}
	if fmt.Sprint(got.Facts("e")) != fmt.Sprint(db.Facts("e")) || got.Count("flag") != 1 {
		t.Errorf("snapshot round trip lost facts: %v", got.Facts("e"))
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file left behind")
	}
}

func TestSnapshotFileMissingAndTorn(t *testing.T) {
	dir := t.TempDir()
	if _, _, err := ReadSnapshotFile(filepath.Join(dir, "absent.db")); !errors.Is(err, os.ErrNotExist) {
		t.Errorf("missing snapshot: err = %v, want ErrNotExist", err)
	}
	path := filepath.Join(dir, "snapshot.db")
	db := engine.NewDatabase()
	db.Add("e", "a", "b")
	if err := WriteSnapshotFile(path, 1, db); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ReadSnapshotFile(path); err == nil {
		t.Error("torn snapshot accepted")
	}
}

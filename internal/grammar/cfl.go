package grammar

import (
	"fmt"
	"sort"

	"existdlog/internal/engine"
)

// CFLReach computes context-free-language reachability: for every
// nonterminal A of g and nodes x, y of the edge-labeled graph stored in
// db (one binary relation per terminal), whether some path x→y spells a
// string of L(g, A). By the grammar/chain-program correspondence of
// Section 1.1, this is exactly bottom-up evaluation of the chain program —
// an independent algorithm the tests use to cross-check the engine
// (Lemma 4.1 in executable form).
//
// The result maps each nonterminal to its set of (x,y) pairs, with node
// names taken from db's interner.
func CFLReach(g *Grammar, db *engine.Database) (map[string][][2]string, error) {
	// Normalize to binary productions: A → s (single symbol) or
	// A → s1 s2 ... becomes a chain of fresh nonterminals.
	type binProd struct {
		lhs, a, b string // b == "" for unit productions A → a
	}
	var prods []binProd
	fresh := 0
	nts := make([]string, 0, len(g.Productions))
	for nt := range g.Productions {
		nts = append(nts, nt)
	}
	sort.Strings(nts)
	for _, nt := range nts {
		for _, rhs := range g.Productions[nt] {
			switch {
			case len(rhs) == 0:
				return nil, fmt.Errorf("grammar: empty production for %s", nt)
			case len(rhs) == 1:
				prods = append(prods, binProd{nt, rhs[0], ""})
			default:
				cur := nt
				for i := 0; i < len(rhs)-2; i++ {
					fresh++
					aux := fmt.Sprintf("%s#%d", nt, fresh)
					prods = append(prods, binProd{cur, rhs[i], aux})
					cur = aux
				}
				prods = append(prods, binProd{cur, rhs[len(rhs)-2], rhs[len(rhs)-1]})
			}
		}
	}

	type edge struct {
		label string
		x, y  int32
	}
	seen := map[edge]bool{}
	var queue []edge
	add := func(e edge) {
		if !seen[e] {
			seen[e] = true
			queue = append(queue, e)
		}
	}
	// Indexes for the worklist joins.
	bySrc := map[string]map[int32][]int32{} // label -> x -> ys
	byDst := map[string]map[int32][]int32{} // label -> y -> xs
	record := func(e edge) {
		m := bySrc[e.label]
		if m == nil {
			m = map[int32][]int32{}
			bySrc[e.label] = m
		}
		m[e.x] = append(m[e.x], e.y)
		m2 := byDst[e.label]
		if m2 == nil {
			m2 = map[int32][]int32{}
			byDst[e.label] = m2
		}
		m2[e.y] = append(m2[e.y], e.x)
	}
	// Production indexes.
	unitBy := map[string][]string{}   // a -> lhs's with A → a
	leftBy := map[string][]binProd{}  // a -> productions A → a b
	rightBy := map[string][]binProd{} // b -> productions A → a b
	for _, p := range prods {
		if p.b == "" {
			unitBy[p.a] = append(unitBy[p.a], p.lhs)
		} else {
			leftBy[p.a] = append(leftBy[p.a], p)
			rightBy[p.b] = append(rightBy[p.b], p)
		}
	}

	// Seed with the terminal relations.
	for t := range g.Terminals {
		rel, ok := db.Lookup(t)
		if !ok {
			continue
		}
		if rel.Arity() != 2 {
			return nil, fmt.Errorf("grammar: terminal relation %s is not binary", t)
		}
		for _, tp := range rel.Tuples() {
			add(edge{t, tp[0], tp[1]})
		}
	}

	for len(queue) > 0 {
		e := queue[0]
		queue = queue[1:]
		record(e)
		for _, lhs := range unitBy[e.label] {
			add(edge{lhs, e.x, e.y})
		}
		for _, p := range leftBy[e.label] {
			// e is the left part: need (p.b, e.y, z).
			for _, z := range bySrc[p.b][e.y] {
				add(edge{p.lhs, e.x, z})
			}
		}
		for _, p := range rightBy[e.label] {
			// e is the right part: need (p.a, w, e.x).
			for _, w := range byDst[p.a][e.x] {
				add(edge{p.lhs, w, e.y})
			}
		}
	}

	out := map[string][][2]string{}
	for e := range seen {
		if _, isNT := g.Productions[e.label]; !isNT {
			continue
		}
		out[e.label] = append(out[e.label],
			[2]string{db.Syms.Name(e.x), db.Syms.Name(e.y)})
	}
	for _, pairs := range out {
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
	}
	return out, nil
}

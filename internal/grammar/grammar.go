// Package grammar implements the chain-program / context-free-grammar
// correspondence of the paper (Sections 1.1, 3.2 and 4):
//
//   - extraction of the CFG of a binary chain program (drop the arguments;
//     derived predicates are nonterminals, base predicates terminals);
//   - bounded enumeration of L(G) and of the extended language Lᵉˣ(G)
//     (sentential forms), the objects Lemma 4.1 relates to the four
//     notions of program equivalence;
//   - a CFL-reachability evaluator, an independent implementation of chain
//     program semantics used to cross-check the engine;
//   - the constructive half of Theorem 3.3: a *regular* (left- or
//     right-linear) chain grammar yields an equivalent *monadic* chain
//     program for an existential query p@dn or p@nd.
package grammar

import (
	"fmt"
	"sort"
	"strings"

	"existdlog/internal/ast"
)

// Grammar is a context-free grammar whose symbols are predicate names.
type Grammar struct {
	Start       string
	Productions map[string][][]string
	// Terminals are the base predicate names.
	Terminals map[string]bool
}

// NonTerminal reports whether sym has productions.
func (g *Grammar) NonTerminal(sym string) bool {
	_, ok := g.Productions[sym]
	return ok
}

// IsChainProgram reports whether every rule of p is a binary chain rule
//
//	p(X,Y) :- q1(X,Z1), q2(Z1,Z2), ..., qn(Zn-1,Y)
//
// with distinct chain variables, as defined in Section 1.1 of the paper.
func IsChainProgram(p *ast.Program) error {
	for i, r := range p.Rules {
		if err := chainRule(r); err != nil {
			return fmt.Errorf("rule %d: %w", i+1, err)
		}
	}
	return nil
}

func chainRule(r ast.Rule) error {
	if r.Head.Arity() != 2 {
		return fmt.Errorf("head %s is not binary", r.Head)
	}
	if len(r.Body) == 0 {
		return fmt.Errorf("empty body")
	}
	x, y := r.Head.Args[0], r.Head.Args[1]
	if x.Kind != ast.Variable || y.Kind != ast.Variable || x == y {
		return fmt.Errorf("head %s must have two distinct variables", r.Head)
	}
	seen := map[string]bool{x.Name: true}
	cur := x
	for i, b := range r.Body {
		if b.Arity() != 2 {
			return fmt.Errorf("literal %s is not binary", b)
		}
		if b.Args[0] != cur {
			return fmt.Errorf("literal %s breaks the chain (expected first argument %s)", b, cur)
		}
		next := b.Args[1]
		if next.Kind != ast.Variable {
			return fmt.Errorf("literal %s: chain positions must be variables", b)
		}
		if i == len(r.Body)-1 {
			if next != y {
				return fmt.Errorf("chain does not end in the head's second variable")
			}
		} else if seen[next.Name] {
			return fmt.Errorf("chain variable %s repeated", next.Name)
		}
		seen[next.Name] = true
		cur = next
	}
	return nil
}

// FromChainProgram extracts the grammar of a binary chain program: the
// query predicate is the start symbol, derived predicates the
// nonterminals, base predicates the terminals.
func FromChainProgram(p *ast.Program) (*Grammar, error) {
	if err := IsChainProgram(p); err != nil {
		return nil, fmt.Errorf("grammar: not a chain program: %w", err)
	}
	if p.Query.Pred == "" {
		return nil, fmt.Errorf("grammar: program has no query goal")
	}
	g := &Grammar{
		Start:       p.Query.Key(),
		Productions: make(map[string][][]string),
		Terminals:   make(map[string]bool),
	}
	for _, r := range p.Rules {
		rhs := make([]string, len(r.Body))
		for i, b := range r.Body {
			rhs[i] = b.Key()
			if !p.Derived[b.Key()] {
				g.Terminals[b.Key()] = true
			}
		}
		g.Productions[r.Head.Key()] = append(g.Productions[r.Head.Key()], rhs)
	}
	if !g.NonTerminal(g.Start) {
		return nil, fmt.Errorf("grammar: query predicate %s has no rules", g.Start)
	}
	return g, nil
}

// ToChainProgram is the inverse embedding: each production becomes a chain
// rule, with the start symbol as the query predicate.
func (g *Grammar) ToChainProgram() *ast.Program {
	var rules []ast.Rule
	nts := make([]string, 0, len(g.Productions))
	for nt := range g.Productions {
		nts = append(nts, nt)
	}
	sort.Strings(nts)
	for _, nt := range nts {
		for _, rhs := range g.Productions[nt] {
			body := make([]ast.Atom, len(rhs))
			for i, sym := range rhs {
				from := ast.V(fmt.Sprintf("Z%d", i))
				if i == 0 {
					from = ast.V("X")
				}
				to := ast.V(fmt.Sprintf("Z%d", i+1))
				if i == len(rhs)-1 {
					to = ast.V("Y")
				}
				body[i] = ast.NewAtom(sym, from, to)
			}
			rules = append(rules, ast.NewRule(ast.NewAtom(nt, ast.V("X"), ast.V("Y")), body...))
		}
	}
	return ast.NewProgram(ast.NewAtom(g.Start, ast.V("X"), ast.V("Y")), rules...)
}

// Language enumerates L(G, start): all terminal strings of length at most
// maxLen derivable from the start symbol, sorted. Strings are returned as
// slices of terminal names.
func (g *Grammar) Language(maxLen int) [][]string {
	return g.LanguageFrom(g.Start, maxLen)
}

// LanguageFrom enumerates L(G, sym) up to maxLen. The table of per-length
// string sets is grown to a fixpoint, which handles unit-production cycles
// (A→B, B→A) that would defeat naive memoization.
func (g *Grammar) LanguageFrom(sym string, maxLen int) [][]string {
	table := make(map[string][]map[string][]string) // nonterminal -> per-length sets
	for nt := range g.Productions {
		table[nt] = make([]map[string][]string, maxLen+1)
		for l := 0; l <= maxLen; l++ {
			table[nt][l] = map[string][]string{}
		}
	}
	lookup := func(s string, l int) [][]string {
		if sets, ok := table[s]; ok {
			out := make([][]string, 0, len(sets[l]))
			for _, v := range sets[l] {
				out = append(out, v)
			}
			return out
		}
		if l == 1 {
			return [][]string{{s}} // terminal
		}
		return nil
	}
	for changed := true; changed; {
		changed = false
		for nt, prods := range g.Productions {
			for _, rhs := range prods {
				for l := len(rhs); l <= maxLen; l++ {
					for _, s := range expand(rhs, l, lookup) {
						k := strings.Join(s, "\x00")
						if _, ok := table[nt][l][k]; !ok {
							table[nt][l][k] = s
							changed = true
						}
					}
				}
			}
		}
	}
	set := map[string][]string{}
	if sets, ok := table[sym]; ok {
		for l := 1; l <= maxLen; l++ {
			for k, v := range sets[l] {
				set[k] = v
			}
		}
	} else if maxLen >= 1 {
		set[sym] = []string{sym} // terminal start symbol
	}
	return sortedStrings(set)
}

// expand generates all terminal strings of total length exactly l from the
// symbol sequence rhs.
func expand(rhs []string, l int, gen func(string, int) [][]string) [][]string {
	if len(rhs) == 0 {
		if l == 0 {
			return [][]string{{}}
		}
		return nil
	}
	var out [][]string
	head, rest := rhs[0], rhs[1:]
	// Each symbol derives at least one terminal: leave room for the rest.
	for hl := 1; hl <= l-len(rest); hl++ {
		hs := gen(head, hl)
		if len(hs) == 0 {
			continue
		}
		ts := expand(rest, l-hl, gen)
		for _, h := range hs {
			for _, t := range ts {
				s := make([]string, 0, l)
				s = append(s, h...)
				s = append(s, t...)
				out = append(out, s)
			}
		}
	}
	return out
}

// ExtendedLanguage enumerates Lᵉˣ(G, start): all sentential forms (strings
// over terminals AND nonterminals) of length at most maxLen derivable from
// the start symbol, including the start itself. This is the object
// Lemma 4.1 ties to uniform (query) equivalence.
func (g *Grammar) ExtendedLanguage(maxLen int) [][]string {
	return g.ExtendedLanguageFrom(g.Start, maxLen)
}

// ExtendedLanguageFrom enumerates Lᵉˣ(G, sym) up to maxLen.
func (g *Grammar) ExtendedLanguageFrom(sym string, maxLen int) [][]string {
	set := map[string][]string{}
	var queue [][]string
	push := func(form []string) {
		if len(form) > maxLen {
			return
		}
		k := strings.Join(form, "\x00")
		if _, ok := set[k]; ok {
			return
		}
		set[k] = form
		queue = append(queue, form)
	}
	push([]string{sym})
	for len(queue) > 0 {
		form := queue[0]
		queue = queue[1:]
		for i, s := range form {
			if !g.NonTerminal(s) {
				continue
			}
			for _, rhs := range g.Productions[s] {
				next := make([]string, 0, len(form)+len(rhs)-1)
				next = append(next, form[:i]...)
				next = append(next, rhs...)
				next = append(next, form[i+1:]...)
				push(next)
			}
		}
	}
	return sortedStrings(set)
}

func sortedStrings(set map[string][]string) [][]string {
	keys := make([]string, 0, len(set))
	for k := range set {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := set[keys[i]], set[keys[j]]
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return keys[i] < keys[j]
	})
	out := make([][]string, 0, len(keys))
	for _, k := range keys {
		out = append(out, set[k])
	}
	return out
}

// EqualUpTo reports whether two grammars derive the same terminal strings
// up to the given length — the bounded, testable form of Lemma 4.1's
// query-equivalence criterion (full language equality is undecidable).
func EqualUpTo(g1, g2 *Grammar, maxLen int) bool {
	return sameStrings(g1.Language(maxLen), g2.Language(maxLen))
}

// ExtendedEqualUpTo is the bounded form of Lemma 4.1's uniform
// query-equivalence criterion: equality of the extended languages.
func ExtendedEqualUpTo(g1, g2 *Grammar, maxLen int) bool {
	return sameStrings(g1.ExtendedLanguage(maxLen), g2.ExtendedLanguage(maxLen))
}

func sameStrings(a, b [][]string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if strings.Join(a[i], "\x00") != strings.Join(b[i], "\x00") {
			return false
		}
	}
	return true
}

package grammar

import (
	"math/rand"
	"testing"
)

func mustGrammar(t *testing.T, src string) *Grammar {
	t.Helper()
	g, err := FromChainProgram(mustParse(t, src))
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestDeterminizeAndMinimize(t *testing.T) {
	// L = (pq)^n p.
	g := mustGrammar(t, `
a(X,Y) :- p(X,Z), q(Z,W), a(W,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	nfa, err := NFAFromRightLinear(g)
	if err != nil {
		t.Fatal(err)
	}
	dfa := Minimize(Determinize(nfa, []string{"p", "q"}))
	// The minimal DFA for (pq)*p has 2 live states.
	if len(dfa.Accept) != 2 {
		t.Errorf("minimal DFA has %d states, want 2", len(dfa.Accept))
	}
	for _, s := range g.Language(7) {
		if !dfa.Accepts(s) {
			t.Errorf("DFA rejects %v ∈ L(G)", s)
		}
	}
	if dfa.Accepts([]string{"p", "q"}) || dfa.Accepts(nil) || dfa.Accepts([]string{"q"}) {
		t.Error("DFA accepts strings outside L(G)")
	}
}

func TestEquivalentRegularPositive(t *testing.T) {
	// Both generate p+ with different rule shapes.
	g1 := mustGrammar(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	g2 := mustGrammar(t, `
a(X,Y) :- p(X,Z), p(Z,W), a(W,Y).
a(X,Y) :- p(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	ok, err := EquivalentRegular(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("both grammars generate p+; they must be equivalent")
	}
}

func TestEquivalentRegularNegative(t *testing.T) {
	g1 := mustGrammar(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`) // p+
	g2 := mustGrammar(t, `
a(X,Y) :- p(X,Z), p(Z,W), a(W,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`) // p, ppp, ppppp, ... (odd lengths)
	ok, err := EquivalentRegular(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("p+ differs from odd-length p strings")
	}
}

func TestEquivalentRegularLeftLinear(t *testing.T) {
	g1 := mustGrammar(t, `
a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	g2 := mustGrammar(t, `
a(X,Y) :- a(X,Z), p(Z,W), p(W,Y).
a(X,Y) :- p(X,Y).
a(X,Y) :- p(X,Z), p(Z,Y).
?- a(X,Y).
`)
	ok, err := EquivalentRegular(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("both left-linear grammars generate p+")
	}
}

func TestEquivalentRegularMixedRejected(t *testing.T) {
	right := mustGrammar(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- q(X,Y).
?- a(X,Y).
`)
	left := mustGrammar(t, `
a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- q(X,Y).
?- a(X,Y).
`)
	if _, err := EquivalentRegular(right, left); err == nil {
		t.Error("mixed linearity must be rejected")
	}
}

// ChainQueryEquivalent is the decidable fragment of Lemma 4.1(2): verify
// its verdicts against evaluation on random graphs.
func TestChainQueryEquivalentAgainstEvaluation(t *testing.T) {
	p1 := mustParse(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	p2 := mustParse(t, `
a(X,Y) :- p(X,Z), p(Z,W), a(W,Y).
a(X,Y) :- p(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	ok, err := ChainQueryEquivalent(p1, p2)
	if err != nil || !ok {
		t.Fatalf("expected equivalence: %v %v", ok, err)
	}
}

// Property: exact regular equivalence agrees with bounded language
// comparison on random small right-linear grammars (grammar sizes keep
// the distinguishing-string length under the bound).
func TestEquivalentRegularMatchesBoundedProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	randomRightLinear := func() *Grammar {
		nts := []string{"a", "b"}
		ts := []string{"p", "q"}
		g := &Grammar{Start: "a", Productions: map[string][][]string{},
			Terminals: map[string]bool{"p": true, "q": true}}
		for _, nt := range nts {
			n := 1 + rng.Intn(2)
			for i := 0; i < n; i++ {
				var rhs []string
				for k := 0; k < 1+rng.Intn(2); k++ {
					rhs = append(rhs, ts[rng.Intn(2)])
				}
				if rng.Intn(2) == 0 {
					rhs = append(rhs, nts[rng.Intn(2)])
				}
				g.Productions[nt] = append(g.Productions[nt], rhs)
			}
		}
		return g
	}
	for trial := 0; trial < 60; trial++ {
		g1, g2 := randomRightLinear(), randomRightLinear()
		exact, err := EquivalentRegular(g1, g2)
		if err != nil {
			t.Fatal(err)
		}
		bounded := EqualUpTo(g1, g2, 12)
		if exact != bounded {
			t.Fatalf("trial %d: exact=%v bounded=%v\nG1: %v\nG2: %v\nL1=%v\nL2=%v",
				trial, exact, bounded, g1.Productions, g2.Productions,
				g1.Language(12), g2.Language(12))
		}
	}
}

func TestMinimizeEmptyLanguage(t *testing.T) {
	// A grammar whose recursion never bottoms out: empty language.
	g := &Grammar{Start: "a",
		Productions: map[string][][]string{"a": {{"p", "a"}}},
		Terminals:   map[string]bool{"p": true}}
	nfa, err := NFAFromRightLinear(g)
	if err != nil {
		t.Fatal(err)
	}
	dfa := Minimize(Determinize(nfa, []string{"p"}))
	if dfa.Accepts([]string{"p"}) || dfa.Accepts(nil) {
		t.Error("empty language must accept nothing")
	}
	// Two empty languages are equivalent.
	ok, err := EquivalentRegular(g, g)
	if err != nil || !ok {
		t.Errorf("empty == empty: %v %v", ok, err)
	}
}

func TestEqualDFAWithDifferentAlphabets(t *testing.T) {
	g1 := mustGrammar(t, `
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	g2 := mustGrammar(t, `
a(X,Y) :- q(X,Y).
?- a(X,Y).
`)
	ok, err := EquivalentRegular(g1, g2)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("L={p} and L={q} must differ")
	}
}

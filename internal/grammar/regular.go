package grammar

import (
	"fmt"
	"sort"

	"existdlog/internal/ast"
)

// Linearity classifies a chain grammar's productions.
type Linearity int

const (
	// NotLinear grammars have some production with a nonterminal in a
	// middle position, or more than one nonterminal.
	NotLinear Linearity = iota
	// RightLinear productions have at most one nonterminal, in last
	// position (the grammar generates a regular language).
	RightLinear
	// LeftLinear productions have at most one nonterminal, in first
	// position (also regular).
	LeftLinear
	// Acyclic grammars have no nonterminals on any right-hand side beyond
	// what both linear forms allow (e.g. purely terminal productions);
	// they are trivially both left- and right-linear.
	Acyclic
)

// Classify inspects the productions of g. A grammar that is both left- and
// right-linear (no production mentions a nonterminal at all) is Acyclic.
// Theorem 3.3: a binary chain program has an equivalent monadic chain
// program iff its language is regular; linear grammars are the decidable
// regular core this package constructs monadic programs for.
func Classify(g *Grammar) Linearity {
	left, right := true, true
	sawNT := false
	for _, prods := range g.Productions {
		for _, rhs := range prods {
			for i, sym := range rhs {
				if !g.NonTerminal(sym) {
					continue
				}
				sawNT = true
				if i != 0 {
					left = false
				}
				if i != len(rhs)-1 {
					right = false
				}
			}
			nts := 0
			for _, sym := range rhs {
				if g.NonTerminal(sym) {
					nts++
				}
			}
			if nts > 1 {
				left, right = false, false
			}
		}
	}
	switch {
	case !sawNT:
		return Acyclic
	case right:
		return RightLinear
	case left:
		return LeftLinear
	default:
		return NotLinear
	}
}

// Reverse returns the grammar generating the reversal of g's language
// (every right-hand side reversed). Reversing a left-linear grammar yields
// a right-linear one.
func Reverse(g *Grammar) *Grammar {
	out := &Grammar{
		Start:       g.Start,
		Productions: make(map[string][][]string, len(g.Productions)),
		Terminals:   g.Terminals,
	}
	for nt, prods := range g.Productions {
		for _, rhs := range prods {
			rev := make([]string, len(rhs))
			for i, s := range rhs {
				rev[len(rhs)-1-i] = s
			}
			out.Productions[nt] = append(out.Productions[nt], rev)
		}
	}
	return out
}

// NFA is a nondeterministic finite automaton over terminal symbols.
type NFA struct {
	Start     int
	Accept    map[int]bool
	NumStates int
	// Trans[s] maps a terminal symbol to successor states.
	Trans []map[string][]int
}

// NFAFromRightLinear builds the NFA recognizing L(g) for a right-linear
// chain grammar: states are nonterminals plus intermediate states for
// multi-terminal productions, plus one accepting state.
func NFAFromRightLinear(g *Grammar) (*NFA, error) {
	if c := Classify(g); c != RightLinear && c != Acyclic {
		return nil, fmt.Errorf("grammar: not right-linear")
	}
	n := &NFA{Accept: map[int]bool{}}
	stateOf := map[string]int{}
	newState := func() int {
		n.Trans = append(n.Trans, map[string][]int{})
		n.NumStates++
		return n.NumStates - 1
	}
	stateFor := func(nt string) int {
		if s, ok := stateOf[nt]; ok {
			return s
		}
		s := newState()
		stateOf[nt] = s
		return s
	}
	accept := newState()
	n.Accept[accept] = true
	n.Start = stateFor(g.Start)

	nts := make([]string, 0, len(g.Productions))
	for nt := range g.Productions {
		nts = append(nts, nt)
	}
	sort.Strings(nts)
	for _, nt := range nts {
		for _, rhs := range g.Productions[nt] {
			cur := stateFor(nt)
			last := len(rhs) - 1
			tailNT := g.NonTerminal(rhs[last])
			end := last
			if tailNT {
				end = last - 1
			}
			if end < 0 {
				// Unit production A → B: an ε-move; fold by copying B's
				// transitions later is complex — reject (chain grammars
				// from chain programs always consume a terminal or carry
				// bodies of length ≥ 1 with at least the structure below).
				return nil, fmt.Errorf("grammar: unit production %s → %s not supported", nt, rhs[0])
			}
			for i := 0; i <= end; i++ {
				var next int
				switch {
				case i == end && tailNT:
					next = stateFor(rhs[last])
				case i == end:
					next = accept
				default:
					next = newState()
				}
				n.Trans[cur][rhs[i]] = append(n.Trans[cur][rhs[i]], next)
				cur = next
			}
		}
	}
	return n, nil
}

// Accepts reports whether the NFA accepts the string.
func (n *NFA) Accepts(s []string) bool {
	cur := map[int]bool{n.Start: true}
	for _, sym := range s {
		next := map[int]bool{}
		for st := range cur {
			for _, t := range n.Trans[st][sym] {
				next[t] = true
			}
		}
		cur = next
		if len(cur) == 0 {
			return false
		}
	}
	for st := range cur {
		if n.Accept[st] {
			return true
		}
	}
	return false
}

// MonadicProgram is the result of the Theorem 3.3 construction: a monadic
// chain program equivalent to a regular binary chain program under an
// existential query.
type MonadicProgram struct {
	Program *ast.Program
	// AnswerPred is the unary predicate holding the query answer.
	AnswerPred string
}

// MonadicFromChain builds, for a binary chain program whose grammar is
// left- or right-linear, the equivalent monadic chain program for the
// existential query given by adornment "dn" (all Y such that some X
// reaches Y along a word of the language) or "nd" (all X reaching some Y).
// This is the constructive direction of Theorem 3.3; the converse
// (deciding whether a non-regular chain program has a monadic equivalent)
// is undecidable.
func MonadicFromChain(p *ast.Program, adornment ast.Adornment) (*MonadicProgram, error) {
	if adornment != "dn" && adornment != "nd" {
		return nil, fmt.Errorf("grammar: adornment must be dn or nd, got %q", adornment)
	}
	g, err := FromChainProgram(p)
	if err != nil {
		return nil, err
	}
	switch Classify(g) {
	case RightLinear, Acyclic:
		return monadicFromRightLinear(g, adornment)
	case LeftLinear:
		// A path X→Y labeled w exists iff a path Y→X labeled rev(w) exists
		// over the reversed edge relations, and rev(L) is right-linear for
		// left-linear L: build the construction for the reversed grammar
		// with the flipped adornment, then swap the arguments of every
		// base literal in the result.
		mp, err := monadicFromRightLinear(Reverse(g), flip(adornment))
		if err != nil {
			return nil, err
		}
		for ri := range mp.Program.Rules {
			for bi := range mp.Program.Rules[ri].Body {
				b := &mp.Program.Rules[ri].Body[bi]
				if g.Terminals[b.Key()] && b.Arity() == 2 {
					b.Args[0], b.Args[1] = b.Args[1], b.Args[0]
				}
			}
		}
		return mp, nil
	default:
		return nil, fmt.Errorf("grammar: not linear; Theorem 3.3 gives no effective construction (regularity is undecidable)")
	}
}

func monadicFromRightLinear(g *Grammar, adornment ast.Adornment) (*MonadicProgram, error) {
	nfa, err := NFAFromRightLinear(g)
	if err != nil {
		return nil, err
	}

	var rules []ast.Rule
	pred := func(s int) string { return fmt.Sprintf("m%d", s) }
	answer := "ans"

	if adornment == "dn" {
		// m_s(Y): some X reaches Y along a prefix driving the NFA from the
		// start state to s. Seeds fold the first transition to avoid a
		// domain predicate (chain languages have no ε).
		for s := 0; s < nfa.NumStates; s++ {
			for sym, nexts := range nfa.Trans[s] {
				for _, s2 := range nexts {
					if s == nfa.Start {
						rules = append(rules, ast.NewRule(
							ast.NewAtom(pred(s2), ast.V("Y")),
							ast.NewAtom(sym, ast.V("X"), ast.V("Y"))))
					}
					rules = append(rules, ast.NewRule(
						ast.NewAtom(pred(s2), ast.V("Y")),
						ast.NewAtom(pred(s), ast.V("Z")), ast.NewAtom(sym, ast.V("Z"), ast.V("Y"))))
				}
			}
		}
		for s := range nfa.Accept {
			rules = append(rules, ast.NewRule(
				ast.NewAtom(answer, ast.V("Y")), ast.NewAtom(pred(s), ast.V("Y"))))
		}
	} else {
		// m_s(X): X starts a path whose word drives the NFA from s to an
		// accepting state.
		for s := 0; s < nfa.NumStates; s++ {
			for sym, nexts := range nfa.Trans[s] {
				for _, s2 := range nexts {
					if nfa.Accept[s2] {
						rules = append(rules, ast.NewRule(
							ast.NewAtom(pred(s), ast.V("X")),
							ast.NewAtom(sym, ast.V("X"), ast.V("Y"))))
					}
					rules = append(rules, ast.NewRule(
						ast.NewAtom(pred(s), ast.V("X")),
						ast.NewAtom(sym, ast.V("X"), ast.V("Z")), ast.NewAtom(pred(s2), ast.V("Z"))))
				}
			}
		}
		rules = append(rules, ast.NewRule(
			ast.NewAtom(answer, ast.V("X")), ast.NewAtom(pred(nfa.Start), ast.V("X"))))
	}
	sortRules(rules)
	prog := ast.NewProgram(ast.NewAtom(answer, ast.V("V")), rules...)
	return &MonadicProgram{Program: prog, AnswerPred: answer}, nil
}

func flip(a ast.Adornment) ast.Adornment {
	if a == "dn" {
		return "nd"
	}
	return "dn"
}

func sortRules(rules []ast.Rule) {
	sort.Slice(rules, func(i, j int) bool { return rules[i].String() < rules[j].String() })
}

package grammar

import (
	"existdlog/internal/ast"

	"fmt"
	"sort"
	"strings"
)

// DFA is a deterministic finite automaton over terminal symbols. A missing
// transition goes to an implicit dead state.
type DFA struct {
	Start    int
	Accept   []bool
	Trans    []map[string]int
	Alphabet []string
}

// Determinize performs the subset construction over the given alphabet.
func Determinize(n *NFA, alphabet []string) *DFA {
	key := func(set []int) string {
		parts := make([]string, len(set))
		for i, s := range set {
			parts[i] = fmt.Sprint(s)
		}
		return strings.Join(parts, ",")
	}
	norm := func(set map[int]bool) []int {
		out := make([]int, 0, len(set))
		for s := range set {
			out = append(out, s)
		}
		sort.Ints(out)
		return out
	}
	d := &DFA{Alphabet: append([]string(nil), alphabet...)}
	sort.Strings(d.Alphabet)
	idOf := map[string]int{}
	var sets [][]int
	newState := func(set []int) int {
		k := key(set)
		if id, ok := idOf[k]; ok {
			return id
		}
		id := len(sets)
		idOf[k] = id
		sets = append(sets, set)
		d.Trans = append(d.Trans, map[string]int{})
		acc := false
		for _, s := range set {
			if n.Accept[s] {
				acc = true
			}
		}
		d.Accept = append(d.Accept, acc)
		return id
	}
	d.Start = newState([]int{n.Start})
	for i := 0; i < len(sets); i++ {
		for _, sym := range d.Alphabet {
			next := map[int]bool{}
			for _, s := range sets[i] {
				for _, t := range n.Trans[s][sym] {
					next[t] = true
				}
			}
			if len(next) == 0 {
				continue // dead
			}
			d.Trans[i][sym] = newState(norm(next))
		}
	}
	return d
}

// Minimize returns the Moore-minimized DFA (dead states merged into the
// implicit dead state, unreachable states dropped).
func Minimize(d *DFA) *DFA {
	n := len(d.Accept)
	// Completion: treat the implicit dead state as state n.
	trans := func(s int, sym string) int {
		if s == n {
			return n
		}
		if t, ok := d.Trans[s][sym]; ok {
			return t
		}
		return n
	}
	accept := func(s int) bool { return s != n && d.Accept[s] }

	// Initial partition by acceptance.
	class := make([]int, n+1)
	for s := 0; s <= n; s++ {
		if accept(s) {
			class[s] = 1
		}
	}
	for {
		sig := make([]string, n+1)
		for s := 0; s <= n; s++ {
			var sb strings.Builder
			fmt.Fprintf(&sb, "%d", class[s])
			for _, sym := range d.Alphabet {
				fmt.Fprintf(&sb, "|%d", class[trans(s, sym)])
			}
			sig[s] = sb.String()
		}
		remap := map[string]int{}
		next := make([]int, n+1)
		for s := 0; s <= n; s++ {
			id, ok := remap[sig[s]]
			if !ok {
				id = len(remap)
				remap[sig[s]] = id
			}
			next[s] = id
		}
		same := true
		for s := 0; s <= n; s++ {
			if next[s] != class[s] {
				same = false
			}
		}
		class = next
		if same {
			break
		}
	}
	// Build the quotient, keeping only states reachable from the start and
	// not equivalent to the dead state.
	dead := class[n]
	out := &DFA{Alphabet: d.Alphabet, Start: -1}
	idOf := map[int]int{}
	var order []int
	var visit func(c int)
	visit = func(c int) {
		if c == dead {
			return
		}
		if _, ok := idOf[c]; ok {
			return
		}
		idOf[c] = len(order)
		order = append(order, c)
		// Find a representative of class c.
		rep := -1
		for s := 0; s <= n; s++ {
			if class[s] == c {
				rep = s
				break
			}
		}
		for _, sym := range d.Alphabet {
			visit(class[trans(rep, sym)])
		}
	}
	startClass := class[d.Start]
	visit(startClass)
	out.Accept = make([]bool, len(order))
	out.Trans = make([]map[string]int, len(order))
	for i, c := range order {
		rep := -1
		for s := 0; s <= n; s++ {
			if class[s] == c {
				rep = s
				break
			}
		}
		out.Accept[i] = accept(rep)
		out.Trans[i] = map[string]int{}
		for _, sym := range d.Alphabet {
			tc := class[trans(rep, sym)]
			if tc == dead {
				continue
			}
			out.Trans[i][sym] = idOf[tc]
		}
	}
	if startClass == dead {
		// Empty language: single non-accepting start with no transitions.
		return &DFA{Alphabet: d.Alphabet, Start: 0,
			Accept: []bool{false}, Trans: []map[string]int{{}}}
	}
	out.Start = idOf[startClass]
	return out
}

// Accepts reports whether the DFA accepts the string.
func (d *DFA) Accepts(s []string) bool {
	cur := d.Start
	for _, sym := range s {
		t, ok := d.Trans[cur][sym]
		if !ok {
			return false
		}
		cur = t
	}
	return d.Accept[cur]
}

// EqualDFA decides language equality of two DFAs by a product search:
// every reachable state pair must agree on acceptance (missing transitions
// are the dead state).
func EqualDFA(d1, d2 *DFA) bool {
	alpha := map[string]bool{}
	for _, s := range d1.Alphabet {
		alpha[s] = true
	}
	for _, s := range d2.Alphabet {
		alpha[s] = true
	}
	type pair struct{ a, b int } // -1 = dead
	seen := map[pair]bool{}
	queue := []pair{{d1.Start, d2.Start}}
	seen[queue[0]] = true
	acc := func(d *DFA, s int) bool { return s >= 0 && d.Accept[s] }
	step := func(d *DFA, s int, sym string) int {
		if s < 0 {
			return -1
		}
		if t, ok := d.Trans[s][sym]; ok {
			return t
		}
		return -1
	}
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		if acc(d1, p.a) != acc(d2, p.b) {
			return false
		}
		for sym := range alpha {
			np := pair{step(d1, p.a, sym), step(d2, p.b, sym)}
			if np.a == -1 && np.b == -1 {
				continue
			}
			if !seen[np] {
				seen[np] = true
				queue = append(queue, np)
			}
		}
	}
	return true
}

// EquivalentRegular decides L(g1) = L(g2) exactly for linear chain
// grammars — the decidable fragment of Lemma 4.1's query-equivalence
// criterion (general CFG equality is undecidable, Lemma 4.2). Both
// grammars must lean the same way: two right-linear (or acyclic) grammars
// compare directly; two left-linear grammars compare via their reversals;
// mixed linearity is rejected.
func EquivalentRegular(g1, g2 *Grammar) (bool, error) {
	c1, c2 := Classify(g1), Classify(g2)
	rightish := func(c Linearity) bool { return c == RightLinear || c == Acyclic }
	leftish := func(c Linearity) bool { return c == LeftLinear || c == Acyclic }
	switch {
	case rightish(c1) && rightish(c2):
	case leftish(c1) && leftish(c2):
		g1, g2 = Reverse(g1), Reverse(g2)
	default:
		return false, fmt.Errorf("grammar: cannot compare linearity %v with %v exactly", c1, c2)
	}
	n1, err := NFAFromRightLinear(g1)
	if err != nil {
		return false, err
	}
	n2, err := NFAFromRightLinear(g2)
	if err != nil {
		return false, err
	}
	alpha := map[string]bool{}
	for t := range g1.Terminals {
		alpha[t] = true
	}
	for t := range g2.Terminals {
		alpha[t] = true
	}
	syms := make([]string, 0, len(alpha))
	for t := range alpha {
		syms = append(syms, t)
	}
	sort.Strings(syms)
	d1 := Minimize(Determinize(n1, syms))
	d2 := Minimize(Determinize(n2, syms))
	return EqualDFA(d1, d2), nil
}

// ChainQueryEquivalent decides query equivalence of two binary chain
// programs with linear grammars, per Lemma 4.1(2): the programs compute
// the same answers on every database iff their languages coincide.
func ChainQueryEquivalent(p1, p2 *ast.Program) (bool, error) {
	g1, err := FromChainProgram(p1)
	if err != nil {
		return false, err
	}
	g2, err := FromChainProgram(p2)
	if err != nil {
		return false, err
	}
	return EquivalentRegular(g1, g2)
}

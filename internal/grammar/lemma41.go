package grammar

import "sort"

// This file completes the four-way correspondence of Lemma 4.1 between
// notions of chain-program equivalence and grammar language equalities:
//
//  1. DB equivalence       ⟺ L(G1,S) = L(G2,S) for every nonterminal S;
//  2. query equivalence    ⟺ L(G1,Q1) = L(G2,Q2);
//  3. uniform equivalence  ⟺ Lᵉˣ(G1,S) = Lᵉˣ(G2,S) for every nonterminal;
//  4. uniform query equiv. ⟺ Lᵉˣ(G1,Q1) = Lᵉˣ(G2,Q2).
//
// Items 2 and 4 are undecidable in general (Lemma 4.2); the *EqualUpTo
// functions are their bounded, testable forms, and EquivalentRegular (in
// dfa.go) decides item 2 exactly for linear grammars. Item 3 is decidable
// (Sagiv); the bounded form here is cross-checked against the uniform
// package's decision procedure in the tests.

// sharedNonTerminals returns the union of both grammars' nonterminals.
func sharedNonTerminals(g1, g2 *Grammar) []string {
	set := map[string]bool{}
	for nt := range g1.Productions {
		set[nt] = true
	}
	for nt := range g2.Productions {
		set[nt] = true
	}
	out := make([]string, 0, len(set))
	for nt := range set {
		out = append(out, nt)
	}
	sort.Strings(out)
	return out
}

// DBEqualUpTo is the bounded form of Lemma 4.1(1): DB equivalence demands
// language equality at every nonterminal, not just the query's.
func DBEqualUpTo(g1, g2 *Grammar, maxLen int) bool {
	for _, nt := range sharedNonTerminals(g1, g2) {
		if !sameStrings(g1.LanguageFrom(nt, maxLen), g2.LanguageFrom(nt, maxLen)) {
			return false
		}
	}
	return true
}

// UniformEqualUpTo is the bounded form of Lemma 4.1(3): uniform
// equivalence demands extended-language equality at every nonterminal.
func UniformEqualUpTo(g1, g2 *Grammar, maxLen int) bool {
	for _, nt := range sharedNonTerminals(g1, g2) {
		if !sameStrings(g1.ExtendedLanguageFrom(nt, maxLen), g2.ExtendedLanguageFrom(nt, maxLen)) {
			return false
		}
	}
	return true
}

package grammar

import (
	"testing"

	"existdlog/internal/uniform"
)

// Lemma 4.1(3): the bounded extended-language test must agree with the
// uniform package's (exact, Sagiv-style) decision procedure on chain
// programs whose distinguishing sentential forms are short.
func TestLemma41UniformAgreesWithSagiv(t *testing.T) {
	cases := []struct {
		name     string
		src1     string
		src2     string
		boundLen int
	}{
		{
			name: "left-vs-right-linear TC",
			src1: `a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).`,
			src2: `a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).`,
			boundLen: 4,
		},
		{
			name: "identical programs",
			src1: `a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).`,
			src2: `a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).`,
			boundLen: 5,
		},
		{
			name: "redundant long-step rule",
			src1: `a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).`,
			src2: `a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).`,
			boundLen: 5,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			p1, p2 := mustParse(t, c.src1), mustParse(t, c.src2)
			g1, err := FromChainProgram(p1)
			if err != nil {
				t.Fatal(err)
			}
			g2, err := FromChainProgram(p2)
			if err != nil {
				t.Fatal(err)
			}
			bounded := UniformEqualUpTo(g1, g2, c.boundLen)
			exact, err := uniform.Equivalent(p1, p2)
			if err != nil {
				t.Fatal(err)
			}
			if bounded != exact {
				t.Errorf("Lemma 4.1(3) mismatch: bounded=%v exact=%v", bounded, exact)
			}
		})
	}
}

// Lemma 4.1(1) vs (2): DB equivalence is strictly stronger than query
// equivalence — two programs can agree at the query predicate while an
// auxiliary nonterminal differs.
func TestLemma41DBVsQuery(t *testing.T) {
	p1 := mustParse(t, `
s(X,Y) :- t(X,Y).
t(X,Y) :- p(X,Y).
?- s(X,Y).
`)
	p2 := mustParse(t, `
s(X,Y) :- t(X,Y).
t(X,Y) :- p(X,Z), p(Z,Y).
s(X,Y) :- p(X,Y).
t(X,Y) :- p(X,Y).
?- s(X,Y).
`)
	g1, err := FromChainProgram(p1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := FromChainProgram(p2)
	if err != nil {
		t.Fatal(err)
	}
	// Query languages differ here too (p2's s also derives pp), so build
	// the contrast the other way: same query language, different t.
	if EqualUpTo(g1, g2, 4) {
		t.Skip("unexpected query-language equality")
	}
	p3 := mustParse(t, `
s(X,Y) :- p(X,Y).
t(X,Y) :- p(X,Y).
?- s(X,Y).
`)
	p4 := mustParse(t, `
s(X,Y) :- p(X,Y).
t(X,Y) :- p(X,Z), p(Z,Y).
?- s(X,Y).
`)
	g3, _ := FromChainProgram(p3)
	g4, _ := FromChainProgram(p4)
	if !EqualUpTo(g3, g4, 5) {
		t.Error("query languages must agree (both {p})")
	}
	if DBEqualUpTo(g3, g4, 5) {
		t.Error("DB equivalence must fail: t differs")
	}
}

// A redundant rule keeps all four equivalences.
func TestLemma41RedundantRulePreservesAll(t *testing.T) {
	p1 := mustParse(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	p2 := mustParse(t, `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	g1, _ := FromChainProgram(p1)
	g2, _ := FromChainProgram(p2)
	if !DBEqualUpTo(g1, g2, 5) || !UniformEqualUpTo(g1, g2, 4) || !EqualUpTo(g1, g2, 5) {
		t.Error("duplicated rule must preserve every equivalence")
	}
}

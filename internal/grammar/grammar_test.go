package grammar

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"existdlog/internal/ast"
	"existdlog/internal/engine"
	"existdlog/internal/parser"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.ParseProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const tcChain = `
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`

func TestIsChainProgram(t *testing.T) {
	if err := IsChainProgram(mustParse(t, tcChain)); err != nil {
		t.Errorf("TC should be a chain program: %v", err)
	}
	bad := []string{
		`a(X,Y) :- p(X,Z), q(Z,W,Y).` + "\n?- a(X,Y).",   // ternary literal
		`a(X,Y) :- p(Y,Z), q(Z,X).` + "\n?- a(X,Y).",     // broken chain
		`a(X,Y,Z) :- p(X,Y), q(Y,Z).` + "\n?- a(X,_,_).", // ternary head
		`a(X,Y) :- p(X,Z), q(X,Y).` + "\n?- a(X,Y).",     // not a chain
	}
	for _, src := range bad {
		p, err := parser.ParseProgram(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		if err := IsChainProgram(p); err == nil {
			t.Errorf("%q should not be a chain program", src)
		}
	}
}

func TestGrammarExtraction(t *testing.T) {
	g, err := FromChainProgram(mustParse(t, tcChain))
	if err != nil {
		t.Fatal(err)
	}
	if g.Start != "a" {
		t.Errorf("start = %s", g.Start)
	}
	if !g.Terminals["p"] || g.NonTerminal("p") {
		t.Errorf("p should be a terminal")
	}
	// L(a) up to length 3 is p, pp, ppp.
	lang := g.Language(3)
	want := [][]string{{"p"}, {"p", "p"}, {"p", "p", "p"}}
	if fmt.Sprint(lang) != fmt.Sprint(want) {
		t.Errorf("language = %v", lang)
	}
}

func TestLanguageWithUnitCycle(t *testing.T) {
	// A → B | t ; B → A | u: unit cycles must not lose strings.
	g := &Grammar{
		Start: "A",
		Productions: map[string][][]string{
			"A": {{"B"}, {"t"}},
			"B": {{"A"}, {"u"}},
		},
		Terminals: map[string]bool{"t": true, "u": true},
	}
	lang := g.Language(1)
	if fmt.Sprint(lang) != fmt.Sprint([][]string{{"t"}, {"u"}}) {
		t.Errorf("language = %v", lang)
	}
	if got := g.LanguageFrom("B", 1); fmt.Sprint(got) != fmt.Sprint([][]string{{"t"}, {"u"}}) {
		t.Errorf("L(B) = %v", got)
	}
}

func TestExtendedLanguage(t *testing.T) {
	g, err := FromChainProgram(mustParse(t, tcChain))
	if err != nil {
		t.Fatal(err)
	}
	ext := g.ExtendedLanguage(2)
	// a; p; pa (from a→pa); pp.
	want := [][]string{{"a"}, {"p"}, {"p", "a"}, {"p", "p"}}
	if fmt.Sprint(ext) != fmt.Sprint(want) {
		t.Errorf("extended language = %v", ext)
	}
}

// Lemma 4.1(2), bounded: two chain programs are query-equivalent iff their
// languages agree. Left- vs right-linear TC agree on L but differ on Lᵉˣ
// (they are query- but not uniformly equivalent).
func TestLemma41LanguageVsExtended(t *testing.T) {
	right, err := FromChainProgram(mustParse(t, tcChain))
	if err != nil {
		t.Fatal(err)
	}
	left, err := FromChainProgram(mustParse(t, `
a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`))
	if err != nil {
		t.Fatal(err)
	}
	if !EqualUpTo(left, right, 6) {
		t.Error("L(left) must equal L(right) (query equivalence)")
	}
	if ExtendedEqualUpTo(left, right, 4) {
		t.Error("extended languages must differ (no uniform equivalence)")
	}
}

// Lemma 4.1 in executable form: engine evaluation of a chain program
// coincides with CFL-reachability of its grammar, on random graphs.
func TestEngineMatchesCFLReachability(t *testing.T) {
	programs := []string{
		tcChain,
		// Non-regular: a → p a q | p q (matched parentheses).
		`a(X,Y) :- p(X,Z), a(Z,W), q(W,Y).
a(X,Y) :- p(X,Z), q(Z,Y).
?- a(X,Y).`,
		// Two nonterminals.
		`s(X,Y) :- p(X,Z), t(Z,Y).
t(X,Y) :- q(X,Z), t(Z,W), q(W,Y).
t(X,Y) :- q(X,Y).
?- s(X,Y).`,
	}
	rng := rand.New(rand.NewSource(41))
	for pi, src := range programs {
		p := mustParse(t, src)
		g, err := FromChainProgram(p)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 8; trial++ {
			db := engine.NewDatabase()
			n := 3 + rng.Intn(5)
			for i := 0; i < 2*n; i++ {
				db.Add("p", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
				db.Add("q", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
			}
			res, err := engine.Eval(p, db, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cfl, err := CFLReach(g, db)
			if err != nil {
				t.Fatal(err)
			}
			for nt := range g.Productions {
				var engRows []string
				for _, row := range res.DB.Facts(nt) {
					engRows = append(engRows, strings.Join(row, ","))
				}
				var cflRows []string
				for _, pr := range cfl[nt] {
					cflRows = append(cflRows, pr[0]+","+pr[1])
				}
				if fmt.Sprint(engRows) != fmt.Sprint(cflRows) {
					t.Fatalf("program %d trial %d: %s differs\nengine: %v\ncfl:    %v",
						pi, trial, nt, engRows, cflRows)
				}
			}
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		src  string
		want Linearity
	}{
		{tcChain, RightLinear},
		{`a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).`, LeftLinear},
		{`a(X,Y) :- p(X,Z), a(Z,W), q(W,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).`, NotLinear},
		{`a(X,Y) :- p(X,Z), q(Z,Y).
?- a(X,Y).`, Acyclic},
	}
	for _, c := range cases {
		g, err := FromChainProgram(mustParse(t, c.src))
		if err != nil {
			t.Fatal(err)
		}
		if got := Classify(g); got != c.want {
			t.Errorf("Classify(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestNFAAcceptsLanguage(t *testing.T) {
	// a → p q a | p: L = (pq)^n p.
	g, err := FromChainProgram(mustParse(t, `
a(X,Y) :- p(X,Z), q(Z,W), a(W,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`))
	if err != nil {
		t.Fatal(err)
	}
	nfa, err := NFAFromRightLinear(g)
	if err != nil {
		t.Fatal(err)
	}
	accept := [][]string{{"p"}, {"p", "q", "p"}, {"p", "q", "p", "q", "p"}}
	reject := [][]string{{}, {"q"}, {"p", "q"}, {"p", "p"}, {"q", "p"}}
	for _, s := range accept {
		if !nfa.Accepts(s) {
			t.Errorf("should accept %v", s)
		}
	}
	for _, s := range reject {
		if nfa.Accepts(s) {
			t.Errorf("should reject %v", s)
		}
	}
	// Cross-check against the bounded language enumeration.
	for _, s := range g.Language(7) {
		if !nfa.Accepts(s) {
			t.Errorf("NFA rejects %v ∈ L(G)", s)
		}
	}
}

// Theorem 3.3, constructive half: the monadic program computes exactly the
// projection of the binary chain program, for both existential queries and
// both linearities.
func TestMonadicFromChain(t *testing.T) {
	programs := []string{
		tcChain, // right-linear
		`a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).`, // left-linear
		`a(X,Y) :- p(X,Z), q(Z,W), a(W,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).`, // right-linear, longer body
	}
	rng := rand.New(rand.NewSource(33))
	for pi, src := range programs {
		p := mustParse(t, src)
		for _, adorn := range []ast.Adornment{"dn", "nd"} {
			mp, err := MonadicFromChain(p, adorn)
			if err != nil {
				t.Fatalf("program %d adorn %s: %v", pi, adorn, err)
			}
			// The constructed program must be monadic: derived predicates
			// unary.
			for _, r := range mp.Program.Rules {
				if r.Head.Arity() != 1 {
					t.Fatalf("non-monadic rule %s", r)
				}
			}
			for trial := 0; trial < 6; trial++ {
				db := engine.NewDatabase()
				n := 3 + rng.Intn(5)
				for i := 0; i < 2*n; i++ {
					db.Add("p", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
					db.Add("q", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
				}
				full, err := engine.Eval(p, db, engine.Options{})
				if err != nil {
					t.Fatal(err)
				}
				mono, err := engine.Eval(mp.Program, db, engine.Options{})
				if err != nil {
					t.Fatal(err)
				}
				// Project the binary answer.
				col := 1
				if adorn == "nd" {
					col = 0
				}
				wantSet := map[string]bool{}
				for _, row := range full.DB.Facts("a") {
					wantSet[row[col]] = true
				}
				gotSet := map[string]bool{}
				for _, row := range mono.DB.Facts(mp.AnswerPred) {
					gotSet[row[0]] = true
				}
				if len(wantSet) != len(gotSet) {
					t.Fatalf("program %d adorn %s trial %d: want %v, got %v\nmonadic:\n%s",
						pi, adorn, trial, wantSet, gotSet, mp.Program)
				}
				for k := range wantSet {
					if !gotSet[k] {
						t.Fatalf("program %d adorn %s: missing %s", pi, adorn, k)
					}
				}
			}
		}
	}
}

func TestMonadicRejectsNonLinear(t *testing.T) {
	p := mustParse(t, `
a(X,Y) :- p(X,Z), a(Z,W), q(W,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	if _, err := MonadicFromChain(p, "dn"); err == nil {
		t.Error("non-linear grammar must be rejected")
	}
}

func TestToChainProgramRoundTrip(t *testing.T) {
	p := mustParse(t, tcChain)
	g, err := FromChainProgram(p)
	if err != nil {
		t.Fatal(err)
	}
	back := g.ToChainProgram()
	g2, err := FromChainProgram(back)
	if err != nil {
		t.Fatalf("round-tripped program is not a chain program: %v\n%s", err, back)
	}
	if !EqualUpTo(g, g2, 5) {
		t.Errorf("round trip changed the language:\n%s", back)
	}
}

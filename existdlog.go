// Package existdlog is an optimizer and bottom-up evaluator for
// existential Datalog queries, reproducing Ramakrishnan, Beeri and
// Krishnamurthy, "Optimizing Existential Datalog Queries" (PODS 1988).
//
// An existential query is one with don't-care argument positions — the
// caller needs only the existence of a witness, not its value (for
// example, "which nodes can reach *some* node": query(X) :- a(X,Y) keeps
// only X). The library detects such positions syntactically (adornment,
// Section 2 of the paper), makes disconnected existential subqueries
// explicit as boolean predicates that the evaluator retires at runtime
// once proven — a bottom-up cut (Section 3.1) — pushes the projections
// through recursion, shrinking predicate arities (Section 3.2), and
// discards rules made redundant by the projections using summary-based
// sufficient conditions for uniform query equivalence and Sagiv's
// uniform-equivalence test (Sections 3.3-5).
//
// Basic use:
//
//	prog, edb, err := existdlog.Parse(src)
//	opt, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
//	res, err := existdlog.Eval(opt.Program, edb, existdlog.EvalOptions{BooleanCut: true})
//	rows := res.Answers(opt.Program.Query)
//
// The underlying machinery (adornment, transformation, deletion,
// uniform-equivalence testing, the chain-program/grammar bridge, and the
// magic-sets/counting rewrites the paper treats as orthogonal) lives in
// the internal packages and is surfaced through this facade.
package existdlog

import (
	"context"

	"existdlog/internal/ast"
	"existdlog/internal/engine"
	"existdlog/internal/ierr"
	"existdlog/internal/parser"
	"existdlog/internal/trace"
)

// Core types, aliased from the internal packages so that everything the
// facade returns interoperates with everything it accepts.
type (
	// Program is a set of rules plus a query goal.
	Program = ast.Program
	// Rule is a Horn rule Head :- Body.
	Rule = ast.Rule
	// Atom is a (possibly adorned) predicate occurrence.
	Atom = ast.Atom
	// Term is a variable or constant.
	Term = ast.Term
	// Adornment is a string over n/d (needed / existential).
	Adornment = ast.Adornment
	// Database is an extensional database of named relations.
	Database = engine.Database
	// EvalOptions configures bottom-up evaluation.
	EvalOptions = engine.Options
	// EvalResult is an evaluation outcome: derived database plus counters.
	EvalResult = engine.Result
	// Stats are the evaluation counters.
	Stats = engine.Stats
	// Tree is a derivation tree reconstructed from provenance.
	Tree = engine.Tree
	// InternalError is a recovered library panic: no exported entry point
	// (parser, optimizer, engine) lets a panic escape; bugs surface as an
	// *InternalError carrying the panic value and its stack.
	InternalError = ierr.InternalError
	// ArityMismatchError reports a predicate used with two different
	// arities; errors.Is(err, ErrArityMismatch) matches it.
	ArityMismatchError = engine.ArityMismatchError
)

// Sentinel errors surfaced by evaluation. ErrCanceled and ErrDeadline wrap
// the context cause and are matched with errors.Is; when either (or a
// limit) aborts an evaluation, the returned result is non-nil with
// Result.Partial set — the soundly derived prefix of the fixpoint.
var (
	ErrCanceled       = engine.ErrCanceled
	ErrDeadline       = engine.ErrDeadline
	ErrFactLimit      = engine.ErrFactLimit
	ErrIterationLimit = engine.ErrIterationLimit
	ErrArityMismatch  = engine.ErrArityMismatch
)

// Evaluation strategies.
const (
	SemiNaive = engine.SemiNaive
	Naive     = engine.Naive
	Parallel  = engine.Parallel
)

// Parse parses a Datalog source text: rules, an optional "?- goal." query,
// and ground facts (which become the returned database).
func Parse(src string) (*Program, *Database, error) {
	res, err := parser.Parse(src)
	if err != nil {
		return nil, nil, err
	}
	db := engine.NewDatabase()
	if err := db.AddAtoms(res.Facts); err != nil {
		return nil, nil, err
	}
	return res.Program, db, nil
}

// ParseProgram parses a source text containing no facts.
func ParseProgram(src string) (*Program, error) { return parser.ParseProgram(src) }

// MustParseProgram panics on parse errors; for tests and examples.
func MustParseProgram(src string) *Program { return parser.MustParseProgram(src) }

// NewDatabase returns an empty extensional database.
func NewDatabase() *Database { return engine.NewDatabase() }

// Eval evaluates a program bottom-up over the database (which is not
// mutated) and returns the derived relations and statistics. It cannot be
// interrupted; production callers should prefer EvalContext.
func Eval(p *Program, db *Database, opt EvalOptions) (*EvalResult, error) {
	return engine.Eval(p, db, opt)
}

// EvalContext is Eval under a context: per-query deadlines and
// cancellation are honored at every fixpoint pass barrier and at bounded
// intervals mid-pass, so aborting a blown-up query returns promptly with
// ErrCanceled or ErrDeadline and a non-nil partial result (Partial set,
// Incomplete naming the reason) holding everything soundly derived so far.
func EvalContext(ctx context.Context, p *Program, db *Database, opt EvalOptions) (*EvalResult, error) {
	return engine.EvalContext(ctx, p, db, opt)
}

// PlanPreview returns the join orders the runtime planner (EvalOptions.
// ReorderJoins) would choose for every rule's startup version, with the
// live EDB cardinalities that justify them — the EXPLAIN view of the
// planner, without running the fixpoint.
func PlanPreview(p *Program, db *Database) ([]trace.VersionOrder, error) {
	return engine.PlanPreview(p, db)
}

// Update incrementally maintains a previous evaluation under newly added
// base facts: the semi-naive delta loop is seeded with just the additions,
// so work is proportional to the change (positive programs only; facts for
// derived predicates and negation are rejected).
func Update(p *Program, prev *EvalResult, added *Database, opt EvalOptions) (*EvalResult, error) {
	return engine.Update(p, prev, added, opt)
}

// UpdateContext is Update under a context, with EvalContext's cancellation
// and partial-result semantics.
func UpdateContext(ctx context.Context, p *Program, prev *EvalResult, added *Database, opt EvalOptions) (*EvalResult, error) {
	return engine.UpdateContext(ctx, p, prev, added, opt)
}

// Retract incrementally removes base facts from a previous evaluation
// using delete-and-rederive (DRed): over-deleted facts with surviving
// alternative derivations are restored. Positive programs only.
func Retract(p *Program, prev *EvalResult, removed *Database, opt EvalOptions) (*EvalResult, error) {
	return engine.Retract(p, prev, removed, opt)
}

// RetractContext is Retract under a context. Note that an aborted
// retraction's partial result may over-approximate (deletions not fully
// propagated); see engine.RetractContext.
func RetractContext(ctx context.Context, p *Program, prev *EvalResult, removed *Database, opt EvalOptions) (*EvalResult, error) {
	return engine.RetractContext(ctx, p, prev, removed, opt)
}

package existdlog

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
)

// The full pipeline on Example 1 of the paper: adornment turns the binary
// closure unary (Example 3) and Sagiv's test removes the recursion
// (Example 4).
func TestOptimizeExample1EndToEnd(t *testing.T) {
	src := `
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`
	prog, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	got := res.Program.String()
	want := `query@n(X) :- a@nd(X).
a@nd(X) :- p(X,Y).
?- query@n(X).
`
	if got != want {
		t.Fatalf("optimized:\n%s\nwant:\n%s\nsteps: %+v", got, want, res.Steps)
	}
	if res.EmptyAnswer {
		t.Error("answer is not empty")
	}
	// Equivalence + the performance claim, on a random graph.
	db := NewDatabase()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 200; i++ {
		db.Add("p", fmt.Sprint(rng.Intn(60)), fmt.Sprint(rng.Intn(60)))
	}
	before, err := Eval(prog, db, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Eval(res.Program, db, EvalOptions{BooleanCut: true})
	if err != nil {
		t.Fatal(err)
	}
	a1 := before.Answers(prog.Query)
	a2 := after.Answers(res.Program.Query)
	if fmt.Sprint(a1) != fmt.Sprint(a2) {
		t.Fatalf("answers differ: %v vs %v", a1, a2)
	}
	if after.Stats.FactsDerived >= before.Stats.FactsDerived {
		t.Errorf("optimized program should derive fewer facts: %d vs %d",
			after.Stats.FactsDerived, before.Stats.FactsDerived)
	}
	if after.Stats.DuplicateHits >= before.Stats.DuplicateHits {
		t.Errorf("optimized program should hit fewer duplicates: %d vs %d",
			after.Stats.DuplicateHits, before.Stats.DuplicateHits)
	}
}

// Example 2 end to end: components become booleans, and the optimized
// program with the runtime cut answers the same query.
func TestOptimizeExample2Components(t *testing.T) {
	src := `
p(X,U) :- q1(X,Y), q2(Y,Z), q3(U,V), q4(V), q5(W).
q4(X) :- q6(X).
?- p(X,_).
`
	prog, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Program.String(), "b1") {
		t.Errorf("expected boolean predicates:\n%s", res.Program)
	}
	db := NewDatabase()
	for i := 0; i < 30; i++ {
		db.Add("q1", fmt.Sprint(i), fmt.Sprint(i+1))
		db.Add("q2", fmt.Sprint(i+1), fmt.Sprint(i+2))
		db.Add("q3", fmt.Sprint(i), fmt.Sprint(i))
		db.Add("q6", fmt.Sprint(i))
	}
	db.Add("q5", "w")
	before, err := Eval(prog, db, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Eval(res.Program, db, EvalOptions{BooleanCut: true})
	if err != nil {
		t.Fatal(err)
	}
	// Needed column comparison.
	count := func(rows [][]string) map[string]bool {
		s := map[string]bool{}
		for _, r := range rows {
			s[r[0]] = true
		}
		return s
	}
	b := count(before.Answers(prog.Query))
	a := count(after.Answers(res.Program.Query))
	if len(a) != len(b) {
		t.Fatalf("answers differ: %v vs %v", b, a)
	}
	if after.Stats.RulesRetired == 0 {
		t.Error("boolean cut should retire rules")
	}
}

// Example 8 end to end: the optimizer proves the answer empty.
func TestOptimizeEmptyAnswer(t *testing.T) {
	src := `
p(X) :- p1(X,Y).
p1(X,Y) :- p2(X,Z,U), g1(Z,U,Y).
p2(X,Z,U) :- p2(X,V,W), g2(V,W,Z,U).
?- p(X).
`
	prog, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if !res.EmptyAnswer {
		t.Errorf("expected compile-time empty answer:\n%s", res.Program)
	}
}

// Magic sets compose with the pipeline when the query binds a constant.
func TestOptimizeWithMagic(t *testing.T) {
	src := `
query(Y) :- a(5,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(Y).
`
	prog, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.MagicSets = true
	res, err := Optimize(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := 0; i < 50; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	before, _ := Eval(prog, db, EvalOptions{})
	after, err := Eval(res.Program, db, EvalOptions{BooleanCut: true})
	if err != nil {
		t.Fatal(err)
	}
	if before.AnswerCount(prog.Query) != after.AnswerCount(res.Program.Query) {
		t.Fatalf("answers differ: %d vs %d\n%s",
			before.AnswerCount(prog.Query), after.AnswerCount(res.Program.Query), res.Program)
	}
	if after.Stats.FactsDerived >= before.Stats.FactsDerived {
		t.Errorf("magic composition should restrict computation: %d vs %d",
			after.Stats.FactsDerived, before.Stats.FactsDerived)
	}
}

// Example 12 through the pipeline: the invariant reduction fires.
func TestOptimizeExample12(t *testing.T) {
	src := `
query(X,Y) :- p(X,Y,Z).
p(X,Y,Z) :- up(X,X1), p(X1,Y1,Z), dn(Y1,Y), c(Z).
p(X,Y,Z) :- b(X,Y,Z).
?- query(X,Y).
`
	prog, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	fired := false
	for _, s := range res.Steps {
		if s.Name == "reduce-invariant" {
			fired = true
		}
	}
	if !fired {
		t.Fatalf("invariant reduction did not fire:\n%+v", res.Steps)
	}
	// The recursive predicate must now be binary.
	for _, r := range res.Program.Rules {
		if strings.HasPrefix(r.Head.Pred, "p_r") && len(r.Head.Args) != 2 {
			t.Errorf("reduced predicate not binary: %s", r)
		}
	}
}

// The zero Options value is a no-op pipeline.
func TestOptimizeNoop(t *testing.T) {
	prog := MustParseProgram(`
a(X,Y) :- p(X,Y).
?- a(X,_).
`)
	res, err := Optimize(prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Program.String() != prog.String() {
		t.Errorf("no-op pipeline changed the program:\n%s", res.Program)
	}
	if len(res.Steps) != 0 {
		t.Errorf("no steps expected, got %+v", res.Steps)
	}
}

func TestParseWithFacts(t *testing.T) {
	prog, db, err := Parse(`
a(X) :- e(X,Y).
e(1,2).
e(2,3).
?- a(X).
`)
	if err != nil {
		t.Fatal(err)
	}
	if db.Count("e") != 2 {
		t.Errorf("e count = %d", db.Count("e"))
	}
	res, err := Eval(prog, db, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Answers(prog.Query); len(got) != 2 {
		t.Errorf("answers = %v", got)
	}
}

// Optimize must never lose or invent answers across a battery of random
// programs; this is the facade-level soundness fuzz.
func TestOptimizeSoundnessFuzz(t *testing.T) {
	shapes := []string{
		`query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).`,
		`query(X) :- a(X,Y), c(W).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).`,
		`a(X,Y) :- a(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,_).`,
		`s(X) :- a(X,Y), b2(Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
b2(Y) :- q(Y).
?- s(X).`,
	}
	rng := rand.New(rand.NewSource(2026))
	for si, src := range shapes {
		prog := MustParseProgram(src)
		res, err := Optimize(prog, DefaultOptions())
		if err != nil {
			t.Fatalf("shape %d: %v", si, err)
		}
		for trial := 0; trial < 10; trial++ {
			db := NewDatabase()
			n := 3 + rng.Intn(6)
			for i := 0; i < 2*n; i++ {
				db.Add("p", fmt.Sprint(rng.Intn(n)), fmt.Sprint(rng.Intn(n)))
				db.Add("q", fmt.Sprint(rng.Intn(n)))
			}
			db.Add("c", "w")
			before, err := Eval(prog, db, EvalOptions{})
			if err != nil {
				t.Fatal(err)
			}
			after, err := Eval(res.Program, db, EvalOptions{BooleanCut: true})
			if err != nil {
				t.Fatal(err)
			}
			// Compare needed columns (first column for these shapes).
			proj := func(rows [][]string) string {
				s := map[string]bool{}
				for _, r := range rows {
					s[r[0]] = true
				}
				keys := make([]string, 0, len(s))
				for k := range s {
					keys = append(keys, k)
				}
				return fmt.Sprint(len(keys))
			}
			b := before.Answers(prog.Query)
			a := after.Answers(res.Program.Query)
			if proj(b) != proj(a) {
				t.Fatalf("shape %d trial %d: answers differ\nbefore %v\nafter %v\noptimized:\n%s",
					si, trial, b, a, res.Program)
			}
		}
	}
}

// Stratified negation (a Section 6 generalization direction) flows through
// the pipeline: the adornment and projection phases apply — a negated
// literal's anonymous positions are existential, so "not e(X,_)" tests an
// (projected) existence — while the positive-only deletion tests step
// aside automatically.
func TestOptimizeWithNegation(t *testing.T) {
	src := `
reach(Y) :- src(Y).
reach(Y) :- reach(X), e(X,Y).
dead(X) :- node(X), not reach(X).
report(X) :- dead(X), audit(W).
?- report(X).
`
	prog, _, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Optimize(prog, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	db := NewDatabase()
	for i := 0; i < 12; i++ {
		db.Add("node", fmt.Sprint(i))
	}
	for i := 0; i < 5; i++ {
		db.Add("e", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	db.Add("src", "0")
	db.Add("audit", "q1")
	before, err := Eval(prog, db, EvalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Eval(res.Program, db, EvalOptions{BooleanCut: true})
	if err != nil {
		t.Fatal(err)
	}
	b := before.Answers(prog.Query)
	a := after.Answers(res.Program.Query)
	if len(a) != len(b) || len(a) != 6 { // nodes 6..11 unreachable
		t.Fatalf("answers: before %v, after %v", b, a)
	}
}

// Unstratifiable programs surface a clear error.
func TestEvalRejectsUnstratifiable(t *testing.T) {
	prog := MustParseProgram(`
p(X) :- q(X), not r(X).
r(X) :- q(X), not p(X).
?- p(X).
`)
	_, err := Eval(prog, NewDatabase(), EvalOptions{})
	if err == nil || !strings.Contains(err.Error(), "stratifiable") {
		t.Errorf("err = %v", err)
	}
}

// Concurrent evaluations of the same program over the same database must
// not interfere (each Eval clones; run under -race in CI).
func TestConcurrentEval(t *testing.T) {
	prog := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	db := NewDatabase()
	for i := 0; i < 64; i++ {
		db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	const workers = 8
	results := make(chan int, workers)
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func() {
			res, err := Eval(prog, db, EvalOptions{})
			if err != nil {
				errs <- err
				return
			}
			results <- res.DB.Count("a")
		}()
	}
	for w := 0; w < workers; w++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case n := <-results:
			if n != 64*65/2 {
				t.Errorf("worker got %d facts", n)
			}
		}
	}
}

// Supplementary magic through the pipeline option.
func TestOptimizeSupplementaryMagic(t *testing.T) {
	prog := MustParseProgram(`
sg(X,Y) :- up(X,U), sg(U,V), flat(V,W), sg(W,Z), dn(Z,Y).
sg(X,Y) :- flat(X,Y).
?- sg(a0, Y).
`)
	opts := Options{Adorn: true, SupplementaryMagic: true}
	res, err := Optimize(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Program.String(), "sup_") {
		t.Errorf("expected supplementary predicates:\n%s", res.Program)
	}
}

package existdlog

// Allocation-ceiling guard for the columnar arena storage (ISSUE 8
// satellite 5). The arena rewrite's whole value is its allocation
// profile — tuple fingerprints instead of string keys, flat []int32
// instead of per-row slices — so CI re-runs the engine benchmark-pair
// workloads under testing.Benchmark and FAILS when allocs/op creep past
// the pinned ceilings, rather than just logging numbers nobody reads.
//
// Ceilings carry ~40-50% headroom over the values measured on the
// machine that pinned them (see EXPERIMENTS.md "Columnar arena storage"
// for the measured table). Allocation counts, unlike wall-clock, are
// deterministic per workload, so a ceiling breach means a real
// regression — e.g. per-tuple keys or per-probe boxing coming back —
// not a noisy runner.
//
// The guard costs a few seconds of benchmarking, so it only runs when
// EXISTDLOG_BENCH_GUARD is set (the CI bench job sets it); ordinary
// `go test ./...` skips it.

import (
	"fmt"
	"os"
	"testing"
)

func TestBenchAllocCeilings(t *testing.T) {
	if os.Getenv("EXISTDLOG_BENCH_GUARD") == "" {
		t.Skip("set EXISTDLOG_BENCH_GUARD=1 to run the alloc-ceiling guard (the CI bench job does)")
	}

	chain := func(n int) *Database {
		db := NewDatabase()
		for i := 0; i < n; i++ {
			db.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
		}
		return db
	}
	tcProg := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	tc8Src := ""
	for i := 0; i < 8; i++ {
		tc8Src += fmt.Sprintf("a%d(X,Y) :- p%d(X,Z), a%d(Z,Y).\na%d(X,Y) :- p%d(X,Y).\n", i, i, i, i, i)
	}
	tc8Prog := MustParseProgram(tc8Src + "?- a0(X,Y).\n")
	tc8DB := NewDatabase()
	for i := 0; i < 8; i++ {
		for j := 0; j < 192; j++ {
			tc8DB.Add(fmt.Sprintf("p%d", i), fmt.Sprint(j), fmt.Sprint(j+1))
		}
	}

	cases := []struct {
		name    string
		ceiling int64 // allocs/op; measured value in the comment
		opts    EvalOptions
		prog    *Program
		db      *Database
	}{
		// BenchmarkEngineSemiNaiveTCChain512: measured 167,453 allocs/op
		// (seed storage: 1,876,170).
		{"SemiNaiveTCChain512", 250_000, EvalOptions{}, tcProg, chain(512)},
		// BenchmarkParallelSemiNaive/tc8/parallel: measured 229,105
		// allocs/op (seed storage: 2,159,652).
		{"ParallelTC8", 350_000, EvalOptions{Strategy: Parallel}, tc8Prog, tc8DB},
		// The trace pair's disabled side (BenchmarkEvalTraceOff's
		// chain-10 workload, minus the harness's option plumbing):
		// measured 439 allocs/op here; the in-engine pin with tracing
		// plumbing is 1,715 (seed storage: 7,828).
		{"EvalTraceOffChain10", 700, EvalOptions{}, tcProg, chain(10)},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			r := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := Eval(c.prog, c.db, c.opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			if got := r.AllocsPerOp(); got > c.ceiling {
				t.Errorf("%s: %d allocs/op exceeds the pinned ceiling %d — per-tuple allocation has crept back into the arena paths (run the %s benchmarks with -benchmem to localize)",
					c.name, got, c.ceiling, c.name)
			} else {
				t.Logf("%s: %d allocs/op (ceiling %d), %v/op over %d iterations",
					c.name, got, c.ceiling, r.NsPerOp(), r.N)
			}
		})
	}
}

// TestPlannerJoinProbeCeilings pins exact JoinProbes counts for the
// BenchmarkJoinReorderAblation pair and the transitive-closure chain,
// planner off and on. Unlike allocs these need no benchmark loop or
// headroom: probe counts are a pure function of program, database, and
// planner, so any drift is a real planner (or join-loop) change and the
// pinned numbers should be re-derived consciously, not absorbed. The
// planner-on numbers are also the acceptance evidence for the runtime
// planner: they must stay strictly below their planner-off pair.
func TestPlannerJoinProbeCeilings(t *testing.T) {
	reorderProg := MustParseProgram(`
ans(X,W) :- big(Y,Z), sel(X,Y), big(Z,W).
?- ans(X,W).
`)
	reorderDB := NewDatabase()
	for i := 0; i < 2000; i++ {
		reorderDB.Add("big", fmt.Sprint(i), fmt.Sprint(i+1))
	}
	reorderDB.Add("sel", "s", "3")
	tcProg := MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	tcDB := NewDatabase()
	for i := 0; i < 512; i++ {
		tcDB.Add("p", fmt.Sprint(i), fmt.Sprint(i+1))
	}

	cases := []struct {
		name    string
		reorder bool
		want    int64
		prog    *Program
		db      *Database
	}{
		{"ReorderAblation/textual", false, 2002, reorderProg, reorderDB},
		{"ReorderAblation/planner", true, 3, reorderProg, reorderDB},
		{"TCChain512/textual", false, 263170, tcProg, tcDB},
		{"TCChain512/planner", true, 131841, tcProg, tcDB},
	}
	probes := map[string]int64{}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			res, err := Eval(c.prog, c.db, EvalOptions{ReorderJoins: c.reorder})
			if err != nil {
				t.Fatal(err)
			}
			probes[c.name] = res.Stats.JoinProbes
			if res.Stats.JoinProbes != c.want {
				t.Errorf("%s: JoinProbes = %d, want exactly %d (probe counts are deterministic; re-derive the pin if the planner changed on purpose)",
					c.name, res.Stats.JoinProbes, c.want)
			}
		})
	}
	for _, pair := range [][2]string{
		{"ReorderAblation/planner", "ReorderAblation/textual"},
		{"TCChain512/planner", "TCChain512/textual"},
	} {
		if probes[pair[0]] >= probes[pair[1]] {
			t.Errorf("planner must beat the textual order: %s=%d vs %s=%d",
				pair[0], probes[pair[0]], pair[1], probes[pair[1]])
		}
	}
}

package existdlog

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the corpus .golden files")

// The corpus pins the optimizer's output on a battery of representative
// programs (.dl alongside .golden under testdata/corpus). Each case is
// also cross-checked for query equivalence by evaluation over randomized
// databases: golden files catch unintended drift, the evaluation check
// catches unsound drift.
func TestOptimizerCorpus(t *testing.T) {
	files, err := filepath.Glob("testdata/corpus/*.dl")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("empty corpus")
	}
	for _, file := range files {
		file := file
		t.Run(filepath.Base(file), func(t *testing.T) {
			src, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			prog, _, err := Parse(string(src))
			if err != nil {
				t.Fatal(err)
			}
			res, err := Optimize(prog, DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			var report strings.Builder
			report.WriteString(res.Program.String())
			if res.EmptyAnswer {
				report.WriteString("% answer proved empty at compile time\n")
			}
			golden := strings.TrimSuffix(file, ".dl") + ".golden"
			if *updateGolden {
				if err := os.WriteFile(golden, []byte(report.String()), 0o644); err != nil {
					t.Fatal(err)
				}
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			if report.String() != string(want) {
				t.Errorf("optimizer output drifted from %s:\n--- got ---\n%s--- want ---\n%s",
					golden, report.String(), want)
			}
			checkCorpusEquivalence(t, prog, res.Program)
		})
	}
}

// checkCorpusEquivalence compares needed-column answer sets of the
// original and optimized programs over randomized databases covering the
// base schema.
func checkCorpusEquivalence(t *testing.T, before, after *Program) {
	t.Helper()
	bases := map[string]int{}
	for _, p := range []*Program{before, after} {
		for _, r := range p.Rules {
			for _, b := range r.Body {
				if !p.Derived[b.Key()] && b.Adornment == "" {
					bases[b.Pred] = b.Arity()
				}
			}
		}
	}
	rng := rand.New(rand.NewSource(424242))
	for trial := 0; trial < 8; trial++ {
		db := NewDatabase()
		n := 2 + rng.Intn(5)
		for name, arity := range bases {
			rows := 1 + rng.Intn(8)
			for i := 0; i < rows; i++ {
				row := make([]string, arity)
				for j := range row {
					row[j] = fmt.Sprint(rng.Intn(n))
				}
				db.Add(name, row...)
			}
		}
		r1, err := Eval(before, db, EvalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := Eval(after, db, EvalOptions{BooleanCut: true})
		if err != nil {
			t.Fatal(err)
		}
		set := func(res *EvalResult, q Atom) map[string]bool {
			out := map[string]bool{}
			for _, row := range res.Answers(q) {
				// Compare needed columns: the optimized query may have
				// fewer columns; truncate the original's rows to match.
				k := len(row)
				if n := len(after.Query.Args); n < k {
					k = n
				}
				out[strings.Join(row[:k], "\x00")] = true
			}
			return out
		}
		a := set(r1, before.Query)
		b := set(r2, after.Query)
		if len(a) != len(b) {
			t.Fatalf("trial %d: answer sets differ (%d vs %d)\n%v\n%v", trial, len(a), len(b), a, b)
		}
		for k := range a {
			if !b[k] {
				t.Fatalf("trial %d: missing answer %q", trial, k)
			}
		}
	}
}

package existdlog_test

import (
	"fmt"
	"log"

	"existdlog"
)

// The paper's running example: the existential query "which X reach some
// Y" turns binary transitive closure into a single non-recursive rule.
func ExampleOptimize() {
	prog, err := existdlog.ParseProgram(`
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Program.String())
	// Output:
	// query@n(X) :- a@nd(X).
	// a@nd(X) :- p(X,Y).
	// ?- query@n(X).
}

// Parse splits a source text into the program and its ground facts; Eval
// computes the derived relations bottom-up.
func ExampleEval() {
	prog, edb, err := existdlog.Parse(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(1, Y).
p(1,2). p(2,3). p(3,1).
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := existdlog.Eval(prog, edb, existdlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, row := range res.Answers(prog.Query) {
		fmt.Printf("a(%s,%s)\n", row[0], row[1])
	}
	// Output:
	// a(1,1)
	// a(1,2)
	// a(1,3)
}

// The optimizer can prove an answer empty at compile time (Example 8 of
// the paper): an auxiliary recursion with no exit rule is unproductive,
// and the cleanup cascades.
func ExampleOptimize_emptyAnswer() {
	prog, err := existdlog.ParseProgram(`
p(X) :- p1(X,Y).
p1(X,Y) :- p2(X,Z,U), g1(Z,U,Y).
p2(X,Z,U) :- p2(X,V,W), g2(V,W,Z,U).
?- p(X).
`)
	if err != nil {
		log.Fatal(err)
	}
	res, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.EmptyAnswer)
	// Output:
	// true
}

// ChainQueryEquivalent decides query equivalence exactly for binary chain
// programs with regular grammars (the decidable fragment of Lemma 4.1).
func ExampleChainQueryEquivalent() {
	oneStep := existdlog.MustParseProgram(`
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	twoStep := existdlog.MustParseProgram(`
a(X,Y) :- p(X,Z), p(Z,W), a(W,Y).
a(X,Y) :- p(X,Z), p(Z,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`)
	ok, err := existdlog.ChainQueryEquivalent(oneStep, twoStep)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(ok)
	// Output:
	// true
}

package existdlog

import (
	"errors"
	"fmt"
	"strings"

	"existdlog/internal/engine"
	"existdlog/internal/parser"
	"existdlog/internal/trace"
)

// Observability types, aliased from internal/trace. An evaluation run with
// EvalOptions.Trace fills EvalResult.Trace with a TraceMetrics; Optimize
// always fills OptimizeResult.Explain with an ExplainReport.
type (
	// TraceMetrics is a full evaluation trace: per-rule counters plus the
	// pass timeline, identical across strategies.
	TraceMetrics = trace.Metrics
	// RuleStats are one rule's evaluation counters.
	RuleStats = trace.RuleStats
	// PassStats describe one fixpoint pass.
	PassStats = trace.PassStats
	// ExplainReport is the optimizer's stage-by-stage report.
	ExplainReport = trace.Explain
	// FactRef names a fact (relation key plus interned tuple) inside a
	// derivation tree.
	FactRef = engine.FactRef
)

// ErrNotDerivable is returned (wrapped) by Why when the queried fact is
// well-formed and ground but absent from the result.
var ErrNotDerivable = errors.New("fact is not in the result")

// Why answers "why is this fact in the result?": it parses a ground fact
// written in source syntax — "tc(a,b)", adorned keys as "a@nd(x)" — and
// returns its derivation tree from res, which must come from an
// evaluation with EvalOptions.TrackProvenance set. The tree's leaves are
// base (EDB) facts (Rule = -1); every internal node carries the index of
// the rule instance that first produced it.
func Why(res *EvalResult, fact string) (*Tree, error) {
	src := strings.TrimSuffix(strings.TrimSpace(fact), ".")
	r, err := parser.Parse("?- " + src + ".")
	if err != nil {
		return nil, fmt.Errorf("why: bad fact %q: %w", fact, err)
	}
	goal := r.Program.Query
	if !goal.IsGround() {
		return nil, fmt.Errorf("why: fact must be ground: %s", src)
	}
	row := make([]string, len(goal.Args))
	for i, t := range goal.Args {
		row[i] = t.Name
	}
	tree, ok := res.Derivation(goal.Key(), row)
	if !ok {
		return nil, fmt.Errorf("why: %s: %w", src, ErrNotDerivable)
	}
	return tree, nil
}

// FormatTree renders a derivation tree as indented text, one fact per
// line, annotated with the producing rule (prog's rule list indexes the
// tree's Rule fields) or "[base fact]" at the leaves.
func FormatTree(t *Tree, prog *Program, res *EvalResult) string {
	var sb strings.Builder
	formatTree(&sb, t, prog, res, 0)
	return sb.String()
}

func formatTree(sb *strings.Builder, t *Tree, prog *Program, res *EvalResult, depth int) {
	indent := strings.Repeat("  ", depth)
	label := t.Fact.Key
	if len(t.Fact.Row) > 0 {
		label = fmt.Sprintf("%s(%s)", t.Fact.Key, strings.Join(res.RowStrings(t.Fact.Row), ","))
	}
	if t.Rule >= 0 && t.Rule < len(prog.Rules) {
		fmt.Fprintf(sb, "%s%s   [rule %d: %s]\n", indent, label, t.Rule+1, prog.Rules[t.Rule])
	} else {
		fmt.Fprintf(sb, "%s%s   [base fact]\n", indent, label)
	}
	for _, c := range t.Children {
		formatTree(sb, c, prog, res, depth+1)
	}
}

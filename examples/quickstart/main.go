// Quickstart: the paper's running example (Examples 1, 3 and 4) end to
// end — parse a program with an existential query, optimize it, evaluate
// both versions, and compare the work done.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"existdlog"
)

const src = `
% Which nodes have at least one outgoing path? (Example 1 of the paper.)
% The second argument of a is existential: only the existence of Y
% matters.
query(X) :- a(X,Y).
a(X,Y) :- p(X,Z), a(Z,Y).
a(X,Y) :- p(X,Y).
?- query(X).

% A small edge relation; real programs load facts from their own storage.
p(1,2). p(2,3). p(3,4). p(4,2). p(5,1). p(6,6).
`

func main() {
	prog, edb, err := existdlog.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== original program ==")
	fmt.Print(prog.String())

	res, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== optimized program ==")
	fmt.Print(res.Program.String())
	fmt.Println("\n== what each phase did ==")
	for _, s := range res.Steps {
		fmt.Printf("- %s", s.Name)
		for _, n := range s.Notes {
			fmt.Printf(" (%s)", n)
		}
		fmt.Println()
	}
	for _, d := range res.Deletions {
		fmt.Printf("  deleted: %s — %s\n", d.Rule, d.Reason)
	}

	before, err := existdlog.Eval(prog, edb, existdlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	after, err := existdlog.Eval(res.Program, edb, existdlog.EvalOptions{BooleanCut: true})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\n== answers ==")
	for _, row := range after.Answers(res.Program.Query) {
		fmt.Printf("query(%s)\n", row[0])
	}
	fmt.Printf("\noriginal:  %d facts derived, %d duplicate derivations suppressed\n",
		before.Stats.FactsDerived, before.Stats.DuplicateHits)
	fmt.Printf("optimized: %d facts derived, %d duplicate derivations suppressed\n",
		after.Stats.FactsDerived, after.Stats.DuplicateHits)
}

// Policy audit: stratified negation through the existential pipeline.
//
// The paper's Section 6 names negation as the natural generalization of
// its framework; this example exercises the engine's stratified
// negation-as-failure together with the existential optimizations:
// "which services are exposed?" = services reachable from the internet
// that do NOT sit behind any firewall — and the reachability subquery is
// existential (any path suffices), so the recursion runs unary.
//
//	go run ./examples/policyaudit
package main

import (
	"fmt"
	"log"

	"existdlog"
	"existdlog/internal/workload"
)

const rules = `
% exposed(S): some internet-facing host reaches S, and no firewall rule
% covers S.
exposed(S) :- reachable(S), not shielded(S).
reachable(S) :- ingress(S).
reachable(S) :- reachable(R), link(R,S).
shielded(S) :- firewall(F,S).
?- exposed(S).
`

func main() {
	prog, err := existdlog.ParseProgram(rules)
	if err != nil {
		log.Fatal(err)
	}

	edb := existdlog.NewDatabase()
	workload.ChainForest(edb, "link", 4, 50) // four service chains
	edb.Add("ingress", workload.ForestNode(0, 0))
	edb.Add("ingress", workload.ForestNode(2, 10))
	for i := 0; i < 50; i += 2 {
		edb.Add("firewall", "fw-east", workload.ForestNode(0, i))
	}

	opt, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== optimized program (negation passes through; deletion steps aside) ==")
	fmt.Print(opt.Program.String())

	res, err := existdlog.Eval(opt.Program, edb, existdlog.EvalOptions{BooleanCut: true})
	if err != nil {
		log.Fatal(err)
	}
	check, err := existdlog.Eval(prog, edb, existdlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	answers := res.Answers(opt.Program.Query)
	fmt.Printf("\nexposed services: %d (unoptimized agrees: %v)\n",
		len(answers), len(check.Answers(prog.Query)) == len(answers))
	for i, row := range answers {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(answers)-5)
			break
		}
		fmt.Printf("  %s\n", row[0])
	}
	fmt.Printf("\nstats: %d facts derived in %d iterations (stratified: reachable, then shielded-negation)\n",
		res.Stats.FactsDerived, res.Stats.Iterations)
}

// Bill of materials: part-explosion queries with existential arguments.
//
// contains(A,P) holds when assembly A transitively contains part P. The
// procurement question "which assemblies depend on at least one imported
// part?" joins on the part, but the *audit* precondition — "some supplier
// audit exists this quarter" — is independent of the assembly, and the
// report query "which assemblies are non-atomic?" needs only the
// existence of a subpart. The optimizer projects the part column out of
// the recursion for the latter and turns the audit into a retire-once
// boolean for the former.
//
//	go run ./examples/billofmaterials
package main

import (
	"fmt"
	"log"
	"math/rand"

	"existdlog"
)

const rules = `
% Non-atomic assemblies, provided some supplier audit exists.
nonatomic(A) :- contains(A,P), audit(Q).
contains(A,P) :- part_of(P,A).
contains(A,P) :- part_of(S,A), contains(S,P).
?- nonatomic(A).
`

func main() {
	prog, err := existdlog.ParseProgram(rules)
	if err != nil {
		log.Fatal(err)
	}

	// A synthetic product hierarchy: 4-level tree of assemblies, fanout 6,
	// plus shared standard parts.
	edb := existdlog.NewDatabase()
	rng := rand.New(rand.NewSource(7))
	var build func(name string, depth int)
	id := 0
	build = func(name string, depth int) {
		if depth == 0 {
			return
		}
		for c := 0; c < 6; c++ {
			id++
			child := fmt.Sprintf("asm%d", id)
			if depth == 1 {
				child = fmt.Sprintf("part%d", id)
			}
			edb.Add("part_of", child, name)
			build(child, depth-1)
		}
		// Shared standard fasteners.
		edb.Add("part_of", fmt.Sprintf("bolt%d", rng.Intn(20)), name)
	}
	build("product", 4)
	edb.Add("audit", "q3-supplier-review")

	opt, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== optimized program ==")
	fmt.Print(opt.Program.String())

	before, err := existdlog.Eval(prog, edb, existdlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	after, err := existdlog.Eval(opt.Program, edb, existdlog.EvalOptions{BooleanCut: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nnon-atomic assemblies: %d (unoptimized agrees: %v)\n",
		after.AnswerCount(opt.Program.Query),
		before.AnswerCount(prog.Query) == after.AnswerCount(opt.Program.Query))
	fmt.Printf("unoptimized: %7d facts derived, %8d derivations\n",
		before.Stats.FactsDerived, before.Stats.Derivations)
	fmt.Printf("optimized:   %7d facts derived, %8d derivations (%d rules retired at runtime)\n",
		after.Stats.FactsDerived, after.Stats.Derivations, after.Stats.RulesRetired)

	// Contrast with a query that genuinely needs the part column: the
	// optimizer keeps contains binary there (no unsound projection).
	imports := existdlog.MustParseProgram(`
exposed(A) :- contains(A,P), imported(P).
contains(A,P) :- part_of(P,A).
contains(A,P) :- part_of(S,A), contains(S,P).
?- exposed(A).
`)
	edb.Add("imported", "bolt3")
	edb.Add("imported", "part100")
	optImports, err := existdlog.Optimize(imports, existdlog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	resImports, err := existdlog.Eval(optImports.Program, edb, existdlog.EvalOptions{BooleanCut: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nassemblies exposed to imported parts: %d\n",
		resImports.AnswerCount(optImports.Program.Query))
	fmt.Println("(the part column is needed there, so contains stays binary — the")
	fmt.Println(" adornment marks it n and projection pushing leaves it alone)")
}

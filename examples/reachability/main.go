// Reachability: a network-operations workload for existential queries.
//
// A fleet of routers is connected by unidirectional links. The question
// "which routers are live?" only needs, per router, the EXISTENCE of a
// forwarding path to some node — the classic existential query the paper
// optimizes. The monitoring rule also demands that some collector
// heartbeat exists at all, a subquery disconnected from the router
// variable: the optimizer turns it into a boolean that the evaluator
// retires as soon as one heartbeat is seen (the bottom-up cut of
// Section 3.1).
//
//	go run ./examples/reachability
package main

import (
	"fmt"
	"log"

	"existdlog"
	"existdlog/internal/workload"
)

const rules = `
% live(R): router R can forward to at least one peer, transitively,
% provided some collector heartbeat exists.
live(R) :- reach(R,S), heartbeat(C).
reach(R,S) :- link(R,M), reach(M,S).
reach(R,S) :- link(R,S).
?- live(R).
`

func main() {
	prog, err := existdlog.ParseProgram(rules)
	if err != nil {
		log.Fatal(err)
	}

	// Topology: three data-center meshes plus an isolated segment.
	edb := existdlog.NewDatabase()
	workload.ChainForest(edb, "link", 3, 400) // three long forwarding chains
	workload.RandomDigraph(edb, "link", 120, 500, 99)
	edb.Add("link", "c0x399", "0") // bridge a chain into the mesh
	edb.Add("heartbeat", "collector-eu")
	edb.Add("heartbeat", "collector-us")

	opt, err := existdlog.Optimize(prog, existdlog.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== optimized program ==")
	fmt.Print(opt.Program.String())

	naive, err := existdlog.Eval(prog, edb, existdlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fast, err := existdlog.Eval(opt.Program, edb, existdlog.EvalOptions{BooleanCut: true})
	if err != nil {
		log.Fatal(err)
	}

	a1 := naive.Answers(prog.Query)
	a2 := fast.Answers(opt.Program.Query)
	fmt.Printf("\nlive routers: %d (unoptimized agrees: %v)\n", len(a2), len(a1) == len(a2))
	fmt.Printf("unoptimized: %8d facts, %9d derivations, %d iterations\n",
		naive.Stats.FactsDerived, naive.Stats.Derivations, naive.Stats.Iterations)
	fmt.Printf("optimized:   %8d facts, %9d derivations, %d iterations, %d rules cut at runtime\n",
		fast.Stats.FactsDerived, fast.Stats.Derivations, fast.Stats.Iterations, fast.Stats.RulesRetired)

	// A selective follow-up — "is THIS router live?" — composes the
	// existential pipeline with magic sets (Section 6: the rewritings are
	// orthogonal).
	single := existdlog.MustParseProgram(`
live(R) :- reach(R,S), heartbeat(C).
reach(R,S) :- link(R,M), reach(M,S).
reach(R,S) :- link(R,S).
?- live(c1x17).
`)
	opts := existdlog.DefaultOptions()
	opts.MagicSets = true
	optSingle, err := existdlog.Optimize(single, opts)
	if err != nil {
		log.Fatal(err)
	}
	resSingle, err := existdlog.Eval(optSingle.Program, edb, existdlog.EvalOptions{BooleanCut: true})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npoint query live(c1x17): %d answer(s) with only %d facts derived (magic + projection)\n",
		resSingle.AnswerCount(optSingle.Program.Query), resSingle.Stats.FactsDerived)
}

// Grammarlab: the chain-program / context-free-grammar correspondence
// (Sections 1.1, 3.2 and 4 of the paper) made executable.
//
// A binary chain program IS a grammar: derived predicates are
// nonterminals, base predicates terminals. This demo extracts the
// grammar, enumerates L(G) and the extended language Lᵉˣ(G) (the objects
// Lemma 4.1 ties to query- and uniform-query-equivalence), cross-checks
// engine evaluation against CFL-reachability, and — because the grammar
// is right-linear, hence regular — builds the equivalent MONADIC chain
// program of Theorem 3.3 for the existential query.
//
//	go run ./examples/grammarlab
package main

import (
	"fmt"
	"log"
	"strings"

	"existdlog"
	"existdlog/internal/grammar"
	"existdlog/internal/workload"
)

const src = `
% Alternating two-hop reachability: paths spelling (p q)^n p.
a(X,Y) :- p(X,Z), q(Z,W), a(W,Y).
a(X,Y) :- p(X,Y).
?- a(X,Y).
`

func main() {
	prog, err := existdlog.ParseProgram(src)
	if err != nil {
		log.Fatal(err)
	}
	g, err := grammar.FromChainProgram(prog)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("== chain program ==")
	fmt.Print(prog.String())
	fmt.Printf("\nstart symbol: %s\n", g.Start)
	fmt.Printf("classification: %v (0=not linear, 1=right-linear, 2=left-linear, 3=acyclic)\n",
		grammar.Classify(g))

	fmt.Println("\nL(G) up to length 5 — the label strings of answer paths (Lemma 4.1):")
	for _, s := range g.Language(5) {
		fmt.Printf("  %s\n", strings.Join(s, " "))
	}
	fmt.Println("extended language up to length 4 — the uniform-query-equivalence object:")
	for _, s := range g.ExtendedLanguage(4) {
		fmt.Printf("  %s\n", strings.Join(s, " "))
	}

	// A labeled graph to query.
	edb := existdlog.NewDatabase()
	workload.RandomDigraph(edb, "p", 40, 120, 4)
	workload.RandomDigraph(edb, "q", 40, 120, 8)

	res, err := existdlog.Eval(prog, edb, existdlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cfl, err := grammar.CFLReach(g, edb)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nengine a-pairs: %d; CFL-reachability a-pairs: %d (must agree)\n",
		res.DB.Count("a"), len(cfl["a"]))

	// Theorem 3.3: the language is regular, so an equivalent MONADIC chain
	// program exists for the existential query "which nodes are reachable
	// from somewhere along an accepted string?".
	mp, err := grammar.MonadicFromChain(prog, "dn")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== monadic program for a@dn (Theorem 3.3) ==")
	fmt.Print(mp.Program.String())

	mono, err := existdlog.Eval(mp.Program, edb, existdlog.EvalOptions{})
	if err != nil {
		log.Fatal(err)
	}
	targets := map[string]bool{}
	for _, row := range res.DB.Facts("a") {
		targets[row[1]] = true
	}
	fmt.Printf("\nbinary program: %d facts for %d distinct targets\n",
		res.DB.Count("a"), len(targets))
	fmt.Printf("monadic program: %d facts total for the same %d targets\n",
		mono.Stats.FactsDerived, mono.DB.Count(mp.AnswerPred))
}
